(** Benchmark harness regenerating every evaluation claim of the paper
    (see DESIGN.md §4 for the experiment index):

    - E1  IVM propagation vs full recomputation (base-size × delta-size sweep)
    - E2  ART index build strategies and upsert acceleration
    - E3  the demo's 4-way comparison: pure OLAP / pure OLTP /
          cross-system with IVM / cross-system without IVM
    - E4  combine-strategy and refresh-granularity ablations
    - E5  compiler latency per view class
    - the refresh benchmark (paper Figure 4): strategy × view-shape
      propagation medians, emitted as machine-readable JSON (--out,
      default BENCH_refresh.json) with a built-in correctness gate —
      the run exits nonzero naming any view whose maintained contents
      diverge from a full recompute. `--refresh-only` (with `--reps N`)
      runs just this part; the `@bench` alias does so at small scale.

    Each experiment prints a table of the same series the paper's demo
    reports; `--micro` additionally runs one Bechamel micro-benchmark per
    experiment. Absolute numbers reflect the Minidb substrate, but the
    *shapes* (who wins, by what factor, where crossovers fall) are the
    reproduction targets recorded in EXPERIMENTS.md. *)

open Openivm_engine
open Openivm_workload

let scale = ref `Medium
let run_micro = ref false

let sizes () =
  match !scale with
  | `Small -> ([ 5_000; 20_000 ], [ 10; 100; 1_000 ])
  | `Medium -> ([ 10_000; 50_000; 200_000 ], [ 10; 100; 1_000; 10_000 ])
  | `Full -> ([ 10_000; 100_000; 1_000_000 ], [ 10; 100; 1_000; 10_000; 100_000 ])

(* --- shared setup --- *)

let groups_view_sql =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
   group_index"

let setup_groups_db ~rows ~domain ~strategy : Database.t * Openivm.Runner.view =
  let db = Database.create () in
  ignore (Database.exec db Datagen.groups_ddl);
  Datagen.populate_groups ~domain db (Datagen.create ()) ~rows;
  let flags = { Openivm.Flags.default with strategy } in
  let v = Openivm.Runner.install ~flags db groups_view_sql in
  (db, v)

(* best-of-3 to suppress scheduler noise: each round applies a fresh delta
   of the same size and times only the propagation *)
let apply_and_refresh db v gen ~delta_rows ~domain =
  let best = ref infinity in
  for _ = 1 to 3 do
    let delta = Datagen.groups_delta_rows ~domain gen ~rows:delta_rows in
    Datagen.apply_groups_delta db delta;
    let dt = Timer.time_unit (fun () -> Openivm.Runner.force_refresh v) in
    if dt < !best then best := dt
  done;
  !best

(* --- E1: IVM vs full recomputation --- *)

let e1 () =
  let bases, deltas = sizes () in
  let report =
    Report.create ~title:"E1: incremental propagation vs full recomputation"
      ~headers:
        [ "base rows"; "delta rows"; "ivm refresh"; "recompute"; "speedup" ]
  in
  List.iter
    (fun base ->
       let domain = max 100 (base / 100) in
       List.iter
         (fun delta ->
            if delta <= base then begin
              let db_ivm, v_ivm =
                setup_groups_db ~rows:base ~domain
                  ~strategy:Openivm.Flags.Upsert_linear
              in
              let db_full, v_full =
                setup_groups_db ~rows:base ~domain
                  ~strategy:Openivm.Flags.Full_recompute
              in
              let gen = Datagen.create ~seed:77 () in
              let t_ivm =
                apply_and_refresh db_ivm v_ivm gen ~delta_rows:delta ~domain
              in
              let gen = Datagen.create ~seed:77 () in
              let t_full =
                apply_and_refresh db_full v_full gen ~delta_rows:delta ~domain
              in
              Report.add_row report
                [ string_of_int base; string_of_int delta;
                  Timer.pp_duration t_ivm; Timer.pp_duration t_full;
                  Report.speedup t_full t_ivm ]
            end)
         deltas)
    bases;
  Report.print report

(* --- E1b: the same sweep over a 3-way join view (TPC-H-lite) --- *)

let e1b () =
  let orders_list, deltas =
    match !scale with
    | `Small -> ([ 500 ], [ 10; 50 ])
    | `Medium -> ([ 1_000; 4_000 ], [ 10; 50; 200 ])
    | `Full -> ([ 1_000; 4_000; 16_000 ], [ 10; 50; 200; 1_000 ])
  in
  let report =
    Report.create
      ~title:
        "E1b: 3-way join view (TPC-H-lite revenue) — IVM vs recompute"
      ~headers:
        [ "orders"; "delta orders"; "ivm refresh"; "recompute"; "speedup" ]
  in
  List.iter
    (fun orders ->
       List.iter
         (fun delta ->
            let setup strategy =
              let db = Database.create () in
              List.iter (fun sql -> ignore (Database.exec db sql))
                Tpch_lite.all_ddl;
              let gen = Tpch_lite.create ~customers:(max 50 (orders / 10)) () in
              Tpch_lite.populate db gen ~orders;
              let flags = { Openivm.Flags.default with strategy } in
              let v = Openivm.Runner.install ~flags db Tpch_lite.revenue_view in
              (db, gen, v)
            in
            let run (db, gen, v) =
              let best = ref infinity in
              for _ = 1 to 3 do
                for _ = 1 to delta do
                  List.iter (fun sql -> ignore (Database.exec db sql))
                    (Tpch_lite.order_statements gen)
                done;
                List.iter (fun sql -> ignore (Database.exec db sql))
                  (Tpch_lite.cancel_statements gen);
                let dt =
                  Timer.time_unit (fun () -> Openivm.Runner.force_refresh v)
                in
                if dt < !best then best := dt
              done;
              !best
            in
            let t_ivm = run (setup Openivm.Flags.Upsert_linear) in
            let t_full = run (setup Openivm.Flags.Full_recompute) in
            Report.add_row report
              [ string_of_int orders; string_of_int delta;
                Timer.pp_duration t_ivm; Timer.pp_duration t_full;
                Report.speedup t_full t_ivm ])
         deltas)
    orders_list;
  Report.print report

(* --- E2: ART index build strategies and upsert speed --- *)

let e2 () =
  let ns = match !scale with
    | `Small -> [ 10_000; 50_000 ]
    | `Medium -> [ 10_000; 100_000; 400_000 ]
    | `Full -> [ 10_000; 100_000; 1_000_000 ]
  in
  let report =
    Report.create ~title:"E2a: ART build — per-row inserts vs bulk vs chunked merge"
      ~headers:[ "keys"; "insert each"; "bulk sorted"; "16 chunks + merge" ]
  in
  List.iter
    (fun n ->
       let bindings =
         Array.init n (fun i -> (Value.encode_key [| Value.Int i |], i))
       in
       let t_insert =
         Timer.best_of (fun () ->
             let t = Art.create () in
             Array.iter (fun (k, v) -> Art.insert t k v) bindings)
       in
       let t_bulk = Timer.best_of (fun () -> ignore (Art.of_sorted bindings)) in
       let chunks = 16 in
       let t_chunked =
         Timer.best_of (fun () ->
             let size = (n + chunks - 1) / chunks in
             let parts =
               List.init chunks (fun c ->
                   let lo = c * size in
                   let hi = min n (lo + size) in
                   if hi <= lo then Art.create ()
                   else Art.of_sorted (Array.sub bindings lo (hi - lo)))
             in
             match parts with
             | [] -> ()
             | first :: rest ->
               List.iter
                 (fun part -> Art.merge ~combine:(fun _ v -> v) first part)
                 rest)
       in
       Report.add_row report
         [ string_of_int n; Timer.pp_duration t_insert;
           Timer.pp_duration t_bulk; Timer.pp_duration t_chunked ])
    ns;
  Report.print report;
  (* E2b: upserting into a materialized aggregate with / without the ART
     PK (without = delete-then-insert by predicate scan) *)
  let base = match !scale with `Small -> 20_000 | `Medium -> 100_000 | `Full -> 400_000 in
  let batch = 1_000 in
  let report2 =
    Report.create
      ~title:
        (Printf.sprintf
           "E2b: applying %d group upserts into a %d-group view" batch base)
      ~headers:[ "method"; "time"; "per row" ]
  in
  let mk_db () =
    let db = Database.create () in
    ignore (Database.exec db "CREATE TABLE v(k INTEGER PRIMARY KEY, s INTEGER)");
    let tbl = Catalog.find_table (Database.catalog db) "v" in
    Trigger.without_hooks (Database.triggers db) (fun () ->
        for i = 0 to base - 1 do
          Table.insert tbl [| Value.Int i; Value.Int (i * 3) |]
        done);
    db
  in
  let db = mk_db () in
  let t_upsert =
    Timer.time_unit (fun () ->
        for i = 0 to batch - 1 do
          ignore
            (Database.exec db
               (Printf.sprintf "INSERT OR REPLACE INTO v VALUES (%d, %d)"
                  (i * 97 mod base) i))
        done)
  in
  Report.add_row report2
    [ "ART-indexed upsert"; Timer.pp_duration t_upsert;
      Timer.pp_duration (t_upsert /. float_of_int batch) ];
  let db2 = Database.create () in
  ignore (Database.exec db2 "CREATE TABLE v(k INTEGER, s INTEGER)");
  let tbl2 = Catalog.find_table (Database.catalog db2) "v" in
  Trigger.without_hooks (Database.triggers db2) (fun () ->
      for i = 0 to base - 1 do
        Table.insert tbl2 [| Value.Int i; Value.Int (i * 3) |]
      done);
  let t_scan =
    Timer.time_unit (fun () ->
        for i = 0 to batch - 1 do
          let key = i * 97 mod base in
          ignore
            (Database.exec db2
               (Printf.sprintf "DELETE FROM v WHERE k = %d" key));
          ignore
            (Database.exec db2
               (Printf.sprintf "INSERT INTO v VALUES (%d, %d)" key i))
        done)
  in
  Report.add_row report2
    [ "unindexed delete+insert"; Timer.pp_duration t_scan;
      Timer.pp_duration (t_scan /. float_of_int batch) ];
  Report.print report2

(* --- E3: the demo's 4-way cross-system comparison --- *)

let e3 () =
  let seed_rows, batch_rows, rounds =
    match !scale with
    | `Small -> (10_000, 200, 3)
    | `Medium -> (50_000, 500, 4)
    | `Full -> (200_000, 1_000, 5)
  in
  (* the OLTP side indexes the transaction key, as any OLTP system would *)
  let schema_sql =
    Datagen.groups_ddl ^ "; CREATE INDEX idx_groups_key ON groups(group_index);"
  in
  let analytical =
    "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n FROM \
     groups GROUP BY group_index"
  in
  let report =
    Report.create
      ~title:
        (Printf.sprintf
           "E3: time to a fresh analytical answer (%d seed rows, %d-stmt \
            tx batches, mean of %d rounds)"
           seed_rows batch_rows rounds)
      ~headers:[ "deployment"; "tx batch"; "fresh answer"; "total" ]
  in
  let tx_seed = 4242 in
  (* (a) pure OLAP embedded engine + IVM *)
  let bench_pure_olap () =
    let db = Database.create () in
    ignore (Database.exec_script db schema_sql);
    let tx = Openivm_htap.Txgen.create ~seed:tx_seed () in
    List.iter (fun sql -> ignore (Database.exec db sql))
      (Openivm_htap.Txgen.seed_rows tx seed_rows);
    let v = Openivm.Runner.install db ("CREATE MATERIALIZED VIEW query_groups AS " ^ analytical) in
    let t_tx = ref 0.0 and t_q = ref 0.0 in
    for _ = 1 to rounds do
      let batch = Openivm_htap.Txgen.batch tx batch_rows in
      t_tx := !t_tx +. Timer.time_unit (fun () ->
          List.iter (fun sql -> ignore (Database.exec db sql)) batch);
      t_q := !t_q +. Timer.time_unit (fun () ->
          ignore (Openivm.Runner.query v "SELECT * FROM query_groups"))
    done;
    (!t_tx /. float_of_int rounds, !t_q /. float_of_int rounds)
  in
  (* (b) pure OLTP engine, recompute on read *)
  let bench_pure_oltp () =
    let oltp = Openivm_htap.Oltp.create () in
    ignore (Database.exec_script (Openivm_htap.Oltp.db oltp) schema_sql);
    let tx = Openivm_htap.Txgen.create ~seed:tx_seed () in
    List.iter (fun sql -> ignore (Openivm_htap.Oltp.exec oltp sql))
      (Openivm_htap.Txgen.seed_rows tx seed_rows);
    let t_tx = ref 0.0 and t_q = ref 0.0 in
    for _ = 1 to rounds do
      let batch = Openivm_htap.Txgen.batch tx batch_rows in
      t_tx := !t_tx +. Timer.time_unit (fun () ->
          List.iter (fun sql -> ignore (Openivm_htap.Oltp.exec oltp sql)) batch);
      t_q := !t_q +. Timer.time_unit (fun () ->
          ignore (Openivm_htap.Oltp.query oltp analytical))
    done;
    (!t_tx /. float_of_int rounds, !t_q /. float_of_int rounds)
  in
  (* (c) cross-system with IVM; (d) cross-system shipping everything *)
  let bench_cross ~with_ivm () =
    let p =
      Openivm_htap.Pipeline.create ~schema_sql
        ~view_sql:("CREATE MATERIALIZED VIEW query_groups AS " ^ analytical)
        ()
    in
    let tx = Openivm_htap.Txgen.create ~seed:tx_seed () in
    List.iter (fun sql -> ignore (Openivm_htap.Pipeline.exec_oltp p sql))
      (Openivm_htap.Txgen.seed_rows tx seed_rows);
    ignore (Openivm_htap.Pipeline.sync p);
    Openivm.Runner.force_refresh (Openivm_htap.Pipeline.view p);
    let t_tx = ref 0.0 and t_q = ref 0.0 in
    for _ = 1 to rounds do
      let batch = Openivm_htap.Txgen.batch tx batch_rows in
      t_tx := !t_tx +. Timer.time_unit (fun () ->
          List.iter (fun sql -> ignore (Openivm_htap.Pipeline.exec_oltp p sql)) batch);
      t_q := !t_q +. Timer.time_unit (fun () ->
          if with_ivm then
            ignore (Openivm_htap.Pipeline.query p "SELECT * FROM query_groups")
          else ignore (Openivm_htap.Pipeline.query_without_ivm p))
    done;
    (!t_tx /. float_of_int rounds, !t_q /. float_of_int rounds)
  in
  let add name (t_tx, t_q) =
    Report.add_row report
      [ name; Timer.pp_duration t_tx; Timer.pp_duration t_q;
        Timer.pp_duration (t_tx +. t_q) ]
  in
  add "pure OLAP engine + IVM" (bench_pure_olap ());
  add "pure OLTP engine, recompute" (bench_pure_oltp ());
  add "cross-system + IVM (paper)" (bench_cross ~with_ivm:true ());
  add "cross-system, ship-all + recompute" (bench_cross ~with_ivm:false ());
  Report.print report

(* --- E4: strategy and refresh-granularity ablations --- *)

let e4 () =
  let base = match !scale with `Small -> 20_000 | `Medium -> 100_000 | `Full -> 200_000 in
  let deltas = match !scale with
    | `Small -> [ 100; 2_000 ]
    | `Medium | `Full -> [ 100; 1_000; 10_000 ]
  in
  let report =
    Report.create
      ~title:
        (Printf.sprintf "E4a: combine strategies (%d base rows)" base)
      ~headers:
        [ "delta rows"; "upsert_linear"; "union_regroup"; "outer_join_merge";
          "rederive_affected"; "full_recompute"; "advisor picks" ]
  in
  List.iter
    (fun delta ->
       let time strategy =
         let db, v = setup_groups_db ~rows:base ~domain:1000 ~strategy in
         let gen = Datagen.create ~seed:13 () in
         apply_and_refresh db v gen ~delta_rows:delta ~domain:1000
       in
       let advised =
         let db, v =
           setup_groups_db ~rows:base ~domain:1000
             ~strategy:Openivm.Flags.Upsert_linear
         in
         ignore v;
         let shape =
           match
             Openivm.Shape.analyze (Database.catalog db) ~view_name:"probe"
               (Openivm_sql.Parser.parse_select
                  "SELECT group_index, SUM(group_value) AS total_value,                    COUNT(*) AS n FROM groups GROUP BY group_index")
           with
           | Ok s -> s
           | Error e -> failwith e
         in
         (Openivm.Advisor.advise (Database.catalog db) shape
            ~expected_delta:delta)
           .Openivm.Advisor.recommended
       in
       Report.add_row report
         [ string_of_int delta;
           Timer.pp_duration (time Openivm.Flags.Upsert_linear);
           Timer.pp_duration (time Openivm.Flags.Union_regroup);
           Timer.pp_duration (time Openivm.Flags.Outer_join_merge);
           Timer.pp_duration (time Openivm.Flags.Rederive_affected);
           Timer.pp_duration (time Openivm.Flags.Full_recompute);
           Openivm.Flags.strategy_to_string advised ])
    deltas;
  Report.print report;
  (* E4b: eager per-statement refresh vs lazy batch refresh *)
  let n_stmts = match !scale with `Small -> 200 | _ -> 500 in
  let report2 =
    Report.create
      ~title:
        (Printf.sprintf
           "E4b: refresh granularity over %d single-row inserts (%d base \
            rows)"
           n_stmts base)
      ~headers:[ "mode"; "total time"; "per stmt" ]
  in
  let run_mode refresh =
    let db = Database.create () in
    ignore (Database.exec db Datagen.groups_ddl);
    Datagen.populate_groups ~domain:1000 db (Datagen.create ()) ~rows:base;
    let flags = { Openivm.Flags.default with refresh } in
    let v = Openivm.Runner.install ~flags db groups_view_sql in
    let t =
      Timer.time_unit (fun () ->
          for i = 0 to n_stmts - 1 do
            ignore
              (Database.exec db
                 (Printf.sprintf "INSERT INTO groups VALUES ('g%05d', %d)"
                    (i mod 1000) i))
          done;
          Openivm.Runner.refresh v)
    in
    ignore v;
    t
  in
  let t_eager = run_mode Openivm.Flags.Eager in
  let t_lazy = run_mode Openivm.Flags.Lazy in
  Report.add_row report2
    [ "eager (refresh per statement)"; Timer.pp_duration t_eager;
      Timer.pp_duration (t_eager /. float_of_int n_stmts) ];
  Report.add_row report2
    [ "lazy (one refresh at read)"; Timer.pp_duration t_lazy;
      Timer.pp_duration (t_lazy /. float_of_int n_stmts) ];
  Report.print report2

(* --- E4c: batching granularity vs staleness --- *)

let e4c () =
  let base = match !scale with `Small -> 20_000 | _ -> 50_000 in
  let total_stmts = match !scale with `Small -> 400 | _ -> 1_000 in
  let report =
    Report.create
      ~title:
        (Printf.sprintf
           "E4c: refresh batching over %d inserts (%d base rows) — cost vs             recency"
           total_stmts base)
      ~headers:
        [ "refresh every"; "total time"; "per stmt"; "avg staleness (rows)" ]
  in
  List.iter
    (fun every ->
       let db = Database.create () in
       ignore (Database.exec db Datagen.groups_ddl);
       Datagen.populate_groups ~domain:1000 db (Datagen.create ()) ~rows:base;
       let v = Openivm.Runner.install db groups_view_sql in
       let staleness_samples = ref 0 in
       let staleness_total = ref 0 in
       let t =
         Timer.time_unit (fun () ->
             for i = 0 to total_stmts - 1 do
               ignore
                 (Database.exec db
                    (Printf.sprintf "INSERT INTO groups VALUES ('g%05d', %d)"
                       (i mod 1000) i));
               incr staleness_samples;
               staleness_total := !staleness_total + v.Openivm.Runner.pending_deltas;
               if (i + 1) mod every = 0 then Openivm.Runner.force_refresh v
             done;
             Openivm.Runner.refresh v)
       in
       Report.add_row report
         [ string_of_int every; Timer.pp_duration t;
           Timer.pp_duration (t /. float_of_int total_stmts);
           Printf.sprintf "%.1f"
             (float_of_int !staleness_total /. float_of_int !staleness_samples) ])
    [ 1; 10; 100; 1000 ];
  Report.print report

(* --- E5: compiler latency --- *)

let e5_views =
  [ ("projection", "CREATE MATERIALIZED VIEW v AS SELECT group_index, group_value FROM groups");
    ("filter", "CREATE MATERIALIZED VIEW v AS SELECT group_index FROM groups WHERE group_value > 10");
    ("sum/count group", groups_view_sql);
    ("min/max group", "CREATE MATERIALIZED VIEW v AS SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS hi FROM groups GROUP BY group_index");
    ("global aggregate", "CREATE MATERIALIZED VIEW v AS SELECT SUM(group_value) AS s FROM groups");
    ("join aggregate",
     "CREATE MATERIALIZED VIEW v AS SELECT customers.region, \
      SUM(sales.amount) AS total FROM sales JOIN customers ON sales.cust = \
      customers.cust GROUP BY customers.region") ]

let e5_catalog () =
  let db = Database.create () in
  ignore (Database.exec db Datagen.groups_ddl);
  ignore (Database.exec db Datagen.sales_ddl);
  ignore (Database.exec db Datagen.customers_ddl);
  Database.catalog db

let e5 () =
  let catalog = e5_catalog () in
  let report =
    Report.create ~title:"E5: SQL-to-SQL compilation latency per view class"
      ~headers:[ "view class"; "compile time"; "emitted statements" ]
  in
  List.iter
    (fun (name, sql) ->
       let reps = 200 in
       let t =
         Timer.time_unit (fun () ->
             for _ = 1 to reps do
               ignore (Openivm.Compiler.compile catalog sql)
             done)
       in
       let c = Openivm.Compiler.compile catalog sql in
       let stmt_count =
         List.length c.Openivm.Compiler.ddl
         + List.length c.Openivm.Compiler.metadata_dml
         + 1
         + List.length (Openivm.Propagate.all_statements c.Openivm.Compiler.script)
       in
       Report.add_row report
         [ name; Timer.pp_duration (t /. float_of_int reps);
           string_of_int stmt_count ])
    e5_views;
  Report.print report

(* --- the refresh benchmark: strategy × view-shape medians → JSON ---

   Regenerates the paper's Figure-4 comparison on the Minidb substrate:
   median propagation latency per (view shape × combine strategy), the
   full_recompute column doubling as the non-IVM baseline. Every
   benchmarked view is also checked against a full recompute of its
   defining query after the timed reps; any divergence prints the failing
   view and fails the whole run — a benchmark that measured a wrong
   answer is not a benchmark. Results land in --out (BENCH_refresh.json)
   for EXPERIMENTS.md to reference. *)

let refresh_out = ref "BENCH_refresh.json"
let refresh_reps = ref 5
let refresh_only = ref false
let parallel_only = ref false
let refresh_domains = ref [ 1; 2; 4 ]

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

type refresh_shape = {
  shape_name : string;
  shape_upstreams : string list;
      (* maintained views installed in order before [shape_view]; the
         benchmarked view reads the last one, forming a cascade *)
  shape_view : string;
  shape_setup : Database.t -> Datagen.t -> unit;
  shape_delta : Database.t -> Datagen.t -> unit;
  shape_flags : Openivm.Flags.t -> Openivm.Flags.t;
      (* per-shape tweak of the benchmarked view's flags *)
  shape_upstream_flags : Openivm.Flags.t -> Openivm.Flags.t;
}

let refresh_sizes () =
  match !scale with
  | `Small -> (2_000, 100)
  | `Medium -> (20_000, 500)
  | `Full -> (100_000, 2_000)

let refresh_shapes () =
  let base, delta = refresh_sizes () in
  let domain = max 100 (base / 20) in
  let groups_setup db gen =
    ignore (Database.exec db Datagen.groups_ddl);
    Datagen.populate_groups ~domain db gen ~rows:base
  in
  let groups_delta db gen =
    Datagen.apply_groups_delta db
      (Datagen.groups_delta_rows ~domain gen ~rows:delta)
  in
  let id (f : Openivm.Flags.t) = f in
  let groups name view =
    { shape_name = name; shape_upstreams = [];
      shape_view = "CREATE MATERIALIZED VIEW bench_v AS " ^ view;
      shape_setup = groups_setup; shape_delta = groups_delta;
      shape_flags = id; shape_upstream_flags = id }
  in
  (* cascaded shapes: the benchmarked view reads a maintained view, so a
     timed refresh pulls the upstream first and then folds the captured
     delta-of-the-view (the paper's views-on-views composition) *)
  let cascade name ~upstreams view =
    { (groups name view) with shape_upstreams = upstreams }
  in
  (* duplicate-heavy churn: every rep inserts a marked batch and deletes
     it again, four times over. The eager flat upstream replays each
     round into bench_v's delta table, so the pending delta is almost
     entirely +/- pairs — exactly what the Z-set consolidation pass
     cancels. Benchmarked twice, with consolidation on and off, so
     BENCH_refresh.json carries the measured win. *)
  let churn_delta db _gen =
    for _ = 1 to 4 do
      let values =
        String.concat ", "
          (List.init delta (fun i ->
               Printf.sprintf "('%s', 1000777)" (Datagen.group_key (i mod domain))))
      in
      ignore (Database.exec db ("INSERT INTO groups VALUES " ^ values));
      ignore (Database.exec db "DELETE FROM groups WHERE group_value = 1000777")
    done
  in
  let churn name flags_tweak =
    { shape_name = name;
      shape_upstreams =
        [ "CREATE MATERIALIZED VIEW bench_u1 AS \
           SELECT group_index, group_value FROM groups" ];
      shape_view =
        "CREATE MATERIALIZED VIEW bench_v AS SELECT group_index, \
         SUM(group_value) AS total_value, COUNT(*) AS n FROM bench_u1 \
         GROUP BY group_index";
      shape_setup = groups_setup; shape_delta = churn_delta;
      shape_flags = flags_tweak;
      shape_upstream_flags =
        (fun f -> { f with Openivm.Flags.refresh = Openivm.Flags.Eager }) }
  in
  let customers = max 50 (base / 40) in
  let join_setup db gen =
    ignore (Database.exec db Datagen.sales_ddl);
    ignore (Database.exec db Datagen.customers_ddl);
    Datagen.populate_customers db gen ~customers;
    Datagen.populate_sales ~customers db gen ~rows:base
  in
  let join_delta db gen =
    let values =
      String.concat ", "
        (List.init delta (fun i ->
             Printf.sprintf "(%d, %d, 'item%03d', %d)"
               (1_000_000 + i)
               (Datagen.uniform gen customers)
               (Datagen.uniform gen 500)
               (Datagen.uniform gen 10_000)))
    in
    ignore (Database.exec db ("INSERT INTO sales VALUES " ^ values));
    ignore
      (Database.exec db
         (Printf.sprintf "DELETE FROM sales WHERE cust = %d AND amount %% 97 = %d"
            (Datagen.uniform gen customers) (Datagen.uniform gen 97)))
  in
  [ groups "projection" "SELECT group_index, group_value FROM groups";
    groups "filter"
      "SELECT group_index, group_value FROM groups WHERE group_value > 500";
    groups "sum_count_group"
      "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n \
       FROM groups GROUP BY group_index";
    groups "min_max_group"
      "SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS hi \
       FROM groups GROUP BY group_index";
    groups "global_agg"
      "SELECT SUM(group_value) AS total, COUNT(*) AS n FROM groups";
    { shape_name = "join_agg";
      shape_upstreams = [];
      shape_view =
        "CREATE MATERIALIZED VIEW bench_v AS SELECT customers.region, \
         SUM(sales.amount) AS total FROM sales JOIN customers ON sales.cust \
         = customers.cust GROUP BY customers.region";
      shape_setup = join_setup; shape_delta = join_delta;
      shape_flags = id; shape_upstream_flags = id };
    cascade "cascade_2level"
      ~upstreams:
        [ "CREATE MATERIALIZED VIEW bench_u1 AS SELECT group_index, \
           SUM(group_value) AS total_value, COUNT(*) AS n FROM groups \
           GROUP BY group_index" ]
      "SELECT SUM(total_value) AS grand_total, COUNT(*) AS n_groups \
       FROM bench_u1";
    cascade "cascade_3level"
      ~upstreams:
        [ "CREATE MATERIALIZED VIEW bench_u1 AS SELECT group_index, \
           group_value FROM groups WHERE group_value > 250";
          "CREATE MATERIALIZED VIEW bench_u2 AS SELECT group_index, \
           SUM(group_value) AS total_value, COUNT(*) AS n FROM bench_u1 \
           GROUP BY group_index" ]
      "SELECT SUM(total_value) AS grand_total, COUNT(*) AS n_groups \
       FROM bench_u2";
    churn "cascade_dup_churn" id;
    churn "cascade_dup_churn_noconsol"
      (fun f -> { f with Openivm.Flags.consolidate_deltas = false }) ]

let refresh_strategies =
  [ Openivm.Flags.Upsert_linear; Openivm.Flags.Union_regroup;
    Openivm.Flags.Outer_join_merge; Openivm.Flags.Rederive_affected;
    Openivm.Flags.Full_recompute ]

type refresh_result = {
  r_shape : string;
  r_strategy : string;
  r_engine : string;    (* which executor ran the cell: vector or row *)
  r_domains : int;      (* refresh parallelism the cell ran under *)
  r_median : float;
  r_min : float;
  r_max : float;
  r_converged : bool;
}

let refresh_json results =
  let base, delta = refresh_sizes () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"benchmark\": \"refresh\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n"
    (match !scale with `Small -> "small" | `Medium -> "medium" | `Full -> "full");
  Printf.bprintf b "  \"reps\": %d,\n" (max 1 !refresh_reps);
  Buffer.add_string b "  \"warmup_reps\": 1,\n";
  (* interpreting the domains axis needs the host's width cap: domains
     rows above this ran sequentially (Parallel.width caps fan-out at the
     available parallelism), so their medians track the domains=1 row *)
  Printf.bprintf b "  \"host_recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.bprintf b "  \"base_rows\": %d,\n" base;
  Printf.bprintf b "  \"delta_rows\": %d,\n" delta;
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i r ->
       Printf.bprintf b
         "    {\"shape\": %S, \"strategy\": %S, \"exec_engine\": %S, \
          \"domains\": %d, \"median_seconds\": %.9f, \"min_seconds\": %.9f, \
          \"max_seconds\": %.9f, \"converged\": %b}%s\n"
         r.r_shape r.r_strategy r.r_engine r.r_domains r.r_median r.r_min
         r.r_max r.r_converged
         (if i = List.length results - 1 then "" else ","))
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* --- the recovery benchmark: cold start vs durable-store recovery ---

   How much does durability buy at restart? Seed a data directory with
   the base rows folded into a checkpoint and a tail of delta batches
   still in the WAL, then time three ways of getting a queryable view:
   [cold_start] rebuilds everything from raw rows (full initial load, no
   durability), [wal_replay] recovers checkpoint + tail, and
   [checkpoint_load] recovers after the tail has been folded away. Each
   path is divergence-gated like every other benchmark row. *)

let recovery_results () : refresh_result list =
  let module Store = Openivm_store.Store in
  let base, delta = refresh_sizes () in
  let reps = max 1 !refresh_reps in
  let domain = max 100 (base / 20) in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_temp_dir f =
    let dir = Filename.temp_file "openivm_bench_rec" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let view_sql =
    "CREATE MATERIALIZED VIEW bench_v AS SELECT group_index, \
     SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
     group_index"
  in
  let row i =
    Printf.sprintf "('%s', %d)" (Datagen.group_key (i mod domain))
      ((i * 37) mod 1_000)
  in
  let values lo n =
    "INSERT INTO groups VALUES "
    ^ String.concat ", " (List.init n (fun i -> row (lo + i)))
  in
  let tail_batches = 5 in
  with_temp_dir (fun dir ->
      (* seed: base rows + installed view in a checkpoint, deltas in the tail *)
      let store = Store.open_ ~dir () in
      ignore (Store.exec store Datagen.groups_ddl);
      ignore (Store.exec store (values 0 base));
      ignore (Store.exec store view_sql);
      ignore (Store.checkpoint store);
      for b = 0 to tail_batches - 1 do
        ignore (Store.exec store (values (base + (b * delta)) delta))
      done;
      Store.close store;
      let time_open () =
        Timer.time_unit (fun () ->
            let s = Store.open_ ~dir () in
            List.iter Openivm.Runner.refresh (Store.views s);
            Store.close s)
      in
      let replay_times = List.init reps (fun _ -> time_open ()) in
      let s = Store.open_ ~dir () in
      let replay_converged = Store.verify s in
      (* fold the tail away so the next measurements load checkpoint only *)
      ignore (Store.checkpoint s);
      Store.close s;
      let checkpoint_times = List.init reps (fun _ -> time_open ()) in
      let s = Store.open_ ~dir () in
      let checkpoint_converged =
        Store.verify s && (Store.last_recovery s).Store.replayed = 0
      in
      Store.close s;
      (* the non-durable baseline: rebuild the same final state from raw
         rows and pay the full initial load *)
      let total = base + (tail_batches * delta) in
      let cold_converged = ref true in
      let cold_times =
        List.init reps (fun _ ->
            Timer.time_unit (fun () ->
                let db = Database.create () in
                ignore (Database.exec db Datagen.groups_ddl);
                ignore (Database.exec db (values 0 total));
                let v = Openivm.Runner.install db view_sql in
                cold_converged :=
                  !cold_converged
                  && Openivm.Runner.visible_rows v
                     = Openivm.Runner.recompute_rows v))
      in
      let mk strategy times converged =
        { r_shape = "recovery"; r_strategy = strategy;
          r_engine = Exec.engine_to_string !Exec.default_engine;
          r_domains = 1;
          r_median = median times;
          r_min = List.fold_left min infinity times;
          r_max = List.fold_left max neg_infinity times;
          r_converged = converged }
      in
      [ mk "cold_start" cold_times !cold_converged;
        mk "wal_replay" replay_times replay_converged;
        mk "checkpoint_load" checkpoint_times checkpoint_converged ])

(* --- the multi-session churn benchmark: serving-layer scaling ---

   What does consolidating N sessions' deltas into shared ticks buy?
   A fixed budget of DML units is pushed through the serving layer's
   single-writer scheduler by 1, 4 and 16 concurrent session threads;
   the measured wall clock covers submission through drain (every view
   refreshed). One session replays the units back-to-back — each await
   runs its own tick — while 16 sessions pile units into shared ticks
   and the propagation folds them consolidated. Divergence-gated like
   every other row: after each rep, every view must agree with a full
   recompute pinned to the row engine. *)

let multi_session_results () : refresh_result list =
  let module Scheduler = Openivm_server.Scheduler in
  let module Session = Openivm_server.Session in
  let base, _ = refresh_sizes () in
  let reps = max 1 !refresh_reps in
  let domain = max 100 (base / 20) in
  let total_units = 160 in
  let unit_sql u =
    Printf.sprintf "INSERT INTO groups VALUES ('%s', %d), ('%s', %d)"
      (Datagen.group_key (u mod domain))
      (u * 31 mod 1_000)
      (Datagen.group_key (u * 7 mod domain))
      (u * 17 mod 1_000)
  in
  let view_sql =
    "CREATE MATERIALIZED VIEW bench_v AS SELECT group_index, \
     SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
     group_index"
  in
  let run n_sessions =
    let db = Database.create () in
    ignore (Database.exec db Datagen.groups_ddl);
    Datagen.populate_groups ~domain db (Datagen.create ~seed:42 ()) ~rows:base;
    let flags =
      { Openivm.Flags.default with Openivm.Flags.refresh = Openivm.Flags.Lazy }
    in
    let ext = Openivm.Runner.load ~flags db in
    let sched = Scheduler.create ext in
    let setup = Session.create sched ~tenant:"bench" in
    (match Session.exec setup view_sql with
     | Session.Msg _ -> ()
     | _ -> failwith "multi_session_churn: view install failed");
    Session.close setup;
    let ok = ref true in
    let per = total_units / n_sessions in
    let t =
      Timer.time_unit (fun () ->
          let threads =
            List.init n_sessions (fun s ->
                Thread.create
                  (fun s ->
                     let sess =
                       Session.create sched
                         ~tenant:(Printf.sprintf "bench-%d" s)
                     in
                     for k = 0 to per - 1 do
                       match Session.exec sess (unit_sql ((s * per) + k)) with
                       | Session.Affected _ -> ()
                       | _ -> ok := false
                     done;
                     Session.close sess)
                  s)
          in
          List.iter Thread.join threads;
          Scheduler.drain sched)
    in
    let converged =
      !ok
      && List.for_all
           (fun v ->
              let got = Openivm.Runner.visible_rows v in
              let expected =
                let saved = db.Database.exec_engine in
                db.Database.exec_engine <- Exec.Row;
                Fun.protect
                  ~finally:(fun () -> db.Database.exec_engine <- saved)
                  (fun () -> Openivm.Runner.recompute_rows v)
              in
              got = expected)
           ext.Openivm.Runner.ext_views
    in
    (t, converged)
  in
  List.map
    (fun n ->
       let runs = List.init reps (fun _ -> run n) in
       let times = List.map fst runs in
       { r_shape = "multi_session_churn";
         r_strategy = Printf.sprintf "sessions_%d" n;
         r_engine = Exec.engine_to_string !Exec.default_engine;
         r_domains = 1;
         r_median = median times;
         r_min = List.fold_left min infinity times;
         r_max = List.fold_left max neg_infinity times;
         r_converged = List.for_all snd runs })
    [ 1; 4; 16 ]

(* --- the domains axis: domain-parallel refresh scaling ---

   The same timed protocol as the main table, re-run at each requested
   refresh-parallelism width (--domains, default 1,2,4) over the shapes
   where sharding has work to split. Each refresh folds several batches'
   worth of delta (delta_mult × the main table's batch) so the
   partitioned fill dominates the fixed per-refresh costs; every width
   sees an identical workload, and every row is divergence-gated against
   a row-engine recompute like the rest of the JSON. *)

let parallel_shapes =
  [ ("sum_count_group", Openivm.Flags.Upsert_linear);
    ("join_agg", Openivm.Flags.Upsert_linear);
    ("cascade_3level", Openivm.Flags.Union_regroup) ]

let parallel_results () : refresh_result list =
  let reps = max 1 !refresh_reps in
  let delta_mult = 8 in
  let shapes = refresh_shapes () in
  let table =
    Report.create
      ~title:
        (Printf.sprintf
           "Refresh latency, domains axis (vector engine): median of %d \
            propagation(s), %d delta batches per rep"
           reps delta_mult)
      ~headers:
        ("view shape / strategy"
         :: List.map
              (fun d -> Printf.sprintf "domains=%d" d)
              !refresh_domains
         @ [ "speedup" ])
  in
  let cores = Domain.recommended_domain_count () in
  if List.exists (fun d -> d > cores) !refresh_domains then
    Printf.printf
      "note: host parallelism is %d; domains above that are width-capped \
       and run sequentially\n"
      cores;
  let rows =
    List.concat_map
      (fun (shape_name, strategy) ->
         match List.find_opt (fun s -> s.shape_name = shape_name) shapes with
         | None -> []
         | Some sh ->
           let cells =
             List.map
               (fun domains ->
                  let db = Database.create () in
                  db.Database.exec_engine <- Exec.Vector;
                  let gen = Datagen.create ~seed:99 () in
                  sh.shape_setup db gen;
                  let flags =
                    { Openivm.Flags.default with
                      strategy; exec_engine = Exec.Vector; domains }
                  in
                  let upstreams =
                    List.fold_left
                      (fun acc sql ->
                         Openivm.Runner.install
                           ~flags:(sh.shape_upstream_flags flags)
                           ~registry:(List.rev acc) db sql
                         :: acc)
                      [] sh.shape_upstreams
                  in
                  let registry = List.rev upstreams in
                  let v =
                    Openivm.Runner.install ~flags:(sh.shape_flags flags)
                      ~registry db sh.shape_view
                  in
                  let apply_delta () =
                    for _ = 1 to delta_mult do sh.shape_delta db gen done
                  in
                  apply_delta ();
                  Openivm.Runner.force_refresh v;
                  let times =
                    List.init reps (fun _ ->
                        apply_delta ();
                        Timer.time_unit (fun () ->
                            Openivm.Runner.force_refresh v))
                  in
                  let converged =
                    List.for_all
                      (fun u ->
                         let got = Openivm.Runner.visible_rows u in
                         let expected =
                           let saved = db.Database.exec_engine in
                           db.Database.exec_engine <- Exec.Row;
                           Fun.protect
                             ~finally:(fun () ->
                                 db.Database.exec_engine <- saved)
                             (fun () -> Openivm.Runner.recompute_rows u)
                         in
                         got = expected)
                      (registry @ [ v ])
                  in
                  { r_shape = shape_name;
                    r_strategy = Openivm.Flags.strategy_to_string strategy;
                    r_engine = Exec.engine_to_string Exec.Vector;
                    r_domains = domains;
                    r_median = median times;
                    r_min = List.fold_left min infinity times;
                    r_max = List.fold_left max neg_infinity times;
                    r_converged = converged })
               !refresh_domains
           in
           let sequential =
             match
               List.find_opt (fun r -> r.r_domains = 1) cells
             with
             | Some r -> r.r_median
             | None -> (List.hd cells).r_median
           in
           let widest =
             List.fold_left
               (fun acc r -> if r.r_domains > acc.r_domains then r else acc)
               (List.hd cells) cells
           in
           Report.add_row table
             ((Printf.sprintf "%s/%s" shape_name
                 (Openivm.Flags.strategy_to_string strategy))
              :: List.map (fun r -> Timer.pp_duration r.r_median) cells
              @ [ Report.speedup sequential widest.r_median ]);
           cells)
      parallel_shapes
  in
  Report.print table;
  rows

let refresh_bench () =
  let base, delta = refresh_sizes () in
  let reps = max 1 !refresh_reps in
  let results = ref [] in
  let diverged = ref [] in
  (* the executor axis: every cell runs once under the vectorized engine
     and once under the row interpreter, and both land in the JSON; the
     correctness gate always recomputes on the row engine, so a vectorized
     cell that merely agrees with itself cannot pass *)
  List.iter
    (fun engine ->
       let ename = Exec.engine_to_string engine in
       let table =
         Report.create
           ~title:
             (Printf.sprintf
                "Refresh latency (%s engine): median of %d propagation(s), \
                 %d base rows, %d delta rows per rep"
                ename reps base delta)
           ~headers:
             ("view shape"
              :: List.map Openivm.Flags.strategy_to_string refresh_strategies)
       in
       List.iter
         (fun sh ->
            let cells =
              List.map
                (fun strategy ->
                   let db = Database.create () in
                   db.Database.exec_engine <- engine;
                   let gen = Datagen.create ~seed:99 () in
                   sh.shape_setup db gen;
                   let flags =
                     { Openivm.Flags.default with strategy;
                       exec_engine = engine }
                   in
                   let install_stack () =
                     let upstreams =
                       List.fold_left
                         (fun acc sql ->
                            Openivm.Runner.install
                              ~flags:(sh.shape_upstream_flags flags)
                              ~registry:(List.rev acc) db sql
                            :: acc)
                         [] sh.shape_upstreams
                     in
                     let registry = List.rev upstreams in
                     let v =
                       Openivm.Runner.install ~flags:(sh.shape_flags flags)
                         ~registry db sh.shape_view
                     in
                     (registry, v)
                   in
                   match install_stack () with
                   | exception Openivm.Compiler.Unsupported_view _ -> "n/a"
                   | (upstreams, v) ->
                     (* one discarded warmup rep: the first propagation
                        pays one-off costs (index builds, stage-table
                        DDL, allocator growth) that would otherwise
                        inflate max_seconds far beyond steady state *)
                     sh.shape_delta db gen;
                     Openivm.Runner.force_refresh v;
                     let times =
                       List.init reps (fun _ ->
                           sh.shape_delta db gen;
                           Timer.time_unit (fun () ->
                               Openivm.Runner.force_refresh v))
                     in
                     let converged =
                       List.for_all
                         (fun u ->
                            let got = Openivm.Runner.visible_rows u in
                            let expected =
                              let saved = db.Database.exec_engine in
                              db.Database.exec_engine <- Exec.Row;
                              Fun.protect
                                ~finally:(fun () ->
                                    db.Database.exec_engine <- saved)
                                (fun () -> Openivm.Runner.recompute_rows u)
                            in
                            got = expected)
                         (upstreams @ [ v ])
                     in
                     let name = Openivm.Flags.strategy_to_string strategy in
                     if not converged then
                       diverged := (sh.shape_name, name, ename) :: !diverged;
                     results :=
                       { r_shape = sh.shape_name; r_strategy = name;
                         r_engine = ename;
                         r_domains = 1;
                         r_median = median times;
                         r_min = List.fold_left min infinity times;
                         r_max = List.fold_left max neg_infinity times;
                         r_converged = converged }
                       :: !results;
                     Timer.pp_duration (median times))
                refresh_strategies
            in
            Report.add_row table (sh.shape_name :: cells))
         (refresh_shapes ());
       Report.print table)
    [ Exec.Vector; Exec.Row ];
  (* the recovery rows ride along in the same JSON: shape "recovery",
     one strategy slot per restart path *)
  let recovery = recovery_results () in
  List.iter
    (fun r ->
       Printf.printf "recovery/%-16s %s\n" r.r_strategy
         (Timer.pp_duration r.r_median);
       if not r.r_converged then
         diverged := (r.r_shape, r.r_strategy, r.r_engine) :: !diverged)
    recovery;
  (* the serving-layer scaling rows ride along too: shape
     "multi_session_churn", one strategy slot per session count *)
  let multi = multi_session_results () in
  List.iter
    (fun r ->
       Printf.printf "multi_session/%-12s %s\n" r.r_strategy
         (Timer.pp_duration r.r_median);
       if not r.r_converged then
         diverged := (r.r_shape, r.r_strategy, r.r_engine) :: !diverged)
    multi;
  (* the domains axis: domain-parallel rows for the shardable shapes *)
  let parallel = parallel_results () in
  List.iter
    (fun r ->
       if not r.r_converged then
         diverged :=
           ( r.r_shape,
             Printf.sprintf "%s (domains=%d)" r.r_strategy r.r_domains,
             r.r_engine )
           :: !diverged)
    parallel;
  let results = List.rev !results @ recovery @ multi @ parallel in
  let oc = open_out !refresh_out in
  output_string oc (refresh_json results);
  close_out oc;
  Printf.printf "wrote %s (%d measurements)\n" !refresh_out
    (List.length results);
  if !diverged <> [] then begin
    List.iter
      (fun (shape, strategy, engine) ->
         Printf.eprintf
           "BENCH DIVERGENCE: view %s under %s (%s engine) disagrees with \
            full recompute\n"
           shape strategy engine)
      (List.rev !diverged);
    exit 1
  end

(* --- Bechamel micro-benchmarks: one Test.make per experiment table --- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* E1 micro: one propagation refresh over a prepared delta *)
  let e1_test =
    let db, v =
      setup_groups_db ~rows:5_000 ~domain:500
        ~strategy:Openivm.Flags.Upsert_linear
    in
    let gen = Datagen.create ~seed:5 () in
    Test.make ~name:"e1/propagate_100_of_5k"
      (Staged.stage (fun () ->
           Datagen.apply_groups_delta db
             (Datagen.groups_delta_rows ~domain:500 gen ~rows:100);
           Openivm.Runner.force_refresh v))
  in
  let e2_test =
    let bindings =
      Array.init 10_000 (fun i -> (Value.encode_key [| Value.Int i |], i))
    in
    Test.make ~name:"e2/art_bulk_build_10k"
      (Staged.stage (fun () -> ignore (Art.of_sorted bindings)))
  in
  let e3_test =
    let p =
      Openivm_htap.Pipeline.create
        ~schema_sql:(Datagen.groups_ddl ^ ";")
        ~view_sql:groups_view_sql ()
    in
    let tx = Openivm_htap.Txgen.create ~seed:1 () in
    Test.make ~name:"e3/cross_system_round_50tx"
      (Staged.stage (fun () ->
           List.iter
             (fun sql -> ignore (Openivm_htap.Pipeline.exec_oltp p sql))
             (Openivm_htap.Txgen.batch tx 50);
           ignore (Openivm_htap.Pipeline.query p "SELECT * FROM query_groups")))
  in
  let e4_test =
    let db, v =
      setup_groups_db ~rows:5_000 ~domain:500
        ~strategy:Openivm.Flags.Rederive_affected
    in
    let gen = Datagen.create ~seed:6 () in
    Test.make ~name:"e4/rederive_100_of_5k"
      (Staged.stage (fun () ->
           Datagen.apply_groups_delta db
             (Datagen.groups_delta_rows ~domain:500 gen ~rows:100);
           Openivm.Runner.force_refresh v))
  in
  let e5_test =
    let catalog = e5_catalog () in
    Test.make ~name:"e5/compile_sum_count_view"
      (Staged.stage (fun () ->
           ignore (Openivm.Compiler.compile catalog groups_view_sql)))
  in
  let grouped =
    Test.make_grouped ~name:"openivm"
      [ e1_test; e2_test; e3_test; e4_test; e5_test ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let report =
    Report.create ~title:"Bechamel micro-benchmarks (monotonic clock)"
      ~headers:[ "benchmark"; "time/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
       let t =
         match Analyze.OLS.estimates est with
         | Some (t :: _) -> Timer.pp_duration (t *. 1e-9)
         | _ -> "n/a"
       in
       rows := (name, t) :: !rows)
    results;
  List.iter
    (fun (name, t) -> Report.add_row report [ name; t ])
    (List.sort compare !rows);
  Report.print report

(* --- driver --- *)

let () =
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
     | "--small" -> scale := `Small
     | "--full" -> scale := `Full
     | "--micro" -> run_micro := true
     | "--refresh-only" -> refresh_only := true
     | "--parallel-only" -> parallel_only := true
     | "--reps" when !i + 1 < Array.length argv ->
       incr i;
       refresh_reps := int_of_string argv.(!i)
     | "--out" when !i + 1 < Array.length argv ->
       incr i;
       refresh_out := argv.(!i)
     | "--domains" when !i + 1 < Array.length argv ->
       incr i;
       refresh_domains :=
         List.map
           (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some d when d >= 1 -> d
              | _ ->
                Printf.eprintf "bad --domains list %s\n" argv.(!i);
                exit 2)
           (String.split_on_char ',' argv.(!i))
     | arg ->
       Printf.eprintf
         "unknown option %s (use --small/--full, --micro, --refresh-only, \
          --reps N, --out FILE, --domains LIST)\n"
         arg;
       exit 2);
    incr i
  done;
  Printf.printf
    "OpenIVM benchmark harness (scale: %s)\n\
     Substrate: Minidb engine — shapes, not absolute numbers, are the \
     reproduction target.\n\n"
    (match !scale with `Small -> "small" | `Medium -> "medium" | `Full -> "full");
  if !parallel_only then begin
    (* iterate on the domains axis alone; still divergence-gated *)
    let rows = parallel_results () in
    if List.exists (fun r -> not r.r_converged) rows then exit 1
  end
  else if !refresh_only then refresh_bench ()
  else begin
    e1 ();
    e1b ();
    e2 ();
    e3 ();
    e4 ();
    e4c ();
    e5 ();
    refresh_bench ();
    if !run_micro then micro ()
  end
