(** Interactive shell — the demonstration's "DuckDB shell" stand-in: a
    read-eval-print loop over the Minidb engine with the OpenIVM extension
    loaded, so CREATE MATERIALIZED VIEW works natively and base-table DML
    feeds the installed views.

    Dot commands: .tables, .views, .plan <sql>, .scripts <view>,
    .refresh <view>, .help, .quit. *)

open Openivm_engine

let print_help () =
  print_string
    "Statements end with ';'. CREATE MATERIALIZED VIEW is compiled by \
     OpenIVM.\n\
     .tables             list tables\n\
     .views              list installed materialized views\n\
     .plan SELECT ...;   show the optimized logical plan\n\
     .scripts NAME       show the stored propagation script for a view\n\
     .refresh NAME       force-refresh a materialized view\n\
     .help               this message\n\
     .quit               exit\n"

let handle_dot (ext : Openivm.Runner.extension) line =
  let db = ext.Openivm.Runner.ext_db in
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ ".quit" ] | [ ".exit" ] -> exit 0
  | [ ".help" ] -> print_help ()
  | [ ".tables" ] ->
    List.iter print_endline (Catalog.table_names (Database.catalog db))
  | [ ".views" ] ->
    List.iter
      (fun v ->
         Printf.printf "%s  (pending deltas: %d, refreshes: %d)\n"
           (Openivm.Runner.view_name v)
           v.Openivm.Runner.pending_deltas v.Openivm.Runner.refresh_count)
      ext.Openivm.Runner.ext_views
  | ".plan" :: rest ->
    let sql = String.concat " " rest in
    let sql =
      if String.length sql > 0 && sql.[String.length sql - 1] = ';' then
        String.sub sql 0 (String.length sql - 1)
      else sql
    in
    (match Database.exec db ("EXPLAIN " ^ sql) with
     | Database.Ok_msg plan -> print_endline plan
     | _ -> print_endline "(no plan)")
  | [ ".scripts"; name ] ->
    (match Database.exec db
             (Printf.sprintf
                "SELECT step, purpose, sql FROM _openivm_scripts WHERE \
                 view_name = '%s' ORDER BY step"
                name)
     with
     | Database.Rows r ->
       List.iter
         (fun (row : Row.t) ->
            Printf.printf "-- step %s (%s)\n%s;\n"
              (Value.to_string row.(0)) (Value.to_string row.(1))
              (Value.to_string row.(2)))
         r.Database.rows
     | _ -> print_endline "(no scripts)")
  | [ ".refresh"; name ] ->
    (match Openivm.Runner.find_view ext name with
     | Some v ->
       Openivm.Runner.force_refresh v;
       print_endline "refreshed"
     | None -> Printf.printf "no installed view %S\n" name)
  | _ -> print_endline "unknown command; try .help"

let execute ext sql =
  match Openivm.Runner.exec_ext ext sql with
  | `Installed v ->
    Printf.printf "installed materialized view %s\n"
      (Openivm.Runner.view_name v)
  | `Result (Database.Rows r) -> print_endline (Database.render_result r)
  | `Result (Database.Affected n) -> Printf.printf "%d row(s) affected\n" n
  | `Result (Database.Ok_msg msg) -> print_endline msg

let () =
  let db = Database.create () in
  let ext = Openivm.Runner.load db in
  print_endline "Minidb shell with the OpenIVM extension. Type .help for help.";
  let buf = Buffer.create 256 in
  let interactive = Unix.isatty Unix.stdin in
  try
    while true do
      if interactive then begin
        if Buffer.length buf = 0 then print_string "minidb> "
        else print_string "   ...> ";
        flush stdout
      end;
      let line = input_line stdin in
      let trimmed = String.trim line in
      if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
      then handle_dot ext line
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';'
        then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          try execute ext sql with
          | Error.Sql_error msg -> Printf.printf "error: %s\n" msg
          | Openivm_sql.Parser.Error (msg, pos) ->
            Printf.printf "parse error at byte %d: %s\n" pos msg
          | Openivm_sql.Lexer.Error (msg, pos) ->
            Printf.printf "lex error at byte %d: %s\n" pos msg
          | Openivm.Compiler.Unsupported_view reason ->
            Printf.printf "unsupported view: %s\n" reason
        end
      end
    done
  with End_of_file -> ()
