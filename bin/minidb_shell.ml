(** Interactive shell — the demonstration's "DuckDB shell" stand-in: a
    read-eval-print loop over the Minidb engine with the OpenIVM extension
    loaded, so CREATE MATERIALIZED VIEW works natively and base-table DML
    feeds the installed views.

    Dot commands: .tables, .views, .plan <sql>, .scripts <view>,
    .refresh <view>, .help, .quit.

    With [--connect HOST:PORT] (or [--connect /path/to.sock]) the shell
    runs as a line-protocol client of [openivm serve] instead: the same
    read-eval-print loop, but statements travel over the wire and views
    are maintained by the server's tick scheduler. *)

open Openivm_engine

let print_help () =
  print_string
    "Statements end with ';'. CREATE MATERIALIZED VIEW is compiled by \
     OpenIVM.\n\
     .tables             list tables\n\
     .views              list installed materialized views\n\
     .plan SELECT ...;   show the optimized logical plan\n\
     .scripts NAME       show the stored propagation script for a view\n\
     .refresh NAME       force-refresh a materialized view\n\
     .help               this message\n\
     .quit               exit\n"

let handle_dot (ext : Openivm.Runner.extension) line =
  let db = ext.Openivm.Runner.ext_db in
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ ".quit" ] | [ ".exit" ] -> exit 0
  | [ ".help" ] -> print_help ()
  | [ ".tables" ] ->
    List.iter print_endline (Catalog.table_names (Database.catalog db))
  | [ ".views" ] ->
    List.iter
      (fun v ->
         Printf.printf "%s  (pending deltas: %d, refreshes: %d)\n"
           (Openivm.Runner.view_name v)
           v.Openivm.Runner.pending_deltas v.Openivm.Runner.refresh_count)
      ext.Openivm.Runner.ext_views
  | ".plan" :: rest ->
    let sql = String.concat " " rest in
    let sql =
      if String.length sql > 0 && sql.[String.length sql - 1] = ';' then
        String.sub sql 0 (String.length sql - 1)
      else sql
    in
    (match Database.exec db ("EXPLAIN " ^ sql) with
     | Database.Ok_msg plan -> print_endline plan
     | _ -> print_endline "(no plan)")
  | [ ".scripts"; name ] ->
    (match Database.exec db
             (Printf.sprintf
                "SELECT step, purpose, sql FROM _openivm_scripts WHERE \
                 view_name = '%s' ORDER BY step"
                name)
     with
     | Database.Rows r ->
       List.iter
         (fun (row : Row.t) ->
            Printf.printf "-- step %s (%s)\n%s;\n"
              (Value.to_string row.(0)) (Value.to_string row.(1))
              (Value.to_string row.(2)))
         r.Database.rows
     | _ -> print_endline "(no scripts)")
  | [ ".refresh"; name ] ->
    (match Openivm.Runner.find_view ext name with
     | Some v ->
       Openivm.Runner.force_refresh v;
       print_endline "refreshed"
     | None -> Printf.printf "no installed view %S\n" name)
  | _ -> print_endline "unknown command; try .help"

let execute ext sql =
  match Openivm.Runner.exec_ext ext sql with
  | `Installed v ->
    Printf.printf "installed materialized view %s\n"
      (Openivm.Runner.view_name v)
  | `Result (Database.Rows r) -> print_endline (Database.render_result r)
  | `Result (Database.Affected n) -> Printf.printf "%d row(s) affected\n" n
  | `Result (Database.Ok_msg msg) -> print_endline msg

(** Shared REPL skeleton: prompt, buffer statements up to ';', hand dot
    commands and complete statements to the callbacks. *)
let repl ~on_dot ~on_sql =
  let buf = Buffer.create 256 in
  let interactive = Unix.isatty Unix.stdin in
  try
    while true do
      if interactive then begin
        if Buffer.length buf = 0 then print_string "minidb> "
        else print_string "   ...> ";
        flush stdout
      end;
      let line = input_line stdin in
      let trimmed = String.trim line in
      if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
      then on_dot line
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';'
        then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          on_sql sql
        end
      end
    done
  with End_of_file -> ()

let run_local () =
  let db = Database.create () in
  let ext = Openivm.Runner.load db in
  print_endline "Minidb shell with the OpenIVM extension. Type .help for help.";
  repl
    ~on_dot:(fun line -> handle_dot ext line)
    ~on_sql:(fun sql ->
      try execute ext sql with
      | Error.Sql_error msg -> Printf.printf "error: %s\n" msg
      | Openivm_sql.Parser.Error (msg, pos) ->
        Printf.printf "parse error at byte %d: %s\n" pos msg
      | Openivm_sql.Lexer.Error (msg, pos) ->
        Printf.printf "lex error at byte %d: %s\n" pos msg
      | Openivm.Compiler.Unsupported_view reason ->
        Printf.printf "unsupported view: %s\n" reason)

(* --- client mode: speak the line protocol to `openivm serve` --- *)

module Wire = Openivm_server.Wire

let resolve_target target =
  if String.contains target '/' then Unix.ADDR_UNIX target
  else
    match String.rindex_opt target ':' with
    | None ->
      Printf.eprintf
        "minidb_shell: --connect wants HOST:PORT or a socket path, got %S\n"
        target;
      exit 2
    | Some i ->
      let host = String.sub target 0 i in
      let port =
        match
          int_of_string_opt (String.sub target (i + 1) (String.length target - i - 1))
        with
        | Some p -> p
        | None ->
          Printf.eprintf "minidb_shell: bad port in %S\n" target;
          exit 2
      in
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            Printf.eprintf "minidb_shell: cannot resolve %S\n" host;
            exit 2)
      in
      Unix.ADDR_INET (ip, port)

(** One statement per SQL frame: the trailing ';' stays local. *)
let strip_semicolon sql =
  let t = String.trim sql in
  if String.length t > 0 && t.[String.length t - 1] = ';' then
    String.sub t 0 (String.length t - 1)
  else t

let run_client target tenant =
  let addr = resolve_target target in
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "minidb_shell: cannot connect to %s: %s\n" target
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send req =
    output_string oc (Wire.render_request req);
    output_char oc '\n';
    flush oc
  in
  let next_line () = try Some (input_line ic) with End_of_file -> None in
  let print_response = function
    | Ok (Wire.Session id) -> Printf.printf "connected: session %d\n" id
    | Ok (Wire.Ok_affected n) -> Printf.printf "%d row(s) affected\n" n
    | Ok (Wire.Queued n) -> Printf.printf "queued in transaction (%d buffered)\n" n
    | Ok (Wire.Msg m) -> print_endline m
    | Ok (Wire.Rows { cols; rows }) ->
      if cols <> [] then print_endline (String.concat " | " cols);
      List.iter print_endline rows;
      Printf.printf "(%d row(s))\n" (List.length rows)
    | Ok (Wire.Err { code; message }) ->
      Printf.printf "error [%s]: %s\n" code message
    | Ok (Wire.Overloaded reason) -> Printf.printf "overloaded: %s\n" reason
    | Ok Wire.Pong -> print_endline "pong"
    | Ok Wire.Bye ->
      print_endline "bye";
      exit 0
    | Error msg ->
      Printf.printf "protocol error: %s\n" msg;
      exit 1
  in
  let roundtrip req =
    send req;
    print_response (Wire.parse_response ~next_line)
  in
  Printf.printf "Minidb shell connected to %s (tenant %s).\n" target tenant;
  roundtrip (Wire.Hello tenant);
  repl
    ~on_dot:(fun line ->
      match String.trim line with
      | ".quit" | ".exit" -> roundtrip Wire.Quit
      | ".ping" -> roundtrip Wire.Ping
      | ".help" ->
        print_string
          "Statements end with ';' and run on the server (BEGIN; / COMMIT; \
           / ROLLBACK; for transactions).\n\
           .ping               check the connection\n\
           .quit               close the session and exit\n"
      | _ -> print_endline "unknown command in client mode; try .help")
    ~on_sql:(fun sql -> roundtrip (Wire.Sql (strip_semicolon sql)))

let () =
  match Array.to_list Sys.argv with
  | _ :: "--connect" :: target :: rest ->
    let tenant = match rest with "--tenant" :: t :: _ -> t | _ -> "shell" in
    run_client target tenant
  | _ :: arg :: _ when arg = "--help" || arg = "-h" ->
    print_string
      "usage: minidb_shell [--connect HOST:PORT|SOCKET_PATH [--tenant NAME]]\n\
       Without --connect: a local Minidb REPL with the OpenIVM extension.\n\
       With --connect: a line-protocol client of `openivm serve`.\n"
  | _ -> run_local ()
