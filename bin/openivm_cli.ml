(** The standalone SQL-to-SQL compiler ("the OpenIVM SQL-to-SQL compiler
    can be used as a standalone command-line tool", paper §2).

    Reads a schema (CREATE TABLE statements) and a CREATE MATERIALIZED VIEW
    definition — from files or inline — and prints every compiled artifact:
    DDL, initial load, four-step propagation script, capture-trigger DDL.

      openivm compile --schema schema.sql --view view.sql \
        --dialect postgres --strategy rederive_affected *)

open Cmdliner
open Openivm_engine

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_input ~inline ~file ~what =
  match inline, file with
  | Some sql, None -> Ok sql
  | None, Some path ->
    (try Ok (read_file path)
     with Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" what msg))
  | Some _, Some _ -> Error (Printf.sprintf "give %s inline or as a file, not both" what)
  | None, None -> Error (Printf.sprintf "missing %s (use --%s or --%s-file)" what what what)

let strategy_of_string s =
  match Openivm.Flags.strategy_of_string s with
  | Some st -> Ok st
  | None -> Error (Printf.sprintf "unknown strategy %S" s)

let dialect_of_string s =
  match Openivm_sql.Dialect.of_string s with
  | Some d -> Ok d
  | None -> Error (Printf.sprintf "unknown dialect %S" s)

(* --- observability: the shared --trace flag --- *)

module Obs = Openivm_obs

let trace_format = function
  | None -> Ok None
  | Some "text" -> Ok (Some `Text)
  | Some "json" -> Ok (Some `Json)
  | Some ("prom" | "prometheus") -> Ok (Some `Prometheus)
  | Some f ->
    Error
      (Printf.sprintf "unknown trace format %S (use text, json or prometheus)"
         f)

(** Run [f] with span collection on and dump the report to stderr when it
    returns — even on failure, so a crashing refresh still shows where the
    time went. *)
let with_trace trace f =
  match trace_format trace with
  | Error msg -> Error msg
  | Ok None -> f ()
  | Ok (Some fmt) ->
    Obs.Report.reset_all ();
    Obs.Span.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
          Obs.Span.set_enabled false;
          prerr_endline (Obs.Report.render fmt))
      f

let trace_arg =
  Arg.(value & opt ~vopt:(Some "text") (some string) None
       & info [ "trace" ] ~docv:"FMT"
         ~doc:"Collect tracing spans and metrics during the run and print \
               the report to stderr on exit. $(docv) is text (default), \
               json or prometheus.")

let compile_action schema schema_file view view_file dialect strategy
    paper_compat eager no_indexes advise expected_delta =
  let ( let* ) = Result.bind in
  let* schema_sql = load_input ~inline:schema ~file:schema_file ~what:"schema" in
  let* view_sql = load_input ~inline:view ~file:view_file ~what:"view" in
  let* dialect = dialect_of_string dialect in
  let* strategy = strategy_of_string strategy in
  let flags =
    { (if paper_compat then Openivm.Flags.paper else Openivm.Flags.default) with
      dialect; strategy;
      refresh = (if eager then Openivm.Flags.Eager else Openivm.Flags.Lazy);
      create_indexes = not no_indexes }
  in
  let db = Database.create () in
  let* () =
    try
      ignore (Database.exec_script db schema_sql);
      Ok ()
    with
    | Error.Sql_error msg -> Error ("schema error: " ^ msg)
    | Openivm_sql.Parser.Error (msg, pos) ->
      Error (Printf.sprintf "schema parse error at byte %d: %s" pos msg)
  in
  let* compiled =
    try
      if advise then begin
        let compiled, advice =
          Openivm.Advisor.compile_advised ~flags (Database.catalog db)
            ~expected_delta view_sql
        in
        Printf.eprintf
          "-- advisor: %s (base=%d rows, ~%.0f of %d groups touched per            refresh)\n"
          (Openivm.Flags.strategy_to_string advice.Openivm.Advisor.recommended)
          advice.Openivm.Advisor.base_rows
          advice.Openivm.Advisor.touched_groups
          advice.Openivm.Advisor.live_groups;
        Ok compiled
      end
      else Ok (Openivm.Compiler.compile ~flags (Database.catalog db) view_sql)
    with
    | Openivm.Compiler.Unsupported_view reason ->
      Error ("unsupported view: " ^ reason)
    | Error.Sql_error msg -> Error ("view error: " ^ msg)
    | Openivm_sql.Parser.Error (msg, pos) ->
      Error (Printf.sprintf "view parse error at byte %d: %s" pos msg)
  in
  print_endline (Openivm.Compiler.full_sql compiled);
  Ok ()

let to_exit = function
  | Ok () -> 0
  | Error msg ->
    prerr_endline ("openivm: " ^ msg);
    1

let schema_arg =
  Arg.(value & opt (some string) None & info [ "schema" ] ~docv:"SQL"
         ~doc:"Schema as inline SQL (CREATE TABLE statements).")

let schema_file_arg =
  Arg.(value & opt (some file) None & info [ "schema-file" ] ~docv:"FILE"
         ~doc:"File containing the schema.")

let view_arg =
  Arg.(value & opt (some string) None & info [ "view" ] ~docv:"SQL"
         ~doc:"CREATE MATERIALIZED VIEW statement, inline.")

let view_file_arg =
  Arg.(value & opt (some file) None & info [ "view-file" ] ~docv:"FILE"
         ~doc:"File containing the view definition.")

let dialect_arg =
  Arg.(value & opt string "duckdb" & info [ "dialect" ] ~docv:"NAME"
         ~doc:"Target SQL dialect: duckdb, postgres or minidb.")

let strategy_arg =
  Arg.(value & opt string "upsert_linear" & info [ "strategy" ] ~docv:"NAME"
         ~doc:"Combine strategy: upsert_linear, union_regroup, \
               outer_join_merge, rederive_affected or full_recompute.")

let paper_arg =
  Arg.(value & flag & info [ "paper-compat" ]
         ~doc:"Emit the exact SIGMOD'24 Listing-2 shape (DuckDB multiplicity \
               column name, no hidden bookkeeping columns).")

let eager_arg =
  Arg.(value & flag & info [ "eager" ]
         ~doc:"Record the eager refresh mode in the metadata (propagation \
               per change instead of per read).")

let no_indexes_arg =
  Arg.(value & flag & info [ "no-indexes" ]
         ~doc:"Do not emit CREATE INDEX statements.")

let advise_arg =
  Arg.(value & flag & info [ "advise" ]
         ~doc:"Let the cost model pick the combine strategy (see \
               --expected-delta).")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Refresh parallelism: OCaml domains delta propagation may fan \
               out to. 1 (the default) keeps propagation strictly \
               sequential; results are identical at every width.")

let expected_delta_arg =
  Arg.(value & opt int 1000 & info [ "expected-delta" ] ~docv:"ROWS"
         ~doc:"Expected delta rows per refresh, for --advise.")

(* --- the check subcommand: semantic analysis without compilation --- *)

(** Exit codes: 0 clean (warnings allowed), 1 diagnostics with severity
    error, 2 usage / IO problems. *)
let check_action file format schema schema_file : (int, string) result =
  let ( let* ) = Result.bind in
  let* format =
    match format with
    | "text" -> Ok `Text
    | "json" -> Ok `Json
    | f -> Error (Printf.sprintf "unknown format %S (use text or json)" f)
  in
  let* src =
    try Ok (read_file file)
    with Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" file msg)
  in
  let db = Database.create () in
  let* () =
    match schema, schema_file with
    | None, None -> Ok ()
    | _ ->
      let* sql = load_input ~inline:schema ~file:schema_file ~what:"schema" in
      (try
         ignore (Database.exec_script db sql);
         Ok ()
       with
       | Error.Sql_error msg -> Error ("schema error: " ^ msg)
       | Openivm_sql.Parser.Error (msg, pos) | Openivm_sql.Lexer.Error (msg, pos)
         ->
         Error (Printf.sprintf "schema parse error at byte %d: %s" pos msg))
  in
  let diags = Openivm.Sema.check_script db src in
  let module D = Openivm_sql.Diagnostic in
  (match format with
   | `Text ->
     if diags = [] then Printf.printf "%s: no problems found\n" file
     else begin
       print_endline (D.render_all ~file ~src diags);
       Printf.printf "%d error(s), %d warning(s), %d hint(s)\n"
         (D.count D.Error diags) (D.count D.Warning diags)
         (D.count D.Hint diags)
     end
   | `Json -> print_endline (D.list_to_json ~file ~src diags));
  Ok (if D.has_errors diags then 1 else 0)

let check_exit = function
  | Ok code -> code
  | Error msg ->
    prerr_endline ("openivm: " ^ msg);
    2

let check_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"SQL script to check (CREATE TABLEs, views, queries).")

let format_arg =
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: text (caret diagnostics) or json.")

let check_cmd =
  let doc = "semantically check a SQL script and report all diagnostics" in
  let man =
    [ `S Manpage.s_description;
      `P "Parses and binds every statement in $(i,FILE), accumulating all \
          problems in one run instead of stopping at the first: unknown \
          tables/columns/functions, type errors, and — for CREATE \
          MATERIALIZED VIEW definitions — the IVM incrementalizability \
          rules (stable IVM0xx/IVM1xx codes).";
      `P "Exits 0 when no errors were found (warnings and hints are \
          allowed), 1 when at least one error was reported, 2 on usage or \
          IO problems." ]
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man)
    Term.(
      const (fun a b c d tr ->
          check_exit (with_trace tr (fun () -> check_action a b c d)))
      $ check_file_arg $ format_arg $ schema_arg $ schema_file_arg $ trace_arg)

(* --- the htap subcommand: cross-system pipeline under (optional) chaos --- *)

let htap_action transactions seed chaos drop dup reorder corrupt crash
    fault_seed sync_every strict_replica =
  let open Openivm_htap in
  let knob cli_value chaos_default =
    match cli_value with
    | Some p when p < 0.0 || p > 1.0 ->
      Error.fail "fault probabilities must be in [0, 1], got %g" p
    | Some p -> p
    | None -> if chaos then chaos_default else 0.0
  in
  try
    let base = Fault.chaos () in
    let spec =
      { Fault.none with
        Fault.drop = knob drop base.Fault.drop;
        duplicate = knob dup base.Fault.duplicate;
        reorder = knob reorder base.Fault.reorder;
        corrupt = knob corrupt base.Fault.corrupt;
        crash = knob crash base.Fault.crash }
    in
    let faults = Fault.create ~seed:fault_seed spec in
    let bridge = Bridge.create ~faults () in
    let p =
      Pipeline.create ~oltp_latency:0.0 ~bridge ~strict_replica
        ~schema_sql:
          "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"
        ~view_sql:
          "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
           SUM(group_value) AS total_value, COUNT(*) AS n FROM groups \
           GROUP BY group_index"
        ()
    in
    let tx = Txgen.create ~seed ~group_domain:16 () in
    List.iter
      (fun sql -> ignore (Pipeline.exec_oltp p sql))
      (Txgen.seed_rows tx (max 50 (transactions / 5)));
    Printf.printf "faults: %s\n%!"
      (match Fault.to_string faults with "" -> "none" | s -> s);
    Printf.printf "running %d OLTP transactions (sync every %d)...\n%!"
      transactions sync_every;
    let mid_run_recoveries = ref 0 in
    List.iteri
      (fun i sql ->
         ignore (Pipeline.exec_oltp p sql);
         if (i + 1) mod sync_every = 0 then begin
           ignore (Pipeline.sync p);
           (* play supervisor: restart a crashed OLAP side and replay *)
           if Pipeline.crashed p then begin
             incr mid_run_recoveries;
             ignore (Pipeline.recover p)
           end
         end)
      (Txgen.batch tx transactions);
    if !mid_run_recoveries > 0 then
      Printf.printf "restarted the OLAP side %d time(s) mid-run\n"
        !mid_run_recoveries;
    let r = Pipeline.recover p in
    let s = Pipeline.stats p in
    let batches, rows, bytes = Bridge.stats bridge in
    Printf.printf
      "bridge wire traffic:   %d batches, %d rows, %d bytes (retries \
       included)\n"
      batches rows bytes;
    Printf.printf
      "faults injected:       %s\n"
      (String.concat ", "
         (List.map
            (fun k ->
               Printf.sprintf "%s=%d" (Fault.kind_to_string k)
                 (Fault.injected faults k))
            Fault.all_kinds));
    Printf.printf
      "delivery:              %d batches / %d rows applied, %d retries, %d \
       deduplicated, %d checksum rejects, %d gaps\n"
      s.Pipeline.batches_applied s.Pipeline.rows_applied s.Pipeline.retries
      s.Pipeline.deduped s.Pipeline.checksum_failures s.Pipeline.gaps;
    Printf.printf
      "recovery:              %d crashes rolled back, %d recoveries, %d \
       full resyncs, %d replica misses\n"
      s.Pipeline.crashes s.Pipeline.recoveries s.Pipeline.resyncs
      s.Pipeline.replica_misses;
    Printf.printf "recover: replayed %d batch(es)%s\n" r.Pipeline.replayed
      (if r.Pipeline.resynced then ", then full resync" else "");
    List.iter print_endline (Pipeline.pp_phases r);
    if r.Pipeline.converged then begin
      print_endline
        "converged: view = replica fold = full recompute over OLTP state";
      Ok ()
    end
    else Error "view did NOT converge after recovery"
  with Error.Sql_error msg -> Error msg

let transactions_arg =
  Arg.(value & opt int 500 & info [ "transactions"; "n" ] ~docv:"N"
         ~doc:"OLTP transactions to run.")

let tx_seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Workload RNG seed.")

let chaos_arg =
  Arg.(value & flag & info [ "chaos" ]
         ~doc:"Enable fault injection on the bridge: batch drop, \
               duplication, reordering, wire corruption and mid-apply OLAP \
               crashes, each at 10% unless overridden by the per-fault \
               probability options.")

let fault_prob name doc =
  Arg.(value & opt (some float) None & info [ name ] ~docv:"PROB" ~doc)

let drop_arg = fault_prob "drop" "Probability a batch is dropped in transit."
let dup_arg = fault_prob "dup" "Probability a batch is delivered twice."
let reorder_arg =
  fault_prob "reorder"
    "Probability a batch is held back and delivered after a later one."
let corrupt_arg =
  fault_prob "corrupt"
    "Probability a wire byte is flipped (caught by the batch checksum)."
let crash_arg =
  fault_prob "crash"
    "Probability the OLAP side crashes mid-batch during apply (rolled \
     back, recovered by replay or full resync)."

let fault_seed_arg =
  Arg.(value & opt int 0xC4A05 & info [ "fault-seed" ] ~docv:"SEED"
         ~doc:"Fault-injection RNG seed (failures replay deterministically).")

let sync_every_arg =
  Arg.(value & opt int 20 & info [ "sync-every" ] ~docv:"K"
         ~doc:"Ship pending deltas every K transactions.")

let strict_replica_arg =
  Arg.(value & flag & info [ "strict-replica" ]
         ~doc:"Treat a replica deletion that finds no matching row as an \
               error instead of a counted miss.")

let htap_cmd =
  let doc =
    "run the cross-system HTAP pipeline, optionally under fault injection"
  in
  Cmd.v
    (Cmd.info "htap" ~doc)
    Term.(
      const (fun a b c d e f g h i j k tr ->
          to_exit
            (with_trace tr (fun () -> htap_action a b c d e f g h i j k)))
      $ transactions_arg $ tx_seed_arg $ chaos_arg $ drop_arg $ dup_arg
      $ reorder_arg $ corrupt_arg $ crash_arg $ fault_seed_arg
      $ sync_every_arg $ strict_replica_arg $ trace_arg)

(* --- the fuzz subcommand: differential fuzzing of the whole pipeline --- *)

let fuzz_action seed cases max_steps strategy dialect exec domains corpus
    replay no_shrink crash_seed =
  let ( let* ) = Result.bind in
  let module F = Openivm_fuzz in
  let* strategies =
    match strategy with
    | None -> Ok []
    | Some s -> Result.map (fun st -> [ st ]) (strategy_of_string s)
  in
  let* dialects =
    match dialect with
    | None -> Ok []
    | Some d -> Result.map (fun d -> [ d ]) (dialect_of_string d)
  in
  let* engines =
    match exec with
    | None | Some "both" -> Ok []
    | Some e ->
      (match Openivm_engine.Exec.engine_of_string e with
       | Some e -> Ok [ e ]
       | None ->
         Error (Printf.sprintf "unknown engine %S (use vector, row or both)" e))
  in
  let* domains_axis =
    match domains with
    | None -> Ok []
    | Some spec ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest ->
          (match int_of_string_opt (String.trim n) with
           | Some d when d >= 1 -> go (d :: acc) rest
           | _ ->
             Error
               (Printf.sprintf
                  "bad --domains %S (use a positive count or a \
                   comma-separated list, e.g. 2 or 1,2,4)" spec))
      in
      go [] (String.split_on_char ',' spec)
  in
  match replay with
  | Some path when Sys.file_exists path && Sys.is_directory path ->
    let results = F.Corpus.replay ~log:print_endline ~dir:path () in
    let failed = List.filter (fun r -> r.F.Corpus.error <> None) results in
    Printf.printf "fuzz: replayed %d corpus case(s), %d failure(s)\n"
      (List.length results) (List.length failed);
    List.iter
      (fun (r : F.Corpus.replay_result) ->
         match r.error with
         | Some msg -> Printf.printf "FAIL %s\n%s\n" r.file msg
         | None -> ())
      failed;
    if failed = [] then Ok () else Error "corpus replay failed"
  | Some path ->
    let* case = F.Corpus.load_file path in
    let case =
      { case with
        F.Case.strategies =
          (if strategies = [] then case.F.Case.strategies else strategies);
        dialects = (if dialects = [] then case.F.Case.dialects else dialects);
        engines = (if engines = [] then case.F.Case.engines else engines);
        domains =
          (if domains_axis = [] then case.F.Case.domains else domains_axis) }
    in
    (match F.Oracle.first_failure case with
     | None -> (
         match crash_seed with
         | None ->
           Printf.printf "fuzz: %s replayed clean\n" path;
           Ok ()
         | Some cs -> (
             match F.Durable.check ~crash_seed:cs case with
             | _, None ->
               Printf.printf "fuzz: %s replayed clean (incl. crash axis)\n"
                 path;
               Ok ()
             | _, Some f ->
               Printf.printf "FAIL %s\n%s\n" path f.F.Oracle.message;
               Error "replay failed"))
     | Some msg ->
       Printf.printf "FAIL %s\n%s\n" path msg;
       Error "replay failed")
  | None ->
    let config =
      { F.Campaign.default with
        base_seed = seed; cases; max_steps; strategies; dialects; engines;
        domains = domains_axis; corpus_dir = corpus; shrink = not no_shrink;
        crash_seed; log = print_endline }
    in
    let report = F.Campaign.run config in
    print_endline (F.Campaign.summary report);
    if report.F.Campaign.failures = [] then Ok ()
    else Error "differential fuzzing found failures"

let fuzz_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Base generator seed; case $(i,i) of the run uses seed N+i, \
               so any failure replays with --seed N+i --cases 1.")

let fuzz_cases_arg =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N"
         ~doc:"Number of generated cases to check.")

let fuzz_max_steps_arg =
  Arg.(value & opt int 30 & info [ "max-steps" ] ~docv:"N"
         ~doc:"Workload statements per case (refresh + consistency check \
               after each).")

let fuzz_strategy_arg =
  Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"NAME"
         ~doc:"Restrict the oracle to one combine strategy (default: all \
               five).")

let fuzz_dialect_arg =
  Arg.(value & opt (some string) None & info [ "dialect" ] ~docv:"NAME"
         ~doc:"Restrict the oracle to one dialect (default: duckdb and \
               postgres).")

let fuzz_exec_arg =
  Arg.(value & opt (some string) None & info [ "exec" ] ~docv:"ENGINE"
         ~doc:"Restrict the oracle to one executor: $(b,vector), $(b,row) \
               or $(b,both) (default: both — each view config runs under \
               the vectorized engine and the row interpreter, and every \
               generated SELECT must return identical rows from the two).")

let fuzz_domains_arg =
  Arg.(value & opt (some string) None & info [ "domains" ] ~docv:"LIST"
         ~doc:"Refresh-parallelism axis: a domain count or comma-separated \
               list (e.g. $(b,2) or $(b,1,2,4)). Each width is one more \
               matrix dimension — every case must equal a full recompute \
               under domain-parallel propagation too (default: 1, strictly \
               sequential).")

let fuzz_corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Save a shrunk reproducer file under DIR for every failure.")

let fuzz_replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"PATH"
         ~doc:"Replay a reproducer file — or every *.sql file in a \
               directory — instead of generating new cases.")

let fuzz_no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ]
         ~doc:"Report the original failing case without minimizing it.")

let fuzz_crash_seed_arg =
  Arg.(value & opt (some int) None & info [ "crash-seed" ] ~docv:"N"
         ~doc:"Arm the crash-replay axis: cases that pass the differential \
               oracle are re-run through the durable store with storage \
               faults seeded from N + the case seed, killed and reopened \
               at every injected crash, and must converge to the no-crash \
               run.")

let fuzz_cmd =
  let doc = "differentially fuzz the compiler against full recomputation" in
  let man =
    [ `S Manpage.s_description;
      `P "Generates random (schema, view, DML workload) cases, installs \
          each view under every combine strategy and dialect, and asserts \
          after every refresh that the maintained view equals a full \
          recompute of its defining query. Generated SELECTs are also run \
          with the optimizer on and off, and round-tripped through the \
          pretty-printer.";
      `P "On failure the case is shrunk to a minimal reproducer (printed, \
          and saved under --corpus DIR if given); every failure message \
          embeds the exact command that replays it. Exits 0 when all cases \
          pass, 1 otherwise." ]
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const (fun a b c d e x dm f g h cs tr ->
          to_exit
            (with_trace tr (fun () -> fuzz_action a b c d e x dm f g h cs)))
      $ fuzz_seed_arg $ fuzz_cases_arg $ fuzz_max_steps_arg
      $ fuzz_strategy_arg $ fuzz_dialect_arg $ fuzz_exec_arg
      $ fuzz_domains_arg $ fuzz_corpus_arg $ fuzz_replay_arg
      $ fuzz_no_shrink_arg $ fuzz_crash_seed_arg $ trace_arg)

(* --- the stats subcommand: profiled refresh, "EXPLAIN ANALYZE for IVM" --- *)

let stats_action script_file format strategy domains rows deltas batches =
  let ( let* ) = Result.bind in
  let* fmt =
    match trace_format (Some format) with
    | Ok (Some f) -> Ok f
    | Ok None | Error _ ->
      Error
        (Printf.sprintf
           "unknown format %S (use text, json or prometheus)" format)
  in
  let* strategy = strategy_of_string strategy in
  let* () =
    if domains >= 1 then Ok ()
    else Error (Printf.sprintf "--domains must be >= 1, got %d" domains)
  in
  let flags = { Openivm.Flags.default with strategy; domains } in
  Obs.Report.reset_all ();
  Obs.Span.set_enabled true;
  let db = Database.create () in
  let* () =
    Fun.protect
      ~finally:(fun () -> Obs.Span.set_enabled false)
      (fun () ->
         try
           (match script_file with
            | Some path ->
              let src = read_file path in
              let stmts = Openivm_sql.Parser.parse_script src in
              let ext = Openivm.Runner.load ~flags db in
              List.iter
                (fun stmt ->
                   let sql =
                     Openivm_sql.Pretty.stmt_to_sql Openivm_sql.Dialect.minidb
                       stmt
                   in
                   ignore (Openivm.Runner.exec_ext ext sql))
                stmts;
              List.iter Openivm.Runner.force_refresh
                ext.Openivm.Runner.ext_views
            | None ->
              (* built-in demo: the paper's groups view, N delta batches *)
              let module W = Openivm_workload.Datagen in
              ignore (Database.exec db W.groups_ddl);
              let gen = W.create ~seed:7 () in
              W.populate_groups db gen ~rows;
              let v =
                Openivm.Runner.install ~flags db
                  "CREATE MATERIALIZED VIEW group_totals AS SELECT \
                   group_index, SUM(group_value) AS total_value, COUNT(*) AS \
                   n FROM groups GROUP BY group_index"
              in
              for _ = 1 to batches do
                W.apply_groups_delta db (W.groups_delta_rows gen ~rows:deltas);
                Openivm.Runner.force_refresh v
              done);
           Ok ()
         with
         | Error.Sql_error msg -> Error msg
         | Openivm.Compiler.Unsupported_view reason ->
           Error ("unsupported view: " ^ reason)
         | Openivm_sql.Parser.Error (msg, pos)
         | Openivm_sql.Lexer.Error (msg, pos) ->
           Error (Printf.sprintf "parse error at byte %d: %s" pos msg))
  in
  print_endline (Obs.Report.render fmt);
  Ok ()

let stats_script_arg =
  Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE"
         ~doc:"SQL script to profile instead of the built-in demo. \
               Statements run through the IVM extension: CREATE MATERIALIZED \
               VIEW installs a maintained view, SELECTs over it refresh it \
               lazily, and every installed view is force-refreshed at the \
               end.")

let stats_format_arg =
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: text (span tree + metrics table), json (JSON \
               lines) or prometheus.")

let stats_rows_arg =
  Arg.(value & opt int 2000 & info [ "rows" ] ~docv:"N"
         ~doc:"Initial rows in the demo's groups table.")

let stats_deltas_arg =
  Arg.(value & opt int 200 & info [ "deltas" ] ~docv:"N"
         ~doc:"Delta rows per refresh batch in the demo.")

let stats_batches_arg =
  Arg.(value & opt int 3 & info [ "batches" ] ~docv:"N"
         ~doc:"Delta/refresh rounds in the demo.")

let stats_cmd =
  let doc = "profile an IVM refresh: span tree and metrics" in
  let man =
    [ `S Manpage.s_description;
      `P "Runs a workload with tracing enabled and prints the observability \
          report: a span tree showing where refresh time went (per \
          propagation step, with statement counts and rows read/written) \
          and the metrics registry (operator row counts, deltas folded, \
          per-strategy refresh latency histograms).";
      `P "With $(b,--script) $(i,FILE) the script's statements run through \
          the IVM extension; otherwise a built-in demo populates the \
          paper's groups table with $(b,--rows) rows and folds \
          $(b,--batches) rounds of $(b,--deltas) changes each under the \
          chosen $(b,--strategy)." ]
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~man)
    Term.(
      const (fun a b c dm d e f -> to_exit (stats_action a b c dm d e f))
      $ stats_script_arg $ stats_format_arg $ strategy_arg $ domains_arg
      $ stats_rows_arg $ stats_deltas_arg $ stats_batches_arg)

let compile_cmd =
  let doc = "compile a materialized view definition into IVM SQL" in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const (fun a b c d e f g h i j k tr ->
          to_exit
            (with_trace tr (fun () -> compile_action a b c d e f g h i j k)))
      $ schema_arg $ schema_file_arg $ view_arg $ view_file_arg $ dialect_arg
      $ strategy_arg $ paper_arg $ eager_arg $ no_indexes_arg $ advise_arg
      $ expected_delta_arg $ trace_arg)

(* --- the recover subcommand: open a durable data directory --- *)

let recover_action data_dir verify checkpoint =
  let module Store = Openivm_store.Store in
  match Store.open_ ~dir:data_dir () with
  | exception Error.Sql_error msg -> Error ("recover: " ^ msg)
  | store ->
    Fun.protect ~finally:(fun () -> Store.close store)
      (fun () ->
         let r = Store.last_recovery store in
         Printf.printf "recovered %s\n" data_dir;
         Printf.printf "  checkpoint seq    %d%s\n" r.Store.checkpoint_seq
           (if r.Store.checkpoint_seq = 0 then " (fresh database)" else "");
         Printf.printf "  wal tail replayed %d record(s)%s\n" r.Store.replayed
           (if r.Store.torn_tail then ", torn tail discarded" else "");
         Printf.printf "  views reattached  %d\n" r.Store.views_reattached;
         List.iter
           (fun (view, chunk) ->
              Printf.printf "  backfill resumed  %s at chunk %d\n" view chunk)
           r.Store.backfills_resumed;
         Printf.printf "  committed seq     %d\n" (Store.committed_seq store);
         List.iter
           (fun v ->
              Printf.printf "  view %-18s %d row(s)\n"
                (Openivm.Runner.view_name v)
                (List.length (Openivm.Runner.visible_rows v)))
           (Store.views store);
         let verified =
           if not verify then Ok ()
           else if Store.verify store then begin
             print_endline "verify: every view matches a full recompute";
             Ok ()
           end
           else Error "verify: a view diverges from its defining query"
         in
         match verified with
         | Error _ as e -> e
         | Ok () ->
           if checkpoint then
             Printf.printf "checkpoint written to %s\n" (Store.checkpoint store);
           Ok ())

let data_dir_arg =
  Arg.(required & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
         ~doc:"The durable data directory (WAL + checkpoints). Created \
               empty if missing.")

let recover_verify_arg =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"After recovery, check every maintained view against a full \
               recompute of its defining query; exit non-zero on \
               divergence.")

let recover_checkpoint_arg =
  Arg.(value & flag & info [ "checkpoint" ]
         ~doc:"After recovery (and --verify, if given), fold the WAL into \
               a fresh checkpoint and truncate it.")

let recover_cmd =
  let doc = "recover a durable data directory and report what it took" in
  let man =
    [ `S Manpage.s_description;
      `P "Opens $(b,--data-dir) and runs the recovery ladder: load the \
          newest valid checkpoint, reattach its materialized views, replay \
          the WAL tail (discarding a torn tail), fast-forward the HTAP \
          bridge watermarks, and resume any backfill that was killed \
          mid-install from its last completed chunk. Prints one line per \
          recovery step, then the recovered views and their row counts." ]
  in
  Cmd.v
    (Cmd.info "recover" ~doc ~man)
    Term.(
      const (fun a b c tr ->
          to_exit (with_trace tr (fun () -> recover_action a b c)))
      $ data_dir_arg $ recover_verify_arg $ recover_checkpoint_arg
      $ trace_arg)

(* --- the serve subcommand: the concurrent session front-end --- *)

let serve_action port socket host schema_file init_file strategy eager domains
    tick_interval batch_cap max_queue max_inflight =
  let ( let* ) = Result.bind in
  let module Srv = Openivm_server in
  let* strategy = strategy_of_string strategy in
  let* () =
    if domains >= 1 then Ok ()
    else Error (Printf.sprintf "--domains must be >= 1, got %d" domains)
  in
  let flags =
    { Openivm.Flags.default with
      strategy; domains;
      refresh = (if eager then Openivm.Flags.Eager else Openivm.Flags.Lazy) }
  in
  let db = Database.create () in
  let ext = Openivm.Runner.load ~flags db in
  let* () =
    match schema_file with
    | None -> Ok ()
    | Some path ->
      (try
         ignore (Database.exec_script db (read_file path));
         Ok ()
       with
       | Sys_error msg -> Error msg
       | Error.Sql_error msg -> Error ("schema error: " ^ msg)
       | Openivm_sql.Parser.Error (msg, pos) | Openivm_sql.Lexer.Error (msg, pos)
         -> Error (Printf.sprintf "schema parse error at byte %d: %s" pos msg))
  in
  let quota =
    { Srv.Quota.max_queue_depth = max_queue;
      max_inflight_per_tenant = max_inflight;
      max_batch_per_tick = batch_cap;
      tick_interval }
  in
  let listen =
    match socket with
    | Some path -> `Unix path
    | None -> `Tcp (host, port)
  in
  let* srv =
    try Ok (Srv.Server.start ~quota ~listen ext)
    with Error.Sql_error msg -> Error msg
  in
  let* () =
    (* the init script runs through a bootstrap session so CREATE
       MATERIALIZED VIEW goes through the scheduler's install path *)
    match init_file with
    | None -> Ok ()
    | Some path ->
      (try
         let stmts = Openivm_sql.Parser.parse_script (read_file path) in
         let s = Srv.Session.create (Srv.Server.scheduler srv) ~tenant:"init" in
         Fun.protect ~finally:(fun () -> Srv.Session.close s)
           (fun () ->
              List.fold_left
                (fun acc stmt ->
                   let* () = acc in
                   let sql =
                     Openivm_sql.Pretty.stmt_to_sql Openivm_sql.Dialect.minidb
                       stmt
                   in
                   match Srv.Session.exec s sql with
                   | Srv.Session.Failed { code; message } ->
                     Error (Printf.sprintf "init script: [%s] %s" code message)
                   | Srv.Session.Overloaded reason ->
                     Error ("init script overloaded: " ^ reason)
                   | _ -> Ok ())
                (Ok ()) stmts)
       with
       | Sys_error msg ->
         Srv.Server.stop srv;
         Error msg
       | Openivm_sql.Parser.Error (msg, pos) | Openivm_sql.Lexer.Error (msg, pos)
         ->
         Srv.Server.stop srv;
         Error (Printf.sprintf "init script parse error at byte %d: %s" pos msg))
  in
  Printf.printf "openivm: serving on %s (strategy %s, tick every %gs)\n%!"
    (Srv.Server.addr_text srv)
    (Openivm.Flags.strategy_to_string strategy)
    tick_interval;
  (match socket with
   | None ->
     Printf.printf "openivm: scrape http://%s/metrics for live counters\n%!"
       (Srv.Server.addr_text srv)
   | Some _ -> ());
  (* Poll a flag instead of blocking in Server.wait: a main thread
     parked in a condition wait may never get to run the OCaml signal
     handler, while Thread.delay returns to OCaml code regularly. *)
  let stop_requested = ref false in
  let request_stop _ = stop_requested := true in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  while not !stop_requested do
    Thread.delay 0.1
  done;
  Srv.Server.stop srv;
  print_endline "openivm: server stopped";
  Ok ()

let serve_port_arg =
  Arg.(value & opt int 7654 & info [ "port" ] ~docv:"PORT"
         ~doc:"TCP port to listen on (0 picks an ephemeral port).")

let serve_socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a unix-domain socket instead of TCP.")

let serve_host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Address to bind the TCP listener to.")

let serve_init_arg =
  Arg.(value & opt (some file) None & info [ "init-file" ] ~docv:"FILE"
         ~doc:"SQL script executed through a bootstrap session before \
               serving — the place for CREATE MATERIALIZED VIEW statements.")

let serve_tick_arg =
  Arg.(value & opt float 0.05 & info [ "tick-interval" ] ~docv:"SECONDS"
         ~doc:"Seconds between refresh ticks (0 = tick on demand when a \
               writer waits).")

let serve_batch_arg =
  Arg.(value & opt int 256 & info [ "batch-cap" ] ~docv:"N"
         ~doc:"Max units (statements or transactions) one tick applies.")

let serve_queue_arg =
  Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N"
         ~doc:"Pending-unit queue depth before submissions get OVERLOADED.")

let serve_inflight_arg =
  Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N"
         ~doc:"Per-tenant in-flight statement cap.")

let serve_cmd =
  let doc = "serve concurrent sessions over the line protocol" in
  let man =
    [ `S Manpage.s_description;
      `P "Starts the in-process serving layer: a single-writer scheduler \
          admits concurrent DML into a pending queue and applies it in \
          refresh ticks, consolidating all sessions' deltas into one Z-set \
          per tick before a single propagation. Clients speak a \
          line protocol (HELLO tenant / SQL text / BEGIN / COMMIT / \
          ROLLBACK / PING / QUIT) — $(b,minidb_shell --connect HOST:PORT) \
          is a ready-made client — and an HTTP GET on the same port \
          serves /metrics in Prometheus text format.";
      `P "Transactions are all-or-nothing: a failed COMMIT restores the \
          touched tables and delta captures from a snapshot taken when \
          the unit started, so one session's rollback never disturbs \
          another session's queued deltas." ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const (fun a b c d e f g dm h i j k ->
          to_exit (serve_action a b c d e f g dm h i j k))
      $ serve_port_arg $ serve_socket_arg $ serve_host_arg $ schema_file_arg
      $ serve_init_arg $ strategy_arg $ eager_arg $ domains_arg
      $ serve_tick_arg $ serve_batch_arg $ serve_queue_arg
      $ serve_inflight_arg)

let subcommand_names =
  [ "compile"; "check"; "stats"; "fuzz"; "htap"; "recover"; "serve" ]

let main_cmd =
  let doc = "OpenIVM: a SQL-to-SQL compiler for incremental computations" in
  Cmd.group (Cmd.info "openivm" ~version:"1.0.0" ~doc)
    [ compile_cmd; check_cmd; stats_cmd; fuzz_cmd; htap_cmd; recover_cmd;
      serve_cmd ]

(* Unknown subcommands get the same did-you-mean treatment as unknown
   columns in the semantic checker (SEM001): suggest the closest name
   within edit distance 2, then list everything. *)
let () =
  (match Array.to_list Sys.argv with
   | _ :: cmd :: _
     when (not (String.starts_with ~prefix:"-" cmd))
          && not (List.mem cmd ("help" :: subcommand_names)) ->
     let suggestion =
       match Openivm_sql.Diagnostic.suggest cmd subcommand_names with
       | Some s -> Printf.sprintf " — did you mean %S?" s
       | None -> ""
     in
     Printf.eprintf
       "openivm: unknown subcommand %S%s\nopenivm: subcommands are: %s\n" cmd
       suggestion
       (String.concat ", " subcommand_names);
     exit Cmd.Exit.cli_error
   | _ -> ());
  exit (Cmd.eval' main_cmd)
