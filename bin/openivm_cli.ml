(** The standalone SQL-to-SQL compiler ("the OpenIVM SQL-to-SQL compiler
    can be used as a standalone command-line tool", paper §2).

    Reads a schema (CREATE TABLE statements) and a CREATE MATERIALIZED VIEW
    definition — from files or inline — and prints every compiled artifact:
    DDL, initial load, four-step propagation script, capture-trigger DDL.

      openivm compile --schema schema.sql --view view.sql \
        --dialect postgres --strategy rederive_affected *)

open Cmdliner
open Openivm_engine

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_input ~inline ~file ~what =
  match inline, file with
  | Some sql, None -> Ok sql
  | None, Some path ->
    (try Ok (read_file path)
     with Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" what msg))
  | Some _, Some _ -> Error (Printf.sprintf "give %s inline or as a file, not both" what)
  | None, None -> Error (Printf.sprintf "missing %s (use --%s or --%s-file)" what what what)

let strategy_of_string = function
  | "upsert_linear" -> Ok Openivm.Flags.Upsert_linear
  | "union_regroup" -> Ok Openivm.Flags.Union_regroup
  | "outer_join_merge" -> Ok Openivm.Flags.Outer_join_merge
  | "rederive_affected" -> Ok Openivm.Flags.Rederive_affected
  | "full_recompute" -> Ok Openivm.Flags.Full_recompute
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

let compile_action schema schema_file view view_file dialect strategy
    paper_compat eager no_indexes advise expected_delta =
  let ( let* ) = Result.bind in
  let* schema_sql = load_input ~inline:schema ~file:schema_file ~what:"schema" in
  let* view_sql = load_input ~inline:view ~file:view_file ~what:"view" in
  let* dialect =
    match Openivm_sql.Dialect.of_string dialect with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown dialect %S" dialect)
  in
  let* strategy = strategy_of_string strategy in
  let flags =
    { (if paper_compat then Openivm.Flags.paper else Openivm.Flags.default) with
      dialect; strategy;
      refresh = (if eager then Openivm.Flags.Eager else Openivm.Flags.Lazy);
      create_indexes = not no_indexes }
  in
  let db = Database.create () in
  let* () =
    try
      ignore (Database.exec_script db schema_sql);
      Ok ()
    with
    | Error.Sql_error msg -> Error ("schema error: " ^ msg)
    | Openivm_sql.Parser.Error (msg, pos) ->
      Error (Printf.sprintf "schema parse error at byte %d: %s" pos msg)
  in
  let* compiled =
    try
      if advise then begin
        let compiled, advice =
          Openivm.Advisor.compile_advised ~flags (Database.catalog db)
            ~expected_delta view_sql
        in
        Printf.eprintf
          "-- advisor: %s (base=%d rows, ~%.0f of %d groups touched per            refresh)\n"
          (Openivm.Flags.strategy_to_string advice.Openivm.Advisor.recommended)
          advice.Openivm.Advisor.base_rows
          advice.Openivm.Advisor.touched_groups
          advice.Openivm.Advisor.live_groups;
        Ok compiled
      end
      else Ok (Openivm.Compiler.compile ~flags (Database.catalog db) view_sql)
    with
    | Openivm.Compiler.Unsupported_view reason ->
      Error ("unsupported view: " ^ reason)
    | Error.Sql_error msg -> Error ("view error: " ^ msg)
    | Openivm_sql.Parser.Error (msg, pos) ->
      Error (Printf.sprintf "view parse error at byte %d: %s" pos msg)
  in
  print_endline (Openivm.Compiler.full_sql compiled);
  Ok ()

let to_exit = function
  | Ok () -> 0
  | Error msg ->
    prerr_endline ("openivm: " ^ msg);
    1

let schema_arg =
  Arg.(value & opt (some string) None & info [ "schema" ] ~docv:"SQL"
         ~doc:"Schema as inline SQL (CREATE TABLE statements).")

let schema_file_arg =
  Arg.(value & opt (some file) None & info [ "schema-file" ] ~docv:"FILE"
         ~doc:"File containing the schema.")

let view_arg =
  Arg.(value & opt (some string) None & info [ "view" ] ~docv:"SQL"
         ~doc:"CREATE MATERIALIZED VIEW statement, inline.")

let view_file_arg =
  Arg.(value & opt (some file) None & info [ "view-file" ] ~docv:"FILE"
         ~doc:"File containing the view definition.")

let dialect_arg =
  Arg.(value & opt string "duckdb" & info [ "dialect" ] ~docv:"NAME"
         ~doc:"Target SQL dialect: duckdb, postgres or minidb.")

let strategy_arg =
  Arg.(value & opt string "upsert_linear" & info [ "strategy" ] ~docv:"NAME"
         ~doc:"Combine strategy: upsert_linear, union_regroup, \
               rederive_affected or full_recompute.")

let paper_arg =
  Arg.(value & flag & info [ "paper-compat" ]
         ~doc:"Emit the exact SIGMOD'24 Listing-2 shape (DuckDB multiplicity \
               column name, no hidden bookkeeping columns).")

let eager_arg =
  Arg.(value & flag & info [ "eager" ]
         ~doc:"Record the eager refresh mode in the metadata (propagation \
               per change instead of per read).")

let no_indexes_arg =
  Arg.(value & flag & info [ "no-indexes" ]
         ~doc:"Do not emit CREATE INDEX statements.")

let advise_arg =
  Arg.(value & flag & info [ "advise" ]
         ~doc:"Let the cost model pick the combine strategy (see \
               --expected-delta).")

let expected_delta_arg =
  Arg.(value & opt int 1000 & info [ "expected-delta" ] ~docv:"ROWS"
         ~doc:"Expected delta rows per refresh, for --advise.")

let compile_cmd =
  let doc = "compile a materialized view definition into IVM SQL" in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const (fun a b c d e f g h i j k ->
          to_exit (compile_action a b c d e f g h i j k))
      $ schema_arg $ schema_file_arg $ view_arg $ view_file_arg $ dialect_arg
      $ strategy_arg $ paper_arg $ eager_arg $ no_indexes_arg $ advise_arg
      $ expected_delta_arg)

let main_cmd =
  let doc = "OpenIVM: a SQL-to-SQL compiler for incremental computations" in
  Cmd.group (Cmd.info "openivm" ~version:"1.0.0" ~doc) [ compile_cmd ]

let () = exit (Cmd.eval' main_cmd)
