(** Compiler explorer: what the SQL-to-SQL compiler emits for each
    supported view class, per dialect and per strategy — the "examine the
    compiled output" part of the demonstration (paper §3).

    Run with: dune exec examples/compiler_explorer.exe *)

open Openivm_engine

let schema =
  [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
    "CREATE TABLE sales(cust INTEGER, amount INTEGER)";
    "CREATE TABLE customers(cust INTEGER, region VARCHAR)" ]

let views =
  [ ("filtered projection",
     "CREATE MATERIALIZED VIEW big_values AS SELECT group_index, \
      group_value FROM groups WHERE group_value > 100");
    ("sum/count aggregate (the paper's example)",
     "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
      SUM(group_value) AS total_value FROM groups GROUP BY group_index");
    ("min/max aggregate (extension)",
     "CREATE MATERIALIZED VIEW extremes AS SELECT group_index, \
      MIN(group_value) AS lo, MAX(group_value) AS hi FROM groups GROUP BY \
      group_index");
    ("two-table join aggregate (extension)",
     "CREATE MATERIALIZED VIEW region_sales AS SELECT customers.region, \
      SUM(sales.amount) AS total FROM sales JOIN customers ON sales.cust = \
      customers.cust GROUP BY customers.region") ]

let () =
  let db = Database.create () in
  List.iter (fun sql -> ignore (Database.exec db sql)) schema;
  let catalog = Database.catalog db in
  List.iter
    (fun (label, view_sql) ->
       Printf.printf "\n==================== %s ====================\n" label;
       let c = Openivm.Compiler.compile catalog view_sql in
       print_endline (Openivm.Compiler.full_sql c))
    views;

  (* the same view through different dialects and strategies *)
  let view_sql = snd (List.nth views 1) in
  print_endline "\n==================== dialect: PostgreSQL ====================";
  let pg =
    Openivm.Compiler.compile
      ~flags:{ Openivm.Flags.default with dialect = Openivm_sql.Dialect.postgres }
      catalog view_sql
  in
  print_endline (Openivm.Compiler.propagation_sql pg);

  print_endline "==================== strategy: rederive_affected ====================";
  let rd =
    Openivm.Compiler.compile
      ~flags:{ Openivm.Flags.default with strategy = Openivm.Flags.Rederive_affected }
      catalog view_sql
  in
  print_endline (Openivm.Compiler.propagation_sql rd);

  print_endline "==================== the logical plan the rewriter consumed ====================";
  print_endline (Plan.to_string pg.Openivm.Compiler.logical_plan)
