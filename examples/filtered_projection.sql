-- Flat views: projection and filter classes, plus a computed column.

CREATE TABLE events (
  event_id INTEGER PRIMARY KEY,
  kind VARCHAR,
  payload VARCHAR,
  weight INTEGER
);

CREATE MATERIALIZED VIEW heavy_events AS
SELECT event_id, kind, weight * 2 AS double_weight
FROM events
WHERE weight > 10;

CREATE MATERIALIZED VIEW event_mirror AS
SELECT * FROM events;
