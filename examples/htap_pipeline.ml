(** Cross-system IVM / HTAP (paper Figure 3): a transactional workload on
    the "PostgreSQL" engine, deltas captured by triggers, shipped over the
    bridge, folded into a materialized view hosted by the "DuckDB" engine.

    Run with: dune exec examples/htap_pipeline.exe *)

open Openivm_engine
open Openivm_htap

let () =
  let pipeline =
    Pipeline.create
      ~schema_sql:"CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"
      ~view_sql:
        "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
         SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP \
         BY group_index"
      ()
  in

  (* transactional workload on the OLTP side *)
  let tx = Txgen.create ~seed:2024 ~group_domain:6 () in
  print_endline "seeding the OLTP side with 500 rows...";
  List.iter
    (fun sql -> ignore (Pipeline.exec_oltp pipeline sql))
    (Txgen.seed_rows tx 500);

  print_endline "running 300 OLTP transactions (insert/update/delete mix)...";
  List.iter
    (fun sql -> ignore (Pipeline.exec_oltp pipeline sql))
    (Txgen.batch tx 300);

  (* analytical read on the OLAP side: sync + lazy refresh + query *)
  print_endline "\n=== materialized view on the OLAP side ===";
  print_endline
    (Database.render_result
       (Pipeline.view_contents ~order_by:"group_index" pipeline));

  print_endline "=== OLTP-side recomputation (ground truth) ===";
  print_endline
    (Database.render_result
       (Oltp.query (Pipeline.oltp pipeline)
          "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS \
           n FROM groups GROUP BY group_index ORDER BY group_index"));

  let batches, rows, bytes = Bridge.stats pipeline.Pipeline.bridge in
  Printf.printf
    "bridge traffic so far: %d batches, %d delta rows, %d wire bytes\n\n"
    batches rows bytes;

  (* compare against the non-IVM cross-system baseline *)
  print_endline "=== the same answer without IVM (ship-all + recompute) ===";
  let t0 = Unix.gettimeofday () in
  let r = Pipeline.query_without_ivm pipeline in
  let t_ship = Unix.gettimeofday () -. t0 in
  Printf.printf "%d rows computed in %.2fms by shipping the base table\n"
    (List.length r.Database.rows) (t_ship *. 1e3);
  let t0 = Unix.gettimeofday () in
  ignore (Pipeline.query pipeline "SELECT * FROM query_groups");
  let t_ivm = Unix.gettimeofday () -. t0 in
  Printf.printf "the maintained view answers in %.2fms (%.0fx faster)\n"
    (t_ivm *. 1e3)
    (t_ship /. t_ivm);

  (* the PostgreSQL-side trigger DDL the paper leaves to the user *)
  print_endline "\n=== generated PostgreSQL capture triggers ===";
  List.iter
    (fun (_, sql) -> print_endline sql)
    (Pipeline.view pipeline).Openivm.Runner.compiled.Openivm.Compiler.trigger_sql;

  (* --- the same pipeline under chaos: exactly-once delivery at work --- *)
  print_endline "\n=== chaos: drop/duplicate/reorder/corrupt/crash at 15% ===";
  let faults = Fault.create ~seed:7 (Fault.chaos ~drop:0.15 ~duplicate:0.15
                                       ~reorder:0.15 ~corrupt:0.15 ~crash:0.15 ()) in
  let bridge = Bridge.create ~faults () in
  let chaotic =
    Pipeline.create ~bridge
      ~schema_sql:"CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"
      ~view_sql:
        "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
         SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP \
         BY group_index"
      ()
  in
  let tx = Txgen.create ~seed:7 ~group_domain:6 () in
  List.iter
    (fun sql -> ignore (Pipeline.exec_oltp chaotic sql))
    (Txgen.seed_rows tx 200);
  List.iteri
    (fun i sql ->
       ignore (Pipeline.exec_oltp chaotic sql);
       if (i + 1) mod 10 = 0 then begin
         ignore (Pipeline.sync chaotic);
         if Pipeline.crashed chaotic then begin
           print_endline "  OLAP crashed mid-batch — restarting and replaying";
           ignore (Pipeline.recover chaotic)
         end
       end)
    (Txgen.batch tx 300);
  let r = Pipeline.recover chaotic in
  let s = Pipeline.stats chaotic in
  Printf.printf
    "delivered exactly once through the noise: %d batches applied, %d \
     retries, %d duplicates skipped, %d corrupted batches rejected, %d \
     crashes rolled back%s\n"
    s.Pipeline.batches_applied s.Pipeline.retries s.Pipeline.deduped
    s.Pipeline.checksum_failures s.Pipeline.crashes
    (if r.Pipeline.resynced then "; full resync needed" else "");
  Printf.printf "view converged with full recompute: %b\n" r.Pipeline.converged
