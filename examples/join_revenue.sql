-- Two-table join under aggregation (the paper's announced JOIN extension).

CREATE TABLE orders (
  order_id INTEGER PRIMARY KEY,
  customer_id INTEGER,
  order_day DATE
);
CREATE INDEX idx_orders_customer ON orders (customer_id);

CREATE TABLE customers (
  customer_id INTEGER PRIMARY KEY,
  region VARCHAR
);

CREATE MATERIALIZED VIEW revenue_by_region AS
SELECT c.region, COUNT(*) AS orders_n
FROM orders o
JOIN customers c ON o.customer_id = c.customer_id
GROUP BY c.region;
