-- MIN/MAX maintenance: supported, but `openivm check` points out that
-- deletes touching a group's extremum force a per-group recompute
-- (IVM101) and that AVG is kept as decomposed SUM/COUNT state (IVM102).

CREATE TABLE readings (
  sensor VARCHAR,
  reading INTEGER
);
CREATE INDEX idx_readings_sensor ON readings (sensor);

CREATE MATERIALIZED VIEW sensor_stats AS
SELECT sensor,
       MIN(reading) AS lo,
       MAX(reading) AS hi,
       AVG(reading) AS mean
FROM readings
GROUP BY sensor;
