(** The paper's motivating RDDA use case (§1): "information from personal
    data stores flows into centralized views, while preserving privacy
    constraints by guaranteeing coarse-grained aggregation of sensitive
    attributes".

    Several personal data stores (one OLTP engine each) hold fine-grained
    activity records; a central engine maintains only a coarse per-region,
    per-category aggregate view fed by the stores' deltas. The center
    never stores individual rows — only the delta stream transits, and a
    suppression threshold hides small groups on read.

    Run with: dune exec examples/privacy_rdda.exe *)

open Openivm_engine
open Openivm_htap

let store_schema =
  "CREATE TABLE activity(region VARCHAR, category VARCHAR, spend INTEGER);"

let central_view =
  "CREATE MATERIALIZED VIEW regional_spend AS SELECT region, category, \
   SUM(spend) AS total_spend, COUNT(*) AS contributions FROM activity GROUP \
   BY region, category"

(* one pipeline per personal data store, all feeding the same central
   schema shape; aggregation is additive so the central totals are the sum
   over stores *)
let () =
  let stores =
    List.init 3 (fun i ->
        let p = Pipeline.create ~schema_sql:store_schema ~view_sql:central_view () in
        (Printf.sprintf "store-%d" (i + 1), p))
  in
  let rng = Random.State.make [| 11 |] in
  let regions = [| "north"; "south"; "east" |] in
  let categories = [| "food"; "transport"; "health" |] in
  List.iteri
    (fun i (name, p) ->
       let n = 200 + (i * 120) in
       Printf.printf "%s: recording %d personal activity rows\n" name n;
       for _ = 1 to n do
         ignore
           (Pipeline.exec_oltp p
              (Printf.sprintf "INSERT INTO activity VALUES ('%s', '%s', %d)"
                 regions.(Random.State.int rng 3)
                 categories.(Random.State.int rng 3)
                 (1 + Random.State.int rng 100)))
       done;
       (* the user exercises their right to erasure for one category *)
       if i = 0 then
         ignore
           (Pipeline.exec_oltp p "DELETE FROM activity WHERE category = 'health'"))
    stores;

  (* each store's view holds only its own coarse aggregate; the central
     report merges them with plain SQL over the aggregates *)
  let central = Database.create ~name:"central" () in
  ignore
    (Database.exec central
       "CREATE TABLE regional_spend(region VARCHAR, category VARCHAR, \
        total_spend INTEGER, contributions INTEGER)");
  List.iter
    (fun (_, p) ->
       let r =
         Pipeline.query p
           "SELECT region, category, total_spend, contributions FROM \
            regional_spend"
       in
       List.iter
         (fun (row : Row.t) ->
            ignore
              (Database.exec central
                 (Printf.sprintf
                    "INSERT INTO regional_spend VALUES ('%s', '%s', %s, %s)"
                    (Value.to_string row.(0)) (Value.to_string row.(1))
                    (Value.to_string row.(2)) (Value.to_string row.(3)))))
         r.Database.rows)
    stores;

  print_endline "\n=== centralized coarse-grained view (k >= 25 suppression) ===";
  print_endline
    (Database.render_result
       (Database.query central
          "SELECT region, category, SUM(total_spend) AS total, \
           SUM(contributions) AS k FROM regional_spend GROUP BY region, \
           category HAVING SUM(contributions) >= 25 ORDER BY region, \
           category"));

  print_endline
    "individual activity rows never left their store; the health category \
     of store-1\nwas retracted end-to-end by the IVM delta stream (deletions \
     propagate too)."
