(** Quickstart: the paper's Listing 1 end to end.

    Creates the [groups] table, installs a materialized SUM view through
    the OpenIVM extension, shows the compiled SQL (the Listing 2
    artifacts), applies base-table changes and reads the incrementally
    maintained view.

    Run with: dune exec examples/quickstart.exe *)

open Openivm_engine

let () =
  let db = Database.create () in

  (* Listing 1: the schema and the materialized view definition *)
  ignore
    (Database.exec db
       "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)");
  ignore
    (Database.exec db
       "INSERT INTO groups VALUES ('apple', 5), ('banana', 2), ('apple', 1)");

  (* paper-compat flags reproduce the Listing 2 output shape *)
  let v =
    Openivm.Runner.install ~flags:Openivm.Flags.paper db
      "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
       SUM(group_value) AS total_value FROM groups GROUP BY group_index"
  in

  print_endline "=== compiled SQL (paper Listing 2) ===";
  print_endline (Openivm.Compiler.propagation_sql v.Openivm.Runner.compiled);

  print_endline "=== initial view contents ===";
  print_endline
    (Database.render_result (Openivm.Runner.contents v ~order_by:"group_index"));

  (* changes are captured into delta_groups; the view refreshes lazily on
     read ("we choose to employ the latter approach", paper §3) *)
  ignore (Database.exec db "INSERT INTO groups VALUES ('apple', 3), ('cherry', 7)");
  ignore (Database.exec db "DELETE FROM groups WHERE group_index = 'banana'");

  print_endline "=== after +apple(3), +cherry(7), -banana ===";
  print_endline
    (Database.render_result (Openivm.Runner.contents v ~order_by:"group_index"));

  (* the same result, recomputed from scratch, for comparison *)
  print_endline "=== recomputed from scratch (must match) ===";
  print_endline
    (Database.render_result
       (Database.query db
          "SELECT group_index, SUM(group_value) AS total_value FROM groups \
           GROUP BY group_index ORDER BY group_index"));

  (* metadata tables record the view exactly as the paper describes *)
  print_endline "=== _openivm_views metadata ===";
  print_endline
    (Database.render_result
       (Database.query db
          "SELECT view_name, query_type, strategy FROM _openivm_views"))
