-- The paper's running example: grouped SUM/COUNT over a single table.
-- `openivm check examples/quickstart.sql` validates it without compiling.

CREATE TABLE groups (
  group_index VARCHAR PRIMARY KEY,
  group_value INTEGER
);

CREATE MATERIALIZED VIEW query_groups AS
SELECT group_index,
       SUM(group_value) AS total_value,
       COUNT(*) AS n
FROM groups
GROUP BY group_index;

-- reading the view is a plain query against its backing table
SELECT group_index, total_value FROM query_groups WHERE n > 1;
