(** Warehouse example: a TPC-H-flavored revenue view maintained
    incrementally over a 3-way join (lineitem ⋈ orders ⋈ customer), with a
    CSV export of the maintained aggregate — the "transform data from
    operational tables into warehoused views" pitch of the paper's
    conclusion.

    Run with: dune exec examples/warehouse_tpch.exe *)

open Openivm_engine
open Openivm_workload

let () =
  let db = Database.create () in
  List.iter (fun sql -> ignore (Database.exec db sql)) Tpch_lite.all_ddl;
  let gen = Tpch_lite.create ~customers:200 () in

  print_endline "loading 400 orders...";
  Tpch_lite.populate db gen ~orders:400;

  let view = Openivm.Runner.install db Tpch_lite.revenue_view in
  Printf.printf "installed %s (3-way join: %d fill terms per refresh)\n"
    (Openivm.Runner.view_name view)
    (List.length
       view.Openivm.Runner.compiled.Openivm.Compiler.script.Openivm.Propagate.fill);

  print_endline "running 150 new orders and 30 cancellations...";
  for _ = 1 to 150 do
    List.iter (fun sql -> ignore (Database.exec db sql))
      (Tpch_lite.order_statements gen)
  done;
  for _ = 1 to 30 do
    List.iter (fun sql -> ignore (Database.exec db sql))
      (Tpch_lite.cancel_statements gen)
  done;

  let t0 = Unix.gettimeofday () in
  Openivm.Runner.refresh view;
  Printf.printf "incremental refresh: %.2fms\n"
    ((Unix.gettimeofday () -. t0) *. 1e3);

  let t0 = Unix.gettimeofday () in
  let reference = Database.query db Tpch_lite.revenue_reference in
  Printf.printf "full recomputation:  %.2fms (%d nations)\n"
    ((Unix.gettimeofday () -. t0) *. 1e3)
    (List.length reference.Database.rows);

  print_endline "\n=== top nations by maintained revenue ===";
  print_endline
    (Database.render_result
       (Openivm.Runner.query view
          "SELECT c_nationkey, revenue, line_count FROM nation_revenue \
           ORDER BY revenue DESC LIMIT 5"));

  let path = Filename.temp_file "nation_revenue" ".csv" in
  let rows =
    Csv.export db
      ~query:
        "SELECT c_nationkey, revenue, line_count FROM nation_revenue ORDER \
         BY c_nationkey"
      ~path
  in
  Printf.printf "exported %d rows to %s\n" rows path
