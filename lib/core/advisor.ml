(** Cost-based combine-strategy selection — the paper's stated next step:
    "as we implement join operations, the search space should increase,
    and cost-based optimization should then make these choices".

    The model is deliberately coarse (row-count arithmetic, no constants
    calibrated per machine): it only needs to rank the three strategies,
    whose costs differ by orders of magnitude across the regime boundaries
    (see experiment E4a). Per refresh, with
      B = base rows, G = live groups, D = delta rows,
      g = distinct groups touched by the delta (≤ min (D, G)):

    - [Upsert_linear]      ≈ D (fill) + g (signed CTE + probe + upsert)
    - [Union_regroup]      ≈ D + 3·G (every group flows through the stage)
    - [Outer_join_merge]   ≈ D + 2·G + g (one pass over V, then the swap)
    - [Rederive_affected]  ≈ D + g·(B/G) (re-read the touched groups' rows;
                             a full scan of B when no index can narrow it)
    - [Full_recompute]     ≈ B (+ G to rewrite the view)

    MIN/MAX views cannot use [Upsert_linear]; everything else can. *)

open Openivm_engine

type estimate = {
  strategy : Flags.combine_strategy;
  cost : float;  (** estimated rows touched per refresh *)
}

type advice = {
  recommended : Flags.combine_strategy;
  estimates : estimate list;  (** all candidates, cheapest first *)
  base_rows : int;
  live_groups : int;
  touched_groups : float;
}

(** Estimated number of distinct groups hit by a delta of [d] rows over
    [g] groups (balls-into-bins expectation). *)
let expected_touched ~delta ~groups =
  if groups <= 0 then 0.0
  else
    let g = float_of_int groups and d = float_of_int delta in
    g *. (1.0 -. ((1.0 -. (1.0 /. g)) ** d))

let base_row_count (catalog : Catalog.t) (shape : Shape.t) : int =
  List.fold_left
    (fun acc (b : Shape.table_ref) ->
       acc + Table.row_count (Catalog.find_table catalog b.Shape.table))
    0
    (Shape.base_tables shape)

(** Live group count: the view table's row count when it exists already,
    else a default guess of sqrt(B). *)
let live_group_count (catalog : Catalog.t) (shape : Shape.t) ~base_rows : int =
  match Catalog.find_table_opt catalog shape.Shape.view_name with
  | Some tbl when Table.row_count tbl > 0 -> Table.row_count tbl
  | _ -> max 1 (int_of_float (sqrt (float_of_int (max 1 base_rows))))

(** True when a plain column of a base table is covered by the primary key
    or a single-column secondary index — point lookups on it avoid a table
    scan. Unknown tables/columns count as covered (reported elsewhere). *)
let column_indexed (catalog : Catalog.t) ~(table : string) ~(column : string) :
  bool =
  match Catalog.find_table_opt catalog table with
  | None -> true
  | Some tbl ->
    (match Schema.find_opt tbl.Table.schema ~qualifier:None ~name:column with
     | Some (i, _) ->
       (Array.length tbl.Table.primary_key = 1 && tbl.Table.primary_key.(0) = i)
       || List.exists
         (fun ix -> ix.Table.key_positions = [| i |])
         tbl.Table.secondary
     | None -> true
     | exception Error.Sql_error _ -> true)

(** True when the rederive recompute can be narrowed by an index instead of
    scanning the base (single-table views whose group keys are a plain
    indexed column). *)
let rederive_indexed (catalog : Catalog.t) (shape : Shape.t) : bool =
  match shape.Shape.source, Shape.group_cols shape with
  | Shape.Single base, [ (Openivm_sql.Ast.Column (_, name), _) ] ->
    Catalog.table_exists catalog base.Shape.table
    && (match
          Schema.find_opt
            (Catalog.find_table catalog base.Shape.table).Table.schema
            ~qualifier:None ~name
        with
        | Some _ -> column_indexed catalog ~table:base.Shape.table ~column:name
        | None -> false
        | exception Error.Sql_error _ -> false)
  | _ -> false

let advise (catalog : Catalog.t) (shape : Shape.t) ~(expected_delta : int) :
  advice =
  let base_rows = base_row_count catalog shape in
  let live_groups = live_group_count catalog shape ~base_rows in
  let d = float_of_int (max 1 expected_delta) in
  let b = float_of_int (max 1 base_rows) in
  let g = float_of_int live_groups in
  let touched = expected_touched ~delta:expected_delta ~groups:live_groups in
  let linear_cost = d +. (3.0 *. touched) in
  let rows_per_group = b /. g in
  let rederive_read =
    if rederive_indexed catalog shape then touched *. rows_per_group
    else b  (* no index: the recompute scans the base *)
  in
  let rederive_cost = d +. touched +. rederive_read in
  let full_cost = b +. g in
  let regroup_cost = d +. (3.0 *. g) in
  let outer_merge_cost = d +. (2.0 *. g) +. touched in
  let candidates =
    (if Shape.has_min_max shape || Shape.is_global shape then []
     else
       [ { strategy = Flags.Upsert_linear; cost = linear_cost };
         { strategy = Flags.Union_regroup; cost = regroup_cost };
         { strategy = Flags.Outer_join_merge; cost = outer_merge_cost } ])
    @ (if Shape.is_global shape then []
       else [ { strategy = Flags.Rederive_affected; cost = rederive_cost } ])
    @ [ { strategy = Flags.Full_recompute; cost = full_cost } ]
  in
  let estimates =
    List.sort (fun a b -> compare a.cost b.cost) candidates
  in
  let recommended =
    match shape.Shape.klass with
    | _ when Shape.is_global shape && not (Shape.has_min_max shape) ->
      (* the stage-table combine is the linear path for globals *)
      Flags.Upsert_linear
    | _ -> (List.hd estimates).strategy
  in
  { recommended; estimates; base_rows; live_groups; touched_groups = touched }

(** Compile with the advisor's choice. *)
let compile_advised ?(flags = Flags.default) (catalog : Catalog.t)
    ~(expected_delta : int) (sql : string) : Compiler.t * advice =
  let tmp = Compiler.compile ~flags catalog sql in
  let advice = advise catalog tmp.Compiler.shape ~expected_delta in
  if advice.recommended = flags.Flags.strategy then (tmp, advice)
  else
    ( Compiler.compile ~flags:{ flags with strategy = advice.recommended }
        catalog sql,
      advice )
