(** Cost-based combine-strategy selection — the paper's announced next
    step ("cost-based optimization should then make these choices"). A
    coarse row-count model ranks the three strategies per refresh from the
    base-table sizes, the view's live group count, the expected delta
    size, and whether an index can narrow the rederive recompute. *)

open Openivm_engine

type estimate = {
  strategy : Flags.combine_strategy;
  cost : float;  (** estimated rows touched per refresh *)
}

type advice = {
  recommended : Flags.combine_strategy;
  estimates : estimate list;  (** candidates, cheapest first *)
  base_rows : int;
  live_groups : int;
  touched_groups : float;     (** expected groups hit per refresh *)
}

val expected_touched : delta:int -> groups:int -> float
(** Balls-into-bins expectation of distinct groups a delta touches. *)

val column_indexed : Catalog.t -> table:string -> column:string -> bool
(** Whether the primary key or a single-column secondary index covers the
    column (point lookups avoid a scan). Unknown tables/columns count as
    covered — they are reported by the binder, not here. *)

val advise : Catalog.t -> Shape.t -> expected_delta:int -> advice

val compile_advised :
  ?flags:Flags.t -> Catalog.t -> expected_delta:int -> string ->
  Compiler.t * advice
(** Compile a CREATE MATERIALIZED VIEW with the advisor's strategy. *)
