(** The OpenIVM SQL-to-SQL compiler (public API).

    Input: a catalog (for base-table schemas) and a view definition —
    either a [CREATE MATERIALIZED VIEW name AS ...] statement or a name +
    SELECT. Output: every SQL artifact of paper §2 — delta-table DDL, the
    backing table for V, intermediate tables and indexes, metadata
    registration, the initial load, the four-step propagation script, and
    the PostgreSQL capture-trigger boilerplate for cross-system use.

    Compilation runs the view query through the engine's parser → planner
    → optimizer (the role DuckDB plays in the paper) and applies the
    DBSP-style rewrite as templates over the analyzed shape; the logical
    plan itself is recorded in the metadata, and the equivalent executable
    DBSP circuit is available via [circuit] for cross-checking. *)

module Ast = Openivm_sql.Ast
module Dialect = Openivm_sql.Dialect
module Pretty = Openivm_sql.Pretty
open Openivm_engine

type t = {
  flags : Flags.t;
  shape : Shape.t;
  view_sql : string;            (** normalized view definition *)
  logical_plan : Plan.t;        (** optimized plan of the view query *)
  ddl : Ast.stmt list;          (** delta tables, V, ΔV, stage, indexes *)
  metadata_ddl : Ast.stmt list;
  metadata_dml : Ast.stmt list;
  initial_load : Ast.stmt;
  script : Propagate.script;
  trigger_sql : (string * string) list;
}

exception Unsupported_view of string

(** The rejection as a coded diagnostic: "IVM007: joins of more than ...".
    [Sema.lint_view] reports the same codes with spans; the exception path
    keeps the string payload for existing callers. *)
let unsupported (d : Openivm_sql.Diagnostic.t) =
  raise
    (Unsupported_view
       (Printf.sprintf "%s: %s" d.Openivm_sql.Diagnostic.code
          d.Openivm_sql.Diagnostic.message))

let delta_table t base =
  Ddl_gen.delta_table_name t.flags ~view:t.shape.Shape.view_name base
let delta_view t = Ddl_gen.delta_view_name t.flags t.shape.Shape.view_name
let base_tables t =
  List.map (fun (b : Shape.table_ref) -> b.Shape.table)
    (Shape.base_tables t.shape)

(** The sources that are themselves maintained materialized views — the
    upstream edges of the cascade DAG. *)
let upstream_views t =
  List.filter_map
    (fun (b : Shape.table_ref) ->
       if b.Shape.from_view then Some b.Shape.table else None)
    (Shape.base_tables t.shape)

let multiplicity_column t = t.flags.Flags.multiplicity_column

(* --- emission helpers --- *)

let stmt_sql t (stmt : Ast.stmt) : string =
  let keys = List.map snd (Shape.group_cols t.shape) in
  Pretty.stmt_to_sql ~upsert_keys:keys t.flags.Flags.dialect stmt

let script_steps t : (string * string) list =
  let s = t.script in
  let block purpose stmts =
    List.map (fun st -> (purpose, stmt_sql t st)) stmts
  in
  block "fill_delta_view" s.Propagate.fill
  @ block "combine" s.Propagate.combine
  @ block "prune" s.Propagate.prune
  @ block "cleanup" s.Propagate.cleanup

(** The complete propagation script as one SQL string (what gets stored on
    disk, paper §2: "We store the SQL scripts that propagate the contents
    of the delta tables ... on the disk"). *)
let propagation_sql t : string =
  String.concat ""
    (List.map (fun (_, sql) -> sql ^ ";\n") (script_steps t))

let setup_sql t : string =
  String.concat ""
    (List.map (fun stmt -> stmt_sql t stmt ^ ";\n")
       (t.ddl @ t.metadata_ddl @ t.metadata_dml @ [ t.initial_load ]))

let full_sql t : string =
  String.concat "\n"
    [ "-- OpenIVM compiled output for view " ^ t.shape.Shape.view_name;
      "-- dialect: " ^ t.flags.Flags.dialect.Dialect.name;
      "-- strategy: " ^ Flags.strategy_to_string t.flags.Flags.strategy;
      "-- query class: "
      ^ Openivm_sql.Analysis.class_to_string t.shape.Shape.klass;
      "";
      "-- === setup (DDL + metadata + initial load) ===";
      setup_sql t;
      "-- === propagation (run per refresh) ===";
      propagation_sql t;
      "-- === cross-system capture triggers (PostgreSQL side) ===";
      String.concat "\n"
        (List.map (fun (_, sql) -> sql) t.trigger_sql) ]

(* --- compilation --- *)

let compile_select ?(flags = Flags.default) (catalog : Catalog.t)
    ~(view_name : string) (query : Ast.select) : t =
  let shape =
    match Shape.analyze_diag catalog ~view_name query with
    | Ok shape -> shape
    | Error d -> unsupported d
  in
  let depends_on =
    List.map (fun (b : Shape.table_ref) -> b.Shape.table)
      (Shape.base_tables shape)
  in
  (match Catalog.mat_cycle catalog ~name:view_name ~depends_on with
   | Some path ->
     unsupported
       (Openivm_sql.Diagnostic.cascade_cycle ~view:view_name ~path ())
   | None -> ());
  (* plan through the engine (parser/planner/optimizer reuse, Figure 1) *)
  let logical_plan =
    Optimizer.optimize catalog (Planner.plan catalog query)
  in
  let view_sql = Pretty.select_to_sql flags.Flags.dialect query in
  let script = Propagate.script flags shape in
  let t0 =
    { flags; shape; view_sql; logical_plan;
      ddl = Ddl_gen.all flags shape;
      metadata_ddl = Metadata.ddl;
      metadata_dml = [];
      initial_load = Propagate.initial_load flags shape;
      script;
      trigger_sql = Trigger_gen.all flags shape }
  in
  let metadata_dml =
    Metadata.register flags shape ~view_sql ~depends_on
      ~logical_plan:(Plan.to_string logical_plan)
      ~scripts:(script_steps t0)
  in
  { t0 with metadata_dml }

(** Compile a [CREATE MATERIALIZED VIEW v AS SELECT ...] statement. *)
let compile ?flags (catalog : Catalog.t) (sql : string) : t =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { view; materialized = true; query } ->
    compile_select ?flags catalog ~view_name:view query
  | Ast.Create_view { materialized = false; _ } ->
    unsupported (Openivm_sql.Diagnostic.not_materialized ())
  | _ -> unsupported (Openivm_sql.Diagnostic.not_a_view ())

(** The equivalent executable DBSP circuit (test oracle / research hook). *)
let circuit (catalog : Catalog.t) t : Openivm_dbsp.Circuit.t =
  Openivm_dbsp.Circuit.of_select catalog t.shape.Shape.query
