(** The OpenIVM SQL-to-SQL compiler (public API).

    [compile] takes a catalog (for base-table schemas) and a
    [CREATE MATERIALIZED VIEW] statement and produces every SQL artifact of
    paper §2: delta-table DDL, the backing table for V with its hidden
    bookkeeping columns, intermediate tables and indexes, metadata
    registration, the initial load, the four-step propagation script, and
    PostgreSQL capture-trigger boilerplate for cross-system deployments.
    Use {!Runner} to install the result into a live engine. *)

module Ast = Openivm_sql.Ast
open Openivm_engine

type t = {
  flags : Flags.t;
  shape : Shape.t;
  view_sql : string;            (** normalized view definition *)
  logical_plan : Plan.t;        (** optimized plan of the view query *)
  ddl : Ast.stmt list;          (** delta tables, V, ΔV, stage, indexes *)
  metadata_ddl : Ast.stmt list;
  metadata_dml : Ast.stmt list;
  initial_load : Ast.stmt;
  script : Propagate.script;
  trigger_sql : (string * string) list;  (** per base table *)
}

exception Unsupported_view of string

val compile : ?flags:Flags.t -> Catalog.t -> string -> t
(** Compile a [CREATE MATERIALIZED VIEW name AS SELECT ...] statement.
    Raises {!Unsupported_view} with a reason for queries outside the
    supported classes. *)

val compile_select :
  ?flags:Flags.t -> Catalog.t -> view_name:string -> Ast.select -> t

val delta_table : t -> string -> string
(** Name of the delta capture table for a base table. *)

val delta_view : t -> string
(** Name of the ΔV table. *)

val base_tables : t -> string list

val upstream_views : t -> string list
(** The subset of {!base_tables} that are maintained materialized views —
    the upstream edges of the cascade DAG. *)

val multiplicity_column : t -> string

val stmt_sql : t -> Ast.stmt -> string
(** Emit one statement in the compiled dialect (upsert keys supplied). *)

val script_steps : t -> (string * string) list
(** The propagation script as (purpose, SQL) pairs, in execution order. *)

val propagation_sql : t -> string
(** The full propagation script as SQL text — what the paper stores on
    disk for later inspection. *)

val setup_sql : t -> string
(** DDL + metadata + initial load as SQL text. *)

val full_sql : t -> string
(** Complete annotated compiler output (setup, propagation, triggers). *)

val circuit : Catalog.t -> t -> Openivm_dbsp.Circuit.t
(** The equivalent executable DBSP circuit (test oracle / research hook). *)
