(** DDL generation: delta tables, the view's backing table (plus hidden
    bookkeeping columns), the delta-view table, the stage table for global
    aggregates, and indexes. Paper §2: "generates from there the DDL to
    create delta tables, possibly intermediate tables and index
    structures". *)

module Ast = Openivm_sql.Ast
open Openivm_engine
open Sqlgen

(* Delta capture tables are per (view, base table) so several views over
   the same base never race on each other's cleanup; paper-compat mode
   keeps the paper's shared delta_T name (its demo installs one view). *)
let delta_table_name (flags : Flags.t) ~view base =
  if flags.Flags.paper_compat then flags.Flags.delta_prefix ^ base
  else flags.Flags.delta_prefix ^ view ^ "__" ^ base

let delta_view_name (flags : Flags.t) view = flags.Flags.delta_prefix ^ view

(** Running-sum state column type: sums of an INTEGER column stay INTEGER,
    everything else is DOUBLE. *)
let sum_state_type (shape : Shape.t) (item : Shape.aggregate_item) : Ast.typ =
  let schema = Shape.input_schema shape.Shape.source in
  match item.Shape.arg with
  | Some arg ->
    (match Expr.infer_type schema arg with
     | Ast.T_int -> Ast.T_int
     | _ -> Ast.T_float)
  | None -> Ast.T_int

(** CREATE TABLE delta_T: T's columns plus the multiplicity column. *)
let delta_base_table (flags : Flags.t) ~view (base : Shape.table_ref) : Ast.stmt =
  let cols =
    List.map (fun c -> coldef c.Schema.name c.Schema.typ) base.Shape.schema
  in
  create_table
    (delta_table_name flags ~view base.Shape.table)
    (cols @ [ coldef flags.Flags.multiplicity_column Ast.T_bool ])

(** The view table's full column list: visible columns in projection order,
    then hidden aggregate state, then the group-size counter. *)
let view_table_columns (flags : Flags.t) (shape : Shape.t) : Ast.column_def list =
  let visible =
    List.map
      (function
        | Shape.Group_col { name; typ; _ } -> coldef name typ
        | Shape.Agg_col a -> coldef a.Shape.visible_name a.Shape.visible_type)
      shape.Shape.columns
  in
  if flags.Flags.paper_compat then visible
  else begin
    let state =
      List.concat_map
        (fun (a : Shape.aggregate_item) ->
           let sum_cols =
             match a.Shape.sum_state with
             | Some name -> [ coldef name (sum_state_type shape a) ]
             | None -> []
           in
           let nn_cols =
             match a.Shape.nn_state with
             | Some name -> [ coldef name Ast.T_int ]
             | None -> []
           in
           sum_cols @ nn_cols)
        (Shape.aggregates shape)
    in
    visible @ state @ [ coldef Shape.count_column Ast.T_int ]
  end

let view_table (flags : Flags.t) (shape : Shape.t) : Ast.stmt =
  let primary_key = List.map snd (Shape.group_cols shape) in
  create_table ~primary_key shape.Shape.view_name
    (view_table_columns flags shape)

(** delta_V columns: group columns, per-aggregate partial-state columns,
    the partial group count, and the multiplicity. *)
let delta_view_columns (flags : Flags.t) (shape : Shape.t) : Ast.column_def list =
  let groups =
    List.filter_map
      (function
        | Shape.Group_col { name; typ; _ } -> Some (coldef name typ)
        | Shape.Agg_col _ -> None)
      shape.Shape.columns
  in
  let agg_states =
    List.concat_map
      (fun (a : Shape.aggregate_item) ->
         if flags.Flags.paper_compat then
           [ coldef a.Shape.visible_name a.Shape.visible_type ]
         else
           match a.Shape.agg with
           | Ast.Sum | Ast.Avg ->
             [ coldef (Option.get a.Shape.sum_state) (sum_state_type shape a);
               coldef (Option.get a.Shape.nn_state) Ast.T_int ]
           | Ast.Count -> [ coldef a.Shape.visible_name Ast.T_int ]
           | Ast.Min | Ast.Max ->
             [ coldef a.Shape.visible_name a.Shape.visible_type ])
      (Shape.aggregates shape)
  in
  let counter =
    if flags.Flags.paper_compat then [] else [ coldef Shape.count_column Ast.T_int ]
  in
  groups @ agg_states @ counter
  @ [ coldef flags.Flags.multiplicity_column Ast.T_bool ]

let delta_view_table (flags : Flags.t) (shape : Shape.t) : Ast.stmt =
  create_table (delta_view_name flags shape.Shape.view_name)
    (delta_view_columns flags shape)

(** Stage table used by the global-aggregate combine. *)
let stage_table_ddl (flags : Flags.t) (shape : Shape.t) : Ast.stmt option =
  let needs_stage =
    Shape.is_global shape
    || ((flags.Flags.strategy = Flags.Union_regroup
         || flags.Flags.strategy = Flags.Outer_join_merge)
        && not (Shape.has_min_max shape))
  in
  if needs_stage && not flags.Flags.paper_compat then
    Some (create_table (Shape.stage_table shape) (view_table_columns flags shape))
  else None

(** Secondary index on the delta-view's group columns ("aggregation allows
    building an index ... using the GROUP BY columns as keys"). *)
let index_ddl (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  if not flags.Flags.create_indexes then []
  else
    match List.map snd (Shape.group_cols shape) with
    | [] -> []
    | keys ->
      [ Ast.Create_index
          { index = "__ivm_idx_" ^ shape.Shape.view_name;
            table = delta_view_name flags shape.Shape.view_name;
            columns = keys;
            unique = false } ]

let all (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let deltas =
    List.map
      (delta_base_table flags ~view:shape.Shape.view_name)
      (Shape.base_tables shape)
  in
  let stage = Option.to_list (stage_table_ddl flags shape) in
  deltas
  @ [ view_table flags shape; delta_view_table flags shape ]
  @ stage
  @ index_ddl flags shape
