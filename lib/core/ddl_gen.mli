(** DDL generation: per-view delta tables, the view's backing table with
    hidden bookkeeping columns and group-key PRIMARY KEY, the ΔV table,
    the global-aggregate stage table, and indexes. *)

module Ast = Openivm_sql.Ast

val delta_table_name : Flags.t -> view:string -> string -> string
(** [delta_<view>__<table>]; paper-compat keeps the shared
    [delta_<table>]. *)

val delta_view_name : Flags.t -> string -> string

val view_table_columns : Flags.t -> Shape.t -> Ast.column_def list
(** Visible columns in projection order, then hidden aggregate state, then
    the group counter (none of the hidden parts under paper-compat). *)

val delta_view_columns : Flags.t -> Shape.t -> Ast.column_def list

val view_table : Flags.t -> Shape.t -> Ast.stmt
val delta_view_table : Flags.t -> Shape.t -> Ast.stmt
val index_ddl : Flags.t -> Shape.t -> Ast.stmt list

val all : Flags.t -> Shape.t -> Ast.stmt list
(** Everything, in dependency order. *)
