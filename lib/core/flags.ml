(** Compiler switches ("the expected optimization strategies through
    flags", paper Fig. 1).

    The three combine strategies realize the paper's §2 search space for
    "incorporating changes in a materialized aggregation":
    - [Upsert_linear]  — the Listing-2 shape: partial-aggregate the delta,
      LEFT JOIN the view, INSERT OR REPLACE. Works for the linear
      aggregates (SUM/COUNT/AVG) and for flat (non-aggregate) views.
    - [Union_regroup]  — the paper's "replacing the materialized table
      with a UNION and regrouping": stage := regroup(V UNION ALL signed
      ΔV), then swap. Touches every group but needs no upsert index.
    - [Outer_join_merge] — the paper's "through a full-outer-join":
      stage := V FULL JOIN signed(ΔV) with coalesced combination, then
      swap. Also index-free; one pass over V instead of a regroup.
    - [Rederive_affected] — delete the groups the delta touches and
      recompute just those groups from the base table; the only correct
      strategy for MIN/MAX under deletions, usable for all classes.
    - [Full_recompute] — the non-IVM baseline the benchmarks compare
      against: drop contents, rerun the defining query. *)

type combine_strategy =
  | Upsert_linear
  | Union_regroup
  | Outer_join_merge
  | Rederive_affected
  | Full_recompute

let strategy_to_string = function
  | Upsert_linear -> "upsert_linear"
  | Union_regroup -> "union_regroup"
  | Outer_join_merge -> "outer_join_merge"
  | Rederive_affected -> "rederive_affected"
  | Full_recompute -> "full_recompute"

let all_strategies =
  [ Upsert_linear; Union_regroup; Outer_join_merge; Rederive_affected;
    Full_recompute ]

let strategy_of_string = function
  | "upsert_linear" -> Some Upsert_linear
  | "union_regroup" -> Some Union_regroup
  | "outer_join_merge" -> Some Outer_join_merge
  | "rederive_affected" -> Some Rederive_affected
  | "full_recompute" -> Some Full_recompute
  | _ -> None

type refresh_mode =
  | Eager  (** propagate on every base-table change *)
  | Lazy   (** propagate when the view is queried (the demo's choice) *)

let refresh_to_string = function Eager -> "eager" | Lazy -> "lazy"

let refresh_of_string = function
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | _ -> None

type t = {
  dialect : Openivm_sql.Dialect.t;
  multiplicity_column : string;
  delta_prefix : string;
  strategy : combine_strategy;
  refresh : refresh_mode;
  create_indexes : bool;
  paper_compat : bool;
      (** emit the exact Listing-1/2 shape: DuckDB multiplicity column
          name, no hidden bookkeeping columns, [DELETE ... WHERE agg = 0].
          Simpler output, with the NULL-group and SUM=0 caveats the paper's
          demo accepts. *)
  script_dir : string option;
      (** where to store propagation scripts on disk, if anywhere *)
  consolidate_deltas : bool;
      (** run the Z-set consolidation pass before propagation: cancel
          +/- multiplicity pairs and merge duplicate delta rows, so a hot
          base table (or a swap-strategy upstream view rewriting itself
          wholesale) feeds downstream views a net delta instead of raw
          churn *)
  exec_engine : Openivm_engine.Exec.engine;
      (** which interpreter runs the propagation SQL: the vectorized
          columnar executor (default) or the row-at-a-time oracle *)
  domains : int;
      (** refresh parallelism: number of OCaml domains delta propagation
          may fan out to. 1 (the default) keeps every refresh strictly
          sequential on the calling domain; N > 1 lets the runner shard a
          pending delta N ways and refresh independent same-level views
          of a cascade concurrently. Parallel refresh is an execution
          strategy, not a semantics change — results must be identical to
          [domains = 1] (the fuzz oracle enforces this). *)
}

let default = {
  dialect = Openivm_sql.Dialect.duckdb;
  multiplicity_column = "_ivm_multiplicity";
  delta_prefix = "delta_";
  strategy = Upsert_linear;
  refresh = Lazy;
  create_indexes = true;
  paper_compat = false;
  script_dir = None;
  consolidate_deltas = true;
  exec_engine = Openivm_engine.Exec.Vector;
  domains = 1;
}

(** Flags reproducing the paper's demonstrated configuration. *)
let paper = {
  default with
  multiplicity_column = "_duckdb_ivm_multiplicity";
  paper_compat = true;
}

let postgres = { default with dialect = Openivm_sql.Dialect.postgres }
