(** OpenIVM metadata tables: the paper stores each materialized view's
    "additional properties — query plan, SQL string, query type — in
    metadata tables", plus the propagation scripts for later inspection. *)

module Ast = Openivm_sql.Ast
open Sqlgen

let views_table = "_openivm_views"
let scripts_table = "_openivm_scripts"
let watermarks_table = "_openivm_bridge_watermarks"

(* The bridge's delivery ledger: the highest batch sequence number applied
   per delta source. Kept with the other metadata tables so a snapshot of
   an IVM-enabled OLAP database carries its delivery state. *)
let watermark_ddl : Ast.stmt list =
  [ create_table ~if_not_exists:true watermarks_table
      ~primary_key:[ "source" ]
      [ coldef "source" Ast.T_text; coldef "last_seq" Ast.T_int ] ]

let set_watermark ~(source : string) ~(seq : int) : Ast.stmt list =
  [ delete watermarks_table ~where:(eq (col "source") (str_lit source));
    insert watermarks_table
      (Ast.Values [ [ str_lit source; int_lit seq ] ]) ]

let watermark_query ~(source : string) : string =
  Printf.sprintf "SELECT last_seq FROM %s WHERE source = '%s'"
    watermarks_table source

(* --- resumable backfill progress (the durable store's install ledger) ---

   One row per staged install, updated after every completed chunk and
   kept (state = 'done') once finished — so it doubles as the registry of
   store-installed views for recovery reattachment, in install order.
   Deliberately NOT part of {!ddl}: compiled metadata DDL is golden-tested
   output, and only durable stores need this table. *)

let backfill_table = "_openivm_backfill_progress"

let backfill_ddl : Ast.stmt list =
  [ create_table ~if_not_exists:true backfill_table
      ~primary_key:[ "view_name" ]
      [ coldef "view_name" Ast.T_text;
        coldef "view_sql" Ast.T_text;
        coldef "strategy" Ast.T_text;
        coldef "dialect" Ast.T_text;
        coldef "refresh" Ast.T_text;
        coldef "chunk_rows" Ast.T_int;
        coldef "total_chunks" Ast.T_int;
        coldef "chunks_done" Ast.T_int;
        coldef "state" Ast.T_text;        (* running | done *)
        coldef "install_seq" Ast.T_int ] ]

type backfill_row = {
  bf_view : string;
  bf_sql : string;
  bf_strategy : string;
  bf_dialect : string;
  bf_refresh : string;
  bf_chunk_rows : int;
  bf_total_chunks : int;
  bf_chunks_done : int;
  bf_state : string;
  bf_install_seq : int;
}

(** Rewrite the whole progress row (delete + insert, idempotent — the same
    statement shape replay-safe under WAL recovery). *)
let backfill_set (r : backfill_row) : Ast.stmt list =
  [ delete backfill_table ~where:(eq (col "view_name") (str_lit r.bf_view));
    insert backfill_table
      (Ast.Values
         [ [ str_lit r.bf_view; str_lit r.bf_sql; str_lit r.bf_strategy;
             str_lit r.bf_dialect; str_lit r.bf_refresh;
             int_lit r.bf_chunk_rows; int_lit r.bf_total_chunks;
             int_lit r.bf_chunks_done; str_lit r.bf_state;
             int_lit r.bf_install_seq ] ]) ]

let backfill_delete ~(view_name : string) : Ast.stmt list =
  [ delete backfill_table ~where:(eq (col "view_name") (str_lit view_name)) ]

let backfill_query : string =
  Printf.sprintf
    "SELECT view_name, view_sql, strategy, dialect, refresh, chunk_rows, \
     total_chunks, chunks_done, state, install_seq FROM %s ORDER BY \
     install_seq"
    backfill_table

let ddl : Ast.stmt list =
  watermark_ddl
  @ [ create_table ~if_not_exists:true views_table
      ~primary_key:[ "view_name" ]
      [ coldef "view_name" Ast.T_text;
        coldef "view_sql" Ast.T_text;
        coldef "query_type" Ast.T_text;
        coldef "strategy" Ast.T_text;
        coldef "dialect" Ast.T_text;
        coldef "group_columns" Ast.T_text;
        coldef "logical_plan" Ast.T_text;
        coldef "depends_on" Ast.T_text ];
    create_table ~if_not_exists:true scripts_table
      ~primary_key:[ "view_name"; "step" ]
      [ coldef "view_name" Ast.T_text;
        coldef "step" Ast.T_int;
        coldef "purpose" Ast.T_text;
        coldef "sql" Ast.T_text ] ]

let register (flags : Flags.t) (shape : Shape.t) ~(view_sql : string)
    ~(depends_on : string list) ~(logical_plan : string)
    ~(scripts : (string * string) list) : Ast.stmt list =
  let row =
    [ str_lit shape.Shape.view_name;
      str_lit view_sql;
      str_lit (Openivm_sql.Analysis.class_to_string shape.Shape.klass);
      str_lit (Flags.strategy_to_string flags.Flags.strategy);
      str_lit flags.Flags.dialect.Openivm_sql.Dialect.name;
      str_lit (String.concat "," (List.map snd (Shape.group_cols shape)));
      str_lit logical_plan;
      str_lit (String.concat "," depends_on) ]
  in
  let script_rows =
    List.mapi
      (fun i (purpose, sql) ->
         [ str_lit shape.Shape.view_name; int_lit i; str_lit purpose; str_lit sql ])
      scripts
  in
  insert views_table (Ast.Values [ row ])
  :: (if script_rows = [] then []
      else [ insert scripts_table (Ast.Values script_rows) ])

let unregister (shape_name : string) : Ast.stmt list =
  [ delete views_table ~where:(eq (col "view_name") (str_lit shape_name));
    delete scripts_table ~where:(eq (col "view_name") (str_lit shape_name)) ]
