(** The OpenIVM metadata tables ([_openivm_views], [_openivm_scripts]):
    each view's defining SQL, query class, strategy, dialect, group
    columns and logical plan, plus the propagation script steps "to allow
    future inspection and usage" (paper §2). *)

module Ast = Openivm_sql.Ast

val views_table : string
val scripts_table : string

val ddl : Ast.stmt list
(** CREATE TABLE IF NOT EXISTS for both tables. *)

val register :
  Flags.t -> Shape.t -> view_sql:string -> logical_plan:string ->
  scripts:(string * string) list -> Ast.stmt list

val unregister : string -> Ast.stmt list
