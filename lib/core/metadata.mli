(** The OpenIVM metadata tables ([_openivm_views], [_openivm_scripts]):
    each view's defining SQL, query class, strategy, dialect, group
    columns and logical plan, plus the propagation script steps "to allow
    future inspection and usage" (paper §2). *)

module Ast = Openivm_sql.Ast

val views_table : string
val scripts_table : string
val watermarks_table : string

val ddl : Ast.stmt list
(** CREATE TABLE IF NOT EXISTS for all metadata tables (views, scripts,
    bridge watermarks). *)

val watermark_ddl : Ast.stmt list
(** Just the bridge-watermark table (for pipelines that attach to a
    database installed before the table existed). *)

val set_watermark : source:string -> seq:int -> Ast.stmt list
(** Record [seq] as the highest batch applied for [source]
    (delete + insert, idempotent). *)

val watermark_query : source:string -> string
(** SELECT returning the recorded watermark for [source] (empty result =
    nothing applied yet). *)

(** {1 Resumable backfill progress}

    One row per staged install in [_openivm_backfill_progress], updated
    after every completed chunk and kept with [state = "done"] once
    finished — the durable store's install ledger. Not part of {!ddl}
    (compiled metadata DDL is golden-tested output); durable stores run
    {!backfill_ddl} themselves. *)

val backfill_table : string

val backfill_ddl : Ast.stmt list
(** CREATE TABLE IF NOT EXISTS for the progress ledger. *)

type backfill_row = {
  bf_view : string;
  bf_sql : string;          (** the CREATE MATERIALIZED VIEW statement *)
  bf_strategy : string;
  bf_dialect : string;
  bf_refresh : string;      (** "eager" | "lazy" *)
  bf_chunk_rows : int;
  bf_total_chunks : int;
  bf_chunks_done : int;
  bf_state : string;        (** "running" | "done" *)
  bf_install_seq : int;     (** WAL seq of the install record — reattach
                                order *)
}

val backfill_set : backfill_row -> Ast.stmt list
(** Rewrite the whole progress row (delete + insert, idempotent). *)

val backfill_delete : view_name:string -> Ast.stmt list

val backfill_query : string
(** SELECT of every progress row, ordered by install sequence. *)

val register :
  Flags.t -> Shape.t -> view_sql:string -> depends_on:string list ->
  logical_plan:string -> scripts:(string * string) list -> Ast.stmt list
(** [depends_on] lists the view's sources (base tables and upstream
    materialized views) — the cascade DAG edges, comma-joined in the
    metadata row. *)

val unregister : string -> Ast.stmt list
