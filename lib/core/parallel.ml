(** Domain fan-out for the parallel refresh driver.

    A persistent worker pool over [Domain.spawn]:

    - workers are spawned lazily the first time a section needs them and
      then parked on a condition variable between sections.  Spawning a
      domain forces a stop-the-world synchronization of every running
      domain, so paying it once per process instead of once per parallel
      section keeps the per-refresh overhead at two uncontended
      lock/signal pairs per worker;
    - a domain-local flag marks worker context, so a refresh that is
      itself running on a worker (a view refreshed inside a level-parallel
      tick) never fans out again — nested parallelism multiplies domains
      without adding cores;
    - the first task exception (in task-index order) is re-raised on the
      caller after every task of the section has finished, so a failing
      shard cannot leave siblings running against tables the caller is
      about to roll back;
    - at process exit the pool workers are woken with a quit flag and
      joined, so the runtime never tears down under a live domain. *)

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(** Is the calling domain itself a parallel-section worker? *)
let in_worker () = Domain.DLS.get in_worker_key

(** When false (the default), {!width} additionally caps the fan-out at
    [Domain.recommended_domain_count ()]: more domains than the host can
    run concurrently never helps, and actively hurts — every minor
    collection is a stop-the-world barrier across all domains, and on an
    oversubscribed host each barrier waits for the OS to schedule every
    preempted domain (measured at ~8ms per barrier on a 1-core
    container). Correctness harnesses (the fuzz oracle, the soaks, the
    parallel alcotest suite) set this to [true] so cross-domain
    execution is genuinely exercised even on single-core CI hosts. *)
let oversubscribe = ref false

(** Effective fan-out width for a section of [n] independent tasks under
    [domains] requested domains: never more domains than tasks, never
    nested, never parallel when only one domain is requested, and capped
    at the host's available parallelism unless {!oversubscribe} is set. *)
let width ~domains n =
  if domains <= 1 || n <= 1 || in_worker () then 1
  else
    let cap =
      if !oversubscribe then domains
      else min domains (Domain.recommended_domain_count ())
    in
    min cap n

(* --- the pool --- *)

type wstate = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable pending : (unit -> unit) option;
  mutable quit : bool;
}

type worker = { st : wstate; domain : unit Domain.t }

let pool : worker list ref = ref []
let pool_mutex = Mutex.create ()
let section_mutex = Mutex.create ()

let worker_loop (st : wstate) =
  Domain.DLS.set in_worker_key true;
  let rec next () =
    Mutex.lock st.mutex;
    while st.pending = None && not st.quit do
      Condition.wait st.cond st.mutex
    done;
    let job = st.pending in
    st.pending <- None;
    Mutex.unlock st.mutex;
    match job with
    | Some f -> f (); next ()
    | None -> ()   (* quit, with no job left behind *)
  in
  next ()

let shutdown () =
  Mutex.lock pool_mutex;
  let ws = !pool in
  pool := [];
  Mutex.unlock pool_mutex;
  List.iter
    (fun w ->
       Mutex.lock w.st.mutex;
       w.st.quit <- true;
       Condition.signal w.st.cond;
       Mutex.unlock w.st.mutex)
    ws;
  List.iter (fun w -> Domain.join w.domain) ws

let spawn_worker () =
  let st =
    { mutex = Mutex.create (); cond = Condition.create ();
      pending = None; quit = false }
  in
  { st; domain = Domain.spawn (fun () -> worker_loop st) }

(** At least [n] parked workers, spawning the shortfall. Returns the
    first [n]. *)
let ensure_workers n =
  Mutex.lock pool_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool_mutex)
    (fun () ->
       let have = List.length !pool in
       if have = 0 && n > 0 then at_exit shutdown;
       if have < n then
         pool := !pool @ List.init (n - have) (fun _ -> spawn_worker ());
       List.filteri (fun i _ -> i < n) !pool)

let submit w job =
  Mutex.lock w.st.mutex;
  w.st.pending <- Some job;
  Condition.signal w.st.cond;
  Mutex.unlock w.st.mutex

(** [map tasks] runs every thunk to completion — tasks.(0) on the calling
    domain, the rest each on a parked pool worker — and returns their
    results in order. The section ends only when every task has finished,
    even when some raise; the first exception in task-index order is then
    re-raised. *)
let map (tasks : (unit -> 'a) array) : 'a array =
  match Array.length tasks with
  | 0 -> [||]
  | 1 -> [| tasks.(0) () |]
  | n ->
    (* one section at a time: two concurrent maps sharing a parked worker
       could overwrite each other's pending job before pickup *)
    Mutex.lock section_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock section_mutex) @@ fun () ->
    let results : ('a, exn) result option array = Array.make n None in
    let latch_mutex = Mutex.create () in
    let latch_cond = Condition.create () in
    let finished = ref 0 in
    let run i () =
      let r = try Ok (tasks.(i) ()) with e -> Error e in
      Mutex.lock latch_mutex;
      results.(i) <- Some r;
      incr finished;
      Condition.signal latch_cond;
      Mutex.unlock latch_mutex
    in
    let workers = ensure_workers (n - 1) in
    List.iteri (fun i w -> submit w (run (i + 1))) workers;
    (* the caller-run task is a worker too: while siblings are live it
       must not open a nested section whose pre-pass (index warming)
       would touch tables the siblings are writing *)
    let saved = Domain.DLS.get in_worker_key in
    Domain.DLS.set in_worker_key true;
    run 0 ();
    Domain.DLS.set in_worker_key saved;
    Mutex.lock latch_mutex;
    while !finished < n do
      Condition.wait latch_cond latch_mutex
    done;
    Mutex.unlock latch_mutex;
    let first_error =
      Array.fold_left
        (fun acc r ->
           match acc, r with None, Some (Error e) -> Some e | _ -> acc)
        None results
    in
    (match first_error with Some e -> raise e | None -> ());
    Array.map
      (function Some (Ok r) -> r | Some (Error _) | None -> assert false)
      results
