(** Propagation-script generation — the four post-processing steps of
    paper §2:

      (1) insertion into ΔV of the tuples resulting from querying ΔT;
      (2) insertion or update in V of the newly-inserted tuples in ΔV;
      (3) deletion of the invalid rows in V;
      (4) deletion from ΔT and ΔV after applying the changes.

    Step 1 is the DBSP rewrite materialized as SQL: linear operators run
    unchanged over the delta; a join expands into the three-join form
      Δ(A ⋈ B) = ΔA ⋈ B  +  A ⋈ ΔB  −  ΔA ⋈ ΔB
    (the minus shows up as a flipped multiplicity because the base tables
    already contain this batch's changes). Step 2's shape depends on the
    chosen combine strategy (see [Flags]). *)

module Ast = Openivm_sql.Ast
open Sqlgen

type plan_kind =
  | Linear          (** grouped/flat, LEFT JOIN + upsert *)
  | Regroup         (** stage := regroup(V UNION ALL signed ΔV), swap *)
  | Outer_merge     (** stage := V FULL JOIN signed ΔV, swap *)
  | Global_linear   (** global aggregate via the stage table *)
  | Rederive        (** delete + recompute affected groups *)
  | Full            (** recompute the whole view (baseline) *)

let kind_to_string = function
  | Linear -> "linear"
  | Regroup -> "regroup"
  | Outer_merge -> "outer_merge"
  | Global_linear -> "global_linear"
  | Rederive -> "rederive"
  | Full -> "full"

(* MIN/MAX are not invertible at all; SUM/AVG over float arguments are
   not invertible *numerically* (retracting a previously added float
   leaves last-bit residue that a full recompute never shows). Both
   classes must rederive affected groups rather than update running
   state in place. *)
let non_invertible (shape : Shape.t) : bool =
  Shape.has_min_max shape || Shape.has_float_sum shape

let plan_kind (flags : Flags.t) (shape : Shape.t) : plan_kind =
  match flags.Flags.strategy with
  | Flags.Full_recompute -> Full
  | Flags.Rederive_affected ->
    if Shape.is_global shape then Full else Rederive
  | Flags.Union_regroup ->
    if non_invertible shape then
      if Shape.is_global shape then Full else Rederive
    else if flags.Flags.paper_compat then
      (* paper-compat has no stage/state columns; fall back to Listing 2 *)
      if Shape.is_global shape then Full else Linear
    else Regroup
  | Flags.Outer_join_merge ->
    if non_invertible shape then
      if Shape.is_global shape then Full else Rederive
    else if flags.Flags.paper_compat then
      if Shape.is_global shape then Full else Linear
    else if Shape.is_global shape then Global_linear
    else Outer_merge
  | Flags.Upsert_linear ->
    if non_invertible shape then
      if Shape.is_global shape then Full else Rederive
    else if Shape.is_global shape then Global_linear
    else Linear

(* --- shared pieces --- *)

let mult_col (flags : Flags.t) = flags.Flags.multiplicity_column

let delta_of flags (shape : Shape.t) name =
  Ddl_gen.delta_table_name flags ~view:shape.Shape.view_name name
let delta_view flags shape = Ddl_gen.delta_view_name flags shape.Shape.view_name

(** Names of delta_V's state columns (everything between the group columns
    and the multiplicity column). *)
let state_column_names (flags : Flags.t) (shape : Shape.t) : string list =
  List.concat_map
    (fun (a : Shape.aggregate_item) ->
       if flags.Flags.paper_compat then [ a.Shape.visible_name ]
       else
         match a.Shape.agg with
         | Ast.Sum | Ast.Avg ->
           [ Option.get a.Shape.sum_state; Option.get a.Shape.nn_state ]
         | Ast.Count | Ast.Min | Ast.Max -> [ a.Shape.visible_name ])
    (Shape.aggregates shape)
  @ if flags.Flags.paper_compat then [] else [ Shape.count_column ]

(** The view table's column list, for explicit INSERT targets. *)
let view_columns (flags : Flags.t) (shape : Shape.t) : string list =
  List.map (fun c -> c.Ast.col_name) (Ddl_gen.view_table_columns flags shape)

(** Partial-state projections computed over a delta source (step 1),
    without the multiplicity column. *)
let partial_projections (flags : Flags.t) (shape : Shape.t) :
  (Ast.expr * string option) list =
  let groups =
    List.filter_map
      (function
        | Shape.Group_col { expr; name; _ } -> Some (proj expr name)
        | Shape.Agg_col _ -> None)
      shape.Shape.columns
  in
  let partials =
    List.concat_map
      (fun (a : Shape.aggregate_item) ->
         if flags.Flags.paper_compat then
           [ proj (Ast.Aggregate (a.Shape.agg, false, a.Shape.arg)) a.Shape.visible_name ]
         else
           match a.Shape.agg, a.Shape.arg with
           | (Ast.Sum | Ast.Avg), Some arg ->
             [ proj (sum_agg arg) (Option.get a.Shape.sum_state);
               proj (count_agg arg) (Option.get a.Shape.nn_state) ]
           | Ast.Count, Some arg -> [ proj (count_agg arg) a.Shape.visible_name ]
           | Ast.Count, None -> [ proj count_star a.Shape.visible_name ]
           | (Ast.Min | Ast.Max), _ ->
             [ proj (Ast.Aggregate (a.Shape.agg, false, a.Shape.arg)) a.Shape.visible_name ]
           | (Ast.Sum | Ast.Avg), None -> assert false)
      (Shape.aggregates shape)
  in
  let counter =
    if flags.Flags.paper_compat then [] else [ proj count_star Shape.count_column ]
  in
  groups @ partials @ counter

(* --- step 1: fill delta_V from delta_T --- *)

(** One INSERT INTO delta_V ... SELECT over a delta source. [from] is the
    FROM clause with the delta substitution applied; [mult_expr] is the
    multiplicity of the produced rows. *)
(* all ON conditions of the source, to be conjoined into WHERE clauses *)
let join_condition (shape : Shape.t) : Ast.expr option =
  match shape.Shape.source with
  | Shape.Single _ -> None
  | Shape.Joined { condition; _ } -> condition

let conjoin_opt (parts : Ast.expr option list) : Ast.expr option =
  match List.filter_map (fun x -> x) parts with
  | [] -> None
  | e :: rest -> Some (List.fold_left and_ e rest)

(* the view's full row predicate: join conditions AND the WHERE clause *)
let source_where ?extra (shape : Shape.t) : Ast.expr option =
  conjoin_opt [ join_condition shape; shape.Shape.where; extra ]

let fill_statement (flags : Flags.t) (shape : Shape.t) ~from ~mult_expr : Ast.stmt =
  let m = mult_col flags in
  let projections = partial_projections flags shape @ [ proj mult_expr m ] in
  let group_keys = List.map fst (Shape.group_cols shape) in
  let grouped = Shape.has_aggregates shape || not flags.Flags.paper_compat in
  let where = source_where shape in
  let q =
    if grouped then
      select projections ~from ?where ~group_by:(group_keys @ [ mult_expr ])
    else select projections ~from ?where
  in
  insert_select (delta_view flags shape) q

(* left-deep cross-join chain; join conditions live in the WHERE clause
   and the engine's optimizer turns the product back into hash joins *)
let cross_chain (items : Ast.from_clause list) : Ast.from_clause =
  match items with
  | [] -> invalid_arg "cross_chain: no tables"
  | first :: rest ->
    List.fold_left (fun acc item -> Ast.Join (acc, Ast.Cross, item, None)) first rest

(** Step 1 over an N-way join: DBSP's inclusion–exclusion expands
    Δ(T1 ⋈ ... ⋈ TN) into 2^N − 1 terms, one per non-empty subset S of
    delta-substituted tables (the others read current state). Because the
    base tables already contain this batch, every term's weight works out
    to the plain product of the subset's delta weights times the
    inclusion–exclusion sign — which in the boolean encoding is simply the
    XOR of the subset's multiplicity columns, for every subset. *)
let fill_statements (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let m = mult_col flags in
  match shape.Shape.source with
  | Shape.Single base ->
    let from = table (delta_of flags shape base.Shape.table) ~alias:base.Shape.binding in
    [ fill_statement flags shape ~from ~mult_expr:(col m) ]
  | Shape.Joined { tables; condition } ->
    let refs = Array.of_list tables in
    let n = Array.length refs in
    (* which tables does a join conjunct touch? (by binding; unqualified
       columns resolve against the unique table that has them) *)
    let tables_of_conjunct c =
      List.filter_map
        (fun (qualifier, name) ->
           match qualifier with
           | Some q ->
             let rec find i =
               if i >= n then None
               else if String.equal refs.(i).Shape.binding q then Some i
               else find (i + 1)
             in
             find 0
           | None ->
             let rec find i =
               if i >= n then None
               else
                 match
                   Openivm_engine.Schema.find_opt refs.(i).Shape.schema
                     ~qualifier:None ~name
                 with
                 | Some _ -> Some i
                 | None -> find (i + 1)
                 | exception Openivm_engine.Error.Sql_error _ -> find (i + 1)
             in
             find 0)
        (Openivm_sql.Analysis.expr_columns [] c)
      |> List.sort_uniq compare
    in
    let edges =
      match condition with
      | None -> []
      | Some c -> List.map tables_of_conjunct (Openivm_engine.Optimizer.conjuncts c)
    in
    let connected chosen candidate =
      List.exists
        (fun touched ->
           List.mem candidate touched
           && List.exists (fun t -> t <> candidate && List.mem t chosen) touched)
        edges
    in
    let terms = ref [] in
    for mask = 1 to (1 lsl n) - 1 do
      (* join order: delta tables first (they are small), then base tables
         greedily by join-graph connectivity, so the compiled SQL executes
         as index nested loops off the deltas *)
      let deltas =
        List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
      in
      let bases =
        List.filter (fun i -> mask land (1 lsl i) = 0) (List.init n Fun.id)
      in
      let order = ref deltas in
      let remaining = ref bases in
      while !remaining <> [] do
        let next =
          match List.find_opt (fun i -> connected !order i) !remaining with
          | Some i -> i
          | None -> List.hd !remaining
        in
        order := !order @ [ next ];
        remaining := List.filter (fun i -> i <> next) !remaining
      done;
      let items =
        List.map
          (fun i ->
             let r = refs.(i) in
             if mask land (1 lsl i) <> 0 then
               table (delta_of flags shape r.Shape.table) ~alias:r.Shape.binding
             else table r.Shape.table ~alias:r.Shape.binding)
          !order
      in
      let mults =
        List.filter_map
          (fun i ->
             if mask land (1 lsl i) <> 0 then
               Some (col ~q:refs.(i).Shape.binding m)
             else None)
          (List.init n (fun i -> i))
      in
      let mult_expr =
        match mults with
        | [] -> assert false
        | e :: rest -> List.fold_left neq e rest  (* boolean XOR chain *)
      in
      terms :=
        fill_statement flags shape ~from:(cross_chain items) ~mult_expr
        :: !terms
    done;
    List.rev !terms

(* --- initial load --- *)

let original_from (shape : Shape.t) : Ast.from_clause =
  match shape.Shape.source with
  | Shape.Single base -> table base.Shape.table ~alias:base.Shape.binding
  | Shape.Joined { tables; _ } ->
    cross_chain
      (List.map
         (fun (r : Shape.table_ref) -> table r.Shape.table ~alias:r.Shape.binding)
         tables)

(** Projections recomputing the view's full contents (visible + state) from
    the base tables; used by the initial load, the Rederive recompute and
    the Full baseline. *)
let recompute_projections (flags : Flags.t) (shape : Shape.t) :
  (Ast.expr * string option) list =
  let visible =
    List.map
      (function
        | Shape.Group_col { expr; name; _ } -> proj expr name
        | Shape.Agg_col a ->
          proj (Ast.Aggregate (a.Shape.agg, false, a.Shape.arg)) a.Shape.visible_name)
      shape.Shape.columns
  in
  if flags.Flags.paper_compat then visible
  else begin
    let state =
      List.concat_map
        (fun (a : Shape.aggregate_item) ->
           match a.Shape.agg, a.Shape.arg with
           | (Ast.Sum | Ast.Avg), Some arg ->
             [ proj (Ast.Func ("coalesce", [ sum_agg arg; int_lit 0 ]))
                 (Option.get a.Shape.sum_state);
               proj (count_agg arg) (Option.get a.Shape.nn_state) ]
           | _ -> [])
        (Shape.aggregates shape)
    in
    visible @ state @ [ proj count_star Shape.count_column ]
  end

let recompute_select ?extra_where (flags : Flags.t) (shape : Shape.t) : Ast.select =
  let group_by =
    if Shape.has_aggregates shape then shape.Shape.query.Ast.group_by
    else if flags.Flags.paper_compat then []
    else List.map fst (Shape.group_cols shape)
  in
  let where = source_where ?extra:extra_where shape in
  select (recompute_projections flags shape) ~from:(original_from shape) ?where
    ~group_by

let initial_load (flags : Flags.t) (shape : Shape.t) : Ast.stmt =
  insert_select
    ~columns:(view_columns flags shape)
    shape.Shape.view_name
    (recompute_select flags shape)

(* --- step 2: combine delta_V into V --- *)

(** The signed-sum CTE collapsing delta_V across multiplicities:
    SELECT g..., SUM(CASE WHEN m THEN c ELSE -c END) AS c ... GROUP BY g. *)
let signed_cte (flags : Flags.t) (shape : Shape.t) : Ast.select =
  let m = col (mult_col flags) in
  let groups =
    List.map (fun (_, name) -> proj (col name) name) (Shape.group_cols shape)
  in
  let signed =
    List.map
      (fun c -> proj (signed_sum ~mult:m (col c)) c)
      (state_column_names flags shape)
  in
  select (groups @ signed)
    ~from:(table (delta_view flags shape))
    ~group_by:(List.map (fun (_, name) -> col name) (Shape.group_cols shape))

(** Combined-state expressions with [v] the view binding and [d] the delta
    binding. Returns the expressions for (visible columns in order, hidden
    state columns, group counter). *)
let combine_exprs (shape : Shape.t) ~v ~d =
  let comb name = add (coalesce0 (col ~q:v name)) (coalesce0 (col ~q:d name)) in
  let visible =
    List.map
      (function
        | Shape.Group_col { name; _ } -> proj (col ~q:d name) name
        | Shape.Agg_col a ->
          (match a.Shape.agg with
           | Ast.Count -> proj (comb a.Shape.visible_name) a.Shape.visible_name
           | Ast.Sum ->
             let s' = comb (Option.get a.Shape.sum_state) in
             let nn' = comb (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) s' null_lit) a.Shape.visible_name
           | Ast.Avg ->
             let s' = comb (Option.get a.Shape.sum_state) in
             let nn' = comb (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) (div s' nn') null_lit)
               a.Shape.visible_name
           | Ast.Min | Ast.Max ->
             (* unreachable: MIN/MAX routes to Rederive *)
             proj (col ~q:d a.Shape.visible_name) a.Shape.visible_name))
      shape.Shape.columns
  in
  let state =
    List.concat_map
      (fun (a : Shape.aggregate_item) ->
         match a.Shape.agg with
         | Ast.Sum | Ast.Avg ->
           let s = Option.get a.Shape.sum_state in
           let nn = Option.get a.Shape.nn_state in
           [ proj (comb s) s; proj (comb nn) nn ]
         | Ast.Count | Ast.Min | Ast.Max -> [])
      (Shape.aggregates shape)
  in
  let counter = [ proj (comb Shape.count_column) Shape.count_column ] in
  (visible, state, counter)

(** Step 2, Linear: upsert the combined groups. *)
let combine_linear (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let view = shape.Shape.view_name in
  let d = "__ivm_d" in
  let group_names = List.map snd (Shape.group_cols shape) in
  let join_cond =
    conjoin
      (List.map
         (fun name ->
            let veq = col ~q:view name and deq = col ~q:d name in
            if flags.Flags.paper_compat then eq veq deq else nullsafe_eq veq deq)
         group_names)
  in
  if flags.Flags.paper_compat then begin
    (* the Listing-2 shape: signed CTE over the visible aggregate columns,
       outer regrouping SUM, plain equality join. (Listing 2 projects the
       view-side key; we project the delta-side key so new groups keep
       their key — noted as a deliberate fix in DESIGN.md.) *)
    let cte_name = "ivm_cte" in
    let groups = List.map (fun name -> proj (col ~q:d name) name) group_names in
    let aggs =
      List.map
        (fun (a : Shape.aggregate_item) ->
           proj
             (sum_agg
                (add (coalesce0 (col ~q:view a.Shape.visible_name))
                   (col ~q:d a.Shape.visible_name)))
             a.Shape.visible_name)
        (Shape.aggregates shape)
    in
    let q =
      { (select (groups @ aggs)
           ~from:(left_join ~condition:join_cond
                    (table cte_name ~alias:d)
                    (table view))
           ~group_by:(List.map (fun name -> col ~q:d name) group_names))
        with Ast.ctes = [ (cte_name, signed_cte flags shape) ] }
    in
    [ insert_select ~on_conflict:Ast.Or_replace view q ]
  end
  else begin
    let visible, state, counter = combine_exprs shape ~v:view ~d in
    let q =
      { (select (visible @ state @ counter)
           ~from:(left_join ~condition:join_cond
                    (table "__ivm_delta" ~alias:d)
                    (table view)))
        with Ast.ctes = [ ("__ivm_delta", signed_cte flags shape) ] }
    in
    [ insert_select ~columns:(view_columns flags shape) ~on_conflict:Ast.Or_replace
        view q ]
  end

(** Step 2, Global_linear: combine through the stage table. *)
let combine_global (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let view = shape.Shape.view_name in
  let stage = Shape.stage_table shape in
  let d = "__ivm_d" in
  let visible, state, counter = combine_exprs shape ~v:view ~d in
  let q =
    select (visible @ state @ counter)
      ~from:
        (Ast.Join
           ( table view,
             Ast.Cross,
             Ast.Subquery (signed_cte flags shape, d),
             None ))
  in
  [ insert_select ~columns:(view_columns flags shape) stage q;
    delete view;
    insert_select view (select [ (Ast.Star, None) ] ~from:(table stage));
    delete stage ]

(** Step 2, Regroup: rebuild the whole view as
    regroup(V UNION ALL signed(ΔV)) through the stage table — the paper's
    "replacing the materialized table with a UNION and regrouping". *)
let combine_regroup (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let view = shape.Shape.view_name in
  let stage = Shape.stage_table shape in
  let u = "__ivm_u" in
  let m = col (mult_col flags) in
  let group_names = List.map snd (Shape.group_cols shape) in
  let state_names = state_column_names flags shape in
  (* arm 1: the current view contents (state columns as stored) *)
  let view_arm =
    select
      (List.map (fun name -> proj (col name) name) (group_names @ state_names))
      ~from:(table view)
  in
  (* arm 2: the delta, sign-applied per row *)
  let delta_arm =
    select
      (List.map (fun name -> proj (col name) name) group_names
       @ List.map
         (fun name -> proj (case_when m (col name) (neg (col name))) name)
         state_names)
      ~from:(table (delta_view flags shape))
  in
  let union_q = { view_arm with Ast.set_operation = Some (Ast.Union_all, delta_arm) } in
  (* outer regroup: SUM every state column, rederive the visible ones *)
  let s name = sum_agg (col ~q:u name) in
  let visible =
    List.map
      (function
        | Shape.Group_col { name; _ } -> proj (col ~q:u name) name
        | Shape.Agg_col a ->
          (match a.Shape.agg with
           | Ast.Count -> proj (s a.Shape.visible_name) a.Shape.visible_name
           | Ast.Sum ->
             let s' = s (Option.get a.Shape.sum_state) in
             let nn' = s (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) s' null_lit) a.Shape.visible_name
           | Ast.Avg ->
             let s' = s (Option.get a.Shape.sum_state) in
             let nn' = s (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) (div s' nn') null_lit)
               a.Shape.visible_name
           | Ast.Min | Ast.Max ->
             (* unreachable: MIN/MAX routes to Rederive *)
             proj (col ~q:u a.Shape.visible_name) a.Shape.visible_name))
      shape.Shape.columns
  in
  let state =
    List.concat_map
      (fun (a : Shape.aggregate_item) ->
         match a.Shape.agg with
         | Ast.Sum | Ast.Avg ->
           let ssum = Option.get a.Shape.sum_state in
           let nn = Option.get a.Shape.nn_state in
           [ proj (s ssum) ssum; proj (s nn) nn ]
         | Ast.Count | Ast.Min | Ast.Max -> [])
      (Shape.aggregates shape)
  in
  let counter = [ proj (s Shape.count_column) Shape.count_column ] in
  let regroup =
    { (select (visible @ state @ counter)
         ~from:(Ast.Subquery (union_q, u))
         ~group_by:(List.map (fun name -> col ~q:u name) group_names))
      with
      Ast.having =
        (* drop emptied groups here instead of a prune step; a global
           aggregate keeps its single row *)
        (if Shape.is_global shape then None
         else Some (gt (sum_agg (col ~q:u Shape.count_column)) (int_lit 0))) }
  in
  [ insert_select ~columns:(view_columns flags shape) stage regroup;
    delete view;
    insert_select view (select [ (Ast.Star, None) ] ~from:(table stage));
    delete stage ]

(** Step 2, Outer_merge: stage := V FULL JOIN signed(ΔV) with coalesced
    combination, then swap — the paper's "through a full-outer-join". *)
let combine_outer_merge (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let view = shape.Shape.view_name in
  let stage = Shape.stage_table shape in
  let d = "__ivm_d" in
  let group_names = List.map snd (Shape.group_cols shape) in
  let join_cond =
    conjoin
      (List.map
         (fun name -> nullsafe_eq (col ~q:view name) (col ~q:d name))
         group_names)
  in
  (* which side is present? the signed CTE's count is never NULL, and a
     view row's count is never NULL either *)
  let d_present = Ast.Is_null (col ~q:d Shape.count_column, true) in
  let v_present = Ast.Is_null (col ~q:view Shape.count_column, true) in
  let comb name = add (coalesce0 (col ~q:view name)) (coalesce0 (col ~q:d name)) in
  let visible =
    List.map
      (function
        | Shape.Group_col { name; _ } ->
          (* NULL group keys are legitimate values: pick the side that is
             actually present instead of coalescing the key itself *)
          proj (case_when d_present (col ~q:d name) (col ~q:view name)) name
        | Shape.Agg_col a ->
          (match a.Shape.agg with
           | Ast.Count -> proj (comb a.Shape.visible_name) a.Shape.visible_name
           | Ast.Sum ->
             let s' = comb (Option.get a.Shape.sum_state) in
             let nn' = comb (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) s' null_lit) a.Shape.visible_name
           | Ast.Avg ->
             let s' = comb (Option.get a.Shape.sum_state) in
             let nn' = comb (Option.get a.Shape.nn_state) in
             proj (case_when (gt nn' (int_lit 0)) (div s' nn') null_lit)
               a.Shape.visible_name
           | Ast.Min | Ast.Max ->
             proj (col ~q:d a.Shape.visible_name) a.Shape.visible_name))
      shape.Shape.columns
  in
  let state =
    List.concat_map
      (fun (a : Shape.aggregate_item) ->
         match a.Shape.agg with
         | Ast.Sum | Ast.Avg ->
           let ssum = Option.get a.Shape.sum_state in
           let nn = Option.get a.Shape.nn_state in
           [ proj (comb ssum) ssum; proj (comb nn) nn ]
         | Ast.Count | Ast.Min | Ast.Max -> [])
      (Shape.aggregates shape)
  in
  let counter = [ proj (comb Shape.count_column) Shape.count_column ] in
  let q =
    { (select (visible @ state @ counter)
         ~from:
           (Ast.Join
              ( table view,
                Ast.Full_outer,
                Ast.Table_ref ("__ivm_delta", Some d),
                Some join_cond ))
         ~where:
           (* keep groups that remain non-empty; rows missing on the delta
              side kept as-is, rows missing on the view side are new *)
           (and_ (or_ d_present v_present)
              (gt (comb Shape.count_column) (int_lit 0))))
      with Ast.ctes = [ ("__ivm_delta", signed_cte flags shape) ] }
  in
  [ insert_select ~columns:(view_columns flags shape) stage q;
    delete view;
    insert_select view (select [ (Ast.Star, None) ] ~from:(table stage));
    delete stage ]

(** Tuple key expression for multi-column affected-group membership:
    COALESCE(CAST(k AS VARCHAR), marker) || sep || ... *)
let tuple_key (exprs : Ast.expr list) : Ast.expr =
  let piece e =
    Ast.Func
      ("coalesce", [ Ast.Cast (e, Ast.T_text); str_lit Shape.null_marker ])
  in
  match exprs with
  | [] -> invalid_arg "tuple_key: no key columns"
  | [ e ] -> piece e
  | e :: rest ->
    List.fold_left
      (fun acc x -> concat (concat acc (str_lit Shape.key_separator)) (piece x))
      (piece e) rest

(** Step 2, Rederive: drop affected groups, recompute them from base. *)
let combine_rederive (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  let view = shape.Shape.view_name in
  let dv = delta_view flags shape in
  let group_names = List.map snd (Shape.group_cols shape) in
  let affected_keys =
    select [ (tuple_key (List.map (fun n -> col n) group_names), None) ]
      ~from:(table dv)
  in
  let in_affected key_exprs =
    Ast.In_select (tuple_key key_exprs, affected_keys, false)
  in
  let delete_affected =
    delete view ~where:(in_affected (List.map (fun n -> col n) group_names))
  in
  let recompute =
    insert_select
      ~columns:(view_columns flags shape)
      view
      (recompute_select flags shape
         ~extra_where:(in_affected (List.map fst (Shape.group_cols shape))))
  in
  [ delete_affected; recompute ]

(** Step 2, Full: the non-incremental baseline. *)
let combine_full (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  [ delete shape.Shape.view_name;
    insert_select
      ~columns:(view_columns flags shape)
      shape.Shape.view_name
      (recompute_select flags shape) ]

(* --- step 3: prune invalid rows --- *)

let prune (flags : Flags.t) (shape : Shape.t) (kind : plan_kind) : Ast.stmt list =
  match kind with
  | Rederive | Full -> []  (* recomputation never leaves stale rows *)
  | Regroup -> []          (* emptied groups drop in the regroup's HAVING *)
  | Outer_merge -> []      (* emptied groups drop in the merge's WHERE *)
  | Global_linear -> []    (* a global aggregate always keeps its one row *)
  | Linear ->
    if flags.Flags.paper_compat then begin
      (* the demo's simplification: delete when the (first) aggregate hits
         zero — "DELETE FROM query_groups WHERE total_value = 0" *)
      match Shape.aggregates shape with
      | a :: _ ->
        [ delete shape.Shape.view_name
            ~where:(eq (col a.Shape.visible_name) (int_lit 0)) ]
      | [] -> []
    end
    else
      [ delete shape.Shape.view_name
          ~where:(le (col Shape.count_column) (int_lit 0)) ]

(* --- step 4: cleanup --- *)

let cleanup (flags : Flags.t) (shape : Shape.t) : Ast.stmt list =
  delete (delta_view flags shape)
  :: List.map
    (fun (b : Shape.table_ref) -> delete (delta_of flags shape b.Shape.table))
    (Shape.base_tables shape)

(* --- assembled script --- *)

type script = {
  kind : plan_kind;
  fill : Ast.stmt list;
  combine : Ast.stmt list;
  prune : Ast.stmt list;
  cleanup : Ast.stmt list;
}

let script (flags : Flags.t) (shape : Shape.t) : script =
  let kind = plan_kind flags shape in
  let fill =
    match kind with
    | Full -> []  (* the baseline reads the base tables directly *)
    | Linear | Regroup | Outer_merge | Global_linear | Rederive ->
      fill_statements flags shape
  in
  let combine =
    match kind with
    | Linear -> combine_linear flags shape
    | Regroup -> combine_regroup flags shape
    | Outer_merge -> combine_outer_merge flags shape
    | Global_linear -> combine_global flags shape
    | Rederive -> combine_rederive flags shape
    | Full -> combine_full flags shape
  in
  { kind; fill; combine; prune = prune flags shape kind;
    cleanup = cleanup flags shape }

let all_statements (s : script) : Ast.stmt list =
  s.fill @ s.combine @ s.prune @ s.cleanup

(** The (target, query) of a plain positional [INSERT INTO t SELECT ...] —
    the shape shared by every fill statement and by the stage-filling
    statement of the swap strategies. The parallel refresh driver uses it
    to re-point a statement's SELECT at per-shard tables and bulk-insert
    the merged result itself. (The explicit [columns] of the stage insert
    name the stage table's columns in DDL order, so treating the insert
    as positional is exact.) *)
let insert_select_parts : Ast.stmt -> (string * Ast.select) option = function
  | Ast.Insert
      { table; source = Ast.Query q; on_conflict = Ast.No_conflict_clause; _ }
    -> Some (table, q)
  | _ -> None
