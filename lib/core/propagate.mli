(** Propagation-script generation: the four post-processing steps of paper
    §2 as SQL statement ASTs, shaped by the combine strategy. Step 1 is
    the DBSP rewrite as SQL — linear operators run unchanged over deltas;
    N-way joins expand by inclusion–exclusion into 2^N − 1 terms whose
    multiplicity is the XOR of the participating delta multiplicities. *)

module Ast = Openivm_sql.Ast

type plan_kind =
  | Linear          (** grouped/flat, signed-CTE + LEFT JOIN + upsert *)
  | Regroup         (** stage := regroup(V UNION ALL signed ΔV), swap *)
  | Outer_merge     (** stage := V FULL JOIN signed ΔV, swap *)
  | Global_linear   (** global aggregate via the stage table *)
  | Rederive        (** delete + recompute affected groups (MIN/MAX) *)
  | Full            (** recompute the whole view (the non-IVM baseline) *)

val plan_kind : Flags.t -> Shape.t -> plan_kind
(** Strategy resolution, including the MIN/MAX → Rederive and
    global-aggregate special cases. *)

val kind_to_string : plan_kind -> string

val initial_load : Flags.t -> Shape.t -> Ast.stmt

val fill_statements : Flags.t -> Shape.t -> Ast.stmt list
(** Step 1: INSERT INTO ΔV ... SELECT over the delta tables. *)

type script = {
  kind : plan_kind;
  fill : Ast.stmt list;     (** step 1 *)
  combine : Ast.stmt list;  (** step 2 *)
  prune : Ast.stmt list;    (** step 3 *)
  cleanup : Ast.stmt list;  (** step 4 *)
}

val script : Flags.t -> Shape.t -> script
val all_statements : script -> Ast.stmt list

val insert_select_parts : Ast.stmt -> (string * Ast.select) option
(** The (target, query) of a plain positional [INSERT INTO t SELECT ...]
    (no conflict clause) — the shape of fill and stage-filling statements,
    which the parallel refresh driver rewrites per delta shard. [None] for
    anything else. *)

(**/**)

val tuple_key : Ast.expr list -> Ast.expr
val recompute_select : ?extra_where:Ast.expr -> Flags.t -> Shape.t -> Ast.select
