(** The extension module: OpenIVM inside the engine (paper Figure 2).

    [install] executes the compiled DDL, performs the initial load, stores
    the propagation script (in the metadata tables and optionally on disk),
    and registers capture hooks on the base tables — the embedded
    equivalent of DuckDB's optimizer-rule DML interception. Under [Eager]
    refresh every base-table change propagates immediately; under [Lazy]
    (the demo's choice) deltas accumulate until the view is queried or
    [refresh] is called. *)

module Ast = Openivm_sql.Ast
open Openivm_engine

type view = {
  compiled : Compiler.t;
  db : Database.t;
  mutable pending_deltas : int;   (** delta rows captured since last refresh *)
  mutable refresh_count : int;
  mutable refresh_time : float;   (** total seconds spent propagating *)
  mutable capture_enabled : bool;
}

let view_name v = v.compiled.Compiler.shape.Shape.view_name

let exec_stmts db stmts =
  List.iter (fun stmt -> ignore (Database.exec_stmt db stmt)) stmts

(* --- delta capture --- *)

(** Append changed rows into delta_T with the boolean multiplicity. Runs
    with hooks disabled so IVM's own writes never re-trigger capture. *)
let capture v (base_table : string) (change : Trigger.change) =
  if v.capture_enabled then begin
    let delta_name = Compiler.delta_table v.compiled base_table in
    let delta = Catalog.find_table (Database.catalog v.db) delta_name in
    Trigger.without_hooks (Database.triggers v.db) (fun () ->
        let emit mult row =
          Table.insert delta (Array.append row [| Value.Bool mult |]);
          v.pending_deltas <- v.pending_deltas + 1
        in
        List.iter (emit false) change.Trigger.deleted;
        List.iter (emit true) change.Trigger.inserted)
  end

(* --- refresh --- *)

module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics

let m_refresh_total strategy =
  Metrics.counter "openivm_refresh_total"
    ~help:"propagation-script runs per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_refresh_seconds strategy =
  Metrics.histogram "openivm_refresh_seconds"
    ~help:"refresh latency per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_delta_rows_folded =
  Metrics.counter "openivm_delta_rows_folded_total"
    ~help:"captured delta rows consumed by refreshes"

(** One propagation step (paper §2 steps 1–4) under its own span, with
    statement count and the engine's row counters attributed to it. *)
let run_step v name stmts =
  if stmts <> [] then
    Span.with_span ("propagate." ^ name) (fun sp ->
        let p = Database.profile v.db in
        let w0 = p.Database.rows_written and r0 = p.Database.rows_read in
        exec_stmts v.db stmts;
        if sp != Span.none then begin
          Span.set_int sp "statements" (List.length stmts);
          Span.set_int sp "rows_written" (p.Database.rows_written - w0);
          Span.set_int sp "rows_read" (p.Database.rows_read - r0)
        end)

let force_refresh v =
  let t0 = Unix.gettimeofday () in
  let script = v.compiled.Compiler.script in
  let strategy =
    Flags.strategy_to_string v.compiled.Compiler.flags.Flags.strategy
  in
  Span.with_span "refresh"
    ~attrs:
      [ ("view", Span.Str (view_name v));
        ("strategy", Span.Str strategy);
        ("plan", Span.Str (Propagate.kind_to_string script.Propagate.kind));
        ("pending_deltas", Span.Int v.pending_deltas) ]
    (fun _ ->
       Trigger.without_hooks (Database.triggers v.db) (fun () ->
           run_step v "fill" script.Propagate.fill;
           run_step v "combine" script.Propagate.combine;
           run_step v "prune" script.Propagate.prune;
           run_step v "cleanup" script.Propagate.cleanup));
  Metrics.incr (m_refresh_total strategy);
  Metrics.add m_delta_rows_folded v.pending_deltas;
  v.pending_deltas <- 0;
  v.refresh_count <- v.refresh_count + 1;
  let dt = Unix.gettimeofday () -. t0 in
  Metrics.observe (m_refresh_seconds strategy) dt;
  v.refresh_time <- v.refresh_time +. dt

let refresh v =
  if v.pending_deltas > 0
     || v.compiled.Compiler.script.Propagate.kind = Propagate.Full
  then force_refresh v

(** Rebuild the view from the base tables as they stand now: discard all
    pending deltas, truncate the view's backing table, and rerun the
    initial load. The recovery path of last resort — equivalent to
    dropping and re-creating the view, but keeping triggers, metadata and
    compiled scripts in place. *)
let reinitialize v =
  let catalog = Database.catalog v.db in
  Trigger.without_hooks (Database.triggers v.db) (fun () ->
      ignore (Table.truncate (Catalog.find_table catalog (view_name v)));
      List.iter
        (fun base ->
           ignore
             (Table.truncate
                (Catalog.find_table catalog
                   (Compiler.delta_table v.compiled base))))
        (Compiler.base_tables v.compiled);
      exec_stmts v.db [ v.compiled.Compiler.initial_load ]);
  v.pending_deltas <- 0

(** Query the view, honoring the refresh mode (lazy refresh-on-read). *)
let query v (sql : string) : Database.query_result =
  (match v.compiled.Compiler.flags.Flags.refresh with
   | Flags.Lazy -> refresh v
   | Flags.Eager -> ());
  Database.query v.db sql

let contents ?(order_by = "") v : Database.query_result =
  let suffix = if order_by = "" then "" else " ORDER BY " ^ order_by in
  query v (Printf.sprintf "SELECT * FROM %s%s" (view_name v) suffix)

(* --- the differential-testing hooks --- *)

(** The view's visible contents as sorted row strings. Hidden bookkeeping
    columns are stripped; flat (non-aggregate) views materialize in
    weighted form, so their rows are expanded by the hidden row count to
    recover bag semantics. The oracle's left-hand side. *)
let visible_rows (v : view) : string list =
  let shape = v.compiled.Compiler.shape in
  let visible = Shape.visible_names shape in
  let flat = not (Shape.has_aggregates shape) in
  let cols = if flat then visible @ [ Shape.count_column ] else visible in
  let r =
    query v
      (Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols)
         (view_name v))
  in
  let rows =
    if flat then
      List.concat_map
        (fun (row : Row.t) ->
           let n = Array.length row - 1 in
           let weight = match row.(n) with Value.Int w -> w | _ -> 1 in
           let visible_part = Array.sub row 0 n in
           List.init (max 0 weight) (fun _ -> Row.to_string visible_part))
        r.Database.rows
    else List.map Row.to_string r.Database.rows
  in
  List.sort String.compare rows

(** Full recomputation of the defining query against the base tables as
    they stand now, as sorted row strings — the oracle's right-hand side.
    [visible_rows v = recompute_rows v] is the IVM correctness invariant
    (paper §2, DBSP Z-set semantics). *)
let recompute_rows (v : view) : string list =
  let q = v.compiled.Compiler.shape.Shape.query in
  let sql = Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb q in
  List.sort String.compare
    (List.map Row.to_string (Database.query v.db sql).Database.rows)

(* --- installation --- *)

let store_scripts_on_disk (compiled : Compiler.t) =
  match compiled.Compiler.flags.Flags.script_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path =
      Filename.concat dir (compiled.Compiler.shape.Shape.view_name ^ ".sql")
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Compiler.full_sql compiled))

let install ?(flags = Flags.default) (db : Database.t) (sql : string) : view =
  let compiled =
    Span.with_span "install" (fun sp ->
        let compiled =
          Span.with_span "compile" (fun _ ->
              Compiler.compile ~flags (Database.catalog db) sql)
        in
        Span.set_str sp "view" compiled.Compiler.shape.Shape.view_name;
        Span.with_span "setup_ddl" (fun _ ->
            exec_stmts db compiled.Compiler.ddl;
            exec_stmts db compiled.Compiler.metadata_ddl;
            exec_stmts db compiled.Compiler.metadata_dml);
        (* initial load must not be captured as a delta *)
        Span.with_span "initial_load" (fun _ ->
            Trigger.without_hooks (Database.triggers db) (fun () ->
                exec_stmts db [ compiled.Compiler.initial_load ]));
        compiled)
  in
  store_scripts_on_disk compiled;
  let v =
    { compiled; db; pending_deltas = 0; refresh_count = 0;
      refresh_time = 0.0; capture_enabled = true }
  in
  List.iter
    (fun base ->
       Trigger.register (Database.triggers db) ~table:base
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base)
         (fun change ->
            capture v base change;
            match compiled.Compiler.flags.Flags.refresh with
            | Flags.Eager -> refresh v
            | Flags.Lazy -> ()))
    (Compiler.base_tables compiled);
  v

let uninstall v =
  let db = v.db in
  v.capture_enabled <- false;
  List.iter
    (fun base ->
       Trigger.unregister (Database.triggers db)
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base))
    (Compiler.base_tables v.compiled);
  exec_stmts db (Metadata.unregister (view_name v));
  let drop name =
    ignore
      (Database.exec_stmt db
         (Ast.Drop { kind = `Table; name; if_exists = true }))
  in
  drop (view_name v);
  drop (Compiler.delta_view v.compiled);
  List.iter
    (fun b -> drop (Compiler.delta_table v.compiled b))
    (Compiler.base_tables v.compiled)

(* --- the extension entry point --- *)

(** The loaded extension: a database plus the registry of views it
    maintains (paper Figure 2). *)
type extension = {
  ext_db : Database.t;
  ext_flags : Flags.t;
  mutable ext_views : view list;
}

let load ?(flags = Flags.default) (db : Database.t) : extension =
  { ext_db = db; ext_flags = flags; ext_views = [] }

let find_view ext name =
  List.find_opt (fun v -> String.equal (view_name v) name) ext.ext_views

(** Refresh every lazily-maintained view a query touches — the engine-side
    counterpart of the paper's "implicitly calling a table function,
    adding a dummy node to the plan of the original query". *)
let refresh_for_query ext (q : Ast.select) =
  let touched = Ast.select_tables q in
  List.iter
    (fun v ->
       if v.compiled.Compiler.flags.Flags.refresh = Flags.Lazy
          && List.mem (view_name v) touched
       then refresh v)
    ext.ext_views

(** Execute a statement with the OpenIVM extension active: the fall-back
    parser path of the paper — [CREATE MATERIALIZED VIEW] is intercepted
    and compiled; SELECTs over maintained views refresh them first;
    everything else goes to the engine untouched. *)
let exec_ext (ext : extension) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    let v = install ~flags:ext.ext_flags ext.ext_db sql in
    ext.ext_views <- v :: ext.ext_views;
    `Installed v
  | Ast.Select_stmt q as stmt ->
    refresh_for_query ext q;
    `Result (Database.exec_stmt ext.ext_db stmt)
  | Ast.Drop { kind = `Table; name; _ } when find_view ext name <> None ->
    (match find_view ext name with
     | Some v ->
       uninstall v;
       ext.ext_views <-
         List.filter (fun w -> not (String.equal (view_name w) name)) ext.ext_views;
       `Result (Database.Ok_msg (Printf.sprintf "dropped materialized view %s" name))
     | None -> assert false)
  | stmt -> `Result (Database.exec_stmt ext.ext_db stmt)

(** One-shot variant when no extension state is at hand. *)
let exec ?(flags = Flags.default) (db : Database.t) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    `Installed (install ~flags db sql)
  | stmt -> `Result (Database.exec_stmt db stmt)
