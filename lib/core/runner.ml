(** The extension module: OpenIVM inside the engine (paper Figure 2).

    [install] executes the compiled DDL, performs the initial load, stores
    the propagation script (in the metadata tables and optionally on disk),
    and registers capture hooks on the base tables — the embedded
    equivalent of DuckDB's optimizer-rule DML interception. Under [Eager]
    refresh every base-table change propagates immediately; under [Lazy]
    (the demo's choice) deltas accumulate until the view is queried or
    [refresh] is called. *)

module Ast = Openivm_sql.Ast
open Openivm_engine

type view = {
  compiled : Compiler.t;
  db : Database.t;
  mutable pending_deltas : int;   (** delta rows captured since last refresh *)
  mutable refresh_count : int;
  mutable refresh_time : float;   (** total seconds spent propagating *)
  mutable capture_enabled : bool;
  mutable upstreams : view list;
      (** maintained views this view reads (cascade DAG parents) *)
  mutable downstreams : view list;
      (** maintained views reading this view (cascade DAG children) *)
  mutable in_refresh : bool;
      (** propagation in flight — re-entrant refreshes become no-ops and
          eager downstream refreshes wait for the post-refresh pass *)
}

let view_name v = v.compiled.Compiler.shape.Shape.view_name

(** 0 for views over base tables only; 1 + the deepest upstream level
    otherwise. Attached to refresh spans so profiles attribute time per
    DAG level. *)
let rec dag_level v =
  match v.upstreams with
  | [] -> 0
  | ups -> 1 + List.fold_left (fun acc u -> max acc (dag_level u)) 0 ups

let exec_stmts db stmts =
  List.iter (fun stmt -> ignore (Database.exec_stmt db stmt)) stmts

(* --- delta capture --- *)

(** Append changed rows into delta_T with the boolean multiplicity. Runs
    with hooks disabled so IVM's own writes never re-trigger capture.
    When the base is itself a maintained view, its backing rows carry
    hidden IVM state after the visible prefix — the delta table is
    declared over the visible columns only, so project the row down to
    the delta table's width. *)
let capture v (base_table : string) (change : Trigger.change) =
  if v.capture_enabled then begin
    let delta_name = Compiler.delta_table v.compiled base_table in
    let delta = Catalog.find_table (Database.catalog v.db) delta_name in
    let width = Table.arity delta - 1 in
    Trigger.without_hooks (Database.triggers v.db) (fun () ->
        let emit mult row =
          let row =
            if Array.length row = width then row else Array.sub row 0 width
          in
          Table.insert delta (Array.append row [| Value.Bool mult |]);
          v.pending_deltas <- v.pending_deltas + 1
        in
        List.iter (emit false) change.Trigger.deleted;
        List.iter (emit true) change.Trigger.inserted)
  end

(* --- refresh --- *)

module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics

let m_refresh_total strategy =
  Metrics.counter "openivm_refresh_total"
    ~help:"propagation-script runs per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_refresh_seconds strategy =
  Metrics.histogram "openivm_refresh_seconds"
    ~help:"refresh latency per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_delta_rows_folded =
  Metrics.counter "openivm_delta_rows_folded_total"
    ~help:"captured delta rows consumed by refreshes"

let m_consolidated_rows =
  Metrics.counter "openivm_consolidated_rows_total"
    ~help:"delta rows cancelled or merged by the Z-set consolidation pass"

(* --- Z-set delta consolidation --- *)

(** Coalesce each pending delta table to its net Z-set: sum the signed
    multiplicities per distinct row and rewrite the table as |weight|
    copies per surviving row. +/- pairs cancel outright, so a hot base
    table — or a swap-strategy upstream view that rewrote itself
    wholesale — feeds propagation a net delta instead of raw churn. *)
let consolidate_delta_table (delta : Table.t) : int =
  let before = Table.row_count delta in
  if before < 2 then 0
  else begin
    let width = Table.arity delta - 1 in
    let weights : int Row.Tbl.t = Row.Tbl.create 64 in
    let order = ref [] in
    Table.iter_rows
      (fun row ->
         let prefix = Array.sub row 0 width in
         let sign =
           match row.(width) with Value.Bool false -> -1 | _ -> 1
         in
         (match Row.Tbl.find_opt weights prefix with
          | Some w -> Row.Tbl.replace weights prefix (w + sign)
          | None ->
            Row.Tbl.add weights prefix sign;
            order := prefix :: !order))
      delta;
    let after =
      List.fold_left
        (fun acc prefix -> acc + abs (Row.Tbl.find weights prefix))
        0 !order
    in
    if after >= before then 0
    else begin
      ignore (Table.truncate delta);
      List.iter
        (fun prefix ->
           let w = Row.Tbl.find weights prefix in
           let row = Array.append prefix [| Value.Bool (w > 0) |] in
           for _ = 1 to abs w do Table.insert delta row done)
        (List.rev !order);
      before - after
    end
  end

let consolidate v =
  (* fewer than two pending rows can neither cancel nor merge; a Full
     plan never reads its deltas (cleanup just discards them), so
     consolidating first would be pure overhead *)
  if v.compiled.Compiler.flags.Flags.consolidate_deltas
     && v.pending_deltas > 1
     && v.compiled.Compiler.script.Propagate.kind <> Propagate.Full
  then
    Span.with_span "cascade.consolidate"
      ~attrs:[ ("view", Span.Str (view_name v)) ]
      (fun sp ->
         let catalog = Database.catalog v.db in
         let before = v.pending_deltas in
         let removed =
           Trigger.without_hooks (Database.triggers v.db) (fun () ->
               List.fold_left
                 (fun acc base ->
                    acc
                    + consolidate_delta_table
                        (Catalog.find_table catalog
                           (Compiler.delta_table v.compiled base)))
                 0
                 (Compiler.base_tables v.compiled))
         in
         if removed > 0 then begin
           v.pending_deltas <- v.pending_deltas - removed;
           Metrics.add m_consolidated_rows removed
         end;
         if sp != Span.none then begin
           Span.set_int sp "rows_before" before;
           Span.set_int sp "rows_after" v.pending_deltas
         end)

(** One propagation step (paper §2 steps 1–4) under its own span, with
    statement count and the engine's row counters attributed to it. *)
let run_step v name stmts =
  if stmts <> [] then
    Span.with_span ("propagate." ^ name) (fun sp ->
        let p = Database.profile v.db in
        let w0 = p.Database.rows_written and r0 = p.Database.rows_read in
        exec_stmts v.db stmts;
        if sp != Span.none then begin
          Span.set_int sp "statements" (List.length stmts);
          Span.set_int sp "rows_written" (p.Database.rows_written - w0);
          Span.set_int sp "rows_read" (p.Database.rows_read - r0)
        end)

module Clock = Openivm_obs.Clock

(** Run [f] with the database's executor switched to this set of flags'
    engine, restoring the previous engine afterwards — a database can host
    views configured for different engines (the fuzz oracle runs the same
    workload under both).

    The same scope marks compiler-generated SQL: its bulk INSERT ... SELECT
    statements into empty keyed tables are GROUP BY outputs (or copies of
    one, via a stage table) keyed by the group columns, so the PK-duplicate
    check in {!Table.insert_many} is provably redundant and skipped. *)
let with_exec_engine db (flags : Flags.t) f =
  let saved = db.Database.exec_engine in
  let saved_hint = db.Database.bulk_distinct_hint in
  db.Database.exec_engine <- flags.Flags.exec_engine;
  db.Database.bulk_distinct_hint <- true;
  Fun.protect
    ~finally:(fun () ->
      db.Database.exec_engine <- saved;
      db.Database.bulk_distinct_hint <- saved_hint)
    f

(** Propagate this view's pending deltas, cascade-aware:

    - upstream maintained views refresh first (topological pull), so the
      fill step joins against current upstream contents;
    - the steps run with trigger hooks {e enabled} — unlike a leaf
      refresh of old, the writes to V's backing table are exactly ΔV, and
      downstream views capture them like any base-table delta (the DBSP
      composition point);
    - a Z-set consolidation pass first cancels +/- pairs and merges
      duplicate delta rows ({!Flags.consolidate_deltas});
    - eager downstream views refresh in a post-pass once this refresh is
      complete (never mid-flight — [in_refresh] gates re-entrancy).

    Capture never re-triggers itself: no hooks are registered on delta,
    stage or metadata tables, and {!capture}'s own inserts run under
    [without_hooks]. *)
let rec force_refresh_local v =
  let t0 = Clock.now () in
  let script = v.compiled.Compiler.script in
  let strategy =
    Flags.strategy_to_string v.compiled.Compiler.flags.Flags.strategy
  in
  Span.with_span "refresh"
    ~attrs:
      [ ("view", Span.Str (view_name v));
        ("strategy", Span.Str strategy);
        ("plan", Span.Str (Propagate.kind_to_string script.Propagate.kind));
        ("pending_deltas", Span.Int v.pending_deltas);
        ("dag_level", Span.Int (dag_level v)) ]
    (fun _ ->
       v.in_refresh <- true;
       Fun.protect
         ~finally:(fun () -> v.in_refresh <- false)
         (fun () ->
            with_exec_engine v.db v.compiled.Compiler.flags @@ fun () ->
            consolidate v;
            run_step v "fill" script.Propagate.fill;
            run_step v "combine" script.Propagate.combine;
            run_step v "prune" script.Propagate.prune;
            run_step v "cleanup" script.Propagate.cleanup;
            Metrics.incr (m_refresh_total strategy);
            Metrics.add m_delta_rows_folded v.pending_deltas;
            v.pending_deltas <- 0;
            v.refresh_count <- v.refresh_count + 1;
            let dt = Clock.now () -. t0 in
            Metrics.observe (m_refresh_seconds strategy) dt;
            v.refresh_time <- v.refresh_time +. dt;
            (* the steps above fed ΔV to downstream delta tables; fold it
               into eager dependents now that V is consistent (we stay
               marked in_refresh so their upstream pull skips us) *)
            match v.downstreams with
            | [] -> ()
            | ds ->
              Span.with_span "cascade.downstream"
                ~attrs:[ ("view", Span.Str (view_name v)) ]
                (fun _ ->
                   List.iter
                     (fun d ->
                        if d.compiled.Compiler.flags.Flags.refresh
                           = Flags.Eager
                        then refresh d)
                     ds)))

and refresh_upstreams v =
  match v.upstreams with
  | [] -> ()
  | ups ->
    Span.with_span "cascade.upstream"
      ~attrs:[ ("view", Span.Str (view_name v)) ]
      (fun _ -> List.iter refresh ups)

and refresh v =
  if not v.in_refresh then begin
    refresh_upstreams v;
    if v.pending_deltas > 0
       || v.compiled.Compiler.script.Propagate.kind = Propagate.Full
    then force_refresh_local v
  end

let force_refresh v =
  if not v.in_refresh then begin
    refresh_upstreams v;
    force_refresh_local v
  end

(** Deferred eager refresh: runs after the outermost trigger dispatch so
    a view over both a base table and an upstream view sees all of a
    statement's deltas at once. Skipped while an upstream is mid-refresh
    — that upstream's post-pass picks us up. *)
let eager_refresh v =
  if not (List.exists (fun u -> u.in_refresh) v.upstreams) then refresh v

(** Rebuild the view from the base tables as they stand now: discard all
    pending deltas, truncate the view's backing table, and rerun the
    initial load. The recovery path of last resort — equivalent to
    dropping and re-creating the view, but keeping triggers, metadata and
    compiled scripts in place. *)
let rec reinitialize v =
  let catalog = Database.catalog v.db in
  with_exec_engine v.db v.compiled.Compiler.flags @@ fun () ->
  Trigger.without_hooks (Database.triggers v.db) (fun () ->
      ignore (Table.truncate (Catalog.find_table catalog (view_name v)));
      List.iter
        (fun base ->
           ignore
             (Table.truncate
                (Catalog.find_table catalog
                   (Compiler.delta_table v.compiled base))))
        (Compiler.base_tables v.compiled);
      exec_stmts v.db [ v.compiled.Compiler.initial_load ]);
  v.pending_deltas <- 0;
  (* the rebuild ran hook-free, so dependents saw none of it: rebuild
     them too, in DAG order (each reads its freshly rebuilt upstream) *)
  List.iter reinitialize v.downstreams

(** Query the view, honoring the refresh mode (lazy refresh-on-read).
    A view with upstreams always pulls first: an eager view over a lazy
    upstream would otherwise never observe the upstream's pending
    deltas. *)
let query v (sql : string) : Database.query_result =
  (match v.compiled.Compiler.flags.Flags.refresh with
   | Flags.Lazy -> refresh v
   | Flags.Eager -> if v.upstreams <> [] then refresh v);
  Database.query v.db sql

let contents ?(order_by = "") v : Database.query_result =
  let suffix = if order_by = "" then "" else " ORDER BY " ^ order_by in
  query v (Printf.sprintf "SELECT * FROM %s%s" (view_name v) suffix)

(* --- the differential-testing hooks --- *)

(** The view's visible contents as sorted row strings. Hidden bookkeeping
    columns are stripped; flat (non-aggregate) views materialize in
    weighted form, so their rows are expanded by the hidden row count to
    recover bag semantics. The oracle's left-hand side. *)
let visible_rows (v : view) : string list =
  let shape = v.compiled.Compiler.shape in
  let visible = Shape.visible_names shape in
  let flat = not (Shape.has_aggregates shape) in
  let cols = if flat then visible @ [ Shape.count_column ] else visible in
  let r =
    query v
      (Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols)
         (view_name v))
  in
  let rows =
    if flat then
      List.concat_map
        (fun (row : Row.t) ->
           let n = Array.length row - 1 in
           let weight = match row.(n) with Value.Int w -> w | _ -> 1 in
           let visible_part = Array.sub row 0 n in
           List.init (max 0 weight) (fun _ -> Row.to_string visible_part))
        r.Database.rows
    else List.map Row.to_string r.Database.rows
  in
  List.sort String.compare rows

(** Full recomputation of the defining query against the base tables as
    they stand now, as sorted row strings — the oracle's right-hand side.
    [visible_rows v = recompute_rows v] is the IVM correctness invariant
    (paper §2, DBSP Z-set semantics). *)
let recompute_rows (v : view) : string list =
  let q = v.compiled.Compiler.shape.Shape.query in
  let sql = Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb q in
  List.sort String.compare
    (List.map Row.to_string (Database.query v.db sql).Database.rows)

(* --- installation --- *)

let store_scripts_on_disk (compiled : Compiler.t) =
  match compiled.Compiler.flags.Flags.script_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path =
      Filename.concat dir (compiled.Compiler.shape.Shape.view_name ^ ".sql")
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Compiler.full_sql compiled))

(** Installation modes for the durable store:
    - [`Immediate] (default) — DDL, metadata, initial load: the historical
      single-shot install.
    - [`Deferred] — DDL and metadata, but no initial load: the staged
      backfill fills the view chunk by chunk afterwards
      ({!backfill_chunk}).
    - [`Attach] — neither DDL nor load: the backing, delta and metadata
      tables already exist (a checkpoint-restored database); just compile,
      register and re-arm capture. *)
let install ?(flags = Flags.default) ?(registry = [])
    ?(load = `Immediate) (db : Database.t) (sql : string) : view =
  let compiled =
    Span.with_span "install" (fun sp ->
        let compiled =
          Span.with_span "compile" (fun _ ->
              Compiler.compile ~flags (Database.catalog db) sql)
        in
        Span.set_str sp "view" compiled.Compiler.shape.Shape.view_name;
        (match load with
         | `Attach ->
           (* tables were restored from the checkpoint; metadata DDL is
              IF NOT EXISTS and so safe (and needed when attaching to a
              database snapshotted before a metadata table existed) *)
           exec_stmts db compiled.Compiler.metadata_ddl
         | `Immediate | `Deferred ->
           Span.with_span "setup_ddl" (fun _ ->
               exec_stmts db compiled.Compiler.ddl;
               exec_stmts db compiled.Compiler.metadata_ddl;
               exec_stmts db compiled.Compiler.metadata_dml));
        (match load with
         | `Immediate ->
           (* initial load must not be captured as a delta *)
           Span.with_span "initial_load" (fun _ ->
               with_exec_engine db flags (fun () ->
                   Trigger.without_hooks (Database.triggers db) (fun () ->
                       exec_stmts db [ compiled.Compiler.initial_load ])))
         | `Deferred | `Attach -> ());
        compiled)
  in
  store_scripts_on_disk compiled;
  let shape = compiled.Compiler.shape in
  Catalog.register_mat_view (Database.catalog db)
    { Catalog.mat_name = shape.Shape.view_name;
      mat_visible = Shape.visible_names shape;
      mat_flat = not (Shape.has_aggregates shape);
      mat_depends_on = Compiler.base_tables compiled };
  let v =
    { compiled; db; pending_deltas = 0; refresh_count = 0;
      refresh_time = 0.0; capture_enabled = true;
      upstreams = []; downstreams = []; in_refresh = false }
  in
  (* wire the cascade DAG: sources that are maintained views become
     upstream/downstream links when the caller hands us their handles *)
  let ups =
    List.filter_map
      (fun name ->
         List.find_opt (fun u -> String.equal (view_name u) name) registry)
      (Compiler.upstream_views compiled)
  in
  v.upstreams <- ups;
  List.iter (fun u -> u.downstreams <- u.downstreams @ [ v ]) ups;
  List.iter
    (fun base ->
       Trigger.register (Database.triggers db) ~table:base
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base)
         (fun change ->
            capture v base change;
            match compiled.Compiler.flags.Flags.refresh with
            | Flags.Eager ->
              Trigger.defer (Database.triggers db) (fun () -> eager_refresh v)
            | Flags.Lazy -> ()))
    (Compiler.base_tables compiled);
  v

(* --- staged backfill (the durable store's resumable initial load) --- *)

let m_backfill_chunks =
  Metrics.counter "openivm_backfill_chunks_total"
    ~help:"backfill chunks applied (staged initial materialization)"

(** Only a plain single-base-table source can be backfilled in chunks:
    slices of the base table flow through the delta pipeline exactly like
    captured changes, and linear/swap/rederive strategies all converge on
    partial inputs. Joins need both sides at once, and view-over-view
    sources must read a complete upstream — those load in one piece. *)
let backfill_chunkable v =
  match v.compiled.Compiler.shape.Shape.source with
  | Shape.Single { Shape.from_view = false; _ } -> true
  | Shape.Single _ | Shape.Joined _ -> false

(** Number of chunks a [`Deferred] install of [v] needs at [chunk_rows]
    rows per chunk (always 1 for non-chunkable shapes). *)
let backfill_total_chunks v ~chunk_rows =
  if not (backfill_chunkable v) then 1
  else begin
    let base = List.hd (Compiler.base_tables v.compiled) in
    let rows =
      Table.row_count (Catalog.find_table (Database.catalog v.db) base)
    in
    max 1 ((rows + chunk_rows - 1) / chunk_rows)
  end

(** Apply backfill chunk [index] (0-based) of a [`Deferred] install:
    insert the chunk's slice of the base table into the delta table with
    positive multiplicity and propagate. Chunk order and boundaries are
    deterministic for a fixed base table (slot order), so replaying the
    same chunk indexes over the same base state is idempotent-by-
    construction: recovery re-derives the identical slices. Returns the
    number of base rows folded in. *)
let backfill_chunk v ~chunk_rows ~index =
  Span.with_span "backfill.chunk"
    ~attrs:
      [ ("view", Span.Str (view_name v)); ("chunk", Span.Int index) ]
    (fun _ ->
       Metrics.incr m_backfill_chunks;
       if not (backfill_chunkable v) then begin
         (* single whole-shot chunk: the ordinary initial load *)
         with_exec_engine v.db v.compiled.Compiler.flags (fun () ->
             Trigger.without_hooks (Database.triggers v.db) (fun () ->
                 exec_stmts v.db [ v.compiled.Compiler.initial_load ]));
         0
       end
       else begin
         let catalog = Database.catalog v.db in
         let base = List.hd (Compiler.base_tables v.compiled) in
         let base_tbl = Catalog.find_table catalog base in
         let delta =
           Catalog.find_table catalog (Compiler.delta_table v.compiled base)
         in
         let width = Table.arity delta - 1 in
         let rows = Table.to_rows base_tbl in
         let lo = index * chunk_rows in
         let chunk =
           List.filteri (fun i _ -> i >= lo && i < lo + chunk_rows) rows
         in
         Trigger.without_hooks (Database.triggers v.db) (fun () ->
             List.iter
               (fun row ->
                  let row =
                    if Array.length row = width then row
                    else Array.sub row 0 width
                  in
                  Table.insert delta (Array.append row [| Value.Bool true |]);
                  v.pending_deltas <- v.pending_deltas + 1)
               chunk);
         force_refresh_local v;
         List.length chunk
       end)

let uninstall v =
  let db = v.db in
  let catalog = Database.catalog db in
  (match Catalog.mat_dependents catalog (view_name v) with
   | [] -> ()
   | dependents ->
     let d =
       Openivm_sql.Diagnostic.cascade_dependents ~view:(view_name v)
         ~dependents ()
     in
     Error.fail "%s: %s" d.Openivm_sql.Diagnostic.code
       d.Openivm_sql.Diagnostic.message);
  v.capture_enabled <- false;
  List.iter
    (fun u ->
       u.downstreams <- List.filter (fun d -> not (d == v)) u.downstreams)
    v.upstreams;
  v.upstreams <- [];
  Catalog.unregister_mat_view catalog (view_name v);
  List.iter
    (fun base ->
       Trigger.unregister (Database.triggers db)
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base))
    (Compiler.base_tables v.compiled);
  exec_stmts db (Metadata.unregister (view_name v));
  let drop name =
    ignore
      (Database.exec_stmt db
         (Ast.Drop { kind = `Table; name; if_exists = true }))
  in
  drop (view_name v);
  drop (Compiler.delta_view v.compiled);
  List.iter
    (fun b -> drop (Compiler.delta_table v.compiled b))
    (Compiler.base_tables v.compiled)

(* --- the extension entry point --- *)

(** The loaded extension: a database plus the registry of views it
    maintains (paper Figure 2). *)
type extension = {
  ext_db : Database.t;
  ext_flags : Flags.t;
  mutable ext_views : view list;
}

let load ?(flags = Flags.default) (db : Database.t) : extension =
  { ext_db = db; ext_flags = flags; ext_views = [] }

let find_view ext name =
  List.find_opt (fun v -> String.equal (view_name v) name) ext.ext_views

(** Tick-batched refresh: fold every maintained view's pending deltas in
    one pass, upstreams before downstreams so each propagation runs at
    most once per tick — the serving layer's refresh entry point. *)
let refresh_tick ?(only = fun _ -> true) (ext : extension) : int =
  let views =
    List.stable_sort
      (fun a b -> compare (dag_level a) (dag_level b))
      ext.ext_views
  in
  List.fold_left
    (fun ran v ->
       if only v then begin
         let before = v.refresh_count in
         refresh v;
         if v.refresh_count > before then ran + 1 else ran
       end
       else ran)
    0 views

(** Refresh every lazily-maintained view a query touches — the engine-side
    counterpart of the paper's "implicitly calling a table function,
    adding a dummy node to the plan of the original query". *)
let refresh_for_query ext (q : Ast.select) =
  let touched = Ast.select_tables q in
  List.iter
    (fun v ->
       if (v.compiled.Compiler.flags.Flags.refresh = Flags.Lazy
           || v.upstreams <> [])
          && List.mem (view_name v) touched
       then refresh v)
    ext.ext_views

(** Execute a statement with the OpenIVM extension active: the fall-back
    parser path of the paper — [CREATE MATERIALIZED VIEW] is intercepted
    and compiled; SELECTs over maintained views refresh them first;
    everything else goes to the engine untouched. *)
let exec_ext (ext : extension) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    let v = install ~flags:ext.ext_flags ~registry:ext.ext_views ext.ext_db sql in
    ext.ext_views <- v :: ext.ext_views;
    `Installed v
  | Ast.Select_stmt q as stmt ->
    refresh_for_query ext q;
    `Result (Database.exec_stmt ext.ext_db stmt)
  | Ast.Drop { kind = `Table; name; _ } when find_view ext name <> None ->
    (match find_view ext name with
     | Some v ->
       uninstall v;
       ext.ext_views <-
         List.filter (fun w -> not (String.equal (view_name w) name)) ext.ext_views;
       `Result (Database.Ok_msg (Printf.sprintf "dropped materialized view %s" name))
     | None -> assert false)
  | Ast.Insert { table; _ } | Ast.Update { table; _ } | Ast.Delete { table; _ }
  | Ast.Truncate table
    when find_view ext table <> None ->
    (* direct DML against a maintained backing table would desynchronize
       the view (and silently corrupt everything downstream of it) *)
    let d = Openivm_sql.Diagnostic.cascade_dml_on_view ~view:table () in
    Error.fail "%s: %s" d.Openivm_sql.Diagnostic.code
      d.Openivm_sql.Diagnostic.message
  | stmt -> `Result (Database.exec_stmt ext.ext_db stmt)

(** One-shot variant when no extension state is at hand. *)
let exec ?(flags = Flags.default) (db : Database.t) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    `Installed (install ~flags db sql)
  | stmt -> `Result (Database.exec_stmt db stmt)
