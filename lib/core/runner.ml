(** The extension module: OpenIVM inside the engine (paper Figure 2).

    [install] executes the compiled DDL, performs the initial load, stores
    the propagation script (in the metadata tables and optionally on disk),
    and registers capture hooks on the base tables — the embedded
    equivalent of DuckDB's optimizer-rule DML interception. Under [Eager]
    refresh every base-table change propagates immediately; under [Lazy]
    (the demo's choice) deltas accumulate until the view is queried or
    [refresh] is called. *)

module Ast = Openivm_sql.Ast
open Openivm_engine

type view = {
  compiled : Compiler.t;
  db : Database.t;
  mutable pending_deltas : int;   (** delta rows captured since last refresh *)
  mutable refresh_count : int;
  mutable refresh_time : float;   (** total seconds spent propagating *)
  mutable capture_enabled : bool;
  mutable upstreams : view list;
      (** maintained views this view reads (cascade DAG parents) *)
  mutable downstreams : view list;
      (** maintained views reading this view (cascade DAG children) *)
  mutable in_refresh : bool;
      (** propagation in flight — re-entrant refreshes become no-ops and
          eager downstream refreshes wait for the post-refresh pass *)
}

let view_name v = v.compiled.Compiler.shape.Shape.view_name

(** 0 for views over base tables only; 1 + the deepest upstream level
    otherwise. Attached to refresh spans so profiles attribute time per
    DAG level. *)
let rec dag_level v =
  match v.upstreams with
  | [] -> 0
  | ups -> 1 + List.fold_left (fun acc u -> max acc (dag_level u)) 0 ups

let exec_stmts db stmts =
  List.iter (fun stmt -> ignore (Database.exec_stmt db stmt)) stmts

(* --- delta capture --- *)

(* [pending_deltas] is the one view field written from foreign domains:
   during a level-parallel tick, workers refreshing two upstreams of the
   same downstream view both capture into it (distinct delta tables, but
   one shared counter). One lock serializes every counter update; capture
   batches its whole change into a single locked add. *)
let pending_lock = Mutex.create ()

let add_pending v n =
  if n <> 0 then begin
    Mutex.lock pending_lock;
    v.pending_deltas <- v.pending_deltas + n;
    Mutex.unlock pending_lock
  end

let set_pending v n =
  Mutex.lock pending_lock;
  v.pending_deltas <- n;
  Mutex.unlock pending_lock

(** Append changed rows into delta_T with the boolean multiplicity. Runs
    with hooks disabled so IVM's own writes never re-trigger capture.
    When the base is itself a maintained view, its backing rows carry
    hidden IVM state after the visible prefix — the delta table is
    declared over the visible columns only, so project the row down to
    the delta table's width. *)
let capture v (base_table : string) (change : Trigger.change) =
  if v.capture_enabled then begin
    let delta_name = Compiler.delta_table v.compiled base_table in
    let delta = Catalog.find_table (Database.catalog v.db) delta_name in
    let width = Table.arity delta - 1 in
    let captured = ref 0 in
    Trigger.without_hooks (Database.triggers v.db) (fun () ->
        let emit mult row =
          let row =
            if Array.length row = width then row else Array.sub row 0 width
          in
          Table.insert delta (Array.append row [| Value.Bool mult |]);
          incr captured
        in
        List.iter (emit false) change.Trigger.deleted;
        List.iter (emit true) change.Trigger.inserted);
    add_pending v !captured
  end

(* --- refresh --- *)

module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics

let m_refresh_total strategy =
  Metrics.counter "openivm_refresh_total"
    ~help:"propagation-script runs per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_refresh_seconds strategy =
  Metrics.histogram "openivm_refresh_seconds"
    ~help:"refresh latency per combine strategy"
    ~labels:[ ("strategy", strategy) ]

let m_delta_rows_folded =
  Metrics.counter "openivm_delta_rows_folded_total"
    ~help:"captured delta rows consumed by refreshes"

let m_consolidated_rows =
  Metrics.counter "openivm_consolidated_rows_total"
    ~help:"delta rows cancelled or merged by the Z-set consolidation pass"

(* --- Z-set delta consolidation --- *)

(** Coalesce each pending delta table to its net Z-set: sum the signed
    multiplicities per distinct row and rewrite the table as |weight|
    copies per surviving row. +/- pairs cancel outright, so a hot base
    table — or a swap-strategy upstream view that rewrote itself
    wholesale — feeds propagation a net delta instead of raw churn. *)
let consolidate_delta_table (delta : Table.t) : int =
  let before = Table.row_count delta in
  if before < 2 then 0
  else begin
    let width = Table.arity delta - 1 in
    let weights : int Row.Tbl.t = Row.Tbl.create 64 in
    let order = ref [] in
    Table.iter_rows
      (fun row ->
         let prefix = Array.sub row 0 width in
         let sign =
           match row.(width) with Value.Bool false -> -1 | _ -> 1
         in
         (match Row.Tbl.find_opt weights prefix with
          | Some w -> Row.Tbl.replace weights prefix (w + sign)
          | None ->
            Row.Tbl.add weights prefix sign;
            order := prefix :: !order))
      delta;
    let after =
      List.fold_left
        (fun acc prefix -> acc + abs (Row.Tbl.find weights prefix))
        0 !order
    in
    if after >= before then 0
    else begin
      ignore (Table.truncate delta);
      List.iter
        (fun prefix ->
           let w = Row.Tbl.find weights prefix in
           let row = Array.append prefix [| Value.Bool (w > 0) |] in
           for _ = 1 to abs w do Table.insert delta row done)
        (List.rev !order);
      before - after
    end
  end

let consolidate v =
  (* fewer than two pending rows can neither cancel nor merge; a Full
     plan never reads its deltas (cleanup just discards them), so
     consolidating first would be pure overhead *)
  if v.compiled.Compiler.flags.Flags.consolidate_deltas
     && v.pending_deltas > 1
     && v.compiled.Compiler.script.Propagate.kind <> Propagate.Full
  then
    Span.with_span "cascade.consolidate"
      ~attrs:[ ("view", Span.Str (view_name v)) ]
      (fun sp ->
         let catalog = Database.catalog v.db in
         let before = v.pending_deltas in
         let removed =
           Trigger.without_hooks (Database.triggers v.db) (fun () ->
               List.fold_left
                 (fun acc base ->
                    acc
                    + consolidate_delta_table
                        (Catalog.find_table catalog
                           (Compiler.delta_table v.compiled base)))
                 0
                 (Compiler.base_tables v.compiled))
         in
         if removed > 0 then begin
           add_pending v (-removed);
           Metrics.add m_consolidated_rows removed
         end;
         if sp != Span.none then begin
           Span.set_int sp "rows_before" before;
           Span.set_int sp "rows_after" v.pending_deltas
         end)

(** One propagation step (paper §2 steps 1–4) under its own span, with
    statement count and the engine's row counters attributed to it. *)
let run_step v name stmts =
  if stmts <> [] then
    Span.with_span ("propagate." ^ name) (fun sp ->
        let p = Database.profile v.db in
        let w0 = p.Database.rows_written and r0 = p.Database.rows_read in
        exec_stmts v.db stmts;
        if sp != Span.none then begin
          Span.set_int sp "statements" (List.length stmts);
          Span.set_int sp "rows_written" (p.Database.rows_written - w0);
          Span.set_int sp "rows_read" (p.Database.rows_read - r0)
        end)

module Clock = Openivm_obs.Clock
module Zset = Openivm_dbsp.Zset

(* --- domain-parallel delta propagation (Flags.domains > 1) --- *)

let m_parallel_shards =
  Metrics.counter "openivm_parallel_shards_total"
    ~help:"delta shards propagated on parallel refresh workers"

let m_parallel_merge_seconds =
  Metrics.histogram "openivm_parallel_merge_seconds"
    ~help:"time spent merging per-shard propagation results"

let shard_name table i = Printf.sprintf "%s__shard%d" table i

(** Effective fan-out for this view's refresh: its [domains] flag, except
    on a worker domain (a level-parallel tick refreshing this view), where
    nesting is suppressed. *)
let effective_domains v =
  let domains = v.compiled.Compiler.flags.Flags.domains in
  Parallel.width ~domains domains

(** Run deferred index maintenance on every table now, so the read
    snapshot workers are about to share is mutation-free: a PK lookup on
    a stale-indexed table rebuilds the index in place ({!Table.ensure_pk}),
    which two domains must never attempt concurrently. *)
let warm_all_indexes db =
  let catalog = Database.catalog db in
  List.iter
    (fun name -> Table.warm_indexes (Catalog.find_table catalog name))
    (Catalog.table_names catalog)

(** Hash-partition [src]'s rows into [parts] fresh shard tables
    ([<name>__shard<i>], same schema, no PK, catalog-registered so the
    planner can resolve them). [key_positions = None] hashes the whole
    row — valid for fill, which is linear in each delta; group-keyed
    partitioning ([Some ps]) colocates whole groups, which combine
    needs. *)
let build_shards catalog (src : Table.t) ~key_positions ~parts =
  let shards =
    Array.init parts (fun i ->
        let name = shard_name src.Table.name i in
        match Catalog.find_table_opt catalog name with
        | Some t -> ignore (Table.truncate t); t
        | None ->
          let t =
            Table.create ~name ~schema:src.Table.schema ~primary_key:[||]
          in
          Catalog.add_table catalog t;
          t)
  in
  Table.iter_rows
    (fun row ->
       let key =
         match key_positions with
         | None -> row
         | Some ps -> Array.map (fun p -> row.(p)) ps
       in
       let h = Row.hash key land max_int in
       Table.insert shards.(h mod parts) row)
    src;
  shards

let drop_shards catalog (shards : Table.t array) =
  Array.iter
    (fun (t : Table.t) -> Catalog.drop_table catalog t.Table.name ~if_exists:true)
    shards

(** A SELECT's result rows (multiplicity column last) as a Z-set. *)
let zset_of_mult_rows (rows : Row.t list) : Zset.t =
  let z = Zset.create ~size:(List.length rows + 1) () in
  List.iter
    (fun row ->
       let n = Array.length row - 1 in
       let sign = match row.(n) with Value.Bool false -> -1 | _ -> 1 in
       Zset.add z (Array.sub row 0 n) sign)
    rows;
  z

(** Back to delta-table encoding: |w| copies per row, mult = sign. *)
let mult_rows_of_zset (z : Zset.t) : Row.t list =
  Zset.fold
    (fun prefix w acc ->
       let row = Array.append prefix [| Value.Bool (w > 0) |] in
       let rec rep n acc = if n = 0 then acc else rep (n - 1) (row :: acc) in
       rep (abs w) acc)
    z []

(** Execute the SELECT of a rewritten propagation statement on [parts]
    worker domains (one shard each, renamed via [rename i]), then insert
    the merged result into [target] on the calling domain. [merge] folds
    the per-shard row lists into the rows to insert. *)
let scatter_gather v ~parts ~rename ~target ~merge =
  let catalog = Database.catalog v.db in
  let tasks =
    Array.init parts (fun i ->
        let qi = rename i in
        fun () ->
          Span.with_span "parallel.shard"
            ~attrs:[ ("view", Span.Str (view_name v)); ("shard", Span.Int i) ]
            (fun _ -> (Database.run_select v.db qi).Database.rows))
  in
  let results = Parallel.map tasks in
  Metrics.add m_parallel_shards parts;
  let t0 = Clock.now () in
  let target_tbl = Catalog.find_table catalog target in
  let rows =
    List.map
      (Dml.coerce_to_schema target_tbl.Table.schema)
      (merge results)
  in
  Table.insert_many target_tbl rows;
  Metrics.observe m_parallel_merge_seconds (Clock.now () -. t0);
  let p = Database.profile v.db in
  p.Database.rows_written <- p.Database.rows_written + List.length rows

(** Fill statements whose FROM references an empty delta table are dead:
    every fill term is linear in each delta it reads, so one empty input
    nullifies the term. Pruning them is an optimization in sequential
    mode and load-balancing in parallel mode. *)
let live_fill_stmts v =
  let catalog = Database.catalog v.db in
  let fill = v.compiled.Compiler.script.Propagate.fill in
  let empty_deltas =
    List.filter_map
      (fun base ->
         let name = Compiler.delta_table v.compiled base in
         match Catalog.find_table_opt catalog name with
         | Some t when Table.row_count t = 0 -> Some name
         | _ -> None)
      (Compiler.base_tables v.compiled)
  in
  if empty_deltas = [] then fill
  else
    List.filter
      (fun stmt ->
         match Propagate.insert_select_parts stmt with
         | None -> true
         | Some (_, q) ->
           not
             (List.exists
                (fun t -> List.mem t empty_deltas)
                (Ast.select_tables q)))
      fill

(** Step 1 in parallel: shard the largest pending delta table [parts]
    ways by whole-row hash; every fill term that reads it runs once per
    shard (read-only SELECT on a worker domain) against the shard plus
    the unsharded remainder of the snapshot. Correct by linearity of the
    fill in each delta: the signed union of per-shard term outputs equals
    the term over the whole delta, and delta_V's consumers re-aggregate
    per group, so splitting a group's partial states across shard outputs
    is immaterial. The merged Z-set nets exact +/- duplicates across
    shards — a consolidation sequential fill leaves to combine.

    Returns the number of statements sharded (0 = nothing was worth
    parallelizing; the caller already ran nothing — statements not
    referencing the sharded delta run sequentially here either way). *)
let fill_parallel v ~parts (stmts : Ast.stmt list) : int =
  let catalog = Database.catalog v.db in
  let deltas =
    List.filter_map
      (fun base ->
         let t =
           Catalog.find_table catalog (Compiler.delta_table v.compiled base)
         in
         if Table.row_count t > 0 then Some t else None)
      (Compiler.base_tables v.compiled)
  in
  let by_size =
    List.sort (fun a b -> compare (Table.row_count b) (Table.row_count a)) deltas
  in
  match by_size with
  | big :: _ when Table.row_count big >= parts ->
    warm_all_indexes v.db;
    let shards = build_shards catalog big ~key_positions:None ~parts in
    Fun.protect ~finally:(fun () -> drop_shards catalog shards)
      (fun () ->
         List.fold_left
           (fun sharded stmt ->
              match Propagate.insert_select_parts stmt with
              | Some (target, q)
                when List.mem big.Table.name (Ast.select_tables q) ->
                scatter_gather v ~parts ~target
                  ~rename:(fun i ->
                    Ast.rename_tables
                      (fun t ->
                         if String.equal t big.Table.name then
                           shard_name big.Table.name i
                         else t)
                      q)
                  ~merge:(fun results ->
                    mult_rows_of_zset
                      (Zset.merge (Array.map zset_of_mult_rows results)));
                sharded + 1
              | _ ->
                exec_stmts v.db [ stmt ];
                sharded)
           0 stmts)
  | _ ->
    exec_stmts v.db stmts;
    0

(** Step 2 in parallel, for the swap strategies over a grouped view:
    partition both combine inputs — the view's backing table and delta_V
    — by group-key hash, run the stage-filling SELECT per shard on worker
    domains, and concatenate into the stage table. Group-keyed
    partitioning makes each shard's groups complete and pairwise disjoint
    across shards, so per-shard regrouping (HAVING and AVG included) and
    per-shard full-outer-joins compose exactly. The swap tail (delete
    view; insert from stage; drop stage) stays sequential — those writes
    feed downstream capture. Returns true when handled; false = caller
    runs the whole combine sequentially. *)
let combine_parallel v ~parts : bool =
  let shape = v.compiled.Compiler.shape in
  let script = v.compiled.Compiler.script in
  let stage = Shape.stage_table shape in
  let viewname = shape.Shape.view_name in
  let dv = Compiler.delta_view v.compiled in
  let group_names = List.map snd (Shape.group_cols shape) in
  match script.Propagate.kind, script.Propagate.combine, group_names with
  | (Propagate.Regroup | Propagate.Outer_merge), first :: rest, _ :: _ ->
    (match Propagate.insert_select_parts first with
     | Some (target, q) when String.equal target stage ->
       let catalog = Database.catalog v.db in
       let vt = Catalog.find_table catalog viewname in
       let dt = Catalog.find_table catalog dv in
       let key_positions (tbl : Table.t) =
         Array.of_list
           (List.map
              (fun n ->
                 fst (Schema.find tbl.Table.schema ~qualifier:None ~name:n))
              group_names)
       in
       (match key_positions vt, key_positions dt with
        | exception _ -> false
        | vk, dk ->
          if Table.row_count vt + Table.row_count dt < parts then false
          else begin
            warm_all_indexes v.db;
            let vshards =
              build_shards catalog vt ~key_positions:(Some vk) ~parts
            in
            let dshards =
              build_shards catalog dt ~key_positions:(Some dk) ~parts
            in
            Fun.protect
              ~finally:(fun () ->
                drop_shards catalog vshards;
                drop_shards catalog dshards)
              (fun () ->
                 scatter_gather v ~parts ~target:stage
                   ~rename:(fun i ->
                     Ast.rename_tables
                       (fun t ->
                          if String.equal t viewname then shard_name viewname i
                          else if String.equal t dv then shard_name dv i
                          else t)
                       q)
                   ~merge:(fun results ->
                     Array.fold_left
                       (fun acc rs -> List.rev_append rs acc)
                       [] results));
            exec_stmts v.db rest;
            true
          end)
     | _ -> false)
  | _ -> false

(** Run [f] with the database's executor switched to this set of flags'
    engine, restoring the previous engine afterwards — a database can host
    views configured for different engines (the fuzz oracle runs the same
    workload under both).

    The same scope marks compiler-generated SQL: its bulk INSERT ... SELECT
    statements into empty keyed tables are GROUP BY outputs (or copies of
    one, via a stage table) keyed by the group columns, so the PK-duplicate
    check in {!Table.insert_many} is provably redundant and skipped. *)
let with_exec_engine db (flags : Flags.t) f =
  let saved = db.Database.exec_engine in
  let saved_hint = db.Database.bulk_distinct_hint in
  db.Database.exec_engine <- flags.Flags.exec_engine;
  db.Database.bulk_distinct_hint <- true;
  Fun.protect
    ~finally:(fun () ->
      db.Database.exec_engine <- saved;
      db.Database.bulk_distinct_hint <- saved_hint)
    f

(** Propagate this view's pending deltas, cascade-aware:

    - upstream maintained views refresh first (topological pull), so the
      fill step joins against current upstream contents;
    - the steps run with trigger hooks {e enabled} — unlike a leaf
      refresh of old, the writes to V's backing table are exactly ΔV, and
      downstream views capture them like any base-table delta (the DBSP
      composition point);
    - a Z-set consolidation pass first cancels +/- pairs and merges
      duplicate delta rows ({!Flags.consolidate_deltas});
    - eager downstream views refresh in a post-pass once this refresh is
      complete (never mid-flight — [in_refresh] gates re-entrancy).

    Capture never re-triggers itself: no hooks are registered on delta,
    stage or metadata tables, and {!capture}'s own inserts run under
    [without_hooks].

    [~standalone:false] is the level-parallel tick's entry: the caller
    has already pinned the executor engine for the whole level (so the
    per-view engine swap is skipped — it would race across workers) and
    refreshes every view in DAG-level order itself (so the eager
    downstream post-pass is skipped — the tick reaches those views at
    their own level). *)
let rec force_refresh_local ?(standalone = true) v =
  let t0 = Clock.now () in
  let script = v.compiled.Compiler.script in
  let strategy =
    Flags.strategy_to_string v.compiled.Compiler.flags.Flags.strategy
  in
  Span.with_span "refresh"
    ~attrs:
      [ ("view", Span.Str (view_name v));
        ("strategy", Span.Str strategy);
        ("plan", Span.Str (Propagate.kind_to_string script.Propagate.kind));
        ("pending_deltas", Span.Int v.pending_deltas);
        ("dag_level", Span.Int (dag_level v)) ]
    (fun _ ->
       v.in_refresh <- true;
       Fun.protect
         ~finally:(fun () -> v.in_refresh <- false)
         (fun () ->
            (if standalone then with_exec_engine v.db v.compiled.Compiler.flags
             else fun f -> f ())
            @@ fun () ->
            consolidate v;
            let parts = effective_domains v in
            (* fill: prune dead terms, then shard the dominant delta *)
            (let stmts = live_fill_stmts v in
             if stmts <> [] then
               Span.with_span "propagate.fill" (fun sp ->
                   let p = Database.profile v.db in
                   let w0 = p.Database.rows_written
                   and r0 = p.Database.rows_read in
                   let sharded =
                     if parts > 1 then fill_parallel v ~parts stmts
                     else begin exec_stmts v.db stmts; 0 end
                   in
                   if sp != Span.none then begin
                     Span.set_int sp "statements" (List.length stmts);
                     Span.set_int sp "sharded_statements" sharded;
                     Span.set_int sp "rows_written"
                       (p.Database.rows_written - w0);
                     Span.set_int sp "rows_read" (p.Database.rows_read - r0)
                   end));
            (* combine: group-partitioned stage fill for swap strategies *)
            (let stmts = script.Propagate.combine in
             if stmts <> [] then
               Span.with_span "propagate.combine" (fun sp ->
                   let p = Database.profile v.db in
                   let w0 = p.Database.rows_written
                   and r0 = p.Database.rows_read in
                   let parallel =
                     parts > 1 && combine_parallel v ~parts
                   in
                   if not parallel then exec_stmts v.db stmts;
                   if sp != Span.none then begin
                     Span.set_int sp "statements" (List.length stmts);
                     Span.set_int sp "parallel" (if parallel then parts else 1);
                     Span.set_int sp "rows_written"
                       (p.Database.rows_written - w0);
                     Span.set_int sp "rows_read" (p.Database.rows_read - r0)
                   end));
            run_step v "prune" script.Propagate.prune;
            run_step v "cleanup" script.Propagate.cleanup;
            Metrics.incr (m_refresh_total strategy);
            Metrics.add m_delta_rows_folded v.pending_deltas;
            set_pending v 0;
            v.refresh_count <- v.refresh_count + 1;
            let dt = Clock.now () -. t0 in
            Metrics.observe (m_refresh_seconds strategy) dt;
            v.refresh_time <- v.refresh_time +. dt;
            (* the steps above fed ΔV to downstream delta tables; fold it
               into eager dependents now that V is consistent (we stay
               marked in_refresh so their upstream pull skips us) *)
            if standalone then
              match v.downstreams with
              | [] -> ()
              | ds ->
                Span.with_span "cascade.downstream"
                  ~attrs:[ ("view", Span.Str (view_name v)) ]
                  (fun _ ->
                     List.iter
                       (fun d ->
                          if d.compiled.Compiler.flags.Flags.refresh
                             = Flags.Eager
                          then refresh d)
                       ds)))

and refresh_upstreams v =
  match v.upstreams with
  | [] -> ()
  | ups ->
    Span.with_span "cascade.upstream"
      ~attrs:[ ("view", Span.Str (view_name v)) ]
      (fun _ -> List.iter refresh ups)

and refresh v =
  if not v.in_refresh then begin
    refresh_upstreams v;
    if v.pending_deltas > 0
       || v.compiled.Compiler.script.Propagate.kind = Propagate.Full
    then force_refresh_local v
  end

let force_refresh v =
  if not v.in_refresh then begin
    refresh_upstreams v;
    force_refresh_local v
  end

(** Deferred eager refresh: runs after the outermost trigger dispatch so
    a view over both a base table and an upstream view sees all of a
    statement's deltas at once. Skipped while an upstream is mid-refresh
    — that upstream's post-pass picks us up. *)
let eager_refresh v =
  if not (List.exists (fun u -> u.in_refresh) v.upstreams) then refresh v

(** Rebuild the view from the base tables as they stand now: discard all
    pending deltas, truncate the view's backing table, and rerun the
    initial load. The recovery path of last resort — equivalent to
    dropping and re-creating the view, but keeping triggers, metadata and
    compiled scripts in place. *)
let rec reinitialize v =
  let catalog = Database.catalog v.db in
  with_exec_engine v.db v.compiled.Compiler.flags @@ fun () ->
  Trigger.without_hooks (Database.triggers v.db) (fun () ->
      ignore (Table.truncate (Catalog.find_table catalog (view_name v)));
      List.iter
        (fun base ->
           ignore
             (Table.truncate
                (Catalog.find_table catalog
                   (Compiler.delta_table v.compiled base))))
        (Compiler.base_tables v.compiled);
      exec_stmts v.db [ v.compiled.Compiler.initial_load ]);
  v.pending_deltas <- 0;
  (* the rebuild ran hook-free, so dependents saw none of it: rebuild
     them too, in DAG order (each reads its freshly rebuilt upstream) *)
  List.iter reinitialize v.downstreams

(** Query the view, honoring the refresh mode (lazy refresh-on-read).
    A view with upstreams always pulls first: an eager view over a lazy
    upstream would otherwise never observe the upstream's pending
    deltas. *)
let query v (sql : string) : Database.query_result =
  (match v.compiled.Compiler.flags.Flags.refresh with
   | Flags.Lazy -> refresh v
   | Flags.Eager -> if v.upstreams <> [] then refresh v);
  Database.query v.db sql

let contents ?(order_by = "") v : Database.query_result =
  let suffix = if order_by = "" then "" else " ORDER BY " ^ order_by in
  query v (Printf.sprintf "SELECT * FROM %s%s" (view_name v) suffix)

(* --- the differential-testing hooks --- *)

(** The view's visible contents as sorted row strings. Hidden bookkeeping
    columns are stripped; flat (non-aggregate) views materialize in
    weighted form, so their rows are expanded by the hidden row count to
    recover bag semantics. The oracle's left-hand side. *)
let visible_rows (v : view) : string list =
  let shape = v.compiled.Compiler.shape in
  let visible = Shape.visible_names shape in
  let flat = not (Shape.has_aggregates shape) in
  let cols = if flat then visible @ [ Shape.count_column ] else visible in
  let r =
    query v
      (Printf.sprintf "SELECT %s FROM %s" (String.concat ", " cols)
         (view_name v))
  in
  let rows =
    if flat then
      List.concat_map
        (fun (row : Row.t) ->
           let n = Array.length row - 1 in
           let weight = match row.(n) with Value.Int w -> w | _ -> 1 in
           let visible_part = Array.sub row 0 n in
           List.init (max 0 weight) (fun _ -> Row.to_string visible_part))
        r.Database.rows
    else List.map Row.to_string r.Database.rows
  in
  List.sort String.compare rows

(** Full recomputation of the defining query against the base tables as
    they stand now, as sorted row strings — the oracle's right-hand side.
    [visible_rows v = recompute_rows v] is the IVM correctness invariant
    (paper §2, DBSP Z-set semantics). *)
let recompute_rows (v : view) : string list =
  let q = v.compiled.Compiler.shape.Shape.query in
  let sql = Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb q in
  List.sort String.compare
    (List.map Row.to_string (Database.query v.db sql).Database.rows)

(* --- installation --- *)

let store_scripts_on_disk (compiled : Compiler.t) =
  match compiled.Compiler.flags.Flags.script_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path =
      Filename.concat dir (compiled.Compiler.shape.Shape.view_name ^ ".sql")
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Compiler.full_sql compiled))

(** Installation modes for the durable store:
    - [`Immediate] (default) — DDL, metadata, initial load: the historical
      single-shot install.
    - [`Deferred] — DDL and metadata, but no initial load: the staged
      backfill fills the view chunk by chunk afterwards
      ({!backfill_chunk}).
    - [`Attach] — neither DDL nor load: the backing, delta and metadata
      tables already exist (a checkpoint-restored database); just compile,
      register and re-arm capture. *)
let install ?(flags = Flags.default) ?(registry = [])
    ?(load = `Immediate) (db : Database.t) (sql : string) : view =
  let compiled =
    Span.with_span "install" (fun sp ->
        let compiled =
          Span.with_span "compile" (fun _ ->
              Compiler.compile ~flags (Database.catalog db) sql)
        in
        Span.set_str sp "view" compiled.Compiler.shape.Shape.view_name;
        (match load with
         | `Attach ->
           (* tables were restored from the checkpoint; metadata DDL is
              IF NOT EXISTS and so safe (and needed when attaching to a
              database snapshotted before a metadata table existed) *)
           exec_stmts db compiled.Compiler.metadata_ddl
         | `Immediate | `Deferred ->
           Span.with_span "setup_ddl" (fun _ ->
               exec_stmts db compiled.Compiler.ddl;
               exec_stmts db compiled.Compiler.metadata_ddl;
               exec_stmts db compiled.Compiler.metadata_dml));
        (match load with
         | `Immediate ->
           (* initial load must not be captured as a delta *)
           Span.with_span "initial_load" (fun _ ->
               with_exec_engine db flags (fun () ->
                   Trigger.without_hooks (Database.triggers db) (fun () ->
                       exec_stmts db [ compiled.Compiler.initial_load ])))
         | `Deferred | `Attach -> ());
        compiled)
  in
  store_scripts_on_disk compiled;
  let shape = compiled.Compiler.shape in
  Catalog.register_mat_view (Database.catalog db)
    { Catalog.mat_name = shape.Shape.view_name;
      mat_visible = Shape.visible_names shape;
      mat_flat = not (Shape.has_aggregates shape);
      mat_depends_on = Compiler.base_tables compiled };
  let v =
    { compiled; db; pending_deltas = 0; refresh_count = 0;
      refresh_time = 0.0; capture_enabled = true;
      upstreams = []; downstreams = []; in_refresh = false }
  in
  (* wire the cascade DAG: sources that are maintained views become
     upstream/downstream links when the caller hands us their handles *)
  let ups =
    List.filter_map
      (fun name ->
         List.find_opt (fun u -> String.equal (view_name u) name) registry)
      (Compiler.upstream_views compiled)
  in
  v.upstreams <- ups;
  List.iter (fun u -> u.downstreams <- u.downstreams @ [ v ]) ups;
  List.iter
    (fun base ->
       Trigger.register (Database.triggers db) ~table:base
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base)
         (fun change ->
            capture v base change;
            match compiled.Compiler.flags.Flags.refresh with
            | Flags.Eager ->
              Trigger.defer (Database.triggers db) (fun () -> eager_refresh v)
            | Flags.Lazy -> ()))
    (Compiler.base_tables compiled);
  v

(* --- staged backfill (the durable store's resumable initial load) --- *)

let m_backfill_chunks =
  Metrics.counter "openivm_backfill_chunks_total"
    ~help:"backfill chunks applied (staged initial materialization)"

(** Only a plain single-base-table source can be backfilled in chunks:
    slices of the base table flow through the delta pipeline exactly like
    captured changes, and linear/swap/rederive strategies all converge on
    partial inputs. Joins need both sides at once, and view-over-view
    sources must read a complete upstream — those load in one piece. *)
let backfill_chunkable v =
  match v.compiled.Compiler.shape.Shape.source with
  | Shape.Single { Shape.from_view = false; _ } -> true
  | Shape.Single _ | Shape.Joined _ -> false

(** Number of chunks a [`Deferred] install of [v] needs at [chunk_rows]
    rows per chunk (always 1 for non-chunkable shapes). *)
let backfill_total_chunks v ~chunk_rows =
  if not (backfill_chunkable v) then 1
  else begin
    let base = List.hd (Compiler.base_tables v.compiled) in
    let rows =
      Table.row_count (Catalog.find_table (Database.catalog v.db) base)
    in
    max 1 ((rows + chunk_rows - 1) / chunk_rows)
  end

(** Apply backfill chunk [index] (0-based) of a [`Deferred] install:
    insert the chunk's slice of the base table into the delta table with
    positive multiplicity and propagate. Chunk order and boundaries are
    deterministic for a fixed base table (slot order), so replaying the
    same chunk indexes over the same base state is idempotent-by-
    construction: recovery re-derives the identical slices. Returns the
    number of base rows folded in. *)
let backfill_chunk v ~chunk_rows ~index =
  Span.with_span "backfill.chunk"
    ~attrs:
      [ ("view", Span.Str (view_name v)); ("chunk", Span.Int index) ]
    (fun _ ->
       Metrics.incr m_backfill_chunks;
       if not (backfill_chunkable v) then begin
         (* single whole-shot chunk: the ordinary initial load *)
         with_exec_engine v.db v.compiled.Compiler.flags (fun () ->
             Trigger.without_hooks (Database.triggers v.db) (fun () ->
                 exec_stmts v.db [ v.compiled.Compiler.initial_load ]));
         0
       end
       else begin
         let catalog = Database.catalog v.db in
         let base = List.hd (Compiler.base_tables v.compiled) in
         let base_tbl = Catalog.find_table catalog base in
         let delta =
           Catalog.find_table catalog (Compiler.delta_table v.compiled base)
         in
         let width = Table.arity delta - 1 in
         let rows = Table.to_rows base_tbl in
         let lo = index * chunk_rows in
         let chunk =
           List.filteri (fun i _ -> i >= lo && i < lo + chunk_rows) rows
         in
         Trigger.without_hooks (Database.triggers v.db) (fun () ->
             List.iter
               (fun row ->
                  let row =
                    if Array.length row = width then row
                    else Array.sub row 0 width
                  in
                  Table.insert delta (Array.append row [| Value.Bool true |]))
               chunk);
         add_pending v (List.length chunk);
         force_refresh_local v;
         List.length chunk
       end)

let uninstall v =
  let db = v.db in
  let catalog = Database.catalog db in
  (match Catalog.mat_dependents catalog (view_name v) with
   | [] -> ()
   | dependents ->
     let d =
       Openivm_sql.Diagnostic.cascade_dependents ~view:(view_name v)
         ~dependents ()
     in
     Error.fail "%s: %s" d.Openivm_sql.Diagnostic.code
       d.Openivm_sql.Diagnostic.message);
  v.capture_enabled <- false;
  List.iter
    (fun u ->
       u.downstreams <- List.filter (fun d -> not (d == v)) u.downstreams)
    v.upstreams;
  v.upstreams <- [];
  Catalog.unregister_mat_view catalog (view_name v);
  List.iter
    (fun base ->
       Trigger.unregister (Database.triggers db)
         ~name:(Printf.sprintf "openivm_%s_%s" (view_name v) base))
    (Compiler.base_tables v.compiled);
  exec_stmts db (Metadata.unregister (view_name v));
  let drop name =
    ignore
      (Database.exec_stmt db
         (Ast.Drop { kind = `Table; name; if_exists = true }))
  in
  drop (view_name v);
  drop (Compiler.delta_view v.compiled);
  List.iter
    (fun b -> drop (Compiler.delta_table v.compiled b))
    (Compiler.base_tables v.compiled)

(* --- the extension entry point --- *)

(** The loaded extension: a database plus the registry of views it
    maintains (paper Figure 2). *)
type extension = {
  ext_db : Database.t;
  ext_flags : Flags.t;
  mutable ext_views : view list;
}

let load ?(flags = Flags.default) (db : Database.t) : extension =
  { ext_db = db; ext_flags = flags; ext_views = [] }

let find_view ext name =
  List.find_opt (fun v -> String.equal (view_name v) name) ext.ext_views

(** Tick-batched refresh: fold every maintained view's pending deltas in
    one pass, upstreams before downstreams so each propagation runs at
    most once per tick — the serving layer's refresh entry point.

    With [ext_flags.domains > 1] and the tick covering every view (the
    default [only]), views sharing a [dag_level] are independent — no
    cascade edge connects them — and refresh concurrently, one worker
    domain each, with a barrier between levels. Level order makes the
    per-view upstream pull redundant (each level sees every lower level
    already folded), so workers call straight into the local propagation;
    the executor engine is pinned once per level, which requires the
    level's firing views to agree on it (mixed-engine levels fall back to
    sequential). A filtered [only] also falls back: skipping a view under
    the parallel regime would break the level-order invariant its
    downstreams rely on. *)
let refresh_tick ?(only = fun _ -> true) (ext : extension) : int =
  let views =
    List.stable_sort
      (fun a b -> compare (dag_level a) (dag_level b))
      ext.ext_views
  in
  let sequential () =
    List.fold_left
      (fun ran v ->
         if only v then begin
           let before = v.refresh_count in
           refresh v;
           if v.refresh_count > before then ran + 1 else ran
         end
         else ran)
      0 views
  in
  if ext.ext_flags.Flags.domains <= 1
     || Parallel.in_worker ()
     || not (List.for_all only views)
  then sequential ()
  else begin
    let rec levels = function
      | [] -> []
      | v :: _ as vs ->
        let l = dag_level v in
        let same, rest = List.partition (fun w -> dag_level w = l) vs in
        same :: levels rest
    in
    List.fold_left
      (fun ran level_views ->
         (* deltas may have arrived while lower levels refreshed, so the
            firing set is decided per level, not up front *)
         let fire =
           List.filter
             (fun v ->
                v.pending_deltas > 0
                || v.compiled.Compiler.script.Propagate.kind = Propagate.Full)
             level_views
         in
         let engines =
           List.sort_uniq compare
             (List.map
                (fun v -> v.compiled.Compiler.flags.Flags.exec_engine)
                fire)
         in
         match fire, engines with
         | [], _ -> ran
         | _, [ engine ] ->
           if List.length fire > 1 then warm_all_indexes ext.ext_db;
           let db = ext.ext_db in
           let saved = db.Database.exec_engine in
           let saved_hint = db.Database.bulk_distinct_hint in
           db.Database.exec_engine <- engine;
           db.Database.bulk_distinct_hint <- true;
           Fun.protect
             ~finally:(fun () ->
               db.Database.exec_engine <- saved;
               db.Database.bulk_distinct_hint <- saved_hint)
             (fun () ->
                ignore
                  (Parallel.map
                     (Array.of_list
                        (List.map
                           (fun v () -> force_refresh_local ~standalone:false v)
                           fire))));
           ran + List.length fire
         | _, _ ->
           (* mixed executor engines on one level: refresh in order *)
           List.iter (fun v -> force_refresh_local v) fire;
           ran + List.length fire)
      0 (levels views)
  end

(** Refresh every lazily-maintained view a query touches — the engine-side
    counterpart of the paper's "implicitly calling a table function,
    adding a dummy node to the plan of the original query". *)
let refresh_for_query ext (q : Ast.select) =
  let touched = Ast.select_tables q in
  List.iter
    (fun v ->
       if (v.compiled.Compiler.flags.Flags.refresh = Flags.Lazy
           || v.upstreams <> [])
          && List.mem (view_name v) touched
       then refresh v)
    ext.ext_views

(** Execute a statement with the OpenIVM extension active: the fall-back
    parser path of the paper — [CREATE MATERIALIZED VIEW] is intercepted
    and compiled; SELECTs over maintained views refresh them first;
    everything else goes to the engine untouched. *)
let exec_ext (ext : extension) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    let v = install ~flags:ext.ext_flags ~registry:ext.ext_views ext.ext_db sql in
    ext.ext_views <- v :: ext.ext_views;
    `Installed v
  | Ast.Select_stmt q as stmt ->
    refresh_for_query ext q;
    `Result (Database.exec_stmt ext.ext_db stmt)
  | Ast.Drop { kind = `Table; name; _ } when find_view ext name <> None ->
    (match find_view ext name with
     | Some v ->
       uninstall v;
       ext.ext_views <-
         List.filter (fun w -> not (String.equal (view_name w) name)) ext.ext_views;
       `Result (Database.Ok_msg (Printf.sprintf "dropped materialized view %s" name))
     | None -> assert false)
  | Ast.Insert { table; _ } | Ast.Update { table; _ } | Ast.Delete { table; _ }
  | Ast.Truncate table
    when find_view ext table <> None ->
    (* direct DML against a maintained backing table would desynchronize
       the view (and silently corrupt everything downstream of it) *)
    let d = Openivm_sql.Diagnostic.cascade_dml_on_view ~view:table () in
    Error.fail "%s: %s" d.Openivm_sql.Diagnostic.code
      d.Openivm_sql.Diagnostic.message
  | stmt -> `Result (Database.exec_stmt ext.ext_db stmt)

(** One-shot variant when no extension state is at hand. *)
let exec ?(flags = Flags.default) (db : Database.t) (sql : string) :
  [ `Result of Database.exec_result | `Installed of view ] =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    `Installed (install ~flags db sql)
  | stmt -> `Result (Database.exec_stmt db stmt)
