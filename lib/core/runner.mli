(** The extension module: OpenIVM inside the engine (paper Figure 2).

    [install] executes the compiled DDL, performs the initial load, stores
    the propagation scripts (metadata tables, optionally on disk) and
    registers capture hooks on the base tables. Refresh policy follows
    {!Flags.refresh_mode}: [Eager] propagates per change, [Lazy] (the
    demo's choice) on read. *)

open Openivm_engine

type view = {
  compiled : Compiler.t;
  db : Database.t;
  mutable pending_deltas : int;
  mutable refresh_count : int;
  mutable refresh_time : float;
      (** total seconds spent propagating, measured through the
          injectable {!Openivm_obs.Clock} *)
  mutable capture_enabled : bool;
  mutable upstreams : view list;
      (** maintained views this view reads (cascade DAG parents) *)
  mutable downstreams : view list;
      (** maintained views reading this view (cascade DAG children) *)
  mutable in_refresh : bool;
      (** propagation in flight (re-entrancy guard) *)
}

val view_name : view -> string

val dag_level : view -> int
(** 0 for a view over base tables only; 1 + deepest upstream otherwise. *)

val install :
  ?flags:Flags.t -> ?registry:view list ->
  ?load:[ `Immediate | `Deferred | `Attach ] ->
  Database.t -> string -> view
(** Compile and install a [CREATE MATERIALIZED VIEW] statement. The view
    definition may reference previously installed materialized views;
    pass their handles as [registry] so the cascade DAG links up (the
    {!extension} does this automatically). Registers the view in the
    catalog's materialized-view registry; cycles raise
    {!Compiler.Unsupported_view} with diagnostic IVM201.

    [load] (default [`Immediate]) supports the durable store's staged
    installs: [`Deferred] runs DDL and metadata but skips the initial
    load (fill the view afterwards with {!backfill_chunk});
    [`Attach] skips DDL and load entirely — the tables were restored
    from a checkpoint — and only compiles, registers and re-arms
    capture triggers. *)

(** {1 Staged backfill}

    Resumable initial materialization: a [`Deferred] install is filled in
    [backfill_total_chunks] chunks, each a deterministic slot-order slice
    of the base table pushed through the delta pipeline. Replaying a
    prefix of chunk indexes over the same base state reproduces the same
    partial view, so a killed backfill resumes at the last completed
    chunk. *)

val backfill_chunkable : view -> bool
(** Whether the view's initial load can proceed in chunks (plain single
    base-table source). Joins and view-over-view sources load in one
    piece ([backfill_total_chunks] = 1). *)

val backfill_total_chunks : view -> chunk_rows:int -> int

val backfill_chunk : view -> chunk_rows:int -> index:int -> int
(** Apply chunk [index] (0-based): insert its base-table slice into the
    delta table with positive multiplicity and propagate. Returns the
    number of base rows folded in (0 for the whole-shot chunk of a
    non-chunkable view). *)

val uninstall : view -> unit
(** Unregister capture, drop the view's tables, clear its metadata.
    Raises {!Openivm_engine.Error.Sql_error} (IVM202) while maintained
    views still depend on this one. *)

val refresh : view -> unit
(** Refresh upstream views first (topological pull), then run the
    propagation script if deltas are pending. Eager downstream views are
    refreshed in a post-pass. *)

val force_refresh : view -> unit
(** Like {!refresh} but runs this view's propagation unconditionally. *)

val reinitialize : view -> unit
(** Rebuild the view from the base tables as they stand now: truncate the
    backing table and delta tables, rerun the initial load, reset pending
    deltas. Capture triggers, metadata and compiled scripts stay in
    place — the full-resync path of crash recovery. *)

val query : view -> string -> Database.query_result
(** Query through the view's refresh policy (lazy refresh-on-read). *)

val contents : ?order_by:string -> view -> Database.query_result
(** [SELECT * FROM view]. *)

val visible_rows : view -> string list
(** The view's visible contents as sorted row strings: hidden bookkeeping
    columns stripped, flat views expanded from weighted form back to bag
    semantics. Queries through the view's refresh policy. *)

val recompute_rows : view -> string list
(** Rerun the defining query from scratch against the current base tables,
    as sorted row strings. [visible_rows v = recompute_rows v] is the IVM
    correctness invariant the differential oracle checks. *)

(** {1 The extension entry point} *)

type extension = {
  ext_db : Database.t;
  ext_flags : Flags.t;
  mutable ext_views : view list;
}

val load : ?flags:Flags.t -> Database.t -> extension

val find_view : extension -> string -> view option

val refresh_tick : ?only:(view -> bool) -> extension -> int
(** Refresh the extension's maintained views (those satisfying [only],
    default all) at most once each, upstreams before downstreams. The
    serving layer's tick entry point: all deltas captured since the last
    tick fold in one consolidated propagation per view. Returns how many
    views actually propagated. *)

val exec_ext :
  extension -> string ->
  [ `Result of Database.exec_result | `Installed of view ]
(** Execute with the extension active: [CREATE MATERIALIZED VIEW] is
    intercepted and compiled; SELECTs over maintained views refresh them
    first; [DROP TABLE v] on a maintained view uninstalls it; everything
    else passes through. *)

val exec :
  ?flags:Flags.t -> Database.t -> string ->
  [ `Result of Database.exec_result | `Installed of view ]
(** One-shot variant without extension state (no query interception). *)
