(** Semantic analysis: binder, typechecker and IVM lint.

    Unlike the engine's planner — which raises on the first problem — this
    pass accumulates every diagnostic it can find in one run: unknown and
    ambiguous column references, unknown functions and bad arities,
    misplaced or nested aggregates, type errors (SUM over VARCHAR,
    arithmetic on text), duplicate output columns, and the IVM-specific
    rules (everything {!Shape.analyze_diag} rejects, plus advisory
    warnings about MIN/MAX-under-delete, AVG decomposition and unindexed
    key columns).

    Binding resolves names against a {!Catalog.t}; CTEs and derived tables
    get synthetic scopes. A FROM item that fails to resolve marks its
    binding as broken, which suppresses the cascade of unknown-column
    errors that would otherwise follow from one typo in a table name. *)

module Ast = Openivm_sql.Ast
module Analysis = Openivm_sql.Analysis
module D = Openivm_sql.Diagnostic
module Parser = Openivm_sql.Parser
module Funcs = Openivm_sql.Funcs
open Openivm_engine

type ctx = {
  catalog : Catalog.t;
  spans : Parser.spans;
  mutable diags : D.t list;  (* newest first *)
}

let emit ctx d = ctx.diags <- d :: ctx.diags

let espan ctx e = Parser.expr_span ctx.spans e
let fspan ctx f = Parser.from_span ctx.spans f

(** Everything visible to an expression: the combined column schema, the
    binding names in scope, and which of those failed to resolve. [env]
    carries the CTE definitions for subqueries. *)
type scope = {
  schema : Schema.t;
  bindings : string list;
  broken : string list;
  env : (string * Schema.t) list;
}

let empty_scope env = { schema = []; bindings = []; broken = []; env }

(** [Expr.infer_type] raises on ambiguous references; the binder reports
    those itself and must keep going. *)
let infer_safe schema e =
  try Expr.infer_type schema e with Error.Sql_error _ -> Ast.T_int

let binop_symbol = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%" | Ast.Eq -> "=" | Ast.Neq -> "<>" | Ast.Lt -> "<"
  | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">=" | Ast.And -> "AND"
  | Ast.Or -> "OR" | Ast.Concat -> "||"

(* --- binding --- *)

let check_column ctx scope ?span qualifier name =
  if name = "*" then ()
  else
    match qualifier with
    | Some q when not (List.mem q scope.bindings) ->
      emit ctx
        (D.unknown_qualifier ?span ?suggestion:(D.suggest q scope.bindings) q)
    | Some q when List.mem q scope.broken ->
      () (* the binding itself was already reported *)
    | None when scope.broken <> [] ->
      () (* any unqualified miss could live in the broken binding *)
    | _ ->
      (match Schema.find_opt scope.schema ~qualifier ~name with
       | Some _ -> ()
       | None ->
         let shown =
           match qualifier with Some q -> q ^ "." ^ name | None -> name
         in
         emit ctx
           (D.unknown_column ?span
              ?suggestion:(D.suggest name (Schema.names scope.schema))
              shown)
       | exception Error.Sql_error _ ->
         let owners =
           List.filter_map
             (fun (c : Schema.column) ->
                if String.equal c.Schema.name name then c.Schema.table else None)
             scope.schema
         in
         emit ctx (D.ambiguous_column ?span name owners))

(** [agg] says whether aggregate calls are legal here; the payload names
    the clause for the SEM008 message. [in_agg] is true inside an
    aggregate's argument (SEM007). *)
let rec check_expr ctx scope ~agg ~in_agg (e : Ast.expr) : unit =
  let recurse = check_expr ctx scope ~agg ~in_agg in
  match e with
  | Ast.Lit _ | Ast.Star -> ()
  | Ast.Column (q, name) -> check_column ctx scope ?span:(espan ctx e) q name
  | Ast.Unary (_, a) -> recurse a
  | Ast.Binary (op, a, b) ->
    recurse a;
    recurse b;
    (match op with
     | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
       List.iter
         (fun operand ->
            match infer_safe scope.schema operand with
            | Ast.T_text | Ast.T_bool ->
              let span =
                match espan ctx operand with
                | Some s -> Some s
                | None -> espan ctx e
              in
              emit ctx
                (D.arithmetic_type ?span (binop_symbol op)
                   (Ast.typ_to_string (infer_safe scope.schema operand)))
            | _ -> ())
         [ a; b ]
     | _ -> ())
  | Ast.Func (name, args) ->
    (if Funcs.is_nondeterministic name then
       emit ctx (D.nondeterministic_function ?span:(espan ctx e) name)
     else
       match Funcs.lookup name with
       | None ->
         emit ctx
           (D.unknown_function ?span:(espan ctx e)
              ?suggestion:(D.suggest name (Funcs.names ()))
              name (List.length args))
       | Some spec ->
         if not (Funcs.arity_ok spec (List.length args)) then
           emit ctx
             (D.wrong_arity ?span:(espan ctx e) name
                ~expected:(Funcs.arity_to_string spec)
                ~got:(List.length args)));
    List.iter recurse args
  | Ast.Aggregate (kind, _distinct, arg) ->
    if in_agg then emit ctx (D.nested_aggregate ?span:(espan ctx e) ())
    else begin
      (match agg with
       | `Allowed -> ()
       | `Forbidden clause ->
         emit ctx (D.aggregate_not_allowed ?span:(espan ctx e) clause));
      (match kind, arg with
       | (Ast.Sum | Ast.Avg), Some a ->
         (match infer_safe scope.schema a with
          | (Ast.T_text | Ast.T_bool | Ast.T_date) as t ->
            let span =
              match espan ctx a with Some s -> Some s | None -> espan ctx e
            in
            emit ctx
              (D.aggregate_type ?span (Ast.agg_name kind) (Ast.typ_to_string t))
          | Ast.T_int | Ast.T_float -> ())
       | _ -> ())
    end;
    Option.iter (check_expr ctx scope ~agg ~in_agg:true) arg
  | Ast.Case (branches, default) ->
    List.iter
      (fun (c, v) ->
         recurse c;
         recurse v)
      branches;
    Option.iter recurse default
  | Ast.Cast (a, _) -> recurse a
  | Ast.In_list (a, es, _) -> List.iter recurse (a :: es)
  | Ast.In_select (a, sub, _) ->
    recurse a;
    ignore (bind_select_inner ctx scope.env sub)
  | Ast.Between (a, lo, hi, _) -> List.iter recurse [ a; lo; hi ]
  | Ast.Is_null (a, _) -> recurse a
  | Ast.Like (a, b, _) ->
    recurse a;
    recurse b

(** SEM013: a WHERE/HAVING/ON condition whose type is not BOOLEAN. Only
    checked when every column in the condition resolves, so one typo does
    not also produce a bogus type warning. *)
and check_boolean ctx scope ~clause (e : Ast.expr) : unit =
  if Expr.resolves scope.schema e then
    match infer_safe scope.schema e with
    | Ast.T_bool -> ()
    | t ->
      emit ctx
        (D.non_boolean_predicate ?span:(espan ctx e) clause
           (Ast.typ_to_string t))

(** Output schema of a bound select, for CTE / derived-table / view
    scopes. Columns are unqualified; the caller requalifies with the
    binding name. *)
and output_schema (scope : scope) (s : Ast.select) : Schema.t =
  List.concat
    (List.mapi
       (fun i (e, alias) ->
          match e with
          | Ast.Star | Ast.Column (None, "*") ->
            List.map (fun c -> { c with Schema.table = None }) scope.schema
          | Ast.Column (Some q, "*") ->
            List.filter_map
              (fun (c : Schema.column) ->
                 if c.Schema.table = Some q then
                   Some { c with Schema.table = None }
                 else None)
              scope.schema
          | _ ->
            [ Schema.column
                (Analysis.projection_name i (e, alias))
                (infer_safe scope.schema e) ])
       s.Ast.projections)

(** Schema of a catalog (non-materialized) view, bound silently: the view
    was checked when it was created; here it only provides columns. *)
and view_schema ctx (vd : Catalog.view_def) : Schema.t =
  let silent = { catalog = ctx.catalog; spans = Parser.no_spans; diags = [] } in
  bind_select_inner silent [] vd.Catalog.query

and resolve_from ctx env (f : Ast.from_clause) : scope =
  match f with
  | Ast.Table_ref (name, alias) ->
    let binding = Option.value alias ~default:name in
    let resolved =
      match List.assoc_opt name env with
      | Some schema -> Some schema
      | None ->
        (match Catalog.find_table_opt ctx.catalog name with
         | Some tbl -> Some tbl.Table.schema
         | None ->
           Option.map (view_schema ctx) (Catalog.find_view_opt ctx.catalog name))
    in
    (match resolved with
     | Some schema ->
       { schema = Schema.requalify schema binding;
         bindings = [ binding ]; broken = []; env }
     | None ->
       let candidates =
         List.map fst env @ Catalog.table_names ctx.catalog
         @ Catalog.view_names ctx.catalog
       in
       emit ctx
         (D.unknown_table ?span:(fspan ctx f)
            ?suggestion:(D.suggest name candidates) name);
       { schema = []; bindings = [ binding ]; broken = [ binding ]; env })
  | Ast.Subquery (sel, alias) ->
    let out = bind_select_inner ctx env sel in
    { schema = Schema.requalify out alias;
      bindings = [ alias ]; broken = []; env }
  | Ast.Join (l, _, r, cond) ->
    let sl = resolve_from ctx env l in
    let sr = resolve_from ctx env r in
    let scope =
      { schema = sl.schema @ sr.schema;
        bindings = sl.bindings @ sr.bindings;
        broken = sl.broken @ sr.broken;
        env }
    in
    Option.iter
      (fun c ->
         check_expr ctx scope ~agg:(`Forbidden "JOIN ON") ~in_agg:false c;
         check_boolean ctx scope ~clause:"JOIN ON" c)
      cond;
    scope

(** Bind one select and return its output schema. All diagnostics go to
    [ctx]. *)
and bind_select_inner ctx env (s : Ast.select) : Schema.t =
  (* CTEs extend the environment left to right *)
  let env =
    List.fold_left
      (fun env (name, query) ->
         let out = bind_select_inner ctx env query in
         (name, out) :: env)
      env s.Ast.ctes
  in
  let scope =
    match s.Ast.from with
    | Some f -> resolve_from ctx env f
    | None -> empty_scope env
  in
  Option.iter
    (fun e ->
       check_expr ctx scope ~agg:(`Forbidden "WHERE") ~in_agg:false e;
       check_boolean ctx scope ~clause:"WHERE" e)
    s.Ast.where;
  List.iter
    (check_expr ctx scope ~agg:(`Forbidden "GROUP BY") ~in_agg:false)
    s.Ast.group_by;
  List.iter
    (fun (e, _) -> check_expr ctx scope ~agg:`Allowed ~in_agg:false e)
    s.Ast.projections;
  Option.iter
    (fun e ->
       check_expr ctx scope ~agg:`Allowed ~in_agg:false e;
       check_boolean ctx scope ~clause:"HAVING" e)
    s.Ast.having;
  (* ORDER BY: a bare column name resolves against the select's output
     columns first — so `SELECT a FROM t ORDER BY a` is not ambiguous and
     aliases are visible — while qualified names and compound expressions
     bind in the FROM scope, as in standard SQL. *)
  let out = output_schema scope s in
  List.iter
    (fun (o : Ast.order_item) ->
       match o.Ast.order_expr with
       | Ast.Column (None, name) as e when name <> "*" ->
         (match Schema.find_opt out ~qualifier:None ~name with
          | Some _ -> ()
          | None -> check_expr ctx scope ~agg:`Allowed ~in_agg:false e
          | exception Error.Sql_error _ ->
            (* two output columns share the name; output columns carry no
               qualifier, so there is nothing to suggest qualifying *)
            emit ctx (D.ambiguous_column ?span:(espan ctx e) name []))
       | e -> check_expr ctx scope ~agg:`Allowed ~in_agg:false e)
    s.Ast.order_by;
  (* duplicate output names, SEM011 — pointed at the second occurrence *)
  (match Analysis.duplicate_name (Analysis.output_names s) with
   | Some name ->
     let named =
       List.mapi (fun i p -> (Analysis.projection_name i p, fst p))
         s.Ast.projections
     in
     let span =
       match List.filter (fun (n, _) -> String.equal n name) named with
       | _ :: (_, e) :: _ -> espan ctx e
       | [ (_, e) ] -> espan ctx e
       | [] -> None
     in
     emit ctx (D.duplicate_column ?span name)
   | None -> ());
  (match s.Ast.set_operation with
   | Some (_, rhs) -> ignore (bind_select_inner ctx env rhs)
   | None -> ());
  out

(* --- public entry points --- *)

let bind_select (catalog : Catalog.t) ?(spans = Parser.no_spans)
    (s : Ast.select) : D.t list =
  let ctx = { catalog; spans; diags = [] } in
  ignore (bind_select_inner ctx [] s);
  D.sort (List.rev ctx.diags)

(* --- IVM lint --- *)

(** Column behind a group key, resolved to its base table. *)
let key_base_column (shape : Shape.t) (e : Ast.expr) :
  (string * string) option =
  match e with
  | Ast.Column (qualifier, name) ->
    List.find_map
      (fun (b : Shape.table_ref) ->
         match Schema.find_opt b.Shape.schema ~qualifier ~name with
         | Some _ -> Some (b.Shape.table, name)
         | None | (exception Error.Sql_error _) -> None)
      (Shape.base_tables shape)
  | _ -> None

(** Advisory diagnostics (IVM1xx) over an accepted shape. *)
let shape_warnings ctx (shape : Shape.t) : unit =
  (* IVM101 / IVM102: per aggregate projection *)
  List.iter
    (fun (e, _) ->
       match e with
       | Ast.Aggregate ((Ast.Min | Ast.Max) as kind, _, _) ->
         emit ctx
           (D.min_max_recompute ?span:(espan ctx e) (Ast.agg_name kind))
       | Ast.Aggregate (Ast.Avg, _, _) ->
         emit ctx (D.avg_decomposition ?span:(espan ctx e) ())
       | _ -> ())
    shape.Shape.query.Ast.projections;
  (* IVM103: group keys and join keys without an index. Flat views call
     every projection a group column, so only aggregate views check them. *)
  let keys =
    if not (Shape.has_aggregates shape) then []
    else
      List.filter_map (fun (e, _) -> Option.map (fun k -> (e, k))
                          (key_base_column shape e))
        (Shape.group_cols shape)
  in
  let join_keys =
    match shape.Shape.source with
    | Shape.Single _ -> []
    | Shape.Joined { condition; _ } ->
      let rec conjuncts acc = function
        | Ast.Binary (Ast.And, a, b) -> conjuncts (conjuncts acc a) b
        | e -> e :: acc
      in
      (match condition with
       | None -> []
       | Some c ->
         List.concat_map
           (function
             | Ast.Binary (Ast.Eq, a, b) ->
               List.filter_map
                 (fun e -> Option.map (fun k -> (e, k)) (key_base_column shape e))
                 [ a; b ]
             | _ -> [])
           (conjuncts [] c))
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e, (table, column)) ->
       if not (Hashtbl.mem seen (table, column)) then begin
         Hashtbl.add seen (table, column) ();
         if not (Advisor.column_indexed ctx.catalog ~table ~column) then
           emit ctx (D.unindexed_key ?span:(espan ctx e) ~table ~column ())
       end)
    (keys @ join_keys)

let dedup (ds : D.t list) : D.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : D.t) ->
       let key = (d.D.code, d.D.span, d.D.message) in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.add seen key ();
         true
       end)
    ds

let lint_view (catalog : Catalog.t) ?(spans = Parser.no_spans)
    ~(view_name : string) (query : Ast.select) : D.t list =
  let ctx = { catalog; spans; diags = [] } in
  ignore (bind_select_inner ctx [] query);
  (* Shape analysis needs every base table to exist; with a broken FROM
     the binder diagnostics already tell the story. *)
  (match Shape.analyze_diag catalog ~spans ~view_name query with
   | Ok shape -> shape_warnings ctx shape
   | Error d -> emit ctx d
   | exception Error.Sql_error _ -> ());
  D.sort (dedup (List.rev ctx.diags))

(* --- whole-script checking --- *)

(** Check a [;]-separated script: DDL and DML statements build up the
    scratch database, CREATE MATERIALIZED VIEW definitions get the full
    binder + IVM lint, plain views and SELECTs get the binder only.
    Parse errors come back as SEM000 instead of an exception, so a script
    always produces a diagnostic list. *)
let check_script (db : Database.t) (sql : string) : D.t list =
  let catalog = Database.catalog db in
  match Parser.parse_script_positioned sql with
  | exception Openivm_sql.Parser.Error (msg, pos) ->
    [ D.parse_error ~span:(D.span ~start_pos:pos ~stop_pos:(pos + 1)) msg ]
  | exception Openivm_sql.Lexer.Error (msg, pos) ->
    [ D.parse_error ~span:(D.span ~start_pos:pos ~stop_pos:(pos + 1)) msg ]
  | stmts, spans ->
    let ctx = { catalog; spans; diags = [] } in
    let exec_quietly stmt =
      (* grow the scratch catalog so later statements resolve; execution
         errors (duplicate table, bad INSERT) surface as diagnostics *)
      try ignore (Database.exec_stmt db stmt)
      with Error.Sql_error msg ->
        emit ctx
          (D.parse_error ?span:(Parser.statement_span spans stmt) msg)
    in
    let register_view view query =
      try
        Catalog.add_view catalog
          { Catalog.view_name = view; query;
            sql =
              Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb
                query }
      with Error.Sql_error _ -> ()
    in
    let rec check_stmt (stmt : Ast.stmt) =
      match stmt with
      | Ast.Select_stmt s -> ignore (bind_select_inner ctx [] s)
      | Ast.Create_view { view; materialized; query } ->
        let ds =
          if materialized then lint_view catalog ~spans ~view_name:view query
          else bind_select catalog ~spans query
        in
        List.iter (emit ctx) ds;
        (* register the view (not via Database, which would re-plan or
           reject MATERIALIZED) so later statements can read it *)
        if not (D.has_errors ds) then register_view view query
      | Ast.Explain inner -> check_stmt inner
      | Ast.Create_table _ | Ast.Create_index _ | Ast.Insert _ | Ast.Update _
      | Ast.Delete _ | Ast.Drop _ | Ast.Truncate _ | Ast.Begin_txn
      | Ast.Commit_txn | Ast.Rollback_txn ->
        exec_quietly stmt
    in
    List.iter check_stmt stmts;
    D.sort (dedup (List.rev ctx.diags))
