(** Semantic analysis: binder, typechecker and IVM lint.

    Every entry point accumulates {e all} diagnostics it can find in one
    run (the engine's planner stops at the first problem; this pass is for
    tooling and the [openivm check] subcommand). Pass the parser's
    {!Openivm_sql.Parser.spans} so diagnostics carry source positions. *)

module Ast = Openivm_sql.Ast
module D = Openivm_sql.Diagnostic
open Openivm_engine

val bind_select :
  Catalog.t -> ?spans:Openivm_sql.Parser.spans -> Ast.select -> D.t list
(** Resolve and typecheck one SELECT against the catalog: unknown /
    ambiguous columns, unknown tables and qualifiers, unknown functions
    and arities, non-deterministic functions, misplaced and nested
    aggregates, SUM/AVG over non-numeric columns, arithmetic over
    text/boolean, non-boolean predicates, duplicate output columns.
    CTEs, derived tables and uncorrelated IN subqueries get their own
    scopes. Sorted by source position. *)

val lint_view :
  Catalog.t ->
  ?spans:Openivm_sql.Parser.spans ->
  view_name:string ->
  Ast.select ->
  D.t list
(** {!bind_select} plus the IVM rules: every {!Shape.analyze_diag}
    rejection (IVM0xx) and the advisory IVM1xx warnings (MIN/MAX
    recompute-on-delete, AVG decomposition, unindexed key columns). *)

val check_script : Database.t -> string -> D.t list
(** Check a [;]-separated script. CREATE TABLE / INDEX / DML statements
    execute against [db] so later statements resolve; CREATE MATERIALIZED
    VIEW gets {!lint_view}; plain views and SELECTs get {!bind_select}.
    Parse and execution failures become SEM000 diagnostics instead of
    exceptions. *)
