(** Normalized description of an IVM-maintainable view definition.

    [analyze] validates a view query against the supported classes
    (single-table projection / filter / grouped aggregation, and their
    two-table-join counterparts — the paper's scope plus its announced
    MIN/MAX and JOIN extensions) and lowers it into the shape the DDL and
    propagation generators consume. *)

module Ast = Openivm_sql.Ast
module Analysis = Openivm_sql.Analysis
open Openivm_engine

type aggregate_item = {
  agg : Ast.agg;
  arg : Ast.expr option;       (** None = COUNT star *)
  visible_name : string;       (** the view's output column *)
  visible_type : Ast.typ;
  sum_state : string option;   (** hidden running-sum column (SUM/AVG) *)
  nn_state : string option;    (** hidden non-null-count column (SUM/AVG) *)
}

type column_spec =
  | Group_col of { expr : Ast.expr; name : string; typ : Ast.typ }
  | Agg_col of aggregate_item

type table_ref = {
  table : string;
  binding : string;  (** alias used in the view query ("t" if none) *)
  schema : Schema.t;
}

type source =
  | Single of table_ref
  | Joined of {
      tables : table_ref list;     (** two or more, in FROM order *)
      condition : Ast.expr option; (** all ON conditions, conjoined *)
    }

type t = {
  view_name : string;
  query : Ast.select;
  klass : Analysis.query_class;
  columns : column_spec list;  (** in projection order *)
  source : source;
  where : Ast.expr option;
}

let count_column = "__ivm_count"
let stage_table shape = "__ivm_stage_" ^ shape.view_name
let null_marker = "\x01<null>"
let key_separator = "\x1f"

let group_cols shape =
  List.filter_map
    (function
      | Group_col g -> Some (g.expr, g.name)
      | Agg_col _ -> None)
    shape.columns

let aggregates shape =
  List.filter_map
    (function Agg_col a -> Some a | Group_col _ -> None)
    shape.columns

let has_aggregates shape = aggregates shape <> []

let has_min_max shape =
  List.exists
    (fun a -> a.agg = Ast.Min || a.agg = Ast.Max)
    (aggregates shape)

(** Global aggregate: SELECT SUM(x) FROM t — aggregates without grouping. *)
let is_global shape = has_aggregates shape && group_cols shape = []

let visible_names shape =
  List.map
    (function Group_col g -> g.name | Agg_col a -> a.visible_name)
    shape.columns

let base_tables shape =
  match shape.source with
  | Single t -> [ t ]
  | Joined { tables; _ } -> tables

(* --- analysis --- *)

let table_ref_of catalog name alias : table_ref =
  let tbl = Catalog.find_table catalog name in
  { table = name;
    binding = Option.value alias ~default:name;
    schema = Schema.requalify tbl.Table.schema (Option.value alias ~default:name) }

(* the DBSP inclusion–exclusion rewrite emits 2^N - 1 fill terms; cap N
   so a typo cannot explode the script *)
let max_join_tables = 4

let source_of catalog (f : Ast.from_clause) : (source, string) result =
  (* flatten a tree of inner/cross joins over base tables *)
  let rec flatten f : (table_ref list * Ast.expr list, string) result =
    match f with
    | Ast.Table_ref (name, alias) ->
      Ok ([ table_ref_of catalog name alias ], [])
    | Ast.Join (l, (Ast.Inner | Ast.Cross), r, cond) ->
      Result.bind (flatten l) (fun (lt, lc) ->
          Result.bind (flatten r) (fun (rt, rc) ->
              Ok (lt @ rt, lc @ rc @ Option.to_list cond)))
    | Ast.Join (_, (Ast.Left_outer | Ast.Right_outer | Ast.Full_outer), _, _) ->
      Error "outer joins are not supported for IVM"
    | Ast.Subquery _ -> Error "derived tables are not supported for IVM"
  in
  match f with
  | Ast.Table_ref (name, alias) -> Ok (Single (table_ref_of catalog name alias))
  | _ ->
    Result.bind (flatten f) (fun (tables, conditions) ->
        if List.length tables > max_join_tables then
          Error
            (Printf.sprintf "joins of more than %d tables are not supported"
               max_join_tables)
        else begin
          let condition =
            match conditions with
            | [] -> None
            | c :: rest ->
              Some
                (List.fold_left
                   (fun acc x -> Ast.Binary (Ast.And, acc, x))
                   c rest)
          in
          Ok (Joined { tables; condition })
        end)

let input_schema source =
  match source with
  | Single t -> t.schema
  | Joined { tables; _ } ->
    List.concat_map (fun t -> t.schema) tables

(** The hidden state columns an aggregate needs under the linear strategy. *)
let state_columns_for ~visible_name (agg : Ast.agg) =
  match agg with
  | Ast.Sum | Ast.Avg ->
    (Some ("__ivm_sum_" ^ visible_name), Some ("__ivm_nn_" ^ visible_name))
  | Ast.Count | Ast.Min | Ast.Max -> (None, None)

let analyze (catalog : Catalog.t) ~(view_name : string) (query : Ast.select) :
  (t, string) result =
  let ( let* ) = Result.bind in
  let klass = Analysis.classify query in
  let* () =
    match klass with
    | Analysis.Unsupported reason -> Error reason
    | _ when query.Ast.order_by <> [] -> Error "ORDER BY in view definition"
    | _ when query.Ast.having <> None ->
      Error "HAVING is not supported for IVM views"
    | _ -> Ok ()
  in
  let* source =
    match query.Ast.from with
    | Some f -> source_of catalog f
    | None -> Error "view without FROM clause"
  in
  let schema = input_schema source in
  let infer e = Expr.infer_type schema e in
  let aggregated = Ast.select_has_aggregate query in
  (* name projections like the engine planner does *)
  let named =
    List.mapi
      (fun i (e, alias) -> (e, Analysis.projection_name i (e, alias)))
      query.Ast.projections
  in
  let* () =
    if List.exists (fun (e, _) -> e = Ast.Star || e = Ast.Column (None, "*")) named
       && aggregated
    then Error "star projections cannot be mixed with aggregates"
    else Ok ()
  in
  (* expand stars for flat views *)
  let named =
    List.concat_map
      (fun (e, name) ->
         match e with
         | Ast.Star | Ast.Column (None, "*") ->
           List.map
             (fun c -> (Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name))
             schema
         | Ast.Column (Some q, "*") ->
           List.filter_map
             (fun c ->
                if c.Schema.table = Some q then
                  Some (Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name)
                else None)
             schema
         | _ -> [ (e, name) ])
      named
  in
  let* columns =
    if not aggregated then
      (* flat view: every projection becomes a grouping column *)
      Ok
        (List.map
           (fun (e, name) -> Group_col { expr = e; name; typ = infer e })
           named)
    else begin
      (* aggregate view: every projection is a GROUP BY expression or a
         bare aggregate *)
      let in_group e = List.exists (fun g -> g = e) query.Ast.group_by in
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | (e, name) :: rest ->
          (match e with
           | Ast.Aggregate (agg, distinct, arg) ->
             if distinct then Error "DISTINCT aggregates are not supported"
             else begin
               let sum_state, nn_state = state_columns_for ~visible_name:name agg in
               let item =
                 { agg; arg; visible_name = name; visible_type = infer e;
                   sum_state; nn_state }
               in
               build (Agg_col item :: acc) rest
             end
           | _ when in_group e ->
             build (Group_col { expr = e; name; typ = infer e } :: acc) rest
           | _ ->
             Error
               (Printf.sprintf
                  "projection %s is neither a GROUP BY expression nor a bare \
                   aggregate"
                  (Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb e)))
      in
      let* cols = build [] named in
      (* every GROUP BY expression must be projected, so the view rows are
         keyed by the full group *)
      let projected_groups =
        List.filter_map
          (function Group_col g -> Some g.expr | Agg_col _ -> None)
          cols
      in
      let* () =
        if List.for_all (fun g -> List.mem g projected_groups) query.Ast.group_by
        then Ok ()
        else Error "every GROUP BY expression must appear in the select list"
      in
      Ok cols
    end
  in
  (* reject duplicate output names (the view table could not be created) *)
  let names = List.map (function Group_col g -> g.name | Agg_col a -> a.visible_name) columns in
  let* () =
    let sorted = List.sort String.compare names in
    let rec dup = function
      | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
      | _ -> None
    in
    match dup sorted with
    | Some name -> Error (Printf.sprintf "duplicate output column %S" name)
    | None -> Ok ()
  in
  Ok { view_name; query; klass; columns; source; where = query.Ast.where }
