(** Normalized description of an IVM-maintainable view definition.

    [analyze] validates a view query against the supported classes
    (single-table projection / filter / grouped aggregation, and their
    two-table-join counterparts — the paper's scope plus its announced
    MIN/MAX and JOIN extensions) and lowers it into the shape the DDL and
    propagation generators consume. Every rejection is a coded
    {!Openivm_sql.Diagnostic.t}; when the caller passes the parser's
    [spans], the diagnostic points at the offending SQL. *)

module Ast = Openivm_sql.Ast
module Analysis = Openivm_sql.Analysis
module Diagnostic = Openivm_sql.Diagnostic
module Parser = Openivm_sql.Parser
open Openivm_engine

type aggregate_item = {
  agg : Ast.agg;
  arg : Ast.expr option;       (** None = COUNT star *)
  visible_name : string;       (** the view's output column *)
  visible_type : Ast.typ;
  sum_state : string option;   (** hidden running-sum column (SUM/AVG) *)
  nn_state : string option;    (** hidden non-null-count column (SUM/AVG) *)
}

type column_spec =
  | Group_col of { expr : Ast.expr; name : string; typ : Ast.typ }
  | Agg_col of aggregate_item

type table_ref = {
  table : string;
  binding : string;  (** alias used in the view query ("t" if none) *)
  schema : Schema.t;
  from_view : bool;
      (** the source is itself a maintained materialized view; [schema]
          is then restricted to its visible column prefix, hiding the IVM
          bookkeeping columns from the downstream definition *)
}

type source =
  | Single of table_ref
  | Joined of {
      tables : table_ref list;     (** two or more, in FROM order *)
      condition : Ast.expr option; (** all ON conditions, conjoined *)
    }

type t = {
  view_name : string;
  query : Ast.select;
  klass : Analysis.query_class;
  columns : column_spec list;  (** in projection order *)
  source : source;
  where : Ast.expr option;
}

let count_column = "__ivm_count"
let stage_table shape = "__ivm_stage_" ^ shape.view_name
let null_marker = "\x01<null>"
let key_separator = "\x1f"

(* the DBSP inclusion–exclusion rewrite emits 2^N - 1 fill terms; cap N
   so a typo cannot explode the script *)
let max_join_tables = Analysis.max_join_tables

let group_cols shape =
  List.filter_map
    (function
      | Group_col g -> Some (g.expr, g.name)
      | Agg_col _ -> None)
    shape.columns

let aggregates shape =
  List.filter_map
    (function Agg_col a -> Some a | Group_col _ -> None)
    shape.columns

let has_aggregates shape = aggregates shape <> []

let has_min_max shape =
  List.exists
    (fun a -> a.agg = Ast.Min || a.agg = Ast.Max)
    (aggregates shape)

(** Global aggregate: SELECT SUM(x) FROM t — aggregates without grouping. *)
let is_global shape = has_aggregates shape && group_cols shape = []

let visible_names shape =
  List.map
    (function Group_col g -> g.name | Agg_col a -> a.visible_name)
    shape.columns

let base_tables shape =
  match shape.source with
  | Single t -> [ t ]
  | Joined { tables; _ } -> tables

(* --- analysis --- *)

let table_ref_of catalog name alias : table_ref =
  let tbl = Catalog.find_table catalog name in
  (* A maintained view's backing table lays out its visible columns
     first, then hidden IVM state; downstream views see only the visible
     prefix — the DBSP composition point where ΔV feeds the next view. *)
  let schema, from_view =
    match Catalog.find_mat_view catalog name with
    | Some mv ->
      ( List.filter
          (fun (c : Schema.column) ->
             List.exists (String.equal c.Schema.name) mv.Catalog.mat_visible)
          tbl.Table.schema,
        true )
    | None -> (tbl.Table.schema, false)
  in
  { table = name;
    binding = Option.value alias ~default:name;
    schema = Schema.requalify schema (Option.value alias ~default:name);
    from_view }

(** First derived table under a FROM clause, for span attachment. *)
let rec find_derived = function
  | Ast.Table_ref _ -> None
  | Ast.Subquery _ as f -> Some f
  | Ast.Join (l, _, r, _) ->
    (match find_derived l with Some f -> Some f | None -> find_derived r)

(** First outer join's right-hand item, for span attachment. *)
let rec find_outer = function
  | Ast.Table_ref _ | Ast.Subquery _ -> None
  | Ast.Join (l, (Ast.Left_outer | Ast.Right_outer | Ast.Full_outer), r, _) ->
    (match find_outer l with Some f -> Some f | None -> Some r)
  | Ast.Join (l, _, r, _) ->
    (match find_outer l with Some f -> Some f | None -> find_outer r)

let source_of catalog ~spans (f : Ast.from_clause) :
  (source, Diagnostic.t) result =
  let fspan node = Parser.from_span spans node in
  (* flatten a tree of inner/cross joins over base tables *)
  let rec flatten f : (table_ref list * Ast.expr list, Diagnostic.t) result =
    match f with
    | Ast.Table_ref (name, alias) ->
      Ok ([ table_ref_of catalog name alias ], [])
    | Ast.Join (l, (Ast.Inner | Ast.Cross), r, cond) ->
      Result.bind (flatten l) (fun (lt, lc) ->
          Result.bind (flatten r) (fun (rt, rc) ->
              Ok (lt @ rt, lc @ rc @ Option.to_list cond)))
    | Ast.Join (_, (Ast.Left_outer | Ast.Right_outer | Ast.Full_outer), _, _) ->
      Error
        (Diagnostic.outer_join_unsupported
           ?span:(Option.bind (find_outer f) fspan) ())
    | Ast.Subquery _ ->
      Error (Diagnostic.derived_table_unsupported ?span:(fspan f) ())
  in
  match f with
  | Ast.Table_ref (name, alias) -> Ok (Single (table_ref_of catalog name alias))
  | _ ->
    Result.bind (flatten f) (fun (tables, conditions) ->
        if List.length tables > max_join_tables then
          Error (Diagnostic.too_many_tables ~max:max_join_tables ())
        else begin
          let condition =
            match conditions with
            | [] -> None
            | c :: rest ->
              Some
                (List.fold_left
                   (fun acc x -> Ast.Binary (Ast.And, acc, x))
                   c rest)
          in
          Ok (Joined { tables; condition })
        end)

let input_schema source =
  match source with
  | Single t -> t.schema
  | Joined { tables; _ } ->
    List.concat_map (fun t -> t.schema) tables

(** SUM/AVG whose argument is not integer-typed. Their running state is a
    float, and float addition is not exactly invertible (x + d - d can
    differ from x in the last bits), so any linear combine strategy
    drifts away from a full recompute once deletes retract previously
    added values. Like MIN/MAX, such aggregates must be rederived. This
    matters most for cascades, where an upstream AVG column feeds a
    downstream SUM/AVG. *)
let has_float_sum shape =
  let schema = input_schema shape.source in
  List.exists
    (fun a ->
       match a.agg, a.arg with
       | (Ast.Sum | Ast.Avg), Some arg ->
         (match Expr.infer_type schema arg with
          | Ast.T_int -> false
          | _ -> true)
       | _ -> false)
    (aggregates shape)

(** The hidden state columns an aggregate needs under the linear strategy. *)
let state_columns_for ~visible_name (agg : Ast.agg) =
  match agg with
  | Ast.Sum | Ast.Avg ->
    (Some ("__ivm_sum_" ^ visible_name), Some ("__ivm_nn_" ^ visible_name))
  | Ast.Count | Ast.Min | Ast.Max -> (None, None)

(** Map a classification rejection to its coded diagnostic, attaching the
    best span available. *)
let rejection_diag ~spans (query : Ast.select) (r : Analysis.rejection) :
  Diagnostic.t =
  let qspan = Parser.select_span spans query in
  match r with
  | Analysis.Cte -> Diagnostic.cte_unsupported ?span:qspan ()
  | Analysis.Set_operation ->
    let span =
      match query.Ast.set_operation with
      | Some (_, rhs) -> Parser.select_span spans rhs
      | None -> qspan
    in
    Diagnostic.set_op_unsupported ?span ()
  | Analysis.Distinct -> Diagnostic.distinct_unsupported ?span:qspan ()
  | Analysis.Limit_offset -> Diagnostic.limit_unsupported ?span:qspan ()
  | Analysis.No_from -> Diagnostic.no_from_clause ?span:qspan ()
  | Analysis.Derived_table ->
    let span =
      match query.Ast.from with
      | Some f -> Option.bind (find_derived f) (Parser.from_span spans)
      | None -> qspan
    in
    Diagnostic.derived_table_unsupported ?span ()
  | Analysis.Too_many_tables _ ->
    Diagnostic.too_many_tables ?span:qspan ~max:max_join_tables ()

let analyze_diag (catalog : Catalog.t) ?(spans = Parser.no_spans)
    ~(view_name : string) (query : Ast.select) : (t, Diagnostic.t) result =
  let ( let* ) = Result.bind in
  let espan e = Parser.expr_span spans e in
  let klass = Analysis.classify query in
  let* () =
    match klass with
    | Analysis.Unsupported reason -> Error (rejection_diag ~spans query reason)
    | _ when query.Ast.order_by <> [] ->
      let span =
        match query.Ast.order_by with
        | { Ast.order_expr; _ } :: _ -> espan order_expr
        | [] -> None
      in
      Error (Diagnostic.order_by_unsupported ?span ())
    | _ when query.Ast.having <> None ->
      Error
        (Diagnostic.having_unsupported
           ?span:(Option.bind query.Ast.having espan) ())
    | _ -> Ok ()
  in
  let* source =
    match query.Ast.from with
    | Some f -> source_of catalog ~spans f
    | None -> Error (Diagnostic.no_from_clause ())
  in
  let schema = input_schema source in
  let infer e = Expr.infer_type schema e in
  let aggregated = Ast.select_has_aggregate query in
  (* name projections like the engine planner does *)
  let named =
    List.mapi
      (fun i (e, alias) -> (e, Analysis.projection_name i (e, alias)))
      query.Ast.projections
  in
  let* () =
    match
      List.find_opt
        (fun (e, _) -> e = Ast.Star || e = Ast.Column (None, "*"))
        named
    with
    | Some (star, _) when aggregated ->
      Error (Diagnostic.star_with_aggregates ?span:(espan star) ())
    | _ -> Ok ()
  in
  (* expand stars for flat views *)
  let named =
    List.concat_map
      (fun (e, name) ->
         match e with
         | Ast.Star | Ast.Column (None, "*") ->
           List.map
             (fun c -> (Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name))
             schema
         | Ast.Column (Some q, "*") ->
           List.filter_map
             (fun c ->
                if c.Schema.table = Some q then
                  Some (Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name)
                else None)
             schema
         | _ -> [ (e, name) ])
      named
  in
  let* columns =
    if not aggregated then
      (* flat view: every projection becomes a grouping column *)
      Ok
        (List.map
           (fun (e, name) -> Group_col { expr = e; name; typ = infer e })
           named)
    else begin
      (* aggregate view: every projection is a GROUP BY expression or a
         bare aggregate *)
      let in_group e = List.exists (fun g -> g = e) query.Ast.group_by in
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | (e, name) :: rest ->
          (match e with
           | Ast.Aggregate (agg, distinct, arg) ->
             if distinct then
               Error (Diagnostic.distinct_aggregate ?span:(espan e) ())
             else begin
               let sum_state, nn_state = state_columns_for ~visible_name:name agg in
               let item =
                 { agg; arg; visible_name = name; visible_type = infer e;
                   sum_state; nn_state }
               in
               build (Agg_col item :: acc) rest
             end
           | _ when in_group e ->
             build (Group_col { expr = e; name; typ = infer e } :: acc) rest
           | _ ->
             Error
               (Diagnostic.projection_not_group ?span:(espan e)
                  (Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb e)))
      in
      let* cols = build [] named in
      (* every GROUP BY expression must be projected, so the view rows are
         keyed by the full group *)
      let projected_groups =
        List.filter_map
          (function Group_col g -> Some g.expr | Agg_col _ -> None)
          cols
      in
      let* () =
        match
          List.find_opt
            (fun g -> not (List.mem g projected_groups))
            query.Ast.group_by
        with
        | Some g -> Error (Diagnostic.group_not_projected ?span:(espan g) ())
        | None -> Ok ()
      in
      Ok cols
    end
  in
  (* reject duplicate output names (the view table could not be created) *)
  let names = List.map (function Group_col g -> g.name | Agg_col a -> a.visible_name) columns in
  let* () =
    match Analysis.duplicate_name names with
    | Some name ->
      (* point at the second projection producing the name *)
      let span =
        match
          List.filter (fun (_, n) -> String.equal n name) named
        with
        | _ :: (e, _) :: _ -> espan e
        | [ (e, _) ] -> espan e
        | [] -> None
      in
      Error (Diagnostic.duplicate_column ?span name)
    | None -> Ok ()
  in
  (* When a source is itself a maintained view, bake the star expansion
     into the stored query: the engine's planner would otherwise expand
     [*] over the backing table's hidden IVM columns (initial load and
     recompute both execute this query verbatim). *)
  let query =
    let reads_view =
      List.exists
        (fun (t : table_ref) -> t.from_view)
        (match source with Single t -> [ t ] | Joined { tables; _ } -> tables)
    in
    let had_star =
      List.exists
        (fun (e, _) ->
           match e with
           | Ast.Star | Ast.Column (_, "*") -> true
           | _ -> false)
        query.Ast.projections
    in
    if reads_view && had_star then
      { query with
        Ast.projections = List.map (fun (e, n) -> (e, Some n)) named }
    else query
  in
  Ok { view_name; query; klass; columns; source; where = query.Ast.where }

let analyze (catalog : Catalog.t) ~(view_name : string) (query : Ast.select) :
  (t, string) result =
  Result.map_error
    (fun (d : Diagnostic.t) -> d.Diagnostic.message)
    (analyze_diag catalog ~view_name query)
