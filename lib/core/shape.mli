(** Normalized description of an IVM-maintainable view definition:
    [analyze] validates a query against the supported classes and lowers
    it into the shape the DDL and propagation generators consume. *)

module Ast = Openivm_sql.Ast
module Analysis = Openivm_sql.Analysis
open Openivm_engine

type aggregate_item = {
  agg : Ast.agg;
  arg : Ast.expr option;       (** None = COUNT star *)
  visible_name : string;
  visible_type : Ast.typ;
  sum_state : string option;   (** hidden running-sum column (SUM/AVG) *)
  nn_state : string option;    (** hidden non-null-count column (SUM/AVG) *)
}

type column_spec =
  | Group_col of { expr : Ast.expr; name : string; typ : Ast.typ }
  | Agg_col of aggregate_item

type table_ref = {
  table : string;
  binding : string;
  schema : Schema.t;  (** requalified with the binding *)
  from_view : bool;
      (** source is a maintained materialized view; [schema] is its
          visible column prefix (hidden IVM state excluded) *)
}

type source =
  | Single of table_ref
  | Joined of {
      tables : table_ref list;     (** two to four, in FROM order *)
      condition : Ast.expr option; (** all ON conditions, conjoined *)
    }

type t = {
  view_name : string;
  query : Ast.select;
  klass : Analysis.query_class;
  columns : column_spec list;  (** in projection order *)
  source : source;
  where : Ast.expr option;
}

val count_column : string
(** The hidden group-size column ([__ivm_count]). *)

val stage_table : t -> string
val null_marker : string
val key_separator : string
val max_join_tables : int

val group_cols : t -> (Ast.expr * string) list
val aggregates : t -> aggregate_item list
val has_aggregates : t -> bool
val has_min_max : t -> bool

(** SUM/AVG over a non-integer argument. Float running state is not
    exactly invertible under retraction, so these route to rederive /
    full recompute exactly like MIN/MAX (see {!Openivm.Propagate}). *)
val has_float_sum : t -> bool
val is_global : t -> bool
val visible_names : t -> string list
val base_tables : t -> table_ref list
val input_schema : source -> Schema.t

val analyze_diag :
  Catalog.t ->
  ?spans:Openivm_sql.Parser.spans ->
  view_name:string ->
  Ast.select ->
  (t, Openivm_sql.Diagnostic.t) result
(** Validate and lower a view query. Rejections are coded diagnostics;
    pass the parser's [spans] so they carry source positions. *)

val analyze : Catalog.t -> view_name:string -> Ast.select -> (t, string) result
(** [analyze_diag] with the diagnostic collapsed to its message. *)
