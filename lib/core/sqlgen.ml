(** Tiny AST-building DSL shared by the DDL and propagation generators. *)

module Ast = Openivm_sql.Ast

let col ?q name : Ast.expr = Ast.Column (q, name)
let int_lit i : Ast.expr = Ast.Lit (Ast.L_int i)
let str_lit s : Ast.expr = Ast.Lit (Ast.L_string s)
let bool_lit b : Ast.expr = Ast.Lit (Ast.L_bool b)
let null_lit : Ast.expr = Ast.Lit Ast.L_null

let eq a b : Ast.expr = Ast.Binary (Ast.Eq, a, b)
let neq a b : Ast.expr = Ast.Binary (Ast.Neq, a, b)
let le a b : Ast.expr = Ast.Binary (Ast.Le, a, b)
let gt a b : Ast.expr = Ast.Binary (Ast.Gt, a, b)
let add a b : Ast.expr = Ast.Binary (Ast.Add, a, b)
let div a b : Ast.expr = Ast.Binary (Ast.Div, a, b)
let neg a : Ast.expr = Ast.Unary (Ast.Neg, a)
let and_ a b : Ast.expr = Ast.Binary (Ast.And, a, b)
let or_ a b : Ast.expr = Ast.Binary (Ast.Or, a, b)
let concat a b : Ast.expr = Ast.Binary (Ast.Concat, a, b)
let is_null a : Ast.expr = Ast.Is_null (a, false)

let conjoin = function
  | [] -> bool_lit true
  | e :: rest -> List.fold_left and_ e rest

(** NULL-safe equality: groups with NULL keys must still match their view
    row (plain [=] silently drops them — the Listing-2 caveat). *)
let nullsafe_eq a b : Ast.expr =
  or_ (eq a b) (and_ (is_null a) (is_null b))

let coalesce0 e : Ast.expr = Ast.Func ("coalesce", [ e; int_lit 0 ])

let case_when cond then_ else_ : Ast.expr = Ast.Case ([ (cond, then_) ], Some else_)

let sum_agg e : Ast.expr = Ast.Aggregate (Ast.Sum, false, Some e)
let count_agg e : Ast.expr = Ast.Aggregate (Ast.Count, false, Some e)
let count_star : Ast.expr = Ast.Aggregate (Ast.Count, false, None)

(** SUM(CASE WHEN mult THEN e ELSE -e END) — the signed combination of
    boolean-multiplicity partials. *)
let signed_sum ~mult e : Ast.expr = sum_agg (case_when mult e (neg e))

let select ?(ctes = []) ?from ?where ?(group_by = []) projections : Ast.select =
  { Ast.empty_select with ctes; projections; from; where; group_by }

let table ?alias name : Ast.from_clause = Ast.Table_ref (name, alias)

let join ?condition left right : Ast.from_clause =
  Ast.Join (left, Ast.Inner, right, condition)

let left_join ?condition left right : Ast.from_clause =
  Ast.Join (left, Ast.Left_outer, right, condition)

let insert ?(columns = []) ?(on_conflict = Ast.No_conflict_clause) table source
  : Ast.stmt =
  Ast.Insert { table; columns; source; on_conflict }

let insert_select ?columns ?on_conflict table q : Ast.stmt =
  insert ?columns ?on_conflict table (Ast.Query q)

let delete ?where table : Ast.stmt = Ast.Delete { table; where }

let coldef ?(not_null = false) name typ : Ast.column_def =
  { Ast.col_name = name; col_type = typ; col_not_null = not_null;
    col_primary_key = false }

let create_table ?(primary_key = []) ?(if_not_exists = false) name columns :
  Ast.stmt =
  Ast.Create_table { table = name; columns; primary_key; if_not_exists }

(** Projection with a mandatory alias, as (expr, Some name). *)
let proj e name = (e, Some name)
