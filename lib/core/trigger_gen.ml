(** Delta-capture trigger DDL for external systems.

    In the cross-system deployment the paper leaves change capture "to the
    user — for PostgreSQL ... users are required to configure these
    triggers independently". This module generates that boilerplate: a
    plpgsql function + row trigger per base table appending OLD/NEW images
    with the boolean multiplicity into the delta table. The strings are
    artifacts for an external PostgreSQL; the embedded engine uses
    [Openivm_engine.Trigger] hooks instead. *)

open Openivm_engine

let capture_function (flags : Flags.t) ~view (base : Shape.table_ref) : string =
  let t = base.Shape.table in
  let delta = Ddl_gen.delta_table_name flags ~view t in
  let cols = Schema.names base.Shape.schema in
  let row_of prefix =
    String.concat ", " (List.map (fun c -> prefix ^ "." ^ c) cols)
  in
  Printf.sprintf
    "CREATE OR REPLACE FUNCTION openivm_capture_%s() RETURNS TRIGGER AS $$\n\
     BEGIN\n\
    \  IF (TG_OP = 'INSERT') THEN\n\
    \    INSERT INTO %s VALUES (%s, TRUE);\n\
    \  ELSIF (TG_OP = 'DELETE') THEN\n\
    \    INSERT INTO %s VALUES (%s, FALSE);\n\
    \  ELSIF (TG_OP = 'UPDATE') THEN\n\
    \    INSERT INTO %s VALUES (%s, FALSE);\n\
    \    INSERT INTO %s VALUES (%s, TRUE);\n\
    \  END IF;\n\
    \  RETURN NULL;\n\
     END $$ LANGUAGE plpgsql;"
    t delta (row_of "NEW") delta (row_of "OLD") delta (row_of "OLD") delta
    (row_of "NEW")

let capture_trigger (base : Shape.table_ref) : string =
  let t = base.Shape.table in
  Printf.sprintf
    "CREATE TRIGGER openivm_%s_capture AFTER INSERT OR UPDATE OR DELETE ON %s\n\
     FOR EACH ROW EXECUTE FUNCTION openivm_capture_%s();"
    t t t

(** (table, DDL text) per base table. *)
let all (flags : Flags.t) (shape : Shape.t) : (string * string) list =
  List.map
    (fun base ->
       ( base.Shape.table,
         capture_function flags ~view:shape.Shape.view_name base ^ "\n"
         ^ capture_trigger base ))
    (Shape.base_tables shape)
