(** Delta-capture trigger DDL for an external PostgreSQL — the
    user-configured capture side of cross-system IVM (paper §2). The
    strings are deployment artifacts; the embedded engine uses
    {!Openivm_engine.Trigger} hooks instead. *)

val capture_function : Flags.t -> view:string -> Shape.table_ref -> string
val capture_trigger : Shape.table_ref -> string

val all : Flags.t -> Shape.t -> (string * string) list
(** (base table, trigger DDL text) per base table. *)
