(** Incremental grouped aggregation over Z-set deltas with retraction
    support.

    State per group: COUNT/SUM are weight-linear and keep running numbers;
    MIN/MAX are *not* linear under deletions, so a per-group multiset
    (value -> multiplicity map) is kept — the executable counterpart of the
    per-group re-derivation the compiled SQL performs for MIN/MAX views. *)

open Openivm_engine

module Value_map = Map.Make (struct
    type t = Value.t
    let compare = Value.compare
  end)

type spec =
  | Count_star
  | Count of (Row.t -> Value.t)
  | Sum of (Row.t -> Value.t)
  | Min of (Row.t -> Value.t)
  | Max of (Row.t -> Value.t)
  | Avg of (Row.t -> Value.t)

type agg_state =
  | Linear of { mutable count : int; mutable sum_f : float; mutable sum_i : int;
                mutable float_mode : bool }
  | Multiset of { mutable values : int Value_map.t }

type group_state = {
  mutable total_weight : int;  (** weight of all rows in the group *)
  states : agg_state array;
}

type t = {
  key_of : Row.t -> Row.t;
  specs : spec array;
  groups : group_state Row.Tbl.t;
}

let create ~(key_of : Row.t -> Row.t) ~(specs : spec list) : t =
  { key_of; specs = Array.of_list specs; groups = Row.Tbl.create 64 }

let make_state = function
  | Count_star | Count _ | Sum _ | Avg _ ->
    Linear { count = 0; sum_f = 0.0; sum_i = 0; float_mode = false }
  | Min _ | Max _ -> Multiset { values = Value_map.empty }

let arg_of spec row : Value.t option =
  match spec with
  | Count_star -> None
  | Count f | Sum f | Min f | Max f | Avg f -> Some (f row)

let update_agg spec st (v : Value.t option) (w : int) =
  match st, spec, v with
  | Linear l, Count_star, None -> l.count <- l.count + w
  | Linear l, Count _, Some v ->
    if not (Value.is_null v) then l.count <- l.count + w
  | Linear l, (Sum _ | Avg _), Some v ->
    (match v with
     | Value.Null -> ()
     | Value.Int i ->
       l.count <- l.count + w;
       if l.float_mode then l.sum_f <- l.sum_f +. float_of_int (w * i)
       else l.sum_i <- l.sum_i + (w * i)
     | Value.Float f ->
       l.count <- l.count + w;
       if not l.float_mode then begin
         l.float_mode <- true;
         l.sum_f <- float_of_int l.sum_i
       end;
       l.sum_f <- l.sum_f +. (float_of_int w *. f)
     | _ -> Error.fail "SUM/AVG over non-numeric value")
  | Multiset m, (Min _ | Max _), Some v ->
    if not (Value.is_null v) then begin
      let current = Option.value (Value_map.find_opt v m.values) ~default:0 in
      let updated = current + w in
      m.values <-
        (if updated = 0 then Value_map.remove v m.values
         else Value_map.add v updated m.values)
    end
  | _ -> Error.fail "aggregate/state mismatch"

let finalize_agg spec st : Value.t =
  match st, spec with
  | Linear l, (Count_star | Count _) -> Value.Int l.count
  | Linear l, Sum _ ->
    if l.count = 0 then Value.Null
    else if l.float_mode then Value.Float l.sum_f
    else Value.Int l.sum_i
  | Linear l, Avg _ ->
    if l.count = 0 then Value.Null
    else
      let total = if l.float_mode then l.sum_f else float_of_int l.sum_i in
      Value.Float (total /. float_of_int l.count)
  | Multiset m, Min _ ->
    (match Value_map.min_binding_opt m.values with
     | Some (v, _) -> v
     | None -> Value.Null)
  | Multiset m, Max _ ->
    (match Value_map.max_binding_opt m.values with
     | Some (v, _) -> v
     | None -> Value.Null)
  | _ -> Error.fail "aggregate/state mismatch"

let output_row key (g : group_state) (specs : spec array) : Row.t =
  Array.append key (Array.mapi (fun i st -> finalize_agg specs.(i) st) g.states)

(** Apply a delta; returns the delta of the aggregate's output Z-set
    (old group rows retracted with weight -1, new ones asserted with +1). *)
let step (t : t) (delta : Zset.t) : Zset.t =
  (* collect old output rows of the groups this delta touches *)
  let touched : Row.t list Row.Tbl.t = Row.Tbl.create 16 in
  let old_outputs : (Row.t * Row.t option) list ref = ref [] in
  Zset.iter
    (fun row _ ->
       let key = t.key_of row in
       if not (Row.Tbl.mem touched key) then begin
         Row.Tbl.replace touched key [];
         let old_out =
           match Row.Tbl.find_opt t.groups key with
           | Some g when g.total_weight > 0 -> Some (output_row key g t.specs)
           | _ -> None
         in
         old_outputs := (key, old_out) :: !old_outputs
       end)
    delta;
  (* apply the delta to group states *)
  Zset.iter
    (fun row w ->
       let key = t.key_of row in
       let g =
         match Row.Tbl.find_opt t.groups key with
         | Some g -> g
         | None ->
           let g =
             { total_weight = 0;
               states = Array.map make_state t.specs }
           in
           Row.Tbl.replace t.groups key g;
           g
       in
       g.total_weight <- g.total_weight + w;
       Array.iteri
         (fun i spec -> update_agg spec g.states.(i) (arg_of spec row) w)
         t.specs)
    delta;
  (* emit output delta *)
  let out = Zset.create () in
  List.iter
    (fun (key, old_out) ->
       let new_out =
         match Row.Tbl.find_opt t.groups key with
         | Some g when g.total_weight > 0 -> Some (output_row key g t.specs)
         | Some g ->
           if g.total_weight = 0 then Row.Tbl.remove t.groups key;
           None
         | None -> None
       in
       (match old_out, new_out with
        | Some o, Some n when Row.equal o n -> ()
        | _ ->
          (match old_out with Some o -> Zset.add out o (-1) | None -> ());
          (match new_out with Some n -> Zset.add out n 1 | None -> ())))
    !old_outputs;
  out

(** Current full output (for checks). *)
let snapshot (t : t) : Zset.t =
  let out = Zset.create () in
  Row.Tbl.iter
    (fun key g ->
       if g.total_weight > 0 then Zset.add out (output_row key g t.specs) 1)
    t.groups;
  out
