(** Incremental grouped aggregation over Z-set deltas with retraction
    support. COUNT/SUM/AVG are weight-linear; MIN/MAX keep a per-group
    value multiset so deletions of the current extremum are exact. *)

open Openivm_engine

type spec =
  | Count_star
  | Count of (Row.t -> Value.t)
  | Sum of (Row.t -> Value.t)
  | Min of (Row.t -> Value.t)
  | Max of (Row.t -> Value.t)
  | Avg of (Row.t -> Value.t)

type t

val create : key_of:(Row.t -> Row.t) -> specs:spec list -> t

val step : t -> Zset.t -> Zset.t
(** Apply an input delta; returns the output delta (old group rows with
    weight −1, new group rows with +1). A group exists while its total
    row weight is positive. *)

val snapshot : t -> Zset.t
(** Current full output. *)
