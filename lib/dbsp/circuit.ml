(** Compile a logical plan into an incremental circuit: a stateful function
    from per-table input deltas to the view's output delta.

    This is the executable embodiment of DBSP's incrementalization theorem
    and serves two purposes in the reproduction: (i) it grounds the SQL
    rewrite rules of the OpenIVM compiler (each template corresponds to an
    operator here), and (ii) it is an independent *oracle* — property tests
    check that compiled-SQL propagation, this circuit, and full
    recomputation agree on random workloads. *)

open Openivm_engine

module String_map = Map.Make (String)

type inputs = Zset.t String_map.t

type t = {
  step : inputs -> Zset.t;
  tables : string list;  (** base tables the circuit listens to *)
}

let empty_zset = Zset.create ()

let input_delta (inputs : inputs) table =
  match String_map.find_opt table inputs with
  | Some z -> z
  | None -> empty_zset

let compile_projection schema projections : Row.t -> Row.t =
  let compiled =
    Array.of_list (List.map (fun (e, _) -> Expr.compile schema e) projections)
  in
  fun row -> Array.map (fun c -> c row) compiled

let spec_of_agg schema (a : Plan.agg_spec) : Aggregate.spec =
  let arg f = Expr.compile schema f in
  if a.Plan.distinct then
    Error.fail "DISTINCT aggregates are not supported incrementally";
  match a.Plan.agg, a.Plan.arg with
  | Sql.Ast.Count, None -> Aggregate.Count_star
  | Sql.Ast.Count, Some e -> Aggregate.Count (arg e)
  | Sql.Ast.Sum, Some e -> Aggregate.Sum (arg e)
  | Sql.Ast.Min, Some e -> Aggregate.Min (arg e)
  | Sql.Ast.Max, Some e -> Aggregate.Max (arg e)
  | Sql.Ast.Avg, Some e -> Aggregate.Avg (arg e)
  | (Sql.Ast.Sum | Sql.Ast.Min | Sql.Ast.Max | Sql.Ast.Avg), None ->
    Error.fail "only COUNT accepts *"

let rec compile_node ~lookup (plan : Plan.t) : inputs -> Zset.t =
  let schema_of p = Plan.schema_of ~lookup p in
  match plan with
  | Plan.Scan { table; _ } -> fun inputs -> input_delta inputs table
  | Plan.Index_scan _ ->
    (* index lookups make no sense over delta streams; circuits are
       compiled from unoptimized plans, which never contain them *)
    Error.fail "internal: Index_scan reached the circuit compiler"
  | Plan.Filter { input; predicate } ->
    let step = compile_node ~lookup input in
    let c = Expr.compile (schema_of input) predicate in
    let op = Operator.filter (fun row -> Expr.is_true (c row)) in
    fun inputs -> op (step inputs)
  | Plan.Project { input; projections; _ } ->
    let step = compile_node ~lookup input in
    let op = Operator.map (compile_projection (schema_of input) projections) in
    fun inputs -> op (step inputs)
  | Plan.Join { left; right; kind; condition } ->
    (match kind with
     | Sql.Ast.Inner | Sql.Ast.Cross -> ()
     | Sql.Ast.Left_outer | Sql.Ast.Right_outer | Sql.Ast.Full_outer ->
       Error.fail "outer joins are not supported incrementally");
    let lstep = compile_node ~lookup left in
    let rstep = compile_node ~lookup right in
    let ls = schema_of left and rs = schema_of right in
    let keys, residual = Exec.split_join_condition ls rs condition in
    let lkeys =
      List.map (fun k -> Expr.compile ls k.Exec.left_expr) keys
    in
    let rkeys =
      List.map (fun k -> Expr.compile rs k.Exec.right_expr) keys
    in
    let strict =
      Array.of_list (List.map (fun k -> not k.Exec.nullsafe) keys)
    in
    let key_of compiled row : Row.t =
      Array.of_list (List.map (fun c -> c row) compiled)
    in
    (* SQL semantics: NULL join keys never match (unless NULL-safe); encode
       offending NULLs with per-side sentinels so they cannot meet *)
    let sentinel tag (k : Row.t) : Row.t =
      let bad = ref false in
      Array.iteri
        (fun i v -> if strict.(i) && Value.is_null v then bad := true)
        k;
      if !bad then [| Value.Str tag |] else k
    in
    let join_op =
      Operator.join
        ~left_key:(fun row -> sentinel "\x00L" (key_of lkeys row))
        ~right_key:(fun row -> sentinel "\x00R" (key_of rkeys row))
        ~output:Row.concat
    in
    let post =
      match residual with
      | [] -> fun z -> z
      | cs ->
        let joined_schema = Schema.join ls rs in
        let c = Expr.compile joined_schema (Optimizer.conjoin cs) in
        Operator.filter (fun row -> Expr.is_true (c row))
    in
    fun inputs -> post (join_op (lstep inputs) (rstep inputs))
  | Plan.Aggregate { input; group_exprs; aggs } ->
    let step = compile_node ~lookup input in
    let schema = schema_of input in
    let group_compiled =
      Array.of_list (List.map (fun (e, _) -> Expr.compile schema e) group_exprs)
    in
    let key_of row = Array.map (fun c -> c row) group_compiled in
    let specs = List.map (spec_of_agg schema) aggs in
    let op = Operator.aggregate ~key_of ~specs in
    (* a global aggregate (no GROUP BY) over an empty table yields one row
       in SQL but an empty Z-set here; the runner special-cases it *)
    fun inputs -> op (step inputs)
  | Plan.Distinct input ->
    let step = compile_node ~lookup input in
    let op = Operator.distinct () in
    fun inputs -> op (step inputs)
  | Plan.Sort { input; _ } | Plan.Limit { input; limit = None; offset = None; _ } ->
    (* ordering is irrelevant in Z-set semantics *)
    compile_node ~lookup input
  | Plan.Limit _ -> Error.fail "LIMIT views are not supported incrementally"
  | Plan.Set_op { op = Sql.Ast.Union_all; left; right } ->
    let l = compile_node ~lookup left and r = compile_node ~lookup right in
    fun inputs -> Operator.union (l inputs) (r inputs)
  | Plan.Set_op { op = Sql.Ast.Union; left; right } ->
    let l = compile_node ~lookup left and r = compile_node ~lookup right in
    let d = Operator.distinct () in
    fun inputs -> d (Operator.union (l inputs) (r inputs))
  | Plan.Set_op { op = Sql.Ast.Except; left; right } ->
    (* set difference: distinct(A) minus-membership distinct(B) is not
       linear; keep both integrals via distinct on each side *)
    let l = compile_node ~lookup left and r = compile_node ~lookup right in
    let dl = Operator.distinct () and dr = Operator.distinct () in
    let final = Operator.distinct () in
    fun inputs ->
      let a = dl (l inputs) and b = dr (r inputs) in
      (* a, b are deltas of the distinct sets; A - B in Z-set land *)
      final (Zset.minus a b)
  | Plan.Set_op { op = Sql.Ast.Intersect; _ } ->
    Error.fail "INTERSECT views are not supported incrementally"
  | Plan.Materialized { rows; _ } ->
    (* constant input: appears in full at the first step, never changes *)
    let emitted = ref false in
    fun _ ->
      if !emitted then empty_zset
      else begin
        emitted := true;
        Zset.of_rows rows
      end

(** Compile [query] against [catalog] into a circuit. The *unoptimized*
    plan is used: physical choices like index scans do not apply to delta
    streams, and the circuit operators are already positional. *)
let of_select (catalog : Catalog.t) (query : Sql.Ast.select) : t =
  let plan = Planner.plan catalog query in
  let lookup table = (Catalog.find_table catalog table).Table.schema in
  { step = compile_node ~lookup plan; tables = Plan.base_tables plan }

let of_sql (catalog : Catalog.t) (sql : string) : t =
  of_select catalog (Sql.Parser.parse_select sql)

(** Convenience: feed one step of deltas given as (table, rows, weight)
    triples. *)
let step (c : t) (deltas : (string * Row.t list * int) list) : Zset.t =
  let inputs =
    List.fold_left
      (fun m (table, rows, w) ->
         let z =
           match String_map.find_opt table m with
           | Some z -> z
           | None -> Zset.create ()
         in
         List.iter (fun row -> Zset.add z row w) rows;
         String_map.add table z m)
      String_map.empty deltas
  in
  c.step inputs
