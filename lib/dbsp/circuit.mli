(** Compile a view query into an incremental circuit: a stateful function
    from per-table input deltas to the view's output delta — the
    executable embodiment of DBSP's incrementalization, used both to
    ground the SQL rewrite templates and as an independent oracle in the
    property tests. *)

open Openivm_engine

module String_map : Map.S with type key = string

type inputs = Zset.t String_map.t

type t = {
  step : inputs -> Zset.t;
  tables : string list;  (** base tables the circuit listens to *)
}

val of_select : Catalog.t -> Sql.Ast.select -> t
(** Raises {!Openivm_engine.Error.Sql_error} for constructs with no
    incremental form here (outer joins, LIMIT, INTERSECT, DISTINCT
    aggregates). *)

val of_sql : Catalog.t -> string -> t

val step : t -> (string * Row.t list * int) list -> Zset.t
(** Feed one step of deltas given as (table, rows, weight) triples. *)
