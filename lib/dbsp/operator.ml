(** Incremental forms of the relational operators (DBSP §4; paper §2):

    - selection and projection are linear: their incremental form is
      themselves applied to the delta;
    - join is bilinear: its incremental form expands to *three* joins,
        d(A ⋈ B) = dA ⋈ B  +  A ⋈ dB  +  dA ⋈ dB,
      requiring integrated copies of both inputs as operator state;
    - distinct and aggregation are stateful (see [Aggregate]).

    Each operator is a stateful single-step delta transformer. *)

open Openivm_engine

type unary = Zset.t -> Zset.t
type binary = Zset.t -> Zset.t -> Zset.t

(** Incremental selection: stateless. *)
let filter (p : Row.t -> bool) : unary = Zset.filter p

(** Incremental projection (may merge rows; weights add): stateless. *)
let map (f : Row.t -> Row.t) : unary = Zset.map f

(** Composition of delta transformers. *)
let ( >>> ) (f : unary) (g : unary) : unary = fun d -> g (f d)

(** Incremental join. Keeps I(A) and I(B); on (dA, dB) emits
    dA ⋈ B_old + A_old ⋈ dB + dA ⋈ dB and then integrates the deltas. *)
let join ~(left_key : Row.t -> Row.t) ~(right_key : Row.t -> Row.t)
    ~(output : Row.t -> Row.t -> Row.t) : binary =
  let acc_left = Zset.create () in
  let acc_right = Zset.create () in
  let j = Zset.join ~left_key ~right_key ~output in
  fun d_left d_right ->
    let part1 = j d_left acc_right in
    let part2 = j acc_left d_right in
    let part3 = j d_left d_right in
    Zset.accumulate ~into:acc_left d_left;
    Zset.accumulate ~into:acc_right d_right;
    Zset.plus (Zset.plus part1 part2) part3

(** Incremental distinct: output delta keeps the integrated input and the
    integrated output set, emitting +1/-1 when membership flips. *)
let distinct () : unary =
  let acc = Zset.create () in
  fun delta ->
    let out = Zset.create () in
    Zset.iter
      (fun row w ->
         let before = Zset.weight acc row in
         let after = before + w in
         Zset.add acc row w;
         if before <= 0 && after > 0 then Zset.add out row 1
         else if before > 0 && after <= 0 then Zset.add out row (-1))
      delta;
    out

(** Incremental grouped aggregation (see [Aggregate] for state details). *)
let aggregate ~key_of ~specs : unary =
  let st = Aggregate.create ~key_of ~specs in
  fun delta -> Aggregate.step st delta

(** Union is linear: deltas add. *)
let union : binary = Zset.plus

(** Difference (EXCEPT ALL) is linear: d(A - B) = dA - dB. *)
let difference : binary = fun da db -> Zset.minus da db
