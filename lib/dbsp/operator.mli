(** Incremental forms of the relational operators (DBSP §4 / paper §2):
    selection and projection are linear (they run unchanged on deltas);
    join is bilinear and expands to three joins with integrated state;
    distinct and aggregation are stateful. Every operator is a stateful
    single-step delta transformer. *)

open Openivm_engine

type unary = Zset.t -> Zset.t
type binary = Zset.t -> Zset.t -> Zset.t

val filter : (Row.t -> bool) -> unary
val map : (Row.t -> Row.t) -> unary
val ( >>> ) : unary -> unary -> unary

val join :
  left_key:(Row.t -> Row.t) ->
  right_key:(Row.t -> Row.t) ->
  output:(Row.t -> Row.t -> Row.t) ->
  binary
(** d(A ⋈ B) = dA ⋈ B + A ⋈ dB + dA ⋈ dB, keeping I(A) and I(B) inside. *)

val distinct : unit -> unary
(** Emits ±1 exactly when set membership flips. *)

val aggregate :
  key_of:(Row.t -> Row.t) -> specs:Aggregate.spec list -> unary
(** Grouped aggregation with retraction support; the output delta retracts
    a group's old row and asserts its new one. *)

val union : binary
val difference : binary
