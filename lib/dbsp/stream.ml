(** Streams of Z-sets and the two DBSP stream operators:

    - differentiation  D(s)_t = s_t - s_(t-1)
    - integration      I(s)_t = sum_(i<=t) s_i

    which satisfy D(I(s)) = s and I(D(s)) = s. Streams are finite here
    (lists indexed by time), which is all the tests and the compiler need:
    the runner applies the single-step versions ([step_*]) online. *)

type t = Zset.t list

let differentiate (s : t) : t =
  let rec go prev = function
    | [] -> []
    | z :: rest -> Zset.minus z prev :: go z rest
  in
  go (Zset.create ()) s

let integrate (s : t) : t =
  let rec go acc = function
    | [] -> []
    | z :: rest ->
      let acc = Zset.plus acc z in
      acc :: go acc rest
  in
  go (Zset.create ()) s

(** Stateful single-step integrator: feed deltas, read the running sum. *)
type integrator = { state : Zset.t }

let integrator () = { state = Zset.create () }

let step_integrate (i : integrator) (delta : Zset.t) : Zset.t =
  Zset.accumulate ~into:i.state delta;
  i.state

(** Stateful single-step differentiator: feed snapshots, read deltas. *)
type differentiator = { mutable previous : Zset.t }

let differentiator () = { previous = Zset.create () }

let step_differentiate (d : differentiator) (snapshot : Zset.t) : Zset.t =
  let delta = Zset.minus snapshot d.previous in
  d.previous <- Zset.copy snapshot;
  delta

(** Pointwise lifting of a Z-set operator to streams. *)
let lift (f : Zset.t -> Zset.t) (s : t) : t = List.map f s

let lift2 (f : Zset.t -> Zset.t -> Zset.t) (a : t) (b : t) : t =
  List.map2 f a b
