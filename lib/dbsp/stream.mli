(** Streams of Z-sets and the two DBSP stream operators: differentiation
    [D(s)_t = s_t - s_(t-1)] and integration [I(s)_t = sum_(i<=t) s_i],
    mutually inverse. Finite streams (lists) for the algebra; the
    [step_*] forms are the online single-step versions the runner uses. *)

type t = Zset.t list

val differentiate : t -> t
val integrate : t -> t

type integrator
val integrator : unit -> integrator
val step_integrate : integrator -> Zset.t -> Zset.t
(** Feed a delta, read the running sum (shared, do not mutate). *)

type differentiator
val differentiator : unit -> differentiator
val step_differentiate : differentiator -> Zset.t -> Zset.t
(** Feed a snapshot, read the delta against the previous snapshot. *)

val lift : (Zset.t -> Zset.t) -> t -> t
val lift2 : (Zset.t -> Zset.t -> Zset.t) -> t -> t -> t
