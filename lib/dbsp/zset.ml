(** Z-sets: multisets with (possibly negative) integer weights, the carrier
    of DBSP (Budiu et al., 2022). A database table is a Z-set with all
    weights positive; a *delta* is a Z-set where positive weights are
    insertions and negative weights deletions — exactly what the paper's
    boolean [_ivm_multiplicity] column encodes (true = +1, false = -1). *)

open Openivm_engine

type t = {
  weights : int Row.Tbl.t;
}

let create ?(size = 16) () = { weights = Row.Tbl.create size }

let weight z (row : Row.t) : int =
  match Row.Tbl.find_opt z.weights row with Some w -> w | None -> 0

(** Adjust a row's weight; entries at weight zero are removed, keeping the
    representation canonical. *)
let add z (row : Row.t) (w : int) : unit =
  if w <> 0 then begin
    let current = weight z row in
    let updated = current + w in
    if updated = 0 then Row.Tbl.remove z.weights row
    else Row.Tbl.replace z.weights row updated
  end

let cardinality z = Row.Tbl.length z.weights
let is_empty z = cardinality z = 0

let iter f z = Row.Tbl.iter f z.weights
let fold f z init = Row.Tbl.fold f z.weights init

let to_list z =
  List.sort
    (fun (a, _) (b, _) -> Row.compare a b)
    (fold (fun row w acc -> (row, w) :: acc) z [])

let of_list bindings =
  let z = create () in
  List.iter (fun (row, w) -> add z row w) bindings;
  z

(** A table snapshot as a Z-set (every row weight +1; duplicates add up). *)
let of_rows rows =
  let z = create ~size:(List.length rows + 1) () in
  List.iter (fun row -> add z row 1) rows;
  z

let copy z =
  { weights = Row.Tbl.copy z.weights }

let equal a b =
  cardinality a = cardinality b
  && (try
        iter (fun row w -> if weight b row <> w then raise Exit) a;
        true
      with Exit -> false)

(* --- linear operations --- *)

(** z1 + z2 (weights add). Copies the larger operand and folds the smaller
    one in, so the hash-table copy is always the cheap side. *)
let plus a b =
  let big, small = if cardinality a >= cardinality b then (a, b) else (b, a) in
  let z = copy big in
  iter (fun row w -> add z row w) small;
  z

(** -z. *)
let negate a =
  let z = create ~size:(cardinality a) () in
  iter (fun row w -> add z row (-w)) a;
  z

(** z1 - z2, in one pass: fold b's weights in negated instead of building
    a full negated copy first (this sits on the per-tick consolidation
    path). *)
let minus a b =
  let z = copy a in
  iter (fun row w -> add z row (-w)) b;
  z

(** In-place accumulation: [into += delta]. This is the integration
    operator I applied one step at a time. *)
let accumulate ~into delta = iter (fun row w -> add into row w) delta

(* --- partitioning (the multicore refresh carrier) --- *)

(** Hash-partition into [parts] shards by [key] (default: the whole row).
    Z-sets partition cleanly (DBSP): every linear operator distributes over
    the shards, so sharded deltas can be propagated independently and
    {!merge}d back by signed addition. The shard function is
    [Row.hash (key row) mod parts] — deterministic for a given row, and
    rows that compare equal under the engine's numeric-coercing equality
    hash alike ({!Openivm_engine.Value.hash}), so equal group keys always
    colocate. *)
let partition ?key ~parts z =
  if parts <= 0 then invalid_arg "Zset.partition: parts must be positive";
  let key = match key with Some f -> f | None -> Fun.id in
  let shards =
    Array.init parts (fun _ ->
        create ~size:(cardinality z / parts + 1) ())
  in
  iter
    (fun row w ->
       let h = Row.hash (key row) land max_int in
       add shards.(h mod parts) row w)
    z;
  shards

(** Signed union of per-shard results: weights add across shards. The
    inverse of {!partition} (up to re-consolidation: a row emitted by
    several shards nets to one entry). *)
let merge (shards : t array) : t =
  let total = Array.fold_left (fun acc s -> acc + cardinality s) 0 shards in
  let z = create ~size:(total + 1) () in
  Array.iter (fun s -> accumulate ~into:z s) shards;
  z

(* --- operators (all weight-linear except [distinct]) --- *)

let map (f : Row.t -> Row.t) z =
  let out = create ~size:(cardinality z) () in
  iter (fun row w -> add out (f row) w) z;
  out

let filter (p : Row.t -> bool) z =
  let out = create ~size:(cardinality z) () in
  iter (fun row w -> if p row then add out row w) z;
  out

(** DBSP's distinct: weight 1 for every element with positive weight. The
    only non-linear operator needed for set semantics. *)
let distinct z =
  let out = create ~size:(cardinality z) () in
  iter (fun row w -> if w > 0 then add out row 1) z;
  out

(** Positive / negative parts, used when lowering a delta Z-set to the
    boolean-multiplicity encoding of the compiled SQL. *)
let positive z =
  let out = create () in
  iter (fun row w -> if w > 0 then add out row w) z;
  out

let negative z =
  let out = create () in
  iter (fun row w -> if w < 0 then add out row (-w)) z;
  out

(** Bilinear join: weights multiply. [key] functions map rows to join keys;
    [output] combines a left and a right row. *)
let join ~(left_key : Row.t -> Row.t) ~(right_key : Row.t -> Row.t)
    ~(output : Row.t -> Row.t -> Row.t) (a : t) (b : t) : t =
  let out = create () in
  if is_empty a || is_empty b then out
  else begin
    (* hash the smaller side *)
    let build, probe, build_key, probe_key, combine =
      if cardinality a <= cardinality b then
        (a, b, left_key, right_key, fun brow prow -> output brow prow)
      else (b, a, right_key, left_key, fun brow prow -> output prow brow)
    in
    let index : (Row.t * int) list Row.Tbl.t = Row.Tbl.create (cardinality build) in
    iter
      (fun row w ->
         let k = build_key row in
         let existing = try Row.Tbl.find index k with Not_found -> [] in
         Row.Tbl.replace index k ((row, w) :: existing))
      build;
    iter
      (fun prow pw ->
         let k = probe_key prow in
         match Row.Tbl.find_opt index k with
         | None -> ()
         | Some matches ->
           List.iter
             (fun (brow, bw) -> add out (combine brow prow) (bw * pw))
             matches)
      probe;
    out
  end

(** Rows with positive weight, expanded to [w] copies — converts a Z-set
    back to a bag of rows ("tuples with frequency N are modeled with N
    copies", paper §2). Raises if any weight is negative. *)
let to_rows_exn z =
  fold
    (fun row w acc ->
       if w < 0 then
         Error.fail "Z-set has negative weight %d for row %s" w (Row.to_string row)
       else
         let rec rep n acc = if n = 0 then acc else rep (n - 1) (row :: acc) in
         rep w acc)
    z []

let to_string z =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (row, w) -> Printf.sprintf "%s -> %+d" (Row.to_string row) w)
         (to_list z))
  ^ "}"
