(** Z-sets: multisets with (possibly negative) integer weights, the carrier
    of DBSP. A table snapshot is a Z-set with positive weights; a *delta*
    is a Z-set whose positive weights are insertions and negative weights
    deletions — what the paper's boolean multiplicity column encodes. The
    representation is canonical: rows never carry weight zero. *)

open Openivm_engine

type t

val create : ?size:int -> unit -> t

val weight : t -> Row.t -> int
val add : t -> Row.t -> int -> unit
(** Adjust a row's weight (adding 0 is a no-op; weights reaching 0 drop
    the row). *)

val cardinality : t -> int
(** Number of distinct rows with non-zero weight. *)

val is_empty : t -> bool

val iter : (Row.t -> int -> unit) -> t -> unit
val fold : (Row.t -> int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val to_list : t -> (Row.t * int) list
(** Sorted by row, for deterministic output. *)

val of_list : (Row.t * int) list -> t
val of_rows : Row.t list -> t
(** Each row with weight +1; duplicates accumulate. *)

val copy : t -> t
val equal : t -> t -> bool

val plus : t -> t -> t
val negate : t -> t
val minus : t -> t -> t
val accumulate : into:t -> t -> unit
(** [accumulate ~into delta] is single-step integration: [into += delta]. *)

val partition : ?key:(Row.t -> Row.t) -> parts:int -> t -> t array
(** Deterministic hash-partition into [parts] shards by [key] (default:
    the whole row). Rows with equal keys — under the engine's
    numeric-coercing equality — always land in the same shard, so a
    group/join key function yields shards that can be propagated
    independently. Raises [Invalid_argument] when [parts <= 0]. *)

val merge : t array -> t
(** Signed union of per-shard results (weights add): the inverse of
    {!partition}, and the merge step of parallel propagation. *)

val map : (Row.t -> Row.t) -> t -> t
(** Weight-linear; rows mapping to the same image merge their weights. *)

val filter : (Row.t -> bool) -> t -> t

val distinct : t -> t
(** DBSP distinct: weight 1 for every row with positive weight. *)

val positive : t -> t
val negative : t -> t
(** Positive / negative parts ([t = positive t - negative t]), used when
    lowering to the boolean-multiplicity encoding. *)

val join :
  left_key:(Row.t -> Row.t) ->
  right_key:(Row.t -> Row.t) ->
  output:(Row.t -> Row.t -> Row.t) ->
  t -> t -> t
(** Bilinear join: weights multiply; the smaller side is hashed. *)

val to_rows_exn : t -> Row.t list
(** Expand to a bag (weight-many copies per row). Raises
    {!Openivm_engine.Error.Sql_error} on negative weights. *)

val to_string : t -> string
