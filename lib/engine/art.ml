(** Adaptive Radix Tree (Leis et al., ICDE 2013), the index structure DuckDB
    uses for primary keys and that the paper builds over materialized
    aggregates to support INSERT OR REPLACE upserts.

    Keys are arbitrary byte strings; internally every key is rewritten into
    a prefix-free form (0x00 escaped as 0x00 0xFF, terminated by 0x00 0x01,
    both order-preserving), so no stored key is a proper prefix of another
    and the classic ART invariants hold unconditionally.

    Node types: Node4 and Node16 keep a sorted key-byte array parallel to a
    child array; Node48 keeps a 256-entry byte->slot map; Node256 is a
    direct array. Inner nodes carry a compressed path ([prefix]).

    Besides point operations the module provides [of_sorted] (bulk build)
    and [merge] (structural union of two trees), the two primitives behind
    the paper's observation that "it is more efficient to build small
    indexes for each chunk and merge them". *)

type 'a node =
  | Leaf of 'a leaf
  | Inner of 'a inner

and 'a leaf = { key : string; mutable value : 'a }

and 'a inner = {
  mutable prefix : string;
  mutable kind : kind;
  mutable count : int;
  mutable keys : Bytes.t;
  mutable children : 'a node option array;
}

and kind = N4 | N16 | N48 | N256

type 'a t = { mutable root : 'a node option; mutable size : int }

let create () = { root = None; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* --- prefix-free internal key encoding --- *)

let internal_key (raw : string) : string =
  let buf = Buffer.create (String.length raw + 2) in
  String.iter
    (fun c ->
       if c = '\x00' then begin
         Buffer.add_char buf '\x00';
         Buffer.add_char buf '\xff'
       end
       else Buffer.add_char buf c)
    raw;
  Buffer.add_char buf '\x00';
  Buffer.add_char buf '\x01';
  Buffer.contents buf

let external_key (ik : string) : string =
  let buf = Buffer.create (String.length ik) in
  let n = String.length ik - 2 in
  let i = ref 0 in
  while !i < n do
    if ik.[!i] = '\x00' && !i + 1 < n && ik.[!i + 1] = '\xff' then begin
      Buffer.add_char buf '\x00';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf ik.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* --- node constructors --- *)

let capacity = function N4 -> 4 | N16 -> 16 | N48 -> 48 | N256 -> 256

let make_inner ?(kind = N4) prefix =
  let keys =
    match kind with
    | N4 | N16 -> Bytes.make (capacity kind) '\x00'
    | N48 -> Bytes.make 256 '\xff'
    | N256 -> Bytes.empty
  in
  { prefix; kind; count = 0; keys; children = Array.make (match kind with N4 -> 4 | N16 -> 16 | N48 -> 48 | N256 -> 256) None }

(* --- uniform child accessors --- *)

let child_get (inn : 'a inner) (b : int) : 'a node option =
  match inn.kind with
  | N4 | N16 ->
    let rec scan i =
      if i >= inn.count then None
      else if Char.code (Bytes.get inn.keys i) = b then inn.children.(i)
      else scan (i + 1)
    in
    scan 0
  | N48 ->
    let slot = Char.code (Bytes.get inn.keys b) in
    if slot = 0xff then None else inn.children.(slot)
  | N256 -> inn.children.(b)

let grow (inn : 'a inner) =
  match inn.kind with
  | N4 | N16 ->
    let new_kind = if inn.kind = N4 then N16 else N48 in
    let fresh = make_inner ~kind:new_kind inn.prefix in
    if new_kind = N16 then begin
      Bytes.blit inn.keys 0 fresh.keys 0 inn.count;
      Array.blit inn.children 0 fresh.children 0 inn.count
    end
    else
      for i = 0 to inn.count - 1 do
        let b = Char.code (Bytes.get inn.keys i) in
        Bytes.set fresh.keys b (Char.chr i);
        fresh.children.(i) <- inn.children.(i)
      done;
    fresh.count <- inn.count;
    inn.kind <- fresh.kind;
    inn.keys <- fresh.keys;
    inn.children <- fresh.children
  | N48 ->
    let fresh = make_inner ~kind:N256 inn.prefix in
    for b = 0 to 255 do
      let slot = Char.code (Bytes.get inn.keys b) in
      if slot <> 0xff then fresh.children.(b) <- inn.children.(slot)
    done;
    fresh.count <- inn.count;
    inn.kind <- N256;
    inn.keys <- fresh.keys;
    inn.children <- fresh.children
  | N256 -> invalid_arg "Art.grow: Node256 cannot grow"

(** Insert or replace the child at byte [b]. *)
let rec child_set (inn : 'a inner) (b : int) (node : 'a node) : unit =
  match inn.kind with
  | N4 | N16 ->
    let rec find i =
      if i >= inn.count then None
      else if Char.code (Bytes.get inn.keys i) = b then Some i
      else find (i + 1)
    in
    (match find 0 with
     | Some i -> inn.children.(i) <- Some node
     | None ->
       if inn.count >= capacity inn.kind then begin
         grow inn;
         child_set inn b node
       end
       else begin
         (* keep key bytes sorted for ordered iteration *)
         let pos = ref inn.count in
         while !pos > 0 && Char.code (Bytes.get inn.keys (!pos - 1)) > b do
           Bytes.set inn.keys !pos (Bytes.get inn.keys (!pos - 1));
           inn.children.(!pos) <- inn.children.(!pos - 1);
           decr pos
         done;
         Bytes.set inn.keys !pos (Char.chr b);
         inn.children.(!pos) <- Some node;
         inn.count <- inn.count + 1
       end)
  | N48 ->
    let slot = Char.code (Bytes.get inn.keys b) in
    if slot <> 0xff then inn.children.(slot) <- Some node
    else if inn.count >= 48 then begin
      grow inn;
      child_set inn b node
    end
    else begin
      (* find a free slot; after removals holes may be anywhere *)
      let rec free i = if inn.children.(i) = None then i else free (i + 1) in
      let slot = free 0 in
      inn.children.(slot) <- Some node;
      Bytes.set inn.keys b (Char.chr slot);
      inn.count <- inn.count + 1
    end
  | N256 ->
    if inn.children.(b) = None then inn.count <- inn.count + 1;
    inn.children.(b) <- Some node

let child_remove (inn : 'a inner) (b : int) : unit =
  match inn.kind with
  | N4 | N16 ->
    let rec find i =
      if i >= inn.count then ()
      else if Char.code (Bytes.get inn.keys i) = b then begin
        for j = i to inn.count - 2 do
          Bytes.set inn.keys j (Bytes.get inn.keys (j + 1));
          inn.children.(j) <- inn.children.(j + 1)
        done;
        inn.children.(inn.count - 1) <- None;
        inn.count <- inn.count - 1
      end
      else find (i + 1)
    in
    find 0
  | N48 ->
    let slot = Char.code (Bytes.get inn.keys b) in
    if slot <> 0xff then begin
      inn.children.(slot) <- None;
      Bytes.set inn.keys b '\xff';
      inn.count <- inn.count - 1
    end
  | N256 ->
    if inn.children.(b) <> None then begin
      inn.children.(b) <- None;
      inn.count <- inn.count - 1
    end

(** Iterate children in ascending key-byte order. *)
let child_iter (inn : 'a inner) (f : int -> 'a node -> unit) : unit =
  match inn.kind with
  | N4 | N16 ->
    for i = 0 to inn.count - 1 do
      match inn.children.(i) with
      | Some c -> f (Char.code (Bytes.get inn.keys i)) c
      | None -> ()
    done
  | N48 ->
    for b = 0 to 255 do
      let slot = Char.code (Bytes.get inn.keys b) in
      if slot <> 0xff then
        match inn.children.(slot) with
        | Some c -> f b c
        | None -> ()
    done
  | N256 ->
    for b = 0 to 255 do
      match inn.children.(b) with
      | Some c -> f b c
      | None -> ()
    done

(** The single remaining child of a node with [count = 1]. *)
let only_child (inn : 'a inner) : int * 'a node =
  let found = ref None in
  child_iter inn (fun b c -> if !found = None then found := Some (b, c));
  match !found with
  | Some x -> x
  | None -> invalid_arg "Art.only_child: empty node"

(* --- core operations (on internal keys) --- *)

let common_prefix_len a ofs_a b ofs_b limit =
  let rec go i =
    if i >= limit then i
    else if a.[ofs_a + i] = b.[ofs_b + i] then go (i + 1)
    else i
  in
  go 0

(** Insert [key -> value]; [combine] resolves collisions with an existing
    binding (given old then new value). Returns [true] when a new key was
    added. *)
let rec insert_node (node : 'a node) (key : string) (depth : int)
    ~(combine : 'a -> 'a -> 'a) (value : 'a) : 'a node * bool =
  match node with
  | Leaf l ->
    if String.equal l.key key then begin
      l.value <- combine l.value value;
      (node, false)
    end
    else begin
      (* split: common part of both suffixes becomes the new node's prefix *)
      let limit =
        min (String.length l.key - depth) (String.length key - depth)
      in
      let c = common_prefix_len l.key depth key depth limit in
      let inn = make_inner (String.sub key depth c) in
      child_set inn (Char.code l.key.[depth + c]) (Leaf l);
      child_set inn (Char.code key.[depth + c]) (Leaf { key; value });
      (Inner inn, true)
    end
  | Inner inn ->
    let plen = String.length inn.prefix in
    let limit = min plen (String.length key - depth) in
    let c = common_prefix_len inn.prefix 0 key depth limit in
    if c < plen then begin
      (* prefix mismatch: split the compressed path at [c] *)
      let parent = make_inner (String.sub inn.prefix 0 c) in
      let old_byte = Char.code inn.prefix.[c] in
      inn.prefix <- String.sub inn.prefix (c + 1) (plen - c - 1);
      child_set parent old_byte (Inner inn);
      child_set parent (Char.code key.[depth + c]) (Leaf { key; value });
      (Inner parent, true)
    end
    else begin
      let d = depth + plen in
      let b = Char.code key.[d] in
      match child_get inn b with
      | None ->
        child_set inn b (Leaf { key; value });
        (node, true)
      | Some child ->
        let child', added = insert_node child key (d + 1) ~combine value in
        if child' != child then child_set inn b child';
        (node, added)
    end

let insert_with t ~combine (raw_key : string) (value : 'a) : unit =
  let key = internal_key raw_key in
  match t.root with
  | None ->
    t.root <- Some (Leaf { key; value });
    t.size <- 1
  | Some root ->
    let root', added = insert_node root key 0 ~combine value in
    t.root <- Some root';
    if added then t.size <- t.size + 1

let insert t raw_key value = insert_with t ~combine:(fun _ v -> v) raw_key value

let find t (raw_key : string) : 'a option =
  let key = internal_key raw_key in
  let klen = String.length key in
  let rec go node depth =
    match node with
    | Leaf l -> if String.equal l.key key then Some l.value else None
    | Inner inn ->
      let plen = String.length inn.prefix in
      if depth + plen >= klen then None
      else if
        common_prefix_len inn.prefix 0 key depth plen < plen
      then None
      else
        match child_get inn (Char.code key.[depth + plen]) with
        | None -> None
        | Some child -> go child (depth + plen + 1)
  in
  match t.root with None -> None | Some root -> go root 0

let mem t raw_key = find t raw_key <> None

let remove t (raw_key : string) : bool =
  let key = internal_key raw_key in
  let klen = String.length key in
  let rec go node depth : 'a node option * bool =
    match node with
    | Leaf l ->
      if String.equal l.key key then (None, true) else (Some node, false)
    | Inner inn ->
      let plen = String.length inn.prefix in
      if depth + plen >= klen
         || common_prefix_len inn.prefix 0 key depth plen < plen
      then (Some node, false)
      else begin
        let d = depth + plen in
        let b = Char.code key.[d] in
        match child_get inn b with
        | None -> (Some node, false)
        | Some child ->
          let child', removed = go child (d + 1) in
          if not removed then (Some node, false)
          else begin
            (match child' with
             | Some c -> child_set inn b c
             | None -> child_remove inn b);
            if inn.count = 0 then (None, true)
            else if inn.count = 1 then begin
              (* collapse the path into the single remaining child *)
              match only_child inn with
              | _, Leaf l -> (Some (Leaf l), true)
              | byte, Inner ci ->
                ci.prefix <-
                  inn.prefix ^ String.make 1 (Char.chr byte) ^ ci.prefix;
                (Some (Inner ci), true)
            end
            else (Some node, true)
          end
      end
  in
  match t.root with
  | None -> false
  | Some root ->
    let root', removed = go root 0 in
    t.root <- root';
    if removed then t.size <- t.size - 1;
    removed

(** In-order (ascending raw-key order) iteration. *)
let iter (f : string -> 'a -> unit) (t : 'a t) : unit =
  let rec go = function
    | Leaf l -> f (external_key l.key) l.value
    | Inner inn -> child_iter inn (fun _ c -> go c)
  in
  match t.root with None -> () | Some root -> go root

let fold (f : string -> 'a -> 'acc -> 'acc) (t : 'a t) (init : 'acc) : 'acc =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let min_binding t =
  let rec go = function
    | Leaf l -> Some (external_key l.key, l.value)
    | Inner inn ->
      let first = ref None in
      child_iter inn (fun _ c -> if !first = None then first := Some c);
      (match !first with Some c -> go c | None -> None)
  in
  match t.root with None -> None | Some root -> go root

(* --- bulk build --- *)

(** Build from key-sorted, duplicate-free bindings. O(n) and produces the
    same dense layout a freshly-copied tree would have; significantly
    cheaper than [insert]-ing one by one, which is the effect the index
    benchmark (E2) demonstrates. *)
let of_sorted (bindings : (string * 'a) array) : 'a t =
  let n = Array.length bindings in
  let keys = Array.map (fun (k, _) -> internal_key k) bindings in
  for i = 1 to n - 1 do
    if String.compare keys.(i - 1) keys.(i) >= 0 then
      invalid_arg "Art.of_sorted: keys must be strictly increasing"
  done;
  let rec build lo hi depth : 'a node =
    if hi - lo = 1 then
      Leaf { key = keys.(lo); value = snd bindings.(lo) }
    else begin
      let first = keys.(lo) and last = keys.(hi - 1) in
      let limit =
        min (String.length first - depth) (String.length last - depth)
      in
      let c = common_prefix_len first depth last depth limit in
      let d = depth + c in
      (* count the distinct partition bytes first so the node can be
         allocated at its final kind — bulk build would otherwise pay the
         N4→N16→N48→N256 growth-copy chain on every wide node *)
      let distinct = ref 0 in
      let i = ref lo in
      while !i < hi do
        let b = Char.code keys.(!i).[d] in
        incr distinct;
        incr i;
        while !i < hi && Char.code keys.(!i).[d] = b do incr i done
      done;
      let kind =
        if !distinct <= 4 then N4
        else if !distinct <= 16 then N16
        else if !distinct <= 48 then N48
        else N256
      in
      let inn = make_inner ~kind (String.sub first depth c) in
      (* partition the (sorted) segment by the byte at [d] *)
      let start = ref lo in
      while !start < hi do
        let b = Char.code keys.(!start).[d] in
        let stop = ref (!start + 1) in
        while !stop < hi && Char.code keys.(!stop).[d] = b do incr stop done;
        child_set inn b (build !start !stop (d + 1));
        start := !stop
      done;
      Inner inn
    end
  in
  if n = 0 then create ()
  else { root = Some (build 0 n 0); size = n }

(* --- structural merge --- *)

(** Merge [src] into [dst]. Where the two trees' key spaces are disjoint at
    a node boundary, whole subtrees are linked without being visited —
    this is what makes chunked build-then-merge cheap for sorted or
    range-partitioned chunks. [combine] resolves duplicate keys (given the
    dst value then the src value). *)
let merge ~(combine : 'a -> 'a -> 'a) (dst : 'a t) (src : 'a t) : unit =
  let duplicates = ref 0 in
  let rec insert_subtree (into : 'a node) (sub : 'a node) (depth : int) : 'a node =
    (* generic fallback: walk [sub]'s leaves into [into]; [depth] is the
       tree depth at which [into] hangs, so stored full keys line up *)
    match sub with
    | Leaf l ->
      let node', added = insert_node into l.key depth ~combine l.value in
      if not added then incr duplicates;
      node'
    | Inner inn ->
      let acc = ref into in
      child_iter inn (fun _ c -> acc := insert_subtree !acc c depth);
      !acc
  in
  let rec merge_nodes (a : 'a node) (b : 'a node) (depth : int) : 'a node =
    match a, b with
    | Leaf _, _ -> insert_subtree b a depth
    | _, Leaf _ -> insert_subtree a b depth
    | Inner ia, Inner ib ->
      let pa = ia.prefix and pb = ib.prefix in
      let la = String.length pa and lb = String.length pb in
      let c = common_prefix_len pa 0 pb 0 (min la lb) in
      if c < la && c < lb then begin
        (* disjoint below a fresh split node: link both subtrees *)
        let parent = make_inner (String.sub pa 0 c) in
        let ba = Char.code pa.[c] and bb = Char.code pb.[c] in
        ia.prefix <- String.sub pa (c + 1) (la - c - 1);
        ib.prefix <- String.sub pb (c + 1) (lb - c - 1);
        child_set parent ba (Inner ia);
        child_set parent bb (Inner ib);
        Inner parent
      end
      else if la = lb then begin
        (* identical compressed paths: merge children bytewise *)
        child_iter ib (fun byte cb ->
            match child_get ia byte with
            | None -> child_set ia byte cb
            | Some ca -> child_set ia byte (merge_nodes ca cb (depth + la + 1)));
        Inner ia
      end
      else if la < lb then begin
        (* pa is a proper prefix of pb: descend into ia *)
        let byte = Char.code pb.[la] in
        ib.prefix <- String.sub pb (la + 1) (lb - la - 1);
        (match child_get ia byte with
         | None -> child_set ia byte (Inner ib)
         | Some ca -> child_set ia byte (merge_nodes ca (Inner ib) (depth + la + 1)));
        Inner ia
      end
      else begin
        let byte = Char.code pa.[lb] in
        ia.prefix <- String.sub pa (lb + 1) (la - lb - 1);
        (match child_get ib byte with
         | None -> child_set ib byte (Inner ia)
         | Some cb -> child_set ib byte (merge_nodes cb (Inner ia) (depth + lb + 1)));
        Inner ib
      end
  in
  match dst.root, src.root with
  | _, None -> ()
  | None, Some r ->
    dst.root <- Some r;
    dst.size <- src.size;
    src.root <- None;
    src.size <- 0
  | Some a, Some b ->
    let merged = merge_nodes a b 0 in
    dst.root <- Some merged;
    dst.size <- dst.size + src.size - !duplicates;
    src.root <- None;
    src.size <- 0

(* --- statistics, for EXPLAIN and the benchmarks --- *)

type stats = {
  leaves : int;
  inner4 : int;
  inner16 : int;
  inner48 : int;
  inner256 : int;
  max_depth : int;
}

let stats t =
  let s = ref { leaves = 0; inner4 = 0; inner16 = 0; inner48 = 0; inner256 = 0; max_depth = 0 } in
  let rec go node depth =
    let cur = !s in
    if depth > cur.max_depth then s := { !s with max_depth = depth };
    match node with
    | Leaf _ -> s := { !s with leaves = (!s).leaves + 1 }
    | Inner inn ->
      (match inn.kind with
       | N4 -> s := { !s with inner4 = (!s).inner4 + 1 }
       | N16 -> s := { !s with inner16 = (!s).inner16 + 1 }
       | N48 -> s := { !s with inner48 = (!s).inner48 + 1 }
       | N256 -> s := { !s with inner256 = (!s).inner256 + 1 });
      child_iter inn (fun _ c -> go c (depth + 1))
  in
  (match t.root with Some root -> go root 0 | None -> ());
  !s
