(** Adaptive Radix Tree (Leis et al., ICDE 2013) — the index structure
    DuckDB uses for primary keys and that the paper builds over
    materialized aggregates to support INSERT OR REPLACE upserts.

    Keys are arbitrary byte strings (internally rewritten into a
    prefix-free, order-preserving form). Iteration is in ascending key
    order. Besides point operations the module provides bulk build from
    sorted input and structural merge — the primitives behind the paper's
    observation that building small per-chunk indexes and merging them
    beats per-row insertion. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val insert : 'a t -> string -> 'a -> unit
(** Insert or replace. *)

val insert_with : 'a t -> combine:('a -> 'a -> 'a) -> string -> 'a -> unit
(** Insert; on an existing key the stored value becomes
    [combine old fresh]. *)

val find : 'a t -> string -> 'a option
val mem : 'a t -> string -> bool

val remove : 'a t -> string -> bool
(** Returns whether the key was present. Single-child paths are collapsed
    and nodes shrink back. *)

val iter : (string -> 'a -> unit) -> 'a t -> unit
(** Ascending key order. *)

val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> (string * 'a) list
val min_binding : 'a t -> (string * 'a) option

val of_sorted : (string * 'a) array -> 'a t
(** Bulk build from strictly increasing keys; O(n) and cheaper than
    repeated {!insert}. Raises [Invalid_argument] if keys are not
    strictly increasing. *)

val merge : combine:('a -> 'a -> 'a) -> 'a t -> 'a t -> unit
(** [merge ~combine dst src] moves every binding of [src] into [dst]
    (emptying [src]); disjoint subtrees are linked without being visited.
    Duplicate keys resolve to [combine dst_value src_value]. *)

type stats = {
  leaves : int;
  inner4 : int;
  inner16 : int;
  inner48 : int;
  inner256 : int;
  max_depth : int;
}

val stats : 'a t -> stats
