(** The catalog: named tables, (non-materialized) view definitions, and the
    index namespace. Materialized views are plain tables plus rows in the
    OpenIVM metadata tables, exactly as in the paper ("we store materialized
    views as tables and save their additional properties in metadata
    tables"). *)

type view_def = {
  view_name : string;
  query : Sql.Ast.select;
  sql : string;
}

type mat_view = {
  mat_name : string;
  mat_visible : string list;     (** visible output columns, in order *)
  mat_flat : bool;               (** weighted flat view (hidden row count) *)
  mat_depends_on : string list;  (** base tables and upstream mat views *)
}

type t = {
  tables : (string, Table.t) Hashtbl.t;
  views : (string, view_def) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t;  (** index name -> table name *)
  mat_views : (string, mat_view) Hashtbl.t;
      (** maintained materialized views, keyed by backing-table name *)
}

let create () = {
  tables = Hashtbl.create 16;
  views = Hashtbl.create 16;
  index_owner = Hashtbl.create 16;
  mat_views = Hashtbl.create 16;
}

let table_exists t name = Hashtbl.mem t.tables name
let view_exists t name = Hashtbl.mem t.views name

let find_table t name : Table.t =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> Error.fail "table %S does not exist" name

let find_table_opt t name = Hashtbl.find_opt t.tables name
let find_view_opt t name = Hashtbl.find_opt t.views name

let add_table t (tbl : Table.t) =
  if table_exists t tbl.Table.name || view_exists t tbl.Table.name then
    Error.fail "catalog object %S already exists" tbl.Table.name;
  Hashtbl.replace t.tables tbl.Table.name tbl

let add_view t (v : view_def) =
  if table_exists t v.view_name || view_exists t v.view_name then
    Error.fail "catalog object %S already exists" v.view_name;
  Hashtbl.replace t.views v.view_name v

let drop_table t name ~if_exists =
  match Hashtbl.find_opt t.tables name with
  | Some tbl ->
    List.iter
      (fun ix -> Hashtbl.remove t.index_owner ix.Table.index_name)
      tbl.Table.secondary;
    Hashtbl.remove t.tables name
  | None -> if not if_exists then Error.fail "table %S does not exist" name

let drop_view t name ~if_exists =
  if Hashtbl.mem t.views name then Hashtbl.remove t.views name
  else if not if_exists then Error.fail "view %S does not exist" name

let register_index t ~index_name ~table_name =
  if Hashtbl.mem t.index_owner index_name then
    Error.fail "index %S already exists" index_name;
  Hashtbl.replace t.index_owner index_name table_name

let drop_index t ~index_name ~if_exists =
  match Hashtbl.find_opt t.index_owner index_name with
  | Some table_name ->
    Table.drop_index (find_table t table_name) ~index_name;
    Hashtbl.remove t.index_owner index_name
  | None -> if not if_exists then Error.fail "index %S does not exist" index_name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.views []
  |> List.sort String.compare

(* --- the materialized-view dependency DAG (cascading IVM) --- *)

let find_mat_view t name = Hashtbl.find_opt t.mat_views name
let is_mat_view t name = Hashtbl.mem t.mat_views name

let mat_view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.mat_views []
  |> List.sort String.compare

(** Direct upstream materialized views of [name] (its dependencies that
    are themselves maintained views; base tables are filtered out). *)
let mat_upstreams t name =
  match find_mat_view t name with
  | None -> []
  | Some mv -> List.filter (is_mat_view t) mv.mat_depends_on

(** Maintained views that read [name] directly (as a base table or as an
    upstream view). Sorted for determinism. *)
let mat_dependents t name =
  Hashtbl.fold
    (fun dep mv acc ->
       if List.exists (String.equal name) mv.mat_depends_on then dep :: acc
       else acc)
    t.mat_views []
  |> List.sort String.compare

(** Walk dependency edges from [name] through [depends_on]; return the
    cycle path (ending back at [name]) that registering [name] with those
    dependencies would create, if any. *)
let mat_cycle t ~name ~depends_on : string list option =
  let rec dfs path node =
    if String.equal node name then Some (List.rev (node :: path))
    else
      match find_mat_view t node with
      | None -> None
      | Some mv ->
        List.fold_left
          (fun acc dep ->
             match acc with Some _ -> acc | None -> dfs (node :: path) dep)
          None mv.mat_depends_on
  in
  List.fold_left
    (fun acc dep -> match acc with Some _ -> acc | None -> dfs [] dep)
    None depends_on
  |> Option.map (fun tail -> name :: tail)

let register_mat_view t (mv : mat_view) =
  (match mat_cycle t ~name:mv.mat_name ~depends_on:mv.mat_depends_on with
   | Some cycle ->
     Error.fail "materialized view %S would create a dependency cycle: %s"
       mv.mat_name (String.concat " -> " cycle)
   | None -> ());
  Hashtbl.replace t.mat_views mv.mat_name mv

let unregister_mat_view t name = Hashtbl.remove t.mat_views name

(** All registered maintained views in topological order (upstreams
    first). The registry is kept acyclic by {!register_mat_view}, so this
    always succeeds; ties break on name for determinism. *)
let mat_topo_order t : string list =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter visit (mat_upstreams t name);
      out := name :: !out
    end
  in
  List.iter visit (mat_view_names t);
  List.rev !out
