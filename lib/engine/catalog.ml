(** The catalog: named tables, (non-materialized) view definitions, and the
    index namespace. Materialized views are plain tables plus rows in the
    OpenIVM metadata tables, exactly as in the paper ("we store materialized
    views as tables and save their additional properties in metadata
    tables"). *)

type view_def = {
  view_name : string;
  query : Sql.Ast.select;
  sql : string;
}

type t = {
  tables : (string, Table.t) Hashtbl.t;
  views : (string, view_def) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t;  (** index name -> table name *)
}

let create () = {
  tables = Hashtbl.create 16;
  views = Hashtbl.create 16;
  index_owner = Hashtbl.create 16;
}

let table_exists t name = Hashtbl.mem t.tables name
let view_exists t name = Hashtbl.mem t.views name

let find_table t name : Table.t =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> Error.fail "table %S does not exist" name

let find_table_opt t name = Hashtbl.find_opt t.tables name
let find_view_opt t name = Hashtbl.find_opt t.views name

let add_table t (tbl : Table.t) =
  if table_exists t tbl.Table.name || view_exists t tbl.Table.name then
    Error.fail "catalog object %S already exists" tbl.Table.name;
  Hashtbl.replace t.tables tbl.Table.name tbl

let add_view t (v : view_def) =
  if table_exists t v.view_name || view_exists t v.view_name then
    Error.fail "catalog object %S already exists" v.view_name;
  Hashtbl.replace t.views v.view_name v

let drop_table t name ~if_exists =
  match Hashtbl.find_opt t.tables name with
  | Some tbl ->
    List.iter
      (fun ix -> Hashtbl.remove t.index_owner ix.Table.index_name)
      tbl.Table.secondary;
    Hashtbl.remove t.tables name
  | None -> if not if_exists then Error.fail "table %S does not exist" name

let drop_view t name ~if_exists =
  if Hashtbl.mem t.views name then Hashtbl.remove t.views name
  else if not if_exists then Error.fail "view %S does not exist" name

let register_index t ~index_name ~table_name =
  if Hashtbl.mem t.index_owner index_name then
    Error.fail "index %S already exists" index_name;
  Hashtbl.replace t.index_owner index_name table_name

let drop_index t ~index_name ~if_exists =
  match Hashtbl.find_opt t.index_owner index_name with
  | Some table_name ->
    Table.drop_index (find_table t table_name) ~index_name;
    Hashtbl.remove t.index_owner index_name
  | None -> if not if_exists then Error.fail "index %S does not exist" index_name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.views []
  |> List.sort String.compare
