(** The catalog: named tables, (non-materialized) view definitions, and
    the index namespace. Materialized views are plain tables plus rows in
    the OpenIVM metadata tables, as in the paper. *)

type view_def = {
  view_name : string;
  query : Sql.Ast.select;
  sql : string;
}

type t

val create : unit -> t

val table_exists : t -> string -> bool
val view_exists : t -> string -> bool

val find_table : t -> string -> Table.t
(** Raises {!Error.Sql_error} when missing. *)

val find_table_opt : t -> string -> Table.t option
val find_view_opt : t -> string -> view_def option

val add_table : t -> Table.t -> unit
val add_view : t -> view_def -> unit

val drop_table : t -> string -> if_exists:bool -> unit
val drop_view : t -> string -> if_exists:bool -> unit

val register_index : t -> index_name:string -> table_name:string -> unit
val drop_index : t -> index_name:string -> if_exists:bool -> unit

val table_names : t -> string list
(** Sorted. *)

val view_names : t -> string list
(** Sorted. *)
