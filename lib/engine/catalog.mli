(** The catalog: named tables, (non-materialized) view definitions, and
    the index namespace. Materialized views are plain tables plus rows in
    the OpenIVM metadata tables, as in the paper. *)

type view_def = {
  view_name : string;
  query : Sql.Ast.select;
  sql : string;
}

type t

val create : unit -> t

val table_exists : t -> string -> bool
val view_exists : t -> string -> bool

val find_table : t -> string -> Table.t
(** Raises {!Error.Sql_error} when missing. *)

val find_table_opt : t -> string -> Table.t option
val find_view_opt : t -> string -> view_def option

val add_table : t -> Table.t -> unit
val add_view : t -> view_def -> unit

val drop_table : t -> string -> if_exists:bool -> unit
val drop_view : t -> string -> if_exists:bool -> unit

val register_index : t -> index_name:string -> table_name:string -> unit
val drop_index : t -> index_name:string -> if_exists:bool -> unit

val table_names : t -> string list
(** Sorted. *)

val view_names : t -> string list
(** Sorted. *)

(** A maintained materialized view's catalog entry: its backing table is
    an ordinary table whose first columns are the visible output columns
    (hidden IVM state follows them); [mat_depends_on] holds the tables it
    reads — base tables and upstream materialized views alike — forming
    the cascade DAG. *)
type mat_view = {
  mat_name : string;
  mat_visible : string list;
  mat_flat : bool;
  mat_depends_on : string list;
}

val find_mat_view : t -> string -> mat_view option
val is_mat_view : t -> string -> bool

val mat_view_names : t -> string list
(** Sorted. *)

val mat_upstreams : t -> string -> string list
(** Direct dependencies of a view that are themselves maintained views. *)

val mat_dependents : t -> string -> string list
(** Maintained views reading [name] directly. Sorted. *)

val mat_cycle : t -> name:string -> depends_on:string list -> string list option
(** The dependency cycle that registering [name] over [depends_on] would
    introduce, as a path starting and ending at [name]; [None] if acyclic. *)

val register_mat_view : t -> mat_view -> unit
(** Raises {!Error.Sql_error} when the registration would create a
    dependency cycle. *)

val unregister_mat_view : t -> string -> unit

val mat_topo_order : t -> string list
(** Every registered maintained view, upstreams before dependents. *)
