(** CSV import/export (a COPY-style utility).

    Format: comma separator, double-quote quoting with [""] escapes, one
    header line with column names, empty unquoted field = NULL. Values are
    coerced through the table schema on import. *)

let quote_field s =
  let needs =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
    || s = ""
  in
  if not needs then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buf "\"\""
         else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* floats must survive export → import bit-exactly (checkpoints depend on
   it), so they print in round-trip form rather than display form *)
let field_of_value = function
  | Value.Null -> ""
  | v -> quote_field (Value.to_string_exact v)

(** Split one CSV record (no embedded newlines across records here: rows
    with quoted newlines are joined by the reader before parsing). *)
let parse_record (line : string) : string option list =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let quoted_field = ref false in
  let rec go i in_quotes =
    if i >= n then begin
      let s = Buffer.contents buf in
      fields := (if s = "" && not !quoted_field then None else Some s) :: !fields
    end
    else
      match line.[i], in_quotes with
      | '"', false when Buffer.length buf = 0 ->
        quoted_field := true;
        go (i + 1) true
      | '"', true when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        go (i + 2) true
      | '"', true -> go (i + 1) false
      | ',', false ->
        let s = Buffer.contents buf in
        fields := (if s = "" && not !quoted_field then None else Some s) :: !fields;
        Buffer.clear buf;
        quoted_field := false;
        go (i + 1) false
      | c, _ ->
        Buffer.add_char buf c;
        go (i + 1) in_quotes
  in
  go 0 false;
  List.rev !fields

let value_of_field (typ : Sql.Ast.typ) (field : string option) : Value.t =
  match field with
  | None -> Value.Null
  | Some s ->
    (match typ with
     | Sql.Ast.T_int ->
       (try Value.Int (int_of_string (String.trim s))
        with Failure _ -> Error.fail "CSV: bad INTEGER %S" s)
     | Sql.Ast.T_float ->
       (try Value.Float (float_of_string (String.trim s))
        with Failure _ -> Error.fail "CSV: bad DOUBLE %S" s)
     | Sql.Ast.T_text -> Value.Str s
     | Sql.Ast.T_bool ->
       (match String.lowercase_ascii (String.trim s) with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> Error.fail "CSV: bad BOOLEAN %S" s)
     | Sql.Ast.T_date -> Value.date_of_string (String.trim s))

(* join physical lines while a record has an unbalanced quote count *)
let read_records (ic : in_channel) : string list =
  let records = ref [] in
  let pending = Buffer.create 64 in
  let unbalanced s =
    let q = ref 0 in
    String.iter (fun c -> if c = '"' then incr q) s;
    !q mod 2 = 1
  in
  (try
     while true do
       let line = input_line ic in
       if Buffer.length pending > 0 then begin
         Buffer.add_char pending '\n';
         Buffer.add_string pending line
       end
       else Buffer.add_string pending line;
       if not (unbalanced (Buffer.contents pending)) then begin
         records := Buffer.contents pending :: !records;
         Buffer.clear pending
       end
     done
   with End_of_file -> ());
  if Buffer.length pending > 0 then records := Buffer.contents pending :: !records;
  List.rev !records

(** Import a CSV file into an existing table (append). The header must
    name a subset of the table's columns; missing columns become NULL.
    Returns the number of rows inserted. Fires capture triggers like any
    other insert. *)
let import (db : Database.t) ~(table : string) ~(path : string) : int =
  let tbl = Catalog.find_table (Database.catalog db) table in
  let schema = tbl.Table.schema in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       match read_records ic with
       | [] -> 0
       | header :: rows ->
         let positions =
           List.map
             (fun field ->
                match field with
                | Some name ->
                  let i, c =
                    Schema.find schema ~qualifier:None
                      ~name:(String.lowercase_ascii (String.trim name))
                  in
                  (i, c.Schema.typ)
                | None -> Error.fail "CSV: empty header column")
             (parse_record header)
         in
         let arity = Schema.arity schema in
         let inserted = ref [] in
         List.iter
           (fun record ->
              if String.trim record <> "" then begin
                let fields = parse_record record in
                if List.length fields <> List.length positions then
                  Error.fail "CSV: row has %d fields, header has %d"
                    (List.length fields) (List.length positions);
                let row = Array.make arity Value.Null in
                List.iter2
                  (fun (i, typ) field -> row.(i) <- value_of_field typ field)
                  positions fields;
                Table.insert tbl row;
                inserted := row :: !inserted
              end)
           rows;
         let change =
           { Trigger.table; inserted = List.rev !inserted; deleted = [] }
         in
         Trigger.fire (Database.triggers db) change;
         List.length !inserted)

(** Export a query result to a CSV file (with header). Returns the number
    of rows written. *)
let export (db : Database.t) ~(query : string) ~(path : string) : int =
  let r = Database.query db query in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc
         (String.concat "," (List.map quote_field (Schema.names r.Database.schema)));
       output_char oc '\n';
       List.iter
         (fun (row : Row.t) ->
            output_string oc
              (String.concat ","
                 (Array.to_list (Array.map field_of_value row)));
            output_char oc '\n')
         r.Database.rows;
       List.length r.Database.rows)
