(** CSV import/export (COPY-style): comma separator, double-quote quoting
    with [""] escapes, one header line, empty unquoted field = NULL. *)

val import : Database.t -> table:string -> path:string -> int
(** Append a CSV file into an existing table; the header names a subset of
    the table's columns (missing ones become NULL). Values are coerced
    through the schema; capture triggers fire like any insert. Returns the
    number of rows inserted. *)

val export : Database.t -> query:string -> path:string -> int
(** Write a query result (with header) to a file; returns the row count. *)

(**/**)

val parse_record : string -> string option list
val quote_field : string -> string
