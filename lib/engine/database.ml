(** The Minidb façade: a catalog plus trigger registry behind a
    SQL-statement interface. This plays the role DuckDB plays in the paper
    — the stock engine the IVM compiler wraps and whose SQL it emits — and,
    in a second configuration, the role of the PostgreSQL OLTP side.

    Profiling counters record per-statement-kind execution counts and
    wall-clock time; the benchmark harness reads them to report the cost
    split between delta capture, propagation and query answering. *)

type profile = {
  mutable statements : int;
  mutable select_time : float;
  mutable dml_time : float;
  mutable ddl_time : float;
  mutable rows_read : int;
  mutable rows_written : int;
}

type t = {
  name : string;
  catalog : Catalog.t;
  triggers : Trigger.t;
  profile : profile;
  mutable optimizer_enabled : bool;
  (* per-statement artificial latency, used by the HTAP bridge to model a
     remote round trip; 0.0 for an embedded engine *)
  mutable statement_latency : float;
  mutable exec_engine : Exec.engine;
  (* set while running compiler-generated propagation SQL: bulk inserts
     into empty keyed tables are GROUP BY outputs, so their PK-duplicate
     check can be skipped (see Table.insert_many) *)
  mutable bulk_distinct_hint : bool;
}

type query_result = {
  schema : Schema.t;
  rows : Row.t list;
}

type exec_result =
  | Rows of query_result
  | Affected of int
  | Ok_msg of string

let create ?(name = "minidb") () = {
  name;
  catalog = Catalog.create ();
  triggers = Trigger.create ();
  profile = {
    statements = 0; select_time = 0.0; dml_time = 0.0; ddl_time = 0.0;
    rows_read = 0; rows_written = 0;
  };
  optimizer_enabled = true;
  statement_latency = 0.0;
  exec_engine = !Exec.default_engine;
  bulk_distinct_hint = false;
}

let catalog t = t.catalog
let triggers t = t.triggers
let profile t = t.profile

let reset_profile t =
  t.profile.statements <- 0;
  t.profile.select_time <- 0.0;
  t.profile.dml_time <- 0.0;
  t.profile.ddl_time <- 0.0;
  t.profile.rows_read <- 0;
  t.profile.rows_written <- 0

let set_statement_latency t seconds = t.statement_latency <- seconds

let simulate_latency t =
  if t.statement_latency > 0.0 then begin
    (* busy-wait: sleep syscalls have too coarse a floor for microsecond
       round-trip modelling *)
    let deadline = Unix.gettimeofday () +. t.statement_latency in
    while Unix.gettimeofday () < deadline do () done
  end

(* --- observability mirrors of the profile counters: always-on direct
   field increments, readable through Openivm_obs.Report --- *)

let m_rows_read =
  Openivm_obs.Metrics.counter "minidb_rows_read_total"
    ~help:"rows returned by top-level SELECTs"

let m_rows_written =
  Openivm_obs.Metrics.counter "minidb_rows_written_total"
    ~help:"rows affected by INSERT/UPDATE/DELETE"

let m_stmts kind =
  Openivm_obs.Metrics.counter "minidb_statements_total"
    ~help:"statements executed per kind" ~labels:[ ("kind", kind) ]

let m_stmts_select = m_stmts "select"
let m_stmts_dml = m_stmts "dml"
let m_stmts_ddl = m_stmts "ddl"

(* --- planning --- *)

let plan_select t (s : Sql.Ast.select) : Plan.t =
  let plan = Planner.plan t.catalog s in
  if t.optimizer_enabled then Optimizer.optimize t.catalog plan else plan

let run_select t (s : Sql.Ast.select) : query_result =
  let plan = plan_select t s in
  let r = Vexec.run_with t.exec_engine t.catalog plan in
  let n = List.length r.Exec.rows in
  t.profile.rows_read <- t.profile.rows_read + n;
  Openivm_obs.Metrics.add m_rows_read n;
  { schema = r.Exec.schema; rows = r.Exec.rows }

(* --- DDL --- *)

let schema_of_columns table (columns : Sql.Ast.column_def list) : Schema.t =
  List.map
    (fun c ->
       Schema.column ~table
         ~not_null:(c.Sql.Ast.col_not_null || c.Sql.Ast.col_primary_key)
         c.Sql.Ast.col_name c.Sql.Ast.col_type)
    columns

let create_table t ~table ~columns ~primary_key ~if_not_exists =
  if if_not_exists && Catalog.table_exists t.catalog table then
    Ok_msg (Printf.sprintf "table %s already exists" table)
  else begin
    let schema = schema_of_columns table columns in
    let pk_positions =
      Array.of_list
        (List.map
           (fun name ->
              let i, _ = Schema.find schema ~qualifier:None ~name in
              i)
           primary_key)
    in
    Catalog.add_table t.catalog
      (Table.create ~name:table ~schema ~primary_key:pk_positions);
    Ok_msg (Printf.sprintf "created table %s" table)
  end

(* --- statement dispatch --- *)

let rec exec_stmt t (stmt : Sql.Ast.stmt) : exec_result =
  simulate_latency t;
  t.profile.statements <- t.profile.statements + 1;
  let timed slot f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    (match slot with
     | `Select ->
       t.profile.select_time <- t.profile.select_time +. dt;
       Openivm_obs.Metrics.incr m_stmts_select
     | `Dml ->
       t.profile.dml_time <- t.profile.dml_time +. dt;
       Openivm_obs.Metrics.incr m_stmts_dml
     | `Ddl ->
       t.profile.ddl_time <- t.profile.ddl_time +. dt;
       Openivm_obs.Metrics.incr m_stmts_ddl);
    r
  in
  match stmt with
  | Sql.Ast.Select_stmt s ->
    timed `Select (fun () -> Rows (run_select t s))
  | Sql.Ast.Create_table { table; columns; primary_key; if_not_exists } ->
    timed `Ddl (fun () ->
        create_table t ~table ~columns ~primary_key ~if_not_exists)
  | Sql.Ast.Create_view { view; materialized; query } ->
    if materialized then
      Error.fail
        "CREATE MATERIALIZED VIEW requires the OpenIVM extension (use \
         Openivm.Runner.install)"
    else
      timed `Ddl (fun () ->
          (* validate by planning *)
          ignore (plan_select t query);
          Catalog.add_view t.catalog
            { Catalog.view_name = view; query;
              sql = Sql.Pretty.select_to_sql Sql.Dialect.minidb query };
          Ok_msg (Printf.sprintf "created view %s" view))
  | Sql.Ast.Create_index { index; table; columns; unique } ->
    timed `Ddl (fun () ->
        let tbl = Catalog.find_table t.catalog table in
        let key_positions =
          Array.of_list
            (List.map
               (fun name ->
                  let i, _ = Schema.find tbl.Table.schema ~qualifier:None ~name in
                  i)
               columns)
        in
        Catalog.register_index t.catalog ~index_name:index ~table_name:table;
        ignore (Table.create_index tbl ~index_name:index ~key_positions ~unique);
        Ok_msg (Printf.sprintf "created index %s" index))
  | Sql.Ast.Insert { table; columns; source; on_conflict } ->
    timed `Dml (fun () ->
        let o =
          Dml.exec_insert ~engine:t.exec_engine
            ~distinct_hint:t.bulk_distinct_hint t.catalog t.triggers ~table
            ~columns ~source ~on_conflict
        in
        t.profile.rows_written <- t.profile.rows_written + o.Dml.affected;
        Openivm_obs.Metrics.add m_rows_written o.Dml.affected;
        Affected o.Dml.affected)
  | Sql.Ast.Update { table; assignments; where } ->
    timed `Dml (fun () ->
        let o = Dml.exec_update t.catalog t.triggers ~table ~assignments ~where in
        t.profile.rows_written <- t.profile.rows_written + o.Dml.affected;
        Openivm_obs.Metrics.add m_rows_written o.Dml.affected;
        Affected o.Dml.affected)
  | Sql.Ast.Delete { table; where } ->
    timed `Dml (fun () ->
        let o = Dml.exec_delete t.catalog t.triggers ~table ~where in
        t.profile.rows_written <- t.profile.rows_written + o.Dml.affected;
        Openivm_obs.Metrics.add m_rows_written o.Dml.affected;
        Affected o.Dml.affected)
  | Sql.Ast.Truncate table ->
    timed `Dml (fun () ->
        let o = Dml.exec_truncate t.catalog t.triggers ~table in
        Affected o.Dml.affected)
  | Sql.Ast.Drop { kind; name; if_exists } ->
    timed `Ddl (fun () ->
        (match kind with
         | `Table -> Catalog.drop_table t.catalog name ~if_exists
         | `View -> Catalog.drop_view t.catalog name ~if_exists
         | `Index -> Catalog.drop_index t.catalog ~index_name:name ~if_exists);
        Ok_msg (Printf.sprintf "dropped %s" name))
  | Sql.Ast.Explain inner ->
    (match inner with
     | Sql.Ast.Select_stmt s ->
       let plan = plan_select t s in
       Ok_msg (Plan.to_string plan)
     | _ -> exec_stmt t inner)
  | Sql.Ast.Begin_txn -> Ok_msg "BEGIN"
  | Sql.Ast.Commit_txn -> Ok_msg "COMMIT"
  | Sql.Ast.Rollback_txn ->
    Error.fail "ROLLBACK is not supported (no transactional undo log)"

(* --- string entry points --- *)

let exec t (sql : string) : exec_result =
  exec_stmt t (Sql.Parser.parse_statement sql)

let exec_script t (sql : string) : exec_result list =
  List.map (exec_stmt t) (Sql.Parser.parse_script sql)

(** Run a SELECT and return its rows; raises on non-SELECT. *)
let query t (sql : string) : query_result =
  match exec t sql with
  | Rows r -> r
  | Affected _ | Ok_msg _ -> Error.fail "query: statement did not return rows"

(** First column of the first row — for scalar queries in tests/benches. *)
let query_scalar t (sql : string) : Value.t =
  match (query t sql).rows with
  | row :: _ when Array.length row > 0 -> row.(0)
  | _ -> Value.Null

let query_int t sql =
  match query_scalar t sql with
  | Value.Int i -> i
  | Value.Null -> 0
  | v -> Error.fail "expected integer result, got %s" (Value.to_string v)

(** Render a result like the DuckDB shell box output (simplified). *)
let render_result (r : query_result) : string =
  let headers = Schema.names r.schema in
  let cells = List.map (fun row -> Array.to_list (Array.map Value.to_string row)) r.rows in
  let table = headers :: cells in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    table;
  let line =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let render_row cells =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell)
           cells)
    ^ "|"
  in
  String.concat "\n"
    ([ line; render_row headers; line ]
     @ List.map render_row cells
     @ [ line; Printf.sprintf "%d row(s)" (List.length r.rows) ])
