(** The Minidb façade: a catalog plus trigger registry behind a SQL
    interface — the stock-engine role DuckDB plays in the paper, and (in a
    second instance, with per-statement latency) the PostgreSQL role. *)

type profile = {
  mutable statements : int;
  mutable select_time : float;
  mutable dml_time : float;
  mutable ddl_time : float;
  mutable rows_read : int;
  mutable rows_written : int;
}

type t = {
  name : string;
  catalog : Catalog.t;
  triggers : Trigger.t;
  profile : profile;
  mutable optimizer_enabled : bool;
  mutable statement_latency : float;
  mutable exec_engine : Exec.engine;
      (** Which interpreter runs SELECT / INSERT..SELECT plans; initialized
          from [Exec.default_engine]. *)
  mutable bulk_distinct_hint : bool;
      (** Set while running compiler-generated propagation SQL, whose bulk
          inserts into empty keyed tables are GROUP BY outputs: forwards
          [distinct_keys] to {!Table.insert_many}. *)
}

type query_result = {
  schema : Schema.t;
  rows : Row.t list;
}

type exec_result =
  | Rows of query_result
  | Affected of int
  | Ok_msg of string

val create : ?name:string -> unit -> t

val catalog : t -> Catalog.t
val triggers : t -> Trigger.t
val profile : t -> profile
val reset_profile : t -> unit

val set_statement_latency : t -> float -> unit
(** Artificial per-statement latency in seconds, modelling a client/server
    round trip (0 for an embedded engine). *)

val plan_select : t -> Sql.Ast.select -> Plan.t
(** Parse-tree to (optimized) logical plan, without executing. *)

val run_select : t -> Sql.Ast.select -> query_result

val exec_stmt : t -> Sql.Ast.stmt -> exec_result
val exec : t -> string -> exec_result
val exec_script : t -> string -> exec_result list

val query : t -> string -> query_result
(** Run a SELECT; raises {!Error.Sql_error} if the statement is not one. *)

val query_scalar : t -> string -> Value.t
(** First column of the first row, [Null] if empty. *)

val query_int : t -> string -> int

val render_result : query_result -> string
(** Boxed table rendering, shell-style. *)
