(** INSERT / UPDATE / DELETE execution, with trigger firing. *)

(* read a slot's live row *)
let _openivm_engine_vec_get (tbl : Table.t) slot = Vec.get tbl.Table.slots slot

type outcome = {
  affected : int;
  change : Trigger.change option;
}

let coerce_to_schema (schema : Schema.t) (row : Row.t) : Row.t =
  let cols = Array.of_list schema in
  if Array.length row <> Array.length cols then
    Error.fail "expected %d values, got %d" (Array.length cols) (Array.length row);
  Array.mapi
    (fun i v ->
       if Value.is_null v then begin
         if cols.(i).Schema.not_null then
           Error.fail "NULL violates NOT NULL on column %S" cols.(i).Schema.name;
         v
       end
       else
         match cols.(i).Schema.typ, v with
         | Sql.Ast.T_int, Value.Int _
         | Sql.Ast.T_float, Value.Float _
         | Sql.Ast.T_text, Value.Str _
         | Sql.Ast.T_bool, Value.Bool _
         | Sql.Ast.T_date, Value.Date _ -> v
         | Sql.Ast.T_float, Value.Int i -> Value.Float (float_of_int i)
         | Sql.Ast.T_date, Value.Str s -> Value.date_of_string s
         | t, _ -> Expr.cast_value t v)
    row

(** Rows for an INSERT: evaluate the source, then scatter the values into
    table column order (missing columns become NULL). *)
let insert_rows (catalog : Catalog.t) (table : Table.t) (columns : string list)
    (source : Sql.Ast.insert_source) : Row.t list =
  let produced : Row.t list =
    match source with
    | Sql.Ast.Values rows ->
      List.map
        (fun exprs -> Array.of_list (List.map Expr.eval_const exprs))
        rows
    | Sql.Ast.Query q ->
      let plan = Optimizer.optimize catalog (Planner.plan catalog q) in
      (Exec.run catalog plan).Exec.rows
  in
  let schema = table.Table.schema in
  let placed =
    if columns = [] then produced
    else begin
      let positions =
        List.map
          (fun c ->
             let i, _ = Schema.find schema ~qualifier:None ~name:c in
             i)
          columns
      in
      let arity = Schema.arity schema in
      List.map
        (fun (row : Row.t) ->
           if Array.length row <> List.length positions then
             Error.fail "INSERT column list has %d columns but %d values supplied"
               (List.length positions) (Array.length row);
           let full = Array.make arity Value.Null in
           List.iteri (fun j pos -> full.(pos) <- row.(j)) positions;
           full)
        produced
    end
  in
  List.map (coerce_to_schema schema) placed

let exec_insert catalog triggers ~table ~columns ~source ~on_conflict : outcome =
  let tbl = Catalog.find_table catalog table in
  let rows = insert_rows catalog tbl columns source in
  let inserted = ref [] in
  let deleted = ref [] in
  List.iter
    (fun row ->
       match on_conflict with
       | Sql.Ast.No_conflict_clause ->
         Table.insert tbl row;
         inserted := row :: !inserted
       | Sql.Ast.Or_replace ->
         (match Table.upsert tbl row with
          | Table.Inserted -> inserted := row :: !inserted
          | Table.Replaced old ->
            deleted := old :: !deleted;
            inserted := row :: !inserted)
       | Sql.Ast.Do_nothing ->
         if Table.insert_ignore tbl row then inserted := row :: !inserted)
    rows;
  let change =
    { Trigger.table; inserted = List.rev !inserted; deleted = List.rev !deleted }
  in
  Trigger.fire triggers change;
  { affected = List.length change.Trigger.inserted; change = Some change }

(** Index fast-path for point UPDATE/DELETE: when conjuncts of [where] pin
    every column of the PK or of a secondary index with constants, return
    the candidate slots (a superset of the matching rows — the caller
    still applies the full predicate). *)
let candidate_slots (tbl : Table.t) (where : Sql.Ast.expr option) :
  int list option =
  match where with
  | None -> None
  | Some predicate ->
    let schema = tbl.Table.schema in
    let pinned = Hashtbl.create 8 in
    List.iter
      (fun c ->
         match c with
         | Sql.Ast.Binary (Sql.Ast.Eq, a, b) ->
           let try_pin col const =
             match col with
             | Sql.Ast.Column (qualifier, name) when name <> "*" ->
               if Openivm_sql.Analysis.is_constant const then begin
                 match Schema.find_opt schema ~qualifier ~name with
                 | Some (i, _) ->
                   if not (Hashtbl.mem pinned i) then
                     Hashtbl.replace pinned i const
                 | None -> ()
                 | exception Error.Sql_error _ -> ()
               end
             | _ -> ()
           in
           try_pin a b;
           try_pin b a
         | _ -> ())
      (Optimizer.conjuncts predicate);
    let key_for positions =
      Value.encode_key
        (Array.map (fun i -> Expr.eval_const (Hashtbl.find pinned i)) positions)
    in
    let fully_pinned positions =
      Array.length positions > 0
      && Array.for_all (fun i -> Hashtbl.mem pinned i) positions
    in
    if fully_pinned tbl.Table.primary_key then
      Some (Option.to_list (Table.pk_slot tbl (key_for tbl.Table.primary_key)))
    else
      List.find_map
        (fun ix ->
           if fully_pinned ix.Table.key_positions then
             Some (Table.index_slots tbl ix (key_for ix.Table.key_positions))
           else None)
        tbl.Table.secondary

let exec_delete catalog triggers ~table ~where : outcome =
  let tbl = Catalog.find_table catalog table in
  let pred =
    match where with
    | None -> fun (_ : Row.t) -> true
    | Some e ->
      let c = Exec.compile_expr catalog tbl.Table.schema e in
      fun row -> Expr.is_true (c row)
  in
  let deleted =
    match candidate_slots tbl where with
    | Some slots ->
      List.filter_map
        (fun slot ->
           match _openivm_engine_vec_get tbl slot with
           | Some row when pred row -> Table.delete_slot tbl slot
           | _ -> None)
        slots
    | None -> Table.delete_where tbl pred
  in
  let change = { Trigger.table; inserted = []; deleted } in
  Trigger.fire triggers change;
  { affected = List.length deleted; change = Some change }

let exec_update catalog triggers ~table ~assignments ~where : outcome =
  let tbl = Catalog.find_table catalog table in
  let schema = tbl.Table.schema in
  let pred =
    match where with
    | None -> fun (_ : Row.t) -> true
    | Some e ->
      let c = Exec.compile_expr catalog schema e in
      fun row -> Expr.is_true (c row)
  in
  let compiled =
    List.map
      (fun (col, e) ->
         let i, colinfo = Schema.find schema ~qualifier:None ~name:col in
         let c = Exec.compile_expr catalog schema e in
         (i, colinfo.Schema.typ, c))
      assignments
  in
  let transform (row : Row.t) : Row.t =
    let fresh = Array.copy row in
    List.iter
      (fun (i, typ, c) ->
         let v = c row in
         fresh.(i) <- (if Value.is_null v then v else Expr.cast_value typ v))
      compiled;
    fresh
  in
  let changed =
    match candidate_slots tbl where with
    | Some slots ->
      let targets =
        List.filter_map
          (fun slot ->
             match _openivm_engine_vec_get tbl slot with
             | Some row when pred row -> Some slot
             | _ -> None)
          slots
      in
      List.map
        (fun slot ->
           let old = Option.get (Table.delete_slot tbl slot) in
           let fresh = transform old in
           Table.insert tbl fresh;
           (old, fresh))
        targets
    | None -> Table.update_where tbl pred transform
  in
  let change =
    { Trigger.table;
      inserted = List.map snd changed;
      deleted = List.map fst changed }
  in
  Trigger.fire triggers change;
  { affected = List.length changed; change = Some change }

let exec_truncate catalog triggers ~table : outcome =
  let tbl = Catalog.find_table catalog table in
  let deleted = Table.to_rows tbl in
  let n = Table.truncate tbl in
  let change = { Trigger.table; inserted = []; deleted } in
  Trigger.fire triggers change;
  { affected = n; change = Some change }
