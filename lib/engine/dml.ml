(** INSERT / UPDATE / DELETE execution, with trigger firing. *)

(* read a slot's live row *)
let _openivm_engine_vec_get (tbl : Table.t) slot = Vec.get tbl.Table.slots slot

type outcome = {
  affected : int;
  change : Trigger.change option;
}

(** Per-table row coercion, with the schema array hoisted out so bulk
    inserts pay the list-to-array conversion once, not per row. Rows that
    already match the schema are returned as-is (no copy). *)
let coercer (schema : Schema.t) : Row.t -> Row.t =
  let cols = Array.of_list schema in
  let ncols = Array.length cols in
  let coerce_one i v =
    if Value.is_null v then begin
      if cols.(i).Schema.not_null then
        Error.fail "NULL violates NOT NULL on column %S" cols.(i).Schema.name;
      v
    end
    else
      match cols.(i).Schema.typ, v with
      | Sql.Ast.T_int, Value.Int _
      | Sql.Ast.T_float, Value.Float _
      | Sql.Ast.T_text, Value.Str _
      | Sql.Ast.T_bool, Value.Bool _
      | Sql.Ast.T_date, Value.Date _ -> v
      | Sql.Ast.T_float, Value.Int i -> Value.Float (float_of_int i)
      | Sql.Ast.T_date, Value.Str s -> Value.date_of_string s
      | t, _ -> Expr.cast_value t v
  in
  fun (row : Row.t) ->
    if Array.length row <> ncols then
      Error.fail "expected %d values, got %d" ncols (Array.length row);
    let out = ref row in
    for i = 0 to ncols - 1 do
      let v = row.(i) in
      let v' = coerce_one i v in
      if v' != v then begin
        if !out == row then out := Array.copy row;
        !out.(i) <- v'
      end
    done;
    !out

let coerce_to_schema (schema : Schema.t) (row : Row.t) : Row.t =
  coercer schema row

(** Plans with no compute — bare scans and column-only projections of one
    — gain nothing from batching; reading them as rows skips the
    batchify/unbatchify round trip on INSERT ... SELECT, which is the
    propagation swap's second statement. A projection that turns out to
    be the identity additionally shares the source row arrays outright
    (rows are immutable payloads; in-place UPDATE copies first). Both
    engines resolve columns identically, so the differential oracle is
    unaffected. Returns [None] for plans that need a real executor;
    successful reads also carry the source schema so the caller can skip
    re-coercing rows that already passed an identically-typed table's
    coercion. *)
let rows_of_simple_plan (catalog : Catalog.t) (plan : Plan.t) :
  (Row.t list * Schema.t) option =
  let simple = function
    | Plan.Scan _ | Plan.Index_scan _ | Plan.Materialized _ -> true
    | _ -> false
  in
  match plan with
  | p when simple p ->
    let r = Exec.run catalog p in
    Some (r.Exec.rows, r.Exec.schema)
  | Plan.Project { input; projections; _ }
    when simple input
         && List.for_all
              (fun (e, _) ->
                 match e with
                 | Sql.Ast.Column (_, name) -> name <> "*"
                 | _ -> false)
              projections ->
    let r = Exec.run catalog input in
    let positions =
      List.map
        (fun (e, _) ->
           match e with
           | Sql.Ast.Column (qualifier, name) ->
             fst (Schema.find r.Exec.schema ~qualifier ~name)
           | _ -> assert false)
        projections
    in
    let width = Schema.arity r.Exec.schema in
    let identity =
      List.length positions = width
      && List.for_all2 ( = ) positions (List.init width Fun.id)
    in
    let src = Array.of_list r.Exec.schema in
    let out_schema = List.map (fun j -> src.(j)) positions in
    if identity then Some (r.Exec.rows, out_schema)
    else begin
      let idx = Array.of_list positions in
      Some
        ( List.map
            (fun (row : Row.t) -> Array.map (fun j -> row.(j)) idx)
            r.Exec.rows,
          out_schema )
    end
  | _ -> None

(** Column-wise coercion of a batch against the target schema: when every
    column's kind already matches its declared type (or is an int column
    feeding a FLOAT column), the batch boxes straight into rows with no
    per-value checking — NOT NULL holds iff the validity bitmap is full.
    Returns [None] when any column needs value-level work (boxed lanes,
    TEXT-to-DATE casts), sending the whole batch down the row path. *)
let coerce_batch (cols : Schema.column array) (b : Vec.Batch.t) :
  Row.t list option =
  let module Col = Vec.Col in
  let module Batch = Vec.Batch in
  let b = Batch.flatten b in
  let width = Array.length b.Batch.cols in
  if width <> Array.length cols then
    Error.fail "expected %d values, got %d" (Array.length cols) width;
  let exception Fallback in
  try
    let coerced =
      Array.mapi
        (fun j (c : Col.t) ->
           let sc = cols.(j) in
           if
             sc.Schema.not_null
             && not
                  (match c.Col.valid with
                   | None ->
                     (match c.Col.data with Col.Boxed _ -> false | _ -> true)
                   | Some bm -> Vec.Bitmap.all_set bm)
           then raise_notrace Fallback (* row path reports the violation *)
           else
             match sc.Schema.typ, c.Col.data with
             | Sql.Ast.T_int, Col.Ints _
             | Sql.Ast.T_float, Col.Floats _
             | Sql.Ast.T_text, Col.Strs _
             | Sql.Ast.T_bool, Col.Bools _
             | Sql.Ast.T_date, Col.Dates _ -> c
             | Sql.Ast.T_float, Col.Ints a ->
               { Col.data = Col.Floats (Array.map float_of_int a);
                 valid = c.Col.valid }
             | _ -> raise_notrace Fallback)
        b.Batch.cols
    in
    Some
      (Array.to_list
         (Batch.to_rows { b with Batch.cols = coerced }))
  with Fallback -> None

(** Rows for an INSERT: evaluate the source, then scatter the values into
    table column order (missing columns become NULL). *)
let insert_rows ~(engine : Exec.engine) (catalog : Catalog.t)
    (table : Table.t) (columns : string list)
    (source : Sql.Ast.insert_source) : Row.t list =
  let schema = table.Table.schema in
  (* a column list that names every table column in order is the same as
     no column list — the propagation scripts always spell it out *)
  let columns =
    if
      List.compare_lengths columns schema = 0
      && List.for_all2
           (fun c (sc : Schema.column) -> String.equal c sc.Schema.name)
           columns schema
    then []
    else columns
  in
  let schema_arr = Array.of_list schema in
  let produced, src_schema =
    match source with
    | Sql.Ast.Values rows ->
      ( `Rows
          (List.map
             (fun exprs -> Array.of_list (List.map Expr.eval_const exprs))
             rows),
        None )
    | Sql.Ast.Query q ->
      let plan = Optimizer.optimize catalog (Planner.plan catalog q) in
      (match rows_of_simple_plan catalog plan with
       | Some (rows, src) -> (`Rows rows, Some src)
       | None ->
         (match (Vexec.run_payload engine catalog plan).Vexec.data with
          | Vexec.Rows rows -> (`Rows rows, None)
          | Vexec.Batches bs when columns = [] ->
            (* coerce column-wise where possible; any batch that can't is
               boxed and sent through the per-row coercer *)
            ( `Coerced
                (List.concat_map
                   (fun b ->
                      match coerce_batch schema_arr b with
                      | Some rows -> rows
                      | None ->
                        List.map (coercer schema)
                          (Array.to_list (Vec.Batch.to_rows b)))
                   bs),
              None )
          | Vexec.Batches bs ->
            ( `Rows
                (List.concat_map
                   (fun b -> Array.to_list (Vec.Batch.to_rows b))
                   bs),
              None )))
  in
  match produced with
  | `Coerced rows -> rows
  | `Rows produced ->
  (* rows lifted straight out of a table whose column types (and NOT NULL
     obligations) already match the target have nothing left to coerce —
     the propagation swap's stage-to-view copy takes this path *)
  let already_coerced =
    columns = []
    && (match src_schema with
        | Some src ->
          List.compare_lengths src schema = 0
          && List.for_all2
               (fun (s : Schema.column) (t : Schema.column) ->
                  s.Schema.typ = t.Schema.typ
                  && ((not t.Schema.not_null) || s.Schema.not_null))
               src schema
        | None -> false)
  in
  let placed =
    if columns = [] then produced
    else begin
      let positions =
        List.map
          (fun c ->
             let i, _ = Schema.find schema ~qualifier:None ~name:c in
             i)
          columns
      in
      let arity = Schema.arity schema in
      List.map
        (fun (row : Row.t) ->
           if Array.length row <> List.length positions then
             Error.fail "INSERT column list has %d columns but %d values supplied"
               (List.length positions) (Array.length row);
           let full = Array.make arity Value.Null in
           List.iteri (fun j pos -> full.(pos) <- row.(j)) positions;
           full)
        produced
    end
  in
  if already_coerced then placed else List.map (coercer schema) placed

let exec_insert ?(engine = !Exec.default_engine) ?(distinct_hint = false)
    catalog triggers ~table ~columns ~source ~on_conflict : outcome =
  let tbl = Catalog.find_table catalog table in
  let rows = insert_rows ~engine catalog tbl columns source in
  let change =
    match on_conflict with
    | Sql.Ast.No_conflict_clause ->
      (* bulk path: defers PK maintenance when the table starts empty *)
      Table.insert_many ~distinct_keys:distinct_hint tbl rows;
      { Trigger.table; inserted = rows; deleted = [] }
    | Sql.Ast.Or_replace | Sql.Ast.Do_nothing ->
      let inserted = ref [] in
      let deleted = ref [] in
      List.iter
        (fun row ->
           match on_conflict with
           | Sql.Ast.No_conflict_clause -> assert false
           | Sql.Ast.Or_replace ->
             (match Table.upsert tbl row with
              | Table.Inserted -> inserted := row :: !inserted
              | Table.Replaced old ->
                deleted := old :: !deleted;
                inserted := row :: !inserted)
           | Sql.Ast.Do_nothing ->
             if Table.insert_ignore tbl row then inserted := row :: !inserted)
        rows;
      { Trigger.table;
        inserted = List.rev !inserted;
        deleted = List.rev !deleted }
  in
  Trigger.fire triggers change;
  { affected = List.length change.Trigger.inserted; change = Some change }

(** Index fast-path for point UPDATE/DELETE: when conjuncts of [where] pin
    every column of the PK or of a secondary index with constants, return
    the candidate slots (a superset of the matching rows — the caller
    still applies the full predicate). *)
let candidate_slots (tbl : Table.t) (where : Sql.Ast.expr option) :
  int list option =
  match where with
  | None -> None
  | Some predicate ->
    let schema = tbl.Table.schema in
    let pinned = Hashtbl.create 8 in
    List.iter
      (fun c ->
         match c with
         | Sql.Ast.Binary (Sql.Ast.Eq, a, b) ->
           let try_pin col const =
             match col with
             | Sql.Ast.Column (qualifier, name) when name <> "*" ->
               if Openivm_sql.Analysis.is_constant const then begin
                 match Schema.find_opt schema ~qualifier ~name with
                 | Some (i, _) ->
                   if not (Hashtbl.mem pinned i) then
                     Hashtbl.replace pinned i const
                 | None -> ()
                 | exception Error.Sql_error _ -> ()
               end
             | _ -> ()
           in
           try_pin a b;
           try_pin b a
         | _ -> ())
      (Optimizer.conjuncts predicate);
    let key_for positions =
      Value.encode_key
        (Array.map (fun i -> Expr.eval_const (Hashtbl.find pinned i)) positions)
    in
    let fully_pinned positions =
      Array.length positions > 0
      && Array.for_all (fun i -> Hashtbl.mem pinned i) positions
    in
    if fully_pinned tbl.Table.primary_key then
      Some (Option.to_list (Table.pk_slot tbl (key_for tbl.Table.primary_key)))
    else
      List.find_map
        (fun ix ->
           if fully_pinned ix.Table.key_positions then
             Some (Table.index_slots tbl ix (key_for ix.Table.key_positions))
           else None)
        tbl.Table.secondary

let exec_delete catalog triggers ~table ~where : outcome =
  let tbl = Catalog.find_table catalog table in
  match where with
  | None when not (Trigger.has_hooks triggers ~table) ->
    (* full unconditional delete with nobody listening: drop the rows
       without materializing them *)
    let n = Table.truncate tbl in
    { affected = n;
      change = Some { Trigger.table; inserted = []; deleted = [] } }
  | _ ->
  let pred =
    match where with
    | None -> fun (_ : Row.t) -> true
    | Some e ->
      let c = Exec.compile_expr catalog tbl.Table.schema e in
      fun row -> Expr.is_true (c row)
  in
  let deleted =
    match candidate_slots tbl where with
    | Some slots ->
      List.filter_map
        (fun slot ->
           match _openivm_engine_vec_get tbl slot with
           | Some row when pred row -> Table.delete_slot tbl slot
           | _ -> None)
        slots
    | None -> Table.delete_where tbl pred
  in
  let change = { Trigger.table; inserted = []; deleted } in
  Trigger.fire triggers change;
  { affected = List.length deleted; change = Some change }

let exec_update catalog triggers ~table ~assignments ~where : outcome =
  let tbl = Catalog.find_table catalog table in
  let schema = tbl.Table.schema in
  let pred =
    match where with
    | None -> fun (_ : Row.t) -> true
    | Some e ->
      let c = Exec.compile_expr catalog schema e in
      fun row -> Expr.is_true (c row)
  in
  let compiled =
    List.map
      (fun (col, e) ->
         let i, colinfo = Schema.find schema ~qualifier:None ~name:col in
         let c = Exec.compile_expr catalog schema e in
         (i, colinfo.Schema.typ, c))
      assignments
  in
  let transform (row : Row.t) : Row.t =
    let fresh = Array.copy row in
    List.iter
      (fun (i, typ, c) ->
         let v = c row in
         fresh.(i) <- (if Value.is_null v then v else Expr.cast_value typ v))
      compiled;
    fresh
  in
  let changed =
    match candidate_slots tbl where with
    | Some slots ->
      let targets =
        List.filter_map
          (fun slot ->
             match _openivm_engine_vec_get tbl slot with
             | Some row when pred row -> Some slot
             | _ -> None)
          slots
      in
      List.map
        (fun slot ->
           let old = Option.get (Table.delete_slot tbl slot) in
           let fresh = transform old in
           Table.insert tbl fresh;
           (old, fresh))
        targets
    | None -> Table.update_where tbl pred transform
  in
  let change =
    { Trigger.table;
      inserted = List.map snd changed;
      deleted = List.map fst changed }
  in
  Trigger.fire triggers change;
  { affected = List.length changed; change = Some change }

let exec_truncate catalog triggers ~table : outcome =
  let tbl = Catalog.find_table catalog table in
  let deleted = Table.to_rows tbl in
  let n = Table.truncate tbl in
  let change = { Trigger.table; inserted = []; deleted } in
  Trigger.fire triggers change;
  { affected = n; change = Some change }
