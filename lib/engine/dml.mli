(** INSERT / UPDATE / DELETE execution with trigger firing and an index
    fast-path for point updates/deletes whose predicates pin a PK or
    secondary index. *)

type outcome = {
  affected : int;
  change : Trigger.change option;
}

val coerce_to_schema : Schema.t -> Row.t -> Row.t
(** Arity check, NOT NULL enforcement, and type coercion. *)

val candidate_slots : Table.t -> Sql.Ast.expr option -> int list option
(** Slots an index narrows a WHERE clause to (a superset of the matches),
    or [None] when no index applies. *)

val exec_insert :
  ?engine:Exec.engine ->
  ?distinct_hint:bool ->
  Catalog.t -> Trigger.t -> table:string -> columns:string list ->
  source:Sql.Ast.insert_source -> on_conflict:Sql.Ast.conflict_action ->
  outcome
(** [engine] (default [!Exec.default_engine]) runs the plan behind an
    [INSERT ... SELECT] source. [distinct_hint] (default false) forwards
    to {!Table.insert_many}'s [distinct_keys]. *)

val exec_delete :
  Catalog.t -> Trigger.t -> table:string -> where:Sql.Ast.expr option -> outcome

val exec_update :
  Catalog.t -> Trigger.t -> table:string ->
  assignments:(string * Sql.Ast.expr) list -> where:Sql.Ast.expr option ->
  outcome

val exec_truncate : Catalog.t -> Trigger.t -> table:string -> outcome
