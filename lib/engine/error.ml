(** Engine errors. All user-facing failures funnel through [Sql_error] so
    the shell and tests can report them uniformly. *)

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

let protect f =
  try Ok (f ()) with
  | Sql_error msg -> Error msg
  | Openivm_sql.Lexer.Error (msg, pos) ->
    Error (Printf.sprintf "lex error at byte %d: %s" pos msg)
  | Openivm_sql.Parser.Error (msg, pos) ->
    Error (Printf.sprintf "parse error at byte %d: %s" pos msg)
