(** Engine errors: every user-facing failure raises [Sql_error]. *)

exception Sql_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Sql_error} with the formatted message. *)

val protect : (unit -> 'a) -> ('a, string) result
(** Catch {!Sql_error} and the SQL frontend's lexer/parser errors,
    rendering them uniformly. *)
