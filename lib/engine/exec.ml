(** Physical execution of logical plans (materialized, operator at a time).

    Joins with extractable equality conjuncts run as hash joins; the rest
    fall back to nested loops. Aggregation is hash-based. The executor is
    deliberately simple — the reproduction's claims are about *relative*
    costs (incremental vs full recomputation on the same engine), which a
    uniform execution model preserves. *)

type result = {
  schema : Schema.t;
  rows : Row.t list;
}

(** Which interpreter executes plans: the columnar batch executor
    ([Vexec], the default) or this row-at-a-time interpreter, kept as the
    differential oracle. The type lives here so callers on both sides of
    the [Vexec] dependency edge can name it. *)
type engine = Row | Vector

let default_engine = ref Vector

let engine_to_string = function Row -> "row" | Vector -> "vector"

let engine_of_string = function
  | "row" -> Some Row
  | "vector" -> Some Vector
  | _ -> None

let lookup_of catalog table = (Catalog.find_table catalog table).Table.schema

(* --- aggregate accumulators --- *)

type agg_state =
  | Count_st of int ref
  | Sum_st of { mutable sum_int : int; mutable sum_float : float;
                mutable float_mode : bool; mutable saw : bool }
  | Extremum_st of { is_min : bool; mutable cur : Value.t }
  | Avg_st of { mutable sum_int : int; mutable sum_float : float;
                mutable float_mode : bool; mutable n : int }
      (** like [Sum_st]: integer inputs accumulate exactly and round once
          at the final division (DuckDB's large-int AVG semantics and the
          IVM path's hidden SUM/COUNT state both do the same); a float
          accumulator would round on every addition *)

let make_state (agg : Sql.Ast.agg) : agg_state =
  match agg with
  | Sql.Ast.Count -> Count_st (ref 0)
  | Sql.Ast.Sum ->
    Sum_st { sum_int = 0; sum_float = 0.0; float_mode = false; saw = false }
  | Sql.Ast.Min -> Extremum_st { is_min = true; cur = Value.Null }
  | Sql.Ast.Max -> Extremum_st { is_min = false; cur = Value.Null }
  | Sql.Ast.Avg ->
    Avg_st { sum_int = 0; sum_float = 0.0; float_mode = false; n = 0 }

let update_state st (v : Value.t option) =
  (* [None] argument = COUNT star (count the row regardless) *)
  match st, v with
  | Count_st n, None -> incr n
  | Count_st n, Some v -> if not (Value.is_null v) then incr n
  | Sum_st s, Some v ->
    (match v with
     | Value.Null -> ()
     | Value.Int i ->
       s.saw <- true;
       if s.float_mode then s.sum_float <- s.sum_float +. float_of_int i
       else s.sum_int <- s.sum_int + i
     | Value.Float f ->
       s.saw <- true;
       if not s.float_mode then begin
         s.float_mode <- true;
         s.sum_float <- float_of_int s.sum_int
       end;
       s.sum_float <- s.sum_float +. f
     | _ -> Error.fail "SUM over non-numeric value %s" (Value.to_string v))
  | Extremum_st e, Some v ->
    if not (Value.is_null v) then
      if Value.is_null e.cur then e.cur <- v
      else
        let c = Value.compare v e.cur in
        if (e.is_min && c < 0) || ((not e.is_min) && c > 0) then e.cur <- v
  | Avg_st a, Some v ->
    (match v with
     | Value.Null -> ()
     | Value.Int i ->
       a.n <- a.n + 1;
       if a.float_mode then a.sum_float <- a.sum_float +. float_of_int i
       else a.sum_int <- a.sum_int + i
     | Value.Float f ->
       a.n <- a.n + 1;
       if not a.float_mode then begin
         a.float_mode <- true;
         a.sum_float <- float_of_int a.sum_int
       end;
       a.sum_float <- a.sum_float +. f
     | _ -> Error.fail "AVG over non-numeric value %s" (Value.to_string v))
  | (Sum_st _ | Extremum_st _ | Avg_st _), None ->
    Error.fail "only COUNT accepts *"

let finalize_state = function
  | Count_st n -> Value.Int !n
  | Sum_st s ->
    if not s.saw then Value.Null
    else if s.float_mode then Value.Float s.sum_float
    else Value.Int s.sum_int
  | Extremum_st e -> e.cur
  | Avg_st a ->
    if a.n = 0 then Value.Null
    else
      let total =
        if a.float_mode then a.sum_float else float_of_int a.sum_int
      in
      Value.Float (total /. float_of_int a.n)

(* --- join support --- *)

(** A join hash key: left expression, right expression, and whether the
    equality is NULL-safe (NULL matches NULL), as produced by the IVM
    combine step's [a = b OR (a IS NULL AND b IS NULL)] condition. *)
type join_key = {
  left_expr : Sql.Ast.expr;
  right_expr : Sql.Ast.expr;
  nullsafe : bool;
}

(** Split an ON condition into hash keys plus residual conjuncts. *)
let split_join_condition ls rs condition =
  match condition with
  | None -> ([], [])
  | Some c ->
    let refers schema e =
      let cols = Openivm_sql.Analysis.expr_columns [] e in
      cols <> []
      && List.for_all
        (fun (qualifier, name) ->
           match Schema.find_opt schema ~qualifier ~name with
           | Some _ -> true
           | None -> false
           | exception Error.Sql_error _ -> false)
        cols
    in
    let as_key ~nullsafe a b =
      if refers ls a && refers rs b then
        Some { left_expr = a; right_expr = b; nullsafe }
      else if refers rs a && refers ls b then
        Some { left_expr = b; right_expr = a; nullsafe }
      else None
    in
    List.fold_left
      (fun (keys, residual) conjunct ->
         match conjunct with
         | Sql.Ast.Binary (Sql.Ast.Eq, a, b) ->
           (match as_key ~nullsafe:false a b with
            | Some k -> (k :: keys, residual)
            | None -> (keys, conjunct :: residual))
         | Sql.Ast.Binary
             ( Sql.Ast.Or,
               Sql.Ast.Binary (Sql.Ast.Eq, a, b),
               Sql.Ast.Binary
                 ( Sql.Ast.And,
                   Sql.Ast.Is_null (a', false),
                   Sql.Ast.Is_null (b', false) ) )
           when (a = a' && b = b') || (a = b' && b = a') ->
           (* NULL-safe equality *)
           (match as_key ~nullsafe:true a b with
            | Some k -> (k :: keys, residual)
            | None -> (keys, conjunct :: residual))
         | other -> (keys, other :: residual))
      ([], [])
      (Optimizer.conjuncts c)
    |> fun (keys, residual) -> (List.rev keys, List.rev residual)

let null_row n : Row.t = Array.make n Value.Null

(* --- operator-level row counters (collected only while tracing is on:
   the [List.length] per node is not free on the hot path) --- *)

let op_rows op =
  Openivm_obs.Metrics.counter "minidb_operator_rows_total"
    ~help:"rows emitted per physical operator" ~labels:[ ("op", op) ]

let rows_scan = op_rows "scan"
let rows_index_scan = op_rows "index_scan"
let rows_materialized = op_rows "materialized"
let rows_filter = op_rows "filter"
let rows_project = op_rows "project"
let rows_join = op_rows "join"
let rows_aggregate = op_rows "aggregate"
let rows_distinct = op_rows "distinct"
let rows_sort = op_rows "sort"
let rows_limit = op_rows "limit"
let rows_setop = op_rows "set_op"

let op_counter : Plan.t -> _ = function
  | Plan.Scan _ -> rows_scan
  | Plan.Index_scan _ -> rows_index_scan
  | Plan.Materialized _ -> rows_materialized
  | Plan.Filter _ -> rows_filter
  | Plan.Project _ -> rows_project
  | Plan.Join _ -> rows_join
  | Plan.Aggregate _ -> rows_aggregate
  | Plan.Distinct _ -> rows_distinct
  | Plan.Sort _ -> rows_sort
  | Plan.Limit _ -> rows_limit
  | Plan.Set_op _ -> rows_setop

(* --- main interpreter --- *)

let rec run (catalog : Catalog.t) (plan : Plan.t) : result =
  let r = exec_node catalog plan in
  if Openivm_obs.Span.enabled () then
    Openivm_obs.Metrics.add (op_counter plan) (List.length r.rows);
  r

and exec_node (catalog : Catalog.t) (plan : Plan.t) : result =
  let lookup = lookup_of catalog in
  let schema = Plan.schema_of ~lookup plan in
  match plan with
  | Plan.Scan { table; _ } ->
    { schema; rows = Table.to_rows (Catalog.find_table catalog table) }
  | Plan.Index_scan { table; index_name; key_exprs; _ } ->
    let tbl = Catalog.find_table catalog table in
    let key =
      Value.encode_key
        (Array.of_list
           (List.map (fun e -> compile_expr catalog [] e [||]) key_exprs))
    in
    let rows =
      if index_name = "" then Option.to_list (Table.pk_lookup tbl key)
      else
        match Table.find_secondary tbl index_name with
        | Some ix -> Table.index_lookup tbl ix key
        | None -> Error.fail "index %S vanished from table %S" index_name table
    in
    { schema; rows }
  | Plan.Materialized { rows; _ } -> { schema; rows }
  | Plan.Filter { input; predicate } ->
    let inner = run catalog input in
    let pred = compile_expr catalog inner.schema predicate in
    { schema = inner.schema;
      rows = List.filter (fun r -> Expr.is_true (pred r)) inner.rows }
  | Plan.Project { input; projections; _ } ->
    let inner = run catalog input in
    let compiled =
      List.map (fun (e, _) -> compile_expr catalog inner.schema e) projections
    in
    { schema;
      rows = List.map (fun r -> Array.of_list (List.map (fun c -> c r) compiled)) inner.rows }
  | Plan.Join { left; right; kind; condition } ->
    run_join catalog schema left right kind condition
  | Plan.Aggregate { input; group_exprs; aggs } ->
    run_aggregate catalog schema input group_exprs aggs
  | Plan.Distinct input ->
    let inner = run catalog input in
    let seen = Row.Tbl.create 64 in
    let rows =
      List.filter
        (fun r ->
           if Row.Tbl.mem seen r then false
           else begin Row.Tbl.add seen r (); true end)
        inner.rows
    in
    { schema = inner.schema; rows }
  | Plan.Sort { input; keys } ->
    let inner = run catalog input in
    let compiled =
      List.map (fun (e, desc) -> (compile_expr catalog inner.schema e, desc)) keys
    in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (key, desc) :: rest ->
          let c = Value.compare (key a) (key b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go compiled
    in
    { schema = inner.schema; rows = List.stable_sort cmp inner.rows }
  | Plan.Limit { input; limit; offset } ->
    let inner = run catalog input in
    let rows = inner.rows in
    let rows =
      match offset with
      | Some n ->
        let rec drop k = function
          | rest when k = 0 -> rest
          | [] -> []
          | _ :: rest -> drop (k - 1) rest
        in
        drop n rows
      | None -> rows
    in
    let rows =
      match limit with
      | Some n ->
        let rec take k = function
          | _ when k = 0 -> []
          | [] -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        take n rows
      | None -> rows
    in
    { schema = inner.schema; rows }
  | Plan.Set_op { op; left; right } ->
    let l = run catalog left and r = run catalog right in
    if Schema.arity l.schema <> Schema.arity r.schema then
      Error.fail "set operation arms have different arities (%d vs %d)"
        (Schema.arity l.schema) (Schema.arity r.schema);
    let distinct rows =
      let seen = Row.Tbl.create 64 in
      List.filter
        (fun row ->
           if Row.Tbl.mem seen row then false
           else begin Row.Tbl.add seen row (); true end)
        rows
    in
    let rows =
      match op with
      | Sql.Ast.Union_all -> l.rows @ r.rows
      | Sql.Ast.Union -> distinct (l.rows @ r.rows)
      | Sql.Ast.Except ->
        let rset = Row.Tbl.create 64 in
        List.iter (fun row -> Row.Tbl.replace rset row ()) r.rows;
        distinct (List.filter (fun row -> not (Row.Tbl.mem rset row)) l.rows)
      | Sql.Ast.Intersect ->
        let rset = Row.Tbl.create 64 in
        List.iter (fun row -> Row.Tbl.replace rset row ()) r.rows;
        distinct (List.filter (fun row -> Row.Tbl.mem rset row) l.rows)
    in
    { schema = l.schema; rows }

(* evaluate an uncorrelated subquery to its first column, for IN (SELECT) *)
and subquery_values catalog (q : Sql.Ast.select) : Value.t list =
  let plan = Optimizer.optimize catalog (Planner.plan catalog q) in
  List.filter_map
    (fun row -> if Array.length row > 0 then Some row.(0) else None)
    (run catalog plan).rows

and compile_expr catalog schema e =
  Expr.compile ~subquery:(subquery_values catalog) schema e

and run_join catalog schema left right kind condition : result =
  let l_cache = ref None and r_cache = ref None in
  let get_l () =
    match !l_cache with
    | Some x -> x
    | None -> let x = run catalog left in l_cache := Some x; x
  in
  let get_r () =
    match !r_cache with
    | Some x -> x
    | None -> let x = run catalog right in r_cache := Some x; x
  in
  join_materialized catalog schema left right kind condition ~get_l ~get_r

(* The join algorithm proper, parameterized over how the two inputs are
   produced ([get_l]/[get_r] are called at most once each; the index
   nested-loop path never materializes the indexed side). [Vexec] calls
   this with its own thunks so both engines share one set of join
   semantics — INLJ choice, build-side choice, match ordering. *)
and join_materialized catalog schema left right kind condition ~get_l ~get_r :
  result =
  let lookup = lookup_of catalog in
  let ls = Plan.schema_of ~lookup left in
  let rs = Plan.schema_of ~lookup right in
  let joined_schema = Schema.join ls rs in
  let keys, residual = split_join_condition ls rs condition in
  let residual_pred =
    match residual with
    | [] -> fun (_ : Row.t) -> true
    | cs ->
      let p = compile_expr catalog joined_schema (Optimizer.conjoin cs) in
      fun row -> Expr.is_true (p row)
  in
  let larity = Schema.arity ls and rarity = Schema.arity rs in
  let strict = Array.of_list (List.map (fun k -> not k.nullsafe) keys) in
  (* SQL join semantics: NULL keys match nothing, except through the
     NULL-safe equality the IVM combine emits *)
  let has_null (k : Row.t) =
    let bad = ref false in
    Array.iteri
      (fun i v -> if strict.(i) && Value.is_null v then bad := true)
      k;
    !bad
  in
  let key_of compiled row : Row.t =
    Array.of_list (List.map (fun c -> c row) compiled)
  in
  let finish pairs unmatched_l unmatched_r =
    let rows =
      match kind with
      | Sql.Ast.Inner | Sql.Ast.Cross -> pairs
      | Sql.Ast.Left_outer ->
        pairs @ List.map (fun lrow -> Row.concat lrow (null_row rarity)) unmatched_l
      | Sql.Ast.Right_outer ->
        pairs @ List.map (fun rrow -> Row.concat (null_row larity) rrow) unmatched_r
      | Sql.Ast.Full_outer ->
        pairs
        @ List.map (fun lrow -> Row.concat lrow (null_row rarity)) unmatched_l
        @ List.map (fun rrow -> Row.concat (null_row larity) rrow) unmatched_r
    in
    { schema; rows }
  in
  (* --- index nested loop: when one side is a bare table scan whose join
     keys exactly cover an index (ART PK or secondary), probe the other
     side's rows into it instead of hashing the whole table — the paper's
     "ART ... can be used in the future to speed up joins". *)
  let index_target (plan : Plan.t) side_schema (side_expr : join_key -> Sql.Ast.expr) =
    match plan, keys with
    | Plan.Scan { table; _ }, _ :: _ ->
      let tbl = Catalog.find_table catalog table in
      let positions =
        try
          Some
            (Array.of_list
               (List.map
                  (fun k ->
                     match side_expr k with
                     | Sql.Ast.Column (qualifier, name) when name <> "*" ->
                       fst (Schema.find side_schema ~qualifier ~name)
                     | _ -> raise Exit)
                  keys))
        with Exit | Error.Sql_error _ -> None
      in
      (match positions with
       | None -> None
       | Some pos ->
         let same_set (a : int array) =
           Array.length a > 0
           && List.sort compare (Array.to_list a)
              = List.sort compare (Array.to_list pos)
         in
         (* order.(i) = index of the join key that supplies the i-th index
            column *)
         let order_for (index_positions : int array) =
           Array.map
             (fun p ->
                let rec find j =
                  if pos.(j) = p then j else find (j + 1)
                in
                find 0)
             index_positions
         in
         if same_set tbl.Table.primary_key then
           Some (tbl, `Pk, order_for tbl.Table.primary_key)
         else
           List.find_map
             (fun ix ->
                if same_set ix.Table.key_positions then
                  Some (tbl, `Secondary ix, order_for ix.Table.key_positions)
                else None)
             tbl.Table.secondary)
    | _ -> None
  in
  let inlj_lookup (tbl, which, order) (kvals : Row.t) : Row.t list =
    let key = Value.encode_key (Array.map (fun j -> kvals.(j)) order) in
    match which with
    | `Pk -> Option.to_list (Table.pk_lookup tbl key)
    | `Secondary ix -> Table.index_lookup tbl ix key
  in
  (* probe [probe_rows] into the indexed side; [combine] assembles the
     output row in left-to-right schema order *)
  let probe_into target probe_schema probe_exprs probe_rows ~combine =
    let compiled = List.map (compile_expr catalog probe_schema) probe_exprs in
    let pairs = ref [] in
    let unmatched = ref [] in
    List.iter
      (fun prow ->
         let k = key_of compiled prow in
         let matches =
           if has_null k then [] else inlj_lookup target k
         in
         let hit = ref false in
         List.iter
           (fun irow ->
              let row = combine prow irow in
              if residual_pred row then begin
                pairs := row :: !pairs;
                hit := true
              end)
           matches;
         if not !hit then unmatched := prow :: !unmatched)
      probe_rows;
    (List.rev !pairs, List.rev !unmatched)
  in
  let right_target =
    if kind = Sql.Ast.Inner || kind = Sql.Ast.Left_outer then
      index_target right rs (fun k -> k.right_expr)
    else None
  in
  let left_target =
    if kind = Sql.Ast.Inner || kind = Sql.Ast.Right_outer then
      index_target left ls (fun k -> k.left_expr)
    else None
  in
  let worthwhile probe_count (tbl, _, _) =
    probe_count * 2 < Table.row_count tbl
  in
  (* try the index paths first; fall back to a hash join *)
  let attempt_right () =
    match right_target with
    | None -> None
    | Some target ->
      let l = get_l () in
      if worthwhile (List.length l.rows) target then begin
        let pairs, unmatched_l =
          probe_into target ls (List.map (fun k -> k.left_expr) keys) l.rows
            ~combine:Row.concat
        in
        Some (finish pairs unmatched_l [])
      end
      else None
  in
  let attempt_left () =
    match left_target with
    | None -> None
    | Some target ->
      let r = get_r () in
      if worthwhile (List.length r.rows) target then begin
        let pairs, unmatched_r =
          probe_into target rs (List.map (fun k -> k.right_expr) keys) r.rows
            ~combine:(fun prow irow -> Row.concat irow prow)
        in
        Some (finish pairs [] unmatched_r)
      end
      else None
  in
  (match attempt_right () with
   | Some result -> result
   | None ->
     match attempt_left () with
     | Some result -> result
     | None ->
       (* hash join (or nested loop without keys), building on the smaller
          side *)
       let l = get_l () and r = get_r () in
       if keys = [] then begin
         let pairs = ref [] in
         let matched_left = Row.Tbl.create 64 in
         let matched_right = Row.Tbl.create 64 in
         List.iter
           (fun lrow ->
              List.iter
                (fun rrow ->
                   let row = Row.concat lrow rrow in
                   if residual_pred row then begin
                     pairs := row :: !pairs;
                     Row.Tbl.replace matched_left lrow ();
                     Row.Tbl.replace matched_right rrow ()
                   end)
                r.rows)
           l.rows;
         let unmatched side tbl =
           List.filter (fun row -> not (Row.Tbl.mem tbl row)) side
         in
         finish (List.rev !pairs)
           (unmatched l.rows matched_left)
           (unmatched r.rows matched_right)
       end
       else begin
         let lkeys = List.map (fun k -> compile_expr catalog ls k.left_expr) keys in
         let rkeys = List.map (fun k -> compile_expr catalog rs k.right_expr) keys in
         (* build the hash on the smaller input *)
         let swap = List.length l.rows < List.length r.rows in
         let build_rows, build_keys, probe_rows, probe_keys =
           if swap then (l.rows, lkeys, r.rows, rkeys)
           else (r.rows, rkeys, l.rows, lkeys)
         in
         let hash = Row.Tbl.create (List.length build_rows) in
         List.iter
           (fun brow ->
              let k = key_of build_keys brow in
              if not (has_null k) then
                Row.Tbl.replace hash k
                  (brow :: (try Row.Tbl.find hash k with Not_found -> [])))
           (List.rev build_rows);
         let pairs = ref [] in
         let matched_build = Row.Tbl.create 64 in
         let matched_probe = Row.Tbl.create 64 in
         List.iter
           (fun prow ->
              let k = key_of probe_keys prow in
              if not (has_null k) then
                match Row.Tbl.find_opt hash k with
                | Some brows ->
                  List.iter
                    (fun brow ->
                       let row =
                         if swap then Row.concat brow prow
                         else Row.concat prow brow
                       in
                       if residual_pred row then begin
                         pairs := row :: !pairs;
                         Row.Tbl.replace matched_build brow ();
                         Row.Tbl.replace matched_probe prow ()
                       end)
                    brows
                | None -> ())
           probe_rows;
         let unmatched side tbl =
           List.filter (fun row -> not (Row.Tbl.mem tbl row)) side
         in
         let unmatched_l, unmatched_r =
           if swap then
             (unmatched l.rows matched_build, unmatched r.rows matched_probe)
           else (unmatched l.rows matched_probe, unmatched r.rows matched_build)
         in
         finish (List.rev !pairs) unmatched_l unmatched_r
       end)

and run_aggregate catalog schema input group_exprs aggs : result =
  aggregate_rows catalog schema ~inner:(run catalog input) group_exprs aggs

(* Hash aggregation over a materialized input — shared with [Vexec]'s
   boxed fallback so both engines agree on group order (first-seen) and
   accumulator semantics. *)
and aggregate_rows catalog schema ~(inner : result) group_exprs aggs : result =
  let group_compiled =
    List.map (fun (e, _) -> compile_expr catalog inner.schema e) group_exprs
  in
  let arg_compiled =
    List.map
      (fun spec -> Option.map (compile_expr catalog inner.schema) spec.Plan.arg)
      aggs
  in
  let groups : (Row.t * (agg_state * unit Row.Tbl.t option) list) Row.Tbl.t =
    Row.Tbl.create 64
  in
  let order = ref [] in
  let state_for key =
    match Row.Tbl.find_opt groups key with
    | Some (_, states) -> states
    | None ->
      let states =
        List.map
          (fun spec ->
             ( make_state spec.Plan.agg,
               if spec.Plan.distinct then Some (Row.Tbl.create 16) else None ))
          aggs
      in
      Row.Tbl.replace groups key (key, states);
      order := key :: !order;
      states
  in
  List.iter
    (fun row ->
       let key =
         Array.of_list (List.map (fun c -> c row) group_compiled)
       in
       let states = state_for key in
       List.iter2
         (fun (st, distinct_seen) carg ->
            let v = Option.map (fun c -> c row) carg in
            let skip =
              match distinct_seen, v with
              | Some seen, Some value ->
                let k = [| value |] in
                if Row.Tbl.mem seen k then true
                else begin Row.Tbl.add seen k (); false end
              | _ -> false
            in
            if not skip then update_state st v)
         states arg_compiled)
    inner.rows;
  (* global aggregate over empty input still yields one row *)
  if group_exprs = [] && !order = [] then ignore (state_for [||]);
  let rows =
    List.rev_map
      (fun key ->
         let _, states = Row.Tbl.find groups key in
         Array.append key
           (Array.of_list (List.map (fun (st, _) -> finalize_state st) states)))
      !order
  in
  { schema; rows }
