(** Physical execution of logical plans (materialized, operator at a
    time): hash joins for extractable equality keys (including the
    NULL-safe equalities the IVM combine emits), nested loops otherwise,
    hash aggregation, index scans. *)

type result = {
  schema : Schema.t;
  rows : Row.t list;
}

(** Which interpreter executes plans: the columnar batch executor
    ([Vexec], the default) or this row-at-a-time interpreter, kept as the
    differential oracle. *)
type engine = Row | Vector

val default_engine : engine ref
val engine_to_string : engine -> string
val engine_of_string : string -> engine option

(** Aggregate accumulators, exposed so the vectorized executor's typed
    fold loops share the exact int/float-mode transition and finalize
    semantics. *)
type agg_state =
  | Count_st of int ref
  | Sum_st of { mutable sum_int : int; mutable sum_float : float;
                mutable float_mode : bool; mutable saw : bool }
  | Extremum_st of { is_min : bool; mutable cur : Value.t }
  | Avg_st of { mutable sum_int : int; mutable sum_float : float;
                mutable float_mode : bool; mutable n : int }

val make_state : Sql.Ast.agg -> agg_state
val update_state : agg_state -> Value.t option -> unit
(** [None] argument = COUNT star (count the row regardless). *)

val finalize_state : agg_state -> Value.t

val null_row : int -> Row.t

type join_key = {
  left_expr : Sql.Ast.expr;
  right_expr : Sql.Ast.expr;
  nullsafe : bool;  (** NULL matches NULL (a = b OR (a IS NULL AND b IS NULL)) *)
}

val split_join_condition :
  Schema.t -> Schema.t -> Sql.Ast.expr option ->
  join_key list * Sql.Ast.expr list
(** Split an ON condition into hash keys plus residual conjuncts. *)

val run : Catalog.t -> Plan.t -> result

val join_materialized :
  Catalog.t -> Schema.t -> Plan.t -> Plan.t -> Sql.Ast.join_kind ->
  Sql.Ast.expr option ->
  get_l:(unit -> result) -> get_r:(unit -> result) -> result
(** The join algorithm parameterized over input production ([get_l]/
    [get_r] run at most once each; the index nested-loop path never
    materializes the indexed side). Shared with [Vexec] so both engines
    agree on INLJ choice, build side and match ordering. *)

val aggregate_rows :
  Catalog.t -> Schema.t -> inner:result -> (Sql.Ast.expr * string) list ->
  Plan.agg_spec list -> result
(** Hash aggregation over a materialized input — shared with [Vexec]'s
    boxed fallback (first-seen group order, identical accumulators). *)

val subquery_values : Catalog.t -> Sql.Ast.select -> Value.t list
(** Evaluate an uncorrelated subquery to its first column. *)

val compile_expr : Catalog.t -> Schema.t -> Sql.Ast.expr -> Expr.compiled
(** {!Expr.compile} wired to this catalog's subquery resolver. *)
