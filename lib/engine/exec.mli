(** Physical execution of logical plans (materialized, operator at a
    time): hash joins for extractable equality keys (including the
    NULL-safe equalities the IVM combine emits), nested loops otherwise,
    hash aggregation, index scans. *)

type result = {
  schema : Schema.t;
  rows : Row.t list;
}

type join_key = {
  left_expr : Sql.Ast.expr;
  right_expr : Sql.Ast.expr;
  nullsafe : bool;  (** NULL matches NULL (a = b OR (a IS NULL AND b IS NULL)) *)
}

val split_join_condition :
  Schema.t -> Schema.t -> Sql.Ast.expr option ->
  join_key list * Sql.Ast.expr list
(** Split an ON condition into hash keys plus residual conjuncts. *)

val run : Catalog.t -> Plan.t -> result

val subquery_values : Catalog.t -> Sql.Ast.select -> Value.t list
(** Evaluate an uncorrelated subquery to its first column. *)

val compile_expr : Catalog.t -> Schema.t -> Sql.Ast.expr -> Expr.compiled
(** {!Expr.compile} wired to this catalog's subquery resolver. *)
