(** Scalar expression compilation and evaluation.

    [compile schema e] resolves column references against [schema] once and
    returns a closure evaluated per row. SQL three-valued logic: arithmetic
    and comparisons propagate NULL; AND/OR follow Kleene logic; WHERE treats
    NULL as false (via [Value.as_bool]). *)

type compiled = Row.t -> Value.t

(* --- null-aware primitive operations --- *)

let numeric_binop ~int_op ~float_op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (float_op (Value.as_float a) (Value.as_float b))
  | _ ->
    Error.fail "type error: %s %s in arithmetic" (Value.type_name a)
      (Value.type_name b)

let add a b =
  match a, b with
  | Value.Date d, Value.Int k | Value.Int k, Value.Date d -> Value.Date (d + k)
  | _ -> numeric_binop ~int_op:( + ) ~float_op:( +. ) a b

let sub a b =
  match a, b with
  | Value.Date x, Value.Date y -> Value.Int (x - y)
  | Value.Date x, Value.Int k -> Value.Date (x - k)
  | _ -> numeric_binop ~int_op:( - ) ~float_op:( -. ) a b

let mul = numeric_binop ~int_op:( * ) ~float_op:( *. )

(* DuckDB semantics: / is floating-point division. *)
let div a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
    let y = Value.as_float b in
    if y = 0.0 then Value.Null else Value.Float (Value.as_float a /. y)

let modulo a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y ->
    if y = 0 then Value.Null else Value.Int (x mod y)
  | _ -> Error.fail "%% requires integers"

let concat a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Str (Value.to_string a ^ Value.to_string b)

let compare3 a b =
  (* SQL comparison: NULL operand -> NULL result *)
  if Value.is_null a || Value.is_null b then None
  else Some (Value.compare a b)

let bool3 = function
  | None -> Value.Null
  | Some b -> Value.Bool b

let cmp_op op a b =
  bool3 (Option.map op (compare3 a b))

let logical_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Bool (Value.as_bool a && Value.as_bool b)

let logical_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Bool (Value.as_bool a || Value.as_bool b)

let logical_not = function
  | Value.Null -> Value.Null
  | v -> Value.Bool (not (Value.as_bool v))

(** SQL LIKE with % (any run) and _ (any char); no escape character. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let cast_value (t : Sql.Ast.typ) (v : Value.t) =
  match t, v with
  | _, Value.Null -> Value.Null
  | Sql.Ast.T_int, Value.Int _ -> v
  | Sql.Ast.T_int, Value.Float f -> Value.Int (int_of_float (Float.round f))
  | Sql.Ast.T_int, Value.Bool b -> Value.Int (if b then 1 else 0)
  | Sql.Ast.T_int, Value.Str s ->
    (try Value.Int (int_of_string (String.trim s))
     with Failure _ -> Error.fail "cannot cast %S to INTEGER" s)
  | Sql.Ast.T_float, (Value.Int _ | Value.Float _) -> Value.Float (Value.as_float v)
  | Sql.Ast.T_float, Value.Str s ->
    (try Value.Float (float_of_string (String.trim s))
     with Failure _ -> Error.fail "cannot cast %S to DOUBLE" s)
  | Sql.Ast.T_text, _ -> Value.Str (Value.to_string v)
  | Sql.Ast.T_bool, Value.Bool _ -> v
  | Sql.Ast.T_bool, Value.Int i -> Value.Bool (i <> 0)
  | Sql.Ast.T_bool, Value.Str s ->
    (match String.lowercase_ascii (String.trim s) with
     | "true" | "t" | "1" -> Value.Bool true
     | "false" | "f" | "0" -> Value.Bool false
     | _ -> Error.fail "cannot cast %S to BOOLEAN" s)
  | Sql.Ast.T_date, Value.Date _ -> v
  | Sql.Ast.T_date, Value.Str s -> Value.date_of_string s
  | Sql.Ast.T_date, Value.Int d -> Value.Date d
  | _ ->
    Error.fail "cannot cast %s value to %s" (Value.type_name v)
      (Sql.Ast.typ_to_string t)

let lit_value = function
  | Sql.Ast.L_null -> Value.Null
  | Sql.Ast.L_int i -> Value.Int i
  | Sql.Ast.L_float f -> Value.Float f
  | Sql.Ast.L_string s -> Value.Str s
  | Sql.Ast.L_bool b -> Value.Bool b

(* --- scalar functions --- *)

let scalar_function name (args : Value.t list) : Value.t =
  let arity_error () =
    Error.fail "wrong number of arguments to %s" (String.uppercase_ascii name)
  in
  match name, args with
  | "coalesce", args ->
    (try List.find (fun v -> not (Value.is_null v)) args
     with Not_found -> Value.Null)
  | "ifnull", [ a; b ] -> if Value.is_null a then b else a
  | "nullif", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "abs", [ Value.Null ] -> Value.Null
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "round", [ Value.Null ] -> Value.Null
  | "round", [ Value.Int i ] -> Value.Int i
  | "round", [ Value.Float f ] -> Value.Float (Float.round f)
  | "round", [ Value.Float f; Value.Int digits ] ->
    let scale = 10.0 ** float_of_int digits in
    Value.Float (Float.round (f *. scale) /. scale)
  | "floor", [ Value.Null ] -> Value.Null
  | "floor", [ v ] -> Value.Int (int_of_float (Float.floor (Value.as_float v)))
  | "ceil", [ Value.Null ] | "ceiling", [ Value.Null ] -> Value.Null
  | ("ceil" | "ceiling"), [ v ] ->
    Value.Int (int_of_float (Float.ceil (Value.as_float v)))
  | "sqrt", [ Value.Null ] -> Value.Null
  | "sqrt", [ v ] -> Value.Float (sqrt (Value.as_float v))
  | "power", [ a; b ] | "pow", [ a; b ] ->
    if Value.is_null a || Value.is_null b then Value.Null
    else Value.Float (Value.as_float a ** Value.as_float b)
  | "lower", [ Value.Null ] -> Value.Null
  | "lower", [ v ] -> Value.Str (String.lowercase_ascii (Value.to_string v))
  | "upper", [ Value.Null ] -> Value.Null
  | "upper", [ v ] -> Value.Str (String.uppercase_ascii (Value.to_string v))
  | "length", [ Value.Null ] -> Value.Null
  | "length", [ v ] -> Value.Int (String.length (Value.to_string v))
  | "substr", args | "substring", args ->
    (match args with
     | [ Value.Null; _ ] | [ Value.Null; _; _ ] -> Value.Null
     | [ v; Value.Int start ] ->
       let s = Value.to_string v in
       let ofs = max 0 (start - 1) in
       if ofs >= String.length s then Value.Str ""
       else Value.Str (String.sub s ofs (String.length s - ofs))
     | [ v; Value.Int start; Value.Int len ] ->
       let s = Value.to_string v in
       let ofs = max 0 (start - 1) in
       let len = min len (String.length s - ofs) in
       if ofs >= String.length s || len <= 0 then Value.Str ""
       else Value.Str (String.sub s ofs len)
     | _ -> arity_error ())
  | "concat", args ->
    Value.Str
      (String.concat ""
         (List.map
            (fun v -> if Value.is_null v then "" else Value.to_string v)
            args))
  | "greatest", (_ :: _ as args) ->
    if List.exists Value.is_null args then Value.Null
    else List.fold_left (fun a b -> if Value.compare a b >= 0 then a else b)
        (List.hd args) args
  | "least", (_ :: _ as args) ->
    if List.exists Value.is_null args then Value.Null
    else List.fold_left (fun a b -> if Value.compare a b <= 0 then a else b)
        (List.hd args) args
  | "sign", [ Value.Null ] -> Value.Null
  | "sign", [ v ] ->
    let f = Value.as_float v in
    Value.Int (if f > 0.0 then 1 else if f < 0.0 then -1 else 0)
  | "year", [ Value.Date d ] ->
    let y, _, _ = Value.civil_from_days d in
    Value.Int y
  | "month", [ Value.Date d ] ->
    let _, m, _ = Value.civil_from_days d in
    Value.Int m
  | "day", [ Value.Date d ] ->
    let _, _, dd = Value.civil_from_days d in
    Value.Int dd
  | ("year" | "month" | "day"), [ Value.Null ] -> Value.Null
  | _, _ -> Error.fail "unknown function %s/%d" name (List.length args)

(* --- compilation --- *)

let neg_value = function
  | Value.Null -> Value.Null
  | Value.Int i -> Value.Int (-i)
  | Value.Float f -> Value.Float (-.f)
  | v -> Error.fail "cannot negate %s" (Value.type_name v)

(* the per-value primitive behind each binary operator — the vectorized
   executor's elementwise fallback kernels use these directly, so both
   engines share one set of value semantics *)
let binop_fn : Sql.Ast.binop -> Value.t -> Value.t -> Value.t = function
  | Sql.Ast.Add -> add
  | Sql.Ast.Sub -> sub
  | Sql.Ast.Mul -> mul
  | Sql.Ast.Div -> div
  | Sql.Ast.Mod -> modulo
  | Sql.Ast.Concat -> concat
  | Sql.Ast.Eq -> cmp_op (fun c -> c = 0)
  | Sql.Ast.Neq -> cmp_op (fun c -> c <> 0)
  | Sql.Ast.Lt -> cmp_op (fun c -> c < 0)
  | Sql.Ast.Le -> cmp_op (fun c -> c <= 0)
  | Sql.Ast.Gt -> cmp_op (fun c -> c > 0)
  | Sql.Ast.Ge -> cmp_op (fun c -> c >= 0)
  | Sql.Ast.And -> logical_and
  | Sql.Ast.Or -> logical_or

let compile ?(subquery : (Sql.Ast.select -> Value.t list) option)
    (schema : Schema.t) (top : Sql.Ast.expr) : compiled =
  let rec go (e : Sql.Ast.expr) : compiled =
  match e with
  | Sql.Ast.Lit l ->
    let v = lit_value l in
    fun _ -> v
  | Sql.Ast.Column (qualifier, name) ->
    if name = "*" then Error.fail "* is only valid in projections";
    let i, _ = Schema.find schema ~qualifier ~name in
    fun row -> row.(i)
  | Sql.Ast.Star -> Error.fail "* is only valid in projections"
  | Sql.Ast.Unary (Sql.Ast.Neg, a) ->
    let ca = go a in
    fun row -> neg_value (ca row)
  | Sql.Ast.Unary (Sql.Ast.Not, a) ->
    let ca = go a in
    fun row -> logical_not (ca row)
  | Sql.Ast.Binary (op, a, b) ->
    let ca = go a and cb = go b in
    let f = binop_fn op in
    fun row -> f (ca row) (cb row)
  | Sql.Ast.Func (name, args) ->
    let cargs = List.map go args in
    fun row -> scalar_function name (List.map (fun c -> c row) cargs)
  | Sql.Ast.Aggregate _ ->
    Error.fail "aggregate in scalar context (missing GROUP BY handling)"
  | Sql.Ast.Case (branches, default) ->
    let cbranches =
      List.map (fun (c, v) -> (go c, go v)) branches
    in
    let cdefault = Option.map go default in
    fun row ->
      let rec try_branches = function
        | [] ->
          (match cdefault with Some d -> d row | None -> Value.Null)
        | (c, v) :: rest ->
          (match c row with
           | Value.Bool true -> v row
           | _ -> try_branches rest)
      in
      try_branches cbranches
  | Sql.Ast.Cast (a, t) ->
    let ca = go a in
    fun row -> cast_value t (ca row)
  | Sql.Ast.In_list (a, items, negated) ->
    let ca = go a and citems = List.map go items in
    fun row ->
      let v = ca row in
      if Value.is_null v then Value.Null
      else
        let any_null = ref false in
        let hit =
          List.exists
            (fun ci ->
               let w = ci row in
               if Value.is_null w then begin any_null := true; false end
               else Value.equal v w)
            citems
        in
        if hit then Value.Bool (not negated)
        else if !any_null then Value.Null
        else Value.Bool negated
  | Sql.Ast.Between (a, lo, hi, negated) ->
    let ca = go a
    and clo = go lo
    and chi = go hi in
    fun row ->
      let v = ca row and l = clo row and h = chi row in
      if Value.is_null v || Value.is_null l || Value.is_null h then Value.Null
      else
        let inside = Value.compare v l >= 0 && Value.compare v h <= 0 in
        Value.Bool (if negated then not inside else inside)
  | Sql.Ast.Is_null (a, negated) ->
    let ca = go a in
    fun row ->
      let n = Value.is_null (ca row) in
      Value.Bool (if negated then not n else n)
  | Sql.Ast.Like (a, p, negated) ->
    let ca = go a and cp = go p in
    fun row ->
      let v = ca row and pat = cp row in
      if Value.is_null v || Value.is_null pat then Value.Null
      else
        let m = like_match ~pattern:(Value.to_string pat) (Value.to_string v) in
        Value.Bool (if negated then not m else m)
  | Sql.Ast.In_select (a, q, negated) ->
    (match subquery with
     | None -> Error.fail "IN (SELECT ...) is not available in this context"
     | Some resolve ->
       (* uncorrelated: the subquery is evaluated once, at compile time *)
       let ca = go a in
       let set = Hashtbl.create 64 in
       let any_null = ref false in
       List.iter
         (fun v ->
            if Value.is_null v then any_null := true
            else Hashtbl.replace set (Value.Str (Value.encode_key [| v |])) ())
         (resolve q);
       fun row ->
         let v = ca row in
         if Value.is_null v then Value.Null
         else if Hashtbl.mem set (Value.Str (Value.encode_key [| v |])) then
           Value.Bool (not negated)
         else if !any_null then Value.Null
         else Value.Bool negated)
  in
  go top

(** Evaluate a closed expression (no column references). *)
let eval_const (e : Sql.Ast.expr) : Value.t = compile [] e [||]

(** WHERE-clause truth: NULL counts as false. *)
let is_true = function Value.Bool true -> true | _ -> false

(** True when every column reference of [e] resolves in [schema] (and [e]
    contains no stars or aggregates). *)
let resolves (schema : Schema.t) (e : Sql.Ast.expr) : bool =
  let cols = Openivm_sql.Analysis.expr_columns [] e in
  (not (Sql.Ast.expr_contains_aggregate e))
  && List.for_all
    (fun (qualifier, name) ->
       name <> "*"
       &&
       match Schema.find_opt schema ~qualifier ~name with
       | Some _ -> true
       | None -> false
       | exception Error.Sql_error _ -> false)
    cols

(* --- static type inference (best effort, for DDL generation) --- *)

let rec infer_type (schema : Schema.t) (e : Sql.Ast.expr) : Sql.Ast.typ =
  match e with
  | Sql.Ast.Lit (Sql.Ast.L_int _) -> Sql.Ast.T_int
  | Sql.Ast.Lit (Sql.Ast.L_float _) -> Sql.Ast.T_float
  | Sql.Ast.Lit (Sql.Ast.L_string _) -> Sql.Ast.T_text
  | Sql.Ast.Lit (Sql.Ast.L_bool _) -> Sql.Ast.T_bool
  | Sql.Ast.Lit Sql.Ast.L_null -> Sql.Ast.T_int
  | Sql.Ast.Column (qualifier, name) ->
    (match Schema.find_opt schema ~qualifier ~name with
     | Some (_, c) -> c.Schema.typ
     | None -> Sql.Ast.T_int)
  | Sql.Ast.Star -> Sql.Ast.T_int
  | Sql.Ast.Unary (Sql.Ast.Neg, a) -> infer_type schema a
  | Sql.Ast.Unary (Sql.Ast.Not, _) -> Sql.Ast.T_bool
  | Sql.Ast.Binary ((Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul), a, b) ->
    (match infer_type schema a, infer_type schema b with
     | Sql.Ast.T_float, _ | _, Sql.Ast.T_float -> Sql.Ast.T_float
     | Sql.Ast.T_date, _ -> Sql.Ast.T_date
     | ta, _ -> ta)
  | Sql.Ast.Binary (Sql.Ast.Div, _, _) -> Sql.Ast.T_float
  | Sql.Ast.Binary (Sql.Ast.Mod, _, _) -> Sql.Ast.T_int
  | Sql.Ast.Binary (Sql.Ast.Concat, _, _) -> Sql.Ast.T_text
  | Sql.Ast.Binary
      ( ( Sql.Ast.Eq | Sql.Ast.Neq | Sql.Ast.Lt | Sql.Ast.Le | Sql.Ast.Gt
        | Sql.Ast.Ge | Sql.Ast.And | Sql.Ast.Or ),
        _, _ ) ->
    Sql.Ast.T_bool
  | Sql.Ast.Func (name, args) ->
    (match name with
     | "lower" | "upper" | "substr" | "substring" | "concat" -> Sql.Ast.T_text
     | "length" | "floor" | "ceil" | "ceiling" | "sign" | "year" | "month"
     | "day" ->
       Sql.Ast.T_int
     | "sqrt" | "power" | "pow" -> Sql.Ast.T_float
     | "coalesce" | "ifnull" | "nullif" | "greatest" | "least" | "abs"
     | "round" ->
       (match args with
        | a :: _ -> infer_type schema a
        | [] -> Sql.Ast.T_int)
     | _ -> Sql.Ast.T_int)
  | Sql.Ast.Aggregate (Sql.Ast.Count, _, _) -> Sql.Ast.T_int
  | Sql.Ast.Aggregate (Sql.Ast.Avg, _, _) -> Sql.Ast.T_float
  | Sql.Ast.Aggregate ((Sql.Ast.Sum | Sql.Ast.Min | Sql.Ast.Max), _, arg) ->
    (match arg with
     | Some a -> infer_type schema a
     | None -> Sql.Ast.T_int)
  | Sql.Ast.Case (branches, default) ->
    (match branches, default with
     | (_, v) :: _, _ -> infer_type schema v
     | [], Some d -> infer_type schema d
     | [], None -> Sql.Ast.T_int)
  | Sql.Ast.Cast (_, t) -> t
  | Sql.Ast.In_list _ | Sql.Ast.In_select _ | Sql.Ast.Between _
  | Sql.Ast.Is_null _ | Sql.Ast.Like _ ->
    Sql.Ast.T_bool
