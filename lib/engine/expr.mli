(** Scalar expression compilation and evaluation with SQL three-valued
    logic (NULL propagation through arithmetic and comparisons, Kleene
    AND/OR). *)

type compiled = Row.t -> Value.t

val compile :
  ?subquery:(Sql.Ast.select -> Value.t list) ->
  Schema.t ->
  Sql.Ast.expr ->
  compiled
(** Resolve column references against the schema once; the returned closure
    evaluates per row. [subquery] resolves uncorrelated [IN (SELECT ...)]
    subqueries to their first column — the subquery is evaluated once, at
    compile time. Aggregates are rejected (they belong to the Aggregate
    operator). *)

val eval_const : Sql.Ast.expr -> Value.t
(** Evaluate a closed expression (no column references). *)

val is_true : Value.t -> bool
(** WHERE-clause truth: NULL counts as false. *)

val resolves : Schema.t -> Sql.Ast.expr -> bool
(** True when every column reference resolves in the schema (and the
    expression contains no stars or aggregates). *)

val neg_value : Value.t -> Value.t
(** Unary minus with NULL propagation. *)

val logical_not : Value.t -> Value.t
(** SQL NOT with NULL propagation. *)

val binop_fn : Sql.Ast.binop -> Value.t -> Value.t -> Value.t
(** The per-value primitive behind each binary operator (NULL propagation,
    Kleene AND/OR, always-float division) — shared with the vectorized
    executor's elementwise fallback kernels. *)

val cast_value : Sql.Ast.typ -> Value.t -> Value.t
val lit_value : Sql.Ast.lit -> Value.t
val like_match : pattern:string -> string -> bool
val scalar_function : string -> Value.t list -> Value.t

val infer_type : Schema.t -> Sql.Ast.expr -> Sql.Ast.typ
(** Best-effort static type, used by the IVM DDL generator. *)
