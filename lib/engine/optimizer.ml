(** Rule-based logical optimizer.

    Rules (applied to fixpoint, bounded):
    - constant folding inside expressions;
    - trivial filter elimination (WHERE TRUE) and annihilation (WHERE FALSE);
    - filter splitting and pushdown through Project, below Join (to the side
      a conjunct references), and into both branches of set operations;
    - projection collapsing (Project over Project when the outer references
      only pass-through columns);
    - cross products with an equality filter on top become inner joins.

    The OpenIVM compiler runs its incremental rewrite as "a final step in
    the optimization" (paper §2); [Openivm.Rewrite] plugs in after these. *)

let try_fold (e : Sql.Ast.expr) : Sql.Ast.expr =
  if Openivm_sql.Analysis.is_constant e then
    match e with
    | Sql.Ast.Lit _ -> e
    | _ ->
      (try
         match Expr.eval_const e with
         | Value.Null -> Sql.Ast.Lit Sql.Ast.L_null
         | Value.Bool b -> Sql.Ast.Lit (Sql.Ast.L_bool b)
         | Value.Int i -> Sql.Ast.Lit (Sql.Ast.L_int i)
         | Value.Float f -> Sql.Ast.Lit (Sql.Ast.L_float f)
         | Value.Str s -> Sql.Ast.Lit (Sql.Ast.L_string s)
         | Value.Date _ -> e (* no date literal in the AST; keep the cast *)
       with Error.Sql_error _ -> e)
  else e

(* [map_expr] rebuilds bottom-up, so one pass folds nested constants. *)
let fold_constants (e : Sql.Ast.expr) : Sql.Ast.expr =
  Sql.Ast.map_expr try_fold e

(** Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | Sql.Ast.Binary (Sql.Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Sql.Ast.Lit (Sql.Ast.L_bool true)
  | e :: rest ->
    List.fold_left (fun acc c -> Sql.Ast.Binary (Sql.Ast.And, acc, c)) e rest

(** Can every column reference in [e] be resolved against [schema]? *)
let refers_only_to schema (e : Sql.Ast.expr) =
  let cols = Openivm_sql.Analysis.expr_columns [] e in
  List.for_all
    (fun (qualifier, name) ->
       name = "*"
       ||
       match Schema.find_opt schema ~qualifier ~name with
       | Some _ -> true
       | None -> false
       | exception Error.Sql_error _ -> false)
    cols

(** Substitute projection outputs into an expression: rewrite references to
    a Project's output columns by the defining expressions, enabling
    pushdown through Project. Returns None if some reference cannot be
    inlined. *)
let substitute_projection (projections : (Sql.Ast.expr * string) list)
    ~(binding : string option) (e : Sql.Ast.expr) : Sql.Ast.expr option =
  let exception Give_up in
  let resolve qualifier name =
    let qualifier_matches =
      match qualifier, binding with
      | None, _ -> true
      | Some q, Some b -> String.equal q b
      | Some _, None -> false
    in
    if not qualifier_matches then raise Give_up;
    match List.find_opt (fun (_, n) -> String.equal n name) projections with
    | Some (def, _) -> def
    | None -> raise Give_up
  in
  let rec go e =
    match e with
    | Sql.Ast.Column (q, name) when name <> "*" -> resolve q name
    | Sql.Ast.Column _ | Sql.Ast.Star -> raise Give_up
    | Sql.Ast.Lit _ -> e
    | Sql.Ast.Unary (op, a) -> Sql.Ast.Unary (op, go a)
    | Sql.Ast.Binary (op, a, b) -> Sql.Ast.Binary (op, go a, go b)
    | Sql.Ast.Func (n, args) -> Sql.Ast.Func (n, List.map go args)
    | Sql.Ast.Aggregate _ -> raise Give_up
    | Sql.Ast.Case (branches, default) ->
      Sql.Ast.Case
        (List.map (fun (c, v) -> (go c, go v)) branches, Option.map go default)
    | Sql.Ast.Cast (a, t) -> Sql.Ast.Cast (go a, t)
    | Sql.Ast.In_list (a, es, neg) -> Sql.Ast.In_list (go a, List.map go es, neg)
    | Sql.Ast.In_select (a, q, neg) -> Sql.Ast.In_select (go a, q, neg)
    | Sql.Ast.Between (a, lo, hi, neg) ->
      Sql.Ast.Between (go a, go lo, go hi, neg)
    | Sql.Ast.Is_null (a, neg) -> Sql.Ast.Is_null (go a, neg)
    | Sql.Ast.Like (a, b, neg) -> Sql.Ast.Like (go a, go b, neg)
  in
  try Some (go e) with Give_up -> None

let is_true_lit = function Sql.Ast.Lit (Sql.Ast.L_bool true) -> true | _ -> false
let is_false_lit = function
  | Sql.Ast.Lit (Sql.Ast.L_bool false) | Sql.Ast.Lit Sql.Ast.L_null -> true
  | _ -> false

type context = {
  lookup : string -> Schema.t;
  table_of : string -> Table.t;
}

(** When every column of some index is pinned by a [col = const] conjunct,
    replace the scan by an index lookup; leftover conjuncts stay above. *)
let try_index_scan ctx ~table ~binding (cs : Sql.Ast.expr list) :
  (Plan.t * Sql.Ast.expr list) option =
  let tbl = ctx.table_of table in
  let schema = Schema.requalify tbl.Table.schema binding in
  (* pinned columns: position -> (const expr, conjunct) *)
  let pinned = Hashtbl.create 8 in
  List.iter
    (fun c ->
       match c with
       | Sql.Ast.Binary (Sql.Ast.Eq, a, b) ->
         let try_pin col const =
           match col with
           | Sql.Ast.Column (qualifier, name) when name <> "*" ->
             if Openivm_sql.Analysis.is_constant const then begin
               match Schema.find_opt schema ~qualifier ~name with
               | Some (i, _) ->
                 if not (Hashtbl.mem pinned i) then
                   Hashtbl.replace pinned i (const, c)
               | None -> ()
               | exception Error.Sql_error _ -> ()
             end
           | _ -> ()
         in
         try_pin a b;
         try_pin b a
       | _ -> ())
    cs;
  let candidate positions =
    Array.for_all (fun i -> Hashtbl.mem pinned i) positions
    && Array.length positions > 0
  in
  let chosen =
    if Array.length tbl.Table.primary_key > 0 && candidate tbl.Table.primary_key
    then Some ("", tbl.Table.primary_key)
    else
      List.find_map
        (fun ix ->
           if candidate ix.Table.key_positions then
             Some (ix.Table.index_name, ix.Table.key_positions)
           else None)
        tbl.Table.secondary
  in
  match chosen with
  | None -> None
  | Some (index_name, positions) ->
    let used =
      Array.to_list (Array.map (fun i -> snd (Hashtbl.find pinned i)) positions)
    in
    let key_exprs =
      Array.to_list (Array.map (fun i -> fst (Hashtbl.find pinned i)) positions)
    in
    let leftover = List.filter (fun c -> not (List.memq c used)) cs in
    Some (Plan.Index_scan { table; binding; index_name; key_exprs }, leftover)

let rec rewrite ctx (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children (rewrite ctx) plan in
  match plan with
  | Plan.Filter { input; predicate } ->
    let predicate = fold_constants predicate in
    if is_true_lit predicate then input
    else if is_false_lit predicate then
      Plan.Materialized
        { schema = Plan.schema_of ~lookup:ctx.lookup input;
          rows = [];
          label = "empty" }
    else begin
      let cs =
        List.filter (fun c -> not (is_true_lit c)) (conjuncts predicate)
      in
      if cs = [] then input
      else if List.exists is_false_lit cs then
        Plan.Materialized
          { schema = Plan.schema_of ~lookup:ctx.lookup input;
            rows = [];
            label = "empty" }
      else push_filter ctx input cs
    end
  | Plan.Project { input = Plan.Project inner; projections; binding }
    when inner.binding = None || binding = None ->
    (* collapse Project(Project) when all outer exprs inline *)
    let substituted =
      List.map
        (fun (e, name) ->
           ( substitute_projection inner.projections ~binding:inner.binding e,
             name ))
        projections
    in
    if List.for_all (fun (e, _) -> e <> None) substituted then
      Plan.Project
        { input = inner.input;
          projections =
            List.map (fun (e, name) -> (Option.get e, name)) substituted;
          binding }
    else plan
  | Plan.Join { left; right; kind = Sql.Ast.Cross; condition = None } ->
    Plan.Join { left; right; kind = Sql.Ast.Cross; condition = None }
  | other -> other

(** Push a list of conjuncts down through [input] as far as possible;
    whatever cannot sink stays in a Filter on top. *)
and push_filter ctx (input : Plan.t) (cs : Sql.Ast.expr list) : Plan.t =
  match input with
  | Plan.Filter { input = deeper; predicate } ->
    push_filter ctx deeper (cs @ conjuncts predicate)
  | Plan.Scan { table; binding } ->
    (match try_index_scan ctx ~table ~binding cs with
     | Some (scan, []) -> scan
     | Some (scan, leftover) ->
       Plan.Filter { input = scan; predicate = conjoin leftover }
     | None -> Plan.Filter { input; predicate = conjoin cs })
  | Plan.Project { input = deeper; projections; binding } ->
    let sinkable, stuck =
      List.partition_map
        (fun c ->
           match substitute_projection projections ~binding c with
           | Some c' -> Either.Left c'
           | None -> Either.Right c)
        cs
    in
    let deeper' =
      if sinkable = [] then deeper else push_filter ctx deeper sinkable
    in
    let projected = Plan.Project { input = deeper'; projections; binding } in
    if stuck = [] then projected
    else Plan.Filter { input = projected; predicate = conjoin stuck }
  | Plan.Join { left; right; kind; condition }
    when kind = Sql.Ast.Inner || kind = Sql.Ast.Cross ->
    let ls = Plan.schema_of ~lookup:ctx.lookup left in
    let rs = Plan.schema_of ~lookup:ctx.lookup right in
    let to_left, rest =
      List.partition (fun c -> refers_only_to ls c) cs
    in
    let to_right, stuck = List.partition (fun c -> refers_only_to rs c) rest in
    let left' =
      if to_left = [] then left else push_filter ctx left to_left
    in
    let right' =
      if to_right = [] then right else push_filter ctx right to_right
    in
    (* an equality conjunct spanning both sides upgrades a cross product *)
    let join_conds, still_stuck =
      if kind = Sql.Ast.Cross then
        List.partition
          (fun c ->
             match c with
             | Sql.Ast.Binary (Sql.Ast.Eq, a, b) ->
               (refers_only_to ls a && refers_only_to rs b)
               || (refers_only_to rs a && refers_only_to ls b)
             | _ -> false)
          stuck
      else ([], stuck)
    in
    let kind', condition' =
      if join_conds <> [] then
        ( Sql.Ast.Inner,
          Some
            (match condition with
             | Some c -> conjoin (c :: join_conds)
             | None -> conjoin join_conds) )
      else (kind, condition)
    in
    let joined =
      Plan.Join { left = left'; right = right'; kind = kind'; condition = condition' }
    in
    if still_stuck = [] then joined
    else Plan.Filter { input = joined; predicate = conjoin still_stuck }
  (* note: pushing through set operations would need positional (not
     name-based) rewriting, since the branches' output names differ; the
     rule is omitted *)
  | other -> Plan.Filter { input = other; predicate = conjoin cs }

let optimize (catalog : Catalog.t) (plan : Plan.t) : Plan.t =
  let ctx =
    { lookup = (fun t -> (Catalog.find_table catalog t).Table.schema);
      table_of = Catalog.find_table catalog }
  in
  (* two passes reach a fixpoint for the rule set above on realistic plans *)
  rewrite ctx (rewrite ctx plan)
