(** Rule-based logical optimizer: constant folding, trivial-filter
    elimination/annihilation, filter splitting and pushdown (through
    Project, to join sides), cross-product-to-join upgrade, projection
    collapsing, and index-scan selection for fully pinned PK/secondary
    keys. The OpenIVM rewrite runs as templates over the analyzed view
    shape after these (paper §2: "as a final step in the optimization"). *)

val fold_constants : Sql.Ast.expr -> Sql.Ast.expr

val conjuncts : Sql.Ast.expr -> Sql.Ast.expr list
(** Top-level AND-conjuncts. *)

val conjoin : Sql.Ast.expr list -> Sql.Ast.expr
(** [conjoin []] is [TRUE]. *)

val optimize : Catalog.t -> Plan.t -> Plan.t
