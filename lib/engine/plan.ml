(** Logical query plans.

    Expressions inside plan nodes are SQL AST expressions that name columns
    of the node's *input* schema; they are compiled to closures at
    execution time. The same representation is what the OpenIVM rewriter
    transforms into incremental form, mirroring the paper's use of the
    DuckDB logical plan. *)

type agg_spec = {
  agg : Sql.Ast.agg;
  distinct : bool;
  arg : Sql.Ast.expr option;  (** None = COUNT star *)
  out_name : string;
}

type t =
  | Scan of { table : string; binding : string }
  | Index_scan of {
      table : string;
      binding : string;
      index_name : string;  (** "" = the primary key *)
      key_exprs : Sql.Ast.expr list;  (** constant expressions, one per key column *)
    }
  | Filter of { input : t; predicate : Sql.Ast.expr }
  | Project of {
      input : t;
      projections : (Sql.Ast.expr * string) list;
      binding : string option;  (** subquery alias, if any *)
    }
  | Join of {
      left : t;
      right : t;
      kind : Sql.Ast.join_kind;
      condition : Sql.Ast.expr option;
    }
  | Aggregate of {
      input : t;
      group_exprs : (Sql.Ast.expr * string) list;
      aggs : agg_spec list;
    }
  | Distinct of t
  | Sort of { input : t; keys : (Sql.Ast.expr * bool) list }
      (** bool = descending *)
  | Limit of { input : t; limit : int option; offset : int option }
  | Set_op of { op : Sql.Ast.set_op; left : t; right : t }
  | Materialized of { schema : Schema.t; rows : Row.t list; label : string }
      (** pre-computed input: planned CTE results, VALUES, dummy inputs *)

(** Output schema of a plan. [lookup] resolves base-table schemas. *)
let rec schema_of ~(lookup : string -> Schema.t) (plan : t) : Schema.t =
  match plan with
  | Scan { table; binding } | Index_scan { table; binding; _ } ->
    Schema.requalify (lookup table) binding
  | Filter { input; _ } -> schema_of ~lookup input
  | Project { input; projections; binding } ->
    let inner = schema_of ~lookup input in
    List.map
      (fun (e, name) ->
         Schema.column ?table:binding name (Expr.infer_type inner e))
      projections
  | Join { left; right; kind; _ } ->
    let ls = schema_of ~lookup left and rs = schema_of ~lookup right in
    let weaken = List.map (fun c -> { c with Schema.not_null = false }) in
    (match kind with
     | Sql.Ast.Left_outer -> ls @ weaken rs
     | Sql.Ast.Right_outer -> weaken ls @ rs
     | Sql.Ast.Full_outer -> weaken ls @ weaken rs
     | Sql.Ast.Inner | Sql.Ast.Cross -> ls @ rs)
  | Aggregate { input; group_exprs; aggs } ->
    let inner = schema_of ~lookup input in
    let group_cols =
      List.map
        (fun (e, name) ->
           let table =
             match e with Sql.Ast.Column (q, _) -> q | _ -> None
           in
           Schema.column ?table name (Expr.infer_type inner e))
        group_exprs
    in
    let agg_cols =
      List.map
        (fun spec ->
           Schema.column spec.out_name
             (Expr.infer_type inner
                (Sql.Ast.Aggregate (spec.agg, spec.distinct, spec.arg))))
        aggs
    in
    group_cols @ agg_cols
  | Distinct input -> schema_of ~lookup input
  | Sort { input; _ } -> schema_of ~lookup input
  | Limit { input; _ } -> schema_of ~lookup input
  | Set_op { left; _ } -> schema_of ~lookup left
  | Materialized { schema; _ } -> schema

(** Structural fold over inputs, for rewriters. *)
let map_children f = function
  | (Scan _ | Index_scan _) as p -> p
  | Filter { input; predicate } -> Filter { input = f input; predicate }
  | Project { input; projections; binding } ->
    Project { input = f input; projections; binding }
  | Join { left; right; kind; condition } ->
    Join { left = f left; right = f right; kind; condition }
  | Aggregate { input; group_exprs; aggs } ->
    Aggregate { input = f input; group_exprs; aggs }
  | Distinct input -> Distinct (f input)
  | Sort { input; keys } -> Sort { input = f input; keys }
  | Limit { input; limit; offset } -> Limit { input = f input; limit; offset }
  | Set_op { op; left; right } -> Set_op { op; left = f left; right = f right }
  | Materialized _ as p -> p

let rec base_tables = function
  | Scan { table; _ } | Index_scan { table; _ } -> [ table ]
  | Filter { input; _ } | Project { input; _ } | Aggregate { input; _ }
  | Distinct input | Sort { input; _ } | Limit { input; _ } ->
    base_tables input
  | Join { left; right; _ } | Set_op { left; right; _ } ->
    base_tables left @ base_tables right
  | Materialized _ -> []

let node_name = function
  | Scan _ -> "SCAN"
  | Index_scan _ -> "INDEX_SCAN"
  | Filter _ -> "FILTER"
  | Project _ -> "PROJECT"
  | Join { kind; _ } ->
    (match kind with
     | Sql.Ast.Inner -> "HASH_JOIN(INNER)"
     | Sql.Ast.Left_outer -> "HASH_JOIN(LEFT)"
     | Sql.Ast.Right_outer -> "HASH_JOIN(RIGHT)"
     | Sql.Ast.Full_outer -> "HASH_JOIN(FULL)"
     | Sql.Ast.Cross -> "CROSS_PRODUCT")
  | Aggregate _ -> "HASH_GROUP_BY"
  | Distinct _ -> "DISTINCT"
  | Sort _ -> "ORDER_BY"
  | Limit _ -> "LIMIT"
  | Set_op { op; _ } ->
    (match op with
     | Sql.Ast.Union -> "UNION"
     | Sql.Ast.Union_all -> "UNION_ALL"
     | Sql.Ast.Except -> "EXCEPT"
     | Sql.Ast.Intersect -> "INTERSECT")
  | Materialized { label; _ } -> "MATERIALIZED(" ^ label ^ ")"

let rec to_tree_lines ~indent plan : string list =
  let pad = String.make indent ' ' in
  let detail =
    match plan with
    | Scan { table; binding } ->
      if String.equal table binding then " " ^ table
      else Printf.sprintf " %s AS %s" table binding
    | Index_scan { table; index_name; key_exprs; _ } ->
      Printf.sprintf " %s VIA %s (%s)" table
        (if index_name = "" then "PRIMARY KEY" else index_name)
        (String.concat ", "
           (List.map
              (Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb)
              key_exprs))
    | Filter { predicate; _ } ->
      " " ^ Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb predicate
    | Project { projections; _ } ->
      " "
      ^ String.concat ", "
          (List.map
             (fun (e, name) ->
                Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb e
                ^ " AS " ^ name)
             projections)
    | Join { condition = Some c; _ } ->
      " ON " ^ Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb c
    | Aggregate { group_exprs; aggs; _ } ->
      Printf.sprintf " groups=[%s] aggs=[%s]"
        (String.concat ", " (List.map snd group_exprs))
        (String.concat ", " (List.map (fun a -> a.out_name) aggs))
    | _ -> ""
  in
  let children =
    match plan with
    | Scan _ | Index_scan _ | Materialized _ -> []
    | Filter { input; _ } | Project { input; _ } | Aggregate { input; _ }
    | Distinct input | Sort { input; _ } | Limit { input; _ } ->
      [ input ]
    | Join { left; right; _ } | Set_op { left; right; _ } -> [ left; right ]
  in
  (pad ^ node_name plan ^ detail)
  :: List.concat_map (to_tree_lines ~indent:(indent + 2)) children

let to_string plan = String.concat "\n" (to_tree_lines ~indent:0 plan)
