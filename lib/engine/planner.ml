(** Translate a parsed SELECT into a logical plan.

    Aggregation queries are decomposed into
      Project ( [Filter having] ( Aggregate ( input ) ) )
    with aggregate sub-expressions and GROUP BY expressions replaced by
    references to the Aggregate node's output columns. CTEs and derived
    tables are planned recursively and inlined. *)

type env = {
  catalog : Catalog.t;
  ctes : (string * Plan.t) list;
}

let lookup_schema env name = (Catalog.find_table env.catalog name).Table.schema

let schema_of env plan = Plan.schema_of ~lookup:(lookup_schema env) plan

(* --- FROM --- *)

let rec plan_from env (f : Sql.Ast.from_clause) : Plan.t =
  match f with
  | Sql.Ast.Table_ref (name, alias) ->
    let binding = Option.value alias ~default:name in
    (match List.assoc_opt name env.ctes with
     | Some cte_plan ->
       (* inline the CTE, re-exposing its columns under the binding name *)
       let s = schema_of env cte_plan in
       let projections =
         List.map (fun c -> (Sql.Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name)) s
       in
       Plan.Project { input = cte_plan; projections; binding = Some binding }
     | None ->
       (match Catalog.find_view_opt env.catalog name with
        | Some v ->
          (* non-materialized view: expand its definition *)
          let inner = plan_select env v.Catalog.query in
          let s = schema_of env inner in
          let projections =
            List.map (fun c -> (Sql.Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name)) s
          in
          Plan.Project { input = inner; projections; binding = Some binding }
        | None ->
          ignore (Catalog.find_table env.catalog name);
          Plan.Scan { table = name; binding }))
  | Sql.Ast.Subquery (q, alias) ->
    let inner = plan_select env q in
    let s = schema_of env inner in
    let projections =
      List.map (fun c -> (Sql.Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name)) s
    in
    Plan.Project { input = inner; projections; binding = Some alias }
  | Sql.Ast.Join (l, kind, r, condition) ->
    Plan.Join { left = plan_from env l; right = plan_from env r; kind; condition }

(* --- projections --- *)

and expand_stars env (input : Plan.t) (projections : (Sql.Ast.expr * string option) list) :
  (Sql.Ast.expr * string) list =
  let s = schema_of env input in
  let expand i (e, alias) =
    match e with
    | Sql.Ast.Star | Sql.Ast.Column (None, "*") ->
      List.map
        (fun c -> (Sql.Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name))
        s
    | Sql.Ast.Column (Some q, "*") ->
      let cols =
        List.filter (fun c -> c.Schema.table = Some q) s
      in
      if cols = [] then Error.fail "unknown table %S in %s.*" q q;
      List.map
        (fun c -> (Sql.Ast.Column (c.Schema.table, c.Schema.name), c.Schema.name))
        cols
    | _ -> [ (e, Openivm_sql.Analysis.projection_name i (e, alias)) ]
  in
  List.concat (List.mapi expand projections)

(* --- aggregate decomposition --- *)

(** Rewrite [e] so aggregates and group expressions become column
    references into the Aggregate node's output. *)
and rewrite_over_aggregate ~group_exprs ~agg_of_node (e : Sql.Ast.expr) : Sql.Ast.expr =
  let rec go e =
    (* whole-expression match against a GROUP BY expression first; keep the
       qualifier so two group keys sharing a bare name (t1.label, t2.label)
       stay distinguishable in the Aggregate output schema *)
    match List.find_opt (fun (g, _) -> g = e) group_exprs with
    | Some (g, name) ->
      let qualifier =
        match g with Sql.Ast.Column (q, _) -> q | _ -> None
      in
      Sql.Ast.Column (qualifier, name)
    | None ->
      (match e with
       | Sql.Ast.Aggregate _ -> Sql.Ast.Column (None, agg_of_node e)
       | Sql.Ast.Lit _ | Sql.Ast.Column _ | Sql.Ast.Star -> e
       | Sql.Ast.Unary (op, a) -> Sql.Ast.Unary (op, go a)
       | Sql.Ast.Binary (op, a, b) -> Sql.Ast.Binary (op, go a, go b)
       | Sql.Ast.Func (n, args) -> Sql.Ast.Func (n, List.map go args)
       | Sql.Ast.Case (branches, default) ->
         Sql.Ast.Case
           ( List.map (fun (c, v) -> (go c, go v)) branches,
             Option.map go default )
       | Sql.Ast.Cast (a, t) -> Sql.Ast.Cast (go a, t)
       | Sql.Ast.In_list (a, es, neg) -> Sql.Ast.In_list (go a, List.map go es, neg)
       | Sql.Ast.In_select (a, q, neg) -> Sql.Ast.In_select (go a, q, neg)
       | Sql.Ast.Between (a, lo, hi, neg) -> Sql.Ast.Between (go a, go lo, go hi, neg)
       | Sql.Ast.Is_null (a, neg) -> Sql.Ast.Is_null (go a, neg)
       | Sql.Ast.Like (a, b, neg) -> Sql.Ast.Like (go a, go b, neg))
  in
  go e

and plan_aggregate _env (input : Plan.t) (s : Sql.Ast.select)
    (projections : (Sql.Ast.expr * string) list) :
  Plan.t * (Sql.Ast.expr -> Sql.Ast.expr) =
  (* name the group expressions *)
  let group_exprs =
    List.mapi
      (fun i g ->
         match g with
         | Sql.Ast.Column (_, name) -> (g, name)
         | _ -> (g, Printf.sprintf "__grp%d" i))
      s.Sql.Ast.group_by
  in
  (* collect aggregates from projections and HAVING, dedup structurally *)
  let agg_nodes =
    let from_projs =
      List.concat_map (fun (e, _) -> List.rev (Sql.Ast.collect_aggregates [] e)) projections
    in
    let from_having =
      match s.Sql.Ast.having with
      | Some h -> List.rev (Sql.Ast.collect_aggregates [] h)
      | None -> []
    in
    let seen = ref [] in
    List.iter
      (fun (_, _, _, node) -> if not (List.mem node !seen) then seen := node :: !seen)
      (from_projs @ from_having);
    List.rev !seen
  in
  let aggs =
    List.mapi
      (fun i node ->
         match node with
         | Sql.Ast.Aggregate (agg, distinct, arg) ->
           { Plan.agg; distinct; arg; out_name = Printf.sprintf "__agg%d" i }
         | _ -> assert false)
      agg_nodes
  in
  let agg_of_node node =
    let rec idx i = function
      | [] -> Error.fail "internal: aggregate not collected"
      | n :: _ when n = node -> i
      | _ :: rest -> idx (i + 1) rest
    in
    (List.nth aggs (idx 0 agg_nodes)).Plan.out_name
  in
  let agg_plan = Plan.Aggregate { input; group_exprs; aggs } in
  let rewrite = rewrite_over_aggregate ~group_exprs ~agg_of_node in
  let filtered =
    match s.Sql.Ast.having with
    | Some h -> Plan.Filter { input = agg_plan; predicate = rewrite h }
    | None -> agg_plan
  in
  let out_projections =
    List.map (fun (e, name) -> (rewrite e, name)) projections
  in
  ( Plan.Project { input = filtered; projections = out_projections; binding = None },
    rewrite )

(* --- SELECT --- *)

and plan_select env (s : Sql.Ast.select) : Plan.t =
  (* CTEs: plan in order, later CTEs may reference earlier ones *)
  let env =
    List.fold_left
      (fun env (name, q) -> { env with ctes = (name, plan_select env q) :: env.ctes })
      env s.Sql.Ast.ctes
  in
  let core lhs : Plan.t * (Sql.Ast.expr -> Sql.Ast.expr) =
    let input =
      match lhs.Sql.Ast.from with
      | Some f -> plan_from env f
      | None ->
        (* SELECT without FROM: a single empty row *)
        Plan.Materialized { schema = []; rows = [ [||] ]; label = "dual" }
    in
    let input =
      match lhs.Sql.Ast.where with
      | Some predicate -> Plan.Filter { input; predicate }
      | None -> input
    in
    let projections = expand_stars env input lhs.Sql.Ast.projections in
    let projected, key_rewrite =
      if Sql.Ast.select_has_aggregate lhs then
        plan_aggregate env input lhs projections
      else begin
        (match lhs.Sql.Ast.having with
         | Some _ -> Error.fail "HAVING without aggregation"
         | None -> ());
        (Plan.Project { input; projections; binding = None }, fun e -> e)
      end
    in
    ( (if lhs.Sql.Ast.distinct then Plan.Distinct projected else projected),
      key_rewrite )
  in
  let base, key_rewrite = core s in
  let with_set =
    match s.Sql.Ast.set_operation with
    | None -> base
    | Some (op, rhs) ->
      (* the rhs is a bare core (no CTEs of its own, same env) *)
      let rec build lhs_plan (op, rhs) =
        let rhs_plan, _ = core rhs in
        let node = Plan.Set_op { op; left = lhs_plan; right = rhs_plan } in
        match rhs.Sql.Ast.set_operation with
        | Some next -> build node next
        | None -> node
      in
      build base (op, rhs)
  in
  let sorted = plan_order_by env with_set ~key_rewrite s in
  if s.Sql.Ast.limit = None && s.Sql.Ast.offset = None then sorted
  else Plan.Limit { input = sorted; limit = s.Sql.Ast.limit; offset = s.Sql.Ast.offset }

(** Attach ORDER BY. Keys resolve against the output schema; keys that
    instead match a projection's defining expression are redirected to the
    output column; anything else becomes a hidden sort column appended to
    the top Project and stripped again above the Sort. *)
and plan_order_by env (plan : Plan.t) ~key_rewrite (s : Sql.Ast.select) : Plan.t =
  if s.Sql.Ast.order_by = [] then plan
  else begin
    let out_schema = schema_of env plan in
    let keys =
      List.map
        (fun { Sql.Ast.order_expr; descending } ->
           (key_rewrite order_expr, descending))
        s.Sql.Ast.order_by
    in
    let top_projections =
      match plan with
      | Plan.Project { projections; binding = None; _ } -> Some projections
      | _ -> None
    in
    let redirect (e, desc) =
      if Expr.resolves out_schema e then `Ready (e, desc)
      else
        match top_projections with
        | Some projections ->
          (match List.find_opt (fun (def, _) -> def = e) projections with
           | Some (_, name) -> `Ready (Sql.Ast.Column (None, name), desc)
           | None -> `Hidden (e, desc))
        | None -> `Fail e
    in
    let decided = List.map redirect keys in
    let failure =
      List.find_map (function `Fail e -> Some e | _ -> None) decided
    in
    (match failure with
     | Some e ->
       Error.fail "ORDER BY expression %s must appear in the select list"
         (Openivm_sql.Pretty.expr_to_sql Openivm_sql.Dialect.duckdb e)
     | None -> ());
    let hidden =
      List.filter_map (function `Hidden (e, _) -> Some e | _ -> None) decided
    in
    if hidden = [] then
      Plan.Sort
        { input = plan;
          keys = List.map (function `Ready k -> k | _ -> assert false) decided }
    else begin
      match plan with
      | Plan.Project { input; projections; binding } ->
        let hidden_named =
          List.mapi (fun i e -> (e, Printf.sprintf "__ord%d" i)) hidden
        in
        let extended =
          Plan.Project
            { input; projections = projections @ hidden_named; binding }
        in
        let keys =
          List.map
            (function
              | `Ready k -> k
              | `Hidden (e, desc) ->
                let name = List.assoc e hidden_named in
                (Sql.Ast.Column (None, name), desc)
              | `Fail _ -> assert false)
            decided
        in
        let sorted = Plan.Sort { input = extended; keys } in
        (* strip the hidden columns *)
        let visible =
          List.map
            (fun (_, name) -> (Sql.Ast.Column (None, name), name))
            projections
        in
        Plan.Project { input = sorted; projections = visible; binding = None }
      | _ ->
        Error.fail
          "ORDER BY expression must appear in the select list of a set \
           operation or DISTINCT query"
    end
  end

let plan (catalog : Catalog.t) (s : Sql.Ast.select) : Plan.t =
  plan_select { catalog; ctes = [] } s
