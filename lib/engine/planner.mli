(** Translate a parsed SELECT into a logical plan: CTE and view inlining,
    star expansion, aggregate decomposition
    (Project ∘ [Filter having] ∘ Aggregate), ORDER BY resolution with
    hidden sort columns, set operations. *)

val plan : Catalog.t -> Sql.Ast.select -> Plan.t
(** Raises {!Error.Sql_error} on unresolvable names and semantic errors. *)
