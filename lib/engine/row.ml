(** Rows are flat value arrays. Equality/hash are structural and consistent
    with [Value.equal]/[Value.hash], so rows can key hash tables (Z-sets,
    hash joins, aggregation). *)

type t = Value.t array

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  (let rec go i =
     i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
   in
   go 0)

let hash (r : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 r

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let to_string (r : t) =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string r)) ^ ")"

let project (r : t) (indices : int array) : t =
  Array.map (fun i -> r.(i)) indices

let concat (a : t) (b : t) : t = Array.append a b

module Hash = struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hash)
