(** Rows are flat value arrays with structural equality/hash consistent
    with {!Value.equal}/{!Value.hash}, so rows can key hash tables (Z-sets,
    hash joins, aggregation). *)

type t = Value.t array

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
val to_string : t -> string

val project : t -> int array -> t
val concat : t -> t -> t

module Hash : Hashtbl.HashedType with type t = t
module Tbl : Hashtbl.S with type key = t
