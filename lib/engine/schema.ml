(** Table and intermediate-result schemas: ordered, named, typed columns.
    Execution carries a schema alongside rows so name resolution can happen
    at plan-build time and evaluation works on positions. *)

type column = {
  name : string;
  table : string option;  (** binding qualifier (table name or alias) *)
  typ : Sql.Ast.typ;
  not_null : bool;
}

and t = column list

let column ?table ?(not_null = false) name typ = { name; table; typ; not_null }

let arity (s : t) = List.length s

let names (s : t) = List.map (fun c -> c.name) s

(** Find the position of a column reference. Unqualified names must be
    unambiguous; qualified names match the binding qualifier. *)
let find_opt (s : t) ~qualifier ~name =
  let candidates =
    List.filteri (fun _ _ -> true) s
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) ->
        String.equal c.name name
        && match qualifier with
        | None -> true
        | Some q -> (match c.table with Some t -> String.equal t q | None -> false))
  in
  match candidates with
  | [ (i, c) ] -> Some (i, c)
  | [] -> None
  | (i, c) :: _ ->
    (match qualifier with
     | None -> Error.fail "ambiguous column reference %S" name
     | Some _ -> Some (i, c))

let find (s : t) ~qualifier ~name =
  match find_opt s ~qualifier ~name with
  | Some x -> x
  | None ->
    let shown =
      match qualifier with Some q -> q ^ "." ^ name | None -> name
    in
    Error.fail "column %S not found (have: %s)" shown
      (String.concat ", " (names s))

(** Re-qualify every column with a new binding name (FROM t AS a). *)
let requalify (s : t) (binding : string) : t =
  List.map (fun c -> { c with table = Some binding }) s

(** Schema of a join result: concatenation, qualifiers preserved. *)
let join (a : t) (b : t) : t = a @ b

let to_string (s : t) =
  String.concat ", "
    (List.map
       (fun c ->
          let q = match c.table with Some t -> t ^ "." | None -> "" in
          Printf.sprintf "%s%s %s" q c.name (Sql.Ast.typ_to_string c.typ))
       s)
