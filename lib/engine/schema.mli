(** Ordered, named, typed columns of tables and intermediate results.
    Name resolution happens once at plan-build time; evaluation works on
    positions. *)

type column = {
  name : string;
  table : string option;  (** binding qualifier (table name or alias) *)
  typ : Sql.Ast.typ;
  not_null : bool;
}

and t = column list

val column : ?table:string -> ?not_null:bool -> string -> Sql.Ast.typ -> column

val arity : t -> int
val names : t -> string list

val find_opt : t -> qualifier:string option -> name:string -> (int * column) option
(** Position and definition of a column reference. Unqualified ambiguous
    names raise {!Error.Sql_error}; unknown names return [None]. *)

val find : t -> qualifier:string option -> name:string -> int * column
(** Like {!find_opt} but raises with a helpful message when missing. *)

val requalify : t -> string -> t
(** Re-qualify every column with a new binding (FROM t AS a). *)

val join : t -> t -> t
val to_string : t -> string
