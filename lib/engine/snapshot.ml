(** Database snapshots: save a catalog to a directory (one [schema.sql]
    with CREATE TABLE / CREATE INDEX statements plus one CSV per table) and
    load it back. Indexes are rebuilt on load. View definitions and the
    OpenIVM metadata tables travel like any other content, so a snapshot
    of an IVM-enabled database restores with its delta tables and
    materialized views intact (re-[install]ing views re-arms capture). *)

let schema_file = "schema.sql"

let table_ddl (tbl : Table.t) : Sql.Ast.stmt =
  let columns =
    List.map
      (fun c ->
         { Sql.Ast.col_name = c.Schema.name;
           col_type = c.Schema.typ;
           col_not_null = c.Schema.not_null;
           col_primary_key = false })
      tbl.Table.schema
  in
  let primary_key =
    List.map
      (fun i -> (List.nth tbl.Table.schema i).Schema.name)
      (Array.to_list tbl.Table.primary_key)
  in
  Sql.Ast.Create_table
    { table = tbl.Table.name; columns; primary_key; if_not_exists = false }

let index_ddl (tbl : Table.t) : Sql.Ast.stmt list =
  List.rev_map
    (fun ix ->
       Sql.Ast.Create_index
         { index = ix.Table.index_name;
           table = tbl.Table.name;
           columns =
             List.map
               (fun i -> (List.nth tbl.Table.schema i).Schema.name)
               (Array.to_list ix.Table.key_positions);
           unique = ix.Table.unique })
    tbl.Table.secondary

(** Write the whole database under [dir] (created if missing). Returns the
    number of tables saved. *)
let save (db : Database.t) ~(dir : string) : int =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let catalog = Database.catalog db in
  let names = Catalog.table_names catalog in
  let ddl =
    List.concat_map
      (fun name ->
         let tbl = Catalog.find_table catalog name in
         table_ddl tbl :: index_ddl tbl)
      names
  in
  let oc = open_out (Filename.concat dir schema_file) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       output_string oc (Sql.Pretty.script_to_sql ddl));
  List.iter
    (fun name ->
       ignore
         (Csv.export db
            ~query:(Printf.sprintf "SELECT * FROM %s" name)
            ~path:(Filename.concat dir (name ^ ".csv"))))
    names;
  List.length names

(* --- in-memory table snapshots (transactional apply / rollback) --- *)

type mem = (string * Row.t list) list

(** Capture the current rows of [tables] so a failed multi-table write can
    be rolled back all-or-nothing. Row arrays are copied: later in-place
    updates cannot leak into the memo. *)
let capture (db : Database.t) ~(tables : string list) : mem =
  let catalog = Database.catalog db in
  List.map
    (fun name ->
       let tbl = Catalog.find_table catalog name in
       (name, List.map Array.copy (Table.to_rows tbl)))
    tables

(** Restore every captured table to its memoized contents (truncate +
    reinsert, hooks disabled — rollback must not re-trigger capture).
    Also discards any deferred trigger callbacks: a rollback means the
    surrounding statement failed, and its queued refreshes must not fire
    later over the restored state (ghost deltas). *)
let restore (db : Database.t) (memo : mem) : unit =
  let catalog = Database.catalog db in
  Trigger.clear_deferred (Database.triggers db);
  Trigger.without_hooks (Database.triggers db) (fun () ->
      List.iter
        (fun (name, rows) ->
           let tbl = Catalog.find_table catalog name in
           ignore (Table.truncate tbl);
           List.iter (fun row -> Table.insert tbl (Array.copy row)) rows)
        memo)

(** Load a snapshot into a fresh database. Capture triggers are not
    restored — reinstall materialized views through [Openivm.Runner] to
    re-arm IVM. *)
let load ~(dir : string) : Database.t =
  let db = Database.create () in
  let schema_path = Filename.concat dir schema_file in
  if not (Sys.file_exists schema_path) then
    Error.fail "snapshot: %s not found in %S" schema_file dir;
  let ic = open_in schema_path in
  let ddl =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  ignore (Database.exec_script db ddl);
  List.iter
    (fun name ->
       let path = Filename.concat dir (name ^ ".csv") in
       if Sys.file_exists path then
         Trigger.without_hooks (Database.triggers db) (fun () ->
             ignore (Csv.import db ~table:name ~path)))
    (Catalog.table_names (Database.catalog db));
  db
