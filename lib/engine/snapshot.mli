(** Database snapshots: [schema.sql] (CREATE TABLE / CREATE INDEX) plus one
    CSV per table in a directory. A snapshot of an IVM-enabled database
    restores with its view tables, delta tables and OpenIVM metadata
    intact; re-install views through [Openivm.Runner] to re-arm capture
    triggers. *)

val save : Database.t -> dir:string -> int
(** Write the whole catalog under [dir] (created if missing); returns the
    number of tables saved. *)

val load : dir:string -> Database.t
(** Load a snapshot into a fresh database (indexes rebuilt). Raises
    {!Error.Sql_error} when the directory holds no snapshot. *)
