(** Database snapshots: [schema.sql] (CREATE TABLE / CREATE INDEX) plus one
    CSV per table in a directory. A snapshot of an IVM-enabled database
    restores with its view tables, delta tables and OpenIVM metadata
    intact; re-install views through [Openivm.Runner] to re-arm capture
    triggers. *)

val save : Database.t -> dir:string -> int
(** Write the whole catalog under [dir] (created if missing); returns the
    number of tables saved. *)

val load : dir:string -> Database.t
(** Load a snapshot into a fresh database (indexes rebuilt). Raises
    {!Error.Sql_error} when the directory holds no snapshot. *)

(** {1 In-memory table snapshots}

    Lightweight capture/restore of a few named tables, used by the HTAP
    bridge to make a multi-table batch apply all-or-nothing: capture the
    delta table and replica, apply, and on a mid-batch failure restore
    both — no partial batch is ever visible. *)

type mem

val capture : Database.t -> tables:string list -> mem
(** Deep-copy the current rows of [tables]. *)

val restore : Database.t -> mem -> unit
(** Truncate each captured table and reinsert its memoized rows (hooks
    disabled). Deferred trigger callbacks queued by the failed statement
    are discarded first — rollback leaves no ghost refreshes behind.
    Primary-key and ART secondary indexes are rebuilt along the way
    (truncate resets them, each reinsert re-indexes), so point lookups
    answer correctly immediately after a mid-batch rollback. *)
