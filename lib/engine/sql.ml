(** Short aliases for the SQL frontend, used throughout the engine. *)

module Ast = Openivm_sql.Ast
module Parser = Openivm_sql.Parser
module Lexer = Openivm_sql.Lexer
module Pretty = Openivm_sql.Pretty
module Dialect = Openivm_sql.Dialect
module Analysis = Openivm_sql.Analysis
