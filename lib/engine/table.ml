(** Heap table storage.

    Rows live in slots of a growable vector; DELETE tombstones a slot so
    indexes (which map encoded keys to slot numbers) stay valid. When more
    than half the slots are dead a compaction rebuilds storage and all
    indexes. *)

type index = {
  index_name : string;
  key_positions : int array;
  unique : bool;
  (* unique indexes map key -> slot; non-unique map key -> slot list *)
  mutable art : int list Art.t;
}

type t = {
  name : string;
  schema : Schema.t;
  primary_key : int array;  (** column positions; empty = no PK *)
  slots : Row.t option Vec.t;
  mutable live : int;
  mutable pk_index : int Art.t option;
  mutable pk_stale : bool;
      (** bulk appends skip per-row ART maintenance; when set, [pk_index]
          lags the slots and must be rebuilt (one sorted bulk pass) before
          any PK read — see {!ensure_pk} *)
  mutable secondary : index list;
}

let create ~name ~(schema : Schema.t) ~primary_key =
  let pk_index = if Array.length primary_key = 0 then None else Some (Art.create ()) in
  { name; schema; primary_key;
    slots = Vec.create ~dummy:None ();
    live = 0; pk_index; pk_stale = false; secondary = [] }

let arity t = Schema.arity t.schema
let row_count t = t.live

(* scratch for key encoding: never held across calls, so one buffer per
   domain is safe and saves an allocation per row on the DML hot path.
   Domain-local (not global) because parallel refresh workers encode keys
   concurrently during sharded propagation. *)
let key_buf_key : Buffer.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Buffer.create 64)

let key_of_row (positions : int array) (row : Row.t) : string =
  let key_buf = Domain.DLS.get key_buf_key in
  Buffer.clear key_buf;
  Array.iter (fun i -> Value.encode_into key_buf row.(i)) positions;
  Buffer.contents key_buf

let pk_key t row = key_of_row t.primary_key row

(* --- iteration --- *)

let iter_rows f t =
  Vec.iter (function Some row -> f row | None -> ()) t.slots

let iter_slots f t =
  Vec.iteri (fun i s -> match s with Some row -> f i row | None -> ()) t.slots

let to_rows t =
  let acc = ref [] in
  iter_rows (fun r -> acc := r :: !acc) t;
  List.rev !acc

(* --- index maintenance --- *)

let index_add_row (ix : index) slot row =
  let key = key_of_row ix.key_positions row in
  Art.insert_with ix.art ~combine:(fun old fresh -> fresh @ old) key [ slot ]

let index_remove_row (ix : index) slot row =
  let key = key_of_row ix.key_positions row in
  match Art.find ix.art key with
  | None -> ()
  | Some slots ->
    let remaining = List.filter (fun s -> s <> slot) slots in
    if remaining = [] then ignore (Art.remove ix.art key)
    else Art.insert ix.art key remaining

(* Rebuild a stale PK index in one sorted bulk pass. The bulk-append path
   duplicate-checks through a hashtable, so the slots hold distinct keys and
   [Art.of_sorted] accepts them. *)
let ensure_pk t =
  if t.pk_stale then begin
    t.pk_stale <- false;
    match t.pk_index with
    | None -> ()
    | Some _ ->
      let pairs = ref [] in
      iter_slots (fun slot row -> pairs := (pk_key t row, slot) :: !pairs) t;
      let arr = Array.of_list !pairs in
      Array.sort (fun (a, _) (b, _) -> String.compare a b) arr;
      (* bulk appends under [~distinct_keys:true] skipped the per-row
         duplicate check on the caller's promise; verify it here, where
         adjacency makes the check free *)
      for i = 1 to Array.length arr - 1 do
        if String.equal (fst arr.(i - 1)) (fst arr.(i)) then
          Error.fail "duplicate key in table %S" t.name
      done;
      t.pk_index <- Some (Art.of_sorted arr)
  end

(** Force any lazily-deferred index maintenance now. Called by the
    parallel refresh driver before fanning read-only work out to worker
    domains: PK reads otherwise mutate the table ([ensure_pk] rebuild)
    mid-parallel-section. *)
let warm_indexes t = ensure_pk t

let find_secondary t name =
  List.find_opt (fun ix -> String.equal ix.index_name name) t.secondary

(** Secondary index whose key is exactly [positions] (order-sensitive). *)
let secondary_on t (positions : int array) =
  List.find_opt (fun ix -> ix.key_positions = positions) t.secondary

let create_index t ~index_name ~key_positions ~unique =
  if find_secondary t index_name <> None then
    Error.fail "index %S already exists" index_name;
  let ix = { index_name; key_positions; unique; art = Art.create () } in
  iter_slots (fun slot row -> index_add_row ix slot row) t;
  if unique && Art.length ix.art <> t.live then
    Error.fail "cannot create UNIQUE index %S: duplicate keys" index_name;
  t.secondary <- ix :: t.secondary;
  ix

let drop_index t ~index_name =
  if find_secondary t index_name = None then
    Error.fail "index %S does not exist" index_name;
  t.secondary <-
    List.filter (fun ix -> not (String.equal ix.index_name index_name)) t.secondary

(* --- compaction --- *)

let compact t =
  let rows = to_rows t in
  Vec.clear t.slots;
  t.pk_stale <- false;
  (match t.pk_index with Some _ -> t.pk_index <- Some (Art.create ()) | None -> ());
  List.iter (fun ix -> ix.art <- Art.create ()) t.secondary;
  t.live <- 0;
  List.iter
    (fun row ->
       let slot = Vec.push t.slots (Some row) in
       t.live <- t.live + 1;
       (match t.pk_index with
        | Some pk -> Art.insert pk (pk_key t row) slot
        | None -> ());
       List.iter (fun ix -> index_add_row ix slot row) t.secondary)
    rows

let maybe_compact t =
  let total = Vec.length t.slots in
  if total > 64 && t.live * 2 < total then compact t

(* --- mutations --- *)

let check_arity t (row : Row.t) =
  if Array.length row <> arity t then
    Error.fail "table %S expects %d columns, got %d" t.name (arity t)
      (Array.length row)

(** Plain append; raises on PK violation. *)
let insert t (row : Row.t) : unit =
  check_arity t row;
  ensure_pk t;
  let pk_entry =
    match t.pk_index with
    | None -> None
    | Some pk ->
      (* encode the key once for both the duplicate check and the insert *)
      let key = pk_key t row in
      if Art.mem pk key then
        Error.fail "duplicate key in table %S: %s" t.name (Row.to_string row);
      Some (pk, key)
  in
  let slot = Vec.push t.slots (Some row) in
  t.live <- t.live + 1;
  (match pk_entry with
   | Some (pk, key) -> Art.insert pk key slot
   | None -> ());
  List.iter (fun ix -> index_add_row ix slot row) t.secondary

(** Bulk append. Semantically [List.iter (insert t)] — rows preceding a
    duplicate stay inserted and the duplicate raises — but into an empty
    keyed table the ART is not maintained per row: keys are duplicate-checked
    through a hashtable and the index is marked stale, rebuilt in one sorted
    bulk pass by the next PK reader ({!ensure_pk}). This is the propagation
    hot path: DELETE-all + INSERT ... SELECT swap cycles re-fill view tables
    from scratch every refresh, and the per-row index maintenance — not the
    query — dominated their cost.

    [~distinct_keys:true] is the caller's promise that [rows] carry
    pairwise-distinct primary keys (e.g. a GROUP BY output whose keys are
    the PK): the duplicate check — and with it all key encoding — is
    skipped, and the promise is verified for free by the sorted rebuild
    in {!ensure_pk} should a PK reader ever appear. *)
let insert_many ?(distinct_keys = false) t (rows : Row.t list) : unit =
  match t.pk_index with
  | Some _ when t.live = 0 && rows <> [] ->
    ensure_pk t;
    t.pk_stale <- true;
    if distinct_keys then
      List.iter
        (fun row ->
           check_arity t row;
           let slot = Vec.push t.slots (Some row) in
           t.live <- t.live + 1;
           List.iter (fun ix -> index_add_row ix slot row) t.secondary)
        rows
    else begin
      let seen = Hashtbl.create 1024 in
      List.iter
        (fun row ->
           check_arity t row;
           let key = pk_key t row in
           (* replace + length delta = membership test with a single hash *)
           let before = Hashtbl.length seen in
           Hashtbl.replace seen key ();
           if Hashtbl.length seen = before then
             Error.fail "duplicate key in table %S: %s" t.name
               (Row.to_string row);
           let slot = Vec.push t.slots (Some row) in
           t.live <- t.live + 1;
           List.iter (fun ix -> index_add_row ix slot row) t.secondary)
        rows
    end
  | _ -> List.iter (insert t) rows

(** Result of an upsert, so triggers can report the net change. *)
type upsert_outcome =
  | Inserted
  | Replaced of Row.t  (** the displaced row *)

(** INSERT OR REPLACE: requires a primary key. *)
let upsert t (row : Row.t) : upsert_outcome =
  check_arity t row;
  ensure_pk t;
  match t.pk_index with
  | None -> Error.fail "INSERT OR REPLACE on table %S without a primary key" t.name
  | Some pk ->
    let key = pk_key t row in
    (match Art.find pk key with
     | Some slot ->
       (match Vec.get t.slots slot with
        | Some old ->
          List.iter (fun ix -> index_remove_row ix slot old) t.secondary;
          Vec.set t.slots slot (Some row);
          List.iter (fun ix -> index_add_row ix slot row) t.secondary;
          Replaced old
        | None ->
          (* dangling index entry: repair by treating as insert *)
          ignore (Art.remove pk key);
          insert t row;
          Inserted)
     | None ->
       insert t row;
       Inserted)

(** Insert skipping duplicates (ON CONFLICT DO NOTHING). Returns true when
    the row was inserted. *)
let insert_ignore t (row : Row.t) : bool =
  check_arity t row;
  ensure_pk t;
  match t.pk_index with
  | None -> insert t row; true
  | Some pk ->
    if Art.mem pk (pk_key t row) then false
    else begin insert t row; true end

let delete_slot t slot : Row.t option =
  match Vec.get t.slots slot with
  | None -> None
  | Some row ->
    Vec.set t.slots slot None;
    t.live <- t.live - 1;
    (match t.pk_index with
     | Some pk when not t.pk_stale -> ignore (Art.remove pk (pk_key t row))
     | _ -> ());
    List.iter (fun ix -> index_remove_row ix slot row) t.secondary;
    Some row

(** Delete all rows matching [predicate]; returns them. *)
let delete_where t (predicate : Row.t -> bool) : Row.t list =
  let victims = ref [] in
  iter_slots (fun slot row -> if predicate row then victims := (slot, row) :: !victims) t;
  let deleted =
    List.filter_map (fun (slot, _) -> delete_slot t slot) !victims
  in
  maybe_compact t;
  List.rev deleted

(** In-place update; returns (old, new) pairs. PK updates are supported by
    delete+insert underneath. *)
let update_where t (predicate : Row.t -> bool) (transform : Row.t -> Row.t) :
  (Row.t * Row.t) list =
  let targets = ref [] in
  iter_slots (fun slot row -> if predicate row then targets := (slot, row) :: !targets) t;
  let changed = ref [] in
  List.iter
    (fun (slot, old) ->
       let fresh = transform old in
       check_arity t fresh;
       ignore (delete_slot t slot);
       insert t fresh;
       changed := (old, fresh) :: !changed)
    (List.rev !targets);
  maybe_compact t;
  List.rev !changed

let truncate t : int =
  let n = t.live in
  Vec.clear t.slots;
  t.pk_stale <- false;
  (match t.pk_index with Some _ -> t.pk_index <- Some (Art.create ()) | None -> ());
  List.iter (fun ix -> ix.art <- Art.create ()) t.secondary;
  t.live <- 0;
  n

(** Rows whose index key equals [key] under secondary index [ix]. *)
let index_lookup t (ix : index) (key : string) : Row.t list =
  match Art.find ix.art key with
  | None -> []
  | Some slots ->
    List.filter_map
      (fun slot ->
         match Vec.get t.slots slot with Some r -> Some r | None -> None)
      (List.rev slots)

(** Live slots whose index key equals [key]. *)
let index_slots t (ix : index) (key : string) : int list =
  match Art.find ix.art key with
  | None -> []
  | Some slots ->
    List.filter (fun slot -> Vec.get t.slots slot <> None) (List.rev slots)

let pk_slot t (key : string) : int option =
  ensure_pk t;
  match t.pk_index with
  | None -> None
  | Some pk -> Art.find pk key

let pk_lookup t (key : string) : Row.t option =
  ensure_pk t;
  match t.pk_index with
  | None -> None
  | Some pk ->
    (match Art.find pk key with
     | None -> None
     | Some slot -> Vec.get t.slots slot)
