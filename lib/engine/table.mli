(** Heap table storage: rows in tombstoned slots of a growable vector, an
    optional ART primary-key index mapping encoded keys to slots, and
    secondary ART indexes. Compaction rebuilds storage and indexes when
    more than half the slots are dead. *)

type index = {
  index_name : string;
  key_positions : int array;
  unique : bool;
  mutable art : int list Art.t;  (** encoded key -> live slots *)
}

type t = {
  name : string;
  schema : Schema.t;
  primary_key : int array;  (** column positions; empty = no PK *)
  slots : Row.t option Vec.t;
  mutable live : int;
  mutable pk_index : int Art.t option;
  mutable pk_stale : bool;
      (** set by bulk appends ({!insert_many}); [pk_index] lags the slots
          and is rebuilt in one sorted bulk pass before the next PK read *)
  mutable secondary : index list;
}

val create : name:string -> schema:Schema.t -> primary_key:int array -> t

val arity : t -> int
val row_count : t -> int

val key_of_row : int array -> Row.t -> string
val pk_key : t -> Row.t -> string

val iter_rows : (Row.t -> unit) -> t -> unit
val iter_slots : (int -> Row.t -> unit) -> t -> unit
val to_rows : t -> Row.t list

val find_secondary : t -> string -> index option
val secondary_on : t -> int array -> index option
val create_index :
  t -> index_name:string -> key_positions:int array -> unique:bool -> index
val drop_index : t -> index_name:string -> unit

val compact : t -> unit

val insert : t -> Row.t -> unit
(** Raises {!Error.Sql_error} on arity mismatch or PK violation. *)

val insert_many : ?distinct_keys:bool -> t -> Row.t list -> unit
(** Bulk append, semantically [List.iter (insert t)] (rows before a
    duplicate stay inserted; the duplicate raises). Into an empty keyed
    table the PK index is not maintained per row: duplicates are checked
    through a hashtable and the index is marked stale, rebuilt lazily in
    one sorted bulk pass on the next PK read.

    [~distinct_keys:true] (default false) promises that [rows] carry
    pairwise-distinct primary keys, skipping the duplicate check and its
    key encoding; the promise is verified by the sorted rebuild. *)

type upsert_outcome =
  | Inserted
  | Replaced of Row.t  (** the displaced row *)

val upsert : t -> Row.t -> upsert_outcome
(** INSERT OR REPLACE through the PK index; requires a primary key. *)

val insert_ignore : t -> Row.t -> bool
(** ON CONFLICT DO NOTHING; returns whether the row was inserted. *)

val delete_slot : t -> int -> Row.t option
val delete_where : t -> (Row.t -> bool) -> Row.t list
val update_where : t -> (Row.t -> bool) -> (Row.t -> Row.t) -> (Row.t * Row.t) list
val truncate : t -> int

val warm_indexes : t -> unit
(** Force deferred (lazy) index maintenance — the stale-PK bulk rebuild —
    to run now, so subsequent reads are mutation-free. The parallel
    refresh driver calls this before sharing a table read-only across
    domains. *)

val index_lookup : t -> index -> string -> Row.t list
val index_slots : t -> index -> string -> int list
val pk_slot : t -> string -> int option
val pk_lookup : t -> string -> Row.t option
