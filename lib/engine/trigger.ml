(** DML change hooks.

    The paper's two capture mechanisms — DuckDB optimizer rules that
    intercept INSERT/UPDATE/DELETE, and PostgreSQL user-configured triggers
    — are both modelled by after-statement callbacks receiving the changed
    rows. The IVM runner and the HTAP OLTP simulator register hooks that
    append the changes to delta tables. *)

type change = {
  table : string;
  inserted : Row.t list;  (** rows added (for UPDATE: the new images) *)
  deleted : Row.t list;   (** rows removed (for UPDATE: the old images) *)
}

type hook = change -> unit

(* Dispatch state (suppression depth, in-fire flag, deferred queue) is
   per-domain: a parallel refresh worker running with hooks disabled must
   not suppress — or drain the deferrals of — a dispatch on another
   domain. The hook list itself stays shared: registration happens at
   install time, never inside a parallel section. *)
type dstate = {
  mutable suppress : int;  (** [without_hooks] nesting depth; >0 = off *)
  mutable firing : bool;   (** inside the outermost {!fire} dispatch *)
  mutable deferred : (unit -> unit) list;  (** run after that dispatch, LIFO *)
}

type t = {
  mutable hooks : (string option * string * hook) list;
      (** (table filter, hook name, callback); None = all tables *)
  states : (int, dstate) Hashtbl.t;  (** domain id -> dispatch state *)
  st_lock : Mutex.t;  (** guards [states] lookup/insert only *)
}

let create () = { hooks = []; states = Hashtbl.create 4; st_lock = Mutex.create () }

let state t =
  let id = (Domain.self () :> int) in
  Mutex.lock t.st_lock;
  let s =
    match Hashtbl.find_opt t.states id with
    | Some s -> s
    | None ->
      let s = { suppress = 0; firing = false; deferred = [] } in
      Hashtbl.replace t.states id s;
      s
  in
  Mutex.unlock t.st_lock;
  s

let register t ?table ~name hook =
  t.hooks <- (table, name, hook) :: t.hooks

let unregister t ~name =
  t.hooks <- List.filter (fun (_, n, _) -> not (String.equal n name)) t.hooks

(** Would a change on [table] reach any hook right now? DML fast paths
    (e.g. whole-table DELETE as a truncate) are only legal when nothing is
    listening, because they skip collecting the per-row change images. *)
let has_hooks t ~table =
  (state t).suppress = 0
  && List.exists
       (fun (filter, _, _) ->
          match filter with None -> true | Some tbl -> String.equal tbl table)
       t.hooks

(** Postpone [f] until every hook of the current outermost {!fire}
    dispatch has run (cascading IVM defers downstream refreshes this way,
    so a view over both a base table and an upstream view sees all of the
    statement's deltas in one refresh). Outside a dispatch, runs [f]
    immediately. *)
let defer t f =
  let s = state t in
  if s.firing then s.deferred <- f :: s.deferred else f ()

let pending_deferred t = List.length (state t).deferred

(** Forget queued deferred work without running it — the rollback path:
    after a failed statement, its deferred refreshes must not fire over
    half-applied (or restored) state on some later dispatch. *)
let clear_deferred t = (state t).deferred <- []

let drain t =
  let s = state t in
  let rec loop () =
    match s.deferred with
    | [] -> ()
    | fs ->
      s.deferred <- [];
      List.iter (fun f -> f ()) (List.rev fs);
      loop ()
  in
  (* a deferred callback that raises must not leave its queued siblings
     (or anything they deferred) behind as ghosts for the next dispatch *)
  try loop () with e -> clear_deferred t; raise e

let fire t (change : change) =
  let s = state t in
  if s.suppress = 0 && (change.inserted <> [] || change.deleted <> []) then begin
    let outermost = not s.firing in
    s.firing <- true;
    match
      List.iter
        (fun (filter, _, hook) ->
           match filter with
           | Some tbl when not (String.equal tbl change.table) -> ()
           | _ -> hook change)
        (List.rev t.hooks)
    with
    | () -> if outermost then begin s.firing <- false; drain t end
    | exception e ->
      (* a failed statement's deferred refreshes are discarded, NOT run:
         draining during exception unwind would propagate deltas of a
         half-applied statement (and leak ghost deltas past a caller's
         snapshot rollback) *)
      if outermost then begin s.firing <- false; clear_deferred t end;
      raise e
  end

(** Run [f] with hooks disabled on the calling domain — used when the IVM
    runner itself mutates delta tables, which must not re-trigger capture.
    Nested calls stack; other domains' dispatch is unaffected. *)
let without_hooks t f =
  let s = state t in
  s.suppress <- s.suppress + 1;
  Fun.protect ~finally:(fun () -> s.suppress <- s.suppress - 1) f
