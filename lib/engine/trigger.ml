(** DML change hooks.

    The paper's two capture mechanisms — DuckDB optimizer rules that
    intercept INSERT/UPDATE/DELETE, and PostgreSQL user-configured triggers
    — are both modelled by after-statement callbacks receiving the changed
    rows. The IVM runner and the HTAP OLTP simulator register hooks that
    append the changes to delta tables. *)

type change = {
  table : string;
  inserted : Row.t list;  (** rows added (for UPDATE: the new images) *)
  deleted : Row.t list;   (** rows removed (for UPDATE: the old images) *)
}

type hook = change -> unit

type t = {
  mutable hooks : (string option * string * hook) list;
      (** (table filter, hook name, callback); None = all tables *)
  mutable enabled : bool;
}

let create () = { hooks = []; enabled = true }

let register t ?table ~name hook =
  t.hooks <- (table, name, hook) :: t.hooks

let unregister t ~name =
  t.hooks <- List.filter (fun (_, n, _) -> not (String.equal n name)) t.hooks

let fire t (change : change) =
  if t.enabled && (change.inserted <> [] || change.deleted <> []) then
    List.iter
      (fun (filter, _, hook) ->
         match filter with
         | Some tbl when not (String.equal tbl change.table) -> ()
         | _ -> hook change)
      (List.rev t.hooks)

(** Run [f] with hooks disabled — used when the IVM runner itself mutates
    delta tables, which must not re-trigger capture. *)
let without_hooks t f =
  let prev = t.enabled in
  t.enabled <- false;
  Fun.protect ~finally:(fun () -> t.enabled <- prev) f
