(** DML change hooks — the engine-side model of both of the paper's
    capture mechanisms (DuckDB optimizer rules intercepting DML, and
    PostgreSQL row triggers). *)

type change = {
  table : string;
  inserted : Row.t list;  (** for UPDATE: the new images *)
  deleted : Row.t list;   (** for UPDATE: the old images *)
}

type hook = change -> unit

type t

val create : unit -> t

val register : t -> ?table:string -> name:string -> hook -> unit
(** [table = None] fires on every table. Names are used by
    {!unregister}. *)

val unregister : t -> name:string -> unit

val has_hooks : t -> table:string -> bool
(** Whether a change on [table] would reach any hook right now (false
    when dispatch is disabled). DML fast paths that skip building per-row
    change images are only legal when this is [false]. *)

val fire : t -> change -> unit
(** Invoke matching hooks (no-op for empty changes or when disabled).
    When the dispatch is the outermost one, callbacks queued with
    {!defer} run after the last hook returns. If a hook (or a deferred
    callback) raises, the remaining deferred queue is discarded — a failed
    statement's deferred refreshes must not fire over half-applied
    state. *)

val defer : t -> (unit -> unit) -> unit
(** Inside a {!fire} dispatch: queue [f] to run once the outermost
    dispatch completes (cascade refresh ordering). Otherwise run [f]
    now. *)

val pending_deferred : t -> int
(** Deferred callbacks currently queued (0 outside a dispatch unless a
    rollback interrupted one — see {!clear_deferred}). *)

val clear_deferred : t -> unit
(** Drop queued deferred callbacks without running them — transactional
    rollback paths call this so no ghost refresh survives the failed
    statement. *)

val without_hooks : t -> (unit -> 'a) -> 'a
(** Run with hooks disabled — the IVM runner's own writes must not
    re-trigger capture. *)
