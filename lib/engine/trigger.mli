(** DML change hooks — the engine-side model of both of the paper's
    capture mechanisms (DuckDB optimizer rules intercepting DML, and
    PostgreSQL row triggers). *)

type change = {
  table : string;
  inserted : Row.t list;  (** for UPDATE: the new images *)
  deleted : Row.t list;   (** for UPDATE: the old images *)
}

type hook = change -> unit

type t

val create : unit -> t

val register : t -> ?table:string -> name:string -> hook -> unit
(** [table = None] fires on every table. Names are used by
    {!unregister}. *)

val unregister : t -> name:string -> unit

val fire : t -> change -> unit
(** Invoke matching hooks (no-op for empty changes or when disabled). *)

val without_hooks : t -> (unit -> 'a) -> 'a
(** Run with hooks disabled — the IVM runner's own writes must not
    re-trigger capture. *)
