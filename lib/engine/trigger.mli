(** DML change hooks — the engine-side model of both of the paper's
    capture mechanisms (DuckDB optimizer rules intercepting DML, and
    PostgreSQL row triggers). *)

type change = {
  table : string;
  inserted : Row.t list;  (** for UPDATE: the new images *)
  deleted : Row.t list;   (** for UPDATE: the old images *)
}

type hook = change -> unit

type t

val create : unit -> t

val register : t -> ?table:string -> name:string -> hook -> unit
(** [table = None] fires on every table. Names are used by
    {!unregister}. *)

val unregister : t -> name:string -> unit

val fire : t -> change -> unit
(** Invoke matching hooks (no-op for empty changes or when disabled).
    When the dispatch is the outermost one, callbacks queued with
    {!defer} run after the last hook returns. *)

val defer : t -> (unit -> unit) -> unit
(** Inside a {!fire} dispatch: queue [f] to run once the outermost
    dispatch completes (cascade refresh ordering). Otherwise run [f]
    now. *)

val without_hooks : t -> (unit -> 'a) -> 'a
(** Run with hooks disabled — the IVM runner's own writes must not
    re-trigger capture. *)
