(** Runtime values.

    SQL three-valued logic is represented by [Null] flowing through
    operators; the comparison used by ORDER BY / GROUP BY / indexes is a
    total order that sorts [Null] first (like DuckDB's NULLS FIRST
    default), so grouping treats NULLs as equal, while the Boolean
    comparison operators return [Null] when either side is NULL. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1970-01-01 *)

let type_name = function
  | Null -> "NULL"
  | Bool _ -> "BOOLEAN"
  | Int _ -> "INTEGER"
  | Float _ -> "DOUBLE"
  | Str _ -> "VARCHAR"
  | Date _ -> "DATE"

let is_null = function Null -> true | _ -> false

(* --- date conversions (proleptic Gregorian, days since epoch) --- *)

let days_from_civil ~year ~month ~day =
  (* Howard Hinnant's algorithm; exact for all Gregorian dates. *)
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + day - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let day = doy - (153 * mp + 2) / 5 + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] ->
    (try
       let year = int_of_string y
       and month = int_of_string m
       and day = int_of_string d in
       if month < 1 || month > 12 || day < 1 || day > 31 then
         Error.fail "invalid date %S" s
       else Date (days_from_civil ~year ~month ~day)
     with Failure _ -> Error.fail "invalid date %S" s)
  | _ -> Error.fail "invalid date %S (expected YYYY-MM-DD)" s

let date_to_string days =
  let year, month, day = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02d" year month day

(* --- printing --- *)

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  | Str s -> s
  | Date d -> date_to_string d

(** Shortest float literal that parses back to exactly [f]. ["%.12g"] (the
    display format) loses up to 5 bits; checkpoint files must be
    loss-free, so escalate precision until [float_of_string] round-trips
    (17 significant digits always do). *)
let float_to_string_exact f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None ->
      (match try_prec 16 with
       | Some s -> s
       | None -> Printf.sprintf "%.17g" f)

(** [to_string] with round-trippable floats — the serialization format of
    CSV checkpoints and WAL records ({!to_string} itself stays the
    human-facing display format). *)
let to_string_exact = function
  | Float f -> float_to_string_exact f
  | v -> to_string v

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* --- ordering, equality, hashing --- *)

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2   (* numerics compare cross-type *)
  | Str _ -> 4
  | Date _ -> 5

(** Total order for sorting/grouping: NULL < BOOL < numerics < VARCHAR <
    DATE; ints and floats compare numerically. *)
let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* an integral float must hash like the equal int *)
    if Float.is_integer f && Float.abs f < 1e15 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d + 0x5ca1ab1e)

(* --- numeric helpers for the evaluator --- *)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> Error.fail "cannot use %s (%s) as a number" (to_string v) (type_name v)

let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Bool b -> if b then 1 else 0
  | v -> Error.fail "cannot use %s (%s) as an integer" (to_string v) (type_name v)

let as_bool = function
  | Bool b -> b
  | Null -> false
  | v -> Error.fail "cannot use %s (%s) as a boolean" (to_string v) (type_name v)

(* --- order-preserving byte encoding, used as ART index keys --- *)

let encode_into buf v =
  let add_tag c = Buffer.add_char buf c in
  match v with
  | Null -> add_tag '\x00'
  | Bool false -> add_tag '\x01'
  | Bool true -> add_tag '\x02'
  | Int i ->
    add_tag '\x03';
    (* flip sign bit so that signed order = lexicographic byte order *)
    Buffer.add_int64_be buf (Int64.logxor (Int64.of_int i) Int64.min_int)
  | Float f ->
    add_tag '\x03';
    (* encode floats into the int key space via their integer part when
       integral, else a distinct tag — IVM keys are ints/strings/dates, so
       exact cross-type key order for floats is not load-bearing. *)
    let bits = Int64.bits_of_float f in
    let u =
      if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
      else Int64.lognot bits
    in
    Buffer.add_int64_be buf u
  | Str s ->
    add_tag '\x05';
    (* escape 0x00 so concatenated keys cannot collide, terminate with 00 00 *)
    if String.index_opt s '\x00' = None then Buffer.add_string buf s
    else
      String.iter
        (fun c ->
           if c = '\x00' then begin
             Buffer.add_char buf '\x00'; Buffer.add_char buf '\xff'
           end else Buffer.add_char buf c)
        s;
    Buffer.add_char buf '\x00';
    Buffer.add_char buf '\x00'
  | Date d ->
    add_tag '\x06';
    Buffer.add_int64_be buf (Int64.logxor (Int64.of_int d) Int64.min_int)

let encode_key (vs : t array) : string =
  let buf = Buffer.create 16 in
  Array.iter (encode_into buf) vs;
  Buffer.contents buf
