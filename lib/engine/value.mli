(** Runtime values and their total order, hashing, and order-preserving
    byte encoding (the ART key format). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1970-01-01 *)

val type_name : t -> string
val is_null : t -> bool

val days_from_civil : year:int -> month:int -> day:int -> int
val civil_from_days : int -> int * int * int
val date_of_string : string -> t
(** Parse [YYYY-MM-DD]; raises {!Error.Sql_error} on malformed input. *)

val date_to_string : int -> string

val to_string : t -> string
val to_string_exact : t -> string
(** [to_string] with round-trippable floats (shortest literal that parses
    back to the identical bits) — what CSV checkpoints and WAL records
    write, so durable state is loss-free. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order used by ORDER BY / GROUP BY / indexes: NULL first, then
    booleans, numerics (ints and floats compare numerically), strings,
    dates. *)

val equal : t -> t -> bool
val hash : t -> int
(** Consistent with [equal] (integral floats hash like the equal int). *)

val as_float : t -> float
val as_int : t -> int
val as_bool : t -> bool

val encode_key : t array -> string
(** Injective, order-preserving byte encoding of a value tuple, used as
    ART index keys. *)

val encode_into : Buffer.t -> t -> unit
(** Append one value's order-preserving encoding to a caller-owned buffer
    ({!encode_key} minus the per-call allocation, for hot key loops). *)
