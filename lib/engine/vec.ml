(** Growable array used for table storage. Slots are mutable; deletion is by
    tombstone at the [Table] layer, so [Vec] itself never shifts slots and
    indexes stay valid. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

let ensure_capacity t needed =
  if needed > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < needed do cap := !cap * 2 done;
    let fresh = Array.make !cap t.dummy in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let push t v =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list ~dummy xs =
  let t = create ~dummy in
  List.iter (fun x -> ignore (push t x)) xs;
  t
