(** Growable array used for table storage, plus the typed columnar
    primitives ([Bitmap], [Sel], [Col], [Batch]) the vectorized executor
    ([Vexec]) is built from. Slots are mutable; deletion is by tombstone at
    the [Table] layer, so [Vec] itself never shifts slots and indexes stay
    valid. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) ~dummy () =
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- v

let ensure_capacity t needed =
  if needed > Array.length t.data then begin
    (* the [max 8] floor matters: from a zero-capacity array the doubling
       loop would never terminate (0 * 2 = 0) *)
    let cap = ref (max 8 (Array.length t.data)) in
    while !cap < needed do cap := !cap * 2 done;
    let fresh = Array.make !cap t.dummy in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let push t v =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list ~dummy xs =
  let t = create ~dummy () in
  List.iter (fun x -> ignore (push t x)) xs;
  t

(* --- validity bitmaps --- *)

module Bitmap = struct
  type t = { bits : Bytes.t; nbits : int }

  let create n v =
    if n < 0 then invalid_arg "Bitmap.create: negative length";
    { bits = Bytes.make ((n + 7) / 8) (if v then '\xff' else '\x00');
      nbits = n }

  let length t = t.nbits

  let get t i =
    if i < 0 || i >= t.nbits then invalid_arg "Bitmap.get: index out of bounds";
    Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set t i v =
    if i < 0 || i >= t.nbits then invalid_arg "Bitmap.set: index out of bounds";
    let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
    let mask = 1 lsl (i land 7) in
    let byte' = if v then byte lor mask else byte land lnot mask in
    Bytes.unsafe_set t.bits (i lsr 3) (Char.unsafe_chr (byte' land 0xff))

  let all_set t =
    let full = t.nbits / 8 in
    let rec bytes_ok i =
      i >= full || (Bytes.get t.bits i = '\xff' && bytes_ok (i + 1))
    in
    let tail_ok = ref true in
    for i = full * 8 to t.nbits - 1 do
      if not (get t i) then tail_ok := false
    done;
    bytes_ok 0 && !tail_ok

  let none_set t =
    let full = t.nbits / 8 in
    let rec bytes_ok i =
      i >= full || (Bytes.get t.bits i = '\x00' && bytes_ok (i + 1))
    in
    let tail_ok = ref true in
    for i = full * 8 to t.nbits - 1 do
      if get t i then tail_ok := false
    done;
    bytes_ok 0 && !tail_ok

  let count t =
    let n = ref 0 in
    for i = 0 to t.nbits - 1 do
      if get t i then incr n
    done;
    !n

  let logand a b =
    if a.nbits <> b.nbits then invalid_arg "Bitmap.logand: length mismatch";
    let bits = Bytes.copy a.bits in
    for i = 0 to Bytes.length bits - 1 do
      Bytes.unsafe_set bits i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get bits i)
            land Char.code (Bytes.unsafe_get b.bits i)))
    done;
    { bits; nbits = a.nbits }

  let gather t sel =
    let r = create (Array.length sel) true in
    Array.iteri (fun i j -> if not (get t j) then set r i false) sel;
    r
end

(* --- selection vectors --- *)

module Sel = struct
  type t = int array

  let length = Array.length
  let identity n = Array.init n (fun i -> i)

  (* [compose base inner] re-filters a view that is already a selection:
     entry [i] of the result is [base.(inner.(i))], i.e. [inner] indexes the
     logical (selected) order of [base]. *)
  let compose (base : t) (inner : t) : t = Array.map (fun i -> base.(i)) inner
end

(* --- typed column vectors --- *)

module Col = struct
  type data =
    | Ints of int array
    | Floats of float array
    | Bools of bool array
    | Strs of string array
    | Dates of int array        (** days since epoch, as in {!Value.Date} *)
    | Boxed of Value.t array    (** mixed / exotic columns; nulls inline *)

  type t = {
    data : data;
    valid : Bitmap.t option;
        (** [None] = every slot valid; [Boxed] never carries a bitmap *)
  }

  let length c =
    match c.data with
    | Ints a | Dates a -> Array.length a
    | Floats a -> Array.length a
    | Bools a -> Array.length a
    | Strs a -> Array.length a
    | Boxed a -> Array.length a

  let is_valid c i =
    match c.valid with
    | Some b -> Bitmap.get b i
    | None -> (match c.data with Boxed a -> a.(i) <> Value.Null | _ -> true)

  let value c i : Value.t =
    match c.data with
    | Boxed a -> a.(i)
    | _ when not (is_valid c i) -> Value.Null
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Bools a -> Value.Bool a.(i)
    | Strs a -> Value.Str a.(i)
    | Dates a -> Value.Date a.(i)

  (* Detect the kind from the first non-null; any mismatch demotes the whole
     column to [Boxed] (Int/Float mixes stay boxed so that typed columns can
     be trusted by encoded-key fast paths, where Int and Float hash
     differently than Value.equal would compare). *)
  let of_values (vs : Value.t array) : t =
    let n = Array.length vs in
    let rec first i =
      if i >= n then Value.Null
      else match vs.(i) with Value.Null -> first (i + 1) | v -> v
    in
    match first 0 with
    | Value.Null -> { data = Boxed vs; valid = None }
    | probe ->
      let valid = Bitmap.create n true in
      (try
         let data =
           match probe with
           | Value.Int _ ->
             let a = Array.make n 0 in
             for i = 0 to n - 1 do
               match vs.(i) with
               | Value.Int x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Ints a
           | Value.Float _ ->
             let a = Array.make n 0.0 in
             for i = 0 to n - 1 do
               match vs.(i) with
               | Value.Float x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Floats a
           | Value.Bool _ ->
             let a = Array.make n false in
             for i = 0 to n - 1 do
               match vs.(i) with
               | Value.Bool x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Bools a
           | Value.Str _ ->
             let a = Array.make n "" in
             for i = 0 to n - 1 do
               match vs.(i) with
               | Value.Str x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Strs a
           | Value.Date _ ->
             let a = Array.make n 0 in
             for i = 0 to n - 1 do
               match vs.(i) with
               | Value.Date x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Dates a
           | Value.Null -> assert false
         in
         { data; valid = (if Bitmap.all_set valid then None else Some valid) }
       with Exit -> { data = Boxed vs; valid = None })

  let gather (c : t) (sel : Sel.t) : t =
    let valid = Option.map (fun b -> Bitmap.gather b sel) c.valid in
    let valid =
      match valid with
      | Some b when Bitmap.all_set b -> None
      | v -> v
    in
    match c.data with
    | Ints a -> { data = Ints (Array.map (fun i -> a.(i)) sel); valid }
    | Floats a -> { data = Floats (Array.map (fun i -> a.(i)) sel); valid }
    | Bools a -> { data = Bools (Array.map (fun i -> a.(i)) sel); valid }
    | Strs a -> { data = Strs (Array.map (fun i -> a.(i)) sel); valid }
    | Dates a -> { data = Dates (Array.map (fun i -> a.(i)) sel); valid }
    | Boxed a -> { data = Boxed (Array.map (fun i -> a.(i)) sel); valid = None }

  let to_values (c : t) : Value.t array =
    match c.data with
    | Boxed a -> a
    | _ -> Array.init (length c) (fun i -> value c i)
end

(* --- batches: a fixed-width chunk of columns plus a selection vector --- *)

module Batch = struct
  let batch_size = 2048

  type t = {
    cols : Col.t array;
    sel : Sel.t option;  (** logical subset/order of rows; [None] = all *)
    nrows : int;         (** physical rows held by every column *)
  }

  let length b = match b.sel with Some s -> Array.length s | None -> b.nrows

  (* Apply the selection vector: one gather per column, after which
     expression kernels can run over dense arrays. *)
  let flatten b =
    match b.sel with
    | None -> b
    | Some sel ->
      { cols = Array.map (fun c -> Col.gather c sel) b.cols;
        sel = None;
        nrows = Array.length sel }

  (* Single-pass column extraction: probe the first non-null for the kind,
     then read [rows.(i).(j)] straight into the typed array — same demotion
     rules as {!Col.of_values} without the intermediate per-column copy. *)
  let column_of_rows (rows : Row.t array) j : Col.t =
    let n = Array.length rows in
    let boxed () =
      { Col.data = Col.Boxed (Array.init n (fun i -> rows.(i).(j)));
        valid = None }
    in
    let rec first i =
      if i >= n then Value.Null
      else match rows.(i).(j) with Value.Null -> first (i + 1) | v -> v
    in
    match first 0 with
    | Value.Null -> boxed ()
    | probe ->
      let valid = Bitmap.create n true in
      (try
         let data =
           match probe with
           | Value.Int _ ->
             let a = Array.make n 0 in
             for i = 0 to n - 1 do
               match rows.(i).(j) with
               | Value.Int x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Col.Ints a
           | Value.Float _ ->
             let a = Array.make n 0.0 in
             for i = 0 to n - 1 do
               match rows.(i).(j) with
               | Value.Float x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Col.Floats a
           | Value.Bool _ ->
             let a = Array.make n false in
             for i = 0 to n - 1 do
               match rows.(i).(j) with
               | Value.Bool x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Col.Bools a
           | Value.Str _ ->
             let a = Array.make n "" in
             for i = 0 to n - 1 do
               match rows.(i).(j) with
               | Value.Str x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Col.Strs a
           | Value.Date _ ->
             let a = Array.make n 0 in
             for i = 0 to n - 1 do
               match rows.(i).(j) with
               | Value.Date x -> a.(i) <- x
               | Value.Null -> Bitmap.set valid i false
               | _ -> raise Exit
             done;
             Col.Dates a
           | Value.Null -> assert false
         in
         { Col.data;
           valid = (if Bitmap.all_set valid then None else Some valid) }
       with Exit -> boxed ())

  let of_rows (rows : Row.t array) ~(width : int) : t =
    { cols = Array.init width (column_of_rows rows);
      sel = None;
      nrows = Array.length rows }

  let row b i : Row.t =
    let i = match b.sel with Some s -> s.(i) | None -> i in
    Array.map (fun c -> Col.value c i) b.cols

  (* Columnar unbatchify: fill the row arrays one column at a time with a
     typed loop per column, instead of dispatching on the column kind once
     per lane the way [row] does. This sits on the INSERT ... SELECT
     boundary, where every produced batch is boxed back into table rows. *)
  let to_rows b : Row.t array =
    let b = flatten b in
    let n = b.nrows in
    let width = Array.length b.cols in
    let rows = Array.init n (fun _ -> Array.make width Value.Null) in
    for j = 0 to width - 1 do
      let c = b.cols.(j) in
      let fill : 'a. 'a array -> ('a -> Value.t) -> unit =
        fun a box ->
          match c.Col.valid with
          | None -> for i = 0 to n - 1 do rows.(i).(j) <- box a.(i) done
          | Some bm ->
            for i = 0 to n - 1 do
              if Bitmap.get bm i then rows.(i).(j) <- box a.(i)
            done
      in
      match c.Col.data with
      | Col.Ints a -> fill a (fun x -> Value.Int x)
      | Col.Floats a -> fill a (fun x -> Value.Float x)
      | Col.Bools a -> fill a (fun x -> Value.Bool x)
      | Col.Strs a -> fill a (fun x -> Value.Str x)
      | Col.Dates a -> fill a (fun x -> Value.Date x)
      | Col.Boxed a ->
        (* boxed lanes keep Null inline ([Col.value] ignores the bitmap) *)
        for i = 0 to n - 1 do rows.(i).(j) <- a.(i) done
    done;
    rows
end
