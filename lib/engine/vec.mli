(** Growable array used for table storage. Slots are mutable and never
    shift, so index structures that store slot numbers stay valid. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Returns the new element's slot. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
