(** Growable array used for table storage, plus the typed columnar
    primitives the vectorized executor ([Vexec]) is built from. Slots are
    mutable and never shift, so index structures that store slot numbers
    stay valid. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] defaults to 8. A zero capacity is legal; growth starts from
    the 8-element floor. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Returns the new element's slot. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t

(** Validity bitmap over a column: bit set = slot holds a value. *)
module Bitmap : sig
  type t

  val create : int -> bool -> t
  (** [create n v]: [n] bits, all initialised to [v]. *)

  val length : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val all_set : t -> bool
  val none_set : t -> bool
  val count : t -> int
  val logand : t -> t -> t
  val gather : t -> int array -> t
end

(** Selection vectors: row indexes into a batch, in logical order. *)
module Sel : sig
  type t = int array

  val length : t -> int
  val identity : int -> t

  val compose : t -> t -> t
  (** [compose base inner] re-filters an already-selected view: entry [i]
      of the result is [base.(inner.(i))]. *)
end

(** Typed column vectors with validity bitmaps; mixed or exotic columns
    fall back to a boxed [Value.t array]. *)
module Col : sig
  type data =
    | Ints of int array
    | Floats of float array
    | Bools of bool array
    | Strs of string array
    | Dates of int array        (** days since epoch, as in {!Value.Date} *)
    | Boxed of Value.t array    (** mixed / exotic columns; nulls inline *)

  type t = {
    data : data;
    valid : Bitmap.t option;
        (** [None] = every slot valid; [Boxed] never carries a bitmap *)
  }

  val length : t -> int
  val is_valid : t -> int -> bool
  val value : t -> int -> Value.t

  val of_values : Value.t array -> t
  (** Kind-detects from the first non-null; demotes to [Boxed] on any
      mismatch (including Int/Float mixes). Takes ownership of the array. *)

  val gather : t -> Sel.t -> t
  val to_values : t -> Value.t array
end

(** A batch: a fixed-width chunk of columns plus a selection vector.
    Filters narrow [sel] without copying column data; the next
    materialising operator applies it with {!Batch.flatten}. *)
module Batch : sig
  val batch_size : int

  type t = {
    cols : Col.t array;
    sel : Sel.t option;  (** logical subset/order of rows; [None] = all *)
    nrows : int;         (** physical rows held by every column *)
  }

  val length : t -> int
  val flatten : t -> t

  val column_of_rows : Row.t array -> int -> Col.t
  (** Column [j] of a row set, extracted in one pass with the same
      kind-probe/demotion rules as {!Col.of_values}. *)

  val of_rows : Row.t array -> width:int -> t
  val row : t -> int -> Row.t
  val to_rows : t -> Row.t array
end
