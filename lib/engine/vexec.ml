(** Vectorized (columnar, batch-at-a-time) execution of logical plans.

    The same plan tree the row interpreter ([Exec]) walks is executed over
    {!Vec.Batch} chunks: scans slice tables into typed column batches,
    filters produce selection vectors instead of copying rows, projections
    evaluate expressions column-wise, hash joins build and probe over
    column batches, and SUM/COUNT/AVG/MIN/MAX fold in tight typed loops
    without per-row [Value] allocation.

    Equivalence with [Exec] is a hard requirement — the row engine stays on
    as the differential oracle (fuzzed by [Openivm_fuzz], gated in the
    bench). Two mechanisms keep the engines aligned:

    - operators whose vectorization would not pay (sorts, distinct, set
      ops with dedup, nested-loop and index joins, DISTINCT aggregates,
      mixed-type group keys) run the {e same} code as the row engine,
      either literally (shared [Exec.join_materialized] /
      [Exec.aggregate_rows]) or as a boxed per-row path over materialized
      rows;
    - the vectorized kernels mirror [Exec]'s observable choices exactly:
      first-seen group order, probe-major join output with build-order
      matches, build-on-smaller-side, eager AND/OR evaluation, the
      int-to-float accumulator transitions of SUM/AVG.

    Typed fast paths that hash or encode values (group keys, join keys)
    are restricted to non-float, non-mixed columns: [Value.compare] makes
    [Int 1] equal to [Float 1.0], which byte encodings cannot honour, so
    those columns take the boxed path instead. *)

module Bitmap = Vec.Bitmap
module Sel = Vec.Sel
module Col = Vec.Col
module Batch = Vec.Batch

type payload =
  | Batches of Batch.t list
  | Rows of Row.t list

type vres = {
  schema : Schema.t;
  data : payload;
}

let lookup_of catalog table = (Catalog.find_table catalog table).Table.schema

let payload_rows = function
  | Rows rows -> rows
  | Batches bs -> List.concat_map (fun b -> Array.to_list (Batch.to_rows b)) bs

let payload_length = function
  | Rows rows -> List.length rows
  | Batches bs -> List.fold_left (fun n b -> n + Batch.length b) 0 bs

let to_result (v : vres) : Exec.result =
  { Exec.schema = v.schema; rows = payload_rows v.data }

(* --- metrics (same row counters as the row engine, plus batch shape) --- *)

let op_rows op =
  Openivm_obs.Metrics.counter "minidb_operator_rows_total"
    ~help:"rows emitted per physical operator" ~labels:[ ("op", op) ]

let op_batches op =
  Openivm_obs.Metrics.counter "minidb_operator_batches_total"
    ~help:"column batches emitted per vectorized operator"
    ~labels:[ ("op", op) ]

let rows_per_batch =
  Openivm_obs.Metrics.histogram "minidb_exec_rows_per_batch"
    ~help:"rows per emitted column batch (vectorized engine)"

let counters op = (op_rows op, op_batches op)
let c_scan = counters "scan"
let c_index_scan = counters "index_scan"
let c_materialized = counters "materialized"
let c_filter = counters "filter"
let c_project = counters "project"
let c_join = counters "join"
let c_aggregate = counters "aggregate"
let c_distinct = counters "distinct"
let c_sort = counters "sort"
let c_limit = counters "limit"
let c_setop = counters "set_op"

let op_counter : Plan.t -> _ = function
  | Plan.Scan _ -> c_scan
  | Plan.Index_scan _ -> c_index_scan
  | Plan.Materialized _ -> c_materialized
  | Plan.Filter _ -> c_filter
  | Plan.Project _ -> c_project
  | Plan.Join _ -> c_join
  | Plan.Aggregate _ -> c_aggregate
  | Plan.Distinct _ -> c_distinct
  | Plan.Sort _ -> c_sort
  | Plan.Limit _ -> c_limit
  | Plan.Set_op _ -> c_setop

(* --- vectorized expression compilation --- *)

(** Per-batch evaluation context: a flattened batch (no selection vector)
    plus lazily-boxed rows for closure fallbacks. *)
type ectx = {
  b : Batch.t;
  mutable brows : Row.t array option;
}

let mk_ctx (b : Batch.t) : ectx = { b = Batch.flatten b; brows = None }

let ctx_rows ctx =
  match ctx.brows with
  | Some r -> r
  | None ->
    let r = Batch.to_rows ctx.b in
    ctx.brows <- Some r;
    r

type vexpr = ectx -> Col.t

let valid_fn (c : Col.t) : int -> bool =
  match c.valid with
  | None ->
    (match c.data with
     | Col.Boxed a -> fun i -> a.(i) <> Value.Null
     | _ -> fun _ -> true)
  | Some b -> Bitmap.get b

let merge_valid (a : Col.t) (b : Col.t) : Bitmap.t option =
  match a.valid, b.valid with
  | None, None -> None
  | Some x, None -> Some x
  | None, Some y -> Some y
  | Some x, Some y -> Some (Bitmap.logand x y)

let const_col (v : Value.t) (n : int) : Col.t =
  match v with
  | Value.Int x -> { Col.data = Col.Ints (Array.make n x); valid = None }
  | Value.Float x -> { Col.data = Col.Floats (Array.make n x); valid = None }
  | Value.Bool x -> { Col.data = Col.Bools (Array.make n x); valid = None }
  | Value.Str x -> { Col.data = Col.Strs (Array.make n x); valid = None }
  | Value.Date x -> { Col.data = Col.Dates (Array.make n x); valid = None }
  | Value.Null -> { Col.data = Col.Boxed (Array.make n Value.Null); valid = None }

let elementwise2 (f : Value.t -> Value.t -> Value.t) n (a : Col.t) (b : Col.t) :
  Col.t =
  Col.of_values (Array.init n (fun i -> f (Col.value a i) (Col.value b i)))

let elementwise1 (f : Value.t -> Value.t) n (a : Col.t) : Col.t =
  Col.of_values (Array.init n (fun i -> f (Col.value a i)))

(* Arithmetic kernels; anything outside the pure numeric (and Date) typed
   cases defers to the row engine's per-value primitive, element by
   element, so error and NULL semantics cannot drift. *)
let arith_kernel (op : Sql.Ast.binop) n (a : Col.t) (b : Col.t) : Col.t =
  let fallback () = elementwise2 (Expr.binop_fn op) n a b in
  let float_loop x y (f : float -> float -> float) =
    let r = Array.make n 0.0 in
    for i = 0 to n - 1 do
      r.(i) <- f (x i) (y i)
    done;
    { Col.data = Col.Floats r; valid = merge_valid a b }
  in
  let of_int x i = float_of_int (x : int array).(i) in
  let of_flt (x : float array) i = x.(i) in
  match op, a.data, b.data with
  | (Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul), Col.Ints x, Col.Ints y ->
    let f = match op with
      | Sql.Ast.Add -> ( + ) | Sql.Ast.Sub -> ( - ) | _ -> ( * )
    in
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- f x.(i) y.(i) done;
    { Col.data = Col.Ints r; valid = merge_valid a b }
  | (Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul), Col.Ints x, Col.Floats y ->
    let f = match op with
      | Sql.Ast.Add -> ( +. ) | Sql.Ast.Sub -> ( -. ) | _ -> ( *. )
    in
    float_loop (of_int x) (of_flt y) f
  | (Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul), Col.Floats x, Col.Ints y ->
    let f = match op with
      | Sql.Ast.Add -> ( +. ) | Sql.Ast.Sub -> ( -. ) | _ -> ( *. )
    in
    float_loop (of_flt x) (of_int y) f
  | (Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul), Col.Floats x, Col.Floats y ->
    let f = match op with
      | Sql.Ast.Add -> ( +. ) | Sql.Ast.Sub -> ( -. ) | _ -> ( *. )
    in
    float_loop (of_flt x) (of_flt y) f
  | Sql.Ast.Add, Col.Dates x, Col.Ints y ->
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- x.(i) + y.(i) done;
    { Col.data = Col.Dates r; valid = merge_valid a b }
  | Sql.Ast.Add, Col.Ints x, Col.Dates y ->
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- x.(i) + y.(i) done;
    { Col.data = Col.Dates r; valid = merge_valid a b }
  | Sql.Ast.Sub, Col.Dates x, Col.Dates y ->
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- x.(i) - y.(i) done;
    { Col.data = Col.Ints r; valid = merge_valid a b }
  | Sql.Ast.Sub, Col.Dates x, Col.Ints y ->
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- x.(i) - y.(i) done;
    { Col.data = Col.Dates r; valid = merge_valid a b }
  | Sql.Ast.Div, (Col.Ints _ | Col.Floats _), (Col.Ints _ | Col.Floats _) ->
    (* always-float division; a zero divisor nulls the lane *)
    let get (c : Col.t) = match c.data with
      | Col.Ints x -> of_int x
      | Col.Floats x -> of_flt x
      | _ -> assert false
    in
    let xa = get a and yb = get b in
    let va = valid_fn a and vb = valid_fn b in
    let r = Array.make n 0.0 in
    let valid = Bitmap.create n true in
    let any_null = ref false in
    for i = 0 to n - 1 do
      let y = yb i in
      if va i && vb i && y <> 0.0 then r.(i) <- xa i /. y
      else begin
        Bitmap.set valid i false;
        any_null := true
      end
    done;
    { Col.data = Col.Floats r; valid = (if !any_null then Some valid else None) }
  | Sql.Ast.Mod, Col.Ints x, Col.Ints y ->
    let va = valid_fn a and vb = valid_fn b in
    let r = Array.make n 0 in
    let valid = Bitmap.create n true in
    let any_null = ref false in
    for i = 0 to n - 1 do
      if va i && vb i && y.(i) <> 0 then r.(i) <- x.(i) mod y.(i)
      else begin
        Bitmap.set valid i false;
        any_null := true
      end
    done;
    { Col.data = Col.Ints r; valid = (if !any_null then Some valid else None) }
  | _ -> fallback ()

(* Comparison kernels over same-kind (or numeric cross-kind) typed
   columns; NULL operands null the lane ([Expr.compare3] semantics). *)
let cmp_kernel (op : Sql.Ast.binop) (test : int -> bool) n (a : Col.t)
    (b : Col.t) : Col.t =
  let bools (cmp : int -> int) =
    let r = Array.make n false in
    for i = 0 to n - 1 do r.(i) <- test (cmp i) done;
    { Col.data = Col.Bools r; valid = merge_valid a b }
  in
  match a.data, b.data with
  | Col.Ints x, Col.Ints y -> bools (fun i -> compare x.(i) y.(i))
  | Col.Ints x, Col.Floats y ->
    bools (fun i -> compare (float_of_int x.(i)) y.(i))
  | Col.Floats x, Col.Ints y ->
    bools (fun i -> compare x.(i) (float_of_int y.(i)))
  | Col.Floats x, Col.Floats y -> bools (fun i -> compare x.(i) y.(i))
  | Col.Strs x, Col.Strs y -> bools (fun i -> String.compare x.(i) y.(i))
  | Col.Bools x, Col.Bools y -> bools (fun i -> compare x.(i) y.(i))
  | Col.Dates x, Col.Dates y -> bools (fun i -> compare x.(i) y.(i))
  | _ -> elementwise2 (Expr.binop_fn op) n a b

(* Kleene AND/OR over boolean columns: a definite false (resp. true)
   dominates a NULL on the other side. *)
let logic_kernel (op : Sql.Ast.binop) n (a : Col.t) (b : Col.t) : Col.t =
  match a.data, b.data with
  | Col.Bools x, Col.Bools y ->
    let va = valid_fn a and vb = valid_fn b in
    let r = Array.make n false in
    let valid = Bitmap.create n true in
    let any_null = ref false in
    let conj = op = Sql.Ast.And in
    for i = 0 to n - 1 do
      let xa = va i and xb = vb i in
      let dominant =
        if conj then (xa && not x.(i)) || (xb && not y.(i))
        else (xa && x.(i)) || (xb && y.(i))
      in
      if dominant then r.(i) <- not conj
      else if not (xa && xb) then begin
        Bitmap.set valid i false;
        any_null := true
      end
      else r.(i) <- (if conj then x.(i) && y.(i) else x.(i) || y.(i))
    done;
    { Col.data = Col.Bools r; valid = (if !any_null then Some valid else None) }
  | _ -> elementwise2 (Expr.binop_fn op) n a b

let neg_kernel n (a : Col.t) : Col.t =
  match a.data with
  | Col.Ints x ->
    let r = Array.make n 0 in
    for i = 0 to n - 1 do r.(i) <- -x.(i) done;
    { Col.data = Col.Ints r; valid = a.valid }
  | Col.Floats x ->
    let r = Array.make n 0.0 in
    for i = 0 to n - 1 do r.(i) <- -.x.(i) done;
    { Col.data = Col.Floats r; valid = a.valid }
  | _ -> elementwise1 Expr.neg_value n a

let not_kernel n (a : Col.t) : Col.t =
  match a.data with
  | Col.Bools x ->
    let r = Array.make n false in
    for i = 0 to n - 1 do r.(i) <- not x.(i) done;
    { Col.data = Col.Bools r; valid = a.valid }
  | _ -> elementwise1 Expr.logical_not n a

let is_null_kernel ~negated n (a : Col.t) : Col.t =
  let va = valid_fn a in
  let r = Array.make n false in
  for i = 0 to n - 1 do
    let isnull = not (va i) in
    r.(i) <- (if negated then not isnull else isnull)
  done;
  { Col.data = Col.Bools r; valid = None }

(* --- key encoding for typed group/join fast paths ---

   One tag byte per column distinguishes kinds the way [Value.equal] does
   (Int 5 <> Date 5 <> Str "5"); NULL is its own tag. Floats and boxed
   columns are never encoded — [Value.compare] equates Int 1 with
   Float 1.0, which no byte encoding of separate lanes can honour — so
   eligibility checks exclude them and those inputs take the boxed path. *)

let encodable (c : Col.t) =
  match c.data with
  | Col.Floats _ | Col.Boxed _ -> false
  | Col.Ints _ | Col.Bools _ | Col.Strs _ | Col.Dates _ -> true

(* Lane-wise hashing and equality for group keys: identical semantics to
   [Value.hash] / [Value.equal] on the boxed lane, without allocating the
   box. Because they honour cross-type numeric equality (Int 1 = Float
   1.0, integral floats hash like the equal int), the grouping fast path
   has no kind restriction, unlike the byte-encoded join keys below. *)

let lane_hash (c : Col.t) i =
  if not (Col.is_valid c i) then 17
  else
    match c.Col.data with
    | Col.Ints a -> Hashtbl.hash a.(i)
    | Col.Floats a ->
      let f = a.(i) in
      if Float.is_integer f && Float.abs f < 1e15 then
        Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
    | Col.Bools a -> if a.(i) then 31 else 37
    | Col.Strs a -> Hashtbl.hash a.(i)
    | Col.Dates a -> Hashtbl.hash (a.(i) + 0x5ca1ab1e)
    | Col.Boxed a -> Value.hash a.(i)

let lane_equals (c : Col.t) i (v : Value.t) =
  if not (Col.is_valid c i) then Value.is_null v
  else
    match c.Col.data, v with
    | Col.Boxed a, _ -> Value.equal a.(i) v
    | _, Value.Null -> false
    | Col.Ints a, Value.Int x -> a.(i) = x
    | Col.Ints a, Value.Float f -> Stdlib.compare (float_of_int a.(i)) f = 0
    | Col.Floats a, Value.Float f -> Stdlib.compare a.(i) f = 0
    | Col.Floats a, Value.Int x -> Stdlib.compare a.(i) (float_of_int x) = 0
    | Col.Bools a, Value.Bool b -> a.(i) = b
    | Col.Strs a, Value.Str s -> String.equal a.(i) s
    | Col.Dates a, Value.Date d -> a.(i) = d
    | _ -> false

let lane_nonnull (c : Col.t) i =
  Col.is_valid c i
  && (match c.Col.data with
      | Col.Boxed a -> not (Value.is_null a.(i))
      | _ -> true)

(* Lane truth for CASE guards: exactly the row engine's [Bool true]
   match — NULL and non-boolean guard values select no branch. *)
let truth_mask (c : Col.t) n : bool array =
  match c.Col.data with
  | Col.Bools a ->
    let va = valid_fn c in
    Array.init n (fun i -> a.(i) && va i)
  | Col.Boxed a ->
    Array.init n (fun i ->
        match a.(i) with Value.Bool true -> true | _ -> false)
  | _ -> Array.make n false

(* Materialize a column whose lane [i] copies lane [i] of
   [cols.(pick.(i))] ([-1] = NULL) — the select step of the vectorized
   CASE and COALESCE. Same-kind sources keep their typed representation;
   mixed kinds go through boxed values and re-detection. *)
let merge_pick n (cols : Col.t array) (pick : int array) : Col.t =
  let tag (c : Col.t) =
    match c.Col.data with
    | Col.Boxed _ -> 0
    | Col.Ints _ -> 1
    | Col.Floats _ -> 2
    | Col.Bools _ -> 3
    | Col.Strs _ -> 4
    | Col.Dates _ -> 5
  in
  let same_kind =
    Array.length cols > 0
    &&
    let t0 = tag cols.(0) in
    t0 <> 0 && Array.for_all (fun c -> tag c = t0) cols
  in
  if not same_kind then
    Col.of_values
      (Array.init n (fun i ->
           if pick.(i) < 0 then Value.Null else Col.value cols.(pick.(i)) i))
  else begin
    let valid = Bitmap.create n false in
    let set_from sources out =
      for i = 0 to n - 1 do
        let p = pick.(i) in
        if p >= 0 && Col.is_valid cols.(p) i then begin
          out.(i) <- sources.(p).(i);
          Bitmap.set valid i true
        end
      done
    in
    let data =
      match cols.(0).Col.data with
      | Col.Ints _ ->
        let srcs =
          Array.map
            (fun (c : Col.t) ->
               match c.Col.data with Col.Ints a -> a | _ -> assert false)
            cols
        in
        let out = Array.make n 0 in
        set_from srcs out;
        Col.Ints out
      | Col.Dates _ ->
        let srcs =
          Array.map
            (fun (c : Col.t) ->
               match c.Col.data with Col.Dates a -> a | _ -> assert false)
            cols
        in
        let out = Array.make n 0 in
        set_from srcs out;
        Col.Dates out
      | Col.Floats _ ->
        let srcs =
          Array.map
            (fun (c : Col.t) ->
               match c.Col.data with Col.Floats a -> a | _ -> assert false)
            cols
        in
        let out = Array.make n 0.0 in
        set_from srcs out;
        Col.Floats out
      | Col.Bools _ ->
        let srcs =
          Array.map
            (fun (c : Col.t) ->
               match c.Col.data with Col.Bools a -> a | _ -> assert false)
            cols
        in
        let out = Array.make n false in
        set_from srcs out;
        Col.Bools out
      | Col.Strs _ ->
        let srcs =
          Array.map
            (fun (c : Col.t) ->
               match c.Col.data with Col.Strs a -> a | _ -> assert false)
            cols
        in
        let out = Array.make n "" in
        set_from srcs out;
        Col.Strs out
      | Col.Boxed _ -> assert false
    in
    { Col.data;
      valid = (if Bitmap.all_set valid then None else Some valid) }
  end

let encode_lane buf (c : Col.t) i =
  if not (Col.is_valid c i) then Buffer.add_char buf '\x00'
  else
    match c.data with
    | Col.Ints a ->
      Buffer.add_char buf 'i';
      Buffer.add_int64_le buf (Int64.of_int a.(i))
    | Col.Dates a ->
      Buffer.add_char buf 'd';
      Buffer.add_int64_le buf (Int64.of_int a.(i))
    | Col.Bools a ->
      Buffer.add_char buf 'b';
      Buffer.add_char buf (if a.(i) then '\x01' else '\x00')
    | Col.Strs a ->
      Buffer.add_char buf 's';
      Buffer.add_int32_le buf (Int32.of_int (String.length a.(i)));
      Buffer.add_string buf a.(i)
    | Col.Floats _ | Col.Boxed _ -> assert false

(* --- typed aggregate accumulator updates (mirror Exec.update_state) --- *)

let upd_int (st : Exec.agg_state) (i : int) =
  match st with
  | Exec.Count_st n -> incr n
  | Exec.Sum_st s ->
    s.saw <- true;
    if s.float_mode then s.sum_float <- s.sum_float +. float_of_int i
    else s.sum_int <- s.sum_int + i
  | Exec.Avg_st a ->
    a.n <- a.n + 1;
    if a.float_mode then a.sum_float <- a.sum_float +. float_of_int i
    else a.sum_int <- a.sum_int + i
  | Exec.Extremum_st e ->
    (match e.cur with
     | Value.Int c ->
       if (e.is_min && i < c) || ((not e.is_min) && i > c) then
         e.cur <- Value.Int i
     | Value.Null -> e.cur <- Value.Int i
     | _ -> Exec.update_state st (Some (Value.Int i)))

let upd_float (st : Exec.agg_state) (f : float) =
  match st with
  | Exec.Count_st n -> incr n
  | Exec.Sum_st s ->
    s.saw <- true;
    if not s.float_mode then begin
      s.float_mode <- true;
      s.sum_float <- float_of_int s.sum_int
    end;
    s.sum_float <- s.sum_float +. f
  | Exec.Avg_st a ->
    a.n <- a.n + 1;
    if not a.float_mode then begin
      a.float_mode <- true;
      a.sum_float <- float_of_int a.sum_int
    end;
    a.sum_float <- a.sum_float +. f
  | Exec.Extremum_st e ->
    (match e.cur with
     | Value.Float c ->
       let cmp = compare f c in
       if (e.is_min && cmp < 0) || ((not e.is_min) && cmp > 0) then
         e.cur <- Value.Float f
     | Value.Null -> e.cur <- Value.Float f
     | _ -> Exec.update_state st (Some (Value.Float f)))

(* --- all-integer aggregate fast path ---

   When every group-key column is a dense (no NULL lane) [Col.Ints] and
   every aggregate is COUNT or SUM over dense columns, the whole grouping
   runs over unboxed int arrays: inline multiplicative hashing, flat key /
   accumulator storage, and typed output columns. The hash only has to be
   consistent within this one table (equal keys hash equal), not match
   [Value.hash] — all lanes are ints, so no cross-kind probe can occur.
   First-seen group order is insertion order, same as the general path.
   This is the propagation hot path: regroup combines are GROUP BY over
   int group columns with SUM of an int multiplicity. *)

type int_agg_upd =
  | U_count_all            (* count every lane: COUNT star or dense arg *)
  | U_count_bm of Bitmap.t (* COUNT over a lane with a validity bitmap *)
  | U_sum_int of int array (* SUM over dense int lanes *)

let vaggregate_ints schema
    (evaled : (Col.t array * Col.t option array * int) array)
    ~nkeys ~naggs ~nin (aggs_arr : Plan.agg_spec array) : vres option =
  if nkeys = 0 then None (* global agg: empty-input group needs NULL sums *)
  else
    let dense (c : Col.t) =
      match c.Col.valid with None -> true | Some bm -> Bitmap.all_set bm
    in
    let classify =
      try
        Some
          (Array.map
             (fun ((kcols : Col.t array), (acols : Col.t option array), n) ->
                let karrs =
                  Array.map
                    (fun c ->
                       match c.Col.data with
                       | Col.Ints a when dense c -> a
                       | _ -> raise_notrace Exit)
                    kcols
                in
                let upds =
                  Array.mapi
                    (fun k copt ->
                       match aggs_arr.(k).Plan.agg, copt with
                       | Sql.Ast.Count, None -> U_count_all
                       | Sql.Ast.Count, Some { Col.data = Col.Boxed _; _ } ->
                         raise_notrace Exit (* NULLs live inline, not in bitmap *)
                       | Sql.Ast.Count, Some c ->
                         (match c.Col.valid with
                          | None -> U_count_all
                          | Some bm ->
                            if Bitmap.all_set bm then U_count_all
                            else U_count_bm bm)
                       | Sql.Ast.Sum, Some ({ Col.data = Col.Ints a; _ } as c)
                         when dense c -> U_sum_int a
                       | _ -> raise_notrace Exit)
                    acols
                in
                (karrs, upds, n))
             evaled)
      with Exit -> None
    in
    match classify with
    | None -> None
    | Some batches ->
      let cap =
        let c = ref 4096 in
        while !c < 2 * nin do c := !c * 2 done;
        !c
      in
      let m = cap - 1 in
      let slots = Array.make cap (-1) in
      let cap_g = max 1 nin in
      let ghash = Array.make cap_g 0 in
      let gkeys = Array.init nkeys (fun _ -> Array.make cap_g 0) in
      let acc = Array.init naggs (fun _ -> Array.make cap_g 0) in
      let ng = ref 0 in
      Array.iter
        (fun ((karrs : int array array), upds, n) ->
           for i = 0 to n - 1 do
             let h = ref 17 in
             for j = 0 to nkeys - 1 do
               h := (!h * 31) + (karrs.(j).(i) * 0x2545f491)
             done;
             let h = !h land max_int in
             let s = ref (h land m) in
             let g = ref (-1) in
             while !g < 0 do
               let cand = slots.(!s) in
               if cand < 0 then begin
                 let fresh = !ng in
                 incr ng;
                 ghash.(fresh) <- h;
                 for j = 0 to nkeys - 1 do
                   gkeys.(j).(fresh) <- karrs.(j).(i)
                 done;
                 slots.(!s) <- fresh;
                 g := fresh
               end
               else if
                 ghash.(cand) = h
                 && (let ok = ref true in
                     for j = 0 to nkeys - 1 do
                       if gkeys.(j).(cand) <> karrs.(j).(i) then ok := false
                     done;
                     !ok)
               then g := cand
               else s := (!s + 1) land m
             done;
             let g = !g in
             for k = 0 to naggs - 1 do
               match upds.(k) with
               | U_count_all -> acc.(k).(g) <- acc.(k).(g) + 1
               | U_count_bm bm ->
                 if Bitmap.get bm i then acc.(k).(g) <- acc.(k).(g) + 1
               | U_sum_int a -> acc.(k).(g) <- acc.(k).(g) + a.(i)
             done
           done)
        batches;
      let ng = !ng in
      let int_col a =
        { Col.data = Col.Ints (Array.sub a 0 ng); valid = None }
      in
      let key_cols = Array.init nkeys (fun j -> int_col gkeys.(j)) in
      let agg_cols = Array.init naggs (fun k -> int_col acc.(k)) in
      Some
        { schema;
          data =
            Batches
              [ { Batch.cols = Array.append key_cols agg_cols;
                  sel = None;
                  nrows = ng } ] }

(* --- scans --- *)

let scan_batches (tbl : Table.t) : Batch.t list =
  let width = Table.arity tbl in
  let buf = Array.make Batch.batch_size [||] in
  let n = ref 0 in
  let out = ref [] in
  let flush () =
    if !n > 0 then begin
      out := Batch.of_rows (Array.sub buf 0 !n) ~width :: !out;
      n := 0
    end
  in
  Table.iter_rows
    (fun row ->
       buf.(!n) <- row;
       incr n;
       if !n = Batch.batch_size then flush ())
    tbl;
  flush ();
  List.rev !out

(* Concatenate per-batch columns of one logical column into a single dense
   column (same kind -> typed concat; mixed kinds -> boxed). *)
let concat_cols (cols : Col.t list) (total : int) : Col.t =
  match cols with
  | [] -> { Col.data = Col.Boxed [||]; valid = None }
  | [ c ] -> c
  | first :: _ ->
    let same_kind =
      let kind_of (c : Col.t) =
        match c.data with
        | Col.Ints _ -> 0 | Col.Floats _ -> 1 | Col.Bools _ -> 2
        | Col.Strs _ -> 3 | Col.Dates _ -> 4 | Col.Boxed _ -> 5
      in
      let k = kind_of first in
      List.for_all (fun c -> kind_of c = k) cols
    in
    if not same_kind then
      Col.of_values
        (Array.concat (List.map Col.to_values cols))
    else begin
      let has_validity = List.exists (fun (c : Col.t) -> c.valid <> None) cols in
      let valid =
        if not has_validity then None
        else begin
          let bm = Bitmap.create total true in
          let off = ref 0 in
          List.iter
            (fun (c : Col.t) ->
               let len = Col.length c in
               (match c.valid with
                | None -> ()
                | Some v ->
                  for i = 0 to len - 1 do
                    if not (Bitmap.get v i) then Bitmap.set bm (!off + i) false
                  done);
               off := !off + len)
            cols;
          Some bm
        end
      in
      let data =
        match first.data with
        | Col.Ints _ ->
          Col.Ints (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Ints a -> a | _ -> assert false) cols))
        | Col.Floats _ ->
          Col.Floats (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Floats a -> a | _ -> assert false) cols))
        | Col.Bools _ ->
          Col.Bools (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Bools a -> a | _ -> assert false) cols))
        | Col.Strs _ ->
          Col.Strs (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Strs a -> a | _ -> assert false) cols))
        | Col.Dates _ ->
          Col.Dates (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Dates a -> a | _ -> assert false) cols))
        | Col.Boxed _ ->
          Col.Boxed (Array.concat (List.map (fun (c : Col.t) ->
              match c.data with Col.Boxed a -> a | _ -> assert false) cols))
      in
      { Col.data; valid }
    end

(* Merge a batch list into one dense mega-batch (used by the columnar hash
   join, which needs global row indexes for its gather lists). *)
let mega_batch (width : int) (bs : Batch.t list) : Batch.t =
  let fbs = List.map Batch.flatten bs in
  let total = List.fold_left (fun n (b : Batch.t) -> n + b.nrows) 0 fbs in
  let cols =
    Array.init width (fun j ->
        concat_cols (List.map (fun (b : Batch.t) -> b.cols.(j)) fbs) total)
  in
  { Batch.cols; sel = None; nrows = total }

let null_col n : Col.t =
  { Col.data = Col.Boxed (Array.make n Value.Null); valid = None }

(* All-NULL padding that keeps the template column's kind (with an
   all-false validity bitmap), so the null-extended side of an outer join
   stays on typed kernel paths — COALESCE / CASE / IS NULL over the
   unmatched batch would otherwise fall back to boxed per-lane code. *)
let null_like (template : Col.t) n : Col.t =
  let valid = Some (Bitmap.create n false) in
  match template.Col.data with
  | Col.Ints _ -> { Col.data = Col.Ints (Array.make n 0); valid }
  | Col.Floats _ -> { Col.data = Col.Floats (Array.make n 0.0); valid }
  | Col.Bools _ -> { Col.data = Col.Bools (Array.make n false); valid }
  | Col.Strs _ -> { Col.data = Col.Strs (Array.make n ""); valid }
  | Col.Dates _ -> { Col.data = Col.Dates (Array.make n 0); valid }
  | Col.Boxed _ -> null_col n

let is_scan = function Plan.Scan _ -> true | _ -> false

(* --- the interpreter --- *)

let rec vrun (catalog : Catalog.t) (plan : Plan.t) : vres =
  let v = exec_node catalog plan in
  if Openivm_obs.Span.enabled () then begin
    let rows_c, batches_c = op_counter plan in
    Openivm_obs.Metrics.add rows_c (payload_length v.data);
    match v.data with
    | Batches bs ->
      Openivm_obs.Metrics.add batches_c (List.length bs);
      List.iter
        (fun b ->
           Openivm_obs.Metrics.observe rows_per_batch
             (float_of_int (Batch.length b)))
        bs
    | Rows _ -> ()
  end;
  v

and exec_node (catalog : Catalog.t) (plan : Plan.t) : vres =
  let lookup = lookup_of catalog in
  let schema = Plan.schema_of ~lookup plan in
  match plan with
  | Plan.Scan { table; _ } ->
    { schema; data = Batches (scan_batches (Catalog.find_table catalog table)) }
  | Plan.Index_scan { table; index_name; key_exprs; _ } ->
    let tbl = Catalog.find_table catalog table in
    let key =
      Value.encode_key
        (Array.of_list
           (List.map (fun e -> compile_expr catalog [] e [||]) key_exprs))
    in
    let rows =
      if index_name = "" then Option.to_list (Table.pk_lookup tbl key)
      else
        match Table.find_secondary tbl index_name with
        | Some ix -> Table.index_lookup tbl ix key
        | None -> Error.fail "index %S vanished from table %S" index_name table
    in
    { schema; data = Rows rows }
  | Plan.Materialized { rows; _ } -> { schema; data = Rows rows }
  | Plan.Filter { input; predicate } ->
    let inner = vrun catalog input in
    (match inner.data with
     | Rows rows ->
       let pred = compile_expr catalog inner.schema predicate in
       { schema = inner.schema;
         data = Rows (List.filter (fun r -> Expr.is_true (pred r)) rows) }
     | Batches bs ->
       let ve = vcompile catalog inner.schema predicate in
       let out =
         List.filter_map
           (fun b ->
              let ctx = mk_ctx b in
              let n = ctx.b.Batch.nrows in
              let c = ve ctx in
              let sel = sel_of_pred c n in
              if Array.length sel = 0 then None
              else Some { ctx.b with Batch.sel = Some sel })
           bs
       in
       { schema = inner.schema; data = Batches out })
  | Plan.Project { input; projections; _ } ->
    let inner = vrun catalog input in
    (match inner.data with
     | Rows rows ->
       let compiled =
         List.map (fun (e, _) -> compile_expr catalog inner.schema e) projections
       in
       { schema;
         data =
           Rows
             (List.map
                (fun r ->
                   Array.of_list (List.map (fun c -> c r) compiled))
                rows) }
     | Batches bs ->
       let compiled =
         Array.of_list
           (List.map (fun (e, _) -> vcompile catalog inner.schema e) projections)
       in
       let out =
         List.map
           (fun b ->
              let ctx = mk_ctx b in
              let cols = Array.map (fun ve -> ve ctx) compiled in
              { Batch.cols; sel = None; nrows = ctx.b.Batch.nrows })
           bs
       in
       { schema; data = Batches out })
  | Plan.Join { left; right; kind; condition } ->
    vjoin catalog schema left right kind condition
  | Plan.Aggregate { input; group_exprs; aggs } ->
    vaggregate catalog schema input group_exprs aggs
  | Plan.Distinct input ->
    let inner = vrun catalog input in
    let seen = Row.Tbl.create 64 in
    let rows =
      List.filter
        (fun r ->
           if Row.Tbl.mem seen r then false
           else begin Row.Tbl.add seen r (); true end)
        (payload_rows inner.data)
    in
    { schema = inner.schema; data = Rows rows }
  | Plan.Sort { input; keys } ->
    let inner = vrun catalog input in
    let compiled =
      List.map
        (fun (e, desc) -> (compile_expr catalog inner.schema e, desc))
        keys
    in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (key, desc) :: rest ->
          let c = Value.compare (key a) (key b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go compiled
    in
    { schema = inner.schema;
      data = Rows (List.stable_sort cmp (payload_rows inner.data)) }
  | Plan.Limit { input; limit; offset } ->
    let inner = vrun catalog input in
    let rows = payload_rows inner.data in
    let rows =
      match offset with
      | Some n ->
        let rec drop k = function
          | rest when k = 0 -> rest
          | [] -> []
          | _ :: rest -> drop (k - 1) rest
        in
        drop n rows
      | None -> rows
    in
    let rows =
      match limit with
      | Some n ->
        let rec take k = function
          | _ when k = 0 -> []
          | [] -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        take n rows
      | None -> rows
    in
    { schema = inner.schema; data = Rows rows }
  | Plan.Set_op { op; left; right } ->
    let l = vrun catalog left and r = vrun catalog right in
    if Schema.arity l.schema <> Schema.arity r.schema then
      Error.fail "set operation arms have different arities (%d vs %d)"
        (Schema.arity l.schema) (Schema.arity r.schema);
    (match op with
     | Sql.Ast.Union_all ->
       (* the one set op that stays columnar: batch concatenation *)
       (match l.data, r.data with
        | Batches lb, Batches rb -> { schema = l.schema; data = Batches (lb @ rb) }
        | _ ->
          { schema = l.schema;
            data = Rows (payload_rows l.data @ payload_rows r.data) })
     | Sql.Ast.Union | Sql.Ast.Except | Sql.Ast.Intersect ->
       let lrows = payload_rows l.data and rrows = payload_rows r.data in
       let distinct rows =
         let seen = Row.Tbl.create 64 in
         List.filter
           (fun row ->
              if Row.Tbl.mem seen row then false
              else begin Row.Tbl.add seen row (); true end)
           rows
       in
       let rows =
         match op with
         | Sql.Ast.Union -> distinct (lrows @ rrows)
         | Sql.Ast.Except ->
           let rset = Row.Tbl.create 64 in
           List.iter (fun row -> Row.Tbl.replace rset row ()) rrows;
           distinct (List.filter (fun row -> not (Row.Tbl.mem rset row)) lrows)
         | _ ->
           let rset = Row.Tbl.create 64 in
           List.iter (fun row -> Row.Tbl.replace rset row ()) rrows;
           distinct (List.filter (fun row -> Row.Tbl.mem rset row) lrows)
       in
       { schema = l.schema; data = Rows rows })

and sel_of_pred (c : Col.t) (n : int) : Sel.t =
  match c.data with
  | Col.Bools a ->
    let va = valid_fn c in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) && va i then incr count
    done;
    let sel = Array.make !count 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) && va i then begin
        sel.(!k) <- i;
        incr k
      end
    done;
    sel
  | Col.Boxed a ->
    let count = ref 0 in
    for i = 0 to n - 1 do
      if Expr.is_true a.(i) then incr count
    done;
    let sel = Array.make !count 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if Expr.is_true a.(i) then begin
        sel.(!k) <- i;
        incr k
      end
    done;
    sel
  | _ -> [||]  (* non-boolean predicate value: never true (Expr.is_true) *)

(* evaluate an uncorrelated subquery to its first column, for IN (SELECT) *)
and subquery_values catalog (q : Sql.Ast.select) : Value.t list =
  let plan = Optimizer.optimize catalog (Planner.plan catalog q) in
  List.filter_map
    (fun row -> if Array.length row > 0 then Some row.(0) else None)
    (to_result (vrun catalog plan)).Exec.rows

and compile_expr catalog schema e =
  Expr.compile ~subquery:(subquery_values catalog) schema e

(* the vectorized expression compiler: kernels for columns, literals,
   arithmetic, comparisons, logic, IS NULL; everything else evaluates the
   row-engine closure over the batch's (lazily) boxed rows *)
and vcompile catalog (schema : Schema.t) (e : Sql.Ast.expr) : vexpr =
  match e with
  | Sql.Ast.Column (qualifier, name) when name <> "*" ->
    let i, _ = Schema.find schema ~qualifier ~name in
    fun ctx -> ctx.b.Batch.cols.(i)
  | Sql.Ast.Lit l ->
    let v = Expr.lit_value l in
    fun ctx -> const_col v ctx.b.Batch.nrows
  | Sql.Ast.Unary (Sql.Ast.Neg, a) ->
    let ca = vcompile catalog schema a in
    fun ctx -> neg_kernel ctx.b.Batch.nrows (ca ctx)
  | Sql.Ast.Unary (Sql.Ast.Not, a) ->
    let ca = vcompile catalog schema a in
    fun ctx -> not_kernel ctx.b.Batch.nrows (ca ctx)
  | Sql.Ast.Is_null (a, negated) ->
    let ca = vcompile catalog schema a in
    fun ctx -> is_null_kernel ~negated ctx.b.Batch.nrows (ca ctx)
  | Sql.Ast.Binary (op, a, b) ->
    let ca = vcompile catalog schema a and cb = vcompile catalog schema b in
    let kernel =
      match op with
      | Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul | Sql.Ast.Div | Sql.Ast.Mod ->
        arith_kernel op
      | Sql.Ast.Eq -> cmp_kernel op (fun c -> c = 0)
      | Sql.Ast.Neq -> cmp_kernel op (fun c -> c <> 0)
      | Sql.Ast.Lt -> cmp_kernel op (fun c -> c < 0)
      | Sql.Ast.Le -> cmp_kernel op (fun c -> c <= 0)
      | Sql.Ast.Gt -> cmp_kernel op (fun c -> c > 0)
      | Sql.Ast.Ge -> cmp_kernel op (fun c -> c >= 0)
      | Sql.Ast.And | Sql.Ast.Or -> logic_kernel op
      | Sql.Ast.Concat ->
        fun n a b -> elementwise2 (Expr.binop_fn op) n a b
    in
    fun ctx ->
      (* both operands evaluate eagerly, as in the row engine *)
      let a = ca ctx and b = cb ctx in
      kernel ctx.b.Batch.nrows a b
  | Sql.Ast.Func (("coalesce" | "ifnull") as name, args)
    when args <> [] && (String.equal name "coalesce" || List.length args = 2)
    ->
    (* first non-NULL lane across the argument columns; arguments evaluate
       left to right and stop at the first column with no NULL lane (the
       row engine's per-row short-circuit, batch-wide). A column with no
       valid lane — the null-padded side of an outer join — contributes
       nothing and is dropped without a per-lane scan. *)
    let cargs = List.map (vcompile catalog schema) args in
    fun ctx ->
      let n = ctx.b.Batch.nrows in
      let all_valid (c : Col.t) =
        match c.Col.valid with
        | Some bm -> Bitmap.all_set bm
        | None -> (match c.Col.data with Col.Boxed _ -> false | _ -> true)
      in
      let all_null (c : Col.t) =
        match c.Col.valid with
        | Some bm -> Bitmap.none_set bm
        | None -> false
      in
      let rec materialize = function
        | [] -> []
        | c :: rest ->
          let col = c ctx in
          if all_valid col then [ col ]
          else if all_null col && rest <> [] then materialize rest
          else col :: materialize rest
      in
      (match materialize cargs with
       | [ col ] -> col
       | cols_list ->
         let cols = Array.of_list cols_list in
         let nc = Array.length cols in
         let pick = Array.make n (-1) in
         for i = 0 to n - 1 do
           (try
              for j = 0 to nc - 1 do
                if lane_nonnull cols.(j) i then begin
                  pick.(i) <- j;
                  raise Exit
                end
              done
            with Exit -> ())
         done;
         merge_pick n cols pick)
  | Sql.Ast.Case (branches, default) when branches <> [] ->
    (* searched CASE: guards become truth masks, lanes pick the first
       true branch (the default column rides along at index [nbr]) *)
    let cbr =
      List.map
        (fun (c, v) -> (vcompile catalog schema c, vcompile catalog schema v))
        branches
    in
    let cdef = Option.map (vcompile catalog schema) default in
    let nbr = List.length cbr in
    let has_def = Option.is_some cdef in
    let values = Array.of_list (List.map snd cbr) in
    fun ctx ->
      let n = ctx.b.Batch.nrows in
      let masks =
        Array.of_list (List.map (fun (c, _) -> truth_mask (c ctx) n) cbr)
      in
      let pick = Array.make n (if has_def then nbr else -1) in
      for i = 0 to n - 1 do
        (try
           for j = 0 to nbr - 1 do
             if masks.(j).(i) then begin
               pick.(i) <- j;
               raise Exit
             end
           done
         with Exit -> ())
      done;
      let uniform =
        if n = 0 then -1
        else begin
          let p0 = pick.(0) in
          try
            for i = 1 to n - 1 do
              if pick.(i) <> p0 then raise_notrace Exit
            done;
            p0
          with Exit -> -1
        end
      in
      if uniform >= 0 then
        (* every lane takes the same branch: evaluate only that branch's
           value — the others stay untouched, like the row engine *)
        (if uniform < nbr then values.(uniform) ctx else (Option.get cdef) ctx)
      else begin
        let cols =
          Array.of_list
            (Array.to_list (Array.map (fun v -> v ctx) values)
             @ (match cdef with Some d -> [ d ctx ] | None -> []))
        in
        merge_pick n cols pick
      end
  | _ ->
    (* Func / Case / Cast / IN / BETWEEN / LIKE / subqueries: the row
       closure over boxed rows *)
    let compiled = compile_expr catalog schema e in
    fun ctx ->
      let rows = ctx_rows ctx in
      Col.of_values (Array.map compiled rows)

(* --- joins --- *)

and vjoin catalog schema left right kind condition : vres =
  let lookup = lookup_of catalog in
  let ls = Plan.schema_of ~lookup left in
  let rs = Plan.schema_of ~lookup right in
  let keys, residual = Exec.split_join_condition ls rs condition in
  (* the shared row-engine join, with inputs produced by this engine *)
  let boxed ?l ?r () =
    let side cached plan () =
      match cached with
      | Some (v : vres) -> to_result v
      | None -> to_result (vrun catalog plan)
    in
    { schema;
      data =
        Rows
          (Exec.join_materialized catalog schema left right kind condition
             ~get_l:(side l left) ~get_r:(side r right)).Exec.rows }
  in
  (* The index nested-loop path triggers only on a bare Scan input of a
     matching join kind; mirroring its worthwhile-check here would
     duplicate Exec internals, so any such shape takes the shared path. *)
  let inlj_possible =
    match kind with
    | Sql.Ast.Inner -> is_scan left || is_scan right
    | Sql.Ast.Left_outer -> is_scan right
    | Sql.Ast.Right_outer -> is_scan left
    | Sql.Ast.Full_outer | Sql.Ast.Cross -> false
  in
  if keys = [] || residual <> [] || inlj_possible then boxed ()
  else begin
    let l = vrun catalog left and r = vrun catalog right in
    match l.data, r.data with
    | Batches lb, Batches rb ->
      let larity = Schema.arity ls and rarity = Schema.arity rs in
      let lmega = mega_batch larity lb and rmega = mega_batch rarity rb in
      let lctx = mk_ctx lmega and rctx = mk_ctx rmega in
      let lk =
        Array.of_list
          (List.map (fun k -> (vcompile catalog ls k.Exec.left_expr) lctx) keys)
      in
      let rk =
        Array.of_list
          (List.map (fun k -> (vcompile catalog rs k.Exec.right_expr) rctx) keys)
      in
      if Array.for_all encodable lk && Array.for_all encodable rk then
        columnar_hash_join ~schema ~kind ~keys lmega rmega lk rk
      else boxed ~l ~r ()
    | _ -> boxed ~l ~r ()
  end

(* Hash equi-join over two dense mega-batches with encodable typed keys and
   no residual. Mirrors the row engine exactly: build on the strictly
   smaller side, probe-major output with matches in build order, then
   left/right null-padded unmatched rows for the outer kinds. *)
and columnar_hash_join ~schema ~kind ~keys lmega rmega lk rk : vres =
  let ln = lmega.Batch.nrows and rn = rmega.Batch.nrows in
  let swap = ln < rn in
  let bk, pk, bn, pn = if swap then (lk, rk, ln, rn) else (rk, lk, rn, ln) in
  let strict =
    Array.of_list (List.map (fun k -> not k.Exec.nullsafe) keys)
  in
  let lane_ok (cols : Col.t array) i =
    let ok = ref true in
    Array.iteri
      (fun j c -> if strict.(j) && not (Col.is_valid c i) then ok := false)
      cols;
    !ok
  in
  let bmatched = Array.make bn false and pmatched = Array.make pn false in
  let all_ints cols =
    Array.for_all
      (fun (c : Col.t) ->
         match c.Col.data with Col.Ints _ -> true | _ -> false)
      cols
  in
  let pl, bl =
    if all_ints bk && all_ints pk then begin
      (* all-integer keys: open-addressing over unboxed lanes, no byte
         encoding or string hashing per probe row. The hash only needs
         internal consistency (NULL lanes hash to a sentinel so
         NULL-safe keys match; strict keys never reach the table with a
         NULL lane thanks to [lane_ok]). Match emission order is the
         same as the generic path: probe-major, build rows in build
         order within a key. *)
      let nk = Array.length bk in
      let barrs =
        Array.map
          (fun (c : Col.t) ->
             match c.Col.data with Col.Ints a -> a | _ -> assert false)
          bk
      and parrs =
        Array.map
          (fun (c : Col.t) ->
             match c.Col.data with Col.Ints a -> a | _ -> assert false)
          pk
      in
      let nullh = 0x3b9aca07 in
      let hash_of (cols : Col.t array) (arrs : int array array) i =
        let h = ref 17 in
        for j = 0 to nk - 1 do
          h :=
            (!h * 31)
            + (if Col.is_valid cols.(j) i then arrs.(j).(i) * 0x2545f491
               else nullh)
        done;
        !h land max_int
      in
      let lanes_equal b i =
        let ok = ref true in
        for j = 0 to nk - 1 do
          if !ok then begin
            let bv = Col.is_valid bk.(j) b and pv = Col.is_valid pk.(j) i in
            if bv <> pv then ok := false
            else if bv && barrs.(j).(b) <> parrs.(j).(i) then ok := false
          end
        done;
        !ok
      in
      let cap =
        let c = ref 16 in
        while !c < 2 * (bn + 1) do c := !c * 2 done;
        !c
      in
      let m = cap - 1 in
      let slots = Array.make cap (-1) in
      let cap_g = max 1 bn in
      let ghash = Array.make cap_g 0 in
      let grep = Array.make cap_g 0 in
      let gmem : int list array = Array.make cap_g [] in
      let ngroups = ref 0 in
      let beq b1 b2 =
        let ok = ref true in
        for j = 0 to nk - 1 do
          if !ok then begin
            let v1 = Col.is_valid bk.(j) b1 and v2 = Col.is_valid bk.(j) b2 in
            if v1 <> v2 then ok := false
            else if v1 && barrs.(j).(b1) <> barrs.(j).(b2) then ok := false
          end
        done;
        !ok
      in
      for b = 0 to bn - 1 do
        if lane_ok bk b then begin
          let h = hash_of bk barrs b in
          let s = ref (h land m) in
          let placed = ref false in
          while not !placed do
            let gid = slots.(!s) in
            if gid < 0 then begin
              let fresh = !ngroups in
              incr ngroups;
              ghash.(fresh) <- h;
              grep.(fresh) <- b;
              gmem.(fresh) <- [ b ];
              slots.(!s) <- fresh;
              placed := true
            end
            else if ghash.(gid) = h && beq grep.(gid) b then begin
              gmem.(gid) <- b :: gmem.(gid);
              placed := true
            end
            else s := (!s + 1) land m
          done
        end
      done;
      let garr =
        Array.init !ngroups (fun g -> Array.of_list (List.rev gmem.(g)))
      in
      let pl = Vec.create ~capacity:(max 8 pn) ~dummy:0 () in
      let bl = Vec.create ~capacity:(max 8 pn) ~dummy:0 () in
      for i = 0 to pn - 1 do
        if lane_ok pk i then begin
          let h = hash_of pk parrs i in
          let s = ref (h land m) in
          let stop = ref false in
          while not !stop do
            let gid = slots.(!s) in
            if gid < 0 then stop := true
            else if ghash.(gid) = h && lanes_equal grep.(gid) i then begin
              Array.iter
                (fun bidx ->
                   ignore (Vec.push pl i);
                   ignore (Vec.push bl bidx);
                   bmatched.(bidx) <- true;
                   pmatched.(i) <- true)
                garr.(gid);
              stop := true
            end
            else s := (!s + 1) land m
          done
        end
      done;
      ( Array.init (Vec.length pl) (Vec.get pl),
        Array.init (Vec.length bl) (Vec.get bl) )
    end
    else begin
      let buf = Buffer.create 64 in
      let encode cols i =
        Buffer.clear buf;
        Array.iter (fun c -> encode_lane buf c i) cols;
        Buffer.contents buf
      in
      let buckets : (string, int list ref) Hashtbl.t =
        Hashtbl.create (bn + 1)
      in
      for i = 0 to bn - 1 do
        if lane_ok bk i then begin
          let key = encode bk i in
          match Hashtbl.find_opt buckets key with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add buckets key (ref [ i ])
        end
      done;
      let frozen : (string, int array) Hashtbl.t =
        Hashtbl.create (Hashtbl.length buckets + 1)
      in
      Hashtbl.iter
        (fun k l -> Hashtbl.replace frozen k (Array.of_list (List.rev !l)))
        buckets;
      let pl = ref [] and bl = ref [] in
      for i = 0 to pn - 1 do
        if lane_ok pk i then
          match Hashtbl.find_opt frozen (encode pk i) with
          | Some arr ->
            Array.iter
              (fun bidx ->
                 pl := i :: !pl;
                 bl := bidx :: !bl;
                 bmatched.(bidx) <- true;
                 pmatched.(i) <- true)
              arr
          | None -> ()
      done;
      (Array.of_list (List.rev !pl), Array.of_list (List.rev !bl))
    end
  in
  let npairs = Array.length pl in
  let li, ri = if swap then (bl, pl) else (pl, bl) in
  let gather_batch (b : Batch.t) sel = Array.map (fun c -> Col.gather c sel) b.Batch.cols in
  let pairs_batch =
    { Batch.cols = Array.append (gather_batch lmega li) (gather_batch rmega ri);
      sel = None;
      nrows = npairs }
  in
  let lmatched = if swap then bmatched else pmatched in
  let rmatched = if swap then pmatched else bmatched in
  let unmatched_sel matched n =
    let count = ref 0 in
    for i = 0 to n - 1 do if not matched.(i) then incr count done;
    let sel = Array.make !count 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if not matched.(i) then begin sel.(!k) <- i; incr k end
    done;
    sel
  in
  let larity = Array.length lmega.Batch.cols in
  let rarity = Array.length rmega.Batch.cols in
  let uml () =
    let sel = unmatched_sel lmatched ln in
    let n = Array.length sel in
    if n = 0 then None
    else
      Some
        { Batch.cols =
            Array.append (gather_batch lmega sel)
              (Array.init rarity (fun j -> null_like rmega.Batch.cols.(j) n));
          sel = None;
          nrows = n }
  in
  let umr () =
    let sel = unmatched_sel rmatched rn in
    let n = Array.length sel in
    if n = 0 then None
    else
      Some
        { Batch.cols =
            Array.append
              (Array.init larity (fun j -> null_like lmega.Batch.cols.(j) n))
              (gather_batch rmega sel);
          sel = None;
          nrows = n }
  in
  let tail =
    match kind with
    | Sql.Ast.Inner | Sql.Ast.Cross -> []
    | Sql.Ast.Left_outer -> Option.to_list (uml ())
    | Sql.Ast.Right_outer -> Option.to_list (umr ())
    | Sql.Ast.Full_outer -> Option.to_list (uml ()) @ Option.to_list (umr ())
  in
  let batches = (if npairs = 0 then [] else [ pairs_batch ]) @ tail in
  { schema; data = Batches batches }

(* --- aggregation --- *)

and vaggregate catalog schema input group_exprs aggs : vres =
  let inner = vrun catalog input in
  let boxed () =
    { schema;
      data =
        Rows
          (Exec.aggregate_rows catalog schema
             ~inner:{ Exec.schema = inner.schema; rows = payload_rows inner.data }
             group_exprs aggs).Exec.rows }
  in
  match inner.data with
  | Rows _ -> boxed ()
  | Batches _ when List.exists (fun s -> s.Plan.distinct) aggs -> boxed ()
  | Batches bs ->
    let gcomp =
      Array.of_list
        (List.map (fun (e, _) -> vcompile catalog inner.schema e) group_exprs)
    in
    let acomp =
      Array.of_list
        (List.map
           (fun spec -> Option.map (vcompile catalog inner.schema) spec.Plan.arg)
           aggs)
    in
    let aggs_arr = Array.of_list aggs in
    let naggs = Array.length acomp in
    let nkeys = Array.length gcomp in
    (* pass 1: evaluate key and argument columns for every batch up front,
       so eligibility for the typed fast path below is decided over the
       whole input rather than batch by batch *)
    let evaled =
      Array.of_list
        (List.map
           (fun b ->
              let ctx = mk_ctx b in
              ( Array.map (fun ve -> ve ctx) gcomp,
                Array.map (Option.map (fun ve -> ve ctx)) acomp,
                ctx.b.Batch.nrows ))
           bs)
    in
    let nin = Array.fold_left (fun acc (_, _, n) -> acc + n) 0 evaled in
    match vaggregate_ints schema evaled ~nkeys ~naggs ~nin aggs_arr with
    | Some res -> res
    | None ->
    (* groups live in an open-addressing table probed lane-wise: no key
       string is built per input row, and [lane_hash]/[lane_equals] keep
       the semantics of the row engine's boxed keys (first-seen order,
       NULLs group together, cross-type numeric equality) *)
    (* presize by input rows (groups can't outnumber them) so the hot
       all-distinct case never rehashes mid-stream *)
    let group_keys : Row.t Vec.t =
      Vec.create ~capacity:(max 8 nin) ~dummy:[||] ()
    in
    let group_hashes : int Vec.t =
      Vec.create ~capacity:(max 8 nin) ~dummy:0 ()
    in
    let group_states : Exec.agg_state array Vec.t =
      Vec.create ~capacity:(max 8 nin) ~dummy:[||] ()
    in
    let cap =
      let target = min 262144 (max 4096 (2 * nin)) in
      let c = ref 4096 in
      while !c < target do
        c := !c * 2
      done;
      ref !c
    in
    let slots = ref (Array.make !cap (-1)) in
    let rehash () =
      cap := !cap * 2;
      slots := Array.make !cap (-1);
      let m = !cap - 1 in
      let table = !slots in
      for g = 0 to Vec.length group_keys - 1 do
        let s = ref (Vec.get group_hashes g land m) in
        while table.(!s) >= 0 do
          s := (!s + 1) land m
        done;
        table.(!s) <- g
      done
    in
    let add_group h key_row =
      let g = Vec.length group_keys in
      ignore (Vec.push group_keys key_row);
      ignore (Vec.push group_hashes h);
      ignore
        (Vec.push group_states
           (Array.map (fun spec -> Exec.make_state spec.Plan.agg) aggs_arr));
      g
    in
    let row_matches (krow : Row.t) (kcols : Col.t array) i =
      let ok = ref true in
      for j = 0 to nkeys - 1 do
        if !ok && not (lane_equals kcols.(j) i krow.(j)) then ok := false
      done;
      !ok
    in
    let find_or_add (kcols : Col.t array) i =
      let h = ref 17 in
      for j = 0 to nkeys - 1 do
        h := (!h * 31) + lane_hash kcols.(j) i
      done;
      let h = !h land max_int in
      let m = !cap - 1 in
      let table = !slots in
      let s = ref (h land m) in
      let res = ref (-1) in
      while !res < 0 do
        let g = table.(!s) in
        if g < 0 then begin
          let krow = Array.init nkeys (fun j -> Col.value kcols.(j) i) in
          let g = add_group h krow in
          table.(!s) <- g;
          if (g + 1) * 2 > !cap then rehash ();
          res := g
        end
        else if
          Vec.get group_hashes g = h
          && row_matches (Vec.get group_keys g) kcols i
        then res := g
        else s := (!s + 1) land m
      done;
      !res
    in
    Array.iter
      (fun ((kcols : Col.t array), (acols : Col.t option array), n) ->
         for i = 0 to n - 1 do
           let g = find_or_add kcols i in
           let states = Vec.get group_states g in
           for k = 0 to naggs - 1 do
             let st = states.(k) in
             match acols.(k) with
             | None -> Exec.update_state st None
             | Some c ->
               (match c.Col.data with
                | Col.Ints a ->
                  if Col.is_valid c i then upd_int st a.(i)
                  else Exec.update_state st (Some Value.Null)
                | Col.Floats a ->
                  if Col.is_valid c i then upd_float st a.(i)
                  else Exec.update_state st (Some Value.Null)
                | _ -> Exec.update_state st (Some (Col.value c i)))
           done
         done)
      evaled;
    (* global aggregate over empty input still yields one row *)
    if group_exprs = [] && Vec.length group_keys = 0 then
      ignore (add_group 17 [||]);
    (* columnar output: key columns re-typed from the stored group rows,
       aggregate columns from the finalized states — downstream HAVING /
       projection stay vectorized *)
    let ngroups = Vec.length group_keys in
    let krows = Array.init ngroups (Vec.get group_keys) in
    let key_cols = Array.init nkeys (Batch.column_of_rows krows) in
    let agg_cols =
      Array.init naggs (fun k ->
          Col.of_values
            (Array.init ngroups (fun g ->
                 Exec.finalize_state (Vec.get group_states g).(k))))
    in
    { schema;
      data =
        Batches
          [ { Batch.cols = Array.append key_cols agg_cols;
              sel = None;
              nrows = ngroups } ] }

(* --- public API --- *)

let run (catalog : Catalog.t) (plan : Plan.t) : Exec.result =
  to_result (vrun catalog plan)

let run_with (engine : Exec.engine) (catalog : Catalog.t) (plan : Plan.t) :
  Exec.result =
  match engine with
  | Exec.Row -> Exec.run catalog plan
  | Exec.Vector -> run catalog plan

let run_payload (engine : Exec.engine) (catalog : Catalog.t) (plan : Plan.t) :
  vres =
  match engine with
  | Exec.Row ->
    let r = Exec.run catalog plan in
    { schema = r.Exec.schema; data = Rows r.Exec.rows }
  | Exec.Vector -> vrun catalog plan
