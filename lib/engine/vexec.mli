(** Vectorized (columnar, batch-at-a-time) plan execution — the default
    engine. Produces exactly the rows [Exec.run] would, in the same order;
    the row interpreter stays on as the differential oracle (see
    [Exec.engine]). Operators that would not profit from vectorization run
    the row engine's own code over materialized inputs, so the two engines
    cannot drift on those paths. *)

val run : Catalog.t -> Plan.t -> Exec.result
(** Execute a plan with the vectorized engine. *)

val run_with : Exec.engine -> Catalog.t -> Plan.t -> Exec.result
(** Dispatch to [Exec.run] (Row) or {!run} (Vector). *)

type payload =
  | Batches of Vec.Batch.t list
  | Rows of Row.t list

type vres = {
  schema : Schema.t;
  data : payload;
}

val run_payload : Exec.engine -> Catalog.t -> Plan.t -> vres
(** Like {!run_with}, but hands back the columnar batches when the
    vectorized engine produced some, instead of boxing them into rows.
    [INSERT ... SELECT] uses this to type-check whole columns against the
    target schema and box each value exactly once. *)
