(** The fuzz loop: generate case [i] from [base_seed + i], run the
    differential oracle over the strategy × dialect matrix, shrink every
    failure to a minimal reproducer, and (optionally) write it into a
    corpus directory. Used by the [openivm fuzz] CLI and the [@fuzz]
    smoke alias alike. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect

type config = {
  base_seed : int;
  cases : int;
  max_steps : int;
  queries : int;
  strategies : Flags.combine_strategy list;  (** [] = every strategy *)
  dialects : Dialect.t list;                 (** [] = duckdb and postgres *)
  engines : Openivm_engine.Exec.engine list; (** [] = vector and row *)
  domains : int list;                        (** [] = sequential only *)
  corpus_dir : string option;  (** where to save shrunk reproducers *)
  shrink : bool;
  crash_seed : int option;
      (** arm the {!Durable} crash-replay axis: cases that pass the
          differential oracle are re-run through the durable store under
          storage faults seeded from [crash_seed + case seed] *)
  log : string -> unit;
}

let default =
  { base_seed = 42; cases = 100; max_steps = 30; queries = 4;
    strategies = []; dialects = []; engines = []; domains = [];
    corpus_dir = None; shrink = true; crash_seed = None; log = ignore }

type case_failure = {
  failure : Oracle.failure;
  minimized : Case.t;
  shrink_stats : Shrink.stats option;
  saved_to : string option;
}

type report = {
  cases_run : int;
  checks_run : int;
  failures : case_failure list;
  elapsed_seconds : float;
  shrink_seconds : float;
}

let throughput (r : report) : string =
  let rate =
    if r.elapsed_seconds > 0.0 then
      Printf.sprintf "%.1f cases/s" (float_of_int r.cases_run /. r.elapsed_seconds)
    else "n/a"
  in
  if r.shrink_seconds > 0.0 then
    Printf.sprintf "%s, %.2fs shrinking" rate r.shrink_seconds
  else rate

let summary (r : report) : string =
  if r.failures = [] then
    Printf.sprintf "fuzz: %d cases, %d checks, all green (%s)" r.cases_run
      r.checks_run (throughput r)
  else
    Printf.sprintf "fuzz: %d cases, %d checks (%s), %d FAILURE(S)\n%s"
      r.cases_run r.checks_run (throughput r)
      (List.length r.failures)
      (String.concat "\n"
         (List.map
            (fun f ->
               f.failure.Oracle.message
               ^
               match f.saved_to with
               | Some path -> Printf.sprintf "\n  saved reproducer: %s" path
               | None -> "")
            r.failures))

module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics
module Clock = Openivm_obs.Clock

let m_cases = Metrics.counter "fuzz_cases_total" ~help:"fuzz cases checked"
let m_checks = Metrics.counter "fuzz_checks_total" ~help:"oracle checks run"
let m_failures = Metrics.counter "fuzz_failures_total" ~help:"failing cases"

let m_case_seconds =
  Metrics.histogram "fuzz_case_seconds" ~help:"oracle wall-clock per case"

let m_shrink_seconds =
  Metrics.histogram "fuzz_shrink_seconds" ~help:"shrink wall-clock per failure"

let m_shrink_attempts =
  Metrics.counter "fuzz_shrink_attempts_total"
    ~help:"oracle evaluations spent shrinking"

let run (cfg : config) : report =
  let checks = ref 0 in
  let failures = ref [] in
  let t_start = Clock.now () in
  let shrink_time = ref 0.0 in
  let campaign_span = Span.enter "fuzz.campaign" in
  for i = 0 to cfg.cases - 1 do
    let seed = cfg.base_seed + i in
    let case =
      { (Gen.case ~max_steps:cfg.max_steps ~queries:cfg.queries ~seed ()) with
        Case.strategies = cfg.strategies;
        dialects = cfg.dialects;
        engines = cfg.engines;
        domains = cfg.domains }
    in
    let t_case = Clock.now () in
    let outcome =
      Span.with_span "fuzz.case" ~attrs:[ ("seed", Span.Int seed) ]
        (fun _ -> Oracle.run case)
    in
    Metrics.observe m_case_seconds (Clock.now () -. t_case);
    Metrics.incr m_cases;
    Metrics.add m_checks outcome.Oracle.checks;
    checks := !checks + outcome.Oracle.checks;
    (* the crash-replay axis only makes sense on a case the plain oracle
       accepts: a divergence under faults then implicates recovery *)
    let durability_failure =
      match outcome.Oracle.failure, cfg.crash_seed with
      | None, Some crash_seed ->
        let n, f =
          Span.with_span "fuzz.durable" ~attrs:[ ("seed", Span.Int seed) ]
            (fun _ -> Durable.check ~crash_seed case)
        in
        Metrics.add m_checks n;
        checks := !checks + n;
        f
      | _ -> None
    in
    (match outcome.Oracle.failure, durability_failure with
     | None, None ->
       if (i + 1) mod 50 = 0 then
         cfg.log (Printf.sprintf "fuzz: %d/%d cases green" (i + 1) cfg.cases)
     | None, Some failure ->
       (* a crash-replay divergence: the reproducer command already
          replays the fault schedule, and the shrinker's oracle knows
          nothing about crashes — keep the case as-is *)
       Metrics.incr m_failures;
       cfg.log (Printf.sprintf "fuzz: case seed=%d FAILED\n%s" seed
                  failure.Oracle.message);
       failures :=
         { failure; minimized = case; shrink_stats = None; saved_to = None }
         :: !failures
     | Some failure, _ ->
       Metrics.incr m_failures;
       cfg.log (Printf.sprintf "fuzz: case seed=%d FAILED\n%s" seed
                  failure.Oracle.message);
       let minimized, shrink_stats =
         if cfg.shrink then begin
           let t_shrink = Clock.now () in
           let m, st =
             Span.with_span "fuzz.shrink" ~attrs:[ ("seed", Span.Int seed) ]
               (fun _ -> Shrink.minimize ~oracle:Oracle.first_failure case)
           in
           let dt = Clock.now () -. t_shrink in
           shrink_time := !shrink_time +. dt;
           Metrics.observe m_shrink_seconds dt;
           Metrics.add m_shrink_attempts st.Shrink.attempts;
           cfg.log
             (Printf.sprintf
                "fuzz: shrunk to %d setup + %d workload statement(s) (%d \
                 oracle calls, %d reductions, %.2fs)"
                (List.length m.Case.setup)
                (List.length m.Case.workload)
                st.Shrink.attempts st.Shrink.kept dt);
           (m, Some st)
         end
         else (case, None)
       in
       let saved_to =
         Option.map
           (fun dir ->
              let path = Corpus.save ~dir minimized in
              cfg.log (Printf.sprintf "fuzz: reproducer saved to %s" path);
              path)
           cfg.corpus_dir
       in
       cfg.log ("fuzz: minimal reproducer:\n" ^ Case.to_string minimized);
       failures :=
         { failure; minimized; shrink_stats; saved_to } :: !failures)
  done;
  Span.finish campaign_span;
  { cases_run = cfg.cases; checks_run = !checks;
    failures = List.rev !failures;
    elapsed_seconds = Clock.now () -. t_start;
    shrink_seconds = !shrink_time }
