(** The fuzz loop: generate case [i] from [base_seed + i], run the
    differential oracle over the strategy × dialect matrix, shrink every
    failure to a minimal reproducer, and (optionally) write it into a
    corpus directory. Used by the [openivm fuzz] CLI and the [@fuzz]
    smoke alias alike. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect

type config = {
  base_seed : int;
  cases : int;
  max_steps : int;
  queries : int;
  strategies : Flags.combine_strategy list;  (** [] = every strategy *)
  dialects : Dialect.t list;                 (** [] = duckdb and postgres *)
  corpus_dir : string option;  (** where to save shrunk reproducers *)
  shrink : bool;
  log : string -> unit;
}

let default =
  { base_seed = 42; cases = 100; max_steps = 30; queries = 4;
    strategies = []; dialects = []; corpus_dir = None; shrink = true;
    log = ignore }

type case_failure = {
  failure : Oracle.failure;
  minimized : Case.t;
  shrink_stats : Shrink.stats option;
  saved_to : string option;
}

type report = {
  cases_run : int;
  checks_run : int;
  failures : case_failure list;
}

let summary (r : report) : string =
  if r.failures = [] then
    Printf.sprintf "fuzz: %d cases, %d checks, all green" r.cases_run
      r.checks_run
  else
    Printf.sprintf "fuzz: %d cases, %d checks, %d FAILURE(S)\n%s" r.cases_run
      r.checks_run
      (List.length r.failures)
      (String.concat "\n"
         (List.map
            (fun f ->
               f.failure.Oracle.message
               ^
               match f.saved_to with
               | Some path -> Printf.sprintf "\n  saved reproducer: %s" path
               | None -> "")
            r.failures))

let run (cfg : config) : report =
  let checks = ref 0 in
  let failures = ref [] in
  for i = 0 to cfg.cases - 1 do
    let seed = cfg.base_seed + i in
    let case =
      { (Gen.case ~max_steps:cfg.max_steps ~queries:cfg.queries ~seed ()) with
        Case.strategies = cfg.strategies;
        dialects = cfg.dialects }
    in
    let outcome = Oracle.run case in
    checks := !checks + outcome.Oracle.checks;
    (match outcome.Oracle.failure with
     | None ->
       if (i + 1) mod 50 = 0 then
         cfg.log (Printf.sprintf "fuzz: %d/%d cases green" (i + 1) cfg.cases)
     | Some failure ->
       cfg.log (Printf.sprintf "fuzz: case seed=%d FAILED\n%s" seed
                  failure.Oracle.message);
       let minimized, shrink_stats =
         if cfg.shrink then begin
           let m, st = Shrink.minimize ~oracle:Oracle.first_failure case in
           cfg.log
             (Printf.sprintf
                "fuzz: shrunk to %d setup + %d workload statement(s) (%d \
                 oracle calls, %d reductions)"
                (List.length m.Case.setup)
                (List.length m.Case.workload)
                st.Shrink.attempts st.Shrink.kept);
           (m, Some st)
         end
         else (case, None)
       in
       let saved_to =
         Option.map
           (fun dir ->
              let path = Corpus.save ~dir minimized in
              cfg.log (Printf.sprintf "fuzz: reproducer saved to %s" path);
              path)
           cfg.corpus_dir
       in
       cfg.log ("fuzz: minimal reproducer:\n" ^ Case.to_string minimized);
       failures :=
         { failure; minimized; shrink_stats; saved_to } :: !failures)
  done;
  { cases_run = cfg.cases; checks_run = !checks;
    failures = List.rev !failures }
