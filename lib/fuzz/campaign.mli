(** The fuzz loop: generate, check, shrink, save. Case [i] is generated
    from seed [base_seed + i], so any failure is re-creatable with
    [openivm fuzz --seed (base_seed + i) --cases 1]. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect

type config = {
  base_seed : int;
  cases : int;
  max_steps : int;
  queries : int;
  strategies : Flags.combine_strategy list;  (** [] = every strategy *)
  dialects : Dialect.t list;                 (** [] = duckdb and postgres *)
  engines : Openivm_engine.Exec.engine list; (** [] = vector and row *)
  domains : int list;
      (** refresh-parallelism axis: each width multiplies the matrix, and
          every generated case must hold at all of them ([] = [1],
          strictly sequential) *)
  corpus_dir : string option;  (** where to save shrunk reproducers *)
  shrink : bool;
  crash_seed : int option;
      (** arm the {!Durable} crash-replay axis: cases that pass the
          differential oracle are re-run through the durable store under
          storage faults seeded from [crash_seed + case seed] *)
  log : string -> unit;
}

val default : config
(** seed 42, 100 cases, 30 steps, 4 queries, full matrix, no corpus, no
    crash axis. *)

type case_failure = {
  failure : Oracle.failure;
  minimized : Case.t;           (** = the original case when shrink is off *)
  shrink_stats : Shrink.stats option;
  saved_to : string option;     (** corpus file written, if any *)
}

type report = {
  cases_run : int;
  checks_run : int;
  failures : case_failure list;
  elapsed_seconds : float;  (** whole campaign, shrinking included *)
  shrink_seconds : float;   (** spent minimizing failures *)
}

val run : config -> report

val summary : report -> string
(** One-paragraph human summary with throughput (cases/sec, shrink time);
    includes every failure message (each of which embeds its reproducer
    command). *)
