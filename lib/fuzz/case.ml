(** A fuzz case: one self-contained (schema, setup, view, workload,
    queries) scenario plus the strategy/dialect matrix it must hold under.

    Cases serialize to a line-oriented SQL text format — header comments
    followed by one statement per line under section markers — so that
    every failing input can be checked into [test/corpus/] as a regression
    case and replayed verbatim, with no code needed to reconstruct it. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect
module Exec = Openivm_engine.Exec

type t = {
  seed : int;          (** generator seed, for provenance and replay *)
  max_steps : int;     (** workload length the generator was asked for *)
  note : string;       (** free-text provenance ("" = none) *)
  schema : string list;    (** CREATE TABLE statements *)
  setup : string list;     (** DML executed before the views are installed *)
  views : string list;     (** CREATE MATERIALIZED VIEW statements, installed
                               in order — later views may read earlier ones
                               (a cascade stack) *)
  workload : string list;  (** DML steps; refresh + check after each *)
  queries : string list;   (** SELECTs for the optimizer/roundtrip oracle *)
  strategies : Flags.combine_strategy list;  (** [] = every strategy *)
  dialects : Dialect.t list;                 (** [] = duckdb and postgres *)
  engines : Exec.engine list;                (** [] = vector and row *)
  domains : int list;                        (** [] = sequential only *)
}

let all_dialects = [ Dialect.duckdb; Dialect.postgres ]
let all_engines = [ Exec.Vector; Exec.Row ]

let strategies c =
  if c.strategies = [] then Flags.all_strategies else c.strategies

let dialects c = if c.dialects = [] then all_dialects else c.dialects
let engines c = if c.engines = [] then all_engines else c.engines
let domains c = if c.domains = [] then [ 1 ] else c.domains

let empty =
  { seed = 0; max_steps = 0; note = ""; schema = []; setup = []; views = [];
    workload = []; queries = []; strategies = []; dialects = []; engines = [];
    domains = [] }

(** The exact CLI invocation that regenerates and re-checks this case —
    every oracle failure message embeds it so failures are one-paste
    reproducible. *)
let command ?strategy ?dialect ?engine ?domains ?crash_seed c =
  Printf.sprintf "openivm fuzz --seed %d --cases 1 --max-steps %d%s%s%s%s%s"
    c.seed c.max_steps
    (match strategy with
     | Some s -> " --strategy " ^ Flags.strategy_to_string s
     | None -> "")
    (match dialect with
     | Some d -> " --dialect " ^ d.Dialect.name
     | None -> "")
    (match engine with
     | Some e -> " --exec " ^ Exec.engine_to_string e
     | None -> "")
    (match domains with
     | Some n when n > 1 -> Printf.sprintf " --domains %d" n
     | _ -> "")
    (match crash_seed with
     | Some n -> Printf.sprintf " --crash-seed %d" n
     | None -> "")

(* --- serialization --- *)

let format_tag = "-- openivm-fuzz reproducer v1"

let strategies_to_string = function
  | [] -> "all"
  | l -> String.concat "," (List.map Flags.strategy_to_string l)

let dialects_to_string = function
  | [] -> "all"
  | l -> String.concat "," (List.map (fun d -> d.Dialect.name) l)

let engines_to_string = function
  | [] -> "all"
  | l -> String.concat "," (List.map Exec.engine_to_string l)

let to_string c =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
         Buffer.add_string b s;
         Buffer.add_char b '\n')
      fmt
  in
  line "%s" format_tag;
  line "-- seed: %d" c.seed;
  line "-- max-steps: %d" c.max_steps;
  line "-- strategies: %s" (strategies_to_string c.strategies);
  line "-- dialects: %s" (dialects_to_string c.dialects);
  line "-- engines: %s" (engines_to_string c.engines);
  if c.domains <> [] then
    line "-- domains: %s"
      (String.concat "," (List.map string_of_int c.domains));
  if c.note <> "" then line "-- note: %s" c.note;
  let section name stmts =
    if stmts <> [] then begin
      line "-- %s:" name;
      List.iter (fun s -> line "%s" s) stmts
    end
  in
  section "schema" c.schema;
  section "setup" c.setup;
  section "view" c.views;
  section "workload" c.workload;
  section "queries" c.queries;
  Buffer.contents b

type section = No_section | Schema | Setup | View | Workload | Queries

let strip s = String.trim s

let parse_strategies s : (Flags.combine_strategy list, string) result =
  if strip s = "all" then Ok []
  else
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        (match Flags.strategy_of_string (strip n) with
         | Some st -> go (st :: acc) rest
         | None -> Error (Printf.sprintf "unknown strategy %S" (strip n)))
    in
    go [] names

let parse_dialects s : (Dialect.t list, string) result =
  if strip s = "all" then Ok []
  else
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        (match Dialect.of_string (strip n) with
         | Some d -> go (d :: acc) rest
         | None -> Error (Printf.sprintf "unknown dialect %S" (strip n)))
    in
    go [] names

let parse_engines s : (Exec.engine list, string) result =
  if strip s = "all" then Ok []
  else
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        (match Exec.engine_of_string (strip n) with
         | Some e -> go (e :: acc) rest
         | None -> Error (Printf.sprintf "unknown engine %S" (strip n)))
    in
    go [] names

let parse_domains s : (int list, string) result =
  let names = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
      (match int_of_string_opt (strip n) with
       | Some d when d >= 1 -> go (d :: acc) rest
       | _ -> Error (Printf.sprintf "bad domain count %S" (strip n)))
  in
  go [] names

let header_value line key =
  let prefix = "-- " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (strip
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let of_string text : (t, string) result =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let case = ref empty in
  let section = ref No_section in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let add stmt =
    let c = !case in
    match !section with
    | No_section -> fail (Printf.sprintf "statement outside a section: %s" stmt)
    | Schema -> case := { c with schema = c.schema @ [ stmt ] }
    | Setup -> case := { c with setup = c.setup @ [ stmt ] }
    | View -> case := { c with views = c.views @ [ stmt ] }
    | Workload -> case := { c with workload = c.workload @ [ stmt ] }
    | Queries -> case := { c with queries = c.queries @ [ stmt ] }
  in
  List.iter
    (fun raw ->
       let line = strip raw in
       if line = "" then ()
       else if String.length line >= 2 && String.sub line 0 2 = "--" then begin
         match line with
         | "-- schema:" -> section := Schema
         | "-- setup:" -> section := Setup
         | "-- view:" -> section := View
         | "-- workload:" -> section := Workload
         | "-- queries:" -> section := Queries
         | _ ->
           (match header_value line "seed" with
            | Some v ->
              (match int_of_string_opt v with
               | Some n -> case := { !case with seed = n }
               | None -> fail (Printf.sprintf "bad seed %S" v))
            | None ->
              (match header_value line "max-steps" with
               | Some v ->
                 (match int_of_string_opt v with
                  | Some n -> case := { !case with max_steps = n }
                  | None -> fail (Printf.sprintf "bad max-steps %S" v))
               | None ->
                 (match header_value line "strategies" with
                  | Some v ->
                    (match parse_strategies v with
                     | Ok l -> case := { !case with strategies = l }
                     | Error e -> fail e)
                  | None ->
                    (match header_value line "dialects" with
                     | Some v ->
                       (match parse_dialects v with
                        | Ok l -> case := { !case with dialects = l }
                        | Error e -> fail e)
                     | None ->
                       (match header_value line "engines" with
                        | Some v ->
                          (match parse_engines v with
                           | Ok l -> case := { !case with engines = l }
                           | Error e -> fail e)
                        | None ->
                          (match header_value line "domains" with
                           | Some v ->
                             (match parse_domains v with
                              | Ok l -> case := { !case with domains = l }
                              | Error e -> fail e)
                           | None ->
                             (match header_value line "note" with
                              | Some v -> case := { !case with note = v }
                              | None -> ()  (* other comments ignored *))))))))
       end
       else add line)
    lines;
  let* () = match !error with Some e -> Error e | None -> Ok () in
  let c = !case in
  if c.schema = [] then Error "case has no schema section"
  else if c.views = [] && c.queries = [] then
    Error "case has neither a view nor queries — nothing to check"
  else Ok c
