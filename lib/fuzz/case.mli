(** A fuzz case: one self-contained (schema, setup, view, workload,
    queries) scenario plus the strategy/dialect matrix it must hold under.
    Serializes to a line-oriented SQL text format for the replay corpus. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect
module Exec = Openivm_engine.Exec

type t = {
  seed : int;          (** generator seed, for provenance and replay *)
  max_steps : int;     (** workload length the generator was asked for *)
  note : string;       (** free-text provenance ("" = none) *)
  schema : string list;    (** CREATE TABLE statements *)
  setup : string list;     (** DML executed before the views are installed *)
  views : string list;     (** CREATE MATERIALIZED VIEW statements, installed
                               in order — later views may read earlier ones
                               (a cascade stack) *)
  workload : string list;  (** DML steps; refresh + check after each *)
  queries : string list;   (** SELECTs for the optimizer/roundtrip oracle *)
  strategies : Flags.combine_strategy list;  (** [] = every strategy *)
  dialects : Dialect.t list;                 (** [] = duckdb and postgres *)
  engines : Exec.engine list;                (** [] = vector and row *)
  domains : int list;                        (** [] = sequential only *)
}

val all_dialects : Dialect.t list
(** The dialect matrix an unrestricted case is checked under. *)

val all_engines : Exec.engine list
(** The executor matrix an unrestricted case is checked under: the
    vectorized engine first, then the row oracle. *)

val strategies : t -> Flags.combine_strategy list
(** The effective strategy list ([Flags.all_strategies] when unset). *)

val dialects : t -> Dialect.t list
(** The effective dialect list ([all_dialects] when unset). *)

val engines : t -> Exec.engine list
(** The effective executor list ([all_engines] when unset). *)

val domains : t -> int list
(** The effective refresh-parallelism axis ([[1]] — strictly sequential —
    when unset). Each domain count is one more matrix dimension: the
    maintained view must equal full recompute at every width, so parallel
    propagation is differentially checked against the sequential path. *)

val empty : t

val command :
  ?strategy:Flags.combine_strategy -> ?dialect:Dialect.t ->
  ?engine:Exec.engine -> ?domains:int -> ?crash_seed:int -> t -> string
(** The exact [openivm fuzz] CLI invocation that regenerates and re-checks
    this case — embedded in every failure message. [crash_seed] replays
    the {!Durable} crash-injection axis too. *)

val to_string : t -> string
(** Render in the corpus file format (headers + one statement per line). *)

val of_string : string -> (t, string) result
(** Parse the corpus file format back. *)
