(** The replay corpus: a directory of [*.sql] reproducer files in the
    {!Case} text format. Every fuzz failure that was ever shrunk gets
    checked in here as a regression case; [replay] runs each file back
    through the differential oracle. *)

let is_case_file name = Filename.check_suffix name ".sql"

let files ~dir : string list =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter is_case_file
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let load_file path : (Case.t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)
  | text ->
    (match Case.of_string text with
     | Ok case -> Ok case
     | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(** Write the case as [dir/name.sql] (default name [case-<seed>]),
    creating [dir] if needed. Returns the path written. *)
let save ~dir ?name (case : Case.t) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "case-%d" case.Case.seed
  in
  let path = Filename.concat dir (name ^ ".sql") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Case.to_string case));
  path

type replay_result = {
  file : string;
  error : string option;   (** parse error or oracle failure message *)
}

(** Run every corpus file through the oracle. A file that fails to parse
    counts as a failure — a broken reproducer must not pass silently. *)
let replay ?(log = fun _ -> ()) ~dir () : replay_result list =
  List.map
    (fun file ->
       match load_file file with
       | Error msg -> { file; error = Some msg }
       | Ok case ->
         (match (Oracle.run case).Oracle.failure with
          | None ->
            log (Printf.sprintf "corpus ok   %s" file);
            { file; error = None }
          | Some f ->
            log (Printf.sprintf "corpus FAIL %s\n%s" file f.Oracle.message);
            { file;
              error =
                Some
                  (Printf.sprintf "%s\n  replay: openivm fuzz --replay %s"
                     f.Oracle.message file) }))
    (files ~dir)
