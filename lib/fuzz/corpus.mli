(** The replay corpus: a directory of [*.sql] reproducer files in the
    {!Case} text format, replayed as regression cases. *)

val files : dir:string -> string list
(** Sorted [*.sql] paths under [dir]; [] when the directory is missing. *)

val load_file : string -> (Case.t, string) result

val save : dir:string -> ?name:string -> Case.t -> string
(** Write the case as [dir/name.sql] (default [case-<seed>]), creating
    [dir] if needed. Returns the path written. *)

type replay_result = {
  file : string;
  error : string option;   (** parse error or oracle failure message *)
}

val replay :
  ?log:(string -> unit) -> dir:string -> unit -> replay_result list
(** Run every corpus file through the differential oracle. Unparseable
    files count as failures. *)
