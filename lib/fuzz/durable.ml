(** Crash-replay durability oracle: the store run — killed and reopened
    at seeded crash points — must converge to the same view contents as
    an in-memory extension that executed the whole case untouched. The
    supervisor mirrors a real client: retry the interrupted statement
    after reconnecting, skipping installs that recovery already
    finished. *)

open Openivm_engine
module Flags = Openivm.Flags
module Runner = Openivm.Runner
module Fault = Openivm_htap.Fault
module Store = Openivm_store.Store

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "openivm_fuzz_crash" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* the generator names its views [v] and [v2]; fall back gracefully *)
let view_name_of sql =
  match String.split_on_char ' ' sql with
  | "CREATE" :: "MATERIALIZED" :: "VIEW" :: name :: _ -> name
  | _ -> "v"

type step =
  | Sql of string
  | Install of string * string
  | Checkpoint

(* One checkpoint right after the installs and one mid-workload, so the
   fault schedule can hit the checkpoint/truncate window and replay has
   both a checkpoint base and a live tail. *)
let steps_of (case : Case.t) : step list =
  let workload = List.map (fun s -> Sql s) case.Case.workload in
  let half = List.length workload / 2 in
  List.map (fun s -> Sql s) (case.Case.schema @ case.Case.setup)
  @ List.map (fun v -> Install (view_name_of v, v)) case.Case.views
  @ [ Checkpoint ]
  @ List.filteri (fun i _ -> i < half) workload
  @ [ Checkpoint ]
  @ List.filteri (fun i _ -> i >= half) workload

let spec =
  Fault.storage_chaos ~torn_tail:0.02 ~truncated_record:0.02
    ~corrupt_record:0.02 ~chunk_crash:0.08 ~truncate_crash:0.25 ()

(* Drive the steps, treating every [Injected_crash] as a process death:
   reopen (recovery itself may be killed — recover again) and retry the
   interrupted statement. A crashed append never leaves a valid record,
   so the retry applies exactly once; an install whose record survived
   is completed by recovery and must not be retried. *)
let drive ~flags ~faults ~dir steps : Store.t =
  let chunk_rows = 3 in
  let open_store () = Store.open_ ~flags ~faults ~chunk_rows ~dir () in
  let store = ref (open_store ()) in
  let rec reopen () =
    match open_store () with
    | s -> store := s
    | exception Fault.Injected_crash -> reopen ()
  in
  let rec attempt step =
    match step with
    | Sql sql -> (
        try ignore (Store.exec !store sql)
        with Fault.Injected_crash ->
          reopen ();
          attempt step)
    | Install (name, sql) ->
      if Store.find_view !store name = None then (
        try ignore (Store.exec !store sql)
        with Fault.Injected_crash ->
          reopen ();
          attempt step)
    | Checkpoint -> (
        try ignore (Store.checkpoint !store)
        with Fault.Injected_crash -> reopen ())
  in
  List.iter attempt steps;
  !store

let check_strategy ~crash_seed (case : Case.t) strategy :
  int * string option =
  let flags = { Flags.default with Flags.strategy } in
  let steps = steps_of case in
  (* the no-crash reference: same statements, plain in-memory run *)
  let odb = Database.create ~name:"fuzz_oracle" () in
  let oext = Runner.load ~flags odb in
  List.iter
    (function
      | Sql sql | Install (_, sql) -> ignore (Runner.exec_ext oext sql)
      | Checkpoint -> ())
    steps;
  with_temp_dir (fun dir ->
      let faults = Fault.create ~seed:(crash_seed + case.Case.seed) spec in
      let store = drive ~flags ~faults ~dir steps in
      let checks = ref 0 in
      let mismatch =
        List.find_map
          (fun v ->
             let name = view_name_of v in
             incr checks;
             let oracle =
               match Runner.find_view oext name with
               | Some ov -> Runner.visible_rows ov
               | None -> []
             in
             let recovered =
               match Store.find_view store name with
               | Some sv -> Runner.visible_rows sv
               | None -> [ "<view lost>" ]
             in
             if recovered = oracle then None
             else
               Some
                 (Printf.sprintf
                    "view %s diverged after %d injected crash(es): recovered \
                     %s, no-crash run %s"
                    name
                    (Fault.total_injected faults)
                    (String.concat " | " recovered)
                    (String.concat " | " oracle)))
          case.Case.views
      in
      let result =
        match mismatch with
        | Some _ -> mismatch
        | None ->
          incr checks;
          if Store.verify store then None
          else Some "recovered store fails the recompute invariant"
      in
      Store.close store;
      (!checks, result))

let check ~crash_seed (case : Case.t) : int * Oracle.failure option =
  let checks = ref 0 in
  let failure =
    List.find_map
      (fun strategy ->
         let n, err = check_strategy ~crash_seed case strategy in
         checks := !checks + n;
         Option.map
           (fun msg ->
              { Oracle.case;
                strategy = Some strategy;
                dialect = None;
                engine = None;
                domains = None;
                point = Oracle.Durability;
                message =
                  Printf.sprintf "[%s] %s: %s\n  reproduce: %s"
                    (Flags.strategy_to_string strategy)
                    (Oracle.point_to_string Oracle.Durability)
                    msg
                    (Case.command ~strategy ~crash_seed case) })
           err)
      (Case.strategies case)
  in
  (!checks, failure)
