(** The crash-replay fuzz axis: run a case's statements through the
    durable store while seeded storage faults kill the process at WAL
    appends, backfill chunk boundaries and checkpoints, reopening the
    directory after every death — then require the recovered views to
    match a run that never crashed. The fault schedule derives from
    [crash_seed + case.seed], so the reproducer command replays the
    exact crash points. *)

val check : crash_seed:int -> Case.t -> int * Oracle.failure option
(** Returns (assertions run, first violation if any). Checks every
    strategy in the case's effective strategy list under the default
    dialect. *)
