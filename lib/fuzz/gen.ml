(** Seeded generators for schemas, IVM view definitions, DML workloads and
    plain SELECT queries. Everything is a pure function of the seed: the
    same seed always yields the same {!Case.t}, which is what makes
    [openivm fuzz --seed N --cases 1] an exact reproducer.

    The grammar deliberately covers the delicate corners of Z-set
    propagation: NULLs in group keys and aggregate inputs, duplicate rows
    (multiplicity > 1), deletes that empty a whole group, updates that
    flip values to NULL, dimension churn under joins, and every aggregate
    class the compiler accepts (SUM / COUNT / COUNT(col) / MIN / MAX /
    AVG, grouped, global and flat). Views stay inside the classes
    {!Openivm.Shape.analyze} supports by construction. *)

module R = Random.State

(* List.init's evaluation order is unspecified; generation must consume
   the RNG left to right, so build lists explicitly in order. *)
let init_ordered n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let pick rng xs = List.nth xs (R.int rng (List.length xs))

(** True with probability [num]/[den]. *)
let chance rng num den = R.int rng den < num

(* --- schema --- *)

type int_key = { ik_name : string; ik_domain : int }

type dim = {
  dim_name : string;
  dim_key : int_key;   (** the fact column it joins on *)
  dim_labels : int;    (** label domain size *)
}

type schema_spec = {
  str_key : string option;   (** VARCHAR key over a small letter domain *)
  int_keys : int_key list;   (** one or two, small integer domains *)
  vals : string list;        (** one to three INTEGER value columns *)
  dims : dim list;           (** zero to two dimension tables *)
}

let gen_schema rng : schema_spec =
  let str_key = if chance rng 3 4 then Some "k1" else None in
  let n_int = 1 + R.int rng 2 in
  let int_keys =
    init_ordered n_int (fun i ->
        { ik_name = Printf.sprintf "k%d" (i + 2); ik_domain = 3 + R.int rng 3 })
  in
  let dims =
    List.concat
      (List.map
         (fun k ->
            if chance rng 1 2 then
              [ { dim_name = "dim_" ^ k.ik_name; dim_key = k;
                  dim_labels = 2 + R.int rng 2 } ]
            else [])
         int_keys)
  in
  let vals =
    init_ordered (1 + R.int rng 3) (fun i -> Printf.sprintf "v%d" (i + 1))
  in
  { str_key; int_keys; vals; dims }

let schema_sql (s : schema_spec) : string list =
  let fact_cols =
    (match s.str_key with Some k -> [ k ^ " VARCHAR" ] | None -> [])
    @ List.map (fun k -> k.ik_name ^ " INTEGER") s.int_keys
    @ List.map (fun v -> v ^ " INTEGER") s.vals
  in
  Printf.sprintf "CREATE TABLE fact(%s)" (String.concat ", " fact_cols)
  :: List.map
    (fun d ->
       Printf.sprintf "CREATE TABLE %s(%s INTEGER, label VARCHAR)" d.dim_name
         d.dim_key.ik_name)
    s.dims

(* --- values --- *)

let str_key_value rng =
  if chance rng 1 8 then "NULL"
  else Printf.sprintf "'%c'" (Char.chr (Char.code 'a' + R.int rng 3))

let int_key_value rng (k : int_key) =
  if chance rng 1 10 then "NULL" else string_of_int (R.int rng k.ik_domain)

let val_value rng =
  if chance rng 1 8 then "NULL" else string_of_int (R.int rng 80)

let fact_row rng (s : schema_spec) =
  String.concat ", "
    ((match s.str_key with Some _ -> [ str_key_value rng ] | None -> [])
     @ List.map (int_key_value rng) s.int_keys
     @ List.map (fun _ -> val_value rng) s.vals)

let insert_fact rng s =
  Printf.sprintf "INSERT INTO fact VALUES (%s)" (fact_row rng s)

(** Insert the same row twice — a Z-set multiplicity of 2 in one step. *)
let insert_fact_dup rng s =
  let row = fact_row rng s in
  Printf.sprintf "INSERT INTO fact VALUES (%s), (%s)" row row

(** A row whose every value column is NULL. *)
let insert_fact_null_vals rng (s : schema_spec) =
  let cells =
    (match s.str_key with Some _ -> [ str_key_value rng ] | None -> [])
    @ List.map (int_key_value rng) s.int_keys
    @ List.map (fun _ -> "NULL") s.vals
  in
  Printf.sprintf "INSERT INTO fact VALUES (%s)" (String.concat ", " cells)

let insert_dim rng (d : dim) =
  Printf.sprintf "INSERT INTO %s VALUES (%d, 'L%d')" d.dim_name
    (R.int rng d.dim_key.ik_domain)
    (R.int rng d.dim_labels)

(* --- setup: initial population, executed before the view installs --- *)

let gen_setup rng (s : schema_spec) : string list =
  (* cover every dim key value once so joins usually match, then noise *)
  let dim_rows =
    List.concat
      (List.map
         (fun d ->
            init_ordered d.dim_key.ik_domain (fun i ->
                Printf.sprintf "INSERT INTO %s VALUES (%d, 'L%d')" d.dim_name i
                  (R.int rng d.dim_labels)))
         s.dims)
  in
  dim_rows @ init_ordered (6 + R.int rng 8) (fun _ -> insert_fact rng s)

(* --- workload steps --- *)

let gen_step rng (s : schema_spec) : string =
  let ik () = pick rng s.int_keys in
  let v () = pick rng s.vals in
  match R.int rng 16 with
  | 0 | 1 | 2 | 3 | 4 -> insert_fact rng s
  | 5 -> insert_fact_dup rng s
  | 6 -> insert_fact_null_vals rng s
  | 7 ->
    let v = v () in
    let k = ik () in
    Printf.sprintf "UPDATE fact SET %s = %s + %d WHERE %s = %d" v v
      (1 + R.int rng 9)
      k.ik_name (R.int rng k.ik_domain)
  | 8 ->
    let v = v () in
    Printf.sprintf "UPDATE fact SET %s = NULL WHERE %s > %d" v v
      (40 + R.int rng 40)
  | 9 ->
    let k = ik () in
    Printf.sprintf "DELETE FROM fact WHERE %s = %d AND %s %% 3 = %d" k.ik_name
      (R.int rng k.ik_domain)
      (v ())
      (R.int rng 3)
  | 10 ->
    (* delete a whole group — the group-becomes-empty path *)
    let k = ik () in
    Printf.sprintf "DELETE FROM fact WHERE %s = %d" k.ik_name
      (R.int rng k.ik_domain)
  | 11 ->
    (match s.str_key with
     | Some k ->
       Printf.sprintf "DELETE FROM fact WHERE %s = '%c'" k
         (Char.chr (Char.code 'a' + R.int rng 3))
     | None -> insert_fact rng s)
  | 12 ->
    (match s.dims with [] -> insert_fact rng s | dims -> insert_dim rng (pick rng dims))
  | 13 ->
    (match s.dims with
     | [] -> insert_fact_dup rng s
     | dims ->
       let d = pick rng dims in
       Printf.sprintf "DELETE FROM %s WHERE %s = %d" d.dim_name
         d.dim_key.ik_name
         (R.int rng d.dim_key.ik_domain))
  | 14 ->
    let target = v () in
    let cond = v () in
    Printf.sprintf "UPDATE fact SET %s = %s - %d WHERE %s %% 2 = 0" target
      target
      (1 + R.int rng 5)
      cond
  | _ ->
    let k = ik () in
    Printf.sprintf "UPDATE fact SET %s = %d WHERE %s IS NULL" k.ik_name
      (R.int rng k.ik_domain)
      k.ik_name

(* --- view definitions --- *)

type view_class = Flat | Grouped | Global

(** One output column of a generated view, as seen by a downstream
    (cascaded) view: its alias plus whether it is numeric — only numeric
    columns may feed the second level's aggregates. *)
type out_col = { oc_name : string; oc_numeric : bool }

(** Render a view definition that stays inside the classes the compiler
    accepts: inner joins over fact plus a subset of dims, projections that
    are either group keys or aggregates, optional WHERE, no
    DISTINCT/ORDER BY/HAVING/LIMIT/CTEs. Returns the SQL together with
    the view's output-column metadata so {!gen_view2} can stack a second
    view on top of it. *)
let gen_view rng (s : schema_spec) : string * out_col list =
  let dims_used = List.filter (fun _ -> chance rng 1 2) s.dims in
  let joined = dims_used <> [] in
  let fq c = if joined then "fact." ^ c else c in
  (* (expression, is-numeric) — the flag follows the column into the
     cascade metadata so second-level aggregates stay over numbers *)
  let key_exprs =
    (match s.str_key with Some k -> [ (fq k, false) ] | None -> [])
    @ List.map (fun k -> (fq k.ik_name, true)) s.int_keys
    @ List.map (fun d -> (d.dim_name ^ ".label", false)) dims_used
    @ (if chance rng 1 4 then
         [ (Printf.sprintf "%s %% 2" (fq (pick rng s.int_keys).ik_name), true) ]
       else [])
  in
  let vcol () = fq (pick rng s.vals) in
  let agg_exprs =
    let base =
      [ (fun () -> Printf.sprintf "SUM(%s)" (vcol ()));
        (fun () -> "COUNT(*)");
        (fun () -> Printf.sprintf "COUNT(%s)" (vcol ()));
        (fun () -> Printf.sprintf "MIN(%s)" (vcol ()));
        (fun () -> Printf.sprintf "MAX(%s)" (vcol ()));
        (fun () -> Printf.sprintf "AVG(%s)" (vcol ())) ]
    in
    if List.length s.vals >= 2 then
      base
      @ [ (fun () ->
            Printf.sprintf "SUM(%s + %s)" (fq (List.nth s.vals 0))
              (fq (List.nth s.vals 1))) ]
    else base
  in
  let klass =
    match R.int rng 5 with 0 -> Flat | 1 -> Global | _ -> Grouped
  in
  let keys =
    match klass with
    | Global -> []
    | Flat | Grouped ->
      let subset = List.filter (fun _ -> chance rng 1 2) key_exprs in
      if subset = [] then [ List.hd key_exprs ] else subset
  in
  let aggs =
    match klass with
    | Flat -> []
    | Global | Grouped ->
      init_ordered (1 + R.int rng 3) (fun _ -> (pick rng agg_exprs) ())
  in
  let flat_extra_vals =
    match klass with
    | Flat ->
      List.filter (fun _ -> chance rng 1 3)
        (List.map (fun v -> (fq v, true)) s.vals)
    | Global | Grouped -> []
  in
  let g_cols = keys @ flat_extra_vals in
  let projections =
    List.mapi (fun i (k, _) -> Printf.sprintf "%s AS g%d" k (i + 1)) g_cols
    @ List.mapi (fun i a -> Printf.sprintf "%s AS a%d" a (i + 1)) aggs
  in
  let out_cols =
    List.mapi
      (fun i (_, numeric) ->
         { oc_name = Printf.sprintf "g%d" (i + 1); oc_numeric = numeric })
      g_cols
    @ List.mapi
      (fun i _ -> { oc_name = Printf.sprintf "a%d" (i + 1); oc_numeric = true })
      aggs
  in
  let from =
    List.fold_left
      (fun acc d ->
         Printf.sprintf "%s JOIN %s ON fact.%s = %s.%s" acc d.dim_name
           d.dim_key.ik_name d.dim_name d.dim_key.ik_name)
      "fact" dims_used
  in
  let where =
    match R.int rng 6 with
    | 0 -> Some (Printf.sprintf "%s > %d" (vcol ()) (R.int rng 40))
    | 1 -> Some (Printf.sprintf "%s %% 2 = 0" (vcol ()))
    | 2 ->
      (match s.str_key with
       | Some k -> Some (fq k ^ " IS NOT NULL")
       | None -> None)
    | 3 ->
      let lo = R.int rng 30 in
      Some (Printf.sprintf "%s BETWEEN %d AND %d" (vcol ()) lo (lo + 10 + R.int rng 40))
    | _ -> None
  in
  let group_by =
    match klass with
    | Flat | Global -> ""
    | Grouped -> " GROUP BY " ^ String.concat ", " (List.map fst keys)
  in
  ( Printf.sprintf "CREATE MATERIALIZED VIEW v AS SELECT %s FROM %s%s%s"
      (String.concat ", " projections)
      from
      (match where with Some w -> " WHERE " ^ w | None -> "")
      group_by,
    out_cols )

(** A second-level view stacked over [v] — reads only the upstream view's
    output columns, so the whole case exercises the cascade scheduler:
    ΔV capture on v's backing table, topological refresh ordering, and
    delta consolidation of upstream churn. *)
let gen_view2 rng (up : out_col list) : string =
  let numeric = List.filter (fun c -> c.oc_numeric) up in
  let klass =
    match R.int rng 5 with 0 -> Flat | 1 -> Global | _ -> Grouped
  in
  let keys =
    match klass with
    | Global -> []
    | Flat | Grouped ->
      let subset = List.filter (fun _ -> chance rng 1 2) up in
      (match subset with [] -> [ List.hd up ] | s -> s)
  in
  let agg () =
    match numeric with
    | [] -> "COUNT(*)"
    | _ ->
      let c = (pick rng numeric).oc_name in
      (match R.int rng 6 with
       | 0 -> Printf.sprintf "SUM(%s)" c
       | 1 -> "COUNT(*)"
       | 2 -> Printf.sprintf "COUNT(%s)" c
       | 3 -> Printf.sprintf "MIN(%s)" c
       | 4 -> Printf.sprintf "MAX(%s)" c
       | _ -> Printf.sprintf "AVG(%s)" c)
  in
  let aggs =
    match klass with
    | Flat -> []
    | Global | Grouped -> init_ordered (1 + R.int rng 2) (fun _ -> agg ())
  in
  let projections =
    List.mapi (fun i k -> Printf.sprintf "%s AS h%d" k.oc_name (i + 1)) keys
    @ List.mapi (fun i a -> Printf.sprintf "%s AS b%d" a (i + 1)) aggs
  in
  let where =
    match R.int rng 4 with
    | 0 -> Some (Printf.sprintf "%s IS NOT NULL" (pick rng up).oc_name)
    | 1 when numeric <> [] ->
      Some (Printf.sprintf "%s > %d" (pick rng numeric).oc_name (R.int rng 20))
    | _ -> None
  in
  let group_by =
    match klass with
    | Flat | Global -> ""
    | Grouped ->
      " GROUP BY "
      ^ String.concat ", " (List.map (fun k -> k.oc_name) keys)
  in
  Printf.sprintf "CREATE MATERIALIZED VIEW v2 AS SELECT %s FROM v%s%s"
    (String.concat ", " projections)
    (match where with Some w -> " WHERE " ^ w | None -> "")
    group_by

(* --- SELECT queries for the optimizer / roundtrip oracle --- *)

let gen_query rng (s : schema_spec) : string =
  let join_dim =
    match s.dims with
    | [] -> None
    | dims -> if chance rng 1 3 then Some (pick rng dims) else None
  in
  let fq c = "fact." ^ c in
  let v () = fq (pick rng s.vals) in
  let ik () = pick rng s.int_keys in
  let scalar () =
    match R.int rng 5 with
    | 0 -> fq (ik ()).ik_name
    | 1 -> v ()
    | 2 -> Printf.sprintf "%s + 1" (v ())
    | 3 -> Printf.sprintf "%s %% 5" (v ())
    | _ ->
      (match s.str_key with Some k -> fq k | None -> fq (ik ()).ik_name)
  in
  let predicate () =
    match R.int rng 8 with
    | 0 -> Printf.sprintf "%s > %d" (v ()) (R.int rng 40)
    | 1 ->
      let k = ik () in
      Printf.sprintf "%s = %d" (fq k.ik_name) (R.int rng k.ik_domain)
    | 2 ->
      (match s.str_key with
       | Some k -> Printf.sprintf "%s <> 'a'" (fq k)
       | None -> Printf.sprintf "%s IS NOT NULL" (v ()))
    | 3 ->
      let lo = R.int rng 30 in
      Printf.sprintf "%s BETWEEN %d AND %d" (v ()) lo (lo + 20)
    | 4 -> Printf.sprintf "%s IS NOT NULL" (fq (ik ()).ik_name)
    | 5 ->
      (match s.str_key with
       | Some k -> Printf.sprintf "%s LIKE 'a%%'" (fq k)
       | None -> Printf.sprintf "1 = 1 AND %s >= 0" (v ()))
    | 6 ->
      let k = ik () in
      Printf.sprintf "%s IN (%d, %d, %d)" (fq k.ik_name) (R.int rng 3)
        (1 + R.int rng 3)
        (2 + R.int rng 3)
    | _ ->
      (match s.dims with
       | [] -> Printf.sprintf "%s >= %d" (v ()) (R.int rng 20)
       | dims ->
         let d = pick rng dims in
         Printf.sprintf "%s IN (SELECT %s FROM %s WHERE label <> 'L0')"
           (fq d.dim_key.ik_name) d.dim_key.ik_name d.dim_name)
  in
  let aggregate () =
    match R.int rng 6 with
    | 0 -> "COUNT(*)"
    | 1 -> Printf.sprintf "SUM(%s)" (v ())
    | 2 -> Printf.sprintf "MIN(%s)" (v ())
    | 3 -> Printf.sprintf "MAX(%s)" (fq (ik ()).ik_name)
    | 4 -> Printf.sprintf "AVG(%s)" (v ())
    | _ -> Printf.sprintf "COUNT(%s)" (v ())
  in
  let from =
    match join_dim with
    | None -> "fact"
    | Some d ->
      Printf.sprintf "fact JOIN %s ON fact.%s = %s.%s" d.dim_name
        d.dim_key.ik_name d.dim_name d.dim_key.ik_name
  in
  let where =
    if chance rng 1 2 then " WHERE " ^ predicate () else ""
  in
  if chance rng 1 2 then begin
    let key =
      match R.int rng 3 with
      | 0 -> fq (ik ()).ik_name
      | 1 ->
        (match s.str_key with Some k -> fq k | None -> fq (ik ()).ik_name)
      | _ -> Printf.sprintf "%s %% 3" (v ())
    in
    let having =
      if chance rng 1 3 then " HAVING COUNT(*) > 1" else ""
    in
    Printf.sprintf "SELECT %s AS k, %s AS x, %s AS y FROM %s%s GROUP BY %s%s"
      key (aggregate ()) (aggregate ()) from where key having
  end
  else begin
    let distinct = if chance rng 1 4 then "DISTINCT " else "" in
    Printf.sprintf "SELECT %s%s AS x, %s AS y FROM %s%s" distinct (scalar ())
      (scalar ()) from where
  end

(* --- the case generator --- *)

let case ?(max_steps = 30) ?(queries = 4) ?(with_view = true) ?cascade ~seed
    () : Case.t =
  let rng = R.make [| 0x6e67; seed |] in
  let spec = gen_schema rng in
  let schema = schema_sql spec in
  let setup = gen_setup rng spec in
  (* the cascade coin is flipped unconditionally so that, under the
     default [?cascade:None], the RNG stream — and therefore every
     statement — stays a pure function of the seed *)
  let coin = chance rng 1 3 in
  let views =
    if not with_view then []
    else begin
      let v1, out_cols = gen_view rng spec in
      let cascaded = match cascade with Some b -> b | None -> coin in
      if cascaded then [ v1; gen_view2 rng out_cols ] else [ v1 ]
    end
  in
  let workload = init_ordered max_steps (fun _ -> gen_step rng spec) in
  let queries = init_ordered queries (fun _ -> gen_query rng spec) in
  { Case.empty with
    seed; max_steps; schema; setup; views; workload; queries }
