(** Seeded generators for schemas, IVM view definitions, DML workloads and
    plain SELECT queries. Pure functions of the seed: the same seed always
    yields the same case, making [openivm fuzz --seed N --cases 1] an
    exact reproducer. Generated views stay inside the classes
    {!Openivm.Shape.analyze} accepts by construction. *)

val case :
  ?max_steps:int -> ?queries:int -> ?with_view:bool -> ?cascade:bool ->
  seed:int -> unit -> Case.t
(** [case ~seed ()] generates one case: [max_steps] workload statements
    (default 30), [queries] SELECTs for the optimizer oracle (default 4);
    [with_view:false] yields a query-only case (default true).

    About a third of view-bearing cases stack a second materialized view
    over the first ([v2] reading [v]), exercising the cascade scheduler;
    [cascade] forces that choice either way without perturbing the rest
    of the seeded statement stream. *)
