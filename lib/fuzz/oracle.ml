(** The differential oracle: run a case through the real compiler /
    propagation / runner stack and check the two invariants the whole
    system rests on —

    - {b view ≡ full recompute} after every refresh, for every combine
      strategy and emitted dialect the case names (paper §2, DBSP Z-set
      semantics);
    - {b optimizer-on ≡ optimizer-off} and {b print → parse → execute}
      row-identity for every generated SELECT.

    The first violated check wins; its failure message embeds the exact
    reproducer command. *)

module Flags = Openivm.Flags
module Runner = Openivm.Runner
module Dialect = Openivm_sql.Dialect
module Exec = Openivm_engine.Exec
open Openivm_engine


type point =
  | Install            (** compiling / installing the view *)
  | Initial            (** consistency right after the initial load *)
  | Step of int        (** consistency after workload step [i] (0-based) *)
  | Query of int       (** optimizer / roundtrip check of query [i] *)
  | Durability         (** crash-replay convergence (the {!Durable} axis) *)

type failure = {
  case : Case.t;
  strategy : Flags.combine_strategy option;
  dialect : Dialect.t option;
  engine : Exec.engine option;
  domains : int option;
  point : point;
  message : string;    (** human-readable, ends with the reproducer *)
}

type outcome = {
  checks : int;               (** individual assertions that ran *)
  failure : failure option;   (** the first violation, if any *)
}

let point_to_string = function
  | Install -> "view install"
  | Initial -> "initial load"
  | Step i -> Printf.sprintf "workload step %d" i
  | Query i -> Printf.sprintf "query %d" i
  | Durability -> "durability (crash-replay)"

(* --- helpers --- *)

let exec_all db stmts =
  List.iter (fun s -> ignore (Database.exec db s)) stmts

let render_rows rows =
  let n = List.length rows in
  let shown = if n <= 12 then rows else List.filteri (fun i _ -> i < 12) rows in
  Printf.sprintf "[%s]%s"
    (String.concat " | " shown)
    (if n > 12 then Printf.sprintf " (+%d more)" (n - 12) else "")

let diff_message ~what ~expected ~got =
  Printf.sprintf "%s\n  expected: %s\n  got:      %s" what
    (render_rows expected) (render_rows got)

exception Check_failed of point * string

(* --- the view differential: one (strategy, dialect) configuration --- *)

let run_view_config (case : Case.t) strategy dialect engine domains :
  (int, point * string) result =
  match case.Case.views with
  | [] -> Ok 0
  | view_sqls ->
    let checks = ref 0 in
    let phase = ref Install in
    (try
       let db = Database.create () in
       db.Database.exec_engine <- engine;
       exec_all db case.Case.schema;
       exec_all db case.Case.setup;
       let flags =
         { Flags.default with strategy; dialect; exec_engine = engine; domains }
       in
       (* install in order, each view registered as a potential upstream
          of the next — this is how cascade stacks come up in the wild *)
       let views =
         List.rev
           (List.fold_left
              (fun installed sql ->
                 Runner.install ~flags ~registry:(List.rev installed) db sql
                 :: installed)
              [] view_sqls)
       in
       (* refresh + check bottom-up: each level must equal a full
          recompute over the (already refreshed) level below it *)
       let check point =
         phase := point;
         List.iter
           (fun v ->
              incr checks;
              Runner.refresh v;
              (* the full recompute always runs on the row interpreter, so
                 vectorized propagation is judged against an independent
                 executor rather than against itself *)
              let expected =
                let saved = db.Database.exec_engine in
                db.Database.exec_engine <- Exec.Row;
                Fun.protect
                  ~finally:(fun () -> db.Database.exec_engine <- saved)
                  (fun () -> Runner.recompute_rows v)
              in
              let got = Runner.visible_rows v in
              if expected <> got then
                raise
                  (Check_failed
                     ( point,
                       diff_message
                         ~what:
                           (Printf.sprintf "view %s != full recompute"
                              (Runner.view_name v))
                         ~expected ~got )))
           views
       in
       check Initial;
       List.iteri
         (fun i stmt ->
            phase := Step i;
            ignore (Database.exec db stmt);
            check (Step i))
         case.Case.workload;
       Ok !checks
     with
     | Check_failed (p, m) -> Error (p, m)
     | e -> Error (!phase, Printexc.to_string e))

(* --- the query differential: optimizer and pretty/parse roundtrip --- *)

let sorted_rows db sql =
  List.sort String.compare
    (List.map Row.to_string (Database.query db sql).Database.rows)

let run_queries (case : Case.t) (engines : Exec.engine list) :
  (int, Exec.engine option * (point * string)) result =
  if case.Case.queries = [] then Ok 0
  else begin
    let checks = ref 0 in
    let phase = ref (Query 0) in
    let cur_engine = ref None in
    try
      let db = Database.create () in
      exec_all db case.Case.schema;
      exec_all db case.Case.setup;
      (* a view-less replay of the workload enriches the data set *)
      exec_all db case.Case.workload;
      List.iteri
        (fun i sql ->
           phase := Query i;
           let per_engine =
             List.map
               (fun engine ->
                  cur_engine := Some engine;
                  db.Database.exec_engine <- engine;
                  let optimized = sorted_rows db sql in
                  db.Database.optimizer_enabled <- false;
                  let plain =
                    Fun.protect
                      ~finally:(fun () -> db.Database.optimizer_enabled <- true)
                      (fun () -> sorted_rows db sql)
                  in
                  incr checks;
                  if plain <> optimized then
                    raise
                      (Check_failed
                         ( Query i,
                           diff_message
                             ~what:("optimizer changes results: " ^ sql)
                             ~expected:plain ~got:optimized ));
                  let reprinted =
                    Openivm_sql.Pretty.stmt_to_sql Dialect.minidb
                      (Openivm_sql.Parser.parse_statement sql)
                  in
                  incr checks;
                  let roundtrip = sorted_rows db reprinted in
                  if roundtrip <> optimized then
                    raise
                      (Check_failed
                         ( Query i,
                           diff_message
                             ~what:
                               (Printf.sprintf
                                  "print/parse roundtrip changes results: %s \
                                   -> %s"
                                  sql reprinted)
                             ~expected:optimized ~got:roundtrip ));
                  (engine, optimized))
               engines
           in
           (* the executor differential: every engine must produce the
              same bag of rows for the same SELECT *)
           match per_engine with
           | [] -> ()
           | (e0, rows0) :: rest ->
             List.iter
               (fun (e, rows) ->
                  cur_engine := Some e;
                  incr checks;
                  if rows <> rows0 then
                    raise
                      (Check_failed
                         ( Query i,
                           diff_message
                             ~what:
                               (Printf.sprintf
                                  "executors disagree (%s vs %s): %s"
                                  (Exec.engine_to_string e)
                                  (Exec.engine_to_string e0) sql)
                             ~expected:rows0 ~got:rows )))
               rest)
        case.Case.queries;
      Ok !checks
    with
    | Check_failed (p, m) -> Error (!cur_engine, (p, m))
    | e -> Error (!cur_engine, (!phase, Printexc.to_string e))
  end

(* --- the full matrix --- *)

let make_failure case ?strategy ?dialect ?engine ?domains (point, msg) =
  let engine_tag =
    match engine with
    | Some e -> Exec.engine_to_string e
    | None -> ""
  in
  let engine_tag =
    match domains with
    | Some n when n > 1 ->
      (if engine_tag = "" then "" else engine_tag ^ "/")
      ^ Printf.sprintf "domains=%d" n
    | _ -> engine_tag
  in
  let where =
    match strategy, dialect with
    | Some s, Some d ->
      Printf.sprintf "[%s/%s%s] " (Flags.strategy_to_string s) d.Dialect.name
        (if engine_tag = "" then "" else "/" ^ engine_tag)
    | _ -> if engine_tag = "" then "" else Printf.sprintf "[%s] " engine_tag
  in
  { case; strategy; dialect; engine; domains; point;
    message =
      Printf.sprintf "%s%s: %s\n  reproduce: %s" where (point_to_string point)
        msg
        (Case.command ?strategy ?dialect ?engine ?domains case) }

let run (case : Case.t) : outcome =
  (* the --domains axis is a correctness matrix, not a performance
     setting: a case that fails only at domains > cores must replay
     identically on a single-core box, so the oracle lifts the width cap
     for as long as the process keeps fuzzing. Set here, not at module
     init: this library is linked into the whole CLI, and `openivm
     stats`/`serve` must keep the production cap. *)
  Openivm.Parallel.oversubscribe := true;
  let checks = ref 0 in
  let engines = Case.engines case in
  match run_queries case engines with
  | Error (engine, e) ->
    { checks = !checks; failure = Some (make_failure case ?engine e) }
  | Ok n ->
    checks := !checks + n;
    let rec over_configs = function
      | [] -> { checks = !checks; failure = None }
      | (strategy, dialect, engine, domains) :: rest ->
        (match run_view_config case strategy dialect engine domains with
         | Ok n ->
           checks := !checks + n;
           over_configs rest
         | Error e ->
           { checks = !checks;
             failure =
               Some (make_failure case ~strategy ~dialect ~engine ~domains e) })
    in
    over_configs
      (List.concat_map
         (fun s ->
            List.concat_map
              (fun d ->
                 List.concat_map
                   (fun e ->
                      List.map (fun p -> (s, d, e, p)) (Case.domains case))
                   engines)
              (Case.dialects case))
         (Case.strategies case))

(** The shrinker's predicate: [Some message] when the case still fails. *)
let first_failure (case : Case.t) : string option =
  match (run case).failure with
  | None -> None
  | Some f -> Some f.message
