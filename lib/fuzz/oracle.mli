(** The differential oracle: view ≡ full recompute after every refresh
    (per combine strategy × dialect × executor, with the recompute always
    on the row interpreter so the vectorized engine is judged against an
    independent executor), vectorized ≡ row for every generated SELECT,
    optimizer-on ≡ optimizer-off and print → parse → execute
    row-identity. *)

module Flags = Openivm.Flags
module Dialect = Openivm_sql.Dialect
module Exec = Openivm_engine.Exec

type point =
  | Install            (** compiling / installing the view *)
  | Initial            (** consistency right after the initial load *)
  | Step of int        (** consistency after workload step [i] (0-based) *)
  | Query of int       (** optimizer / roundtrip check of query [i] *)
  | Durability         (** crash-replay convergence (the {!Durable} axis) *)

type failure = {
  case : Case.t;
  strategy : Flags.combine_strategy option;
  dialect : Dialect.t option;
  engine : Exec.engine option;
  domains : int option;    (** refresh-parallelism width of the failing run *)
  point : point;
  message : string;    (** human-readable, ends with the reproducer *)
}

type outcome = {
  checks : int;               (** individual assertions that ran *)
  failure : failure option;   (** the first violation, if any *)
}

val point_to_string : point -> string

val run : Case.t -> outcome
(** Check the case over its whole strategy × dialect matrix, queries
    first. Stops at the first violation. *)

val first_failure : Case.t -> string option
(** The shrinker's predicate: [Some message] when the case still fails. *)
