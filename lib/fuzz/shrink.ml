(** Greedy case minimizer. Given a failing case and an oracle predicate,
    repeatedly tries structurally smaller candidates and keeps every one
    that still fails:

    - workload / setup / query lists shrink by delta-debugging style
      chunk removal (halving chunk sizes down to single statements);
    - the last view of the stack is dropped outright when the failure
      survives without it, or loses its WHERE clause, surplus aggregates
      and surplus group keys (group-key drops also leave GROUP BY) —
      earlier views are upstreams the later definitions reference, so
      they only ever shrink after becoming last themselves;
    - literal values inside the surviving DML simplify toward [0] / ['a'],
      one literal at a time.

    The whole process is deterministic — no randomness, candidates are
    tried in a fixed order — so a failing seed always shrinks to the same
    reproducer. The schema is deliberately left untouched: dropping a
    CREATE TABLE would make the replay fail for an unrelated reason and
    fool the "still fails" test. *)

module Ast = Openivm_sql.Ast

type stats = {
  attempts : int;  (** oracle evaluations performed *)
  kept : int;      (** candidates accepted (strictly simpler, still failing) *)
}

(* --- SQL-level helpers --- *)

let parse sql = Openivm_sql.Parser.parse_statement sql
let render stmt = Openivm_sql.Pretty.stmt_to_sql Openivm_sql.Dialect.minidb stmt

let map_stmt_exprs f stmt =
  match stmt with
  | Ast.Insert ({ source; _ } as r) ->
    let source =
      match source with
      | Ast.Values rows -> Ast.Values (List.map (List.map (Ast.map_expr f)) rows)
      | Ast.Query q -> Ast.Query q
    in
    Ast.Insert { r with source }
  | Ast.Update ({ assignments; where; _ } as r) ->
    Ast.Update
      { r with
        assignments = List.map (fun (c, e) -> (c, Ast.map_expr f e)) assignments;
        where = Option.map (Ast.map_expr f) where }
  | Ast.Delete ({ where; _ } as r) ->
    Ast.Delete { r with where = Option.map (Ast.map_expr f) where }
  | s -> s

let count_literals sql =
  match parse sql with
  | exception _ -> 0
  | stmt ->
    let n = ref 0 in
    ignore
      (map_stmt_exprs
         (fun e ->
            (match e with
             | Ast.Lit (Ast.L_int _ | Ast.L_string _) -> incr n
             | _ -> ());
            e)
         stmt);
    !n

(** Simplify the [k]-th literal of the statement toward 0 / "a"; [None]
    when it is already minimal (or out of range / unparseable). *)
let simplify_literal_at sql k : string option =
  match parse sql with
  | exception _ -> None
  | stmt ->
    let idx = ref (-1) in
    let changed = ref false in
    let stmt' =
      map_stmt_exprs
        (fun e ->
           match e with
           | Ast.Lit (Ast.L_int n) ->
             incr idx;
             if !idx = k && n <> 0 then begin
               changed := true;
               Ast.Lit (Ast.L_int 0)
             end
             else e
           | Ast.Lit (Ast.L_string s) ->
             incr idx;
             if !idx = k && s <> "a" then begin
               changed := true;
               Ast.Lit (Ast.L_string "a")
             end
             else e
           | e -> e)
        stmt
    in
    if !changed then Some (render stmt') else None

(** Structurally smaller variants of a view definition, simplest first. *)
let view_variants (sql : string) : string list =
  match parse sql with
  | exception _ -> []
  | Ast.Create_view ({ query; _ } as cv) ->
    let render_q q = render (Ast.Create_view { cv with query = q }) in
    let no_where =
      match query.Ast.where with
      | Some _ -> [ render_q { query with Ast.where = None } ]
      | None -> []
    in
    let aggregated = Ast.select_has_aggregate query in
    let agg_count =
      List.length
        (List.filter
           (fun (e, _) -> Ast.expr_contains_aggregate e)
           query.Ast.projections)
    in
    let n = List.length query.Ast.projections in
    let drops = ref [] in
    List.iteri
      (fun i (e, _) ->
         let is_agg = Ast.expr_contains_aggregate e in
         let allowed =
           n > 1 && (not (aggregated && is_agg) || agg_count > 1)
         in
         if allowed then begin
           let projections =
             List.filteri (fun j _ -> j <> i) query.Ast.projections
           in
           let group_by =
             if is_agg then query.Ast.group_by
             else List.filter (fun g -> g <> e) query.Ast.group_by
           in
           drops :=
             render_q { query with Ast.projections; group_by } :: !drops
         end)
      query.Ast.projections;
    no_where @ List.rev !drops
  | _ -> []

(* --- list reduction (ddmin-style) --- *)

let without_range xs i n =
  List.filteri (fun j _ -> j < i || j >= i + n) xs

(** Remove chunks of decreasing size while [test] keeps succeeding on the
    reduced list. [test] is expected to commit accepted candidates. *)
let reduce_list ~test xs =
  let rec shrink chunk xs =
    if chunk < 1 || xs = [] then xs
    else begin
      let rec pass i xs =
        if i >= List.length xs then xs
        else begin
          let candidate = without_range xs i chunk in
          if test candidate then pass i candidate else pass (i + chunk) xs
        end
      in
      let xs' = pass 0 xs in
      shrink (if chunk = 1 then 0 else max 1 (chunk / 2)) xs'
    end
  in
  shrink (max 1 (List.length xs / 2)) xs

(* --- the minimizer --- *)

let minimize ?(max_passes = 6) ~(oracle : Case.t -> string option)
    (case : Case.t) : Case.t * stats =
  let attempts = ref 0 in
  let kept = ref 0 in
  let fails c =
    incr attempts;
    oracle c <> None
  in
  if not (fails case) then (case, { attempts = !attempts; kept = !kept })
  else begin
    let current = ref case in
    let accept c =
      if fails c then begin
        incr kept;
        current := c;
        true
      end
      else false
    in
    let reduce get set =
      ignore
        (reduce_list
           ~test:(fun ys -> accept (set !current ys))
           (get !current))
    in
    (* only the LAST view of a cascade stack may shrink: earlier views
       are upstreams whose output columns later definitions reference, so
       touching them would break the replay for an unrelated reason. If
       the failure survives without the last view entirely, drop it — the
       previous view becomes the new last and shrinks in turn. *)
    let rec view_pass () =
      match List.rev (!current).Case.views with
      | [] -> ()
      | last :: prev_rev ->
        if accept { !current with Case.views = List.rev prev_rev } then
          view_pass ()
        else if
          List.exists
            (fun v ->
               accept { !current with Case.views = List.rev (v :: prev_rev) })
            (view_variants last)
        then view_pass ()
    in
    let literal_pass get set =
      let n_stmts = List.length (get !current) in
      for j = 0 to n_stmts - 1 do
        let total = count_literals (List.nth (get !current) j) in
        for k = 0 to total - 1 do
          let stmts = get !current in
          match simplify_literal_at (List.nth stmts j) k with
          | None -> ()
          | Some stmt' ->
            let stmts' =
              List.mapi (fun i s -> if i = j then stmt' else s) stmts
            in
            ignore (accept (set !current stmts'))
        done
      done
    in
    let get_workload c = c.Case.workload in
    let set_workload c ys = { c with Case.workload = ys } in
    let get_setup c = c.Case.setup in
    let set_setup c ys = { c with Case.setup = ys } in
    let pass () =
      let before = !current in
      reduce get_workload set_workload;
      reduce get_setup set_setup;
      reduce (fun c -> c.Case.queries) (fun c ys -> { c with Case.queries = ys });
      view_pass ();
      literal_pass get_workload set_workload;
      literal_pass get_setup set_setup;
      before <> !current
    in
    let rec iterate n = if n > 0 && pass () then iterate (n - 1) in
    iterate max_passes;
    (!current, { attempts = !attempts; kept = !kept })
  end
