(** Greedy, deterministic case minimizer: delta-debugging chunk removal
    over workload / setup / query lists, WHERE and surplus
    projection drops on the view definition, literal simplification
    toward [0] / ['a']. A candidate is kept iff the oracle still reports
    a failure on it. *)

type stats = {
  attempts : int;  (** oracle evaluations performed *)
  kept : int;      (** candidates accepted (strictly simpler, still failing) *)
}

val minimize :
  ?max_passes:int ->
  oracle:(Case.t -> string option) ->
  Case.t ->
  Case.t * stats
(** [minimize ~oracle case] returns the smallest still-failing case the
    greedy search reaches, plus search statistics. If [case] does not
    fail under [oracle] it is returned unchanged. [oracle] returns
    [Some message] for failing cases — {!Oracle.first_failure} is the
    production instance; tests may inject synthetic ones. *)
