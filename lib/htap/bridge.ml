(** The cross-system transfer layer (the paper's DuckDB↔PostgreSQL scanner
    link, Figure 3). Rows are serialized to a wire format and back, and a
    configurable per-batch latency models the network/IPC round trip —
    the knob separating "pure" from "cross-system" numbers in E3. *)

open Openivm_engine

type t = {
  batch_latency : float;      (** seconds per transferred batch *)
  per_row_cost : float;       (** seconds per transferred row *)
  mutable batches : int;
  mutable rows_shipped : int;
  mutable bytes_shipped : int;
}

let create ?(batch_latency = 200e-6) ?(per_row_cost = 0.2e-6) () : t =
  { batch_latency; per_row_cost; batches = 0; rows_shipped = 0; bytes_shipped = 0 }

(* Wire format: length-prefixed textual values — enough to measure
   serialization cost honestly without inventing a binary protocol. *)
let serialize_row (row : Row.t) : string =
  let buf = Buffer.create 64 in
  Array.iter
    (fun v ->
       let s =
         match v with
         | Value.Null -> "\x00"
         (* hex float: exact round trip *)
         | Value.Float f -> Printf.sprintf "%h" f
         | v -> Value.to_string v
       in
       Buffer.add_string buf (string_of_int (String.length s));
       Buffer.add_char buf ':';
       Buffer.add_string buf s;
       Buffer.add_char buf (match v with
         | Value.Null -> 'n'
         | Value.Bool _ -> 'b'
         | Value.Int _ -> 'i'
         | Value.Float _ -> 'f'
         | Value.Str _ -> 's'
         | Value.Date _ -> 'd'))
    row;
  Buffer.contents buf

let deserialize_row (wire : string) : Row.t =
  let values = ref [] in
  let i = ref 0 in
  let n = String.length wire in
  while !i < n do
    let colon = String.index_from wire !i ':' in
    let len = int_of_string (String.sub wire !i (colon - !i)) in
    let payload = String.sub wire (colon + 1) len in
    let tag = wire.[colon + 1 + len] in
    let v =
      match tag with
      | 'n' -> Value.Null
      | 'b' -> Value.Bool (String.equal payload "true")
      | 'i' -> Value.Int (int_of_string payload)
      | 'f' -> Value.Float (float_of_string payload)
      | 's' -> Value.Str payload
      | 'd' ->
        (match Value.date_of_string payload with
         | Value.Date _ as d -> d
         | _ -> Value.Null)
      | c -> Error.fail "bridge: bad wire tag %C" c
    in
    values := v :: !values;
    i := colon + 2 + len
  done;
  Array.of_list (List.rev !values)

let busy_wait seconds =
  if seconds > 0.0 then begin
    let deadline = Unix.gettimeofday () +. seconds in
    while Unix.gettimeofday () < deadline do () done
  end

(** Ship a batch of rows across the bridge: serialize, pay the transfer
    cost, deserialize on the far side. *)
let ship (t : t) (rows : Row.t list) : Row.t list =
  let wire = List.map serialize_row rows in
  let bytes = List.fold_left (fun acc s -> acc + String.length s) 0 wire in
  t.batches <- t.batches + 1;
  t.rows_shipped <- t.rows_shipped + List.length rows;
  t.bytes_shipped <- t.bytes_shipped + bytes;
  busy_wait (t.batch_latency +. (t.per_row_cost *. float_of_int (List.length rows)));
  List.map deserialize_row wire

let stats t = (t.batches, t.rows_shipped, t.bytes_shipped)
