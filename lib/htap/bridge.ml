(** The cross-system transfer layer (the paper's DuckDB↔PostgreSQL scanner
    link, Figure 3). Rows are serialized to a wire format and back, and a
    configurable per-batch latency models the network/IPC round trip —
    the knob separating "pure" from "cross-system" numbers in E3.

    On top of the raw row channel sits a batch protocol for exactly-once
    delivery: every batch carries its source table, a per-source sequence
    number and a checksum, and {!send} runs it through the configured
    {!Fault} harness — batches can be dropped, duplicated, held back past
    a later batch, or corrupted on the wire. The receiving side (see
    {!Pipeline}) detects corruption via the checksum and duplicates via
    per-source watermarks; the sender retries unacknowledged batches. *)

open Openivm_engine

type t = {
  batch_latency : float;      (** seconds per transferred batch *)
  per_row_cost : float;       (** seconds per transferred row *)
  faults : Fault.t;
  mutable batches : int;
  mutable rows_shipped : int;
  mutable bytes_shipped : int;
  mutable held : batch list;  (** reordered batches awaiting release *)
}

and batch = {
  source : string;            (** base table the deltas belong to *)
  seq : int;                  (** per-source sequence number, from 1 *)
  payload : string array;     (** serialized rows *)
  checksum : int;
}

let create ?(batch_latency = 200e-6) ?(per_row_cost = 0.2e-6) ?faults () : t =
  let faults =
    match faults with Some f -> f | None -> Fault.create Fault.none
  in
  { batch_latency; per_row_cost; faults;
    batches = 0; rows_shipped = 0; bytes_shipped = 0; held = [] }

let faults t = t.faults

(* Wire format: length-prefixed textual values — enough to measure
   serialization cost honestly without inventing a binary protocol. *)
let serialize_row (row : Row.t) : string =
  let buf = Buffer.create 64 in
  Array.iter
    (fun v ->
       let s =
         match v with
         | Value.Null -> "\x00"
         (* hex float: exact round trip *)
         | Value.Float f -> Printf.sprintf "%h" f
         | v -> Value.to_string v
       in
       Buffer.add_string buf (string_of_int (String.length s));
       Buffer.add_char buf ':';
       Buffer.add_string buf s;
       Buffer.add_char buf (match v with
         | Value.Null -> 'n'
         | Value.Bool _ -> 'b'
         | Value.Int _ -> 'i'
         | Value.Float _ -> 'f'
         | Value.Str _ -> 's'
         | Value.Date _ -> 'd'))
    row;
  Buffer.contents buf

let deserialize_row (wire : string) : Row.t =
  let values = ref [] in
  let i = ref 0 in
  let n = String.length wire in
  (try
     while !i < n do
       let colon = String.index_from wire !i ':' in
       let len = int_of_string (String.sub wire !i (colon - !i)) in
       let payload = String.sub wire (colon + 1) len in
       let tag = wire.[colon + 1 + len] in
       let v =
         match tag with
         | 'n' -> Value.Null
         | 'b' -> Value.Bool (String.equal payload "true")
         | 'i' -> Value.Int (int_of_string payload)
         | 'f' -> Value.Float (float_of_string payload)
         | 's' -> Value.Str payload
         | 'd' ->
           (match Value.date_of_string payload with
            | Value.Date _ as d -> d
            | _ -> Error.fail "bridge: bad date payload %S" payload)
         | c -> Error.fail "bridge: bad wire tag %C" c
       in
       values := v :: !values;
       i := colon + 2 + len
     done
   with Not_found | Failure _ | Invalid_argument _ ->
     Error.fail "bridge: malformed wire row %S" wire);
  Array.of_list (List.rev !values)

(* --- checksummed batches --- *)

(* 32-bit FNV-1a over source, sequence number and payload bytes. *)
let compute_checksum ~(source : string) ~(seq : int) (payload : string array) :
  int =
  let mask = 0xFFFFFFFF in
  let h = ref 0x811c9dc5 in
  let feed_byte b = h := ((!h lxor b) * 0x01000193) land mask in
  let feed_string s =
    String.iter (fun c -> feed_byte (Char.code c)) s;
    feed_byte 0xFF  (* separator: "ab"+"c" ≠ "a"+"bc" *)
  in
  feed_string source;
  feed_string (string_of_int seq);
  Array.iter feed_string payload;
  !h

let make_batch ~(source : string) ~(seq : int) (rows : Row.t list) : batch =
  let payload = Array.of_list (List.map serialize_row rows) in
  { source; seq; payload; checksum = compute_checksum ~source ~seq payload }

let batch_bytes (b : batch) : int =
  Array.fold_left (fun acc s -> acc + String.length s) 0 b.payload

let verify (b : batch) : bool =
  b.checksum = compute_checksum ~source:b.source ~seq:b.seq b.payload

let batch_rows (b : batch) : Row.t list =
  if not (verify b) then
    Error.fail "bridge: checksum mismatch on batch %s#%d" b.source b.seq;
  Array.to_list (Array.map deserialize_row b.payload)

let busy_wait seconds =
  if seconds > 0.0 then begin
    let deadline = Unix.gettimeofday () +. seconds in
    while Unix.gettimeofday () < deadline do () done
  end

(* Flip one payload byte; the checksum travels unchanged, so the receiver
   sees the mismatch. *)
let corrupt_copy (t : t) (b : batch) : batch =
  let total = batch_bytes b in
  if total = 0 then b
  else begin
    let target = Fault.draw t.faults total in
    let payload = Array.copy b.payload in
    let pos = ref 0 in
    Array.iteri
      (fun i s ->
         let len = String.length s in
         if target >= !pos && target < !pos + len then begin
           let bs = Bytes.of_string s in
           let j = target - !pos in
           Bytes.set bs j (Char.chr (Char.code (Bytes.get bs j) lxor 0x20));
           payload.(i) <- Bytes.to_string bs
         end;
         pos := !pos + len)
      b.payload;
    { b with payload }
  end

let account t (b : batch) =
  t.batches <- t.batches + 1;
  t.rows_shipped <- t.rows_shipped + Array.length b.payload;
  t.bytes_shipped <- t.bytes_shipped + batch_bytes b;
  busy_wait
    (t.batch_latency
     +. (t.per_row_cost *. float_of_int (Array.length b.payload)))

(** Put [b] on the wire. Returns the batches the far side receives from
    this transmission, in arrival order: the batch itself (possibly
    corrupted, possibly twice, possibly not at all), followed by any
    previously held-back batches — which therefore arrive out of order.
    Delivery is decided by the fault harness; with {!Fault.none} this is
    exactly [[b]]. *)
let send (t : t) (b : batch) : batch list =
  account t b;
  let released = List.rev t.held in
  t.held <- [];
  let deliveries =
    if Fault.roll t.faults Fault.Drop then []
    else if Fault.roll t.faults Fault.Reorder then begin
      t.held <- b :: t.held;
      []
    end
    else begin
      let copies =
        if Fault.roll t.faults Fault.Duplicate then [ b; b ] else [ b ]
      in
      List.map
        (fun c ->
           if Fault.roll t.faults Fault.Corrupt then corrupt_copy t c else c)
        copies
    end
  in
  deliveries @ released

(** Deliver everything still sitting in the pipe (recovery drains the
    network before replaying). *)
let flush (t : t) : batch list =
  let released = List.rev t.held in
  t.held <- [];
  released

(** Throw away in-flight batches (full resync rebuilds from base tables,
    so stale traffic must not resurface afterwards). Returns how many were
    discarded. *)
let discard_in_flight (t : t) : int =
  let n = List.length t.held in
  t.held <- [];
  n

let held_count t = List.length t.held

(** Ship a batch of rows across the bridge reliably: serialize, pay the
    transfer cost, deserialize on the far side. The fault harness does not
    apply — this is the full-resync / ship-everything baseline path. *)
let ship (t : t) (rows : Row.t list) : Row.t list =
  let wire = List.map serialize_row rows in
  let bytes = List.fold_left (fun acc s -> acc + String.length s) 0 wire in
  t.batches <- t.batches + 1;
  t.rows_shipped <- t.rows_shipped + List.length rows;
  t.bytes_shipped <- t.bytes_shipped + bytes;
  busy_wait (t.batch_latency +. (t.per_row_cost *. float_of_int (List.length rows)));
  List.map deserialize_row wire

let stats t = (t.batches, t.rows_shipped, t.bytes_shipped)
