(** The cross-system transfer layer (the paper's DuckDB↔PostgreSQL link):
    rows are serialized to a wire format and back, with a configurable
    per-batch latency and per-row cost — the knob separating "pure" from
    "cross-system" numbers in experiment E3. *)

open Openivm_engine

type t = {
  batch_latency : float;
  per_row_cost : float;
  mutable batches : int;
  mutable rows_shipped : int;
  mutable bytes_shipped : int;
}

val create : ?batch_latency:float -> ?per_row_cost:float -> unit -> t
(** Defaults: 200µs per batch, 0.2µs per row. *)

val serialize_row : Row.t -> string
val deserialize_row : string -> Row.t

val ship : t -> Row.t list -> Row.t list
(** Serialize, pay the transfer cost, deserialize on the far side. *)

val stats : t -> int * int * int
(** (batches, rows, bytes) shipped so far. *)
