(** The cross-system transfer layer (the paper's DuckDB↔PostgreSQL link):
    rows are serialized to a wire format and back, with a configurable
    per-batch latency and per-row cost — the knob separating "pure" from
    "cross-system" numbers in experiment E3. On top sits a checksummed,
    sequence-numbered batch protocol whose deliveries run through a
    {!Fault} harness (drop / duplicate / reorder / corrupt). *)

open Openivm_engine

type t = {
  batch_latency : float;
  per_row_cost : float;
  faults : Fault.t;
  mutable batches : int;
  mutable rows_shipped : int;
  mutable bytes_shipped : int;
  mutable held : batch list;
}

(** A protocol batch: deltas of one source table, sequence-numbered per
    source (from 1, no gaps), checksummed over source + seq + payload. *)
and batch = {
  source : string;
  seq : int;
  payload : string array;
  checksum : int;
}

val create :
  ?batch_latency:float -> ?per_row_cost:float -> ?faults:Fault.t -> unit -> t
(** Defaults: 200µs per batch, 0.2µs per row, no faults. *)

val faults : t -> Fault.t

val serialize_row : Row.t -> string

val deserialize_row : string -> Row.t
(** Raises {!Error.Sql_error} on malformed wire data (bad structure, bad
    tag, unparseable date) — corruption must never silently become a
    different value. *)

(** {1 Checksummed batch protocol} *)

val make_batch : source:string -> seq:int -> Row.t list -> batch

val verify : batch -> bool
(** Does the checksum match the payload? *)

val batch_rows : batch -> Row.t list
(** Deserialize a verified batch; raises {!Error.Sql_error} if the
    checksum does not match. *)

val batch_bytes : batch -> int

val send : t -> batch -> batch list
(** Put a batch on the wire; returns what the far side receives from this
    transmission, in arrival order — possibly nothing (dropped or held
    back), possibly duplicates or corrupted copies, plus any previously
    held batches (which thus arrive out of order). With no faults this is
    exactly the input batch. Pays the configured latency. *)

val flush : t -> batch list
(** Deliver everything still in the pipe (recovery drains the network
    before replaying). *)

val discard_in_flight : t -> int
(** Drop held batches (full resync must not see stale traffic resurface);
    returns how many were discarded. *)

val held_count : t -> int

val busy_wait : float -> unit
(** Spin for the given number of seconds (latency / backoff modelling). *)

(** {1 Reliable row transfer} *)

val ship : t -> Row.t list -> Row.t list
(** Serialize, pay the transfer cost, deserialize on the far side. Not
    subject to fault injection — the full-resync and ship-everything
    baseline path. *)

val stats : t -> int * int * int
(** (batches, rows, bytes) shipped so far, retries included. *)
