(** Deterministic fault injection for the cross-system bridge and the
    durable store.

    Each fault kind fires independently with a configured probability from
    a dedicated seeded RNG, so a failing chaos run replays exactly from
    its seed regardless of how the surrounding workload perturbs other
    random state. On top of the probabilistic rolls, {!schedule} arms a
    one-shot deterministic injection ("fire on the Nth roll of this
    kind") — the crash-at-chunk-K and crash-point-replay primitives. *)

type kind =
  (* wire faults (the HTAP bridge) *)
  | Drop | Duplicate | Reorder | Corrupt | Crash
  (* storage faults (the durable store) *)
  | Torn_tail        (** WAL append crashes mid-payload: torn tail write *)
  | Truncated_record (** WAL append crashes mid-header: truncated record *)
  | Corrupt_record   (** a WAL byte flips on the way to disk, then crash *)
  | Chunk_crash      (** process killed at a backfill chunk boundary *)
  | Truncate_crash   (** killed between checkpoint and WAL truncation *)

exception Injected_crash
(** Raised by storage-fault injection sites to simulate the process dying
    with the file state exactly as written so far. *)

let wire_kinds = [ Drop; Duplicate; Reorder; Corrupt; Crash ]

let storage_kinds =
  [ Torn_tail; Truncated_record; Corrupt_record; Chunk_crash; Truncate_crash ]

let all_kinds = wire_kinds @ storage_kinds

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Corrupt -> "corrupt"
  | Crash -> "crash"
  | Torn_tail -> "torn_tail"
  | Truncated_record -> "truncated_record"
  | Corrupt_record -> "corrupt_record"
  | Chunk_crash -> "chunk_crash"
  | Truncate_crash -> "truncate_crash"

type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  crash : float;
  torn_tail : float;
  truncated_record : float;
  corrupt_record : float;
  chunk_crash : float;
  truncate_crash : float;
}

let none =
  { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0.; crash = 0.;
    torn_tail = 0.; truncated_record = 0.; corrupt_record = 0.;
    chunk_crash = 0.; truncate_crash = 0. }

(** Wire chaos: the bridge knobs default to 10%, storage knobs to off —
    [chaos ()] keeps its historical meaning of "every bridge fault hot". *)
let chaos ?(drop = 0.1) ?(duplicate = 0.1) ?(reorder = 0.1) ?(corrupt = 0.1)
    ?(crash = 0.1) () =
  { none with drop; duplicate; reorder; corrupt; crash }

(** Storage chaos: every durable-store fault at 10% (overridable), wire
    faults off. *)
let storage_chaos ?(torn_tail = 0.1) ?(truncated_record = 0.1)
    ?(corrupt_record = 0.1) ?(chunk_crash = 0.1) ?(truncate_crash = 0.1) () =
  { none with torn_tail; truncated_record; corrupt_record; chunk_crash;
              truncate_crash }

let probability spec = function
  | Drop -> spec.drop
  | Duplicate -> spec.duplicate
  | Reorder -> spec.reorder
  | Corrupt -> spec.corrupt
  | Crash -> spec.crash
  | Torn_tail -> spec.torn_tail
  | Truncated_record -> spec.truncated_record
  | Corrupt_record -> spec.corrupt_record
  | Chunk_crash -> spec.chunk_crash
  | Truncate_crash -> spec.truncate_crash

type t = {
  spec : spec;
  seed : int;
  rng : Random.State.t;
  mutable suspended : int;  (** > 0 = faults off (recovery, full resync) *)
  injected : (kind * int ref) list;
  mutable scheduled : (kind * int) list;
      (** one-shot countdowns: fire deterministically on the Nth roll *)
}

let create ?(seed = 0xC4A05) (spec : spec) : t =
  { spec; seed; rng = Random.State.make [| seed |]; suspended = 0;
    injected = List.map (fun k -> (k, ref 0)) all_kinds; scheduled = [] }

let seed t = t.seed
let spec t = t.spec

let active t = t.suspended = 0

(** Arm a deterministic one-shot: the ([after] + 1)-th {!roll} of [kind]
    fires regardless of its configured probability, then disarms. Replaces
    any earlier schedule for the same kind. Scheduled rolls consume no
    randomness, so they do not perturb the probabilistic fault replay. *)
let schedule t kind ~after =
  t.scheduled <- (kind, max 0 after) :: List.remove_assoc kind t.scheduled

let unschedule t kind = t.scheduled <- List.remove_assoc kind t.scheduled

(** Roll the dice for [kind]; counts the injection when it fires. While
    suspended, nothing fires and no randomness is consumed (so recovery
    does not perturb the replayable fault schedule). *)
let roll t kind : bool =
  if t.suspended > 0 then false
  else
    match List.assoc_opt kind t.scheduled with
    | Some 0 ->
      t.scheduled <- List.remove_assoc kind t.scheduled;
      incr (List.assoc kind t.injected);
      true
    | Some n ->
      t.scheduled <- (kind, n - 1) :: List.remove_assoc kind t.scheduled;
      false
    | None ->
      let p = probability t.spec kind in
      let fires = p > 0.0 && Random.State.float t.rng 1.0 < p in
      if fires then incr (List.assoc kind t.injected);
      fires

(** An extra deterministic draw in [0, bound) — where in a batch a crash
    lands, which wire byte corruption flips. *)
let draw t bound = if bound <= 0 then 0 else Random.State.int t.rng bound

let injected t kind = !(List.assoc kind t.injected)

let total_injected t =
  List.fold_left (fun acc (_, r) -> acc + !r) 0 t.injected

(** Run [f] with fault injection suspended (nests). *)
let suspended t f =
  t.suspended <- t.suspended + 1;
  Fun.protect ~finally:(fun () -> t.suspended <- t.suspended - 1) f

let to_string t =
  String.concat ", "
    (List.filter_map
       (fun k ->
          let p = probability t.spec k in
          if p <= 0.0 then None
          else Some (Printf.sprintf "%s=%.0f%%" (kind_to_string k) (100. *. p)))
       all_kinds)
