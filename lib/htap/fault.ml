(** Deterministic fault injection for the cross-system bridge.

    Each fault kind fires independently with a configured probability from
    a dedicated seeded RNG, so a failing chaos run replays exactly from
    its seed regardless of how the surrounding workload perturbs other
    random state. *)

type kind = Drop | Duplicate | Reorder | Corrupt | Crash

let all_kinds = [ Drop; Duplicate; Reorder; Corrupt; Crash ]

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Corrupt -> "corrupt"
  | Crash -> "crash"

type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  crash : float;
}

let none = { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0.; crash = 0. }

let chaos ?(drop = 0.1) ?(duplicate = 0.1) ?(reorder = 0.1) ?(corrupt = 0.1)
    ?(crash = 0.1) () =
  { drop; duplicate; reorder; corrupt; crash }

let probability spec = function
  | Drop -> spec.drop
  | Duplicate -> spec.duplicate
  | Reorder -> spec.reorder
  | Corrupt -> spec.corrupt
  | Crash -> spec.crash

type t = {
  spec : spec;
  seed : int;
  rng : Random.State.t;
  mutable suspended : int;  (** > 0 = faults off (recovery, full resync) *)
  injected : (kind * int ref) list;
}

let create ?(seed = 0xC4A05) (spec : spec) : t =
  { spec; seed; rng = Random.State.make [| seed |]; suspended = 0;
    injected = List.map (fun k -> (k, ref 0)) all_kinds }

let seed t = t.seed
let spec t = t.spec

let active t = t.suspended = 0

(** Roll the dice for [kind]; counts the injection when it fires. While
    suspended, nothing fires and no randomness is consumed (so recovery
    does not perturb the replayable fault schedule). *)
let roll t kind : bool =
  if t.suspended > 0 then false
  else begin
    let p = probability t.spec kind in
    let fires = p > 0.0 && Random.State.float t.rng 1.0 < p in
    if fires then incr (List.assoc kind t.injected);
    fires
  end

(** An extra deterministic draw in [0, bound) — where in a batch a crash
    lands, which wire byte corruption flips. *)
let draw t bound = if bound <= 0 then 0 else Random.State.int t.rng bound

let injected t kind = !(List.assoc kind t.injected)

let total_injected t =
  List.fold_left (fun acc (_, r) -> acc + !r) 0 t.injected

(** Run [f] with fault injection suspended (nests). *)
let suspended t f =
  t.suspended <- t.suspended + 1;
  Fun.protect ~finally:(fun () -> t.suspended <- t.suspended - 1) f

let to_string t =
  String.concat ", "
    (List.filter_map
       (fun k ->
          let p = probability t.spec k in
          if p <= 0.0 then None
          else Some (Printf.sprintf "%s=%.0f%%" (kind_to_string k) (100. *. p)))
       all_kinds)
