(** Deterministic fault injection for the cross-system bridge: each fault
    kind fires with a configured probability from a dedicated seeded RNG,
    so a failing chaos run replays exactly from its seed. *)

type kind = Drop | Duplicate | Reorder | Corrupt | Crash

val all_kinds : kind list
val kind_to_string : kind -> string

(** Per-kind fire probabilities in [0, 1]. *)
type spec = {
  drop : float;       (** batch lost in transit *)
  duplicate : float;  (** batch delivered twice *)
  reorder : float;    (** batch held back, delivered after a later one *)
  corrupt : float;    (** a wire byte flipped (caught by the checksum) *)
  crash : float;      (** OLAP crashes mid-batch during apply *)
}

val none : spec

val chaos :
  ?drop:float -> ?duplicate:float -> ?reorder:float -> ?corrupt:float ->
  ?crash:float -> unit -> spec
(** Every knob defaults to 10%. *)

val probability : spec -> kind -> float

type t

val create : ?seed:int -> spec -> t
val seed : t -> int
val spec : t -> spec

val active : t -> bool
(** False while inside {!suspended}. *)

val roll : t -> kind -> bool
(** Fire [kind] with its configured probability; counts the injection.
    Always false (consuming no randomness) while suspended. *)

val draw : t -> int -> int
(** Deterministic draw in [0, bound): crash position, corrupted byte. *)

val injected : t -> kind -> int
(** Injections fired so far, per kind. *)

val total_injected : t -> int

val suspended : t -> (unit -> 'a) -> 'a
(** Run with fault injection off (recovery and full resync use this —
    modelling that a restarted pipeline retries over a healthy link). *)

val to_string : t -> string
(** Human-readable non-zero knobs, e.g. ["drop=10%, crash=5%"]. *)
