(** Deterministic fault injection for the cross-system bridge and the
    durable store: each fault kind fires with a configured probability
    from a dedicated seeded RNG, so a failing chaos run replays exactly
    from its seed. {!schedule} adds one-shot deterministic injections
    ("fire on the Nth roll") for crash-point replay. *)

type kind =
  | Drop               (** batch lost in transit *)
  | Duplicate          (** batch delivered twice *)
  | Reorder            (** batch held back, delivered after a later one *)
  | Corrupt            (** a wire byte flipped (caught by the checksum) *)
  | Crash              (** OLAP crashes mid-batch during apply *)
  | Torn_tail          (** WAL append crashes mid-payload (torn tail) *)
  | Truncated_record   (** WAL append crashes mid-header *)
  | Corrupt_record     (** a WAL byte flips on the way to disk, then crash *)
  | Chunk_crash        (** process killed at a backfill chunk boundary *)
  | Truncate_crash     (** killed between checkpoint and WAL truncation *)

exception Injected_crash
(** Raised by storage-fault injection sites to simulate the process dying
    with the file state exactly as written so far. *)

val wire_kinds : kind list
(** The five bridge faults (the historical set). *)

val storage_kinds : kind list
(** The five durable-store faults. *)

val all_kinds : kind list
val kind_to_string : kind -> string

(** Per-kind fire probabilities in [0, 1]. *)
type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  crash : float;
  torn_tail : float;
  truncated_record : float;
  corrupt_record : float;
  chunk_crash : float;
  truncate_crash : float;
}

val none : spec

val chaos :
  ?drop:float -> ?duplicate:float -> ?reorder:float -> ?corrupt:float ->
  ?crash:float -> unit -> spec
(** Every wire knob defaults to 10%; storage knobs stay off. *)

val storage_chaos :
  ?torn_tail:float -> ?truncated_record:float -> ?corrupt_record:float ->
  ?chunk_crash:float -> ?truncate_crash:float -> unit -> spec
(** Every storage knob defaults to 10%; wire knobs stay off. *)

val probability : spec -> kind -> float

type t

val create : ?seed:int -> spec -> t
val seed : t -> int
val spec : t -> spec

val active : t -> bool
(** False while inside {!suspended}. *)

val roll : t -> kind -> bool
(** Fire [kind] with its configured probability; counts the injection.
    Always false (consuming no randomness) while suspended. *)

val schedule : t -> kind -> after:int -> unit
(** Arm a deterministic one-shot: the ([after] + 1)-th {!roll} of [kind]
    fires regardless of probability, then disarms. Scheduled rolls consume
    no randomness. *)

val unschedule : t -> kind -> unit

val draw : t -> int -> int
(** Deterministic draw in [0, bound): crash position, corrupted byte. *)

val injected : t -> kind -> int
(** Injections fired so far, per kind. *)

val total_injected : t -> int

val suspended : t -> (unit -> 'a) -> 'a
(** Run with fault injection off (recovery and full resync use this —
    modelling that a restarted pipeline retries over a healthy link). *)

val to_string : t -> string
(** Human-readable non-zero knobs, e.g. ["drop=10%, crash=5%"]. *)
