(** The OLTP side of the cross-system pipeline (the paper's PostgreSQL).

    A second engine instance configured with a per-statement latency that
    models the client/server round trip an embedded engine does not pay,
    plus the paper's user-configured capture triggers: every change to a
    registered base table is appended to an OLTP-side delta table with the
    boolean multiplicity.

    Captured rows form an *outbox*: {!begin_batch} snapshots the pending
    rows under a fresh per-source sequence number but leaves them in the
    delta table; only {!ack} — called once the OLAP side has durably
    applied the batch — removes them. A lost or corrupted transmission
    therefore costs nothing: the next [begin_batch] returns the same
    batch for retry, and rows captured while a batch is in flight queue
    behind it. *)

open Openivm_engine

type capture = {
  base : string;
  delta : string;
  mutable rows_captured : int;
  mutable next_seq : int;                    (** next sequence to assign *)
  mutable inflight : (int * Row.t list) option;
      (** snapshotted batch awaiting acknowledgement; its rows are still
          the head of the delta table *)
}

type t = {
  db : Database.t;
  multiplicity_column : string;
  mutable captures : capture list;
}

(** [latency] — seconds added per statement (default models a local
    PostgreSQL round trip). *)
let create ?(name = "postgres") ?(latency = 20e-6)
    ?(multiplicity_column = "_ivm_multiplicity") () : t =
  let db = Database.create ~name () in
  Database.set_statement_latency db latency;
  { db; multiplicity_column; captures = [] }

let db t = t.db
let exec t sql = Database.exec t.db sql
let query t sql = Database.query t.db sql

let capture_of t base =
  match List.find_opt (fun c -> String.equal c.base base) t.captures with
  | Some c -> c
  | None -> Error.fail "no delta capture registered on table %S" base

(** Register delta capture on [base] into [delta] (created if missing) —
    the engine-side equivalent of installing the generated PostgreSQL
    trigger DDL. Registering the same base twice would install two
    triggers and double-capture every change, so it is an error. *)
let register_capture t ~(base : string) ~(delta : string) : unit =
  if List.exists (fun c -> String.equal c.base base) t.captures then
    Error.fail "delta capture already registered on table %S" base;
  let catalog = Database.catalog t.db in
  let base_tbl = Catalog.find_table catalog base in
  if not (Catalog.table_exists catalog delta) then begin
    let delta_schema =
      List.map (fun c -> { c with Schema.table = Some delta }) base_tbl.Table.schema
      @ [ Schema.column ~table:delta t.multiplicity_column Openivm_sql.Ast.T_bool ]
    in
    Catalog.add_table catalog
      (Table.create ~name:delta ~schema:delta_schema ~primary_key:[||])
  end;
  let cap = { base; delta; rows_captured = 0; next_seq = 1; inflight = None } in
  t.captures <- cap :: t.captures;
  Trigger.register (Database.triggers t.db) ~table:base
    ~name:("openivm_capture_" ^ base ^ "_" ^ delta)
    (fun change ->
       let delta_tbl = Catalog.find_table catalog delta in
       Trigger.without_hooks (Database.triggers t.db) (fun () ->
           let emit mult row =
             Table.insert delta_tbl (Array.append row [| Value.Bool mult |]);
             cap.rows_captured <- cap.rows_captured + 1
           in
           List.iter (emit false) change.Trigger.deleted;
           List.iter (emit true) change.Trigger.inserted))

let delta_table_of t base =
  let cap = capture_of t base in
  Catalog.find_table (Database.catalog t.db) cap.delta

(** The unacknowledged outbox batch for [base], snapshotting pending rows
    under a fresh sequence number if none is in flight. Rows stay in the
    delta table until {!ack}; repeated calls return the same batch until
    then (the retry/replay path). [None] = nothing to ship. *)
let begin_batch t ~(base : string) : (int * Row.t list) option =
  let cap = capture_of t base in
  match cap.inflight with
  | Some _ as b -> b
  | None ->
    let rows = Table.to_rows (delta_table_of t base) in
    if rows = [] then None
    else begin
      let seq = cap.next_seq in
      cap.next_seq <- seq + 1;
      cap.inflight <- Some (seq, rows);
      cap.inflight
    end

let inflight_seq t ~(base : string) : int option =
  Option.map fst (capture_of t base).inflight

(** Acknowledge batch [seq]: remove exactly its rows (the oldest captured)
    from the delta table and clear the in-flight slot. Idempotent — acks
    for already-acknowledged sequence numbers (duplicate deliveries) are
    no-ops. *)
let ack t ~(base : string) ~(seq : int) : unit =
  let cap = capture_of t base in
  match cap.inflight with
  | Some (s, rows) when s = seq ->
    let delta_tbl = delta_table_of t base in
    let n = List.length rows in
    let slots = ref [] in
    let k = ref 0 in
    Table.iter_slots
      (fun slot _ -> if !k < n then begin slots := slot :: !slots; incr k end)
      delta_tbl;
    List.iter (fun slot -> ignore (Table.delete_slot delta_tbl slot)) !slots;
    cap.inflight <- None
  | _ -> ()

(** Abandon the outbox for [base] — in-flight batch forgotten, captured
    rows discarded (they are covered by the base table a full resync
    copies). Returns the watermark the OLAP side must record so the next
    batch ([next_seq]) arrives as exactly watermark + 1. *)
let reset_outbox t ~(base : string) : int =
  let cap = capture_of t base in
  cap.inflight <- None;
  ignore (Table.truncate (delta_table_of t base));
  cap.next_seq - 1

(** Drain the delta rows captured for [base] (returns them and clears the
    OLTP-side delta table). The legacy fire-and-forget path: rows are gone
    whether or not the caller lands them anywhere — prefer
    {!begin_batch}/{!ack}. *)
let drain t ~(base : string) : Row.t list =
  let rec go acc =
    match begin_batch t ~base with
    | None -> List.concat (List.rev acc)
    | Some (seq, rows) ->
      ack t ~base ~seq;
      go (rows :: acc)
  in
  go []

let pending t ~base =
  let cap = capture_of t base in
  Table.row_count (Catalog.find_table (Database.catalog t.db) cap.delta)
