(** The OLTP side of the cross-system pipeline (the paper's PostgreSQL).

    A second engine instance configured with a per-statement latency that
    models the client/server round trip an embedded engine does not pay,
    plus the paper's user-configured capture triggers: every change to a
    registered base table is appended to an OLTP-side delta table with the
    boolean multiplicity. *)

open Openivm_engine

type capture = {
  base : string;
  delta : string;
  mutable rows_captured : int;
}

type t = {
  db : Database.t;
  multiplicity_column : string;
  mutable captures : capture list;
}

(** [latency] — seconds added per statement (default models a local
    PostgreSQL round trip). *)
let create ?(name = "postgres") ?(latency = 20e-6)
    ?(multiplicity_column = "_ivm_multiplicity") () : t =
  let db = Database.create ~name () in
  Database.set_statement_latency db latency;
  { db; multiplicity_column; captures = [] }

let db t = t.db
let exec t sql = Database.exec t.db sql
let query t sql = Database.query t.db sql

let capture_of t base =
  match List.find_opt (fun c -> String.equal c.base base) t.captures with
  | Some c -> c
  | None -> Error.fail "no delta capture registered on table %S" base

(** Register delta capture on [base] into [delta] (created if missing) —
    the engine-side equivalent of installing the generated PostgreSQL
    trigger DDL. *)
let register_capture t ~(base : string) ~(delta : string) : unit =
  let catalog = Database.catalog t.db in
  let base_tbl = Catalog.find_table catalog base in
  if not (Catalog.table_exists catalog delta) then begin
    let delta_schema =
      List.map (fun c -> { c with Schema.table = Some delta }) base_tbl.Table.schema
      @ [ Schema.column ~table:delta t.multiplicity_column Openivm_sql.Ast.T_bool ]
    in
    Catalog.add_table catalog
      (Table.create ~name:delta ~schema:delta_schema ~primary_key:[||])
  end;
  let cap = { base; delta; rows_captured = 0 } in
  t.captures <- cap :: t.captures;
  Trigger.register (Database.triggers t.db) ~table:base
    ~name:("openivm_capture_" ^ base ^ "_" ^ delta)
    (fun change ->
       let delta_tbl = Catalog.find_table catalog delta in
       Trigger.without_hooks (Database.triggers t.db) (fun () ->
           let emit mult row =
             Table.insert delta_tbl (Array.append row [| Value.Bool mult |]);
             cap.rows_captured <- cap.rows_captured + 1
           in
           List.iter (emit false) change.Trigger.deleted;
           List.iter (emit true) change.Trigger.inserted))

(** Drain the delta rows captured for [base] (returns them and clears the
    OLTP-side delta table). *)
let drain t ~(base : string) : Row.t list =
  let cap = capture_of t base in
  let catalog = Database.catalog t.db in
  let delta_tbl = Catalog.find_table catalog cap.delta in
  let rows = Table.to_rows delta_tbl in
  ignore (Table.truncate delta_tbl);
  rows

let pending t ~base =
  let cap = capture_of t base in
  Table.row_count (Catalog.find_table (Database.catalog t.db) cap.delta)
