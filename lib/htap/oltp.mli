(** The OLTP side of the cross-system pipeline (the paper's PostgreSQL): a
    second engine instance with per-statement latency plus delta-capture
    triggers appending multiplicity-tagged row images into delta tables,
    managed as an acknowledge-then-truncate outbox. *)

open Openivm_engine

type t

val create :
  ?name:string -> ?latency:float -> ?multiplicity_column:string -> unit -> t
(** [latency] (seconds per statement) models the client/server round trip;
    defaults to 20µs. *)

val db : t -> Database.t
val exec : t -> string -> Database.exec_result
val query : t -> string -> Database.query_result

val register_capture : t -> base:string -> delta:string -> unit
(** Install the engine-side equivalent of the generated PostgreSQL capture
    trigger: changes to [base] append OLD/NEW images into [delta] (created
    if missing) with the boolean multiplicity. Raises {!Error.Sql_error}
    if [base] already has a capture — a second trigger would double-
    capture every change. *)

(** {1 Outbox protocol (exactly-once delivery)} *)

val begin_batch : t -> base:string -> (int * Row.t list) option
(** The unacknowledged outbox batch for [base]: (sequence number, rows).
    Snapshots the pending captured rows under a fresh per-source sequence
    number on first call; repeated calls return the same batch until
    {!ack} — the retry/replay path. Rows stay in the delta table until
    acknowledged. [None] = nothing to ship. *)

val ack : t -> base:string -> seq:int -> unit
(** The OLAP side durably applied batch [seq]: remove its rows from the
    delta table and clear the in-flight slot. Idempotent (duplicate acks
    are no-ops). *)

val inflight_seq : t -> base:string -> int option
(** Sequence number of the batch awaiting acknowledgement, if any. *)

val reset_outbox : t -> base:string -> int
(** Abandon in-flight and captured rows for [base] (full resync copies the
    base table instead); returns the watermark the OLAP side must record
    so the next assigned batch arrives as watermark + 1. *)

(** {1 Legacy} *)

val drain : t -> base:string -> Row.t list
(** Return and clear the captured delta rows for [base] — fire-and-forget:
    the rows are gone whether or not they land anywhere. Prefer
    {!begin_batch}/{!ack}. *)

val pending : t -> base:string -> int
