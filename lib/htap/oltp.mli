(** The OLTP side of the cross-system pipeline (the paper's PostgreSQL): a
    second engine instance with per-statement latency plus delta-capture
    triggers appending multiplicity-tagged row images into delta tables. *)

open Openivm_engine

type t

val create :
  ?name:string -> ?latency:float -> ?multiplicity_column:string -> unit -> t
(** [latency] (seconds per statement) models the client/server round trip;
    defaults to 20µs. *)

val db : t -> Database.t
val exec : t -> string -> Database.exec_result
val query : t -> string -> Database.query_result

val register_capture : t -> base:string -> delta:string -> unit
(** Install the engine-side equivalent of the generated PostgreSQL capture
    trigger: changes to [base] append OLD/NEW images into [delta] (created
    if missing) with the boolean multiplicity. *)

val drain : t -> base:string -> Row.t list
(** Return and clear the captured delta rows for [base]. *)

val pending : t -> base:string -> int
