(** Cross-system IVM orchestration (paper Figure 3): a transactional
    workload runs against the OLTP engine; captured deltas travel over the
    bridge into the OLAP engine's delta tables; the compiled propagation
    script folds them into the materialized view.

    Views whose propagation reads base tables (joins, MIN/MAX rederive)
    additionally need OLAP-side *replicas* of the base tables — the stand-
    in for the paper's DuckDB-reads-PostgreSQL scanner; the bridge keeps
    them in sync from the same delta stream. *)

open Openivm_engine

type t = {
  oltp : Oltp.t;
  olap : Database.t;
  bridge : Bridge.t;
  view : Openivm.Runner.view;
  base_tables : string list;
  needs_replica : bool;
  mutable syncs : int;
}

let view t = t.view
let olap t = t.olap
let oltp t = t.oltp

(** Does the propagation script reference the base tables on the OLAP
    side? Linear single-table scripts touch only delta tables. *)
let propagation_needs_base (compiled : Openivm.Compiler.t) : bool =
  match compiled.Openivm.Compiler.script.Openivm.Propagate.kind with
  | Openivm.Propagate.Linear | Openivm.Propagate.Regroup
  | Openivm.Propagate.Outer_merge | Openivm.Propagate.Global_linear ->
    (match compiled.Openivm.Compiler.shape.Openivm.Shape.source with
     | Openivm.Shape.Single _ -> false
     | Openivm.Shape.Joined _ -> true)
  | Openivm.Propagate.Rederive | Openivm.Propagate.Full -> true

(** Set up the pipeline: [schema_sql] (CREATE TABLEs) runs on both sides;
    [view_sql] is compiled and installed on the OLAP side; capture
    triggers are registered on the OLTP side. *)
let create ?(flags = Openivm.Flags.default) ?oltp_latency ?bridge
    ~(schema_sql : string) ~(view_sql : string) () : t =
  let oltp = Oltp.create ?latency:oltp_latency () in
  let olap = Database.create ~name:"duckdb" () in
  let bridge = match bridge with Some b -> b | None -> Bridge.create () in
  ignore (Database.exec_script (Oltp.db oltp) schema_sql);
  (* base tables also exist on the OLAP side: empty replicas when the
     propagation needs them, or mere schema stubs for compilation *)
  ignore (Database.exec_script olap schema_sql);
  let v = Openivm.Runner.install ~flags olap view_sql in
  (* deltas arrive via the bridge, not via OLAP-side capture *)
  v.Openivm.Runner.capture_enabled <- false;
  let base_tables = Openivm.Compiler.base_tables v.Openivm.Runner.compiled in
  List.iter
    (fun base ->
       Oltp.register_capture oltp ~base
         ~delta:(Openivm.Compiler.delta_table v.Openivm.Runner.compiled base))
    base_tables;
  { oltp; olap; bridge; view = v; base_tables;
    needs_replica = propagation_needs_base v.Openivm.Runner.compiled;
    syncs = 0 }

(** Apply one shipped delta row (base row + multiplicity) to the OLAP
    replica of [base]: insert on true, remove one matching row on false. *)
let apply_to_replica t ~(base : string) (delta_row : Row.t) : unit =
  let catalog = Database.catalog t.olap in
  let tbl = Catalog.find_table catalog base in
  let arity = Array.length delta_row - 1 in
  let image = Array.sub delta_row 0 arity in
  match delta_row.(arity) with
  | Value.Bool true -> Table.insert tbl image
  | Value.Bool false ->
    (* remove a single occurrence *)
    let found = ref None in
    Table.iter_slots
      (fun slot row -> if !found = None && Row.equal row image then found := Some slot)
      tbl;
    (match !found with
     | Some slot -> ignore (Table.delete_slot tbl slot)
     | None -> ())
  | _ -> Error.fail "delta row without boolean multiplicity"

(** Move pending deltas OLTP → OLAP (serialize, pay the wire, land them in
    the OLAP delta tables and replicas). *)
let sync t : int =
  let moved = ref 0 in
  let catalog = Database.catalog t.olap in
  Trigger.without_hooks (Database.triggers t.olap) (fun () ->
      List.iter
        (fun base ->
           let rows = Oltp.drain t.oltp ~base in
           if rows <> [] then begin
             let landed = Bridge.ship t.bridge rows in
             let delta_name =
               Openivm.Compiler.delta_table t.view.Openivm.Runner.compiled base
             in
             let delta_tbl = Catalog.find_table catalog delta_name in
             List.iter
               (fun row ->
                  Table.insert delta_tbl row;
                  if t.needs_replica then apply_to_replica t ~base row)
               landed;
             moved := !moved + List.length landed
           end)
        t.base_tables);
  if !moved > 0 then
    t.view.Openivm.Runner.pending_deltas <-
      t.view.Openivm.Runner.pending_deltas + !moved;
  t.syncs <- t.syncs + 1;
  !moved

(** Run a transactional statement on the OLTP side. *)
let exec_oltp t sql = Oltp.exec t.oltp sql

(** Query the materialized view: sync the bridge, lazily refresh, read. *)
let query t (sql : string) : Database.query_result =
  ignore (sync t);
  Openivm.Runner.query t.view sql

let view_contents ?order_by t : Database.query_result =
  ignore (sync t);
  Openivm.Runner.contents ?order_by t.view

(** The non-IVM cross-system baseline: ship the *entire* base tables over
    the bridge into scratch tables and recompute the defining query — what
    running the analytical query through a remote scanner costs. *)
let query_without_ivm t : Database.query_result =
  let scratch = Database.create ~name:"duckdb_scratch" () in
  let catalog = Database.catalog (Oltp.db t.oltp) in
  List.iter
    (fun base ->
       let tbl = Catalog.find_table catalog base in
       let schema =
         List.map (fun c -> { c with Schema.table = Some base }) tbl.Table.schema
       in
       Catalog.add_table (Database.catalog scratch)
         (Table.create ~name:base ~schema ~primary_key:[||]);
       let shipped = Bridge.ship t.bridge (Table.to_rows tbl) in
       let dst = Catalog.find_table (Database.catalog scratch) base in
       List.iter (Table.insert dst) shipped)
    t.base_tables;
  let view_query =
    t.view.Openivm.Runner.compiled.Openivm.Compiler.shape.Openivm.Shape.query
  in
  Database.query scratch
    (Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb view_query)
