(** Cross-system IVM orchestration (paper Figure 3): a transactional
    workload runs against the OLTP engine; captured deltas travel over the
    bridge into the OLAP engine's delta tables; the compiled propagation
    script folds them into the materialized view.

    Views whose propagation reads base tables (joins, MIN/MAX rederive)
    additionally need OLAP-side *replicas* of the base tables — the stand-
    in for the paper's DuckDB-reads-PostgreSQL scanner; the bridge keeps
    them in sync from the same delta stream.

    Delivery is exactly-once end to end: the OLTP side keeps captured rows
    in an outbox until acknowledged ({!Oltp.begin_batch}/{!Oltp.ack}), the
    OLAP side records per-source watermarks in
    [_openivm_bridge_watermarks] so duplicated or replayed batches are
    no-ops, each batch lands in the delta table and replica all-or-nothing
    (in-memory snapshot rollback on a mid-apply crash), and dropped
    batches are retried with exponential backoff. {!recover} replays
    unacknowledged traffic after a simulated OLAP crash, falling back to a
    full resync from the base tables. *)

open Openivm_engine
module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics

let m_batches_applied =
  Metrics.counter "bridge_batches_applied_total"
    ~help:"delta batches landed on the OLAP side"

let m_rows_applied =
  Metrics.counter "bridge_rows_applied_total"
    ~help:"delta rows landed on the OLAP side"

let m_retries =
  Metrics.counter "bridge_retries_total"
    ~help:"resends of an unacknowledged batch"

let m_sync_seconds =
  Metrics.histogram "pipeline_sync_seconds"
    ~help:"wall-clock per Pipeline.sync call"

let m_recover_seconds phase =
  Metrics.histogram "pipeline_recover_seconds"
    ~help:"wall-clock per recovery phase" ~labels:[ ("phase", phase) ]

type stats = {
  mutable retries : int;          (** resends of an unacknowledged batch *)
  mutable deduped : int;          (** duplicate batches skipped by watermark *)
  mutable checksum_failures : int;(** corrupted batches detected and discarded *)
  mutable gaps : int;             (** out-of-order batches ahead of the watermark *)
  mutable crashes : int;          (** mid-apply crashes injected (rolled back) *)
  mutable batches_applied : int;
  mutable rows_applied : int;
  mutable replica_misses : int;   (** replica deletions that found no row *)
  mutable recoveries : int;
  mutable resyncs : int;          (** full rebuilds from base tables *)
}

let fresh_stats () =
  { retries = 0; deduped = 0; checksum_failures = 0; gaps = 0; crashes = 0;
    batches_applied = 0; rows_applied = 0; replica_misses = 0;
    recoveries = 0; resyncs = 0 }

type t = {
  oltp : Oltp.t;
  olap : Database.t;
  bridge : Bridge.t;
  view : Openivm.Runner.view;
  base_tables : string list;
  needs_replica : bool;
  strict_replica : bool;
  max_retries : int;
  backoff_base : float;
  on_apply :
    (source:string -> seq:int -> replica:bool -> Row.t list -> unit) option;
  stats : stats;
  mutable crashed : bool;
  mutable syncs : int;
}

let view t = t.view
let olap t = t.olap
let oltp t = t.oltp
let stats t = t.stats
let crashed t = t.crashed

exception Olap_crash

(** Does the propagation script reference the base tables on the OLAP
    side? Linear single-table scripts touch only delta tables. *)
let propagation_needs_base (compiled : Openivm.Compiler.t) : bool =
  match compiled.Openivm.Compiler.script.Openivm.Propagate.kind with
  | Openivm.Propagate.Linear | Openivm.Propagate.Regroup
  | Openivm.Propagate.Outer_merge | Openivm.Propagate.Global_linear ->
    (match compiled.Openivm.Compiler.shape.Openivm.Shape.source with
     | Openivm.Shape.Single _ -> false
     | Openivm.Shape.Joined _ -> true)
  | Openivm.Propagate.Rederive | Openivm.Propagate.Full -> true

(** Set up the pipeline: [schema_sql] (CREATE TABLEs) runs on both sides;
    [view_sql] is compiled and installed on the OLAP side; capture
    triggers are registered on the OLTP side. [strict_replica] turns a
    replica deletion that finds no matching row (silent divergence) into
    an error instead of a counted miss.

    [olap]/[view] attach the pipeline to an existing OLAP database (a
    durable store recovered from disk): the schema and view already exist
    there, so neither is created again. [on_apply] is the durability
    hook — called after a batch landed and its watermark advanced, but
    {e before} the outbox acknowledgement, so a store journaling the
    batch that then dies leaves the batch unacknowledged and redelivery
    (deduplicated by the watermark) preserves exactly-once. *)
let create ?(flags = Openivm.Flags.default) ?oltp_latency ?bridge
    ?(strict_replica = false) ?(max_retries = 8) ?(backoff_base = 50e-6)
    ?olap ?view ?on_apply
    ~(schema_sql : string) ~(view_sql : string) () : t =
  let oltp = Oltp.create ?latency:oltp_latency () in
  let olap =
    match olap with
    | Some db -> db
    | None -> Database.create ~name:"duckdb" ()
  in
  let bridge = match bridge with Some b -> b | None -> Bridge.create () in
  ignore (Database.exec_script (Oltp.db oltp) schema_sql);
  (* base tables also exist on the OLAP side: empty replicas when the
     propagation needs them, or mere schema stubs for compilation —
     unless we are attaching to a database that already has them *)
  if view = None then ignore (Database.exec_script olap schema_sql);
  let v =
    match view with
    | Some v -> v
    | None -> Openivm.Runner.install ~flags olap view_sql
  in
  (* deltas arrive via the bridge, not via OLAP-side capture *)
  v.Openivm.Runner.capture_enabled <- false;
  (* the watermark ledger ships with Metadata.ddl, but older databases may
     predate it — installing is idempotent *)
  List.iter
    (fun stmt -> ignore (Database.exec_stmt olap stmt))
    Openivm.Metadata.watermark_ddl;
  let base_tables = Openivm.Compiler.base_tables v.Openivm.Runner.compiled in
  List.iter
    (fun base ->
       Oltp.register_capture oltp ~base
         ~delta:(Openivm.Compiler.delta_table v.Openivm.Runner.compiled base))
    base_tables;
  { oltp; olap; bridge; view = v; base_tables;
    needs_replica = propagation_needs_base v.Openivm.Runner.compiled;
    strict_replica; max_retries; backoff_base; on_apply;
    stats = fresh_stats (); crashed = false; syncs = 0 }

(* --- watermarks (idempotent apply) --- *)

let watermark t (source : string) : int =
  match
    (Database.query t.olap (Openivm.Metadata.watermark_query ~source)).Database.rows
  with
  | [| Value.Int n |] :: _ -> n
  | _ -> 0

let set_watermark t (source : string) (seq : int) : unit =
  List.iter
    (fun stmt -> ignore (Database.exec_stmt t.olap stmt))
    (Openivm.Metadata.set_watermark ~source ~seq)

(** Apply one shipped delta row (base row + multiplicity) to the OLAP
    replica of [base]: insert on true, remove one matching row on false.
    A deletion that finds no matching row means the replica has diverged:
    counted in [stats.replica_misses], an error under [strict_replica]. *)
let apply_to_replica t ~(base : string) (delta_row : Row.t) : unit =
  let catalog = Database.catalog t.olap in
  let tbl = Catalog.find_table catalog base in
  let arity = Array.length delta_row - 1 in
  let image = Array.sub delta_row 0 arity in
  match delta_row.(arity) with
  | Value.Bool true -> Table.insert tbl image
  | Value.Bool false ->
    (* remove a single occurrence *)
    let found = ref None in
    Table.iter_slots
      (fun slot row -> if !found = None && Row.equal row image then found := Some slot)
      tbl;
    (match !found with
     | Some slot -> ignore (Table.delete_slot tbl slot)
     | None ->
       t.stats.replica_misses <- t.stats.replica_misses + 1;
       if t.strict_replica then
         Error.fail "replica of %S diverged: deletion found no row %s" base
           (Row.to_string image))
  | _ -> Error.fail "delta row without boolean multiplicity"

(* --- transactional batch apply --- *)

(** Land a verified, in-order batch: every row into the OLAP delta table
    (and replica), then advance the watermark and acknowledge to the OLTP
    outbox. All-or-nothing — an injected mid-apply crash restores the
    snapshot of both tables, leaves the watermark untouched and marks the
    OLAP side down; the batch stays in the outbox for {!recover}. *)
let apply_batch t ~(source : string) ~(seq : int) (rows : Row.t list) : unit =
  let catalog = Database.catalog t.olap in
  let delta_name =
    Openivm.Compiler.delta_table t.view.Openivm.Runner.compiled source
  in
  let delta_tbl = Catalog.find_table catalog delta_name in
  let guarded = delta_name :: (if t.needs_replica then [ source ] else []) in
  let memo = Snapshot.capture t.olap ~tables:guarded in
  let n = List.length rows in
  let crash_at =
    if Fault.roll (Bridge.faults t.bridge) Fault.Crash then
      Some (Fault.draw (Bridge.faults t.bridge) (n + 1))
    else None
  in
  try
    List.iteri
      (fun i row ->
         if crash_at = Some i then raise Olap_crash;
         Table.insert delta_tbl row;
         if t.needs_replica then apply_to_replica t ~base:source row)
      rows;
    if crash_at = Some n then raise Olap_crash;
    set_watermark t source seq;
    t.view.Openivm.Runner.pending_deltas <-
      t.view.Openivm.Runner.pending_deltas + n;
    (* durability hook between watermark and ack: if journaling dies here
       the batch stays in the outbox, and on redelivery the recovered
       watermark (advanced iff the journal record survived) dedupes it *)
    (match t.on_apply with
     | Some f -> f ~source ~seq ~replica:t.needs_replica rows
     | None -> ());
    Oltp.ack t.oltp ~base:source ~seq;
    t.stats.batches_applied <- t.stats.batches_applied + 1;
    t.stats.rows_applied <- t.stats.rows_applied + n;
    Metrics.incr m_batches_applied;
    Metrics.add m_rows_applied n
  with Olap_crash ->
    Snapshot.restore t.olap memo;
    t.crashed <- true;
    t.stats.crashes <- t.stats.crashes + 1

(** One batch arriving at the OLAP side. Corrupted batches are discarded
    (the sender retries); batches at or below the watermark are duplicates
    and only re-acknowledged; batches beyond watermark + 1 (out-of-order
    arrivals) wait for their predecessor. *)
let receive t (b : Bridge.batch) : unit =
  if t.crashed then ()  (* arrives at a downed OLAP: lost; sender retries *)
  else if not (Bridge.verify b) then
    t.stats.checksum_failures <- t.stats.checksum_failures + 1
  else begin
    let wm = watermark t b.Bridge.source in
    if b.Bridge.seq <= wm then begin
      t.stats.deduped <- t.stats.deduped + 1;
      Oltp.ack t.oltp ~base:b.Bridge.source ~seq:b.Bridge.seq
    end
    else if b.Bridge.seq > wm + 1 then t.stats.gaps <- t.stats.gaps + 1
    else
      apply_batch t ~source:b.Bridge.source ~seq:b.Bridge.seq
        (Bridge.batch_rows b)
  end

(* --- sync: outbox → wire → idempotent apply, with bounded retry --- *)

let backoff t tries =
  Bridge.busy_wait (t.backoff_base *. (2. ** float_of_int tries))

(** Ship the outbox of [base] until empty or the retry budget is spent.
    Each attempt resends the current unacknowledged batch; deliveries
    (including late out-of-order arrivals for other sources) are applied
    idempotently. *)
let sync_base t (base : string) : unit =
  let rec go tries =
    if not t.crashed then
      match Oltp.begin_batch t.oltp ~base with
      | None -> ()
      | Some (seq, rows) ->
        let batch = Bridge.make_batch ~source:base ~seq rows in
        List.iter (receive t) (Bridge.send t.bridge batch);
        if t.crashed then ()
        else if Oltp.inflight_seq t.oltp ~base = Some seq then begin
          (* not acknowledged: dropped, corrupted or held back *)
          if tries < t.max_retries then begin
            t.stats.retries <- t.stats.retries + 1;
            Metrics.incr m_retries;
            backoff t tries;
            go (tries + 1)
          end
          (* retry budget spent: the batch stays in the outbox for the
             next sync / recover *)
        end
        else go 0
  in
  go 0

(** Move pending deltas OLTP → OLAP (serialize, pay the wire, land them in
    the OLAP delta tables and replicas, exactly once). Returns the number
    of delta rows applied during this call. A no-op while the OLAP side is
    down ({!crashed}) — deltas keep accumulating in the outbox. *)
let sync t : int =
  let rows_before = t.stats.rows_applied in
  let t0 = Unix.gettimeofday () in
  Span.with_span "bridge.sync" (fun sp ->
      if not t.crashed then
        Trigger.without_hooks (Database.triggers t.olap) (fun () ->
            List.iter
              (fun base ->
                 Span.with_span "bridge.ship"
                   ~attrs:[ ("table", Span.Str base) ]
                   (fun _ -> sync_base t base))
              t.base_tables);
      if sp != Span.none then
        Span.set_int sp "rows_applied" (t.stats.rows_applied - rows_before));
  Metrics.observe m_sync_seconds (Unix.gettimeofday () -. t0);
  t.syncs <- t.syncs + 1;
  t.stats.rows_applied - rows_before

(** Run a transactional statement on the OLTP side. *)
let exec_oltp t sql = Oltp.exec t.oltp sql

let ensure_up t what =
  if t.crashed then
    Error.fail "pipeline: OLAP side is down (crash injected) — run \
                Pipeline.recover before %s" what

(** Query the materialized view: sync the bridge, lazily refresh, read. *)
let query t (sql : string) : Database.query_result =
  ensure_up t "querying";
  ignore (sync t);
  ensure_up t "querying";
  Openivm.Runner.query t.view sql

let view_contents ?order_by t : Database.query_result =
  ensure_up t "reading the view";
  ignore (sync t);
  ensure_up t "reading the view";
  Openivm.Runner.contents ?order_by t.view

(* --- convergence check --- *)

(** The view's visible contents as sorted row strings: hidden bookkeeping
    columns stripped, flat (weighted) views expanded back to bags. *)
let visible_view_rows t : string list =
  let shape = t.view.Openivm.Runner.compiled.Openivm.Compiler.shape in
  let visible = Openivm.Shape.visible_names shape in
  let flat = not (Openivm.Shape.has_aggregates shape) in
  let cols =
    if flat then visible @ [ Openivm.Shape.count_column ] else visible
  in
  Openivm.Runner.refresh t.view;
  let r =
    Database.query t.olap
      (Printf.sprintf "SELECT %s FROM %s"
         (String.concat ", " cols)
         (Openivm.Runner.view_name t.view))
  in
  let rows =
    if flat then
      List.concat_map
        (fun (row : Row.t) ->
           let n = Array.length row - 1 in
           let weight = match row.(n) with Value.Int w -> w | _ -> 1 in
           List.init weight (fun _ -> Row.to_string (Array.sub row 0 n)))
        r.Database.rows
    else List.map Row.to_string r.Database.rows
  in
  List.sort String.compare rows

(** Ground truth: the defining query recomputed directly over the OLTP
    base tables (no bridge involved). *)
let ground_truth_rows t : string list =
  let shape = t.view.Openivm.Runner.compiled.Openivm.Compiler.shape in
  let r =
    Database.query (Oltp.db t.oltp)
      (Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb
         shape.Openivm.Shape.query)
  in
  List.sort String.compare (List.map Row.to_string r.Database.rows)

(** Does the materialized view agree exactly with recomputing its defining
    query over the current OLTP state? (Requires all deltas shipped —
    callers sync first.) *)
let verify t : bool =
  (not t.crashed) && visible_view_rows t = ground_truth_rows t

(* --- crash recovery --- *)

(** Rebuild the OLAP side from scratch over a healthy link: abandon
    outboxes and in-flight traffic, copy every base table across the
    bridge into its OLAP replica, rerun the view's initial load, and
    fast-forward the watermarks. The recovery path of last resort —
    equivalent to the paper's non-IVM baseline, paid once. *)
let full_resync t : unit =
  t.stats.resyncs <- t.stats.resyncs + 1;
  t.crashed <- false;
  Fault.suspended (Bridge.faults t.bridge) (fun () ->
      ignore (Bridge.discard_in_flight t.bridge);
      Trigger.without_hooks (Database.triggers t.olap) (fun () ->
          let olap_catalog = Database.catalog t.olap in
          let oltp_catalog = Database.catalog (Oltp.db t.oltp) in
          List.iter
            (fun base ->
               let wm = Oltp.reset_outbox t.oltp ~base in
               let dst = Catalog.find_table olap_catalog base in
               ignore (Table.truncate dst);
               let rows = Table.to_rows (Catalog.find_table oltp_catalog base) in
               List.iter (Table.insert dst) (Bridge.ship t.bridge rows);
               set_watermark t base wm)
            t.base_tables;
          Openivm.Runner.reinitialize t.view))

type recovery = {
  replayed : int;   (** outbox batches landed by replay *)
  resynced : bool;  (** replay was not enough: rebuilt from base tables *)
  converged : bool; (** view = full recompute afterwards *)
  phases : (string * float) list;
      (** per-phase wall-clock seconds, in execution order:
          drain, replay, verify, then (only when needed) resync and
          reverify *)
}

let pp_phases (r : recovery) : string list =
  List.map
    (fun (name, dt) ->
       Printf.sprintf "recover-phase phase=%s seconds=%.6f" name dt)
    r.phases

(** Bring a crashed (or merely lagging) pipeline back to a verified-
    consistent state. The recovery ladder: (1) drain batches still in the
    pipe, (2) replay unacknowledged outbox batches over a healthy link —
    idempotent apply makes replays of already-landed batches no-ops —
    and (3) if the view still disagrees with the ground truth, full
    resync from the base tables.

    [log] receives one structured [recover-phase phase=... seconds=...]
    line per phase as it completes, so soak harnesses can show where
    recovery time went. *)
let recover ?(log = ignore) t : recovery =
  t.stats.recoveries <- t.stats.recoveries + 1;
  t.crashed <- false;
  let phases = ref [] in
  let phase name f =
    let t0 = Unix.gettimeofday () in
    let r = Span.with_span ("recover." ^ name) (fun _ -> f ()) in
    let dt = Unix.gettimeofday () -. t0 in
    phases := (name, dt) :: !phases;
    Metrics.observe (m_recover_seconds name) dt;
    log (Printf.sprintf "recover-phase phase=%s seconds=%.6f" name dt);
    r
  in
  let applied_before = t.stats.batches_applied in
  (* a restarted pipeline retries over a healthy link: injection off *)
  Fault.suspended (Bridge.faults t.bridge) (fun () ->
      Trigger.without_hooks (Database.triggers t.olap) (fun () ->
          phase "drain" (fun () ->
              List.iter (receive t) (Bridge.flush t.bridge));
          phase "replay" (fun () ->
              List.iter (sync_base t) t.base_tables)));
  let replayed = t.stats.batches_applied - applied_before in
  if phase "verify" (fun () -> verify t) then
    { replayed; resynced = false; converged = true;
      phases = List.rev !phases }
  else begin
    phase "resync" (fun () -> full_resync t);
    let converged = phase "reverify" (fun () -> verify t) in
    { replayed; resynced = true; converged; phases = List.rev !phases }
  end

(** The non-IVM cross-system baseline: ship the *entire* base tables over
    the bridge into scratch tables and recompute the defining query — what
    running the analytical query through a remote scanner costs. *)
let query_without_ivm t : Database.query_result =
  let scratch = Database.create ~name:"duckdb_scratch" () in
  let catalog = Database.catalog (Oltp.db t.oltp) in
  List.iter
    (fun base ->
       let tbl = Catalog.find_table catalog base in
       let schema =
         List.map (fun c -> { c with Schema.table = Some base }) tbl.Table.schema
       in
       Catalog.add_table (Database.catalog scratch)
         (Table.create ~name:base ~schema ~primary_key:[||]);
       let shipped = Bridge.ship t.bridge (Table.to_rows tbl) in
       let dst = Catalog.find_table (Database.catalog scratch) base in
       List.iter (Table.insert dst) shipped)
    t.base_tables;
  let view_query =
    t.view.Openivm.Runner.compiled.Openivm.Compiler.shape.Openivm.Shape.query
  in
  Database.query scratch
    (Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb view_query)
