(** Cross-system IVM orchestration (paper Figure 3): a transactional
    workload runs against the OLTP engine; captured deltas travel over the
    bridge into the OLAP engine's delta tables; the compiled propagation
    script folds them into the materialized view. Views whose propagation
    reads base tables (joins, MIN/MAX rederivation) additionally keep
    OLAP-side replicas in sync from the same delta stream.

    Delivery is exactly-once end to end: OLTP-side acknowledge-then-
    truncate outbox, per-source watermarks in [_openivm_bridge_watermarks]
    making duplicate/replayed batches no-ops, all-or-nothing batch apply
    with snapshot rollback, bounded retry with exponential backoff, and a
    {!recover} ladder (drain → replay → full resync) after a simulated
    OLAP crash. *)

open Openivm_engine

(** Delivery and recovery counters (all cumulative). *)
type stats = {
  mutable retries : int;          (** resends of an unacknowledged batch *)
  mutable deduped : int;          (** duplicate batches skipped by watermark *)
  mutable checksum_failures : int;(** corrupted batches detected, discarded *)
  mutable gaps : int;             (** out-of-order arrivals ahead of the watermark *)
  mutable crashes : int;          (** mid-apply crashes injected (rolled back) *)
  mutable batches_applied : int;
  mutable rows_applied : int;
  mutable replica_misses : int;   (** replica deletions that found no row *)
  mutable recoveries : int;
  mutable resyncs : int;          (** full rebuilds from base tables *)
}

type t = {
  oltp : Oltp.t;
  olap : Database.t;
  bridge : Bridge.t;
  view : Openivm.Runner.view;
  base_tables : string list;
  needs_replica : bool;
  strict_replica : bool;
  max_retries : int;
  backoff_base : float;
  on_apply :
    (source:string -> seq:int -> replica:bool -> Row.t list -> unit) option;
      (** durability hook: called after a batch landed and its watermark
          advanced, before the outbox acknowledgement *)
  stats : stats;
  mutable crashed : bool;
  mutable syncs : int;
}

val create :
  ?flags:Openivm.Flags.t ->
  ?oltp_latency:float ->
  ?bridge:Bridge.t ->
  ?strict_replica:bool ->
  ?max_retries:int ->
  ?backoff_base:float ->
  ?olap:Database.t ->
  ?view:Openivm.Runner.view ->
  ?on_apply:(source:string -> seq:int -> replica:bool -> Row.t list -> unit) ->
  schema_sql:string ->
  view_sql:string ->
  unit ->
  t
(** [schema_sql] (CREATE TABLE statements, [;]-separated) runs on both
    engines; [view_sql] is compiled and installed on the OLAP side;
    capture triggers are registered on the OLTP side. Pass a [bridge]
    created with a {!Fault} harness to inject failures. [strict_replica]
    turns silent replica divergence into an error; [max_retries] (default
    8) bounds resends per sync; [backoff_base] (default 50µs) seeds the
    exponential backoff between resends.

    [olap] and [view] together attach the pipeline to an existing OLAP
    database — a durable store recovered from disk — instead of creating
    the schema and installing the view anew. [on_apply] journals each
    applied batch before it is acknowledged: a store that dies inside the
    hook leaves the batch unacknowledged, and redelivery is deduplicated
    by the recovered watermark — exactly-once survives the restart. *)

val view : t -> Openivm.Runner.view
val olap : t -> Database.t
val oltp : t -> Oltp.t
val stats : t -> stats

val crashed : t -> bool
(** Is the OLAP side down (a mid-apply crash was injected and not yet
    recovered)? While down, {!sync} is a no-op and {!query} raises. *)

val exec_oltp : t -> string -> Database.exec_result
(** Run a transactional statement on the OLTP side. *)

val sync : t -> int
(** Ship pending outbox batches OLTP → OLAP with bounded retry and
    idempotent apply; returns the number of delta rows applied. *)

val query : t -> string -> Database.query_result
(** Sync, lazily refresh, then query the OLAP side. Raises
    {!Error.Sql_error} while {!crashed}. *)

val view_contents : ?order_by:string -> t -> Database.query_result

val verify : t -> bool
(** Does the materialized view agree exactly with recomputing its defining
    query over the current OLTP state? False while {!crashed}. *)

(** {1 Crash recovery} *)

type recovery = {
  replayed : int;   (** outbox batches landed by replay *)
  resynced : bool;  (** replay was not enough: rebuilt from base tables *)
  converged : bool; (** view = full recompute afterwards *)
  phases : (string * float) list;
      (** per-phase wall-clock seconds, in execution order: [drain],
          [replay], [verify], then (only when replay was not enough)
          [resync] and [reverify] *)
}

val pp_phases : recovery -> string list
(** The [phases] as structured [recover-phase phase=... seconds=...]
    lines, one per phase. *)

val recover : ?log:(string -> unit) -> t -> recovery
(** The recovery ladder after an OLAP crash (also safe on a healthy
    pipeline): drain in-flight batches, replay unacknowledged outbox
    batches over a healthy link (idempotent apply makes duplicates
    no-ops), and — if the view still disagrees with the ground truth —
    full resync from the base tables. [log] receives one structured
    timing line per phase as it completes (see {!pp_phases}). *)

val full_resync : t -> unit
(** Rebuild the OLAP side from scratch: abandon outboxes and in-flight
    traffic, re-copy base tables over the bridge, rerun the view's initial
    load, fast-forward watermarks — the paper's non-IVM baseline, paid
    once. *)

val query_without_ivm : t -> Database.query_result
(** The non-IVM cross-system baseline: ship the entire base tables over
    the bridge and recompute the defining query. *)
