(** Cross-system IVM orchestration (paper Figure 3): a transactional
    workload runs against the OLTP engine; captured deltas travel over the
    bridge into the OLAP engine's delta tables; the compiled propagation
    script folds them into the materialized view. Views whose propagation
    reads base tables (joins, MIN/MAX rederivation) additionally keep
    OLAP-side replicas in sync from the same delta stream. *)

open Openivm_engine

type t = {
  oltp : Oltp.t;
  olap : Database.t;
  bridge : Bridge.t;
  view : Openivm.Runner.view;
  base_tables : string list;
  needs_replica : bool;
  mutable syncs : int;
}

val create :
  ?flags:Openivm.Flags.t ->
  ?oltp_latency:float ->
  ?bridge:Bridge.t ->
  schema_sql:string ->
  view_sql:string ->
  unit ->
  t
(** [schema_sql] (CREATE TABLE statements, [;]-separated) runs on both
    engines; [view_sql] is compiled and installed on the OLAP side;
    capture triggers are registered on the OLTP side. *)

val view : t -> Openivm.Runner.view
val olap : t -> Database.t
val oltp : t -> Oltp.t

val exec_oltp : t -> string -> Database.exec_result
(** Run a transactional statement on the OLTP side. *)

val sync : t -> int
(** Ship pending deltas OLTP → OLAP; returns the number of rows moved. *)

val query : t -> string -> Database.query_result
(** Sync, lazily refresh, then query the OLAP side. *)

val view_contents : ?order_by:string -> t -> Database.query_result

val query_without_ivm : t -> Database.query_result
(** The non-IVM cross-system baseline: ship the entire base tables over
    the bridge and recompute the defining query. *)
