(** Architecture notes for the cross-system pipeline (documentation
    module; no code).

    {1 Delta flow (paper Figure 3)}

    {v
      OLTP engine ("postgres")            OLAP engine ("duckdb")
      ------------------------            ----------------------
      base tables  --triggers-->  delta_T   (the outbox)
                                    |  Oltp.begin_batch   (seq, rows stay put)
                                    v
                                 Bridge.send  (serialize, checksum, latency,
                                    |          injected faults)
                                    v
                     watermark check (_openivm_bridge_watermarks):
                       seq <= wm  -> duplicate, drop + re-ack
                       seq  = wm+1 -> apply under Snapshot (all-or-nothing)
                                    |        then advance wm, Oltp.ack
                                    v        (ack empties the outbox)
                              OLAP delta_T tables --+--> replicas (joins/minmax)
                                                    |
                                         Runner.refresh (compiled SQL script)
                                                    |
                                                    v
                                            materialized view V
    v}

    {1 Consistency model}

    A [Pipeline.query] observes a prefix-consistent snapshot: all deltas
    captured before the call are shipped ([sync]) and folded ([refresh])
    before the SELECT runs, so the answer equals recomputing the view
    query over the OLTP state at call time. Between queries the view may
    lag (lazy refresh) — the recency/throughput trade-off of paper §1.

    {1 Failure model}

    The link may drop, duplicate, reorder or corrupt batches, and the
    OLAP side may crash mid-apply ([Fault] injects all five). Delivery is
    exactly-once regardless: batches carry a per-source sequence number
    and checksum; the outbox keeps rows until acknowledged, so resending
    is always possible; the per-source watermark makes re-applying always
    safe. A mid-apply crash rolls the batch back via an in-memory
    snapshot, leaving the pipeline [crashed] until [Pipeline.recover]
    climbs the ladder: replay unacknowledged outbox batches over a
    fault-suppressed link, verify the view against a full recompute, and
    fall back to a full resync from the base tables if verification
    fails. [recover] reports whether the system converged. See
    [DESIGN.md] section 7 for the protocol in full.

    {1 What "cross-system" costs}

    The bridge charges serialization plus a configurable batch latency and
    per-row cost; the OLTP engine charges a per-statement round trip.
    These are the only knobs separating E3's four deployments, which makes
    the comparison transparent in the paper's sense: everything else is
    the same engine code. *)
