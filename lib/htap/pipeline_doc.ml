(** Architecture notes for the cross-system pipeline (documentation
    module; no code).

    {1 Delta flow (paper Figure 3)}

    {v
      OLTP engine ("postgres")            OLAP engine ("duckdb")
      ------------------------            ----------------------
      base tables  --triggers-->  delta_T
                                    |  Oltp.drain
                                    v
                                 Bridge.ship  (serialize, latency, deserialize)
                                    |
                                    v
                              OLAP delta_T tables --+--> replicas (joins/minmax)
                                                    |
                                         Runner.refresh (compiled SQL script)
                                                    |
                                                    v
                                            materialized view V
    v}

    {1 Consistency model}

    A [Pipeline.query] observes a prefix-consistent snapshot: all deltas
    captured before the call are shipped ([sync]) and folded ([refresh])
    before the SELECT runs, so the answer equals recomputing the view
    query over the OLTP state at call time. Between queries the view may
    lag (lazy refresh) — the recency/throughput trade-off of paper §1.

    {1 What "cross-system" costs}

    The bridge charges serialization plus a configurable batch latency and
    per-row cost; the OLTP engine charges a per-statement round trip.
    These are the only knobs separating E3's four deployments, which makes
    the comparison transparent in the paper's sense: everything else is
    the same engine code. *)
