(** Transactional workload generator for the HTAP scenario: batches of
    INSERT / UPDATE / DELETE statements against the base tables, with a
    seeded RNG for reproducibility. *)

type mix = {
  insert_pct : int;
  update_pct : int;
  delete_pct : int;  (** must sum to 100 *)
}

let default_mix = { insert_pct = 70; update_pct = 20; delete_pct = 10 }

type t = {
  rng : Random.State.t;
  mix : mix;
  group_domain : int;    (** number of distinct group keys *)
  value_range : int;
  mutable next_id : int;
}

let create ?(seed = 42) ?(mix = default_mix) ?(group_domain = 100)
    ?(value_range = 1000) () : t =
  if mix.insert_pct + mix.update_pct + mix.delete_pct <> 100 then
    invalid_arg "Txgen.create: mix must sum to 100";
  { rng = Random.State.make [| seed |]; mix; group_domain; value_range;
    next_id = 0 }

let group_key t =
  Printf.sprintf "g%04d" (Random.State.int t.rng t.group_domain)

let value t = Random.State.int t.rng t.value_range - (t.value_range / 2)

(** One statement against the paper's groups(group_index, group_value)
    schema. Updates and deletes are row-targeted (a narrow residue-class
    predicate on top of the group key), matching the few-rows-per-
    statement footprint of a transactional application. *)
let statement t : string =
  let roll = Random.State.int t.rng 100 in
  if roll < t.mix.insert_pct then
    Printf.sprintf "INSERT INTO groups VALUES ('%s', %d)" (group_key t) (value t)
  else if roll < t.mix.insert_pct + t.mix.update_pct then
    Printf.sprintf
      "UPDATE groups SET group_value = group_value + %d WHERE group_index = \
       '%s' AND group_value %% 97 = %d"
      (1 + Random.State.int t.rng 10)
      (group_key t)
      (Random.State.int t.rng 97)
  else
    Printf.sprintf
      "DELETE FROM groups WHERE group_index = '%s' AND group_value %% 97 = %d"
      (group_key t)
      (Random.State.int t.rng 97)

let batch t n : string list = List.init n (fun _ -> statement t)

(** Statements seeding [n] initial rows. *)
let seed_rows t n : string list =
  let row () = Printf.sprintf "('%s', %d)" (group_key t) (value t) in
  let rec chunks remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let k = min 500 remaining in
      let values = String.concat ", " (List.init k (fun _ -> row ())) in
      chunks (remaining - k) (("INSERT INTO groups VALUES " ^ values) :: acc)
    end
  in
  chunks n []
