(** Seeded transactional workload generator over the paper's
    groups(group_index, group_value) schema: row-targeted INSERT / UPDATE /
    DELETE statements in a configurable mix. *)

type mix = {
  insert_pct : int;
  update_pct : int;
  delete_pct : int;  (** must sum to 100 *)
}

val default_mix : mix
(** 70 / 20 / 10. *)

type t

val create :
  ?seed:int -> ?mix:mix -> ?group_domain:int -> ?value_range:int -> unit -> t
(** Raises [Invalid_argument] if the mix does not sum to 100. *)

val statement : t -> string
val batch : t -> int -> string list
val seed_rows : t -> int -> string list
(** Multi-row INSERT statements seeding [n] initial rows. *)
