(** Injectable time and allocation sources for the observability layer. *)

let default_now = Unix.gettimeofday
let default_alloc = Gc.allocated_bytes

let now_fn = ref default_now
let alloc_fn = ref default_alloc

let now () = !now_fn ()
let allocated_bytes () = !alloc_fn ()

let set_now f = now_fn := f
let set_allocated_bytes f = alloc_fn := f

let use_defaults () =
  now_fn := default_now;
  alloc_fn := default_alloc

let ticker ?(start = 0.0) ?(step = 0.001) () =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t
