(** Injectable time and allocation sources for the observability layer.

    Spans and benchmark code read wall-clock time and GC-allocated bytes
    through this module instead of calling [Unix.gettimeofday] /
    [Gc.allocated_bytes] directly, so tests can install deterministic
    fakes and render byte-identical reports. *)

val now : unit -> float
(** Current time in seconds. Defaults to [Unix.gettimeofday]. *)

val allocated_bytes : unit -> float
(** Bytes allocated on the OCaml heap since program start. Defaults to
    [Gc.allocated_bytes]. *)

val set_now : (unit -> float) -> unit
(** Install a fake time source (deterministic tests). *)

val set_allocated_bytes : (unit -> float) -> unit
(** Install a fake allocation source (deterministic tests). *)

val use_defaults : unit -> unit
(** Restore the real [Unix.gettimeofday] / [Gc.allocated_bytes] sources. *)

val ticker : ?start:float -> ?step:float -> unit -> unit -> float
(** [ticker ()] is a deterministic fake time source: each call returns the
    previous value plus [step] (default 0.001s), starting at [start]
    (default 0). For [set_now] in tests. *)
