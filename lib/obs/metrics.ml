(** The metrics registry. One record type backs all three instrument
    kinds; the .mli hides it behind abstract handle types. *)

(* 1µs, 2µs, 4µs, ... ~33.5s: covers compile-time nanobenchmarks up to
   full-recompute refreshes at --full scale *)
let bucket_bounds =
  Array.init 26 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let n_buckets = Array.length bucket_bounds + 1  (* + overflow *)

type kind = Counter | Gauge | Histogram

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  kind : kind;
  mutable icount : int;    (* counter value / histogram observation count *)
  mutable fsum : float;    (* gauge value / histogram sum *)
  mutable vmin : float;
  mutable vmax : float;
  mutable touched : bool;  (* updated since the last reset? *)
  buckets : int array;     (* per-bucket counts; [||] unless histogram *)
}

type counter = metric
type gauge = metric
type histogram = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* One registry-wide lock makes every instrument safe to update from any
   domain (parallel refresh workers included). Updates are per-statement
   or per-batch, never per-row, so an uncontended lock/unlock is noise
   next to the work being measured. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let key_of name labels =
  name ^ "|"
  ^ String.concat ","
      (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let get_or_create ?(help = "") ?(labels = []) kind name =
  let labels = List.sort compare labels in
  let key = key_of name labels in
  locked @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some m ->
    if m.kind <> kind then
      invalid_arg
        (Printf.sprintf "metric %S already registered with another kind" name);
    m
  | None ->
    let m =
      { name; labels; help; kind; icount = 0; fsum = 0.0;
        vmin = infinity; vmax = neg_infinity; touched = false;
        buckets = (if kind = Histogram then Array.make n_buckets 0 else [||]) }
    in
    Hashtbl.replace registry key m;
    m

let counter ?help ?labels name = get_or_create ?help ?labels Counter name

let add c n =
  locked @@ fun () ->
  c.icount <- c.icount + n;
  c.touched <- true

let incr c = add c 1
let counter_value c = locked (fun () -> c.icount)

let gauge ?help ?labels name = get_or_create ?help ?labels Gauge name

let set_gauge g v =
  locked @@ fun () ->
  g.fsum <- v;
  g.touched <- true

let set_gauge_int g v = set_gauge g (float_of_int v)

let gauge_value g = locked (fun () -> g.fsum)

let histogram ?help ?labels name = get_or_create ?help ?labels Histogram name

let bucket_index v =
  let rec go i =
    if i >= Array.length bucket_bounds then Array.length bucket_bounds
    else if v <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe h v =
  locked @@ fun () ->
  h.icount <- h.icount + 1;
  h.fsum <- h.fsum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.touched <- true

let hist_count h = locked (fun () -> h.icount)
let hist_sum h = locked (fun () -> h.fsum)

(* An empty histogram (fresh, or wiped by [reset_values]) has vmin = +inf
   and vmax = -inf: the final clamp would turn any interpolated value into
   ±infinity, so the empty case short-circuits to nan — a defined "no
   observations" marker that the text renderer prints as-is and the JSON
   renderer maps to null. *)
let percentile h p =
  locked @@ fun () ->
  if h.icount = 0 then nan
  else begin
    let rank = p *. float_of_int h.icount in
    let rec find b cum_before =
      if b >= n_buckets then (n_buckets - 1, cum_before)
      else
        let cum = cum_before + h.buckets.(b) in
        if float_of_int cum >= rank && h.buckets.(b) > 0 then (b, cum_before)
        else find (b + 1) cum
    in
    let b, cum_before = find 0 0 in
    let lo = if b = 0 then 0.0 else bucket_bounds.(b - 1) in
    let hi =
      if b >= Array.length bucket_bounds then max h.vmax lo
      else bucket_bounds.(b)
    in
    let in_bucket = float_of_int h.buckets.(b) in
    let frac =
      if in_bucket <= 0.0 then 1.0
      else (rank -. float_of_int cum_before) /. in_bucket
    in
    let v = lo +. (frac *. (hi -. lo)) in
    Float.min h.vmax (Float.max h.vmin v)
  end

let reset_values () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
       m.icount <- 0;
       m.fsum <- 0.0;
       m.vmin <- infinity;
       m.vmax <- neg_infinity;
       m.touched <- false;
       Array.fill m.buckets 0 (Array.length m.buckets) 0)
    registry

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      vmin : float;
      vmax : float;
      buckets : (float * int) list;
    }

let snapshot () =
  locked @@ fun () ->
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  let live = List.filter (fun m -> m.touched) all in
  let sorted =
    List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) live
  in
  List.map
    (fun m ->
       let v =
         match m.kind with
         | Counter -> Counter_v m.icount
         | Gauge -> Gauge_v m.fsum
         | Histogram ->
           let cum = ref 0 in
           let buckets =
             List.init n_buckets (fun i ->
                 cum := !cum + m.buckets.(i);
                 let le =
                   if i >= Array.length bucket_bounds then infinity
                   else bucket_bounds.(i)
                 in
                 (le, !cum))
           in
           Histogram_v
             { count = m.icount; sum = m.fsum; vmin = m.vmin; vmax = m.vmax;
               buckets }
       in
       (m.name, m.labels, m.help, v))
    sorted
