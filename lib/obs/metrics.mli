(** A process-wide registry of named counters, gauges and histograms.

    Handles are get-or-create by (name, labels) — instrumented modules
    either hold a handle in a module-level binding (hot paths) or call the
    constructor per event (registry lookup, fine for refresh-frequency
    events). Updates are plain field mutations: cheap enough to stay on
    even when span tracing is disabled.

    Histograms use exponential base-2 buckets from 1µs up (suited to the
    latencies this repo measures) plus an overflow bucket, and support
    deterministic percentile estimation by linear interpolation within a
    bucket, clamped to the observed min/max. *)

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val set_gauge_int : gauge -> int -> unit
val gauge_value : gauge -> float

val histogram :
  ?help:string -> ?labels:(string * string) list -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0, 1]: linear interpolation within the
    bucket holding rank [p * count], clamped to the observed min/max.
    [nan] on an empty histogram. *)

val reset_values : unit -> unit
(** Zero every registered metric. Registrations (and handles held by
    instrumented modules) stay valid. *)

(** {1 Snapshot for renderers} *)

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      vmin : float;
      vmax : float;
      buckets : (float * int) list;
          (** (upper bound, cumulative count) pairs, ascending; the last
              pair's bound is [infinity] *)
    }

val snapshot : unit -> (string * (string * string) list * string * snapshot) list
(** All registered metrics as [(name, labels, help, value)], sorted by
    name then labels — the deterministic input to {!Report}. Metrics that
    were never updated are omitted. *)
