(** Renderers over recorded spans and the metrics registry. Everything
    here is pure string building over {!Span.spans} / {!Metrics.snapshot},
    so the output is deterministic whenever the clock is. *)

let pp_duration seconds =
  if seconds >= 1.0 then Printf.sprintf "%.2fs" seconds
  else if seconds >= 1e-3 then Printf.sprintf "%.2fms" (seconds *. 1e3)
  else Printf.sprintf "%.1fus" (seconds *. 1e6)

let pp_bytes b =
  if b >= 1048576.0 then Printf.sprintf "%.1fMB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

let value_to_string : Span.value -> string = function
  | Span.Int i -> string_of_int i
  | Span.Float f -> Printf.sprintf "%g" f
  | Span.Str s -> s

(* --- the span tree --- *)

let span_line (s : Span.t) =
  let timing =
    if s.Span.alloc_bytes > 0.0 then
      Printf.sprintf "(%s, %s)" (pp_duration s.Span.duration)
        (pp_bytes s.Span.alloc_bytes)
    else Printf.sprintf "(%s)" (pp_duration s.Span.duration)
  in
  let attrs =
    match s.Span.attrs with
    | [] -> ""
    | kvs ->
      " "
      ^ String.concat " "
          (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) kvs)
  in
  Printf.sprintf "%s %s%s" s.Span.name timing attrs

let span_tree () =
  let buf = Buffer.create 512 in
  let rec render prefix child_prefix s =
    Buffer.add_string buf (prefix ^ span_line s ^ "\n");
    let kids = Span.children s in
    let n = List.length kids in
    List.iteri
      (fun i kid ->
         let last = i = n - 1 in
         render
           (child_prefix ^ (if last then "└─ " else "├─ "))
           (child_prefix ^ (if last then "   " else "│  "))
           kid)
      kids
  in
  List.iter (fun root -> render "" "" root) (Span.roots ());
  Buffer.contents buf

(* --- the metrics table --- *)

let labels_suffix = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let metrics_table () =
  let snap = Metrics.snapshot () in
  let entries =
    List.map
      (fun (name, labels, _help, v) ->
         let key = name ^ labels_suffix labels in
         let value =
           match v with
           | Metrics.Counter_v n -> string_of_int n
           | Metrics.Gauge_v f -> Printf.sprintf "%g" f
           | Metrics.Histogram_v h ->
             (* only histograms named *_seconds hold durations; others
                (e.g. rows per batch) print as plain numbers *)
             let fmt x =
               if Filename.check_suffix name "_seconds" then pp_duration x
               else Printf.sprintf "%g" x
             in
             Printf.sprintf "count=%d sum=%s p50=%s p90=%s max=%s" h.count
               (fmt h.sum)
               (fmt
                  (Metrics.percentile
                     (Metrics.histogram ~labels name) 0.5))
               (fmt
                  (Metrics.percentile
                     (Metrics.histogram ~labels name) 0.9))
               (fmt h.vmax)
         in
         (key, value))
      snap
  in
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 entries
  in
  String.concat ""
    (List.map
       (fun (k, v) -> Printf.sprintf "%-*s  %s\n" width k v)
       entries)

(* --- JSON lines --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 32 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

(* JSON has no literal for nan/±inf ("%.9g" would print them verbatim and
   corrupt the line). They arise legitimately — an empty histogram has
   vmin = +inf, vmax = -inf, percentiles nan — so render them as null. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let json_attr (k, v) =
  Printf.sprintf "%s:%s" (json_str k)
    (match v with
     | Span.Int i -> string_of_int i
     | Span.Float f -> json_float f
     | Span.Str s -> json_str s)

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) labels)
  ^ "}"

let span_json (s : Span.t) =
  Printf.sprintf
    "{\"type\":\"span\",\"id\":%d,\"parent\":%s,\"name\":%s,\"start\":%s,\"duration\":%s,\"alloc_bytes\":%.0f,\"attrs\":{%s}}"
    s.Span.id
    (match s.Span.parent with None -> "null" | Some p -> string_of_int p)
    (json_str s.Span.name)
    (json_float s.Span.start_time)
    (json_float s.Span.duration)
    s.Span.alloc_bytes
    (String.concat "," (List.map json_attr s.Span.attrs))

let metric_json (name, labels, _help, v) =
  match v with
  | Metrics.Counter_v n ->
    Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"labels\":%s,\"value\":%d}"
      (json_str name) (json_labels labels) n
  | Metrics.Gauge_v f ->
    Printf.sprintf "{\"type\":\"gauge\",\"name\":%s,\"labels\":%s,\"value\":%s}"
      (json_str name) (json_labels labels) (json_float f)
  | Metrics.Histogram_v h ->
    let hist = Metrics.histogram ~labels name in
    Printf.sprintf
      "{\"type\":\"histogram\",\"name\":%s,\"labels\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
      (json_str name) (json_labels labels) h.count (json_float h.sum)
      (json_float h.vmin) (json_float h.vmax)
      (json_float (Metrics.percentile hist 0.5))
      (json_float (Metrics.percentile hist 0.9))
      (json_float (Metrics.percentile hist 0.99))

let jsonl () =
  let lines =
    List.map span_json (Span.spans ())
    @ List.map metric_json (Metrics.snapshot ())
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

(* --- Prometheus text exposition format --- *)

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (json_escape v))
           labels)
    ^ "}"

let prom_labels_extra labels extra =
  prom_labels (labels @ [ extra ])

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let prometheus () =
  let buf = Buffer.create 512 in
  let last_name = ref "" in
  List.iter
    (fun (name, labels, help, v) ->
       let kind =
         match v with
         | Metrics.Counter_v _ -> "counter"
         | Metrics.Gauge_v _ -> "gauge"
         | Metrics.Histogram_v _ -> "histogram"
       in
       if name <> !last_name then begin
         last_name := name;
         if help <> "" then
           Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
         Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
       end;
       (match v with
        | Metrics.Counter_v n ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (prom_labels labels) n)
        | Metrics.Gauge_v f ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %g\n" name (prom_labels labels) f)
        | Metrics.Histogram_v h ->
          List.iter
            (fun (le, cum) ->
               let le_str =
                 if Float.is_integer le && Float.abs le < 1e15
                    && le <> infinity
                 then Printf.sprintf "%.0f" le
                 else if le = infinity then "+Inf"
                 else Printf.sprintf "%g" le
               in
               Buffer.add_string buf
                 (Printf.sprintf "%s_bucket%s %d\n" name
                    (prom_labels_extra labels ("le", le_str))
                    cum))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %g\n" name (prom_labels labels) h.sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels)
               h.count)))
    (Metrics.snapshot ());
  Buffer.contents buf

let render = function
  | `Text ->
    let tree = span_tree () in
    let table = metrics_table () in
    (if tree = "" then "" else "-- spans --\n" ^ tree)
    ^ if table = "" then "" else "-- metrics --\n" ^ table
  | `Json -> jsonl ()
  | `Prometheus -> prometheus ()

let reset_all () =
  Span.reset ();
  Metrics.reset_values ()
