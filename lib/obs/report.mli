(** Renderers over the recorded spans and the metrics registry.

    Three output shapes:
    - {!span_tree}: a human-readable tree with per-span wall-clock time,
      allocation and attributes — "EXPLAIN ANALYZE for IVM";
    - {!jsonl}: one JSON object per line (spans first, then metrics) for
      machine consumption;
    - {!prometheus}: the Prometheus text exposition format (metrics only;
      spans have no Prometheus representation).

    All renderers are deterministic given a deterministic {!Clock}. *)

val pp_duration : float -> string
(** Seconds to ["1.23s" | "4.56ms" | "7.8us"]. *)

val span_tree : unit -> string
(** Tree of all recorded spans, roots first in start order. *)

val metrics_table : unit -> string
(** Plain-text table of every touched metric (counters and gauges as one
    line; histograms with count/sum/p50/p90/max). *)

val jsonl : unit -> string
(** Spans then metrics, one JSON object per line. *)

val prometheus : unit -> string
(** Prometheus text format of the metrics registry. *)

val prometheus_content_type : string
(** The Content-Type an HTTP scrape endpoint must declare for
    {!prometheus} output (text exposition format 0.0.4). *)

val render : [ `Text | `Json | `Prometheus ] -> string
(** [`Text] = span tree + metrics table; [`Json] = {!jsonl};
    [`Prometheus] = {!prometheus}. *)

val reset_all : unit -> unit
(** Clear recorded spans and zero all metrics. *)
