(** Tracing spans over the IVM hot paths. See the interface for the
    contract; the implementation is a global trace buffer plus a
    per-domain stack of open spans for parent attribution, so spans can
    be opened from parallel refresh workers. *)

type value =
  | Int of int
  | Float of float
  | Str of string

type t = {
  id : int;
  parent : int option;
  name : string;
  start_time : float;
  start_alloc : float;
  mutable duration : float;
  mutable alloc_bytes : float;
  mutable attrs : (string * value) list;
  mutable closed : bool;
}

let none =
  { id = 0; parent = None; name = "<disabled>"; start_time = 0.0;
    start_alloc = 0.0; duration = 0.0; alloc_bytes = 0.0; attrs = [];
    closed = true }

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* The trace buffer and id counter are process-global (guarded by a lock /
   an atomic) so spans opened from parallel refresh domains record safely;
   the open-span stack is domain-local, so parent attribution never
   crosses a domain boundary. *)
let next_id = Atomic.make 1
let lock = Mutex.create ()
let recorded : t list ref = ref []   (* reverse start order *)

let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key  (* innermost open span first *)

let reset () =
  Atomic.set next_id 1;
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock;
  stack () := []

let enter ?(attrs = []) name =
  if not !enabled_flag then none
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = stack () in
    let parent = match !stack with [] -> None | s :: _ -> Some s.id in
    let s =
      { id; parent; name;
        start_time = Clock.now ();
        start_alloc = Clock.allocated_bytes ();
        duration = 0.0; alloc_bytes = 0.0; attrs; closed = false }
    in
    Mutex.lock lock;
    recorded := s :: !recorded;
    Mutex.unlock lock;
    stack := s :: !stack;
    s
  end

let finish s =
  if s != none && not s.closed then begin
    s.duration <- Clock.now () -. s.start_time;
    s.alloc_bytes <- Clock.allocated_bytes () -. s.start_alloc;
    s.closed <- true;
    (* pop through s, tolerating children left open by mistake *)
    let stack = stack () in
    let rec pop = function
      | [] -> []
      | x :: rest -> if x == s then rest else pop rest
    in
    if List.memq s !stack then stack := pop !stack
  end

let with_span ?attrs name f =
  let s = enter ?attrs name in
  Fun.protect ~finally:(fun () -> finish s) (fun () -> f s)

let set s key v = if s != none then s.attrs <- s.attrs @ [ (key, v) ]
let set_int s key v = set s key (Int v)
let set_str s key v = set s key (Str v)
let set_float s key v = set s key (Float v)

let spans () = List.rev !recorded
let find name = List.find_opt (fun s -> String.equal s.name name) (spans ())
let children s = List.filter (fun c -> c.parent = Some s.id) (spans ())
let roots () = List.filter (fun s -> s.parent = None) (spans ())
