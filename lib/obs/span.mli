(** Tracing spans: nested wall-clock + allocation measurements over the
    IVM hot paths ("EXPLAIN ANALYZE for IVM").

    Collection is off by default; every instrumented call site pays one
    boolean read and receives the shared {!none} span, on which every
    operation is a no-op — the no-op fast path that keeps instrumented
    code free of measurable overhead. When enabled ({!set_enabled}),
    [enter]/[finish] record spans into a global in-memory trace buffer
    that {!Report} renders as a tree, JSON lines or Prometheus text.

    Time and allocation are read through {!Clock}, so tests can inject a
    deterministic clock and compare reports against golden files. *)

type value =
  | Int of int
  | Float of float
  | Str of string

type t = {
  id : int;                       (** 1-based, in start order *)
  parent : int option;            (** enclosing open span at [enter] time *)
  name : string;
  start_time : float;
  start_alloc : float;
  mutable duration : float;       (** seconds; set at [finish] *)
  mutable alloc_bytes : float;    (** heap bytes allocated inside the span *)
  mutable attrs : (string * value) list;  (** insertion order *)
  mutable closed : bool;
}

val none : t
(** The shared dummy span returned while collection is disabled. All
    operations on it are no-ops. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans and the open-span stack; ids restart at 1. *)

val enter : ?attrs:(string * value) list -> string -> t
(** Open a span named [name], child of the innermost open span. Returns
    {!none} while disabled. *)

val finish : t -> unit
(** Close the span, recording wall-clock duration and allocation delta.
    Idempotent; a no-op on {!none}. *)

val with_span : ?attrs:(string * value) list -> string -> (t -> 'a) -> 'a
(** [with_span name f] runs [f span] between [enter] and [finish],
    finishing even on exceptions. *)

val set : t -> string -> value -> unit
(** Append an attribute (no-op on {!none}). *)

val set_int : t -> string -> int -> unit
val set_str : t -> string -> string -> unit
val set_float : t -> string -> float -> unit

val spans : unit -> t list
(** All recorded spans, in start order. *)

val find : string -> t option
(** First recorded span with the given name. *)

val children : t -> t list
(** Direct children of a span, in start order. *)

val roots : unit -> t list
(** Recorded spans with no parent, in start order. *)
