(** Admission control: global queue-depth backpressure plus per-tenant
    in-flight caps. Externally synchronized (the scheduler's lock). *)

type config = {
  max_queue_depth : int;
  max_inflight_per_tenant : int;
  max_batch_per_tick : int;
  tick_interval : float;
}

let default_config =
  { max_queue_depth = 1024;
    max_inflight_per_tenant = 64;
    max_batch_per_tick = 256;
    tick_interval = 0.0 }

type decision =
  | Admitted
  | Overloaded of string

type t = {
  config : config;
  inflight : (string, int) Hashtbl.t;  (** tenant -> queued-or-applying *)
}

let create config = { config; inflight = Hashtbl.create 16 }

let config t = t.config

let inflight t ~tenant =
  Option.value ~default:0 (Hashtbl.find_opt t.inflight tenant)

let admit t ~tenant ~queue_depth =
  if queue_depth >= t.config.max_queue_depth then
    Overloaded
      (Printf.sprintf "queue depth %d at its limit %d" queue_depth
         t.config.max_queue_depth)
  else begin
    let n = inflight t ~tenant in
    if n >= t.config.max_inflight_per_tenant then
      Overloaded
        (Printf.sprintf "tenant %s has %d statement(s) in flight (limit %d)"
           tenant n t.config.max_inflight_per_tenant)
    else begin
      Hashtbl.replace t.inflight tenant (n + 1);
      Admitted
    end
  end

let release t ~tenant =
  match Hashtbl.find_opt t.inflight tenant with
  | Some n when n > 1 -> Hashtbl.replace t.inflight tenant (n - 1)
  | Some _ -> Hashtbl.remove t.inflight tenant
  | None -> ()
