(** Admission control for the serving layer.

    Two knobs bound the damage any client population can do to the
    single-writer scheduler: a global cap on the pending-unit queue
    (backpressure against aggregate overload) and a per-tenant cap on
    in-flight units (isolation against one noisy tenant starving the
    rest). A rejected submission gets a typed {!decision} — the wire
    layer turns it into an [OVERLOADED] reply — instead of queueing
    without bound.

    Not internally synchronized: every call must run under the owning
    scheduler's lock. *)

type config = {
  max_queue_depth : int;
      (** pending units across all tenants before new submissions bounce *)
  max_inflight_per_tenant : int;
      (** units a single tenant may have queued-or-applying at once *)
  max_batch_per_tick : int;
      (** units one refresh tick drains from the queue *)
  tick_interval : float;
      (** seconds between automatic ticks (0 = no background ticker;
          ticks run when a submitter awaits or a reader arrives) *)
}

val default_config : config
(** 1024-deep queue, 64 in-flight per tenant, 256 units per tick,
    no background ticker. *)

type decision =
  | Admitted
  | Overloaded of string  (** human-readable reason, wire-safe *)

type t

val create : config -> t

val config : t -> config

val admit : t -> tenant:string -> queue_depth:int -> decision
(** Check both caps and, when admitted, count the unit against the
    tenant. The caller must {!release} exactly once per admitted unit. *)

val release : t -> tenant:string -> unit

val inflight : t -> tenant:string -> int
