(** Single-writer tick scheduler. See the .mli for the concurrency
    contract; the load-bearing invariants in here:

    - [t.lock] guards everything: the queue, the quota, the database and
      the views. Ticks, reads and submissions all run under it.
    - a unit's snapshot captures the touched base tables {e and} their
      views' delta tables as they stand when the unit starts — including
      deltas queued by earlier units of the same tick — so restoring on
      failure rolls back exactly this unit.
    - [refreshed_at] maps a view to the last tick whose deltas it has
      folded; the read path refreshes only views behind the current tick
      counter, which bounds refresh work to once per view per tick. *)

open Openivm_engine
module Runner = Openivm.Runner
module Flags = Openivm.Flags
module Compiler = Openivm.Compiler
module Ast = Openivm_sql.Ast
module Metrics = Openivm_obs.Metrics
module Span = Openivm_obs.Span
module Clock = Openivm_obs.Clock

type outcome =
  | Applied of { affected : int; installed : string list }
  | Failed of { code : string; message : string }

type state = Pending | Done of outcome

type ticket = {
  u_session : int;
  u_tenant : string;
  u_stmts : string list;
  mutable u_state : state;
}

type submit_result =
  | Queued of ticket
  | Rejected of string

type t = {
  ext : Runner.extension;
  quota : Quota.t;
  lock : Mutex.t;
  cond : Condition.t;
  queue : ticket Queue.t;
  mutable tick_count : int;
  refreshed_at : (string, int) Hashtbl.t;
  eager_views : (string, unit) Hashtbl.t;
  mutable ticker_running : bool;
  mutable session_seq : int;
  mutable active_sessions : int;
  mutable stat_units_applied : int;
  mutable stat_units_failed : int;
  mutable stat_multi_ticks : int;
  mutable stat_overloaded : int;
  mutable stat_max_tick_units : int;
  mutable record_journal : bool;
  mutable journal_rev : string list;
}

(* Process-global handles: several schedulers in one process share the
   registry entries, which is the Prometheus-correct aggregation. *)
let m_ticks =
  Metrics.counter ~help:"Refresh ticks run" "openivm_server_ticks_total"

let m_tick_units =
  Metrics.counter ~help:"Units applied by refresh ticks"
    "openivm_server_tick_units_total"

let m_multi_ticks =
  Metrics.counter
    ~help:"Ticks consolidating deltas from >= 2 sessions into one propagation"
    "openivm_server_multi_session_ticks_total"

let m_rollbacks =
  Metrics.counter ~help:"Units rolled back all-or-nothing"
    "openivm_server_rollbacks_total"

let m_overloaded =
  Metrics.counter ~help:"Submissions bounced by admission control"
    "openivm_server_overloaded_total"

let m_sessions_total =
  Metrics.counter ~help:"Sessions opened" "openivm_server_sessions_total"

let g_sessions =
  Metrics.gauge ~help:"Sessions currently open" "openivm_server_sessions_active"

let g_queue =
  Metrics.gauge ~help:"Units pending in the scheduler queue"
    "openivm_server_queue_depth"

let h_tick =
  Metrics.histogram ~help:"Wall-clock seconds per refresh tick"
    "openivm_server_tick_seconds"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(quota = Quota.default_config) ext =
  {
    ext;
    quota = Quota.create quota;
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    tick_count = 0;
    refreshed_at = Hashtbl.create 16;
    eager_views = Hashtbl.create 16;
    ticker_running = false;
    session_seq = 0;
    active_sessions = 0;
    stat_units_applied = 0;
    stat_units_failed = 0;
    stat_multi_ticks = 0;
    stat_overloaded = 0;
    stat_max_tick_units = 0;
    record_journal = false;
    journal_rev = [];
  }

let extension t = t.ext

let open_session t =
  with_lock t (fun () ->
      t.session_seq <- t.session_seq + 1;
      t.active_sessions <- t.active_sessions + 1;
      Metrics.incr m_sessions_total;
      Metrics.set_gauge_int g_sessions t.active_sessions;
      t.session_seq)

let close_session t =
  with_lock t (fun () ->
      if t.active_sessions > 0 then t.active_sessions <- t.active_sessions - 1;
      Metrics.set_gauge_int g_sessions t.active_sessions)

(* ------------------------------------------------------------------ *)
(* Applying one statement (lock held)                                  *)

(* Views installed through the scheduler must not propagate per
   statement: the whole point of a tick is one consolidated propagation.
   Force Lazy at install time and remember the requested mode — Eager
   views are refreshed by the tick itself, Lazy ones by the first read. *)
let install_view t sql =
  let flags = { t.ext.Runner.ext_flags with Flags.refresh = Lazy } in
  let v =
    Runner.install ~flags ~registry:t.ext.Runner.ext_views t.ext.Runner.ext_db
      sql
  in
  t.ext.Runner.ext_views <- v :: t.ext.Runner.ext_views;
  (match t.ext.Runner.ext_flags.Flags.refresh with
  | Eager -> Hashtbl.replace t.eager_views (Runner.view_name v) ()
  | Lazy -> ());
  (* The initial load materializes current base contents: mark it as
     caught up with every tick so far. *)
  Hashtbl.replace t.refreshed_at (Runner.view_name v) t.tick_count;
  v

let forget_view t name =
  Hashtbl.remove t.eager_views name;
  Hashtbl.remove t.refreshed_at name

(* Refresh the maintained views a SELECT touches, at most once per tick.
   [Runner.refresh] pulls upstreams itself, so mark the whole upstream
   closure as refreshed too. *)
let rec mark_refreshed t v =
  Hashtbl.replace t.refreshed_at (Runner.view_name v) t.tick_count;
  List.iter (mark_refreshed t) v.Runner.upstreams

let refresh_for_read t (q : Ast.select) =
  let touched = Ast.select_tables q in
  List.iter
    (fun name ->
      match Runner.find_view t.ext name with
      | None -> ()
      | Some v ->
          let behind =
            match Hashtbl.find_opt t.refreshed_at name with
            | Some at -> at < t.tick_count
            | None -> true
          in
          if behind then begin
            Runner.refresh v;
            mark_refreshed t v
          end)
    touched

let read_locked t q =
  refresh_for_read t q;
  Database.run_select t.ext.Runner.ext_db q

let apply_stmt t sql =
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } -> `Installed (install_view t sql)
  | Ast.Select_stmt q -> `Result (Database.Rows (read_locked t q))
  | Ast.Drop { name; _ } when Runner.find_view t.ext name <> None ->
      let r = Runner.exec_ext t.ext sql in
      forget_view t name;
      r
  | _ ->
      (* exec_ext keeps the guard rails (DML on a view's backing table is
         IVM203) without re-intercepting the cases handled above. *)
      Runner.exec_ext t.ext sql

(* ------------------------------------------------------------------ *)
(* Units and rollback                                                  *)

let unit_touched_tables t stmts =
  let tables = Hashtbl.create 8 in
  let note name = Hashtbl.replace tables name () in
  List.iter
    (fun sql ->
      match (try Some (Openivm_sql.Parser.parse_statement sql) with _ -> None) with
      | Some
          ( Ast.Insert { table; _ } | Ast.Update { table; _ }
          | Ast.Delete { table; _ } | Ast.Truncate table ) ->
          note table
      | _ -> ())
    stmts;
  let db = t.ext.Runner.ext_db in
  let bases =
    Hashtbl.fold
      (fun name () acc ->
        if Catalog.find_table_opt db.Database.catalog name <> None then
          name :: acc
        else acc)
      tables []
  in
  (* Capture hooks write into every dependent view's delta table: those
     roll back with the base rows, or a failed unit would leave ghost
     deltas (or eat captured ones on restore). *)
  let deltas =
    List.concat_map
      (fun v ->
        let c = v.Runner.compiled in
        List.filter_map
          (fun b ->
            if List.mem b (Compiler.base_tables c) then begin
              let d = Compiler.delta_table c b in
              if Catalog.find_table_opt db.Database.catalog d <> None then
                Some (d, v)
              else None
            end
            else None)
          bases)
      t.ext.Runner.ext_views
  in
  (bases, deltas)

let apply_unit t u =
  Span.with_span "server.apply_unit"
    ~attrs:
      [
        ("session", Span.Int u.u_session);
        ("tenant", Span.Str u.u_tenant);
        ("statements", Span.Int (List.length u.u_stmts));
      ]
    (fun _ ->
      let db = t.ext.Runner.ext_db in
      let bases, deltas = unit_touched_tables t u.u_stmts in
      let capture_tables = bases @ List.map fst deltas in
      let memo =
        if capture_tables = [] then None
        else Some (Snapshot.capture db ~tables:capture_tables)
      in
      let pending_saved =
        List.map (fun (_, v) -> (v, v.Runner.pending_deltas)) deltas
      in
      let rollback () =
        (match memo with None -> () | Some m -> Snapshot.restore db m);
        List.iter (fun (v, n) -> v.Runner.pending_deltas <- n) pending_saved;
        t.stat_units_failed <- t.stat_units_failed + 1;
        Metrics.incr m_rollbacks
      in
      let fail code message =
        rollback ();
        Failed { code; message }
      in
      try
        let affected = ref 0 and installed = ref [] in
        List.iter
          (fun sql ->
            match apply_stmt t sql with
            | `Result (Database.Affected n) -> affected := !affected + n
            | `Result _ -> ()
            | `Installed v -> installed := Runner.view_name v :: !installed)
          u.u_stmts;
        if t.record_journal then
          t.journal_rev <- List.rev_append u.u_stmts t.journal_rev;
        t.stat_units_applied <- t.stat_units_applied + 1;
        Applied { affected = !affected; installed = List.rev !installed }
      with
      | Error.Sql_error msg -> fail "SQL" msg
      | Openivm_sql.Parser.Error (msg, pos) ->
          fail "PARSE" (Printf.sprintf "%s (at %d)" msg pos)
      | Openivm_sql.Lexer.Error (msg, pos) ->
          fail "LEX" (Printf.sprintf "%s (at %d)" msg pos)
      | Compiler.Unsupported_view msg -> fail "VIEW" msg)

(* ------------------------------------------------------------------ *)
(* Ticks                                                               *)

let refresh_eager_locked t =
  if Hashtbl.length t.eager_views > 0 then begin
    let refreshed =
      Runner.refresh_tick
        ~only:(fun v -> Hashtbl.mem t.eager_views (Runner.view_name v))
        t.ext
    in
    ignore refreshed;
    Hashtbl.iter
      (fun name () ->
        match Runner.find_view t.ext name with
        | Some v -> mark_refreshed t v
        | None -> ())
      t.eager_views
  end

let tick_locked t =
  if Queue.is_empty t.queue then 0
  else begin
    let max_batch = (Quota.config t.quota).Quota.max_batch_per_tick in
    Span.with_span "server.tick"
      ~attrs:[ ("tick", Span.Int (t.tick_count + 1)) ]
      (fun sp ->
        let t0 = Clock.now () in
        let batch = ref [] in
        while
          (not (Queue.is_empty t.queue)) && List.length !batch < max_batch
        do
          batch := Queue.pop t.queue :: !batch
        done;
        let batch = List.rev !batch in
        let sessions = Hashtbl.create 8 in
        List.iter
          (fun u ->
            let outcome = apply_unit t u in
            u.u_state <- Done outcome;
            Quota.release t.quota ~tenant:u.u_tenant;
            match outcome with
            | Applied _ -> Hashtbl.replace sessions u.u_session ()
            | Failed _ -> ())
          batch;
        (* The tick counter advances before the end-of-tick eager
           refresh so that refresh is attributed to this tick and the
           read path will not redo it. *)
        t.tick_count <- t.tick_count + 1;
        refresh_eager_locked t;
        let n = List.length batch in
        t.stat_max_tick_units <- max t.stat_max_tick_units n;
        if Hashtbl.length sessions >= 2 then begin
          t.stat_multi_ticks <- t.stat_multi_ticks + 1;
          Metrics.incr m_multi_ticks
        end;
        Metrics.incr m_ticks;
        Metrics.add m_tick_units n;
        Metrics.set_gauge_int g_queue (Queue.length t.queue);
        Metrics.observe h_tick (Clock.now () -. t0);
        Span.set_int sp "units" n;
        Span.set_int sp "sessions" (Hashtbl.length sessions);
        Condition.broadcast t.cond;
        n)
  end

let tick t = with_lock t (fun () -> tick_locked t)

let drain t =
  with_lock t (fun () ->
      while not (Queue.is_empty t.queue) do
        ignore (tick_locked t)
      done;
      ignore (Runner.refresh_tick t.ext);
      List.iter (fun v -> mark_refreshed t v) t.ext.Runner.ext_views)

let set_ticker_running t b =
  with_lock t (fun () ->
      t.ticker_running <- b;
      if not b then Condition.broadcast t.cond)

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)

let submit t ~session_id ~tenant stmts =
  with_lock t (fun () ->
      match
        Quota.admit t.quota ~tenant ~queue_depth:(Queue.length t.queue)
      with
      | Quota.Overloaded reason ->
          t.stat_overloaded <- t.stat_overloaded + 1;
          Metrics.incr m_overloaded;
          Rejected reason
      | Quota.Admitted ->
          let u =
            {
              u_session = session_id;
              u_tenant = tenant;
              u_stmts = stmts;
              u_state = Pending;
            }
          in
          Queue.add u t.queue;
          Metrics.set_gauge_int g_queue (Queue.length t.queue);
          Queued u)

let await t u =
  with_lock t (fun () ->
      let rec wait () =
        match u.u_state with
        | Done outcome -> outcome
        | Pending ->
            if t.ticker_running then Condition.wait t.cond t.lock
            else ignore (tick_locked t);
            wait ()
      in
      wait ())

let exec_unit t ~session_id ~tenant stmts =
  match submit t ~session_id ~tenant stmts with
  | Rejected reason -> `Overloaded reason
  | Queued u -> `Outcome (await t u)

(* ------------------------------------------------------------------ *)
(* Reads, stats, journal                                               *)

let read t q = with_lock t (fun () -> read_locked t q)

type stats = {
  ticks : int;
  units_applied : int;
  units_failed : int;
  multi_session_ticks : int;
  overloaded : int;
  queue_depth : int;
  sessions_opened : int;
  max_tick_units : int;
}

let stats t =
  with_lock t (fun () ->
      {
        ticks = t.tick_count;
        units_applied = t.stat_units_applied;
        units_failed = t.stat_units_failed;
        multi_session_ticks = t.stat_multi_ticks;
        overloaded = t.stat_overloaded;
        queue_depth = Queue.length t.queue;
        sessions_opened = t.session_seq;
        max_tick_units = t.stat_max_tick_units;
      })

let set_record_journal t b = with_lock t (fun () -> t.record_journal <- b)

let journal t = with_lock t (fun () -> List.rev t.journal_rev)
