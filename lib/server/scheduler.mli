(** The single-writer scheduler: concurrent sessions submit DML into a
    pending queue; a refresh {e tick} drains the queue, applies every
    admitted unit in FIFO order, and lets the views fold the whole
    tick's captured deltas in one consolidated Z-set propagation each —
    the cross-session generalization of {!Openivm.Flags.consolidate_deltas}
    (one hot session's churn nets out; N sessions' churn nets out N times
    harder when batched into the same tick).

    Concurrency contract:
    - all database access (applying units, propagating, reading) runs
      under one internal mutex — a reader can never observe a
      half-applied tick, and a tick can never interleave with another;
    - a {e unit} (one DML statement, or one committed transaction's
      statement list) applies all-or-nothing: the touched base tables
      and their delta tables are captured through {!Openivm_engine.Snapshot}
      before the unit runs and restored if any statement fails, so a
      failed unit never eats deltas queued by earlier units of the same
      tick (they are part of the captured image and survive the restore);
    - views requested [Eager] refresh once at the end of the tick; lazy
      views refresh on the first read after a tick, and at most once per
      tick even under N concurrent readers (the tick counter gates the
      refresh, which matters for [Full_recompute] plans that otherwise
      recompute on every read). *)

open Openivm_engine

type t

val create : ?quota:Quota.config -> Openivm.Runner.extension -> t
(** Wrap an extension. Views installed through the scheduler always
    capture deltas lazily (per-statement eager refresh would propagate
    mid-tick); the extension's {!Openivm.Flags.refresh} mode instead
    selects whether a view refreshes at tick end ([Eager]) or on first
    read ([Lazy]). *)

val extension : t -> Openivm.Runner.extension

(** {1 Sessions} *)

val open_session : t -> int
(** Allocate a session id (and count it in the session metrics). *)

val close_session : t -> unit

(** {1 Submitting units} *)

type outcome =
  | Applied of { affected : int; installed : string list }
  | Failed of { code : string; message : string }
      (** the unit was rolled back all-or-nothing *)

type ticket

type submit_result =
  | Queued of ticket
  | Rejected of string  (** admission control refused: Overloaded reply *)

val submit :
  t -> session_id:int -> tenant:string -> string list -> submit_result
(** Enqueue one unit. Does not block and does not run a tick. *)

val await : t -> ticket -> outcome
(** Block until the unit's tick has applied it. When no background
    ticker is attached, the awaiting thread runs the tick itself — so
    units queued by other sessions in the meantime ride the same tick. *)

val exec_unit :
  t -> session_id:int -> tenant:string ->
  string list -> [ `Outcome of outcome | `Overloaded of string ]
(** [submit] + [await]. *)

(** {1 Reads} *)

val read : t -> Openivm_sql.Ast.select -> Database.query_result
(** Run a SELECT under the scheduler lock, first refreshing every lazy
    maintained view the query touches — at most once per tick. Raises
    {!Error.Sql_error} like {!Database.run_select}. *)

(** {1 Ticks} *)

val tick : t -> int
(** Run one tick now (no-op when the queue is empty). Returns the number
    of units applied. *)

val drain : t -> unit
(** Tick until the queue is empty, then refresh every maintained view —
    the quiesce point used at shutdown and by the soak's final check. *)

val set_ticker_running : t -> bool -> unit
(** Tell awaiters a background thread is driving ticks (they block
    instead of self-ticking). Clearing it wakes all awaiters. *)

(** {1 Introspection} *)

type stats = {
  ticks : int;
  units_applied : int;          (** successfully applied units *)
  units_failed : int;           (** units rolled back *)
  multi_session_ticks : int;
      (** ticks that consolidated deltas from >= 2 distinct sessions
          into the same propagation *)
  overloaded : int;             (** submissions bounced by admission *)
  queue_depth : int;            (** pending units right now *)
  sessions_opened : int;
  max_tick_units : int;         (** largest batch one tick applied *)
}

val stats : t -> stats

val set_record_journal : t -> bool -> unit
(** Record every successfully applied statement, in apply order — the
    serial history the soak replays sequentially as its oracle. *)

val journal : t -> string list
