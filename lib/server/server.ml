module Report = Openivm_obs.Report

type listen = [ `Tcp of string * int | `Unix of string ]

type t = {
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  listen_spec : listen;
  wake_addr : Unix.sockaddr;
      (** a connectable alias of the listen address: closing a socket
          does not unblock a thread sitting in [accept] on Linux, so
          [stop] wakes the accept loop by connecting to it *)
  text : string;
  bound_port : int;
  tick_interval : float;
  lock : Mutex.t;
  stop_cond : Condition.t;
  mutable stopped : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let scheduler t = t.sched
let port t = t.bound_port
let addr_text t = t.text

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* HTTP: the /metrics side door                                        *)

let handle_http ic oc first_line =
  (* swallow the request headers; we never need them *)
  (try
     while String.trim (input_line ic) <> "" do
       ()
     done
   with End_of_file | Sys_error _ -> ());
  let path =
    match String.split_on_char ' ' first_line with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  let status, ctype, body =
    if path = "/metrics" then
      ("200 OK", Report.prometheus_content_type, Report.prometheus ())
    else ("404 Not Found", "text/plain", "not found; try /metrics\n")
  in
  Printf.fprintf oc
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status ctype (String.length body) body;
  flush oc

(* ------------------------------------------------------------------ *)
(* The line protocol                                                   *)

let send oc resp =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (Wire.render_response resp);
  flush oc

let handle_wire t ic oc first_line =
  let session = ref None in
  let quit = ref false in
  let handle line =
    match Wire.parse_request line with
    | Error msg -> send oc (Wire.Err { code = "PROTO"; message = msg })
    | Ok Wire.Ping -> send oc Wire.Pong
    | Ok Wire.Quit ->
        send oc Wire.Bye;
        quit := true
    | Ok (Wire.Hello tenant) -> (
        match !session with
        | Some _ ->
            send oc
              (Wire.Err { code = "PROTO"; message = "session already open" })
        | None ->
            let s = Session.create t.sched ~tenant in
            session := Some s;
            send oc (Wire.Session (Session.id s)))
    | Ok ((Wire.Sql _ | Wire.Begin | Wire.Commit | Wire.Rollback) as req) -> (
        match !session with
        | None ->
            send oc
              (Wire.Err
                 { code = "NOSESSION"; message = "say HELLO <tenant> first" })
        | Some s ->
            let sql =
              match req with
              | Wire.Sql text -> text
              | Wire.Begin -> "BEGIN"
              | Wire.Commit -> "COMMIT"
              | Wire.Rollback -> "ROLLBACK"
              | _ -> assert false
            in
            send oc (Wire.response_of_reply (Session.exec s sql)))
  in
  (try
     handle first_line;
     while not !quit do
       handle (input_line ic)
     done
   with End_of_file | Sys_error _ -> ());
  match !session with Some s -> Session.close s | None -> ()

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)

let forget_conn t fd =
  with_lock t (fun () -> t.conns <- List.filter (fun c -> c != fd) t.conns)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     match input_line ic with
     | exception (End_of_file | Sys_error _) -> ()
     | first
       when String.starts_with ~prefix:"GET " first
            || String.starts_with ~prefix:"HEAD " first
            || String.starts_with ~prefix:"POST " first ->
         handle_http ic oc first
     | first -> handle_wire t ic oc first
   with Sys_error _ | Unix.Unix_error _ -> ());
  forget_conn t fd;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_out_noerr oc

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if t.stopped then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          with_lock t (fun () ->
              t.conns <- fd :: t.conns;
              t.threads <- Thread.create (handle_conn t) fd :: t.threads);
          loop ()
        end
    | exception Unix.Unix_error _ -> if not t.stopped then loop ()
    | exception Sys_error _ -> ()
  in
  loop ()

let ticker_loop t =
  Scheduler.set_ticker_running t.sched true;
  while not t.stopped do
    Thread.delay t.tick_interval;
    if not t.stopped then ignore (Scheduler.tick t.sched)
  done;
  Scheduler.set_ticker_running t.sched false

(* ------------------------------------------------------------------ *)

let start ?(quota = Quota.default_config) ~listen ext =
  (* a client hanging up mid-reply must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sched = Scheduler.create ~quota ext in
  let domain, addr, host_text =
    match listen with
    | `Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> Unix.inet_addr_loopback)
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port), host)
    | `Unix path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path, path)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Openivm_engine.Error.Sql_error
          (Printf.sprintf "cannot listen on %s: %s" host_text
             (Unix.error_message e))));
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let text =
    match listen with
    | `Tcp _ -> Printf.sprintf "%s:%d" host_text bound_port
    | `Unix path -> path
  in
  let wake_addr =
    match listen with
    | `Unix path -> Unix.ADDR_UNIX path
    | `Tcp _ ->
        let ip =
          match addr with
          | Unix.ADDR_INET (ip, _) when ip <> Unix.inet_addr_any -> ip
          | _ -> Unix.inet_addr_loopback
        in
        Unix.ADDR_INET (ip, bound_port)
  in
  let t =
    {
      sched;
      listen_fd = fd;
      listen_spec = listen;
      wake_addr;
      text;
      bound_port;
      tick_interval = quota.Quota.tick_interval;
      lock = Mutex.create ();
      stop_cond = Condition.create ();
      stopped = false;
      conns = [];
      threads = [];
    }
  in
  let service = [ Thread.create accept_loop t ] in
  let service =
    if t.tick_interval > 0.0 then Thread.create ticker_loop t :: service
    else service
  in
  with_lock t (fun () -> t.threads <- service @ t.threads);
  t

let stop t =
  let already =
    with_lock t (fun () ->
        if t.stopped then true
        else begin
          t.stopped <- true;
          false
        end)
  in
  if not already then begin
    Scheduler.set_ticker_running t.sched false;
    (* wake the accept loop (see [wake_addr]) *)
    (try
       let wfd =
         Unix.socket (Unix.domain_of_sockaddr t.wake_addr) Unix.SOCK_STREAM 0
       in
       (try Unix.connect wfd t.wake_addr with Unix.Unix_error _ -> ());
       (try Unix.close wfd with Unix.Unix_error _ -> ())
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let conns = with_lock t (fun () -> t.conns) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let threads = with_lock t (fun () -> t.threads) in
    List.iter Thread.join threads;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Scheduler.drain t.sched;
    (match t.listen_spec with
    | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ());
    with_lock t (fun () -> Condition.broadcast t.stop_cond)
  end

let wait t =
  Mutex.lock t.lock;
  while not t.stopped do
    Condition.wait t.stop_cond t.lock
  done;
  Mutex.unlock t.lock
