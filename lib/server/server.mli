(** The socket front-end: a listener thread accepting connections, one
    handler thread per connection, and (when the quota config asks for a
    tick interval) a background ticker driving refresh ticks.

    Two protocols share the listening socket, discriminated by the first
    line: an HTTP request line (["GET ..."]) gets the [/metrics]
    responder — live {!Openivm_obs.Report} Prometheus exposition — and
    anything else is treated as the {!Wire} line protocol. *)

type listen =
  [ `Tcp of string * int  (** host, port; port 0 picks an ephemeral port *)
  | `Unix of string  (** unix-domain socket path (unlinked if present) *) ]

type t

val start :
  ?quota:Quota.config -> listen:listen -> Openivm.Runner.extension -> t
(** Bind, listen and spawn the accept loop. Raises
    {!Openivm_engine.Error.Sql_error} when the address cannot be bound. *)

val scheduler : t -> Scheduler.t

val port : t -> int
(** The bound TCP port (useful with port 0); 0 for a unix socket. *)

val addr_text : t -> string
(** Human-readable listen address, e.g. ["127.0.0.1:7654"]. *)

val stop : t -> unit
(** Stop accepting, close every live connection, drain the scheduler
    queue and join the service threads. Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called (from a signal handler or another
    thread) — the serve subcommand's foreground mode. *)
