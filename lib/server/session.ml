module Ast = Openivm_sql.Ast

type t = {
  sched : Scheduler.t;
  sid : int;
  s_tenant : string;
  mutable txn : string list option;  (* buffered statements, reversed *)
  mutable closed : bool;
}

type reply =
  | Affected of int
  | Rows of { cols : string list; rows : string list }
  | Msg of string
  | Queued of int
  | Overloaded of string
  | Failed of { code : string; message : string }

let create sched ~tenant =
  { sched; sid = Scheduler.open_session sched; s_tenant = tenant;
    txn = None; closed = false }

let id t = t.sid
let tenant t = t.s_tenant
let in_txn t = t.txn <> None

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.txn <- None;
    Scheduler.close_session t.sched
  end

let reply_of_outcome = function
  | `Overloaded reason -> Overloaded reason
  | `Outcome (Scheduler.Failed { code; message }) -> Failed { code; message }
  | `Outcome (Scheduler.Applied { affected; installed }) -> (
      match installed with
      | [] -> Affected affected
      | names -> Msg ("installed " ^ String.concat ", " names))

let submit_unit t stmts =
  reply_of_outcome
    (Scheduler.exec_unit t.sched ~session_id:t.sid ~tenant:t.s_tenant stmts)

let run_select t q =
  try
    let r = Scheduler.read t.sched q in
    Rows
      {
        cols = Openivm_engine.Schema.names r.Openivm_engine.Database.schema;
        rows = List.map Openivm_engine.Row.to_string r.rows;
      }
  with Openivm_engine.Error.Sql_error msg -> Failed { code = "SQL"; message = msg }

let exec t sql =
  if t.closed then Failed { code = "SESSION"; message = "session is closed" }
  else
    match (try Ok (Openivm_sql.Parser.parse_statement sql) with e -> Error e) with
    | Error (Openivm_sql.Parser.Error (msg, pos)) ->
        Failed { code = "PARSE"; message = Printf.sprintf "%s (at %d)" msg pos }
    | Error (Openivm_sql.Lexer.Error (msg, pos)) ->
        Failed { code = "LEX"; message = Printf.sprintf "%s (at %d)" msg pos }
    | Error e -> Failed { code = "PARSE"; message = Printexc.to_string e }
    | Ok stmt -> (
        match stmt with
        | Ast.Begin_txn -> (
            match t.txn with
            | Some _ ->
                Failed
                  { code = "TXN"; message = "already inside a transaction" }
            | None ->
                t.txn <- Some [];
                Msg "BEGIN")
        | Ast.Commit_txn -> (
            match t.txn with
            | None ->
                Failed { code = "TXN"; message = "no transaction in progress" }
            | Some [] ->
                t.txn <- None;
                Msg "COMMIT"
            | Some rev -> (
                match submit_unit t (List.rev rev) with
                | Overloaded _ as r ->
                    (* Buffer kept: the client may retry COMMIT once the
                       queue drains. *)
                    r
                | r ->
                    t.txn <- None;
                    r))
        | Ast.Rollback_txn -> (
            match t.txn with
            | None ->
                Failed { code = "TXN"; message = "no transaction in progress" }
            | Some _ ->
                t.txn <- None;
                Msg "ROLLBACK")
        | Ast.Select_stmt q -> run_select t q
        | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Truncate _ -> (
            match t.txn with
            | Some rev ->
                t.txn <- Some (sql :: rev);
                Queued (List.length rev + 1)
            | None -> submit_unit t [ sql ])
        | _ -> (
            (* DDL: single-statement units only, never buffered — snapshot
               rollback cannot undo DDL. *)
            match t.txn with
            | Some _ ->
                Failed
                  {
                    code = "TXN";
                    message = "DDL is not allowed inside a transaction";
                  }
            | None -> submit_unit t [ sql ]))
