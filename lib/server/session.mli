(** One client session: a session id, a tenant (the admission-control
    unit), and a transaction buffer.

    Statement routing:
    - [SELECT] runs immediately on the scheduler's read path (reads see
      every completed tick — read-committed — even mid-transaction);
    - DML outside a transaction submits a single-statement unit and
      waits for its tick;
    - [BEGIN] opens a buffer; DML inside it is queued client-side and
      [COMMIT] submits the whole buffer as one all-or-nothing unit
      (rolled back via snapshot capture/restore if any statement fails);
    - DDL (CREATE/DROP) is refused inside a transaction — units mix
      snapshot-undoable DML only, so rollback is always exact. *)

type t

type reply =
  | Affected of int              (** DML applied; row count *)
  | Rows of { cols : string list; rows : string list }
  | Msg of string                (** BEGIN/ROLLBACK/DDL acknowledgements *)
  | Queued of int                (** DML buffered in an open txn; depth *)
  | Overloaded of string         (** bounced by admission control *)
  | Failed of { code : string; message : string }

val create : Scheduler.t -> tenant:string -> t
val id : t -> int
val tenant : t -> string
val in_txn : t -> bool

val exec : t -> string -> reply
(** Execute one SQL statement (or BEGIN/COMMIT/ROLLBACK). Never raises:
    engine and parse errors come back as [Failed]. *)

val close : t -> unit
(** Discard any open transaction buffer and release the session. *)
