type request =
  | Hello of string
  | Sql of string
  | Begin
  | Commit
  | Rollback
  | Ping
  | Quit

type response =
  | Session of int
  | Ok_affected of int
  | Queued of int
  | Msg of string
  | Rows of { cols : string list; rows : string list }
  | Err of { code : string; message : string }
  | Overloaded of string
  | Pong
  | Bye

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

let render_request = function
  | Hello tenant -> "HELLO " ^ escape tenant
  | Sql text -> "SQL " ^ escape text
  | Begin -> "BEGIN"
  | Commit -> "COMMIT"
  | Rollback -> "ROLLBACK"
  | Ping -> "PING"
  | Quit -> "QUIT"

let parse_request line =
  let verb, rest = split_verb (String.trim line) in
  match (String.uppercase_ascii verb, rest) with
  | "HELLO", tenant when tenant <> "" -> Ok (Hello (unescape tenant))
  | "HELLO", _ -> Error "HELLO needs a tenant name"
  | "SQL", "" -> Error "SQL needs statement text"
  | "SQL", text -> Ok (Sql (unescape text))
  | "BEGIN", "" -> Ok Begin
  | "COMMIT", "" -> Ok Commit
  | "ROLLBACK", "" -> Ok Rollback
  | "PING", "" -> Ok Ping
  | "QUIT", "" -> Ok Quit
  | verb, _ -> Error (Printf.sprintf "unknown request %S" verb)

let render_response = function
  | Session id -> [ Printf.sprintf "SESSION %d" id ]
  | Ok_affected n -> [ Printf.sprintf "OK %d" n ]
  | Queued n -> [ Printf.sprintf "QUEUED %d" n ]
  | Msg text -> [ "MSG " ^ escape text ]
  | Rows { cols; rows } ->
      (Printf.sprintf "ROWS %d %s" (List.length rows)
         (String.concat "," (List.map escape cols)))
      :: List.map (fun r -> "ROW " ^ escape r) rows
      @ [ "END" ]
  | Err { code; message } -> [ Printf.sprintf "ERR %s %s" code (escape message) ]
  | Overloaded reason -> [ "OVERLOADED " ^ escape reason ]
  | Pong -> [ "PONG" ]
  | Bye -> [ "BYE" ]

let parse_response ~next_line =
  match next_line () with
  | None -> Error "connection closed"
  | Some line -> (
      let verb, rest = split_verb (String.trim line) in
      match (verb, rest) with
      | "SESSION", n -> (
          match int_of_string_opt n with
          | Some id -> Ok (Session id)
          | None -> Error "bad SESSION id")
      | "OK", n -> (
          match int_of_string_opt n with
          | Some n -> Ok (Ok_affected n)
          | None -> Error "bad OK count")
      | "QUEUED", n -> (
          match int_of_string_opt n with
          | Some n -> Ok (Queued n)
          | None -> Error "bad QUEUED depth")
      | "MSG", text -> Ok (Msg (unescape text))
      | "OVERLOADED", reason -> Ok (Overloaded (unescape reason))
      | "PONG", "" -> Ok Pong
      | "BYE", "" -> Ok Bye
      | "ERR", rest -> (
          let code, message = split_verb rest in
          match code with
          | "" -> Error "bad ERR frame"
          | _ -> Ok (Err { code; message = unescape message }))
      | "ROWS", rest -> (
          let count, cols = split_verb rest in
          match int_of_string_opt count with
          | None -> Error "bad ROWS count"
          | Some count ->
              let cols =
                if cols = "" then []
                else List.map unescape (String.split_on_char ',' cols)
              in
              let rec read_rows k acc =
                if k = 0 then
                  match next_line () with
                  | Some "END" -> Ok (Rows { cols; rows = List.rev acc })
                  | Some l -> Error (Printf.sprintf "expected END, got %S" l)
                  | None -> Error "connection closed inside ROWS"
                else
                  match next_line () with
                  | Some l -> (
                      match split_verb l with
                      | "ROW", text -> read_rows (k - 1) (unescape text :: acc)
                      | _ -> Error (Printf.sprintf "expected ROW, got %S" l))
                  | None -> Error "connection closed inside ROWS"
              in
              read_rows count [])
      | verb, _ -> Error (Printf.sprintf "unknown response %S" verb))

let response_of_reply = function
  | Session.Affected n -> Ok_affected n
  | Session.Rows { cols; rows } -> Rows { cols; rows }
  | Session.Msg text -> Msg text
  | Session.Queued n -> Queued n
  | Session.Overloaded reason -> Overloaded reason
  | Session.Failed { code; message } -> Err { code; message }
