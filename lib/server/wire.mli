(** The line protocol: newline-delimited UTF-8 frames, one request per
    line, one response per line except [ROWS] (a header line, one [ROW]
    line per row, then [END]).

    Grammar (payloads escaped: [\\] -> [\\\\], newline -> [\\n],
    carriage return -> [\\r], tab -> [\\t]):

    {v
    request  := "HELLO" SP tenant | "SQL" SP text | "BEGIN" | "COMMIT"
              | "ROLLBACK" | "PING" | "QUIT"
    response := "SESSION" SP int          session opened
              | "OK" SP int               DML applied (affected rows)
              | "QUEUED" SP int           DML buffered in open txn (depth)
              | "MSG" SP text             acknowledgement
              | "ROWS" SP n SP cols       cols = escaped names, comma-joined
                ("ROW" SP text) * n
                "END"
              | "ERR" SP code SP text
              | "OVERLOADED" SP text      admission control bounced
              | "PONG" | "BYE"
    v}

    A connection whose first line starts with ["GET "] is not speaking
    this protocol but HTTP; the server hands it to the [/metrics]
    responder. Pure codec — no I/O here, so it unit-tests without a
    socket. *)

type request =
  | Hello of string
  | Sql of string
  | Begin
  | Commit
  | Rollback
  | Ping
  | Quit

type response =
  | Session of int
  | Ok_affected of int
  | Queued of int
  | Msg of string
  | Rows of { cols : string list; rows : string list }
  | Err of { code : string; message : string }
  | Overloaded of string
  | Pong
  | Bye

val escape : string -> string
val unescape : string -> string

val render_request : request -> string
val parse_request : string -> (request, string) result

val render_response : response -> string list
(** One line per frame; [Rows] renders to [2 + length rows] lines. *)

val parse_response :
  next_line:(unit -> string option) -> (response, string) result
(** Read one response frame. [next_line] supplies successive protocol
    lines (None = connection closed mid-frame, an error). *)

val response_of_reply : Session.reply -> response
