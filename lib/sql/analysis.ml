(** Static analysis over the SQL AST: query classification and column
    reference collection. Used by the IVM rewriter to decide which
    propagation template applies. *)

(** Query shape classification, mirroring the paper's supported classes. *)
type query_class =
  | Projection        (** SELECT cols FROM t [WHERE ...] — no aggregation *)
  | Filter            (** like Projection but with a WHERE clause *)
  | Group_aggregate   (** GROUP BY + aggregates (or global aggregates) *)
  | Join_flat         (** two-table join, no aggregation *)
  | Join_aggregate    (** two-table join under GROUP BY + aggregates *)
  | Unsupported of string

let class_to_string = function
  | Projection -> "projection"
  | Filter -> "filter"
  | Group_aggregate -> "group_aggregate"
  | Join_flat -> "join"
  | Join_aggregate -> "join_aggregate"
  | Unsupported reason -> "unsupported: " ^ reason

let rec count_base_tables = function
  | Ast.Table_ref _ -> 1
  | Ast.Subquery _ -> -1000 (* derived tables are out of scope for IVM *)
  | Ast.Join (l, _, r, _) -> count_base_tables l + count_base_tables r

let classify (s : Ast.select) : query_class =
  if s.ctes <> [] then Unsupported "CTE in view definition"
  else if s.set_operation <> None then Unsupported "set operation in view definition"
  else if s.distinct then Unsupported "DISTINCT in view definition"
  else if s.limit <> None || s.offset <> None then Unsupported "LIMIT in view definition"
  else
    match s.from with
    | None -> Unsupported "view without FROM clause"
    | Some f ->
      let tables = count_base_tables f in
      let aggregated = Ast.select_has_aggregate s in
      if tables < 0 then Unsupported "derived table in view definition"
      else if tables = 1 then
        if aggregated then Group_aggregate
        else if s.where <> None then Filter
        else Projection
      else if tables <= 4 then
        if aggregated then Join_aggregate else Join_flat
      else Unsupported "more than four base tables"

(** Column references of an expression, as (qualifier option, name) pairs. *)
let rec expr_columns acc = function
  | Ast.Column (q, c) -> (q, c) :: acc
  | Ast.Lit _ | Ast.Star -> acc
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null (e, _) -> expr_columns acc e
  | Ast.Binary (_, a, b) | Ast.Like (a, b, _) ->
    expr_columns (expr_columns acc a) b
  | Ast.Func (_, args) -> List.fold_left expr_columns acc args
  | Ast.Aggregate (_, _, arg) ->
    (match arg with Some e -> expr_columns acc e | None -> acc)
  | Ast.Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> expr_columns (expr_columns acc c) v)
        acc branches
    in
    (match default with Some e -> expr_columns acc e | None -> acc)
  | Ast.In_list (e, es, _) -> List.fold_left expr_columns acc (e :: es)
  | Ast.In_select (e, _, _) ->
    (* the subquery is a separate (uncorrelated) scope *)
    expr_columns acc e
  | Ast.Between (e, lo, hi, _) -> List.fold_left expr_columns acc [ e; lo; hi ]

let select_columns (s : Ast.select) =
  let acc = List.fold_left (fun acc (e, _) -> expr_columns acc e) [] s.projections in
  let acc = match s.where with Some e -> expr_columns acc e | None -> acc in
  let acc = List.fold_left expr_columns acc s.group_by in
  let acc = match s.having with Some e -> expr_columns acc e | None -> acc in
  List.rev acc

(** The output column name of projection [i]: explicit alias, else a bare
    column name, else a synthesized [colN] name. Aggregates without alias
    get the aggregate name. *)
let projection_name i (e, alias) =
  match alias with
  | Some a -> a
  | None ->
    (match e with
     | Ast.Column (_, c) when c <> "*" -> c
     | Ast.Aggregate (agg, _, _) -> Ast.agg_name agg
     | _ -> Printf.sprintf "col%d" i)

let output_names (s : Ast.select) =
  List.mapi projection_name s.projections

(** True when the expression is deterministic and references no columns
    (safe to constant-fold). *)
let rec is_constant = function
  | Ast.Lit _ -> true
  | Ast.Column _ | Ast.Star | Ast.Aggregate _ -> false
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null (e, _) -> is_constant e
  | Ast.Binary (_, a, b) | Ast.Like (a, b, _) -> is_constant a && is_constant b
  | Ast.Func (name, args) ->
    (* random() etc. would be non-deterministic; none are implemented. *)
    name <> "random" && List.for_all is_constant args
  | Ast.Case (branches, default) ->
    List.for_all (fun (c, v) -> is_constant c && is_constant v) branches
    && (match default with Some e -> is_constant e | None -> true)
  | Ast.In_list (e, es, _) -> List.for_all is_constant (e :: es)
  | Ast.In_select _ -> false
  | Ast.Between (e, lo, hi, _) -> List.for_all is_constant [ e; lo; hi ]
