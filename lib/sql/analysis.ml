(** Static analysis over the SQL AST: query classification and column
    reference collection. Used by the IVM rewriter to decide which
    propagation template applies. *)

(** Why a view definition falls outside the supported IVM classes. Each
    constructor maps to one stable diagnostic code (see {!Diagnostic}). *)
type rejection =
  | Cte
  | Set_operation
  | Distinct
  | Limit_offset
  | No_from
  | Derived_table
  | Too_many_tables of int  (** actual base-table count *)

(** Query shape classification, mirroring the paper's supported classes. *)
type query_class =
  | Projection        (** SELECT cols FROM t [WHERE ...] — no aggregation *)
  | Filter            (** like Projection but with a WHERE clause *)
  | Group_aggregate   (** GROUP BY + aggregates (or global aggregates) *)
  | Join_flat         (** two-table join, no aggregation *)
  | Join_aggregate    (** two-table join under GROUP BY + aggregates *)
  | Unsupported of rejection

let max_join_tables = 4

let rejection_to_string = function
  | Cte -> "CTE in view definition"
  | Set_operation -> "set operation in view definition"
  | Distinct -> "DISTINCT in view definition"
  | Limit_offset -> "LIMIT in view definition"
  | No_from -> "view without FROM clause"
  | Derived_table -> "derived table in view definition"
  | Too_many_tables _ ->
    Printf.sprintf "more than %d base tables" max_join_tables

let class_to_string = function
  | Projection -> "projection"
  | Filter -> "filter"
  | Group_aggregate -> "group_aggregate"
  | Join_flat -> "join"
  | Join_aggregate -> "join_aggregate"
  | Unsupported reason -> "unsupported: " ^ rejection_to_string reason

(** Number of base tables under a FROM clause; [None] when it contains a
    derived table (out of scope for IVM). *)
let rec count_base_tables = function
  | Ast.Table_ref _ -> Some 1
  | Ast.Subquery _ -> None
  | Ast.Join (l, _, r, _) ->
    (match count_base_tables l, count_base_tables r with
     | Some a, Some b -> Some (a + b)
     | _ -> None)

let classify (s : Ast.select) : query_class =
  if s.ctes <> [] then Unsupported Cte
  else if s.set_operation <> None then Unsupported Set_operation
  else if s.distinct then Unsupported Distinct
  else if s.limit <> None || s.offset <> None then Unsupported Limit_offset
  else
    match s.from with
    | None -> Unsupported No_from
    | Some f ->
      let aggregated = Ast.select_has_aggregate s in
      (match count_base_tables f with
       | None -> Unsupported Derived_table
       | Some 1 ->
         if aggregated then Group_aggregate
         else if s.where <> None then Filter
         else Projection
       | Some tables when tables <= max_join_tables ->
         if aggregated then Join_aggregate else Join_flat
       | Some tables -> Unsupported (Too_many_tables tables))

(** Column references of an expression, as (qualifier option, name) pairs. *)
let rec expr_columns acc = function
  | Ast.Column (q, c) -> (q, c) :: acc
  | Ast.Lit _ | Ast.Star -> acc
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null (e, _) -> expr_columns acc e
  | Ast.Binary (_, a, b) | Ast.Like (a, b, _) ->
    expr_columns (expr_columns acc a) b
  | Ast.Func (_, args) -> List.fold_left expr_columns acc args
  | Ast.Aggregate (_, _, arg) ->
    (match arg with Some e -> expr_columns acc e | None -> acc)
  | Ast.Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> expr_columns (expr_columns acc c) v)
        acc branches
    in
    (match default with Some e -> expr_columns acc e | None -> acc)
  | Ast.In_list (e, es, _) -> List.fold_left expr_columns acc (e :: es)
  | Ast.In_select (e, _, _) ->
    (* the subquery is a separate (uncorrelated) scope *)
    expr_columns acc e
  | Ast.Between (e, lo, hi, _) -> List.fold_left expr_columns acc [ e; lo; hi ]

let select_columns (s : Ast.select) =
  let acc = List.fold_left (fun acc (e, _) -> expr_columns acc e) [] s.projections in
  let acc = match s.where with Some e -> expr_columns acc e | None -> acc in
  let acc = List.fold_left expr_columns acc s.group_by in
  let acc = match s.having with Some e -> expr_columns acc e | None -> acc in
  List.rev acc

(** The output column name of projection [i]: explicit alias, else a bare
    column name, else a synthesized [colN] name. Aggregates without alias
    get the aggregate name. *)
let projection_name i (e, alias) =
  match alias with
  | Some a -> a
  | None ->
    (match e with
     | Ast.Column (_, c) when c <> "*" -> c
     | Ast.Aggregate (agg, _, _) -> Ast.agg_name agg
     | _ -> Printf.sprintf "col%d" i)

let output_names (s : Ast.select) =
  List.mapi projection_name s.projections

(** First name that appears more than once, if any. Shared by the binder
    (coded diagnostic with a span) and [Shape.analyze] (hard rejection). *)
let duplicate_name (names : string list) : string option =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  dup sorted

(** True when the expression is deterministic and references no columns
    (safe to constant-fold). Function calls fold only when the function is
    in the {!Funcs} registry — implemented by the engine and deterministic. *)
let rec is_constant = function
  | Ast.Lit _ -> true
  | Ast.Column _ | Ast.Star | Ast.Aggregate _ -> false
  | Ast.Unary (_, e) | Ast.Cast (e, _) | Ast.Is_null (e, _) -> is_constant e
  | Ast.Binary (_, a, b) | Ast.Like (a, b, _) -> is_constant a && is_constant b
  | Ast.Func (name, args) ->
    Funcs.is_foldable name && List.for_all is_constant args
  | Ast.Case (branches, default) ->
    List.for_all (fun (c, v) -> is_constant c && is_constant v) branches
    && (match default with Some e -> is_constant e | None -> true)
  | Ast.In_list (e, es, _) -> List.for_all is_constant (e :: es)
  | Ast.In_select _ -> false
  | Ast.Between (e, lo, hi, _) -> List.for_all is_constant [ e; lo; hi ]
