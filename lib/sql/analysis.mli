(** Static analysis over the SQL AST: query classification and column
    reference collection, used by the IVM rewriter to pick a propagation
    template. *)

type query_class =
  | Projection        (** single table, no WHERE, no aggregation *)
  | Filter            (** single table with a WHERE clause *)
  | Group_aggregate   (** GROUP BY + aggregates, or global aggregates *)
  | Join_flat         (** two-table join, no aggregation *)
  | Join_aggregate    (** two-table join under aggregation *)
  | Unsupported of string

val class_to_string : query_class -> string

val classify : Ast.select -> query_class
(** Classify a view-defining query against the supported IVM classes. *)

val expr_columns :
  (string option * string) list -> Ast.expr -> (string option * string) list
(** Prepend the column references of an expression, as
    [(qualifier, name)] pairs. Subquery scopes are not entered. *)

val select_columns : Ast.select -> (string option * string) list
(** Column references of a select's projections, WHERE, GROUP BY and
    HAVING clauses. *)

val projection_name : int -> Ast.expr * string option -> string
(** Output name of projection [i]: the explicit alias, a bare column's
    name, the aggregate's name, or a synthesized [colN]. *)

val output_names : Ast.select -> string list

val is_constant : Ast.expr -> bool
(** True when the expression references no columns and is deterministic
    (safe to constant-fold). *)
