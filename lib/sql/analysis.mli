(** Static analysis over the SQL AST: query classification and column
    reference collection, used by the IVM rewriter to pick a propagation
    template. *)

type rejection =
  | Cte
  | Set_operation
  | Distinct
  | Limit_offset
  | No_from
  | Derived_table
  | Too_many_tables of int  (** actual base-table count *)
(** Why a view definition falls outside the supported classes; each
    constructor maps to one stable diagnostic code. *)

type query_class =
  | Projection        (** single table, no WHERE, no aggregation *)
  | Filter            (** single table with a WHERE clause *)
  | Group_aggregate   (** GROUP BY + aggregates, or global aggregates *)
  | Join_flat         (** two-table join, no aggregation *)
  | Join_aggregate    (** two-table join under aggregation *)
  | Unsupported of rejection

val max_join_tables : int

val rejection_to_string : rejection -> string
val class_to_string : query_class -> string

val classify : Ast.select -> query_class
(** Classify a view-defining query against the supported IVM classes. *)

val count_base_tables : Ast.from_clause -> int option
(** Number of base tables under a FROM clause; [None] when it contains a
    derived table. *)

val expr_columns :
  (string option * string) list -> Ast.expr -> (string option * string) list
(** Prepend the column references of an expression, as
    [(qualifier, name)] pairs. Subquery scopes are not entered. *)

val select_columns : Ast.select -> (string option * string) list
(** Column references of a select's projections, WHERE, GROUP BY and
    HAVING clauses. *)

val projection_name : int -> Ast.expr * string option -> string
(** Output name of projection [i]: the explicit alias, a bare column's
    name, the aggregate's name, or a synthesized [colN]. *)

val output_names : Ast.select -> string list

val duplicate_name : string list -> string option
(** First name that appears more than once, if any. *)

val is_constant : Ast.expr -> bool
(** True when the expression references no columns and is deterministic
    (safe to constant-fold). Functions fold only when the {!Funcs}
    registry marks them implemented and deterministic. *)
