(** Abstract syntax for the SQL fragment handled by OpenIVM.

    The fragment is deliberately the one a compiled IVM script needs:
    SELECT with CTEs, joins, grouping and aggregates; CREATE TABLE /
    (MATERIALIZED) VIEW / INDEX; INSERT (incl. OR REPLACE) from VALUES or a
    query; UPDATE; DELETE; DROP; EXPLAIN. *)

type typ =
  | T_int
  | T_float
  | T_text
  | T_bool
  | T_date

type lit =
  | L_null
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool

type unop =
  | Neg
  | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type agg =
  | Sum
  | Count
  | Min
  | Max
  | Avg

type set_op =
  | Union
  | Union_all
  | Except
  | Intersect

type expr =
  | Lit of lit
  | Column of string option * string  (** optional qualifier, column name *)
  | Star                              (** bare star in projections / COUNT *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Func of string * expr list        (** scalar function call, name lower-cased *)
  | Aggregate of agg * bool * expr option
      (** aggregate, DISTINCT flag, argument; [None] encodes COUNT star *)
  | Case of (expr * expr) list * expr option
  | Cast of expr * typ
  | In_list of expr * expr list * bool  (** expr, list, negated *)
  | In_select of expr * select * bool
      (** uncorrelated IN (SELECT ...); negated = NOT IN *)
  | Between of expr * expr * expr * bool
  | Is_null of expr * bool            (** negated = IS NOT NULL *)
  | Like of expr * expr * bool

and order_item = { order_expr : expr; descending : bool }

and select = {
  ctes : (string * select) list;
  distinct : bool;
  projections : (expr * string option) list;  (** expression, optional alias *)
  from : from_clause option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : int option;
  offset : int option;
  set_operation : (set_op * select) option;
}

and from_clause =
  | Table_ref of string * string option      (** table name, alias *)
  | Subquery of select * string              (** derived table, alias *)
  | Join of from_clause * join_kind * from_clause * expr option

and join_kind =
  | Inner
  | Left_outer
  | Right_outer
  | Full_outer
  | Cross

type column_def = {
  col_name : string;
  col_type : typ;
  col_not_null : bool;
  col_primary_key : bool;
}

type insert_source =
  | Values of expr list list
  | Query of select

type conflict_action =
  | No_conflict_clause
  | Or_replace          (** DuckDB: INSERT OR REPLACE *)
  | Do_nothing          (** ON CONFLICT DO NOTHING *)

type stmt =
  | Select_stmt of select
  | Create_table of {
      table : string;
      columns : column_def list;
      primary_key : string list;   (** table-level PK, may be empty *)
      if_not_exists : bool;
    }
  | Create_view of {
      view : string;
      materialized : bool;
      query : select;
    }
  | Create_index of {
      index : string;
      table : string;
      columns : string list;
      unique : bool;
    }
  | Insert of {
      table : string;
      columns : string list;       (** empty = table order *)
      source : insert_source;
      on_conflict : conflict_action;
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of {
      table : string;
      where : expr option;
    }
  | Drop of {
      kind : [ `Table | `View | `Index ];
      name : string;
      if_exists : bool;
    }
  | Truncate of string
  | Explain of stmt
  | Begin_txn
  | Commit_txn
  | Rollback_txn

let empty_select = {
  ctes = [];
  distinct = false;
  projections = [];
  from = None;
  where = None;
  group_by = [];
  having = None;
  order_by = [];
  limit = None;
  offset = None;
  set_operation = None;
}

let typ_to_string = function
  | T_int -> "INTEGER"
  | T_float -> "DOUBLE"
  | T_text -> "VARCHAR"
  | T_bool -> "BOOLEAN"
  | T_date -> "DATE"

let agg_name = function
  | Sum -> "sum"
  | Count -> "count"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

(* Structural helpers used across the compiler. *)

let rec expr_contains_aggregate = function
  | Aggregate _ -> true
  | Lit _ | Column _ | Star -> false
  | Unary (_, e) | Cast (e, _) | Is_null (e, _) -> expr_contains_aggregate e
  | Binary (_, a, b) | Like (a, b, _) ->
    expr_contains_aggregate a || expr_contains_aggregate b
  | Func (_, args) -> List.exists expr_contains_aggregate args
  | Case (branches, default) ->
    List.exists
      (fun (c, v) -> expr_contains_aggregate c || expr_contains_aggregate v)
      branches
    || (match default with Some e -> expr_contains_aggregate e | None -> false)
  | In_list (e, es, _) -> List.exists expr_contains_aggregate (e :: es)
  | In_select (e, _, _) -> expr_contains_aggregate e
  | Between (e, lo, hi, _) ->
    List.exists expr_contains_aggregate [ e; lo; hi ]

let select_has_aggregate (s : select) =
  s.group_by <> []
  || List.exists (fun (e, _) -> expr_contains_aggregate e) s.projections
  || (match s.having with Some e -> expr_contains_aggregate e | None -> false)

(** Collect the aggregates of an expression, left to right. *)
let rec collect_aggregates acc = function
  | Aggregate (a, d, arg) as node -> (a, d, arg, node) :: acc
  | Lit _ | Column _ | Star -> acc
  | Unary (_, e) | Cast (e, _) | Is_null (e, _) -> collect_aggregates acc e
  | Binary (_, a, b) | Like (a, b, _) ->
    collect_aggregates (collect_aggregates acc a) b
  | Func (_, args) -> List.fold_left collect_aggregates acc args
  | Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> collect_aggregates (collect_aggregates acc c) v)
        acc branches
    in
    (match default with Some e -> collect_aggregates acc e | None -> acc)
  | In_list (e, es, _) -> List.fold_left collect_aggregates acc (e :: es)
  | In_select (e, _, _) -> collect_aggregates acc e
  | Between (e, lo, hi, _) ->
    List.fold_left collect_aggregates acc [ e; lo; hi ]

(** All base-table names referenced by a FROM clause (including CTE names —
    the caller decides how to resolve those). *)
let rec from_tables = function
  | Table_ref (t, _) -> [ t ]
  | Subquery (s, _) -> select_tables s
  | Join (l, _, r, _) -> from_tables l @ from_tables r

and select_tables (s : select) =
  let own = match s.from with Some f -> from_tables f | None -> [] in
  let cte_tables = List.concat_map (fun (_, q) -> select_tables q) s.ctes in
  let set_tables =
    match s.set_operation with
    | Some (_, rhs) -> select_tables rhs
    | None -> []
  in
  cte_tables @ own @ set_tables

(** Rewrite every base-table reference [t] in FROM clauses (at any depth:
    CTE bodies, derived tables, set-operation arms, and uncorrelated
    IN (SELECT ...) subqueries) to [f t]. A renamed [Table_ref] with no
    alias keeps its original name as the alias, so column references
    qualified by the old name stay valid — the parallel refresh driver
    uses this to point a compiled propagation statement at per-shard
    tables without touching its projections or predicates. Names bound by
    an in-scope CTE are never renamed: they refer to the CTE, not to a
    catalog table. *)
let rename_tables (f : string -> string) (q : select) : select =
  let rec go_select scope (s : select) =
    (* each CTE body sees the outer scope plus the CTEs before it *)
    let scope', ctes =
      List.fold_left
        (fun (scope, acc) (name, body) ->
           (name :: scope, (name, go_select scope body) :: acc))
        (scope, []) s.ctes
    in
    let ctes = List.rev ctes in
    { s with
      ctes;
      projections =
        List.map (fun (e, a) -> (go_expr scope' e, a)) s.projections;
      from = Option.map (go_from scope') s.from;
      where = Option.map (go_expr scope') s.where;
      group_by = List.map (go_expr scope') s.group_by;
      having = Option.map (go_expr scope') s.having;
      order_by =
        List.map
          (fun o -> { o with order_expr = go_expr scope' o.order_expr })
          s.order_by;
      set_operation =
        Option.map (fun (op, rhs) -> (op, go_select scope' rhs)) s.set_operation;
    }
  and go_from scope = function
    | Table_ref (t, alias) when not (List.mem t scope) ->
      let t' = f t in
      if String.equal t' t then Table_ref (t, alias)
      else Table_ref (t', Some (Option.value alias ~default:t))
    | Table_ref _ as fr -> fr
    | Subquery (s, alias) -> Subquery (go_select scope s, alias)
    | Join (l, k, r, on) ->
      Join (go_from scope l, k, go_from scope r, Option.map (go_expr scope) on)
  and go_expr scope e =
    match e with
    | Lit _ | Column _ | Star -> e
    | Unary (op, a) -> Unary (op, go_expr scope a)
    | Binary (op, a, b) -> Binary (op, go_expr scope a, go_expr scope b)
    | Func (name, args) -> Func (name, List.map (go_expr scope) args)
    | Aggregate (a, d, arg) -> Aggregate (a, d, Option.map (go_expr scope) arg)
    | Case (branches, default) ->
      Case
        ( List.map (fun (c, v) -> (go_expr scope c, go_expr scope v)) branches,
          Option.map (go_expr scope) default )
    | Cast (a, t) -> Cast (go_expr scope a, t)
    | In_list (a, es, neg) ->
      In_list (go_expr scope a, List.map (go_expr scope) es, neg)
    | In_select (a, sub, neg) ->
      In_select (go_expr scope a, go_select scope sub, neg)
    | Between (a, lo, hi, neg) ->
      Between (go_expr scope a, go_expr scope lo, go_expr scope hi, neg)
    | Is_null (a, neg) -> Is_null (go_expr scope a, neg)
    | Like (a, b, neg) -> Like (go_expr scope a, go_expr scope b, neg)
  in
  go_select [] q

let rec map_expr f e =
  let e' =
    match e with
    | Lit _ | Column _ | Star -> e
    | Unary (op, a) -> Unary (op, map_expr f a)
    | Binary (op, a, b) -> Binary (op, map_expr f a, map_expr f b)
    | Func (name, args) -> Func (name, List.map (map_expr f) args)
    | Aggregate (a, d, arg) -> Aggregate (a, d, Option.map (map_expr f) arg)
    | Case (branches, default) ->
      Case
        ( List.map (fun (c, v) -> (map_expr f c, map_expr f v)) branches,
          Option.map (map_expr f) default )
    | Cast (a, t) -> Cast (map_expr f a, t)
    | In_list (a, es, neg) -> In_list (map_expr f a, List.map (map_expr f) es, neg)
    | In_select (a, q, neg) -> In_select (map_expr f a, q, neg)
    | Between (a, lo, hi, neg) ->
      Between (map_expr f a, map_expr f lo, map_expr f hi, neg)
    | Is_null (a, neg) -> Is_null (map_expr f a, neg)
    | Like (a, b, neg) -> Like (map_expr f a, map_expr f b, neg)
  in
  f e'
