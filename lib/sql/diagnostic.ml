(** Positioned, coded diagnostics for the SQL front end.

    Every rejection or advisory the semantic pass can produce has a stable
    code: [SEM0xx] for binding/typing problems (unknown column, bad arity,
    type errors) and [IVM0xx] for incrementalizability rules ([IVM1xx] are
    warnings/hints layered on supported views). Diagnostics carry an
    optional byte-offset span into the original SQL text and render either
    as human text with caret underlining or as JSON for tooling. *)

type severity = Error | Warning | Hint

type span = {
  start_pos : int;  (** byte offset of the first character *)
  stop_pos : int;   (** byte offset one past the last character *)
}

type t = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  hint : string option;  (** suggested rewrite / follow-up, when one exists *)
}

let span ~start_pos ~stop_pos =
  { start_pos; stop_pos = max stop_pos (start_pos + 1) }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let make ~code ~severity ?span ?hint message =
  { code; severity; message; span; hint }

(* --- ordering and summaries --- *)

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare_diag a b =
  let pos d = match d.span with Some s -> s.start_pos | None -> max_int in
  match compare (pos a) (pos b) with
  | 0 ->
    (match compare (severity_rank a.severity) (severity_rank b.severity) with
     | 0 -> String.compare a.code b.code
     | c -> c)
  | c -> c

let sort diags = List.stable_sort compare_diag diags

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* --- source positions --- *)

(** 1-based (line, column) of a byte offset. Columns count bytes. *)
let line_col (src : string) (pos : int) : int * int =
  let pos = min pos (String.length src) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin incr line; col := 1 end else incr col
  done;
  (!line, !col)

(** The source line containing [pos]: (line_start, line_stop) offsets,
    newline excluded. *)
let line_bounds (src : string) (pos : int) : int * int =
  let n = String.length src in
  let pos = min pos (max 0 (n - 1)) in
  let rec back i = if i <= 0 || src.[i - 1] = '\n' then i else back (i - 1) in
  let rec fwd i = if i >= n || src.[i] = '\n' then i else fwd (i + 1) in
  (back pos, fwd pos)

(* --- human renderer --- *)

let render ?(file = "<input>") ~src (d : t) : string =
  let buf = Buffer.create 128 in
  let head =
    match d.span with
    | Some s ->
      let line, col = line_col src s.start_pos in
      Printf.sprintf "%s:%d:%d: %s[%s]: %s" file line col
        (severity_to_string d.severity) d.code d.message
    | None ->
      Printf.sprintf "%s: %s[%s]: %s" file
        (severity_to_string d.severity) d.code d.message
  in
  Buffer.add_string buf head;
  (match d.span with
   | Some s when src <> "" && s.start_pos < String.length src ->
     let line, _ = line_col src s.start_pos in
     let lstart, lstop = line_bounds src s.start_pos in
     let text = String.sub src lstart (lstop - lstart) in
     let gutter = Printf.sprintf "%4d | " line in
     Buffer.add_char buf '\n';
     Buffer.add_string buf (gutter ^ text);
     (* caret underline, clipped to the end of the first line *)
     let u_start = s.start_pos - lstart in
     let u_stop = min s.stop_pos lstop - lstart in
     let u_len = max 1 (u_stop - u_start) in
     Buffer.add_char buf '\n';
     Buffer.add_string buf (String.make (String.length gutter - 2) ' ');
     Buffer.add_string buf "| ";
     Buffer.add_string buf (String.make u_start ' ');
     Buffer.add_string buf (String.make u_len '^')
   | _ -> ());
  (match d.hint with
   | Some h ->
     Buffer.add_char buf '\n';
     Buffer.add_string buf ("  hint: " ^ h)
   | None -> ());
  Buffer.contents buf

let render_all ?file ~src diags =
  String.concat "\n"
    (List.map (fun d -> render ?file ~src d) (sort diags))

(* --- JSON renderer --- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~src (d : t) : string =
  let fields =
    [ Printf.sprintf "\"code\":\"%s\"" (json_escape d.code);
      Printf.sprintf "\"severity\":\"%s\"" (severity_to_string d.severity);
      Printf.sprintf "\"message\":\"%s\"" (json_escape d.message) ]
    @ (match d.span with
       | Some s ->
         let line, col = line_col src s.start_pos in
         let eline, ecol = line_col src s.stop_pos in
         [ Printf.sprintf "\"start\":%d" s.start_pos;
           Printf.sprintf "\"stop\":%d" s.stop_pos;
           Printf.sprintf "\"line\":%d" line;
           Printf.sprintf "\"col\":%d" col;
           Printf.sprintf "\"end_line\":%d" eline;
           Printf.sprintf "\"end_col\":%d" ecol ]
       | None -> [])
    @ (match d.hint with
       | Some h -> [ Printf.sprintf "\"hint\":\"%s\"" (json_escape h) ]
       | None -> [])
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json ?(file = "<input>") ~src diags : string =
  let diags = sort diags in
  Printf.sprintf
    "{\"file\":\"%s\",\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"hints\":%d}"
    (json_escape file)
    (String.concat "," (List.map (to_json ~src) diags))
    (count Error diags) (count Warning diags) (count Hint diags)

(* --- "did you mean" --- *)

let levenshtein (a : string) (b : string) : int =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(** Closest candidate within edit distance 2 (ties broken by list order). *)
let suggest (name : string) (candidates : string list) : string option =
  let best =
    List.fold_left
      (fun acc c ->
         let d = levenshtein name c in
         match acc with
         | Some (_, bd) when bd <= d -> acc
         | _ when d <= 2 && c <> name -> Some (c, d)
         | _ -> acc)
      None candidates
  in
  Option.map fst best

(* --- the code catalog ---

   One constructor per rule keeps every code + message + default hint
   defined in exactly one place; Shape, Sema and the CLI all build
   diagnostics through these. *)

let err code ?span ?hint message = make ~code ~severity:Error ?span ?hint message
let warn code ?span ?hint message = make ~code ~severity:Warning ?span ?hint message
let note code ?span ?hint message = make ~code ~severity:Hint ?span ?hint message

(* SEM0xx: lexing/parsing/binding/typing *)

let parse_error ?span msg = err "SEM000" ?span msg

let unknown_table ?span ?suggestion name =
  err "SEM001" ?span
    ?hint:(Option.map (Printf.sprintf "did you mean %S?") suggestion)
    (Printf.sprintf "unknown table %S" name)

let unknown_column ?span ?suggestion name =
  err "SEM002" ?span
    ?hint:(Option.map (Printf.sprintf "did you mean %S?") suggestion)
    (Printf.sprintf "unknown column %S" name)

let ambiguous_column ?span name bindings =
  let hint =
    match bindings with
    | [] -> None  (* no qualified candidates: nothing to suggest *)
    | bs ->
      Some (Printf.sprintf "qualify it: %s"
              (String.concat " or "
                 (List.map (fun b -> b ^ "." ^ name) bs)))
  in
  err "SEM003" ?span ?hint (Printf.sprintf "ambiguous column %S" name)

let unknown_qualifier ?span ?suggestion name =
  err "SEM004" ?span
    ?hint:(Option.map (Printf.sprintf "did you mean %S?") suggestion)
    (Printf.sprintf "unknown table or alias %S" name)

let unknown_function ?span ?suggestion name arity =
  err "SEM005" ?span
    ?hint:(Option.map (Printf.sprintf "did you mean %s(...)?") suggestion)
    (Printf.sprintf "unknown function %s/%d" name arity)

let wrong_arity ?span name ~expected ~got =
  err "SEM006" ?span
    (Printf.sprintf "%s expects %s argument%s, got %d"
       (String.uppercase_ascii name) expected
       (if expected = "1" then "" else "s") got)

let nested_aggregate ?span () =
  err "SEM007" ?span "aggregate calls cannot be nested"

let aggregate_not_allowed ?span context =
  err "SEM008" ?span
    ~hint:"aggregates are only valid in the SELECT list and HAVING"
    (Printf.sprintf "aggregate is not allowed in %s" context)

let aggregate_type ?span agg typ =
  err "SEM009" ?span
    (Printf.sprintf "%s over %s" (String.uppercase_ascii agg) typ)

let arithmetic_type ?span op typ =
  err "SEM010" ?span
    (Printf.sprintf "operator %s cannot be applied to %s" op typ)

let duplicate_column ?span name =
  err "SEM011" ?span
    ~hint:"rename one of the projections with AS"
    (Printf.sprintf "duplicate output column %S" name)

let nondeterministic_function ?span name =
  err "SEM012" ?span
    (Printf.sprintf "non-deterministic function %s() is not supported" name)

let non_boolean_predicate ?span context typ =
  warn "SEM013" ?span
    ~hint:"the engine treats non-TRUE values as false"
    (Printf.sprintf "%s condition has type %s, not BOOLEAN" context typ)

(* IVM0xx: incrementalizability errors *)

let cte_unsupported ?span () = err "IVM001" ?span "CTE in view definition"

let set_op_unsupported ?span () =
  err "IVM002" ?span "set operation in view definition"

let distinct_unsupported ?span () =
  err "IVM003" ?span
    ~hint:"GROUP BY all projected columns instead (equivalent and supported)"
    "DISTINCT in view definition"

let limit_unsupported ?span () =
  err "IVM004" ?span
    ~hint:"drop LIMIT from the definition and apply it when querying the view"
    "LIMIT in view definition"

let no_from_clause ?span () = err "IVM005" ?span "view without FROM clause"

let derived_table_unsupported ?span () =
  err "IVM006" ?span
    ~hint:"materialize the inner query as its own view and join against it"
    "derived table in view definition"

let too_many_tables ?span ~max () =
  err "IVM007" ?span
    (Printf.sprintf "joins of more than %d base tables are not supported" max)

let outer_join_unsupported ?span () =
  err "IVM008" ?span
    ~hint:"rewrite as an INNER JOIN, handling unmatched rows outside the view"
    "outer joins are not supported for IVM"

let order_by_unsupported ?span () =
  err "IVM009" ?span
    ~hint:"drop ORDER BY from the definition and sort when querying the view"
    "ORDER BY in view definition"

let having_unsupported ?span () =
  err "IVM010" ?span
    ~hint:"maintain the aggregate without HAVING and filter when querying the view"
    "HAVING is not supported for IVM views"

let star_with_aggregates ?span () =
  err "IVM011" ?span "star projections cannot be mixed with aggregates"

let distinct_aggregate ?span () =
  err "IVM012" ?span "DISTINCT aggregates are not supported"

let projection_not_group ?span sql =
  err "IVM013" ?span
    ~hint:"project the GROUP BY expression unchanged, or compute derived \
           expressions in a query over the view"
    (Printf.sprintf
       "projection %s is neither a GROUP BY expression nor a bare aggregate"
       sql)

let group_not_projected ?span () =
  err "IVM014" ?span
    ~hint:"add the expression to the SELECT list"
    "every GROUP BY expression must appear in the select list"

let not_materialized ?span () =
  err "IVM015" ?span
    ~hint:"add the MATERIALIZED keyword"
    "expected CREATE MATERIALIZED VIEW (got plain VIEW)"

let not_a_view ?span () =
  err "IVM016" ?span "expected a CREATE MATERIALIZED VIEW statement"

(* IVM2xx: cascading multi-view maintenance *)

let cascade_cycle ?span ~view ~path () =
  err "IVM201" ?span
    ~hint:"break the cycle by defining one of the views over base tables only"
    (Printf.sprintf
       "materialized view %s would create a dependency cycle: %s" view
       (String.concat " -> " path))

let cascade_dependents ?span ~view ~dependents () =
  err "IVM202" ?span
    ~hint:(Printf.sprintf "drop %s first" (String.concat ", " dependents))
    (Printf.sprintf
       "cannot drop materialized view %s: %d dependent view(s) read it (%s)"
       view (List.length dependents) (String.concat ", " dependents))

let cascade_dml_on_view ?span ~view () =
  err "IVM203" ?span
    ~hint:"modify the base tables instead; the view is maintained automatically"
    (Printf.sprintf
       "direct DML on materialized view %s would desynchronize it from its \
        definition" view)

(* IVM1xx: warnings and hints on supported views *)

let min_max_recompute ?span agg =
  warn "IVM101" ?span
    ~hint:"deletes touching a group's extremum recompute that group; compile \
           with --strategy rederive_affected or keep deletes rare"
    (Printf.sprintf "%s cannot be maintained incrementally under deletes"
       (String.uppercase_ascii agg))

let avg_decomposition ?span () =
  note "IVM102" ?span
    "AVG is maintained as hidden SUM and COUNT state columns and re-divided \
     on read"

let unindexed_key ?span ~table ~column () =
  warn "IVM103" ?span
    ~hint:(Printf.sprintf "CREATE INDEX idx_%s_%s ON %s(%s)" table column
             table column)
    (Printf.sprintf
       "key column %s.%s has no index; rederive and trigger lookups scan the \
        table" table column)

(* --- registry (docs + tests) --- *)

let registry : (string * severity * string) list =
  [ ("SEM000", Error, "syntax or statement execution error");
    ("SEM001", Error, "unknown table");
    ("SEM002", Error, "unknown column");
    ("SEM003", Error, "ambiguous unqualified column");
    ("SEM004", Error, "unknown table or alias qualifier");
    ("SEM005", Error, "unknown function");
    ("SEM006", Error, "wrong number of arguments");
    ("SEM007", Error, "nested aggregate");
    ("SEM008", Error, "aggregate outside SELECT list / HAVING");
    ("SEM009", Error, "aggregate over a non-numeric argument");
    ("SEM010", Error, "arithmetic on a non-numeric operand");
    ("SEM011", Error, "duplicate output column");
    ("SEM012", Error, "non-deterministic function");
    ("SEM013", Warning, "non-boolean WHERE/HAVING/ON condition");
    ("IVM001", Error, "CTE in view definition");
    ("IVM002", Error, "set operation in view definition");
    ("IVM003", Error, "DISTINCT in view definition");
    ("IVM004", Error, "LIMIT/OFFSET in view definition");
    ("IVM005", Error, "view without FROM clause");
    ("IVM006", Error, "derived table in view definition");
    ("IVM007", Error, "too many base tables");
    ("IVM008", Error, "outer join");
    ("IVM009", Error, "ORDER BY in view definition");
    ("IVM010", Error, "HAVING in view definition");
    ("IVM011", Error, "star projection mixed with aggregates");
    ("IVM012", Error, "DISTINCT aggregate");
    ("IVM013", Error, "projection neither GROUP BY key nor bare aggregate");
    ("IVM014", Error, "GROUP BY expression not projected");
    ("IVM015", Error, "plain VIEW where MATERIALIZED is required");
    ("IVM016", Error, "statement is not CREATE MATERIALIZED VIEW");
    ("IVM101", Warning, "MIN/MAX forces recompute on delete");
    ("IVM102", Hint, "AVG decomposed into SUM/COUNT state");
    ("IVM103", Warning, "unindexed group/join key");
    ("IVM201", Error, "materialized-view dependency cycle");
    ("IVM202", Error, "drop of a view with dependent views");
    ("IVM203", Error, "direct DML on a maintained view") ]
