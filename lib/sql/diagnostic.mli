(** Positioned, coded diagnostics for the SQL front end.

    Stable codes: [SEM0xx] binding/typing, [IVM0xx] incrementalizability
    errors, [IVM1xx] warnings/hints on supported views. Spans are byte
    offsets into the original SQL source. *)

type severity = Error | Warning | Hint

type span = {
  start_pos : int;  (** byte offset of the first character *)
  stop_pos : int;   (** byte offset one past the last character *)
}

type t = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  hint : string option;
}

val span : start_pos:int -> stop_pos:int -> span
(** Clamps to a non-empty extent. *)

val severity_to_string : severity -> string

val make :
  code:string -> severity:severity -> ?span:span -> ?hint:string -> string -> t

val sort : t list -> t list
(** By source position (spanless last), then severity, then code. *)

val count : severity -> t list -> int
val has_errors : t list -> bool

val line_col : string -> int -> int * int
(** [line_col src pos] is the 1-based (line, column) of a byte offset. *)

val render : ?file:string -> src:string -> t -> string
(** Human text: [file:line:col: severity[CODE]: message], the source line,
    a caret underline of the span, and the hint when present. *)

val render_all : ?file:string -> src:string -> t list -> string

val to_json : src:string -> t -> string

val list_to_json : ?file:string -> src:string -> t list -> string
(** [{"file":...,"diagnostics":[...],"errors":n,"warnings":n,"hints":n}] *)

val suggest : string -> string list -> string option
(** Closest candidate within edit distance 2, for "did you mean". *)

(** {1 Code catalog} — one constructor per rule, shared by every producer. *)

val parse_error : ?span:span -> string -> t
val unknown_table : ?span:span -> ?suggestion:string -> string -> t
val unknown_column : ?span:span -> ?suggestion:string -> string -> t
val ambiguous_column : ?span:span -> string -> string list -> t
val unknown_qualifier : ?span:span -> ?suggestion:string -> string -> t
val unknown_function : ?span:span -> ?suggestion:string -> string -> int -> t
val wrong_arity : ?span:span -> string -> expected:string -> got:int -> t
val nested_aggregate : ?span:span -> unit -> t
val aggregate_not_allowed : ?span:span -> string -> t
val aggregate_type : ?span:span -> string -> string -> t
val arithmetic_type : ?span:span -> string -> string -> t
val duplicate_column : ?span:span -> string -> t
val nondeterministic_function : ?span:span -> string -> t
val non_boolean_predicate : ?span:span -> string -> string -> t

val cte_unsupported : ?span:span -> unit -> t
val set_op_unsupported : ?span:span -> unit -> t
val distinct_unsupported : ?span:span -> unit -> t
val limit_unsupported : ?span:span -> unit -> t
val no_from_clause : ?span:span -> unit -> t
val derived_table_unsupported : ?span:span -> unit -> t
val too_many_tables : ?span:span -> max:int -> unit -> t
val outer_join_unsupported : ?span:span -> unit -> t
val order_by_unsupported : ?span:span -> unit -> t
val having_unsupported : ?span:span -> unit -> t
val star_with_aggregates : ?span:span -> unit -> t
val distinct_aggregate : ?span:span -> unit -> t
val projection_not_group : ?span:span -> string -> t
val group_not_projected : ?span:span -> unit -> t
val not_materialized : ?span:span -> unit -> t
val not_a_view : ?span:span -> unit -> t

val cascade_cycle : ?span:span -> view:string -> path:string list -> unit -> t
val cascade_dependents :
  ?span:span -> view:string -> dependents:string list -> unit -> t
val cascade_dml_on_view : ?span:span -> view:string -> unit -> t

val min_max_recompute : ?span:span -> string -> t
val avg_decomposition : ?span:span -> unit -> t
val unindexed_key : ?span:span -> table:string -> column:string -> unit -> t

val registry : (string * severity * string) list
(** Every code with its default severity and a one-line summary. *)
