(** Target SQL dialects for the emitter.

    The paper's compiler emits SQL in "the desired SQL dialect, chosen
    through a flag" (the Coral-inspired DuckAST layer). The observable
    differences our emitter must handle are identifier quoting, boolean
    literals, and — crucially for IVM — the *upsert* syntax used by step 2
    of the propagation script. *)

type upsert_syntax =
  | Insert_or_replace
      (** DuckDB: [INSERT OR REPLACE INTO t ...]; requires a PK/ART index. *)
  | On_conflict_do_update
      (** PostgreSQL: [INSERT INTO t ... ON CONFLICT (keys) DO UPDATE SET
          c = EXCLUDED.c, ...]. *)

type t = {
  name : string;
  upsert : upsert_syntax;
  quote_char : char;
}

let duckdb = { name = "duckdb"; upsert = Insert_or_replace; quote_char = '"' }

let postgres =
  { name = "postgres"; upsert = On_conflict_do_update; quote_char = '"' }

(** The built-in Minidb engine speaks the DuckDB dialect. *)
let minidb = { duckdb with name = "minidb" }

let all = [ duckdb; postgres; minidb ]

let of_string s =
  match String.lowercase_ascii s with
  | "duckdb" -> Some duckdb
  | "postgres" | "postgresql" -> Some postgres
  | "minidb" -> Some minidb
  | _ -> None

(* Identifiers composed of lowercase letters, digits and underscores need no
   quoting in either dialect. *)
let needs_quoting ident =
  ident = ""
  || Token.is_keyword (String.lowercase_ascii ident)
  || (let bad = ref false in
      String.iteri
        (fun i c ->
           let ok =
             (c >= 'a' && c <= 'z') || c = '_'
             || (i > 0 && c >= '0' && c <= '9')
           in
           if not ok then bad := true)
        ident;
      !bad)

let quote_ident d ident =
  if needs_quoting ident then Printf.sprintf "%c%s%c" d.quote_char ident d.quote_char
  else ident
