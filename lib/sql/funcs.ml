(** The scalar-function registry: the single list of function names the
    engine implements ([Openivm_engine.Expr.scalar_function]), their arity
    ranges, and determinism. The binder checks calls against it and the
    constant folder ([Analysis.is_constant]) only folds functions that are
    both implemented and deterministic — replacing the old ad-hoc
    [name <> "random"] test, which happily "folded" unimplemented calls. *)

type spec = {
  name : string;
  min_args : int;
  max_args : int option;  (** [None] = variadic *)
  deterministic : bool;
}

let v ?max name min_args =
  { name; min_args;
    max_args = (match max with Some m -> Some m | None -> Some min_args);
    deterministic = true }

let variadic name min_args =
  { name; min_args; max_args = None; deterministic = true }

(** Implemented scalar functions — keep in lockstep with the match arms of
    [Expr.scalar_function]; [Test_diagnostics] cross-checks the alignment. *)
let implemented : spec list =
  [ variadic "coalesce" 1;
    v "ifnull" 2;
    v "nullif" 2;
    v "abs" 1;
    v "round" 1 ~max:2;
    v "floor" 1;
    v "ceil" 1;
    v "ceiling" 1;
    v "sqrt" 1;
    v "power" 2;
    v "pow" 2;
    v "lower" 1;
    v "upper" 1;
    v "length" 1;
    v "substr" 2 ~max:3;
    v "substring" 2 ~max:3;
    variadic "concat" 0;
    variadic "greatest" 1;
    variadic "least" 1;
    v "sign" 1;
    v "year" 1;
    v "month" 1;
    v "day" 1 ]

(** Well-known non-deterministic function names. None are implemented; they
    are recognized so the binder can say "non-deterministic" instead of
    "unknown", and so the folder never treats them as constants. *)
let nondeterministic : string list =
  [ "random"; "rand"; "uuid"; "now"; "current_timestamp"; "current_date";
    "current_time" ]

let lookup (name : string) : spec option =
  List.find_opt (fun s -> s.name = name) implemented

let is_implemented name = lookup name <> None

let is_nondeterministic name = List.mem name nondeterministic

(** Safe to constant-fold: implemented and deterministic. *)
let is_foldable name =
  match lookup name with
  | Some s -> s.deterministic
  | None -> false

let arity_ok (s : spec) (n : int) : bool =
  n >= s.min_args
  && (match s.max_args with Some m -> n <= m | None -> true)

(** Human arity description: "1", "2", "1-2" or "at least 1". *)
let arity_to_string (s : spec) : string =
  match s.max_args with
  | Some m when m = s.min_args -> string_of_int m
  | Some m -> Printf.sprintf "%d-%d" s.min_args m
  | None -> Printf.sprintf "at least %d" s.min_args

let names () = List.map (fun s -> s.name) implemented
