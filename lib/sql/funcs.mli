(** The scalar-function registry: names the engine implements, their arity
    ranges, and determinism. Shared by the binder (unknown-function and
    arity diagnostics) and by constant folding ([Analysis.is_constant]). *)

type spec = {
  name : string;
  min_args : int;
  max_args : int option;  (** [None] = variadic *)
  deterministic : bool;
}

val implemented : spec list
(** Kept in lockstep with [Openivm_engine.Expr.scalar_function]. *)

val nondeterministic : string list
(** Recognized non-deterministic names (none are implemented). *)

val lookup : string -> spec option
val is_implemented : string -> bool
val is_nondeterministic : string -> bool

val is_foldable : string -> bool
(** Implemented and deterministic — safe to constant-fold. *)

val arity_ok : spec -> int -> bool
val arity_to_string : spec -> string
val names : unit -> string list
