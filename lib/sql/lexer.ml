(** Hand-written SQL lexer.

    Produces a list of positioned tokens. Comments ([-- ...] and [/* ... */])
    and whitespace are skipped. String literals use single quotes with ['']
    as the escape for a quote. *)

exception Error of string * int (** message, byte offset *)

type positioned = {
  tok : Token.t;
  pos : int;   (** byte offset of the token's first character *)
  stop : int;  (** byte offset one past the token's last character *)
}

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : positioned list =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos stop = toks := { tok; pos; stop } :: !toks in
  let rec skip_block_comment i depth =
    if i + 1 >= n then raise (Error ("unterminated block comment", i))
    else if src.[i] = '*' && src.[i + 1] = '/' then
      if depth = 1 then i + 2 else skip_block_comment (i + 2) (depth - 1)
    else if src.[i] = '/' && src.[i + 1] = '*' then
      skip_block_comment (i + 2) (depth + 1)
    else skip_block_comment (i + 1) depth
  in
  let rec scan i =
    if i >= n then emit Token.Eof i i
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        scan (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        scan (skip_block_comment (i + 2) 1)
      | '(' -> emit Lparen i (i + 1); scan (i + 1)
      | ')' -> emit Rparen i (i + 1); scan (i + 1)
      | ',' -> emit Comma i (i + 1); scan (i + 1)
      | ';' -> emit Semicolon i (i + 1); scan (i + 1)
      | '.' when not (i + 1 < n && is_digit src.[i + 1]) ->
        emit Dot i (i + 1); scan (i + 1)
      | '*' -> emit Star i (i + 1); scan (i + 1)
      | '+' -> emit Plus i (i + 1); scan (i + 1)
      | '-' -> emit Minus i (i + 1); scan (i + 1)
      | '/' -> emit Slash i (i + 1); scan (i + 1)
      | '%' -> emit Percent i (i + 1); scan (i + 1)
      | '=' -> emit Eq i (i + 1); scan (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit Neq i (i + 2); scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' -> emit Neq i (i + 2); scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit Le i (i + 2); scan (i + 2)
      | '<' -> emit Lt i (i + 1); scan (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit Ge i (i + 2); scan (i + 2)
      | '>' -> emit Gt i (i + 1); scan (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' ->
        emit Concat_op i (i + 2); scan (i + 2)
      | '\'' -> scan_string i
      | '"' -> scan_quoted_ident i
      | c when is_digit c || c = '.' -> scan_number i
      | c when is_ident_start c -> scan_word i
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  and scan_string start =
    let buf = Buffer.create 16 in
    let rec go j =
      if j >= n then raise (Error ("unterminated string literal", start))
      else if src.[j] = '\'' then
        if j + 1 < n && src.[j + 1] = '\'' then begin
          Buffer.add_char buf '\''; go (j + 2)
        end else begin
          emit (String_lit (Buffer.contents buf)) start (j + 1);
          scan (j + 1)
        end
      else begin Buffer.add_char buf src.[j]; go (j + 1) end
    in
    go (start + 1)
  and scan_quoted_ident start =
    let rec find j =
      if j >= n then raise (Error ("unterminated quoted identifier", start))
      else if src.[j] = '"' then j
      else find (j + 1)
    in
    let close = find (start + 1) in
    emit (Quoted_ident (String.sub src (start + 1) (close - start - 1)))
      start (close + 1);
    scan (close + 1)
  and scan_number start =
    let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
    let int_end = digits start in
    let frac_end =
      if int_end < n && src.[int_end] = '.' then digits (int_end + 1)
      else int_end
    in
    let exp_end =
      if frac_end < n && (src.[frac_end] = 'e' || src.[frac_end] = 'E') then begin
        let j = frac_end + 1 in
        let j = if j < n && (src.[j] = '+' || src.[j] = '-') then j + 1 else j in
        let j' = digits j in
        if j' = j then raise (Error ("malformed float exponent", frac_end));
        j'
      end else frac_end
    in
    let text = String.sub src start (exp_end - start) in
    if exp_end = frac_end && frac_end = int_end then
      emit (Int_lit (int_of_string text)) start exp_end
    else
      emit (Float_lit (float_of_string text)) start exp_end;
    scan exp_end
  and scan_word start =
    let rec go j = if j < n && is_ident_char src.[j] then go (j + 1) else j in
    let stop = go start in
    let word = String.lowercase_ascii (String.sub src start (stop - start)) in
    if Token.is_keyword word then emit (Keyword word) start stop
    else emit (Ident word) start stop;
    scan stop
  in
  scan 0;
  List.rev !toks
