(** Hand-written SQL lexer. *)

exception Error of string * int
(** [Error (message, byte_offset)]. *)

type positioned = {
  tok : Token.t;
  pos : int;   (** byte offset of the token's first character *)
  stop : int;  (** byte offset one past the token's last character *)
}

val tokenize : string -> positioned list
(** Tokenize a SQL string. The result always ends with {!Token.Eof}.
    Comments ([-- ...] and nested [/* ... */]) and whitespace are skipped;
    keywords are recognized case-insensitively; unquoted identifiers are
    lower-cased. Raises {!Error} on malformed input. *)
