(** Recursive-descent parser for the OpenIVM SQL fragment.

    Expression grammar (loosest to tightest):
      or_expr > and_expr > not_expr > comparison (=, <>, <, <=, >, >=,
      IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE) > additive
      (+, -, concat) > multiplicative (mul, div, mod) > unary (-) > primary.

    Besides the AST, the parser records source spans for expressions, FROM
    items, selects and statements in a side table keyed by physical node
    identity ([==]). The AST itself stays position-free on purpose: the
    compiler compares subtrees structurally (GROUP BY matching, CSE), which
    embedded positions would silently break. The side table works because
    every AST node is allocated exactly once during the parse; the only
    exceptions are constant constructors ([Star], [Begin_txn], ...), which
    share identity — their lookups return the first recorded occurrence. *)

exception Error of string * int

(** Source spans recorded during a parse, keyed by physical identity. *)
type spans = {
  expr_spans : (Ast.expr * Diagnostic.span) list;
  from_spans : (Ast.from_clause * Diagnostic.span) list;
  select_spans : (Ast.select * Diagnostic.span) list;
  stmt_spans : (Ast.stmt * Diagnostic.span) list;
}

let no_spans =
  { expr_spans = []; from_spans = []; select_spans = []; stmt_spans = [] }

(* Entries are prepended innermost-first and looked up front-to-back, so a
   node recorded by several productions resolves to its widest span. *)
let assq_phys key table =
  List.find_map (fun (k, sp) -> if k == key then Some sp else None) table

let expr_span spans e = assq_phys e spans.expr_spans
let from_span spans f = assq_phys f spans.from_spans
let select_span spans s = assq_phys s spans.select_spans
let statement_span spans s = assq_phys s spans.stmt_spans

type state = {
  toks : Lexer.positioned array;
  mutable cursor : int;
  mutable s_exprs : (Ast.expr * Diagnostic.span) list;
  mutable s_froms : (Ast.from_clause * Diagnostic.span) list;
  mutable s_selects : (Ast.select * Diagnostic.span) list;
  mutable s_stmts : (Ast.stmt * Diagnostic.span) list;
}

let of_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  { toks; cursor = 0; s_exprs = []; s_froms = []; s_selects = []; s_stmts = [] }

let snapshot_spans st =
  { expr_spans = st.s_exprs; from_spans = st.s_froms;
    select_spans = st.s_selects; stmt_spans = st.s_stmts }

let peek st = st.toks.(st.cursor).tok
let peek2 st =
  if st.cursor + 1 < Array.length st.toks then st.toks.(st.cursor + 1).tok
  else Token.Eof
let pos st = st.toks.(st.cursor).pos
let advance st = st.cursor <- st.cursor + 1

(** End of the last consumed token. *)
let last_stop st = if st.cursor = 0 then 0 else st.toks.(st.cursor - 1).Lexer.stop

let span_from st start =
  Diagnostic.span ~start_pos:start ~stop_pos:(max start (last_stop st))

let record_expr st start e =
  st.s_exprs <- (e, span_from st start) :: st.s_exprs;
  e

let record_from st start f =
  st.s_froms <- (f, span_from st start) :: st.s_froms;
  f

let record_select st start s =
  st.s_selects <- (s, span_from st start) :: st.s_selects;
  s

let record_stmt st start s =
  st.s_stmts <- (s, span_from st start) :: st.s_stmts;
  s

let fail st msg = raise (Error (msg, pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let accept st tok =
  if peek st = tok then begin advance st; true end else false

let accept_kw st kw = accept st (Token.Keyword kw)
let expect_kw st kw = expect st (Token.Keyword kw)
let at_kw st kw = peek st = Token.Keyword kw

(* Identifiers: unquoted identifiers are already lower-cased by the lexer;
   non-reserved keywords (type names etc.) are also accepted where an
   identifier is expected, since SQL keyword reservation is notoriously
   loose. *)
let ident st =
  match peek st with
  | Token.Ident s -> advance st; s
  | Token.Quoted_ident s -> advance st; s
  | Token.Keyword
      (("key" | "index" | "values" | "set" | "first" | "last" | "replace"
       | "conflict" | "date" | "begin" | "end" | "left" | "right") as s) ->
    advance st; s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let type_name st =
  match peek st with
  | Token.Keyword ("integer" | "int" | "bigint") -> advance st; Ast.T_int
  | Token.Keyword ("float" | "double" | "real") -> advance st; Ast.T_float
  | Token.Keyword ("varchar" | "text") ->
    advance st;
    (* VARCHAR(30): length is parsed and ignored, types are unbounded. *)
    if accept st Token.Lparen then begin
      (match peek st with Token.Int_lit _ -> advance st | _ -> fail st "expected length");
      expect st Token.Rparen
    end;
    Ast.T_text
  | Token.Keyword ("boolean" | "bool") -> advance st; Ast.T_bool
  | Token.Keyword "date" -> advance st; Ast.T_date
  | t -> fail st (Printf.sprintf "expected type name, found %s" (Token.to_string t))

(* --- expressions --- *)

let rec expr st =
  let start = pos st in
  record_expr st start (or_expr st)

and or_expr st =
  let lhs = and_expr st in
  if accept_kw st "or" then Ast.Binary (Ast.Or, lhs, or_expr st) else lhs

and and_expr st =
  let lhs = not_expr st in
  if accept_kw st "and" then Ast.Binary (Ast.And, lhs, and_expr st) else lhs

and not_expr st =
  if accept_kw st "not" then Ast.Unary (Ast.Not, not_expr st)
  else comparison st

and comparison st =
  let lhs = additive st in
  match peek st with
  | Token.Eq -> advance st; Ast.Binary (Ast.Eq, lhs, additive st)
  | Token.Neq -> advance st; Ast.Binary (Ast.Neq, lhs, additive st)
  | Token.Lt -> advance st; Ast.Binary (Ast.Lt, lhs, additive st)
  | Token.Le -> advance st; Ast.Binary (Ast.Le, lhs, additive st)
  | Token.Gt -> advance st; Ast.Binary (Ast.Gt, lhs, additive st)
  | Token.Ge -> advance st; Ast.Binary (Ast.Ge, lhs, additive st)
  | Token.Keyword "is" ->
    advance st;
    let negated = accept_kw st "not" in
    expect_kw st "null";
    Ast.Is_null (lhs, negated)
  | Token.Keyword "in" -> advance st; in_suffix st lhs false
  | Token.Keyword "between" -> advance st; between_suffix st lhs false
  | Token.Keyword "like" -> advance st; Ast.Like (lhs, additive st, false)
  | Token.Keyword "not" ->
    advance st;
    if accept_kw st "in" then in_suffix st lhs true
    else if accept_kw st "between" then between_suffix st lhs true
    else if accept_kw st "like" then Ast.Like (lhs, additive st, true)
    else fail st "expected IN, BETWEEN or LIKE after NOT"
  | _ -> lhs

and in_suffix st lhs negated =
  expect st Token.Lparen;
  match peek st with
  | Token.Keyword ("select" | "with") ->
    let q = select_stmt st in
    expect st Token.Rparen;
    Ast.In_select (lhs, q, negated)
  | _ ->
    let items = expr_list st in
    expect st Token.Rparen;
    Ast.In_list (lhs, items, negated)

and between_suffix st lhs negated =
  let lo = additive st in
  expect_kw st "and";
  let hi = additive st in
  Ast.Between (lhs, lo, hi, negated)

and additive st =
  let rec go lhs =
    match peek st with
    | Token.Plus -> advance st; go (Ast.Binary (Ast.Add, lhs, multiplicative st))
    | Token.Minus -> advance st; go (Ast.Binary (Ast.Sub, lhs, multiplicative st))
    | Token.Concat_op ->
      advance st; go (Ast.Binary (Ast.Concat, lhs, multiplicative st))
    | _ -> lhs
  in
  go (multiplicative st)

and multiplicative st =
  let rec go lhs =
    match peek st with
    | Token.Star -> advance st; go (Ast.Binary (Ast.Mul, lhs, unary st))
    | Token.Slash -> advance st; go (Ast.Binary (Ast.Div, lhs, unary st))
    | Token.Percent -> advance st; go (Ast.Binary (Ast.Mod, lhs, unary st))
    | _ -> lhs
  in
  go (unary st)

and unary st =
  if accept st Token.Minus then Ast.Unary (Ast.Neg, unary st)
  else if accept st Token.Plus then unary st
  else primary st

and primary st =
  let start = pos st in
  record_expr st start (primary_inner st)

and primary_inner st =
  match peek st with
  | Token.Int_lit i -> advance st; Ast.Lit (Ast.L_int i)
  | Token.Float_lit f -> advance st; Ast.Lit (Ast.L_float f)
  | Token.String_lit s -> advance st; Ast.Lit (Ast.L_string s)
  | Token.Keyword "null" -> advance st; Ast.Lit Ast.L_null
  | Token.Keyword "true" -> advance st; Ast.Lit (Ast.L_bool true)
  | Token.Keyword "false" -> advance st; Ast.Lit (Ast.L_bool false)
  | Token.Keyword "date" when peek2 st <> Token.Lparen ->
    (* DATE 'YYYY-MM-DD' literal *)
    advance st;
    (match peek st with
     | Token.String_lit s ->
       advance st;
       Ast.Cast (Ast.Lit (Ast.L_string s), Ast.T_date)
     | _ -> fail st "expected date string after DATE")
  | Token.Keyword "case" -> advance st; case_expr st
  | Token.Keyword "cast" ->
    advance st;
    expect st Token.Lparen;
    let e = expr st in
    expect_kw st "as";
    let t = type_name st in
    expect st Token.Rparen;
    Ast.Cast (e, t)
  | Token.Star -> advance st; Ast.Star
  | Token.Lparen ->
    advance st;
    let e = expr st in
    expect st Token.Rparen;
    e
  | Token.Ident _ | Token.Quoted_ident _ | Token.Keyword _ ->
    identifier_expr st
  | t -> fail st (Printf.sprintf "unexpected %s in expression" (Token.to_string t))

and case_expr st =
  let rec branches acc =
    if accept_kw st "when" then begin
      let cond = expr st in
      expect_kw st "then";
      let value = expr st in
      branches ((cond, value) :: acc)
    end else List.rev acc
  in
  let bs = branches [] in
  if bs = [] then fail st "CASE requires at least one WHEN branch";
  let default = if accept_kw st "else" then Some (expr st) else None in
  expect_kw st "end";
  Ast.Case (bs, default)

and identifier_expr st =
  let name = ident st in
  match peek st with
  | Token.Lparen -> function_call st name
  | Token.Dot ->
    advance st;
    if accept st Token.Star then Ast.Column (Some name, "*")
    else Ast.Column (Some name, ident st)
  | _ -> Ast.Column (None, name)

and function_call st name =
  expect st Token.Lparen;
  let aggregate_of_name = function
    | "sum" -> Some Ast.Sum
    | "count" -> Some Ast.Count
    | "min" -> Some Ast.Min
    | "max" -> Some Ast.Max
    | "avg" -> Some Ast.Avg
    | _ -> None
  in
  match aggregate_of_name name with
  | Some agg ->
    if accept st Token.Star then begin
      expect st Token.Rparen;
      if agg <> Ast.Count then fail st "only COUNT accepts *";
      Ast.Aggregate (Ast.Count, false, None)
    end
    else begin
      let distinct = accept_kw st "distinct" in
      let arg = expr st in
      expect st Token.Rparen;
      Ast.Aggregate (agg, distinct, Some arg)
    end
  | None ->
    let args =
      if peek st = Token.Rparen then []
      else expr_list st
    in
    expect st Token.Rparen;
    Ast.Func (name, args)

and expr_list st =
  let rec go acc =
    let e = expr st in
    if accept st Token.Comma then go (e :: acc) else List.rev (e :: acc)
  in
  go []

(* --- SELECT --- *)

and select_stmt st : Ast.select =
  let start = pos st in
  record_select st start (select_stmt_inner st)

and select_stmt_inner st : Ast.select =
  let ctes =
    if accept_kw st "with" then begin
      let rec go acc =
        let name = ident st in
        expect_kw st "as";
        expect st Token.Lparen;
        let q = select_stmt st in
        expect st Token.Rparen;
        let acc = (name, q) :: acc in
        if accept st Token.Comma then go acc else List.rev acc
      in
      go []
    end else []
  in
  let body = select_core st in
  let body = { body with Ast.ctes } in
  (* set operations bind the cores; ORDER BY / LIMIT after a set operation
     apply to the whole expression and are kept on the left select. *)
  let body = set_op_suffix st body in
  let order_by = order_by_clause st in
  let limit, offset = limit_clause st in
  { body with Ast.order_by =
      (if order_by = [] then body.Ast.order_by else order_by);
    limit = (match limit with None -> body.Ast.limit | some -> some);
    offset = (match offset with None -> body.Ast.offset | some -> some) }

and set_op_suffix st lhs =
  let kind =
    if at_kw st "union" then begin
      advance st;
      if accept_kw st "all" then Some Ast.Union_all else Some Ast.Union
    end
    else if at_kw st "except" then begin advance st; Some Ast.Except end
    else if at_kw st "intersect" then begin advance st; Some Ast.Intersect end
    else None
  in
  match kind with
  | None -> lhs
  | Some op ->
    (* chains are encoded right-nested on the rhs and re-associated to the
       left by the consumer (set operations are left-associative) *)
    let start = pos st in
    let rhs = select_core st in
    let rhs = set_op_suffix st rhs in
    let rhs = record_select st start rhs in
    { lhs with Ast.set_operation = Some (op, rhs) }

and select_core st : Ast.select =
  expect_kw st "select";
  let distinct = accept_kw st "distinct" in
  ignore (accept_kw st "all");
  let projections = projection_list st in
  let from =
    if accept_kw st "from" then Some (from_clause st) else None
  in
  let where = if accept_kw st "where" then Some (expr st) else None in
  let group_by =
    if at_kw st "group" then begin
      advance st;
      expect_kw st "by";
      expr_list st
    end else []
  in
  let having = if accept_kw st "having" then Some (expr st) else None in
  { Ast.empty_select with distinct; projections; from; where; group_by; having }

and projection_list st =
  let one () =
    let e = expr st in
    let alias =
      if accept_kw st "as" then Some (ident st)
      else
        match peek st with
        | Token.Ident _ | Token.Quoted_ident _ -> Some (ident st)
        | _ -> None
    in
    (e, alias)
  in
  let rec go acc =
    let p = one () in
    if accept st Token.Comma then go (p :: acc) else List.rev (p :: acc)
  in
  go []

and from_clause st =
  let rec joins lhs =
    match peek st with
    | Token.Comma ->
      advance st;
      joins (Ast.Join (lhs, Ast.Cross, from_item st, None))
    | Token.Keyword "cross" ->
      advance st;
      expect_kw st "join";
      joins (Ast.Join (lhs, Ast.Cross, from_item st, None))
    | Token.Keyword ("join" | "inner" | "left" | "right" | "full") ->
      let kind =
        if accept_kw st "inner" then Ast.Inner
        else if accept_kw st "left" then begin
          ignore (accept_kw st "outer"); Ast.Left_outer
        end
        else if accept_kw st "right" then begin
          ignore (accept_kw st "outer"); Ast.Right_outer
        end
        else if accept_kw st "full" then begin
          ignore (accept_kw st "outer"); Ast.Full_outer
        end
        else Ast.Inner
      in
      expect_kw st "join";
      let rhs = from_item st in
      let cond =
        if accept_kw st "on" then Some (expr st)
        else if kind = Ast.Cross then None
        else fail st "expected ON after JOIN (USING is not supported)"
      in
      joins (Ast.Join (lhs, kind, rhs, cond))
    | _ -> lhs
  in
  joins (from_item st)

and from_item st =
  let start = pos st in
  let item =
    if accept st Token.Lparen then begin
      let q = select_stmt st in
      expect st Token.Rparen;
      ignore (accept_kw st "as");
      let alias = ident st in
      Ast.Subquery (q, alias)
    end
    else begin
      let name = ident st in
      let alias =
        if accept_kw st "as" then Some (ident st)
        else
          match peek st with
          | Token.Ident _ | Token.Quoted_ident _ -> Some (ident st)
          | _ -> None
      in
      Ast.Table_ref (name, alias)
    end
  in
  record_from st start item

and order_by_clause st =
  if at_kw st "order" then begin
    advance st;
    expect_kw st "by";
    let one () =
      let e = expr st in
      let descending =
        if accept_kw st "desc" then true
        else begin ignore (accept_kw st "asc"); false end
      in
      (* NULLS FIRST/LAST parsed and ignored: engine sorts NULL first. *)
      if accept_kw st "nulls" then
        ignore (accept_kw st "first" || accept_kw st "last");
      { Ast.order_expr = e; descending }
    in
    let rec go acc =
      let item = one () in
      if accept st Token.Comma then go (item :: acc) else List.rev (item :: acc)
    in
    go []
  end else []

and limit_clause st =
  let limit =
    if accept_kw st "limit" then
      match peek st with
      | Token.Int_lit i -> advance st; Some i
      | _ -> fail st "expected integer after LIMIT"
    else None
  in
  let offset =
    if accept_kw st "offset" then
      match peek st with
      | Token.Int_lit i -> advance st; Some i
      | _ -> fail st "expected integer after OFFSET"
    else None
  in
  (limit, offset)

(* --- statements --- *)

let column_def st : Ast.column_def =
  let col_name = ident st in
  let col_type = type_name st in
  let not_null = ref false in
  let primary = ref false in
  let rec constraints () =
    if accept_kw st "not" then begin
      expect_kw st "null"; not_null := true; constraints ()
    end
    else if accept_kw st "primary" then begin
      expect_kw st "key"; primary := true; constraints ()
    end
    else if accept_kw st "unique" then constraints ()
    else ()
  in
  constraints ();
  { Ast.col_name; col_type; col_not_null = !not_null; col_primary_key = !primary }

let create_table st ~if_not_exists : Ast.stmt =
  let table = ident st in
  expect st Token.Lparen;
  let columns = ref [] in
  let table_pk = ref [] in
  let rec items () =
    if at_kw st "primary" then begin
      advance st;
      expect_kw st "key";
      expect st Token.Lparen;
      let rec cols acc =
        let c = ident st in
        if accept st Token.Comma then cols (c :: acc) else List.rev (c :: acc)
      in
      table_pk := cols [];
      expect st Token.Rparen
    end
    else columns := column_def st :: !columns;
    if accept st Token.Comma then items ()
  in
  items ();
  expect st Token.Rparen;
  let columns = List.rev !columns in
  let inline_pk =
    List.filter_map
      (fun c -> if c.Ast.col_primary_key then Some c.Ast.col_name else None)
      columns
  in
  let primary_key = if !table_pk <> [] then !table_pk else inline_pk in
  Ast.Create_table { table; columns; primary_key; if_not_exists }

let rec statement st : Ast.stmt =
  let start = pos st in
  record_stmt st start (statement_inner st)

and statement_inner st : Ast.stmt =
  match peek st with
  | Token.Keyword "explain" -> advance st; Ast.Explain (statement st)
  | Token.Keyword ("select" | "with") -> Ast.Select_stmt (select_stmt st)
  | Token.Keyword "create" -> advance st; create_stmt st
  | Token.Keyword "insert" -> advance st; insert_stmt st
  | Token.Keyword "update" -> advance st; update_stmt st
  | Token.Keyword "delete" -> advance st; delete_stmt st
  | Token.Keyword "drop" -> advance st; drop_stmt st
  | Token.Keyword "truncate" ->
    advance st;
    ignore (accept_kw st "table");
    Ast.Truncate (ident st)
  | Token.Keyword "begin" -> advance st; Ast.Begin_txn
  | Token.Keyword "commit" -> advance st; Ast.Commit_txn
  | Token.Keyword "rollback" -> advance st; Ast.Rollback_txn
  | t -> fail st (Printf.sprintf "unexpected %s at start of statement" (Token.to_string t))

and create_stmt st =
  let unique = accept_kw st "unique" in
  if accept_kw st "table" then begin
    if unique then fail st "UNIQUE only applies to CREATE INDEX";
    let if_not_exists =
      if accept_kw st "if" then begin
        expect_kw st "not"; expect_kw st "exists"; true
      end else false
    in
    create_table st ~if_not_exists
  end
  else if accept_kw st "index" then begin
    let index = ident st in
    expect_kw st "on";
    let table = ident st in
    expect st Token.Lparen;
    let rec cols acc =
      let c = ident st in
      if accept st Token.Comma then cols (c :: acc) else List.rev (c :: acc)
    in
    let columns = cols [] in
    expect st Token.Rparen;
    Ast.Create_index { index; table; columns; unique }
  end
  else begin
    let materialized = accept_kw st "materialized" in
    expect_kw st "view";
    let view = ident st in
    expect_kw st "as";
    let query = select_stmt st in
    Ast.Create_view { view; materialized; query }
  end

and insert_stmt st =
  let on_conflict =
    if accept_kw st "or" then begin
      expect_kw st "replace";
      Ast.Or_replace
    end else Ast.No_conflict_clause
  in
  expect_kw st "into";
  let table = ident st in
  let columns =
    if peek st = Token.Lparen then begin
      advance st;
      let rec cols acc =
        let c = ident st in
        if accept st Token.Comma then cols (c :: acc) else List.rev (c :: acc)
      in
      let cs = cols [] in
      expect st Token.Rparen;
      cs
    end else []
  in
  let source =
    if accept_kw st "values" then begin
      let row () =
        expect st Token.Lparen;
        let es = expr_list st in
        expect st Token.Rparen;
        es
      in
      let rec rows acc =
        let r = row () in
        if accept st Token.Comma then rows (r :: acc) else List.rev (r :: acc)
      in
      Ast.Values (rows [])
    end
    else Ast.Query (select_stmt st)
  in
  let on_conflict =
    if accept_kw st "on" then begin
      expect_kw st "conflict";
      (* optional conflict target: ON CONFLICT (cols) *)
      if peek st = Token.Lparen then begin
        advance st;
        let rec skip_cols () =
          ignore (ident st);
          if accept st Token.Comma then skip_cols ()
        in
        skip_cols ();
        expect st Token.Rparen
      end;
      expect_kw st "do";
      if accept_kw st "nothing" then Ast.Do_nothing
      else if accept_kw st "update" then begin
        (* ON CONFLICT (keys) DO UPDATE SET c = EXCLUDED.c, ... — the
           PostgreSQL upsert our emitter produces; semantically this is a
           whole-row replace, so it maps back to Or_replace (the SET list
           is re-derivable from the insert columns) *)
        expect_kw st "set";
        let rec assignments () =
          ignore (ident st);
          expect st Token.Eq;
          ignore (expr st);
          if accept st Token.Comma then assignments ()
        in
        assignments ();
        Ast.Or_replace
      end
      else fail st "expected NOTHING or UPDATE after ON CONFLICT DO"
    end else on_conflict
  in
  Ast.Insert { table; columns; source; on_conflict }

and update_stmt st =
  let table = ident st in
  expect_kw st "set";
  let one () =
    let col = ident st in
    expect st Token.Eq;
    (col, expr st)
  in
  let rec go acc =
    let a = one () in
    if accept st Token.Comma then go (a :: acc) else List.rev (a :: acc)
  in
  let assignments = go [] in
  let where = if accept_kw st "where" then Some (expr st) else None in
  Ast.Update { table; assignments; where }

and delete_stmt st =
  expect_kw st "from";
  let table = ident st in
  let where = if accept_kw st "where" then Some (expr st) else None in
  Ast.Delete { table; where }

and drop_stmt st =
  let kind =
    if accept_kw st "table" then `Table
    else if accept_kw st "view" then `View
    else if accept_kw st "index" then `Index
    else fail st "expected TABLE, VIEW or INDEX after DROP"
  in
  let if_exists =
    if accept_kw st "if" then begin expect_kw st "exists"; true end
    else false
  in
  Ast.Drop { kind; name = ident st; if_exists }

(* --- entry points --- *)

let parse_statement_positioned (src : string) : Ast.stmt * spans =
  let st = of_string src in
  let s = statement st in
  ignore (accept st Token.Semicolon);
  if peek st <> Token.Eof then fail st "trailing input after statement";
  (s, snapshot_spans st)

let parse_statement (src : string) : Ast.stmt =
  fst (parse_statement_positioned src)

let parse_script_positioned (src : string) : Ast.stmt list * spans =
  let st = of_string src in
  let rec go acc =
    if peek st = Token.Eof then List.rev acc
    else if accept st Token.Semicolon then go acc
    else begin
      let s = statement st in
      if not (accept st Token.Semicolon) && peek st <> Token.Eof then
        fail st "expected ; between statements";
      go (s :: acc)
    end
  in
  let stmts = go [] in
  (stmts, snapshot_spans st)

let parse_script (src : string) : Ast.stmt list =
  fst (parse_script_positioned src)

let parse_expression_positioned (src : string) : Ast.expr * spans =
  let st = of_string src in
  let e = expr st in
  if peek st <> Token.Eof then fail st "trailing input after expression";
  (e, snapshot_spans st)

let parse_expression (src : string) : Ast.expr =
  fst (parse_expression_positioned src)

let parse_select_positioned (src : string) : Ast.select * spans =
  match parse_statement_positioned src with
  | Ast.Select_stmt s, spans -> (s, spans)
  | _ -> raise (Error ("expected a SELECT statement", 0))

let parse_select (src : string) : Ast.select =
  fst (parse_select_positioned src)
