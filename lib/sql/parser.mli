(** Recursive-descent parser for the OpenIVM SQL fragment: SELECT with
    CTEs, joins, grouping, aggregates, set operations and uncorrelated IN
    subqueries; CREATE TABLE / (MATERIALIZED) VIEW / INDEX; INSERT
    (including OR REPLACE and ON CONFLICT DO NOTHING); UPDATE; DELETE;
    DROP; TRUNCATE; EXPLAIN; BEGIN/COMMIT/ROLLBACK.

    The [_positioned] entry points additionally return the source {!spans}
    recorded during the parse, so diagnostics can point back into the SQL
    text. The AST itself stays position-free (the compiler compares
    subtrees structurally); spans live in a side table keyed by physical
    node identity. *)

exception Error of string * int
(** [Error (message, byte_offset)]. *)

type spans
(** Source spans recorded during one parse. *)

val no_spans : spans

val expr_span : spans -> Ast.expr -> Diagnostic.span option
(** Span of an expression node from the parse that produced [spans];
    [None] for nodes built elsewhere. Constant constructors ([Star])
    share identity and resolve to their first occurrence. *)

val from_span : spans -> Ast.from_clause -> Diagnostic.span option
val select_span : spans -> Ast.select -> Diagnostic.span option
val statement_span : spans -> Ast.stmt -> Diagnostic.span option

val parse_statement : string -> Ast.stmt
(** Parse exactly one statement (an optional trailing [;] is allowed).
    Raises {!Error} or {!Lexer.Error}. *)

val parse_statement_positioned : string -> Ast.stmt * spans

val parse_script : string -> Ast.stmt list
(** Parse a [;]-separated script; empty statements are skipped. *)

val parse_script_positioned : string -> Ast.stmt list * spans
(** All statements share one [spans] table; offsets are script-global. *)

val parse_expression : string -> Ast.expr
(** Parse a scalar expression (used by tests and tools). *)

val parse_expression_positioned : string -> Ast.expr * spans

val parse_select : string -> Ast.select
(** Parse a statement and require it to be a SELECT. *)

val parse_select_positioned : string -> Ast.select * spans
