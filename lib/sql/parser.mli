(** Recursive-descent parser for the OpenIVM SQL fragment: SELECT with
    CTEs, joins, grouping, aggregates, set operations and uncorrelated IN
    subqueries; CREATE TABLE / (MATERIALIZED) VIEW / INDEX; INSERT
    (including OR REPLACE and ON CONFLICT DO NOTHING); UPDATE; DELETE;
    DROP; TRUNCATE; EXPLAIN; BEGIN/COMMIT/ROLLBACK. *)

exception Error of string * int
(** [Error (message, byte_offset)]. *)

val parse_statement : string -> Ast.stmt
(** Parse exactly one statement (an optional trailing [;] is allowed).
    Raises {!Error} or {!Lexer.Error}. *)

val parse_script : string -> Ast.stmt list
(** Parse a [;]-separated script; empty statements are skipped. *)

val parse_expression : string -> Ast.expr
(** Parse a scalar expression (used by tests and tools). *)

val parse_select : string -> Ast.select
(** Parse a statement and require it to be a SELECT. *)
