(** SQL emitter: AST back to a SQL string in a chosen dialect.

    Printing is precedence-aware so emitted SQL stays readable; a
    parse/print/parse round trip is checked by property tests. *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let lit_to_sql = function
  | Ast.L_null -> "NULL"
  | Ast.L_int i -> string_of_int i
  | Ast.L_float f ->
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  | Ast.L_string s -> Printf.sprintf "'%s'" (escape_string s)
  | Ast.L_bool b -> if b then "TRUE" else "FALSE"

(* Precedence levels, higher binds tighter; mirrors Parser. *)
let binop_prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub | Ast.Concat -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6

let binop_to_sql = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"
  | Ast.Concat -> "||"

let rec expr_to_sql d e = expr_prec d 0 e

and expr_prec d ctx e =
  let q = Dialect.quote_ident d in
  let atom s = s in
  let wrap prec s = if prec < ctx then "(" ^ s ^ ")" else s in
  match e with
  | Ast.Lit l -> atom (lit_to_sql l)
  | Ast.Column (None, c) -> atom (if c = "*" then "*" else q c)
  | Ast.Column (Some t, c) ->
    atom (q t ^ "." ^ (if c = "*" then "*" else q c))
  | Ast.Star -> atom "*"
  | Ast.Unary (Ast.Neg, a) ->
    (* a leading '-' on the operand would lex as a line comment (--) *)
    let body = expr_prec d 8 a in
    let body =
      if String.length body > 0 && body.[0] = '-' then "(" ^ body ^ ")"
      else body
    in
    wrap 7 ("-" ^ body)
  | Ast.Unary (Ast.Not, a) -> wrap 3 ("NOT " ^ expr_prec d 3 a)
  | Ast.Binary (op, a, b) ->
    let p = binop_prec op in
    (* comparisons are non-associative (both sides need raising);
       arithmetic and logic are left-associative *)
    let lhs_ctx, rhs_ctx =
      match op with
      (* non-associative: both sides need raising *)
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (p + 1, p + 1)
      (* the parser builds AND/OR right-nested *)
      | Ast.And | Ast.Or -> (p + 1, p)
      (* left-associative arithmetic *)
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Concat ->
        (p, p + 1)
    in
    wrap p
      (expr_prec d lhs_ctx a ^ " " ^ binop_to_sql op ^ " " ^ expr_prec d rhs_ctx b)
  | Ast.Func (name, args) ->
    atom
      (String.uppercase_ascii name ^ "("
       ^ String.concat ", " (List.map (expr_prec d 0) args)
       ^ ")")
  | Ast.Aggregate (agg, distinct, arg) ->
    let name = String.uppercase_ascii (Ast.agg_name agg) in
    let body =
      match arg with
      | None -> "*"
      | Some a -> (if distinct then "DISTINCT " else "") ^ expr_prec d 0 a
    in
    atom (name ^ "(" ^ body ^ ")")
  | Ast.Case (branches, default) ->
    let b =
      List.map
        (fun (c, v) ->
           "WHEN " ^ expr_prec d 0 c ^ " THEN " ^ expr_prec d 0 v)
        branches
    in
    let e =
      match default with
      | Some x -> [ "ELSE " ^ expr_prec d 0 x ]
      | None -> []
    in
    atom ("CASE " ^ String.concat " " (b @ e) ^ " END")
  | Ast.Cast (a, t) ->
    atom ("CAST(" ^ expr_prec d 0 a ^ " AS " ^ Ast.typ_to_string t ^ ")")
  | Ast.In_select (a, q, neg) ->
    wrap 4
      (expr_prec d 5 a
       ^ (if neg then " NOT IN (" else " IN (")
       ^ select_to_sql d q
       ^ ")")
  | Ast.In_list (a, items, neg) ->
    wrap 4
      (expr_prec d 5 a
       ^ (if neg then " NOT IN (" else " IN (")
       ^ String.concat ", " (List.map (expr_prec d 0) items)
       ^ ")")
  | Ast.Between (a, lo, hi, neg) ->
    wrap 4
      (expr_prec d 5 a
       ^ (if neg then " NOT BETWEEN " else " BETWEEN ")
       ^ expr_prec d 5 lo ^ " AND " ^ expr_prec d 5 hi)
  | Ast.Is_null (a, neg) ->
    wrap 4 (expr_prec d 5 a ^ (if neg then " IS NOT NULL" else " IS NULL"))
  | Ast.Like (a, b, neg) ->
    wrap 4 (expr_prec d 5 a ^ (if neg then " NOT LIKE " else " LIKE ") ^ expr_prec d 5 b)

and select_to_sql d (s : Ast.select) =
  let q = Dialect.quote_ident d in
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  if s.ctes <> [] then begin
    add "WITH ";
    add
      (String.concat ", "
         (List.map
            (fun (name, query) ->
               q name ^ " AS (" ^ select_to_sql d query ^ ")")
            s.ctes));
    add " "
  end;
  add (select_core_to_sql d s);
  (match s.set_operation with
   | Some (op, rhs) ->
     let kw =
       match op with
       | Ast.Union -> " UNION "
       | Ast.Union_all -> " UNION ALL "
       | Ast.Except -> " EXCEPT "
       | Ast.Intersect -> " INTERSECT "
     in
     add kw;
     add (select_core_to_sql d rhs)
   | None -> ());
  if s.order_by <> [] then begin
    add " ORDER BY ";
    add
      (String.concat ", "
         (List.map
            (fun { Ast.order_expr; descending } ->
               expr_to_sql d order_expr ^ if descending then " DESC" else "")
            s.order_by))
  end;
  (match s.limit with
   | Some n -> add (Printf.sprintf " LIMIT %d" n)
   | None -> ());
  (match s.offset with
   | Some n -> add (Printf.sprintf " OFFSET %d" n)
   | None -> ());
  Buffer.contents buf

and select_core_to_sql d (s : Ast.select) =
  let q = Dialect.quote_ident d in
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  add "SELECT ";
  if s.distinct then add "DISTINCT ";
  add
    (String.concat ", "
       (List.map
          (fun (e, alias) ->
             expr_to_sql d e
             ^ match alias with Some a -> " AS " ^ q a | None -> "")
          s.projections));
  (match s.from with
   | Some f -> add (" FROM " ^ from_to_sql d f)
   | None -> ());
  (match s.where with
   | Some e -> add (" WHERE " ^ expr_to_sql d e)
   | None -> ());
  if s.group_by <> [] then
    add (" GROUP BY " ^ String.concat ", " (List.map (expr_to_sql d) s.group_by));
  (match s.having with
   | Some e -> add (" HAVING " ^ expr_to_sql d e)
   | None -> ());
  Buffer.contents buf

and from_to_sql d f =
  let q = Dialect.quote_ident d in
  match f with
  | Ast.Table_ref (t, None) -> q t
  | Ast.Table_ref (t, Some a) -> q t ^ " AS " ^ q a
  | Ast.Subquery (s, a) -> "(" ^ select_to_sql d s ^ ") AS " ^ q a
  | Ast.Join (l, kind, r, cond) ->
    let kw =
      match kind with
      | Ast.Inner -> " JOIN "
      | Ast.Left_outer -> " LEFT JOIN "
      | Ast.Right_outer -> " RIGHT JOIN "
      | Ast.Full_outer -> " FULL JOIN "
      | Ast.Cross -> " CROSS JOIN "
    in
    let rhs =
      match r with
      | Ast.Join _ -> "(" ^ from_to_sql d r ^ ")"
      | _ -> from_to_sql d r
    in
    from_to_sql d l ^ kw ^ rhs
    ^ (match cond with Some e -> " ON " ^ expr_to_sql d e | None -> "")

(** Emit a statement. [upsert_keys] supplies the conflict-target columns
    needed by dialects whose upsert is [ON CONFLICT (keys) DO UPDATE];
    [upsert_update] the non-key columns to refresh (defaults to insert
    columns minus keys). *)
let stmt_to_sql ?(upsert_keys = []) ?(upsert_update = []) d (stmt : Ast.stmt) =
  let q = Dialect.quote_ident d in
  let rec go stmt =
    match stmt with
    | Ast.Select_stmt s -> select_to_sql d s
    | Ast.Create_table { table; columns; primary_key; if_not_exists } ->
      let col c =
        q c.Ast.col_name ^ " " ^ Ast.typ_to_string c.Ast.col_type
        ^ (if c.Ast.col_not_null then " NOT NULL" else "")
      in
      let pk =
        if primary_key = [] then []
        else [ "PRIMARY KEY (" ^ String.concat ", " (List.map q primary_key) ^ ")" ]
      in
      "CREATE TABLE "
      ^ (if if_not_exists then "IF NOT EXISTS " else "")
      ^ q table ^ " ("
      ^ String.concat ", " (List.map col columns @ pk)
      ^ ")"
    | Ast.Create_view { view; materialized; query } ->
      "CREATE " ^ (if materialized then "MATERIALIZED " else "") ^ "VIEW "
      ^ q view ^ " AS " ^ select_to_sql d query
    | Ast.Create_index { index; table; columns; unique } ->
      "CREATE " ^ (if unique then "UNIQUE " else "") ^ "INDEX "
      ^ q index ^ " ON " ^ q table ^ " ("
      ^ String.concat ", " (List.map q columns) ^ ")"
    | Ast.Insert { table; columns; source; on_conflict } ->
      let cols =
        if columns = [] then ""
        else " (" ^ String.concat ", " (List.map q columns) ^ ")"
      in
      let body =
        match source with
        | Ast.Values rows ->
          " VALUES "
          ^ String.concat ", "
              (List.map
                 (fun row ->
                    "(" ^ String.concat ", " (List.map (expr_to_sql d) row) ^ ")")
                 rows)
        | Ast.Query s -> " " ^ select_to_sql d s
      in
      (match on_conflict, d.Dialect.upsert with
       | Ast.No_conflict_clause, _ ->
         "INSERT INTO " ^ q table ^ cols ^ body
       | Ast.Do_nothing, _ ->
         "INSERT INTO " ^ q table ^ cols ^ body ^ " ON CONFLICT DO NOTHING"
       | Ast.Or_replace, Dialect.Insert_or_replace ->
         "INSERT OR REPLACE INTO " ^ q table ^ cols ^ body
       | Ast.Or_replace, Dialect.On_conflict_do_update ->
         let keys = upsert_keys in
         let update =
           if upsert_update <> [] then upsert_update
           else List.filter (fun c -> not (List.mem c keys)) columns
         in
         let set_clause =
           String.concat ", "
             (List.map (fun c -> q c ^ " = EXCLUDED." ^ q c) update)
         in
         "INSERT INTO " ^ q table ^ cols ^ body
         ^ " ON CONFLICT ("
         ^ String.concat ", " (List.map q keys)
         ^ ") DO UPDATE SET " ^ set_clause)
    | Ast.Update { table; assignments; where } ->
      "UPDATE " ^ q table ^ " SET "
      ^ String.concat ", "
          (List.map (fun (c, e) -> q c ^ " = " ^ expr_to_sql d e) assignments)
      ^ (match where with Some e -> " WHERE " ^ expr_to_sql d e | None -> "")
    | Ast.Delete { table; where } ->
      "DELETE FROM " ^ q table
      ^ (match where with Some e -> " WHERE " ^ expr_to_sql d e | None -> "")
    | Ast.Drop { kind; name; if_exists } ->
      let kw = match kind with `Table -> "TABLE" | `View -> "VIEW" | `Index -> "INDEX" in
      "DROP " ^ kw ^ " " ^ (if if_exists then "IF EXISTS " else "") ^ q name
    | Ast.Truncate t -> "TRUNCATE " ^ q t
    | Ast.Explain inner -> "EXPLAIN " ^ go inner
    | Ast.Begin_txn -> "BEGIN"
    | Ast.Commit_txn -> "COMMIT"
    | Ast.Rollback_txn -> "ROLLBACK"
  in
  go stmt

let script_to_sql ?(dialect = Dialect.duckdb) stmts =
  String.concat ";\n" (List.map (stmt_to_sql dialect) stmts) ^ ";\n"
