(** SQL emitter: AST back to a SQL string in a chosen dialect. Printing is
    precedence-aware; [parse (print x)] prints back to [print x] (property
    tested). *)

val lit_to_sql : Ast.lit -> string

val expr_to_sql : Dialect.t -> Ast.expr -> string

val select_to_sql : Dialect.t -> Ast.select -> string

val stmt_to_sql :
  ?upsert_keys:string list ->
  ?upsert_update:string list ->
  Dialect.t ->
  Ast.stmt ->
  string
(** Emit a statement. For dialects whose upsert is
    [ON CONFLICT (keys) DO UPDATE] (PostgreSQL), [upsert_keys] supplies the
    conflict-target columns of any [INSERT OR REPLACE] statement and
    [upsert_update] the columns to refresh (defaults to the insert's
    columns minus the keys). *)

val script_to_sql : ?dialect:Dialect.t -> Ast.stmt list -> string
(** Statements joined by [;\n], with a trailing separator. *)
