(** Lexical tokens of the SQL dialect understood by OpenIVM. *)

type t =
  | Ident of string      (** unquoted identifier, already lower-cased *)
  | Quoted_ident of string  (** "quoted" identifier, case preserved *)
  | Keyword of string    (** reserved word, lower-cased *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat_op            (** [||] *)
  | Eof

(* Keywords are recognized case-insensitively; everything else lexes as an
   identifier. The list covers the grammar in Parser plus words reserved for
   forward compatibility. *)
let keywords =
  [ "select"; "from"; "where"; "group"; "by"; "having"; "order"; "limit";
    "offset"; "as"; "and"; "or"; "not"; "null"; "true"; "false"; "is";
    "in"; "between"; "like"; "case"; "when"; "then"; "else"; "end";
    "cast"; "distinct"; "all"; "union"; "except"; "intersect"; "join";
    "inner"; "left"; "right"; "full"; "outer"; "cross"; "on"; "using";
    "create"; "table"; "view"; "materialized"; "index"; "unique"; "drop";
    "insert"; "into"; "values"; "update"; "set"; "delete"; "replace";
    "primary"; "key"; "references"; "default"; "if"; "exists"; "with";
    "asc"; "desc"; "explain"; "begin"; "commit"; "rollback"; "integer";
    "int"; "bigint"; "float"; "double"; "real"; "varchar"; "text";
    "boolean"; "bool"; "date"; "or"; "conflict"; "do"; "nothing";
    "nulls"; "first"; "last"; "truncate" ]

let keyword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 97 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_keyword s = Hashtbl.mem keyword_set s

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Quoted_ident s -> Printf.sprintf "quoted identifier %S" s
  | Keyword s -> String.uppercase_ascii s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semicolon -> ";"
  | Dot -> "."
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Concat_op -> "||"
  | Eof -> "<end of input>"
