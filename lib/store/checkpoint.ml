(** Checkpoint persistence. The crash-safety protocol, in write order:

    1. snapshot the database into [checkpoint-<seq>.tmp];
    2. write [MANIFEST] into the tmp directory {e last} — it records the
       last folded WAL sequence number and an Adler-32 checksum per file,
       so its presence certifies the files before it are complete;
    3. atomically rename the tmp directory to [checkpoint-<seq>].

    A crash before (3) leaves a [.tmp] directory recovery ignores (and
    {!prune} sweeps); a corrupted file fails its checksum and the whole
    checkpoint is skipped in favor of an older one. *)

open Openivm_engine
module Metrics = Openivm_obs.Metrics

let m_checkpoints =
  Metrics.counter "openivm_checkpoints_total"
    ~help:"checkpoints written by durable stores"

let manifest_name = "MANIFEST"
let prefix = "checkpoint-"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let checkpoint_seq (name : string) : int option =
  if String.length name > String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
  then
    int_of_string_opt
      (String.sub name (String.length prefix)
         (String.length name - String.length prefix))
  else None

let save (db : Database.t) ~(dir : string) ~(last_seq : int) : string =
  Openivm_obs.Span.with_span "checkpoint"
    ~attrs:[ ("last_seq", Openivm_obs.Span.Int last_seq) ]
    (fun _ ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let final = Filename.concat dir (Printf.sprintf "%s%d" prefix last_seq) in
       let tmp = final ^ ".tmp" in
       rm_rf tmp;
       ignore (Snapshot.save db ~dir:tmp);
       let files =
         List.filter
           (fun n -> n <> manifest_name)
           (Array.to_list (Sys.readdir tmp))
       in
       let oc = open_out (Filename.concat tmp manifest_name) in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
            Printf.fprintf oc "last_seq %d\n" last_seq;
            List.iter
              (fun n ->
                 Printf.fprintf oc "file %d %s\n"
                   (Wal.adler32 (read_file (Filename.concat tmp n)))
                   n)
              (List.sort String.compare files));
       rm_rf final;
       Sys.rename tmp final;
       Metrics.incr m_checkpoints;
       final)

let validate (ckpt_dir : string) : int option =
  let manifest = Filename.concat ckpt_dir manifest_name in
  if not (Sys.file_exists manifest) then None
  else begin
    let lines = String.split_on_char '\n' (read_file manifest) in
    let seq = ref None and ok = ref true in
    List.iter
      (fun line ->
         match String.split_on_char ' ' line with
         | [ "last_seq"; n ] -> seq := int_of_string_opt n
         | "file" :: sum :: rest ->
           let name = String.concat " " rest in
           let path = Filename.concat ckpt_dir name in
           if not
                (Sys.file_exists path
                 && int_of_string_opt sum
                    = Some (Wal.adler32 (read_file path)))
           then ok := false
         | _ -> ())
      lines;
    if !ok then !seq else None
  end

let list ~(dir : string) : (int * string) list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun n ->
        match checkpoint_seq n with
        | Some seq when Sys.is_directory (Filename.concat dir n) ->
          Some (seq, Filename.concat dir n)
        | _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let load_latest ~(dir : string) : (Database.t * int) option =
  let rec try_each = function
    | [] -> None
    | (seq, path) :: rest ->
      (match validate path with
       | Some manifest_seq when manifest_seq = seq ->
         (try Some (Snapshot.load ~dir:path, seq)
          with _ -> try_each rest)
       | _ -> try_each rest)
  in
  try_each (list ~dir)

let prune ~(dir : string) ~(keep : int) : unit =
  if Sys.file_exists dir then begin
    (* leftover tmp dirs from interrupted saves *)
    Array.iter
      (fun n ->
         if Filename.check_suffix n ".tmp" then
           rm_rf (Filename.concat dir n))
      (Sys.readdir dir);
    List.iteri
      (fun i (_, path) -> if i >= keep then rm_rf path)
      (list ~dir)
  end
