(** Durable checkpoints: a {!Openivm_engine.Snapshot}-format directory
    (schema.sql + one CSV per table) per checkpoint, named
    [checkpoint-<seq>] where [seq] is the last WAL sequence number folded
    into it.

    Crash-safety comes from ordering, not locking: the snapshot is
    written into a [.tmp] directory, a [MANIFEST] recording [seq] and a
    checksum per file is written {e last}, and the directory is renamed
    into place atomically. A checkpoint without a valid manifest (or with
    a checksum mismatch) never existed as far as recovery is concerned —
    {!load_latest} falls back to the next older one. *)

open Openivm_engine

val save : Database.t -> dir:string -> last_seq:int -> string
(** Checkpoint the whole database under [dir] (created if missing);
    returns the checkpoint directory path. An existing checkpoint at the
    same sequence number is replaced. *)

val validate : string -> int option
(** Does this checkpoint directory have a complete, checksum-clean
    manifest? Returns its recorded [last_seq] if so. *)

val list : dir:string -> (int * string) list
(** All checkpoint directories under [dir] with a parseable sequence
    number, newest first. Includes not-yet-validated ones. *)

val load_latest : dir:string -> (Database.t * int) option
(** Load the newest {e valid} checkpoint, skipping any that fail
    {!validate} (a crash mid-save leaves an invalid or [.tmp] directory
    behind). Returns the restored database and its [last_seq]. *)

val prune : dir:string -> keep:int -> unit
(** Delete all but the newest [keep] checkpoints, plus any leftover
    [.tmp] directories from interrupted saves. *)
